// Package fib implements the kernel's forwarding information base: a
// path-compressed binary trie keyed by IPv4 prefix, supporting multiple
// routing tables, route metrics and scopes, and longest-prefix-match lookup.
//
// This is the single copy of routing state in the system: the slow path's
// ip_route_input and the fast path's bpf_fib_lookup helper both resolve
// against it — the state-sharing design LinuxFP's correctness depends on.
package fib

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"linuxfp/internal/packet"
)

// Well-known routing table IDs (matching Linux rt_tables).
const (
	TableMain  = 254
	TableLocal = 255
)

// Scope mirrors Linux route scopes.
type Scope int

// Route scopes, from widest to narrowest.
const (
	ScopeUniverse Scope = iota + 1 // via a gateway
	ScopeLink                      // directly connected subnet
	ScopeHost                      // local address
)

func (s Scope) String() string {
	switch s {
	case ScopeUniverse:
		return "global"
	case ScopeLink:
		return "link"
	case ScopeHost:
		return "host"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// Route is one FIB entry.
type Route struct {
	Prefix  packet.Prefix
	Gateway packet.Addr // zero for directly connected routes
	OutIf   int         // egress interface index
	Scope   Scope
	Metric  int
	Local   bool // destination is a local address (deliver up)
}

func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.Prefix)
	if r.Gateway != 0 {
		fmt.Fprintf(&b, " via %s", r.Gateway)
	}
	fmt.Fprintf(&b, " dev %d scope %s", r.OutIf, r.Scope)
	if r.Metric != 0 {
		fmt.Fprintf(&b, " metric %d", r.Metric)
	}
	if r.Local {
		b.WriteString(" local")
	}
	return b.String()
}

// node is a path-compressed binary trie node.
type node struct {
	prefix packet.Prefix // the bits this node covers (masked)
	routes []Route       // routes terminating exactly here, sorted by metric
	child  [2]*node
}

// Table is one routing table: a thread-safe LPM trie.
type Table struct {
	mu   sync.RWMutex
	root *node
	size int
	gen  atomic.Uint64 // bumped on every mutation; caches validate against it
}

// Gen reports the table's generation: a counter bumped on every route
// mutation. Flow caches that memoized a lookup result compare the
// generation they captured against the current one — any change
// invalidates, which is the coherence rule the fast path relies on.
func (t *Table) Gen() uint64 { return t.gen.Load() }

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{root: &node{prefix: packet.Prefix{Addr: 0, Bits: 0}}}
}

// Len reports the number of routes in the table.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// bitAt reports bit i (0 = most significant) of a.
func bitAt(a packet.Addr, i int) int {
	return int(a>>(31-i)) & 1
}

// commonBits reports how many leading bits a and b share, capped at max.
func commonBits(a, b packet.Addr, max int) int {
	n := bits.LeadingZeros32(uint32(a ^ b))
	if n > max {
		return max
	}
	return n
}

// Add inserts a route. Routes with identical prefix and metric replace the
// existing entry (the `ip route replace` behaviour used by config tools).
func (t *Table) Add(r Route) {
	r.Prefix = r.Prefix.Masked()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen.Add(1)
	n := t.insertNode(r.Prefix)
	for i, ex := range n.routes {
		if ex.Metric == r.Metric {
			n.routes[i] = r
			return
		}
	}
	n.routes = append(n.routes, r)
	sort.SliceStable(n.routes, func(i, j int) bool { return n.routes[i].Metric < n.routes[j].Metric })
	t.size++
}

// insertNode finds or creates the trie node for the exact prefix.
func (t *Table) insertNode(p packet.Prefix) *node {
	cur := t.root
	for {
		if cur.prefix.Bits == p.Bits && cur.prefix.Addr == p.Addr {
			return cur
		}
		b := bitAt(p.Addr, cur.prefix.Bits)
		next := cur.child[b]
		if next == nil {
			n := &node{prefix: p}
			cur.child[b] = n
			return n
		}
		// How much of next's prefix does p share?
		shared := commonBits(p.Addr, next.prefix.Addr, min(p.Bits, next.prefix.Bits))
		if shared == next.prefix.Bits {
			cur = next
			continue
		}
		// Split: create an intermediate node covering the shared bits.
		mid := &node{prefix: packet.Prefix{Addr: p.Addr, Bits: shared}.Masked()}
		cur.child[b] = mid
		mid.child[bitAt(next.prefix.Addr, shared)] = next
		if shared == p.Bits {
			return mid
		}
		n := &node{prefix: p}
		mid.child[bitAt(p.Addr, shared)] = n
		return n
	}
}

// Delete removes the route with the given prefix (and metric, if >= 0;
// metric -1 removes all routes on the prefix). It reports whether anything
// was removed. Trie nodes are left in place; empty nodes are harmless.
func (t *Table) Delete(p packet.Prefix, metric int) bool {
	p = p.Masked()
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for cur != nil {
		if cur.prefix.Bits == p.Bits && cur.prefix.Addr == p.Addr {
			if len(cur.routes) == 0 {
				return false
			}
			if metric < 0 {
				t.size -= len(cur.routes)
				cur.routes = nil
				t.gen.Add(1)
				return true
			}
			for i, r := range cur.routes {
				if r.Metric == metric {
					cur.routes = append(cur.routes[:i], cur.routes[i+1:]...)
					t.size--
					t.gen.Add(1)
					return true
				}
			}
			return false
		}
		if cur.prefix.Bits >= p.Bits {
			return false
		}
		cur = cur.child[bitAt(p.Addr, cur.prefix.Bits)]
		if cur != nil && !cur.prefix.Masked().Contains(p.Addr&cur.prefix.Mask()) {
			// Fast containment check: p must extend cur's prefix.
			if commonBits(p.Addr, cur.prefix.Addr, cur.prefix.Bits) != cur.prefix.Bits {
				return false
			}
		}
	}
	return false
}

// Lookup returns the longest-prefix-match route for dst (lowest metric on
// ties) and reports whether one exists.
func (t *Table) Lookup(dst packet.Addr) (Route, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var (
		best  Route
		found bool
	)
	cur := t.root
	for cur != nil {
		if commonBits(dst, cur.prefix.Addr, cur.prefix.Bits) != cur.prefix.Bits {
			break
		}
		if len(cur.routes) > 0 {
			best = cur.routes[0]
			found = true
		}
		if cur.prefix.Bits == 32 {
			break
		}
		cur = cur.child[bitAt(dst, cur.prefix.Bits)]
	}
	return best, found
}

// Routes returns all routes in deterministic (prefix, metric) order.
func (t *Table) Routes() []Route {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Route
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		out = append(out, n.routes...)
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Prefix.Addr != b.Prefix.Addr {
			return a.Prefix.Addr < b.Prefix.Addr
		}
		if a.Prefix.Bits != b.Prefix.Bits {
			return a.Prefix.Bits < b.Prefix.Bits
		}
		return a.Metric < b.Metric
	})
	return out
}

// Flush removes all routes.
func (t *Table) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root = &node{prefix: packet.Prefix{}}
	t.size = 0
	t.gen.Add(1)
}

// FIB is the set of routing tables in one network namespace.
type FIB struct {
	mu     sync.RWMutex
	tables map[int]*Table
	// main/local are cached so the per-packet Lookup (and the per-hit
	// generation check of the flow fast-cache) never touch the tables map
	// lock.
	main, local *Table
}

// New returns a FIB with empty main and local tables.
func New() *FIB {
	f := &FIB{tables: map[int]*Table{
		TableMain:  NewTable(),
		TableLocal: NewTable(),
	}}
	f.main = f.tables[TableMain]
	f.local = f.tables[TableLocal]
	return f
}

// Gen reports the combined generation of the tables Lookup consults (local
// + main). Both counters are monotonic, so the sum is monotonic too: equal
// sums imply neither table changed.
func (f *FIB) Gen() uint64 { return f.main.Gen() + f.local.Gen() }

// Table returns the table with the given ID, creating it on first use.
func (f *FIB) Table(id int) *Table {
	f.mu.RLock()
	t, ok := f.tables[id]
	f.mu.RUnlock()
	if ok {
		return t
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok = f.tables[id]; ok {
		return t
	}
	t = NewTable()
	f.tables[id] = t
	return t
}

// Main returns the main routing table.
func (f *FIB) Main() *Table { return f.main }

// Local returns the local routing table (host addresses).
func (f *FIB) Local() *Table { return f.local }

// Lookup resolves dst the way ip_route_input does: the local table first
// (host delivery wins), then the main table.
func (f *FIB) Lookup(dst packet.Addr) (Route, bool) {
	if r, ok := f.local.Lookup(dst); ok {
		return r, true
	}
	return f.main.Lookup(dst)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
