package ebpf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"linuxfp/internal/bridge"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// Loader verifies and registers programs and wires them onto hooks.
type Loader struct {
	K *kernel.Kernel

	mu       sync.Mutex
	verifier Verifier
	nextID   int
	loaded   map[int]*Program

	// Load-latency instrumentation: the controller re-loads (and therefore
	// re-specializes) on every netlink change, so verify+specialize+fuse
	// wall time is part of the reaction-latency budget.
	loads         uint64
	lastLoadWall  time.Duration
	totalLoadWall time.Duration
}

// NewLoader returns a loader bound to a kernel.
func NewLoader(k *kernel.Kernel) *Loader {
	return &Loader{K: k, loaded: make(map[int]*Program)}
}

// Load verifies a program and compiles both executable forms: the fused
// (JIT) body and the specialized body (constant-folded against the live
// configuration, then fused). Both are always built; which one executes is
// decided per packet by net.core.bpf_jit_enable and
// net.core.bpf_jit_specialize, so A/B comparison needs no reload.
//
// Load is idempotent on the same *Program: a re-load (the controller's
// re-synthesis path) keeps the program's ID, rebuilds both bodies from the
// pristine Op chain, and publishes them atomically under live traffic.
func (l *Loader) Load(p *Program) (*Program, error) {
	start := time.Now()
	if err := l.verifier.Verify(p); err != nil {
		return nil, fmt.Errorf("load %q: %w", p.Name, err)
	}
	spec := specialize(p, &SpecEnv{K: l.K, Hook: p.Hook})
	jit := fuse(p)
	p.spec.Store(spec)
	p.jit.Store(jit)
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.id == 0 {
		l.nextID++
		p.id = l.nextID
	}
	l.loaded[p.id] = p
	l.loads++
	l.lastLoadWall = time.Since(start)
	l.totalLoadWall += l.lastLoadWall
	return p, nil
}

// LoadStats reports how many Load calls ran and their wall-clock cost: the
// latest verify+specialize+fuse duration and the accumulated total.
func (l *Loader) LoadStats() (loads uint64, last, total time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loads, l.lastLoadWall, l.totalLoadWall
}

// Programs returns the loaded programs sorted by ID.
func (l *Loader) Programs() []*Program {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Program, 0, len(l.loaded))
	for _, p := range l.loaded {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Unload removes a program from the loaded set.
func (l *Loader) Unload(id int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.loaded[id]
	delete(l.loaded, id)
	return ok
}

// LoadedCount reports how many programs are loaded.
func (l *Loader) LoadedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.loaded)
}

// xdpAdapter runs a loaded XDP program on a device's XDP hook.
type xdpAdapter struct {
	k    *kernel.Kernel
	prog *Program // static program (dispatcher or direct attach)
}

var _ netdev.XDPHandler = (*xdpAdapter)(nil)

// ctxPool recycles program contexts: one per program invocation on the hot
// path, so it must not hit the heap per packet. Ops may use the Ctx only
// for the duration of the call.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// HandleXDP implements netdev.XDPHandler.
func (a *xdpAdapter) HandleXDP(buff *netdev.XDPBuff) netdev.XDPAction {
	sl := a.k.StageObs()
	var stageStart sim.Cycles
	if sl != nil {
		stageStart = buff.Meter.Total
	}
	buff.Meter.Charge(sim.CostXDPPrologue)
	ctx := ctxPool.Get().(*Ctx)
	*ctx = Ctx{
		Kernel: a.k, Meter: buff.Meter, Hook: HookXDP,
		IfIndex: buff.IfIndex, XDP: buff,
		jit: a.k.BPFJITEnabled(), spec: a.k.BPFSpecEnabled(),
	}
	v := a.prog.exec(ctx)
	act := verdictToXDP(v, buff, ctx)
	ctxPool.Put(ctx)
	if sl != nil {
		sl.Observe(kernel.StageXDP, buff.Meter, stageStart)
	}
	return act
}

// verdictToXDP maps a program verdict onto the driver-level XDP action,
// copying the redirect target (device or cpumap slot) from the context onto
// the buff. The cpumap field is only assigned when non-nil: storing a typed
// nil *CPUMap into the buff's interface field would make it compare non-nil
// and derail the driver's devmap path.
func verdictToXDP(v Verdict, buff *netdev.XDPBuff, ctx *Ctx) netdev.XDPAction {
	switch v {
	case VerdictDrop:
		return netdev.XDPDrop
	case VerdictTX:
		return netdev.XDPTx
	case VerdictRedirect:
		buff.RedirectTo = ctx.RedirectIfIndex
		if ctx.RedirectCPUMap != nil {
			buff.RedirectCPUMap = ctx.RedirectCPUMap
			buff.RedirectCPU = ctx.RedirectCPU
		}
		if ctx.RedirectXSKMap != nil {
			buff.RedirectXSKMap = ctx.RedirectXSKMap
			buff.RedirectXSKSlot = ctx.RedirectXSKSlot
		}
		return netdev.XDPRedirect
	case VerdictAborted:
		return netdev.XDPAborted
	default:
		return netdev.XDPPass
	}
}

var _ netdev.XDPBatchHandler = (*xdpAdapter)(nil)

// HandleXDPBatch implements netdev.XDPBatchHandler: one NAPI poll's worth
// of frames through the program with a single context reused across the
// burst. The full xdp_buff-setup prologue is paid once per poll; frames
// after the first run with warm I-cache and a live context, charging only
// the reduced per-frame entry cost — the batch-amortization real XDP gets
// from the NAPI loop.
func (a *xdpAdapter) HandleXDPBatch(bufs []*netdev.XDPBuff, acts []netdev.XDPAction) {
	if len(bufs) == 0 {
		return
	}
	m := bufs[0].Meter
	sl := a.k.StageObs()
	m.Charge(sim.CostXDPPrologue)
	jit := a.k.BPFJITEnabled()
	spec := a.k.BPFSpecEnabled()
	ctx := ctxPool.Get().(*Ctx)
	for i, buff := range bufs {
		if i > 0 {
			m.Charge(sim.CostXDPBatchEntry)
		}
		var stageStart sim.Cycles
		if sl != nil {
			stageStart = buff.Meter.Total
		}
		*ctx = Ctx{
			Kernel: a.k, Meter: buff.Meter, Hook: HookXDP,
			IfIndex: buff.IfIndex, XDP: buff,
			jit: jit, spec: spec,
		}
		acts[i] = verdictToXDP(a.prog.exec(ctx), buff, ctx)
		if sl != nil {
			// Per-frame observation: each frame's program run is one
			// latency sample, even inside a batched poll.
			sl.Observe(kernel.StageXDP, buff.Meter, stageStart)
		}
	}
	ctxPool.Put(ctx)
}

// tcAdapter runs a loaded TC program on a kernel TC hook.
type tcAdapter struct {
	k    *kernel.Kernel
	prog *Program
	hook Hook
}

var _ kernel.TCHandler = (*tcAdapter)(nil)

// HandleTC implements kernel.TCHandler.
func (a *tcAdapter) HandleTC(skb *kernel.SKB) kernel.TCAction {
	ctx := ctxPool.Get().(*Ctx)
	*ctx = Ctx{
		Kernel: a.k, Meter: skb.Meter, Hook: a.hook,
		IfIndex: skb.Dev.Index, SKB: skb,
		jit: a.k.BPFJITEnabled(), spec: a.k.BPFSpecEnabled(),
	}
	v := a.prog.exec(ctx)
	redirect := ctx.RedirectIfIndex
	ctxPool.Put(ctx)
	switch v {
	case VerdictDrop, VerdictAborted:
		return kernel.TCShot
	case VerdictRedirect:
		skb.RedirectTo = redirect
		return kernel.TCRedirect
	default:
		return kernel.TCOk
	}
}

var _ kernel.TCBatchHandler = (*tcAdapter)(nil)

// HandleTCBatch implements kernel.TCBatchHandler: the TC-hook twin of
// HandleXDPBatch. One context is reused across the whole burst of skbs, so
// the program runs back to back with warm I-cache; the kernel side charges
// the classifier entry costs (full on the first skb, batch-entry discount
// after), mirroring how the XDP batch runner splits costs with the driver.
func (a *tcAdapter) HandleTCBatch(skbs []*kernel.SKB, acts []kernel.TCAction) {
	if len(skbs) == 0 {
		return
	}
	jit := a.k.BPFJITEnabled()
	spec := a.k.BPFSpecEnabled()
	ctx := ctxPool.Get().(*Ctx)
	for i, skb := range skbs {
		*ctx = Ctx{
			Kernel: a.k, Meter: skb.Meter, Hook: a.hook,
			IfIndex: skb.Dev.Index, SKB: skb,
			jit: jit, spec: spec,
		}
		switch a.prog.exec(ctx) {
		case VerdictDrop, VerdictAborted:
			acts[i] = kernel.TCShot
		case VerdictRedirect:
			skb.RedirectTo = ctx.RedirectIfIndex
			acts[i] = kernel.TCRedirect
		default:
			acts[i] = kernel.TCOk
		}
	}
	ctxPool.Put(ctx)
}

// AttachXDP attaches a loaded program to a device's XDP hook.
func (l *Loader) AttachXDP(dev *netdev.Device, p *Program, mode string) error {
	if p.Hook != HookXDP {
		return fmt.Errorf("ebpf: program %q is for %v, not XDP", p.Name, p.Hook)
	}
	if p.id == 0 {
		return fmt.Errorf("ebpf: program %q not loaded", p.Name)
	}
	dev.AttachXDP(&xdpAdapter{k: l.K, prog: p}, mode)
	return nil
}

// AttachTC attaches a loaded program to a TC hook.
func (l *Loader) AttachTC(ifindex int, p *Program) error {
	if p.Hook != HookTCIngress && p.Hook != HookTCEgress {
		return fmt.Errorf("ebpf: program %q is for %v, not TC", p.Name, p.Hook)
	}
	if p.id == 0 {
		return fmt.Errorf("ebpf: program %q not loaded", p.Name)
	}
	l.K.AttachTC(ifindex, p.Hook == HookTCIngress, &tcAdapter{k: l.K, prog: p, hook: p.Hook})
	return nil
}

// Dispatcher is the permanently attached entry program: one tail call into
// slot 0 of its program array. Replacing the data path atomically is a
// single ProgArray.Update — no detach/attach window, no packet loss
// (paper §IV-A2 and Fig. 4).
type Dispatcher struct {
	Prog  *Program
	Table *ProgArray
}

// NewDispatcher builds and loads a dispatcher for the hook.
func (l *Loader) NewDispatcher(name string, hook Hook) (*Dispatcher, error) {
	table := NewProgArray(name+"_table", 1)
	entry := &Program{
		Name: name,
		Hook: hook,
		Ops: []Op{
			NewOp("tail_call_entry", 0, CapTailCall, 4, func(c *Ctx) Verdict {
				return c.TailCall(table, 0)
			}),
		},
		// An empty slot aborts the tail call; pass to the slow path then.
		Default: VerdictPass,
	}
	loaded, err := l.Load(entry)
	if err != nil {
		return nil, err
	}
	return &Dispatcher{Prog: loaded, Table: table}, nil
}

// Swap atomically replaces the active data path. A nil program empties the
// dispatcher, sending all traffic to the slow path.
func (d *Dispatcher) Swap(p *Program) {
	d.Table.Update(0, p)
}

// Active returns the currently installed data path.
func (d *Dispatcher) Active() *Program {
	return d.Table.Lookup(0)
}

// --- helpers -------------------------------------------------------------------

// FIBResult is what bpf_fib_lookup returns on success: everything needed to
// rewrite and redirect without touching the slow path.
type FIBResult struct {
	EgressIfIndex int
	SrcMAC        packet.HWAddr // egress device MAC
	DstMAC        packet.HWAddr // resolved next-hop MAC
}

// HelperFIBLookup is bpf_fib_lookup: one call resolves route + neighbour
// against live kernel state. A miss (no route, or unresolved/stale
// neighbour) tells the fast path to punt to the slow path, which will do
// the full resolution dance.
func HelperFIBLookup(c *Ctx, dst packet.Addr) (FIBResult, bool) {
	c.Meter.Charge(sim.CostHelperFIB)
	r, ok := c.Kernel.FIB.Lookup(dst)
	if !ok || r.Local {
		return FIBResult{}, false
	}
	out, ok := c.Kernel.DeviceByIndex(r.OutIf)
	if !ok || !out.IsUp() {
		return FIBResult{}, false
	}
	nexthop := r.Gateway
	if nexthop == 0 {
		nexthop = dst
	}
	mac, ok := c.Kernel.Neigh.Resolved(nexthop, c.Kernel.Now())
	if !ok {
		return FIBResult{}, false
	}
	return FIBResult{EgressIfIndex: out.Index, SrcMAC: out.MAC, DstMAC: mac}, true
}

// HelperRedirectCPU is bpf_redirect_map on a cpumap: the frame is handed to
// another CPU's kthread for full-stack processing there, and the RX core
// moves on. The verdict is terminal; the driver's xdp_do_flush stages and
// spills the frame in bulk. An empty slot surfaces at enqueue time as an
// XDP exception drop, matching the kernel's late cpu_map_lookup_elem.
func HelperRedirectCPU(c *Ctx, cm *CPUMap, cpu int) Verdict {
	c.Meter.Charge(sim.CostMapLookup)
	c.RedirectCPUMap = cm
	c.RedirectCPU = cpu
	return VerdictRedirect
}

// HelperFDBLookup is the paper's new bpf_fdb_lookup: resolve the egress
// port for a MAC/VLAN against the live bridge FDB, honouring port state.
// Misses (unlearned, aged, blocked port) punt to the slow path, which owns
// learning and flooding.
func HelperFDBLookup(c *Ctx, br *bridge.Bridge, mac packet.HWAddr, vlan uint16) (int, bool) {
	c.Meter.Charge(sim.CostHelperFDB)
	port, ok := br.FDBLookup(mac, vlan, c.Kernel.Now())
	if !ok {
		return 0, false
	}
	p, exists := br.Port(port)
	if !exists || p.State != bridge.Forwarding {
		return 0, false
	}
	return port, true
}

// HelperIPVSLookup is the LB prototype's bpf_ipvs_lookup: resolve the
// backend for an *established* virtual-service flow from the kernel's ipvs
// connection table. New flows miss (ok=false with vip=true), telling the
// fast path to punt so the slow path runs the scheduler — scheduling is
// control-plane work (Table I). Non-VIP traffic returns vip=false.
func HelperIPVSLookup(c *Ctx) (backend packet.Addr, vip, ok bool) {
	c.Meter.Charge(sim.CostLBConnHash)
	backend, ok = c.Kernel.IPVSLookup(c.IPSrc, c.IPDst, c.IPProto, c.SrcPort, c.DstPort, false)
	if ok {
		return backend, true, true
	}
	// Distinguish "not a VIP" from "VIP but unscheduled flow".
	if _, isVIP := c.Kernel.IPVSLookupService(c.IPDst, c.DstPort, c.IPProto); isVIP {
		return 0, true, false
	}
	return 0, false, false
}

// HelperRingbufOutput is bpf_ringbuf_output: reserve, copy, submit. It
// charges the reserve/commit costs plus a per-byte copy cost, and the wakeup
// cost only when this submit actually posts the consumer doorbell (so raising
// the ring's wakeup batch directly cuts the amortized helper cost). A full
// ring returns false without blocking — the event is dropped and counted on
// the ring, never the packet.
func HelperRingbufOutput(c *Ctx, rb *RingBuf, data []byte) bool {
	c.Meter.Charge(sim.CostRingbufReserve)
	rec := rb.Reserve(len(data))
	if rec == nil {
		return false
	}
	copy(rec.Bytes(), data)
	c.Meter.Charge(sim.CostRingbufPerByte*sim.Cycles(len(data)) + sim.CostRingbufCommit)
	if rec.Submit() {
		c.Meter.Charge(sim.CostRingbufWakeup)
	}
	return true
}

// HelperRingbufOutputEvent emits one fixed-layout telemetry Event — the form
// every fast-path producer (fpm.TraceOp, drop mirrors) uses.
func HelperRingbufOutputEvent(c *Ctx, rb *RingBuf, e *Event) bool {
	var buf [EventSize]byte
	e.MarshalInto(&buf)
	return HelperRingbufOutput(c, rb, buf[:])
}

// IptResult is the tri-state outcome of bpf_ipt_lookup.
type IptResult int

// bpf_ipt_lookup outcomes.
const (
	IptAllow IptResult = iota + 1
	IptDeny
	// IptPunt tells the fast path to hand the packet to the slow path:
	// the rules need conntrack state the fast path may only read, and the
	// flow has no entry yet (the slow path creates it).
	IptPunt
)

// HelperIptLookup is the paper's new bpf_ipt_lookup: evaluate a chain
// against live iptables state, charging the fast-path match costs
// (cheaper per rule than the skb-based slow path, and one hashed probe per
// ipset match). When rules match on conntrack state, the helper performs a
// read-only conntrack lookup; flows without an entry punt so the slow path
// owns flow creation (Table I's division for conntrack handling).
func HelperIptLookup(c *Ctx, hook netfilter.Hook, outIf int) IptResult {
	meta := &netfilter.Meta{
		Src: c.IPSrc, Dst: c.IPDst, Proto: c.IPProto,
		SrcPort: c.SrcPort, DstPort: c.DstPort,
		InIf: c.IfIndex, OutIf: outIf, Fragment: c.Fragment,
	}
	if c.Kernel.NF.CTRequired() {
		c.Meter.Charge(sim.CostConntrackLookup)
		conn, _, ok := c.Kernel.NF.Conntrack.Lookup(netfilter.Tuple{
			Src: meta.Src, Dst: meta.Dst, Proto: meta.Proto,
			SrcPort: meta.SrcPort, DstPort: meta.DstPort,
		}, c.Kernel.Now())
		if !ok {
			return IptPunt
		}
		meta.CTState = conn.State
	}
	v, st := c.Kernel.NF.EvaluateHook(hook, meta)
	c.Meter.Charge(sim.CostHelperIptB +
		sim.Cycles(st.RulesEvaluated)*sim.CostIptRuleFast +
		sim.Cycles(st.SetProbes)*sim.CostIpsetLookup)
	if v == netfilter.VerdictDrop {
		return IptDeny
	}
	return IptAllow
}

// HelperIptLookupCompiled is the specialized form of bpf_ipt_lookup the JIT
// specializer emits: the chain was compiled to a lock-free snapshot at Load
// time, so evaluation skips the helper's meta-marshalling fixed part and the
// interpreter's per-rule dispatch, and packets whose protocol no rule can
// match skip the walk entirely. A generation guard keeps it sound: when the
// ruleset has changed since compilation, the call falls back to the generic
// helper, which is always correct (the controller re-specializes on the next
// netlink event). Verdicts, punt behaviour, and rule hit counters are
// identical to the generic path in every case.
func HelperIptLookupCompiled(c *Ctx, comp *netfilter.Compiled, hook netfilter.Hook, outIf int) IptResult {
	c.Meter.Charge(sim.CostSpecGuard)
	if c.Kernel.NF.Gen() != comp.Gen {
		return HelperIptLookup(c, hook, outIf)
	}
	meta := netfilter.Meta{
		Src: c.IPSrc, Dst: c.IPDst, Proto: c.IPProto,
		SrcPort: c.SrcPort, DstPort: c.DstPort,
		InIf: c.IfIndex, OutIf: outIf, Fragment: c.Fragment,
	}
	if comp.CTRequired {
		// Conntrack semantics must mirror the generic helper exactly: the
		// read-only lookup runs first, and a flow without an entry punts so
		// the slow path owns creation.
		c.Meter.Charge(sim.CostConntrackLookup)
		conn, _, ok := c.Kernel.NF.Conntrack.Lookup(netfilter.Tuple{
			Src: meta.Src, Dst: meta.Dst, Proto: meta.Proto,
			SrcPort: meta.SrcPort, DstPort: meta.DstPort,
		}, c.Kernel.Now())
		if !ok {
			return IptPunt
		}
		meta.CTState = conn.State
	}
	if comp.CanSkipProto(c.IPProto) {
		return IptAllow // dead arm: no rule can match this protocol
	}
	v, st := comp.Evaluate(&meta)
	c.Meter.Charge(sim.CostIptSpecBase +
		sim.Cycles(st.RulesEvaluated)*sim.CostIptRuleSpec +
		sim.Cycles(st.SetProbes)*sim.CostIpsetLookup)
	if v == netfilter.VerdictDrop {
		return IptDeny
	}
	return IptAllow
}
