package core

import (
	"sync"
	"time"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netlink"
	"linuxfp/internal/sim"
)

// Options configures a controller.
type Options struct {
	// PreferTC attaches all fast paths at the TC hook (container hosts).
	PreferTC bool
	// DisabledHelpers models an unpatched kernel missing some helpers.
	DisabledHelpers ebpf.Cap
}

// Reaction records one reconcile: what triggered it and how long the
// pipeline took, in the virtual latency model (Table VI) and on the wall
// clock of this reproduction.
type Reaction struct {
	Trigger    string
	Virtual    sim.Duration
	Wall       time.Duration
	LoadWall   time.Duration // verify + specialize + fuse, summed over deploys
	SwapWall   time.Duration // dispatcher attach/swap, summed over deploys
	Modules    int // module instances synthesized
	NewModules int // module instances not present before
	Deployed   bool
}

// Controller is the LinuxFP daemon.
type Controller struct {
	K *kernel.Kernel

	store    *ObjectStore
	caps     *CapabilityManager
	topo     *TopologyManager
	synth    *Synthesizer
	deployer *Deployer

	sub  *netlink.Subscription
	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	lastGraph   *Graph
	lastPrint   string
	lastModules map[string]bool
	reactions   []Reaction
	droppedSeen uint64
	started     bool
}

// New builds a controller for a kernel.
func New(k *kernel.Kernel, opts Options) *Controller {
	store := NewObjectStore()
	caps := NewCapabilityManager(opts.PreferTC)
	if opts.DisabledHelpers != 0 {
		caps.DisableHelper(opts.DisabledHelpers)
	}
	loader := ebpf.NewLoader(k)
	return &Controller{
		K:           k,
		store:       store,
		caps:        caps,
		topo:        NewTopologyManager(store, caps),
		synth:       NewSynthesizer(k, caps),
		deployer:    NewDeployer(loader),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		lastModules: map[string]bool{},
	}
}

// Start subscribes to kernel notifications, performs the initial dump, and
// launches the reconcile loop.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	// Fresh lifecycle channels so a controller can be restarted.
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	c.mu.Unlock()

	// Subscribe before dumping so no change can fall between them.
	c.sub = c.K.Bus.Subscribe(netlink.GroupAll)
	for _, msg := range c.K.Bus.Dump(netlink.GroupAll) {
		c.store.Apply(msg)
	}
	c.reconcile("startup", true)
	go c.run()
}

// Stop shuts the reconcile loop down and waits for it to exit.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	c.sub.Close()
	// Clean shutdown withdraws the fast paths: the host returns to stock
	// Linux behaviour. (Real eBPF programs would survive the daemon; a
	// deliberate teardown detaches them, which is what Stop models.)
	for _, name := range c.deployer.Deployed() {
		c.deployer.Undeploy(name)
	}
	// Forget the deployed graph so a restart synthesizes from scratch.
	c.mu.Lock()
	c.lastPrint = ""
	c.lastModules = map[string]bool{}
	c.mu.Unlock()
}

// run is the daemon loop: each batch of notifications triggers one
// reconcile.
func (c *Controller) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case msg, ok := <-c.sub.C:
			if !ok {
				return
			}
			changed := c.store.Apply(msg)
			trigger := msg.Type.String()
			netfilterTouched := netlink.GroupOf(msg.Type) == netlink.GroupNetfilter
			// Drain the burst: one reconcile per batch of changes.
			for {
				select {
				case more, ok := <-c.sub.C:
					if !ok {
						return
					}
					if c.store.Apply(more) {
						changed = true
					}
					if netlink.GroupOf(more.Type) == netlink.GroupNetfilter {
						netfilterTouched = true
					}
					continue
				default:
				}
				break
			}
			if c.resyncIfOverflowed() {
				changed = true
			}
			if changed {
				c.reconcile(trigger, netfilterTouched)
			}
		}
	}
}

// Sync applies all pending notifications and reconciles synchronously —
// what tests and the benchmark harness use for determinism. The trigger
// label comes from the first pending message.
func (c *Controller) Sync() {
	trigger := "sync"
	netfilterTouched := false
	changed := c.resyncIfOverflowed()
	for {
		select {
		case msg := <-c.sub.C:
			if c.store.Apply(msg) {
				if !changed {
					trigger = msg.Type.String()
				}
				changed = true
			}
			if netlink.GroupOf(msg.Type) == netlink.GroupNetfilter {
				netfilterTouched = true
			}
			continue
		default:
		}
		break
	}
	if changed {
		c.reconcile(trigger, netfilterTouched)
	}
}

// resyncIfOverflowed detects lost notifications (the netlink ENOBUFS
// condition: a burst overflowed the subscription buffer) and recovers the
// way real daemons do — a full state dump. It reports whether the dump
// changed the store.
func (c *Controller) resyncIfOverflowed() bool {
	dropped := c.sub.Dropped()
	c.mu.Lock()
	seen := c.droppedSeen
	c.droppedSeen = dropped
	c.mu.Unlock()
	if dropped == seen {
		return false
	}
	changed := false
	for _, msg := range c.K.Bus.Dump(netlink.GroupAll) {
		if c.store.Apply(msg) {
			changed = true
		}
	}
	return changed
}

// reconcile rebuilds the graph, synthesizes what changed and deploys it,
// recording the reaction time under the Table VI latency model.
func (c *Controller) reconcile(trigger string, netfilterTouched bool) {
	start := time.Now()

	graph := c.topo.Build()
	modules := graph.ModuleSet()

	c.mu.Lock()
	prevModules := c.lastModules
	prevPrint := c.lastPrint
	c.mu.Unlock()

	newCount := 0
	for m := range modules {
		if !prevModules[m] {
			newCount++
		}
	}
	changed := graph.Fingerprint() != prevPrint

	deployed := false
	filterInvolved := false
	var loadWall, swapWall time.Duration
	if changed {
		// Synthesize and deploy every interface in the new graph (the
		// controller regenerates the whole data path, paper §III-C).
		for _, ig := range graph.Interfaces {
			prog, err := c.synth.Synthesize(ig)
			if err != nil || prog == nil {
				c.deployer.Undeploy(ig.Name)
				continue
			}
			if findNode(ig, FPMFilter) != nil {
				filterInvolved = true
			}
			if err := c.deployer.Deploy(ig, prog); err != nil {
				c.deployer.Undeploy(ig.Name)
				continue
			}
			lw, sw := c.deployer.LastTiming()
			loadWall += lw
			swapWall += sw
			deployed = true
		}
		// Interfaces that dropped out of the graph go back to slow path.
		for _, name := range c.deployer.Deployed() {
			if _, ok := graph.Interfaces[name]; !ok {
				c.deployer.Undeploy(name)
			}
		}
	}

	// Virtual reaction-time model (Table VI): notification latency, the
	// libiptc dump when netfilter state had to be re-read, graph build,
	// template rendering per module instance, the clang compile of the
	// generated data path (base + per new module), verifier+load, and the
	// dispatcher swap.
	virtual := sim.LatNetlinkNotify + sim.LatGraphBuild
	if netfilterTouched {
		virtual += sim.LatIptcDump
	}
	if changed {
		virtual += sim.Duration(len(modules)) * sim.LatSynthPerFPM
		virtual += sim.Duration(newCount) * sim.LatCompilePerFPM
		virtual += sim.LatCompileBase + sim.LatVerifyLoad + sim.LatAttachSwap
		if filterInvolved && netfilterTouched {
			virtual += sim.LatSynthIptExtra
		}
	}

	c.mu.Lock()
	c.lastGraph = graph
	c.lastPrint = graph.Fingerprint()
	c.lastModules = modules
	c.reactions = append(c.reactions, Reaction{
		Trigger: trigger, Virtual: virtual, Wall: time.Since(start),
		LoadWall: loadWall, SwapWall: swapWall,
		Modules: len(modules), NewModules: newCount, Deployed: deployed,
	})
	c.mu.Unlock()
}

// FastPathStats aggregates data-plane counters across every accelerated
// interface — the operational "how much is the fast path actually
// carrying" view.
type FastPathStats struct {
	Interfaces int
	Redirects  uint64 // packets fully handled by the fast path
	Drops      uint64 // packets dropped by fast-path filtering
	SlowPath   uint64 // packets the kernel handled (punts + unaccelerated)
}

// FastPathStats snapshots the current acceleration counters.
func (c *Controller) FastPathStats() FastPathStats {
	var out FastPathStats
	for _, name := range c.deployer.Deployed() {
		dev, ok := c.K.DeviceByName(name)
		if !ok {
			continue
		}
		st := dev.Stats()
		out.Interfaces++
		out.Redirects += st.XDPRedirects + st.XDPTx
		out.Drops += st.XDPDrops
	}
	ks := c.K.Stats()
	out.SlowPath = ks.Forwarded + ks.Delivered
	return out
}

// Graph returns the most recently built processing graph.
func (c *Controller) Graph() *Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGraph
}

// Reactions returns the reconcile history.
func (c *Controller) Reactions() []Reaction {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Reaction(nil), c.reactions...)
}

// LastReaction returns the most recent reaction, if any.
func (c *Controller) LastReaction() (Reaction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.reactions) == 0 {
		return Reaction{}, false
	}
	return c.reactions[len(c.reactions)-1], true
}

// Deployer exposes deployment state for inspection.
func (c *Controller) Deployer() *Deployer { return c.deployer }

// Capabilities exposes the capability manager (tests model unpatched
// kernels through it).
func (c *Controller) Capabilities() *CapabilityManager { return c.caps }
