// Multi-queue receive: per-CPU statistic shards, NAPI-style batch delivery,
// and per-RX-queue worker goroutines. This is the receive-side scaling half
// of the datapath — the netdev package steers flows to queues with the
// Toeplitz hash, and each queue drains into the stack on its own virtual CPU
// with no shared locks on the hot path.
package kernel

import (
	"sync"
	"sync/atomic"

	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// NumRxShards is the number of per-CPU statistic/cache shards. It matches
// netdev.MaxRxQueues so a meter's CPU maps 1:1 onto a shard, and is a power
// of two so the mapping is a mask.
const NumRxShards = netdev.MaxRxQueues

const rxShardMask = NumRxShards - 1

// shardCounters is one CPU's slice of the stack counters. Fields are
// atomics so a reader (Stats) can sum live shards without stopping traffic;
// the padding keeps each shard on its own cache lines so two queues never
// false-share a counter word.
type shardCounters struct {
	forwarded     atomic.Uint64
	delivered     atomic.Uint64
	dropped       atomic.Uint64
	noRoute       atomic.Uint64
	ttlExpired    atomic.Uint64
	filterDropped atomic.Uint64
	arpTx         atomic.Uint64
	icmpTx        atomic.Uint64
	stpTx         atomic.Uint64
	fragsSent     atomic.Uint64
	reassembled   atomic.Uint64
	flowHits      atomic.Uint64
	flowMisses    atomic.Uint64
	groCoalesced  atomic.Uint64
	groFlushes    atomic.Uint64
	groSupersegs  atomic.Uint64 // 16 words: exactly 128 bytes (two cache lines)
}

// shardIdx maps a meter to its shard. A nil meter (functional tests, config
// paths) accounts on shard 0.
func shardIdx(m *sim.Meter) int {
	if m == nil {
		return 0
	}
	return m.CPU & rxShardMask
}

// ctr returns the counter shard for the meter's CPU.
func (k *Kernel) ctr(m *sim.Meter) *shardCounters {
	return &k.shards[shardIdx(m)]
}

// --- counters ----------------------------------------------------------------

func (k *Kernel) countDrop(m *sim.Meter) { k.ctr(m).dropped.Add(1) }

func (k *Kernel) countFilterDrop(m *sim.Meter) {
	c := k.ctr(m)
	c.filterDropped.Add(1)
	c.dropped.Add(1)
}

func (k *Kernel) countNoRoute(m *sim.Meter) {
	c := k.ctr(m)
	c.noRoute.Add(1)
	c.dropped.Add(1)
}

func (k *Kernel) countTTLExpired(m *sim.Meter) {
	c := k.ctr(m)
	c.ttlExpired.Add(1)
	c.dropped.Add(1)
}

func (k *Kernel) countForwarded(m *sim.Meter) { k.ctr(m).forwarded.Add(1) }

func (k *Kernel) countDelivered(m *sim.Meter) { k.ctr(m).delivered.Add(1) }

func (k *Kernel) countReassembled(m *sim.Meter) { k.ctr(m).reassembled.Add(1) }

func (k *Kernel) bumpARPTx(m *sim.Meter) { k.ctr(m).arpTx.Add(1) }

func (k *Kernel) bumpICMPTx(m *sim.Meter) { k.ctr(m).icmpTx.Add(1) }

func (k *Kernel) bumpSTPTx(m *sim.Meter) { k.ctr(m).stpTx.Add(1) }

// --- batch receive -----------------------------------------------------------

// DeliverBatch implements netdev.BatchStack: one NAPI poll's worth of frames
// entering the stack together. The poll prologue (irq handling, poll-list
// bookkeeping, budget accounting) is charged once for the burst instead of
// per frame, and one scratch buffer serves every frame — the skb-recycling
// win real NAPI gets from bulk allocation.
//
// When the device has GRO enabled the burst first runs through the per-CPU
// GRO layer, which coalesces same-flow TCP segments into supersegments; the
// stack (and any TC ingress program) then walks once per supersegment
// instead of once per frame. With GRO off but a batch-capable TC program
// attached, the burst still takes the batched TC runner. Either way frames
// that neither coalesce nor batch fall back to the exact per-frame path.
func (k *Kernel) DeliverBatch(dev *netdev.Device, frames [][]byte, m *sim.Meter) {
	if len(frames) == 0 {
		return
	}
	m.Charge(sim.CostNAPIPoll)
	sc := rxScratchPool.Get().(*rxScratch)
	th := k.tcIngressFor(dev.Index)
	_, tcBatch := th.(TCBatchHandler)
	// GRO is gated off for bridge slaves (br_handle_frame runs before IP
	// input and forwards raw L2 frames) and while IPVS is active (its
	// interception path is not supersegment-aware); both keep the batch
	// path byte-for-byte equivalent to the per-frame one.
	gro := dev.GROEnabled() && dev.Master() == 0 && !k.IPVSActive()
	if !gro && !tcBatch {
		for _, frame := range frames {
			k.deliverFrame(dev, frame, m, sc)
		}
		rxScratchPool.Put(sc)
		return
	}
	b := groBatchPool.Get().(*groBatch)
	outs := b.outs[:0]
	if gro {
		outs = k.groRun(dev, frames, outs, m)
	} else {
		for _, frame := range frames {
			outs = append(outs, groOut{frame: frame, dev: dev, gso: gsoMeta{segs: 1}})
		}
	}
	k.deliverOuts(outs, gro, m, sc)
	b.outs = outs[:0]
	groBatchPool.Put(b)
	rxScratchPool.Put(sc)
}

// --- per-queue workers -------------------------------------------------------

// RxQueueStat is one RX queue's lifetime accounting.
type RxQueueStat struct {
	Queue   int
	Packets uint64
	Cycles  sim.Cycles
}

// rxQueueWorker is one queue's goroutine state.
type rxQueueWorker struct {
	ch      chan [][]byte
	meter   sim.Meter
	packets uint64
}

// RxWorkerPool runs one goroutine per RX queue of a device, each draining
// bursts into the stack on its own virtual CPU — the software model of
// per-queue NAPI contexts pinned to distinct cores. The pool's dispatcher
// (Steer) plays the role of the NIC: it hashes each frame to a queue and
// accumulates per-queue bursts.
type RxWorkerPool struct {
	dev     *netdev.Device
	burst   int
	workers []*rxQueueWorker
	pending [][][]byte
	wg      sync.WaitGroup
}

// StartRxQueues configures the device for n RX queues and starts one worker
// goroutine per queue. burst is the NAPI budget: frames per batch handed to
// the stack (64 is the kernel default).
func (k *Kernel) StartRxQueues(dev *netdev.Device, n, burst int) *RxWorkerPool {
	if burst < 1 {
		burst = 64
	}
	dev.SetRxQueues(n)
	n = dev.RxQueues()
	p := &RxWorkerPool{dev: dev, burst: burst}
	p.workers = make([]*rxQueueWorker, n)
	p.pending = make([][][]byte, n)
	for q := 0; q < n; q++ {
		w := &rxQueueWorker{ch: make(chan [][]byte, 256), meter: sim.Meter{CPU: q}}
		p.workers[q] = w
		p.wg.Add(1)
		go func(q int, w *rxQueueWorker) {
			defer p.wg.Done()
			for batch := range w.ch {
				dev.ReceiveBatch(batch, q, &w.meter)
				w.packets += uint64(len(batch))
			}
			// napi_disable: drain anything GRO still holds on this queue's
			// shard (gro_flush_timeout can carry holds across polls) before
			// the worker exits, so no segment is stranded.
			k.groFlushShard(shardIdx(&w.meter), dev, &w.meter)
		}(q, w)
	}
	return p
}

// Steer hashes a frame to its RX queue and appends it to that queue's
// pending burst, flushing when the burst fills. The frame must be owned by
// the pool after the call (callers hand over fresh copies, like DMA'd ring
// buffers).
func (p *RxWorkerPool) Steer(frame []byte) {
	q := p.dev.QueueFor(frame)
	p.pending[q] = append(p.pending[q], frame)
	if len(p.pending[q]) >= p.burst {
		p.workers[q].ch <- p.pending[q]
		p.pending[q] = nil
	}
}

// Flush pushes all partial bursts to their workers.
func (p *RxWorkerPool) Flush() {
	for q, batch := range p.pending {
		if len(batch) > 0 {
			p.workers[q].ch <- batch
			p.pending[q] = nil
		}
	}
}

// Close flushes, stops every worker, and waits for in-flight bursts to
// finish. The pool must not be used afterwards.
func (p *RxWorkerPool) Close() {
	p.Flush()
	for _, w := range p.workers {
		close(w.ch)
	}
	p.wg.Wait()
}

// Stats reports per-queue packet and cycle totals. Only valid after Close
// (the workers own their meters while running).
func (p *RxWorkerPool) Stats() []RxQueueStat {
	out := make([]RxQueueStat, len(p.workers))
	for q, w := range p.workers {
		out[q] = RxQueueStat{Queue: q, Packets: w.packets, Cycles: w.meter.Total}
	}
	return out
}

// MaxQueueCycles reports the busiest queue's cycle total — the wall-clock
// bound on the burst: with one core per queue, the slowest queue finishes
// last. Only valid after Close.
func (p *RxWorkerPool) MaxQueueCycles() sim.Cycles {
	var max sim.Cycles
	for _, w := range p.workers {
		if w.meter.Total > max {
			max = w.meter.Total
		}
	}
	return max
}
