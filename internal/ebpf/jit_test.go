package ebpf

import (
	"fmt"
	"testing"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// jitParityProg builds a program whose ops exercise every exit shape:
// early termination, a self-metering non-FuncOp, and the fallthrough
// default.
type recordingOp struct{ calls *int }

func (o recordingOp) Name() string     { return "opaque" }
func (o recordingOp) Cost() sim.Cycles { return 7 }
func (o recordingOp) Caps() Cap        { return 0 }
func (o recordingOp) Insns() int       { return 3 }
func (o recordingOp) Run(c *Ctx) Verdict {
	c.Meter.Charge(7)
	*o.calls = *o.calls + 1
	return VerdictNext
}

func TestJITCycleParityWithInterpreter(t *testing.T) {
	// For every terminal position, the fused run must charge byte-identical
	// model cycles to the interpreted walk: the costs model kernel work, not
	// interpreter overhead, and the calibration tests pin exact totals.
	verdicts := []Verdict{VerdictPass, VerdictDrop, VerdictTX, VerdictRedirect, VerdictAborted}
	for term := 0; term <= 4; term++ {
		for _, tv := range verdicts {
			var opaqueCalls int
			mk := func(i int) Op {
				if i == 2 {
					return recordingOp{calls: &opaqueCalls}
				}
				v := VerdictNext
				if i == term {
					v = tv
				}
				return NewOp(fmt.Sprintf("op%d", i), sim.Cycles(10*(i+1)), 0, 4, func(*Ctx) Verdict { return v })
			}
			p := &Program{Name: "parity", Hook: HookXDP, Ops: []Op{mk(0), mk(1), mk(2), mk(3), mk(4)}}
			j := fuse(p)
			p.jit.Store(j)

			mi, mj := &sim.Meter{}, &sim.Meter{}
			vi := p.run(&Ctx{Meter: mi})
			vj := j.run(&Ctx{Meter: mj})
			if vi != vj {
				t.Fatalf("term=%d %v: verdict interpreted=%v jit=%v", term, tv, vi, vj)
			}
			if mi.Total != mj.Total {
				t.Fatalf("term=%d %v: cycles interpreted=%v jit=%v", term, tv, mi.Total, mj.Total)
			}
		}
	}
}

func TestJITFallthroughParity(t *testing.T) {
	for _, def := range []Verdict{VerdictNext, VerdictPass, VerdictDrop} {
		p := &Program{Name: "fall", Hook: HookXDP, Default: def, Ops: []Op{
			NewOp("a", 11, 0, 4, func(*Ctx) Verdict { return VerdictNext }),
			NewOp("b", 13, 0, 4, func(*Ctx) Verdict { return VerdictNext }),
		}}
		j := fuse(p)
		p.jit.Store(j)
		mi, mj := &sim.Meter{}, &sim.Meter{}
		vi, vj := p.run(&Ctx{Meter: mi}), j.run(&Ctx{Meter: mj})
		if vi != vj || mi.Total != mj.Total {
			t.Fatalf("default=%v: interpreted (%v, %v) vs jit (%v, %v)", def, vi, mi.Total, vj, mj.Total)
		}
	}
}

func TestLoadBuildsJITAggregates(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	p := &Program{Name: "agg", Hook: HookXDP, Ops: []Op{
		NewOp("a", 100, 0, 10, func(*Ctx) Verdict { return VerdictNext }),
		NewOp("b", 200, 0, 20, func(*Ctx) Verdict { return VerdictNext }),
	}}
	if _, err := l.Load(p); err != nil {
		t.Fatal(err)
	}
	if p.JITInsns() != 30 {
		t.Fatalf("JITInsns = %d, want 30", p.JITInsns())
	}
	if p.JITCost() != 300 {
		t.Fatalf("JITCost = %v, want 300", p.JITCost())
	}
}

func TestBPFJITEnableSysctl(t *testing.T) {
	k := kernel.New("t")
	if !k.BPFJITEnabled() {
		t.Fatal("bpf_jit_enable must default on")
	}
	k.SetSysctl("net.core.bpf_jit_enable", "0")
	if k.BPFJITEnabled() {
		t.Fatal("sysctl off ignored")
	}
	k.SetSysctl("net.core.bpf_jit_enable", "1")
	if !k.BPFJITEnabled() {
		t.Fatal("sysctl on ignored")
	}
}

func TestJITTailCallParity(t *testing.T) {
	// A fused dispatcher must tail-call into the fused callee and produce the
	// same cycles and verdict as the interpreted chain.
	k := kernel.New("t")
	l := NewLoader(k)
	pa := NewProgArray("table", 1)
	callee := &Program{Name: "callee", Hook: HookXDP, Ops: []Op{
		NewOp("body", 77, 0, 8, func(*Ctx) Verdict { return VerdictDrop }),
	}}
	if _, err := l.Load(callee); err != nil {
		t.Fatal(err)
	}
	pa.Update(0, callee)
	entry := &Program{Name: "entry", Hook: HookXDP, Ops: []Op{
		NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict { return c.TailCall(pa, 0) }),
	}, Default: VerdictPass}
	if _, err := l.Load(entry); err != nil {
		t.Fatal(err)
	}

	mi, mj := &sim.Meter{}, &sim.Meter{}
	vi := entry.exec(&Ctx{Meter: mi, jit: false})
	vj := entry.exec(&Ctx{Meter: mj, jit: true})
	if vi != VerdictDrop || vj != VerdictDrop {
		t.Fatalf("verdicts %v / %v, want drop", vi, vj)
	}
	if mi.Total != mj.Total {
		t.Fatalf("cycles interpreted=%v jit=%v", mi.Total, mj.Total)
	}
}

func TestBatchHandlerMatchesPerPacket(t *testing.T) {
	// The batch adapter must yield the same actions and redirect targets as
	// per-packet HandleXDP, with the reduced entry cost for frames 2..n.
	k := kernel.New("t")
	l := NewLoader(k)
	p := &Program{Name: "mix", Hook: HookXDP, Ops: []Op{
		NewOp("classify", 50, CapRedirect, 16, func(c *Ctx) Verdict {
			switch c.XDP.Data[0] % 4 {
			case 0:
				return VerdictDrop
			case 1:
				return VerdictTX
			case 2:
				c.RedirectIfIndex = 7
				return VerdictRedirect
			default:
				return VerdictPass
			}
		}),
	}}
	if _, err := l.Load(p); err != nil {
		t.Fatal(err)
	}
	a := &xdpAdapter{k: k, prog: p}

	const n = 16
	var m sim.Meter
	bufs := make([]*netdev.XDPBuff, n)
	acts := make([]netdev.XDPAction, n)
	for i := range bufs {
		bufs[i] = &netdev.XDPBuff{Data: []byte{byte(i)}, IfIndex: 1, Meter: &m}
	}
	a.HandleXDPBatch(bufs, acts)

	wantCycles := float64(sim.CostXDPPrologue) + float64(n-1)*float64(sim.CostXDPBatchEntry) + n*50
	if got := float64(m.Total); got != wantCycles {
		t.Fatalf("batch cycles = %v, want %v", got, wantCycles)
	}
	for i := 0; i < n; i++ {
		var pm sim.Meter
		buff := &netdev.XDPBuff{Data: []byte{byte(i)}, IfIndex: 1, Meter: &pm}
		want := a.HandleXDP(buff)
		if acts[i] != want {
			t.Fatalf("frame %d: batch action %v, per-packet %v", i, acts[i], want)
		}
		if want == netdev.XDPRedirect && bufs[i].RedirectTo != buff.RedirectTo {
			t.Fatalf("frame %d: redirect target %d vs %d", i, bufs[i].RedirectTo, buff.RedirectTo)
		}
	}
}

func TestPerCPUArrayMapIsolatesCPUs(t *testing.T) {
	m := NewPerCPUArrayMap("pc", 4)
	m.Add(0, 2, 5)
	m.Add(1, 2, 7)
	m.Add(63, 2, 1)
	if got := m.Lookup(0, 2); got != 5 {
		t.Fatalf("cpu0 = %d, want 5", got)
	}
	if got := m.Lookup(1, 2); got != 7 {
		t.Fatalf("cpu1 = %d, want 7", got)
	}
	if got := m.Sum(2); got != 13 {
		t.Fatalf("sum = %d, want 13", got)
	}
	if got := m.Sum(3); got != 0 {
		t.Fatalf("untouched slot sum = %d", got)
	}
	// Out-of-range slots are ignored/zero, like a missing array element.
	m.Add(0, 99, 1)
	if got := m.Lookup(0, 99); got != 0 {
		t.Fatalf("oob lookup = %d", got)
	}
	if m.Len() != 4 || m.Name() != "pc" {
		t.Fatalf("metadata: len=%d name=%q", m.Len(), m.Name())
	}
	// CPU ids past MapCPUs fold onto a valid shard instead of faulting.
	m.Add(MapCPUs+1, 0, 3)
	if got := m.Lookup(1, 0); got != 3 {
		t.Fatalf("cpu fold: got %d, want 3", got)
	}
}

func TestPerCPUHashMapShardsAndBounds(t *testing.T) {
	h := NewPerCPUHashMap("conns", 2)
	if !h.Update(0, 42, 1) || !h.Update(1, 42, 2) {
		t.Fatal("update failed")
	}
	if v, ok := h.Lookup(0, 42); !ok || v != 1 {
		t.Fatalf("cpu0 lookup = %d/%v", v, ok)
	}
	if v, ok := h.Lookup(1, 42); !ok || v != 2 {
		t.Fatalf("cpu1 lookup = %d/%v", v, ok)
	}
	if got := h.Sum(42); got != 3 {
		t.Fatalf("sum = %d, want 3", got)
	}
	// The bound is per CPU: cpu0 fills at 2 entries, cpu1 still has room.
	h.Update(0, 43, 1)
	if h.Update(0, 44, 1) {
		t.Fatal("cpu0 over bound accepted")
	}
	if !h.Update(1, 44, 1) {
		t.Fatal("cpu1 rejected despite room")
	}
	h.Add(1, 44, 9)
	if v, _ := h.Lookup(1, 44); v != 10 {
		t.Fatalf("add: %d, want 10", v)
	}
	if !h.Delete(1, 44) || h.Delete(1, 44) {
		t.Fatal("delete semantics")
	}
	if h.Len() != 3 {
		t.Fatalf("len = %d, want 3", h.Len())
	}
}
