package ebpf

import (
	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// AFXDPApp models the userspace end of an AF_XDP socket: a run-to-
// completion loop that recycles completions into the fill ring, drains RX
// descriptors, optionally inspects each frame, and either forwards
// through the TX/completion rings or recycles the frame straight back.
// One app owns one socket and must be driven from a single goroutine (the
// SPSC contract of the application ring halves).
//
// Two modes, decided by the socket:
//   - wakeup-driven: each RunOnce models one poll() return (the syscall is
//     charged to the app core), and a TX kick pays a sendto() — the
//     default XDP_USE_NEED_WAKEUP deployment.
//   - busy-poll: no syscalls ever; the app burns a dedicated core spinning
//     on the rings, exactly the internal/vpp resource trade.
type AFXDPApp struct {
	// Out is the egress device forwarded frames are transmitted on; nil
	// makes the app capture-only (frames are recycled after Handle).
	Out *netdev.Device
	// Handle, when set, observes every received frame (valid only for the
	// duration of the call — the backing UMEM frame is recycled after).
	Handle func(frame []byte)
	// Meter is the app core. Its CPU should differ from the RX core's.
	Meter *sim.Meter

	sock *AFXDPSocket

	descs  []XDPDesc
	addrs  []uint64
	frames [][]byte

	received  uint64
	forwarded uint64
	txFull    uint64
	polls     uint64
	sendtos   uint64
}

// NewAFXDPApp creates an app bound to a socket, forwarding out the given
// device (nil for capture-only). Scratch buffers are sized once, to the
// UMEM pool, so RunOnce allocates nothing.
func NewAFXDPApp(s *AFXDPSocket, out *netdev.Device, m *sim.Meter) *AFXDPApp {
	n := s.UMEM().NumFrames()
	return &AFXDPApp{
		Out:    out,
		Meter:  m,
		sock:   s,
		descs:  make([]XDPDesc, n),
		addrs:  make([]uint64, n),
		frames: make([][]byte, n),
	}
}

// Sock returns the bound socket.
func (a *AFXDPApp) Sock() *AFXDPSocket { return a.sock }

// Received reports frames drained from the RX ring.
func (a *AFXDPApp) Received() uint64 { return a.received }

// Forwarded reports frames pushed through the TX path.
func (a *AFXDPApp) Forwarded() uint64 { return a.forwarded }

// TxRingFull reports frames the app had to recycle because the TX ring
// was full (app-level loss, not kernel loss).
func (a *AFXDPApp) TxRingFull() uint64 { return a.txFull }

// Polls reports poll() syscalls paid (wakeup mode only).
func (a *AFXDPApp) Polls() uint64 { return a.polls }

// Sendtos reports sendto() TX kicks paid (wakeup mode only).
func (a *AFXDPApp) Sendtos() uint64 { return a.sendtos }

// RunOnce executes one loop iteration, processing up to budget frames
// (0 or oversized budgets are clamped to the UMEM pool), and returns how
// many RX descriptors it drained. In wakeup mode the iteration models one
// poll() return, so the caller should invoke it once per doorbell.
func (a *AFXDPApp) RunOnce(budget int) int {
	if budget <= 0 || budget > len(a.descs) {
		budget = len(a.descs)
	}
	m := a.Meter
	if !a.sock.BusyPoll() {
		select {
		case <-a.sock.Doorbell():
		default:
		}
		m.Charge(sim.CostSyscallPoll)
		a.polls++
	}

	// Recycle completed TX addrs onto the fill ring first, so the frames
	// this iteration forwards have somewhere to come from next time.
	if n := a.sock.CompleteBurst(a.addrs[:budget], m); n > 0 {
		a.sock.FillAddrs(a.addrs[:n], m)
	}

	n := a.sock.RxBurst(a.descs[:budget], m)
	if n == 0 {
		return 0
	}
	a.received += uint64(n)
	if a.Handle != nil {
		for i := 0; i < n; i++ {
			d := a.descs[i]
			a.Handle(a.sock.UMEM().Frame(d.Addr)[:d.Len])
		}
	}
	if a.Out == nil {
		for i := 0; i < n; i++ {
			a.addrs[i] = a.descs[i].Addr
		}
		a.sock.FillAddrs(a.addrs[:n], m)
		return n
	}

	queued := a.sock.TxBurst(a.descs[:n], m)
	a.forwarded += uint64(queued)
	if queued < n {
		// TX ring full: recycle the overflow straight back to the fill
		// ring rather than losing the frames.
		k := 0
		for i := queued; i < n; i++ {
			a.addrs[k] = a.descs[i].Addr
			k++
		}
		a.sock.FillAddrs(a.addrs[:k], m)
		a.txFull += uint64(n - queued)
	}
	if queued > 0 {
		if !a.sock.BusyPoll() {
			m.Charge(sim.CostSyscallSendto)
			a.sendtos++
		}
		a.sock.KernelTx(a.Out, a.frames, queued, m)
	}
	return n
}

// Drain loops RunOnce until an iteration moves nothing, leaving every
// frame the app owned recycled onto the fill ring. The final iteration
// that returns 0 still recycles the last completions first, so a drained
// socket audits clean.
func (a *AFXDPApp) Drain() {
	for a.RunOnce(0) > 0 {
	}
}
