package kernel

import (
	"testing"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// cpumapFrames builds n forwardable UDP frames spread over the router's 16
// pre-resolved destination hosts.
func cpumapFrames(srcMAC, dstMAC packet.HWAddr, n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		dst := packet.AddrFrom4(10, 2, 0, byte(i%16+1))
		frames[i] = fwdFrame(dstMAC, srcMAC, packet.MustAddr("10.1.0.1"), dst, uint16(4000+i%64), 2000)
	}
	return frames
}

// TestCpumapEntryDrainsIntoStack: frames bulk-enqueued on one CPU's meter are
// delivered into the stack by the entry's kthread, charged to the target CPU,
// and every counter reconciles.
func TestCpumapEntryDrainsIntoStack(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	e := r.NewCpumapEntry(5, 256)
	defer e.Stop()

	frames := cpumapFrames(srcMAC, r0.MAC, 64)
	m := sim.Meter{CPU: 0} // the producer (RX core)
	if dropped, _ := e.EnqueueBatch(r0, frames, &m); dropped != 0 {
		t.Fatalf("EnqueueBatch dropped %d of 64 with qsize 256", dropped)
	}
	e.RingDoorbell(&m)
	e.Quiesce()

	st := r.Stats()
	if st.CpumapEnqueued != 64 {
		t.Fatalf("CpumapEnqueued = %d, want 64", st.CpumapEnqueued)
	}
	if st.CpumapDrops != 0 {
		t.Fatalf("CpumapDrops = %d, want 0", st.CpumapDrops)
	}
	if st.CpumapKthreadRuns == 0 {
		t.Fatal("kthread never ran")
	}
	if st.Forwarded != 64 {
		t.Fatalf("Forwarded = %d, want 64 (drops: %d noroute: %d)", st.Forwarded, st.Dropped, st.NoRoute)
	}
	// The whole slow path ran on the kthread's meter, not the producer's:
	// the producer paid only the doorbell.
	if e.Cycles() == 0 {
		t.Fatal("kthread charged no cycles")
	}
	if m.Total >= e.Cycles() {
		t.Fatalf("producer paid %v cycles, kthread only %v — stack work leaked to the RX core", m.Total, e.Cycles())
	}
}

// TestCpumapEntryOverflow: a full ring drops the excess, counted on the
// producer's shard, and delivers exactly the ring's worth.
func TestCpumapEntryOverflow(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	e := r.NewCpumapEntry(2, 4)
	defer e.Stop()

	frames := cpumapFrames(srcMAC, r0.MAC, 10)
	var m sim.Meter
	if dropped, _ := e.EnqueueBatch(r0, frames, &m); dropped != 6 {
		t.Fatalf("dropped = %d, want 6 (qsize 4, 10 frames)", dropped)
	}
	e.RingDoorbell(&m)
	e.Quiesce()

	st := r.Stats()
	if st.CpumapEnqueued != 4 || st.CpumapDrops != 6 {
		t.Fatalf("enqueued/drops = %d/%d, want 4/6", st.CpumapEnqueued, st.CpumapDrops)
	}
	if st.Forwarded != 4 {
		t.Fatalf("Forwarded = %d, want 4", st.Forwarded)
	}
}

// TestCpumapEntryStopDrains: Stop delivers everything already in the ring
// (no doorbell ever rang), and enqueues after Stop count as drops — the
// producer-side view of a map delete racing traffic.
func TestCpumapEntryStopDrains(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	e := r.NewCpumapEntry(1, 64)

	frames := cpumapFrames(srcMAC, r0.MAC, 16)
	var m sim.Meter
	if dropped, _ := e.EnqueueBatch(r0, frames, &m); dropped != 0 {
		t.Fatalf("dropped %d on an empty ring", dropped)
	}
	e.Stop() // no doorbell: the teardown drain must deliver the 16

	if st := r.Stats(); st.Forwarded != 16 {
		t.Fatalf("Forwarded = %d, want 16 after Stop drain", st.Forwarded)
	}
	if dropped, _ := e.EnqueueBatch(r0, frames[:3], &m); dropped != 3 {
		t.Fatalf("post-Stop enqueue dropped %d, want 3", dropped)
	}
	if st := r.Stats(); st.CpumapDrops != 3 {
		t.Fatalf("CpumapDrops = %d, want 3", st.CpumapDrops)
	}
}

// BenchmarkCpumapEnqueueDrain64 measures one NAPI poll's worth of frames
// through a cpumap entry: bulk enqueue, doorbell, kthread drain into the
// forwarding slow path.
func BenchmarkCpumapEnqueueDrain64(b *testing.B) {
	r, r0, _, srcMAC, _ := newFwdRouter(b)
	r1, _ := r.DeviceByName("eth1")
	r1.Tap = nil
	e := r.NewCpumapEntry(3, 256)
	defer e.Stop()
	frames := cpumapFrames(srcMAC, r0.MAC, 64)
	batch := make([][]byte, 64)
	var m sim.Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(batch, frames)
		e.EnqueueBatch(r0, batch, &m)
		e.RingDoorbell(&m)
		e.Quiesce()
	}
}
