// The flight package writes ring records without importing ebpf (the import
// points the other way), so the wire contract is duplicated constants. This
// external test is the pin: if either side drifts, consumers decoding
// EventSpan records from the shared ring would misparse every span.
package flight_test

import (
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/flight"
	"linuxfp/internal/sim"
)

// heapFrames pins test frames in a package sink so they are heap-allocated:
// the recorder keys its side table by backing-array address (the pwru skb
// idiom), which presumes frames live on the heap like real datapath buffers —
// a compiler-stack-allocated frame would move with the goroutine stack.
var heapFrames [][]byte

func heapFrame(n int) []byte {
	f := make([]byte, n)
	heapFrames = append(heapFrames, f)
	return f
}

func TestEventWireFormatPinned(t *testing.T) {
	if byte(ebpf.EventSpan) != flight.EventType {
		t.Fatalf("flight.EventType=%d, ebpf.EventSpan=%d — ring type bytes diverged", flight.EventType, ebpf.EventSpan)
	}
	if ebpf.EventSize != flight.EventSize {
		t.Fatalf("flight.EventSize=%d, ebpf.EventSize=%d — record layouts diverged", flight.EventSize, ebpf.EventSize)
	}
}

// TestSpanRecordDecodesViaEbpf round-trips a real span record through the
// real ring and the ebpf decoder: stage/verdict nibbles, CPU, reason, cycle
// stamp, and trace ID must all survive.
func TestSpanRecordDecodesViaEbpf(t *testing.T) {
	rb := ebpf.NewRingBuf("pin_ring", 1<<12)
	r := flight.New(flight.Config{Ring: rb})
	m := &sim.Meter{CPU: 3}
	frame := heapFrame(64)
	ch := r.SampleRX(frame, 9, m)
	if ch == nil {
		t.Fatal("shift 0 must sample")
	}
	r.TerminalDropFrame(frame, drop.ReasonIPTTLExpired, m)

	rb.Flush()
	var evs []ebpf.Event
	rb.Poll(func(rec []byte) {
		ev, ok := ebpf.DecodeEvent(rec)
		if !ok {
			t.Fatalf("ring record %x failed to decode", rec)
		}
		evs = append(evs, ev)
	})
	if len(evs) != len(ch.Spans) {
		t.Fatalf("decoded %d events for %d spans", len(evs), len(ch.Spans))
	}
	for i, ev := range evs {
		if ev.Type != ebpf.EventSpan {
			t.Fatalf("event %d type=%v, want EventSpan", i, ev.Type)
		}
		st, v := flight.UnpackStageVerdict(ev.Stage)
		if st != ch.Spans[i].Stage || v != ch.Spans[i].Verdict {
			t.Fatalf("event %d decoded %v/%v, span was %v/%v", i, st, v, ch.Spans[i].Stage, ch.Spans[i].Verdict)
		}
		if ev.CPU != ch.Spans[i].CPU || ev.Aux != ch.ID || ev.IfIndex != 9 {
			t.Fatalf("event %d cpu=%d aux=%#x if=%d, want cpu=%d aux=%#x if=9",
				i, ev.CPU, ev.Aux, ev.IfIndex, ch.Spans[i].CPU, ch.ID)
		}
		if sim.Cycles(ev.Cycles) != ch.Spans[i].Cycles {
			t.Fatalf("event %d cycles=%d, span stamped %v", i, ev.Cycles, ch.Spans[i].Cycles)
		}
	}
	if last := evs[len(evs)-1]; last.Reason != drop.ReasonIPTTLExpired {
		t.Fatalf("terminal event reason=%v, want ip_ttl_expired", last.Reason)
	}
}
