// Socket-layer fast path modules: the sk_skb snippets the synthesizer
// composes into stream verdict programs. SockRedirOp renders the pure
// splice (every segment to a sockmap peer); L7HTTPOp puts an HTTP
// method/path policy in front of it, offloading the proxy's L7 verdict to
// the socket layer while undecidable segments keep the full userspace
// round trip.
package fpm

import (
	"linuxfp/internal/ebpf"
	"linuxfp/internal/sim"
)

// SockRedirConf parameterizes the socket splice module.
type SockRedirConf struct {
	// Map and Slot name the redirect target (the peer socket's sockmap
	// slot).
	Map  *ebpf.SockMap
	Slot int
}

// SockRedirOp builds the splice snippet: bpf_sk_redirect_map every segment
// to the configured peer. The helper only records the target; resolution
// (and the empty/stale distinction) happens when the kernel applies the
// verdict.
func SockRedirOp(conf SockRedirConf) ebpf.Op {
	return ebpf.NewOp("sk_redirect", 0, ebpf.CapSKB|ebpf.CapRedirect, 24, func(c *ebpf.Ctx) ebpf.Verdict {
		return ebpf.HelperSKRedirectMap(c, conf.Map, conf.Slot)
	})
}

// L7Rule matches an HTTP request line. Empty Method matches any method;
// empty PathPrefix matches any path.
type L7Rule struct {
	Method     string
	PathPrefix string
	Allow      bool
}

// L7Conf parameterizes the L7 verdict module.
type L7Conf struct {
	// Rules are evaluated in order; the first match decides. A request
	// matching no rule is undecidable in-kernel and punts to userspace.
	Rules []L7Rule
}

// L7HTTPOp builds the L7 verdict snippet: parse the request line
// ("METHOD SP PATH") from the first segment and apply the rule list. A
// deny renders SK_DROP; an allow continues to the next op (the splice); a
// segment that doesn't parse as an HTTP request line — or matches no
// rule — punts to userspace (VerdictPass = SK_PASS), where the proxy's
// full parser applies. Punting costs performance, never correctness.
func L7HTTPOp(conf L7Conf) ebpf.Op {
	return ebpf.NewOp("l7_http", sim.CostL7Parse, ebpf.CapSKB, 160, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.Msg == nil {
			return ebpf.VerdictPass
		}
		method, path, ok := parseRequestLine(c.Msg.Payload)
		if !ok {
			return ebpf.VerdictPass
		}
		for _, r := range conf.Rules {
			if r.Method != "" && !bytesEqual(method, r.Method) {
				continue
			}
			if r.PathPrefix != "" && !bytesPrefix(path, r.PathPrefix) {
				continue
			}
			if r.Allow {
				return ebpf.VerdictNext
			}
			return ebpf.VerdictDrop
		}
		return ebpf.VerdictPass
	})
}

// parseRequestLine extracts METHOD and PATH byte views from an HTTP
// request line, without allocating (the op runs on the zero-alloc delivery
// path). Only the first segment of a stream carries a request line;
// anything else fails to parse and punts.
func parseRequestLine(b []byte) (method, path []byte, ok bool) {
	// METHOD: 1..8 uppercase letters, then a space.
	sp1 := -1
	for i := 0; i < len(b) && i < 9; i++ {
		if b[i] == ' ' {
			sp1 = i
			break
		}
		if b[i] < 'A' || b[i] > 'Z' {
			return nil, nil, false
		}
	}
	if sp1 < 1 {
		return nil, nil, false
	}
	// PATH: starts with '/', runs to the next space.
	rest := b[sp1+1:]
	if len(rest) == 0 || rest[0] != '/' {
		return nil, nil, false
	}
	sp2 := -1
	for i, ch := range rest {
		if ch == ' ' {
			sp2 = i
			break
		}
		if ch == '\r' || ch == '\n' {
			return nil, nil, false
		}
	}
	if sp2 < 1 {
		return nil, nil, false
	}
	return b[:sp1], rest[:sp2], true
}

// bytesEqual compares a byte view against a rule string without converting
// (no allocation on the delivery path).
func bytesEqual(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// bytesPrefix reports whether the byte view starts with the rule string.
func bytesPrefix(b []byte, s string) bool {
	return len(b) >= len(s) && bytesEqual(b[:len(s)], s)
}
