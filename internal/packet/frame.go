package packet

import (
	"encoding/binary"
	"fmt"
)

// Packet is a fully decoded frame: the view the slow path builds while the
// fast path works on raw bytes. L4 headers are decoded lazily by the caller.
type Packet struct {
	Eth     Ethernet
	ARP     *ARP
	IPv4    *IPv4
	L3Off   int    // offset of the L3 header in the frame
	L4Off   int    // offset of the L4 header (0 when absent)
	Payload []byte // L4 bytes (or full L3 payload for non-IP)
}

// Decode parses a frame down to L3. L4 payload bytes are referenced, not
// copied.
func Decode(frame []byte) (*Packet, error) {
	eth, n, err := UnmarshalEthernet(frame)
	if err != nil {
		return nil, err
	}
	p := &Packet{Eth: eth, L3Off: n}
	switch eth.EtherType {
	case EtherTypeARP:
		a, err := UnmarshalARP(frame[n:])
		if err != nil {
			return nil, err
		}
		p.ARP = &a
	case EtherTypeIPv4:
		h, ihl, err := UnmarshalIPv4(frame[n:])
		if err != nil {
			return nil, err
		}
		p.IPv4 = &h
		p.L4Off = n + ihl
		end := n + int(h.TotalLen)
		if end > len(frame) {
			return nil, fmt.Errorf("ipv4 payload: %w", ErrTruncated)
		}
		p.Payload = frame[p.L4Off:end]
	default:
		p.Payload = frame[n:]
	}
	return p, nil
}

// DecodeInto parses a frame like Decode but into caller-owned storage: p is
// fully overwritten, and ip/arp receive the L3 header so no per-packet heap
// allocation happens. The hot receive path pools these structs.
func DecodeInto(frame []byte, p *Packet, ip *IPv4, arp *ARP) error {
	eth, n, err := UnmarshalEthernet(frame)
	if err != nil {
		return err
	}
	*p = Packet{Eth: eth, L3Off: n}
	switch eth.EtherType {
	case EtherTypeARP:
		a, err := UnmarshalARP(frame[n:])
		if err != nil {
			return err
		}
		*arp = a
		p.ARP = arp
	case EtherTypeIPv4:
		h, ihl, err := UnmarshalIPv4(frame[n:])
		if err != nil {
			return err
		}
		*ip = h
		p.IPv4 = ip
		p.L4Off = n + ihl
		end := n + int(h.TotalLen)
		if end > len(frame) {
			return fmt.Errorf("ipv4 payload: %w", ErrTruncated)
		}
		p.Payload = frame[p.L4Off:end]
	default:
		p.Payload = frame[n:]
	}
	return nil
}

// FlowTuple is the (src, dst, proto, ports) key RSS and the flow fast-cache
// hash by. Ports are zero for fragments and non-TCP/UDP traffic, so every
// fragment of a datagram maps to the same queue (2-tuple fallback, as NICs
// do).
type FlowTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
	Frag             bool
}

// String renders the tuple the way ss(8) prints flows: proto, then
// src:port->dst:port. Fragments carry a marker since their ports are the
// 2-tuple fallback zeros.
func (t FlowTuple) String() string {
	proto := "ip"
	switch t.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	case ProtoICMP:
		proto = "icmp"
	default:
		proto = fmt.Sprintf("proto%d", t.Proto)
	}
	s := fmt.Sprintf("%s %s:%d->%s:%d", proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
	if t.Frag {
		s += " frag"
	}
	return s
}

// ReadFlowTuple extracts the flow tuple from a raw frame at fixed offsets
// with no allocation, the way NIC RSS hardware does. It reports the L3
// offset and ok=false for non-IPv4 or truncated frames.
func ReadFlowTuple(frame []byte) (t FlowTuple, l3 int, ok bool) {
	et, l3 := EtherTypeOf(frame)
	if et != EtherTypeIPv4 || len(frame) < l3+IPv4MinLen {
		return FlowTuple{}, 0, false
	}
	ihl := int(frame[l3]&0xf) * 4
	if ihl < IPv4MinLen || len(frame) < l3+ihl {
		return FlowTuple{}, 0, false
	}
	t.Src = AddrFromBytes(frame[l3+12 : l3+16])
	t.Dst = AddrFromBytes(frame[l3+16 : l3+20])
	t.Proto = frame[l3+9]
	ff := binary.BigEndian.Uint16(frame[l3+6 : l3+8])
	t.Frag = ff&(IPv4MoreFrags|IPv4FragOffMask) != 0
	if !t.Frag && (t.Proto == ProtoTCP || t.Proto == ProtoUDP) && len(frame) >= l3+ihl+4 {
		t.SrcPort, t.DstPort = L4Ports(frame, l3+ihl)
	}
	return t, l3, true
}

// BuildEthernet assembles a frame from an Ethernet header and payload.
func BuildEthernet(eth Ethernet, payload []byte) []byte {
	b := make([]byte, 0, eth.HeaderLen()+len(payload))
	b = eth.Marshal(b)
	return append(b, payload...)
}

// BuildIPv4 assembles an Ethernet+IPv4 frame around an L4 payload. The
// TotalLen field is filled in from the payload.
func BuildIPv4(eth Ethernet, ip IPv4, l4 []byte) []byte {
	ip.TotalLen = uint16(ip.HeaderLen() + len(l4))
	b := make([]byte, 0, eth.HeaderLen()+ip.HeaderLen()+len(l4))
	b = eth.Marshal(b)
	b = ip.Marshal(b)
	return append(b, l4...)
}

// BuildUDP assembles a complete Ethernet+IPv4+UDP frame.
func BuildUDP(eth Ethernet, ip IPv4, udp UDP, payload []byte) []byte {
	l4 := udp.Marshal(nil, ip.Src, ip.Dst, payload)
	return BuildIPv4(eth, ip, l4)
}

// BuildTCP assembles a complete Ethernet+IPv4+TCP frame.
func BuildTCP(eth Ethernet, ip IPv4, tcp TCP, payload []byte) []byte {
	l4 := tcp.Marshal(nil, ip.Src, ip.Dst, payload)
	return BuildIPv4(eth, ip, l4)
}

// BuildICMPEcho assembles an Ethernet+IPv4+ICMP echo frame.
func BuildICMPEcho(eth Ethernet, ip IPv4, echoType uint8, id, seq uint16, payload []byte) []byte {
	ic := ICMP{Type: echoType, Rest: uint32(id)<<16 | uint32(seq)}
	l4 := ic.Marshal(nil, payload)
	return BuildIPv4(eth, ip, l4)
}

// BuildARP assembles an Ethernet+ARP frame.
func BuildARP(src HWAddr, dst HWAddr, a ARP) []byte {
	eth := Ethernet{Dst: dst, Src: src, EtherType: EtherTypeARP}
	return BuildEthernet(eth, a.Marshal(nil))
}

// The in-place accessors below operate on raw frames the way an XDP program
// does: fixed offsets, no allocation. They assume an untagged Ethernet
// header unless the VLAN-aware variants are used.

// EthDst reads the destination MAC of a raw frame.
func EthDst(frame []byte) HWAddr {
	var h HWAddr
	copy(h[:], frame[0:6])
	return h
}

// EthSrc reads the source MAC of a raw frame.
func EthSrc(frame []byte) HWAddr {
	var h HWAddr
	copy(h[:], frame[6:12])
	return h
}

// SetEthDst rewrites the destination MAC in place.
func SetEthDst(frame []byte, h HWAddr) { copy(frame[0:6], h[:]) }

// SetEthSrc rewrites the source MAC in place.
func SetEthSrc(frame []byte, h HWAddr) { copy(frame[6:12], h[:]) }

// EtherTypeOf reads the EtherType, skipping one VLAN tag if present, and
// reports the L3 offset.
func EtherTypeOf(frame []byte) (uint16, int) {
	if len(frame) < EthHdrLen {
		return 0, 0
	}
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == EtherTypeVLAN {
		if len(frame) < EthHdrLen+VLANTagLen {
			return 0, 0
		}
		return binary.BigEndian.Uint16(frame[16:18]), EthHdrLen + VLANTagLen
	}
	return et, EthHdrLen
}

// DecTTL decrements the IPv4 TTL at l3 in place, patching the header
// checksum incrementally (RFC 1624). It reports the new TTL.
func DecTTL(frame []byte, l3 int) uint8 {
	// TTL shares a 16-bit checksum word with the protocol byte.
	old := binary.BigEndian.Uint16(frame[l3+8 : l3+10])
	ttl := frame[l3+8] - 1
	frame[l3+8] = ttl
	new := binary.BigEndian.Uint16(frame[l3+8 : l3+10])
	csum := binary.BigEndian.Uint16(frame[l3+10 : l3+12])
	binary.BigEndian.PutUint16(frame[l3+10:l3+12], ChecksumUpdate16(csum, old, new))
	return ttl
}

// IPv4Src reads the source address of the IPv4 header at l3.
func IPv4Src(frame []byte, l3 int) Addr { return AddrFromBytes(frame[l3+12 : l3+16]) }

// IPv4Dst reads the destination address of the IPv4 header at l3.
func IPv4Dst(frame []byte, l3 int) Addr { return AddrFromBytes(frame[l3+16 : l3+20]) }

// IPv4TTL reads the TTL of the IPv4 header at l3.
func IPv4TTL(frame []byte, l3 int) uint8 { return frame[l3+8] }

// IPv4Proto reads the protocol of the IPv4 header at l3.
func IPv4Proto(frame []byte, l3 int) uint8 { return frame[l3+9] }

// IPv4IsFragment reports whether the IPv4 header at l3 is a fragment.
func IPv4IsFragment(frame []byte, l3 int) bool {
	ff := binary.BigEndian.Uint16(frame[l3+6 : l3+8])
	return ff&(IPv4MoreFrags|IPv4FragOffMask) != 0
}

// IPv4HasOptions reports whether the IPv4 header at l3 carries options.
func IPv4HasOptions(frame []byte, l3 int) bool { return frame[l3]&0xf > 5 }

// RewriteIPv4Dst rewrites the destination address of the IPv4 packet at l3
// in place (DNAT), patching the IP header checksum and, for TCP/UDP, the
// transport checksum incrementally. l4 is the transport header offset.
func RewriteIPv4Dst(frame []byte, l3, l4 int, newDst Addr) {
	oldHi := binary.BigEndian.Uint16(frame[l3+16 : l3+18])
	oldLo := binary.BigEndian.Uint16(frame[l3+18 : l3+20])
	newDst.PutBytes(frame[l3+16 : l3+20])
	newHi := uint16(newDst >> 16)
	newLo := uint16(newDst)

	csum := binary.BigEndian.Uint16(frame[l3+10 : l3+12])
	csum = ChecksumUpdate16(csum, oldHi, newHi)
	csum = ChecksumUpdate16(csum, oldLo, newLo)
	binary.BigEndian.PutUint16(frame[l3+10:l3+12], csum)

	// Transport checksums cover the pseudo-header, so they shift too.
	proto := frame[l3+9]
	var csumOff int
	switch proto {
	case ProtoTCP:
		csumOff = l4 + 16
	case ProtoUDP:
		csumOff = l4 + 6
	default:
		return
	}
	if len(frame) < csumOff+2 {
		return
	}
	tsum := binary.BigEndian.Uint16(frame[csumOff : csumOff+2])
	if proto == ProtoUDP && tsum == 0 {
		return // checksum disabled
	}
	tsum = ChecksumUpdate16(tsum, oldHi, newHi)
	tsum = ChecksumUpdate16(tsum, oldLo, newLo)
	binary.BigEndian.PutUint16(frame[csumOff:csumOff+2], tsum)
}

// L4Ports reads source and destination ports of a TCP/UDP header at l4.
func L4Ports(frame []byte, l4 int) (src, dst uint16) {
	if len(frame) < l4+4 {
		return 0, 0
	}
	return binary.BigEndian.Uint16(frame[l4 : l4+2]), binary.BigEndian.Uint16(frame[l4+2 : l4+4])
}
