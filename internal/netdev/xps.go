// XPS: transmit packet steering (Documentation/networking/scaling.rst).
// A multi-queue NIC only scales TX when each CPU owns a queue — otherwise
// every dev_queue_xmit contends on the same qdisc/txq cachelines. xps_cpus
// maps CPU → TX queue so a CPU's transmits stay on "its" queue; without a
// mapping the stack falls back to skb_tx_hash, and whenever two CPUs end up
// interleaving on one queue the model charges the cacheline bounce the real
// kernel pays.
package netdev

import (
	"sync/atomic"

	"linuxfp/internal/sim"
)

// xpsState is one published snapshot of the device's TX-queue config:
// replaced whole on reconfiguration, read with one atomic load per frame.
// lastCPU tracks the last transmitting CPU per queue to detect sharing.
type xpsState struct {
	nq     int
	cpuMap []int32 // CPU → queue, -1 unset (skb_tx_hash fallback)

	lastCPU []atomic.Int32 // per queue, -1 until first use

	picks   atomic.Uint64 // XPS map hits
	hashes  atomic.Uint64 // skb_tx_hash fallbacks
	bounces atomic.Uint64 // queue handoffs between CPUs (shared-queue cost)
}

// TxQueueStats is the XPS observability snapshot.
type TxQueueStats struct {
	TxQueues  int
	XPSPicks  uint64 // transmits steered by the xps_cpus map
	HashPicks uint64 // transmits that fell back to skb_tx_hash
	Bounces   uint64 // queue ownership changes (CPUs sharing a queue)
}

// SetTxQueues declares the device's real TX queue count (ethtool -L tx N)
// and resets any XPS mapping. n < 1 disables the model entirely: transmits
// go back to the free single-queue behavior existing scenarios assume.
func (d *Device) SetTxQueues(n int) {
	if n < 1 {
		d.xps.Store(nil)
		return
	}
	st := &xpsState{
		nq:      n,
		cpuMap:  make([]int32, MaxRxQueues),
		lastCPU: make([]atomic.Int32, n),
	}
	for i := range st.cpuMap {
		st.cpuMap[i] = -1
	}
	for i := range st.lastCPU {
		st.lastCPU[i].Store(-1)
	}
	d.xps.Store(st)
}

// SetXPS maps a CPU to a TX queue — one bit of
// /sys/class/net/<dev>/queues/tx-<q>/xps_cpus. Counters and sharing state
// carry over; only the mapping changes.
func (d *Device) SetXPS(cpu, queue int) bool {
	old := d.xps.Load()
	if old == nil || cpu < 0 || cpu >= len(old.cpuMap) || queue < 0 || queue >= old.nq {
		return false
	}
	st := &xpsState{nq: old.nq, lastCPU: old.lastCPU}
	st.cpuMap = append([]int32(nil), old.cpuMap...)
	st.cpuMap[cpu] = int32(queue)
	st.picks.Store(old.picks.Load())
	st.hashes.Store(old.hashes.Load())
	st.bounces.Store(old.bounces.Load())
	d.xps.Store(st)
	return true
}

// TxQueueStats reports the XPS counters (zero value when multi-queue TX is
// not configured).
func (d *Device) TxQueueStats() TxQueueStats {
	st := d.xps.Load()
	if st == nil {
		return TxQueueStats{}
	}
	return TxQueueStats{
		TxQueues:  st.nq,
		XPSPicks:  st.picks.Load(),
		HashPicks: st.hashes.Load(),
		Bounces:   st.bounces.Load(),
	}
}

// chargeTxQueue is netdev_pick_tx: select the TX queue for one frame on the
// transmitting CPU's meter and charge for it — the XPS map hit is cheaper
// than the hash fallback, and a queue that changes owners pays the
// qdisc/txq cacheline bounce both real CPUs would. No-op (one nil load)
// when SetTxQueues was never called.
func (d *Device) chargeTxQueue(m *sim.Meter) {
	st := d.xps.Load()
	if st == nil {
		return
	}
	cpu := 0
	if m != nil {
		cpu = m.CPU
	}
	q := -1
	if cpu >= 0 && cpu < len(st.cpuMap) {
		q = int(st.cpuMap[cpu])
	}
	if q >= 0 {
		m.Charge(sim.CostXPSPick)
		st.picks.Add(1)
	} else {
		m.Charge(sim.CostTxHashPick)
		st.hashes.Add(1)
		q = cpu % st.nq
		if q < 0 {
			q = 0
		}
	}
	if prev := st.lastCPU[q].Swap(int32(cpu)); prev >= 0 && prev != int32(cpu) {
		m.Charge(sim.CostTxQueueShare)
		st.bounces.Add(1)
	}
}
