package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/core"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
)

// Series is one platform's line in a figure.
type Series struct {
	Platform string
	X        []float64
	Y        []float64
}

// LatencyRow is one platform's row in a latency table.
type LatencyRow struct {
	Platform string
	Avg, P99 float64 // microseconds
	StdDev   float64
}

// Fig5RouterThroughput: virtual-router Mpps vs core count, all platforms,
// 64-byte packets, 50 prefixes.
func Fig5RouterThroughput(maxCores int) ([]Series, error) {
	return coreSweep(Scenario{}, maxCores,
		[]string{PlatformLinux, PlatformPolycube, PlatformVPP, PlatformLinuxFP})
}

// Fig7GatewayThroughput: virtual-gateway Mpps vs core count (100 blacklist
// rules + 50 prefixes).
func Fig7GatewayThroughput(maxCores int) ([]Series, error) {
	return coreSweep(Scenario{Gateway: true, Rules: 100}, maxCores,
		[]string{PlatformLinux, PlatformPolycube, PlatformVPP, PlatformLinuxFP, PlatformLinuxFPIpset})
}

func coreSweep(sc Scenario, maxCores int, platforms []string) ([]Series, error) {
	var out []Series
	for _, p := range platforms {
		d, err := Build(p, sc)
		if err != nil {
			return nil, err
		}
		s := Series{Platform: p}
		for cores := 1; cores <= maxCores; cores++ {
			pps, _ := d.Throughput(cores, traffic.MinFrameSize)
			s.X = append(s.X, float64(cores))
			s.Y = append(s.Y, pps/1e6)
		}
		d.Close()
		out = append(out, s)
	}
	return out, nil
}

// Fig6PacketSize: single-core Gbps vs frame size for the virtual router.
func Fig6PacketSize(sizes []int) ([]Series, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512, 1024, 1500}
	}
	var out []Series
	for _, p := range []string{PlatformLinux, PlatformPolycube, PlatformVPP, PlatformLinuxFP} {
		d, err := Build(p, Scenario{})
		if err != nil {
			return nil, err
		}
		s := Series{Platform: p}
		for _, size := range sizes {
			_, gbps := d.Throughput(1, size)
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, gbps)
		}
		d.Close()
		out = append(out, s)
	}
	return out, nil
}

// Fig8RuleScaling: single-core virtual-gateway Mpps vs number of filtering
// rules.
func Fig8RuleScaling(ruleCounts []int) ([]Series, error) {
	if len(ruleCounts) == 0 {
		ruleCounts = []int{1, 50, 100, 200, 300, 400, 500}
	}
	var out []Series
	for _, p := range []string{PlatformLinux, PlatformPolycube, PlatformLinuxFP, PlatformLinuxFPIpset} {
		s := Series{Platform: p}
		for _, n := range ruleCounts {
			d, err := Build(p, Scenario{Gateway: true, Rules: n})
			if err != nil {
				return nil, err
			}
			pps, _ := d.Throughput(1, traffic.MinFrameSize)
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, pps/1e6)
			d.Close()
		}
		out = append(out, s)
	}
	return out, nil
}

// Table3RouterLatency: single-core RTT with 128 netperf sessions.
func Table3RouterLatency() ([]LatencyRow, error) {
	return latencyTable(Scenario{},
		[]string{PlatformLinux, PlatformPolycube, PlatformVPP, PlatformLinuxFP})
}

// Table4GatewayLatency: the gateway variant, including the ipset rows.
func Table4GatewayLatency() ([]LatencyRow, error) {
	return latencyTable(Scenario{Gateway: true, Rules: 100},
		[]string{PlatformLinux, PlatformLinuxIpset, PlatformPolycube, PlatformVPP, PlatformLinuxFP, PlatformLinuxFPIpset})
}

func latencyTable(sc Scenario, platforms []string) ([]LatencyRow, error) {
	var out []LatencyRow
	for i, p := range platforms {
		d, err := Build(p, sc)
		if err != nil {
			return nil, err
		}
		res := d.Latency(128, uint64(1000+i))
		out = append(out, LatencyRow{
			Platform: p,
			Avg:      res.Stats.Mean(),
			P99:      res.Stats.P99(),
			StdDev:   res.Stats.StdDev(),
		})
		d.Close()
	}
	return out, nil
}

// Fig10Row is one point of the call-chaining microbenchmark.
type Fig10Row struct {
	NFs          int
	FuncCallMpps float64
	TailCallMpps float64
}

// Fig10CallChaining reproduces the paper's platform-independent experiment:
// a chain of N trivial NFs ahead of a forwarding function, composed either
// as inlined function calls (LinuxFP's style) or as tail-called programs
// (Polycube's style).
func Fig10CallChaining(maxNFs int) ([]Fig10Row, error) {
	var out []Fig10Row
	for n := 0; n <= maxNFs; n += 2 {
		fc, err := chainCycles(n, false)
		if err != nil {
			return nil, err
		}
		tc, err := chainCycles(n, true)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Row{
			NFs:          n,
			FuncCallMpps: sim.PacketsPerSecond(fc) / 1e6,
			TailCallMpps: sim.PacketsPerSecond(tc) / 1e6,
		})
	}
	return out, nil
}

// chainCycles measures one variant of the Fig. 10 chain on a router DUT.
func chainCycles(nfs int, tailCalls bool) (sim.Cycles, error) {
	d, err := Build(PlatformLinux, Scenario{}) // plain kernel; we attach by hand
	if err != nil {
		return 0, err
	}
	defer d.Close()
	loader := ebpf.NewLoader(d.Kern)

	forwardOps := func() []ebpf.Op {
		ops := []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4()}
		return append(ops, fpm.RouterOps(fpm.RouterConf{})...)
	}

	var entry *ebpf.Program
	if !tailCalls {
		// One program, trivial NFs inlined ahead of the forwarder.
		ops := fpm.TrivialOps(nfs)
		ops = append(ops, forwardOps()...)
		entry = &ebpf.Program{Name: "chain_func", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass}
		if _, err := loader.Load(entry); err != nil {
			return 0, err
		}
	} else {
		// N+1 programs chained through a program array.
		table := ebpf.NewProgArray("chain", nfs+1)
		final := &ebpf.Program{Name: "chain_final", Hook: ebpf.HookXDP, Ops: forwardOps(), Default: ebpf.VerdictPass}
		if _, err := loader.Load(final); err != nil {
			return 0, err
		}
		table.Update(nfs, final)
		for i := nfs - 1; i >= 0; i-- {
			slot := i + 1
			ops := fpm.TrivialOps(1)
			ops = append(ops, ebpf.NewOp("tail", 0, ebpf.CapTailCall, 4, func(c *ebpf.Ctx) ebpf.Verdict {
				return c.TailCall(table, slot)
			}))
			prog := &ebpf.Program{Name: fmt.Sprintf("chain_%d", i), Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass}
			if _, err := loader.Load(prog); err != nil {
				return 0, err
			}
			table.Update(i, prog)
		}
		entry = table.Lookup(0)
		if entry == nil { // nfs == 0
			entry = final
		}
	}
	if err := loader.AttachXDP(d.In, entry, "driver"); err != nil {
		return 0, err
	}
	return d.AvgCycles(200, traffic.MinFrameSize), nil
}

// Table7Row is one network function's XDP-vs-TC comparison.
type Table7Row struct {
	Function   string
	XDPpps     float64
	TCpps      float64
	XDPLatency float64 // µs, mean under the 128-session load
	TCLatency  float64
}

// Table7HookComparison measures bridge, forwarding and filtering fast
// paths on both hooks.
func Table7HookComparison() ([]Table7Row, error) {
	var out []Table7Row

	// Forwarding and filtering use the standard rigs.
	for _, fn := range []struct {
		name string
		sc   Scenario
	}{
		{"forwarding", Scenario{}},
		{"filtering", Scenario{Gateway: true, Rules: 100}},
	} {
		row := Table7Row{Function: fn.name}
		for _, tc := range []bool{false, true} {
			sc := fn.sc
			sc.PreferTC = tc
			d, err := Build(PlatformLinuxFP, sc)
			if err != nil {
				return nil, err
			}
			// Table VII reproduces the paper's system, which fuses but does
			// not constant-fold config at Load time: measure the generic
			// fused path. The specialize sweep covers the A/B delta.
			d.Kern.SetSysctl("net.core.bpf_jit_specialize", "0")
			pps := sim.PacketsPerSecond(d.AvgCycles(200, traffic.MinFrameSize))
			lat := d.Latency(128, 77).Stats.Mean()
			if tc {
				row.TCpps, row.TCLatency = pps, lat
			} else {
				row.XDPpps, row.XDPLatency = pps, lat
			}
			d.Close()
		}
		out = append(out, row)
	}

	// Bridge rig: two stations through a LinuxFP-accelerated bridge.
	row := Table7Row{Function: "bridge"}
	for _, tc := range []bool{false, true} {
		cyc, err := bridgeCycles(tc)
		if err != nil {
			return nil, err
		}
		pps := sim.PacketsPerSecond(cyc)
		lat := traffic.RunRR(traffic.RRConfig{
			Sessions: 128, Duration: 2 * sim.Second, Seed: 78,
			ReqCycles: cyc, RespCycles: cyc,
			WireRTT: 20 * sim.Microsecond, ServerTime: 8 * sim.Microsecond,
			JitterSigma: 0.22, StallProb: 0.0005, StallMean: 80 * sim.Microsecond,
		}).Stats.Mean()
		if tc {
			row.TCpps, row.TCLatency = pps, lat
		} else {
			row.XDPpps, row.XDPLatency = pps, lat
		}
	}
	out = append([]Table7Row{row}, out...)
	return out, nil
}

// bridgeCycles builds a LinuxFP bridge DUT on the chosen hook and measures
// per-packet forwarding cost between two learned stations.
func bridgeCycles(preferTC bool) (sim.Cycles, error) {
	sw := kernel.New("sw")
	// Paper-fidelity rig: generic fused path only (see Table7HookComparison).
	sw.SetSysctl("net.core.bpf_jit_specialize", "0")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	var ports, hosts []*netdev.Device
	for i := 0; i < 2; i++ {
		hk := kernel.New("host")
		hd := hk.CreateDevice("eth0", netdev.Physical)
		hd.SetUp(true)
		hk.AddAddr("eth0", packet.Prefix{Addr: packet.AddrFrom4(10, 9, 0, byte(i+1)), Bits: 24})
		port := sw.CreateDevice(fmt.Sprintf("swp%d", i), netdev.Physical)
		port.SetUp(true)
		netdev.Connect(hd, port)
		if err := sw.AddBridgePort("br0", port.Name); err != nil {
			return 0, err
		}
		ports = append(ports, port)
		hosts = append(hosts, hd)
	}
	ctrl := core.New(sw, core.Options{PreferTC: preferTC})
	ctrl.Start()
	defer ctrl.Stop()
	ctrl.Sync()

	// Teach the FDB both stations.
	br, _ := sw.BridgeByName("br0")
	br.Learn(hosts[0].MAC, 0, ports[0].Index, 0)
	br.Learn(hosts[1].MAC, 0, ports[1].Index, 0)

	frame := packet.BuildEthernet(packet.Ethernet{
		Dst: hosts[1].MAC, Src: hosts[0].MAC, EtherType: packet.EtherTypeIPv4,
	}, make([]byte, 46))
	netdev.Disconnect(ports[1])
	var total sim.Cycles
	const n = 200
	for i := 0; i < n; i++ {
		var m sim.Meter
		ports[0].Receive(append([]byte(nil), frame...), &m)
		total += m.Total
	}
	return total / n, nil
}

// Table6Row is one reaction-time measurement.
type Table6Row struct {
	Command string
	Seconds float64
}

// Table6ReactionTime reproduces the controller reaction-time table by
// issuing the paper's four commands against live controllers.
func Table6ReactionTime() ([]Table6Row, error) {
	var out []Table6Row

	// Router host for the addr and iptables commands: ens1f0np0 exists but
	// is unaddressed; the rest of the router is configured.
	k := kernel.New("dut")
	eth1 := k.CreateDevice("eth1", netdev.Physical)
	ens := k.CreateDevice("ens1f0np0", netdev.Physical)
	eth1.SetUp(true)
	ens.SetUp(true)
	k.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24"))
	k.SetSysctl("net.ipv4.ip_forward", "1")
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.100.0.0/16"), Gateway: packet.MustAddr("10.2.0.1"), OutIf: eth1.Index})
	ctrl := core.New(k, core.Options{})
	ctrl.Start()
	defer ctrl.Stop()
	ctrl.Sync()

	// ip addr add 10.10.1.1/24 dev ens1f0np0
	if err := k.AddAddr("ens1f0np0", packet.MustPrefix("10.10.1.1/24")); err != nil {
		return nil, err
	}
	ctrl.Sync()
	r, _ := ctrl.LastReaction()
	out = append(out, Table6Row{Command: "ip addr add 10.10.1.1/24 dev ens1f0np0", Seconds: r.Virtual.Seconds()})

	// Bridge host for the brctl commands.
	bk := kernel.New("br-host")
	bk.CreateVethPair("veth11", "veth11p")
	bk.SetLinkUp("veth11", true)
	bctrl := core.New(bk, core.Options{})
	bctrl.Start()
	defer bctrl.Stop()
	bctrl.Sync()

	bk.CreateBridge("br0")
	bk.SetLinkUp("br0", true)
	bctrl.Sync()
	r, _ = bctrl.LastReaction()
	out = append(out, Table6Row{Command: "brctl addbr br0", Seconds: r.Virtual.Seconds()})

	if err := bk.AddBridgePort("br0", "veth11"); err != nil {
		return nil, err
	}
	bctrl.Sync()
	r, _ = bctrl.LastReaction()
	out = append(out, Table6Row{Command: "brctl addif br0 veth11", Seconds: r.Virtual.Seconds()})

	// iptables -A FORWARD -d 10.10.3.0/24 -j DROP on the router host.
	blocked := packet.MustPrefix("10.10.3.0/24")
	if err := k.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop}); err != nil {
		return nil, err
	}
	ctrl.Sync()
	r, _ = ctrl.LastReaction()
	out = append(out, Table6Row{Command: "iptables -d 10.10.3.0/24 -A FORWARD -j DROP", Seconds: r.Virtual.Seconds()})

	return out, nil
}

// --- rendering ----------------------------------------------------------------

// RenderSeries formats figure data as an aligned text table.
func RenderSeries(title, xLabel, yLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-10s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Platform)
	}
	fmt.Fprintf(&b, "   (%s)\n", yLabel)
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-10.0f", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, "%16.3f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLatencyTable formats a latency table like the paper's.
func RenderLatencyTable(title string, rows []LatencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-18s%12s%12s%12s\n", "", "Avg.", "P_99", "Std. Dev")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s%12.3f%12.3f%12.3f\n", r.Platform, r.Avg, r.P99, r.StdDev)
	}
	return b.String()
}

// RenderFig10 formats the call-chaining rows.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Fig. 10: Function call vs Tail call (Mpps, single core)\n")
	fmt.Fprintf(&b, "%-8s%16s%16s\n", "N", "Function call", "Tail call")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%16.3f%16.3f\n", r.NFs, r.FuncCallMpps, r.TailCallMpps)
	}
	return b.String()
}

// RenderTable7 formats the hook comparison.
func RenderTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("Table VII: XDP vs TC hooks\n")
	fmt.Fprintf(&b, "%-12s%14s%14s%14s%14s\n", "", "XDP (pps)", "TC (pps)", "XDP lat (µs)", "TC lat (µs)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%14.0f%14.0f%14.3f%14.3f\n", r.Function, r.XDPpps, r.TCpps, r.XDPLatency, r.TCLatency)
	}
	return b.String()
}

// RenderTable6 formats the reaction-time table.
func RenderTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table VI: LinuxFP reaction time in seconds\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s%8.3f\n", r.Command, r.Seconds)
	}
	return b.String()
}
