package packet

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	return finish(sum(b, 0))
}

// ChecksumWithPseudo computes a transport checksum including the IPv4
// pseudo-header (RFC 793 / RFC 768).
func ChecksumWithPseudo(src, dst Addr, proto uint8, payload []byte) uint16 {
	var pseudo [12]byte
	src.PutBytes(pseudo[0:4])
	dst.PutBytes(pseudo[4:8])
	pseudo[9] = proto
	pseudo[10] = byte(len(payload) >> 8)
	pseudo[11] = byte(len(payload))
	return finish(sum(payload, sum(pseudo[:], 0)))
}

func sum(b []byte, acc uint32) uint32 {
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		acc += uint32(b[n-1]) << 8
	}
	return acc
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}

// ChecksumUpdate16 incrementally updates checksum hc for a 16-bit field that
// changed from old to new (RFC 1624, eqn. 3: HC' = ~(~HC + ~m + m')).
// This is what the fast path uses for TTL decrement — recomputing the full
// header checksum per packet would defeat the point of a fast path.
func ChecksumUpdate16(hc uint16, old, new uint16) uint16 {
	acc := uint32(^hc) + uint32(^old) + uint32(new)
	for acc>>16 != 0 {
		acc = acc&0xffff + acc>>16
	}
	return ^uint16(acc)
}
