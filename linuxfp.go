// Package linuxfp is the public API of the LinuxFP reproduction: a
// transparently accelerated Linux networking stack (ICDCS 2024).
//
// A System is one simulated Linux host. Configure it exactly as you would
// configure Linux — typed calls on System.Kernel, or iproute2/brctl/
// iptables/ipset/sysctl command strings through Exec — and call Accelerate
// to start the LinuxFP controller. The controller introspects the kernel
// over netlink, synthesizes minimal eBPF fast paths for the configuration
// it finds, and keeps them current as configuration changes. No LinuxFP-
// specific configuration exists: that is the paper's point.
//
//	sys := linuxfp.New("router")
//	sys.MustExec("ip link add eth0 type phys")
//	sys.MustExec("ip addr add 10.1.0.254/24 dev eth0")
//	sys.MustExec("sysctl -w net.ipv4.ip_forward=1")
//	sys.Accelerate(linuxfp.Options{})
//	defer sys.Close()
//
// See examples/ for complete scenarios and internal/testbed for the
// harness that regenerates the paper's evaluation.
package linuxfp

import (
	"linuxfp/internal/core"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/kernel"
	"linuxfp/internal/shell"
	"linuxfp/internal/sim"
)

// System is one simulated Linux host: its kernel and, once Accelerate has
// been called, the LinuxFP controller daemon.
type System struct {
	Kernel     *kernel.Kernel
	Controller *core.Controller

	sh *shell.Shell
}

// Options configures acceleration.
type Options struct {
	// PreferTC attaches fast paths at the TC hook instead of XDP
	// (container hosts, where the sk_buff is allocated anyway).
	PreferTC bool
	// WithoutHelpers models an unpatched kernel missing the given
	// helpers; affected subsystems stay on the slow path.
	WithoutHelpers ebpf.Cap
}

// New creates a host with a fresh kernel (loopback only).
func New(name string) *System {
	k := kernel.New(name)
	return &System{Kernel: k, sh: shell.New(k)}
}

// Exec runs one Linux configuration command (ip / brctl / iptables /
// ipset / sysctl) against the kernel and returns its output.
func (s *System) Exec(cmd string) (string, error) {
	return s.sh.Exec(cmd)
}

// MustExec runs a command and panics on error — for example setup code.
func (s *System) MustExec(cmd string) string {
	out, err := s.sh.Exec(cmd)
	if err != nil {
		panic(err)
	}
	return out
}

// Accelerate starts the LinuxFP controller. Configuration changes made
// before or after this call are picked up automatically; Sync forces a
// synchronous reconcile when determinism matters.
func (s *System) Accelerate(opts Options) *core.Controller {
	if s.Controller != nil {
		return s.Controller
	}
	s.Controller = core.New(s.Kernel, core.Options{
		PreferTC:        opts.PreferTC,
		DisabledHelpers: opts.WithoutHelpers,
	})
	s.Controller.Start()
	s.Controller.Sync()
	return s.Controller
}

// Sync waits for the controller to absorb all pending kernel changes.
func (s *System) Sync() {
	if s.Controller != nil {
		s.Controller.Sync()
	}
}

// GraphJSON returns the controller's current processing-graph model.
func (s *System) GraphJSON() string {
	if s.Controller == nil || s.Controller.Graph() == nil {
		return "{}"
	}
	raw, err := s.Controller.Graph().JSON()
	if err != nil {
		return "{}"
	}
	return string(raw)
}

// Close stops the controller, returning all traffic to the slow path.
func (s *System) Close() {
	if s.Controller != nil {
		s.Controller.Stop()
		s.Controller = nil
	}
}

// Meter allocates a cost meter for packet injection through the public
// API (see Device.Receive in internal/netdev).
func Meter() *sim.Meter { return &sim.Meter{} }
