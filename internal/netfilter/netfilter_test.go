package netfilter

import (
	"errors"
	"math/rand"
	"testing"

	"linuxfp/internal/packet"
)

func pfx(s string) *packet.Prefix {
	p := packet.MustPrefix(s)
	return &p
}

func metaFor(src, dst string) *Meta {
	return &Meta{Src: packet.MustAddr(src), Dst: packet.MustAddr(dst), Proto: packet.ProtoUDP}
}

func TestEmptyChainsAccept(t *testing.T) {
	nf := New()
	for _, h := range []Hook{HookPrerouting, HookInput, HookForward, HookOutput, HookPostrouting} {
		v, st := nf.EvaluateHook(h, metaFor("1.1.1.1", "2.2.2.2"))
		if v != VerdictAccept || st.RulesEvaluated != 0 {
			t.Errorf("hook %v: %v %+v", h, v, st)
		}
	}
}

func TestDropRuleMatches(t *testing.T) {
	nf := New()
	if err := nf.Append("FORWARD", Rule{Match: Match{Dst: pfx("10.10.3.0/24")}, Target: VerdictDrop}); err != nil {
		t.Fatal(err)
	}
	v, st := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "10.10.3.9"))
	if v != VerdictDrop || st.RulesEvaluated != 1 {
		t.Fatalf("got %v %+v", v, st)
	}
	v, _ = nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "10.10.4.9"))
	if v != VerdictAccept {
		t.Fatalf("non-matching packet: %v", v)
	}
}

func TestLinearEvaluationCountsRules(t *testing.T) {
	nf := New()
	for i := 0; i < 100; i++ {
		nf.Append("FORWARD", Rule{Match: Match{Dst: pfx("192.0.2.0/24")}, Target: VerdictDrop})
	}
	// Non-matching traffic walks all 100 rules — the Fig. 8 cost.
	_, st := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "8.8.8.8"))
	if st.RulesEvaluated != 100 {
		t.Fatalf("evaluated %d rules, want 100", st.RulesEvaluated)
	}
	// Matching traffic stops at the first rule.
	_, st = nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "192.0.2.1"))
	if st.RulesEvaluated != 1 {
		t.Fatalf("evaluated %d rules, want 1", st.RulesEvaluated)
	}
}

func TestPolicyApplies(t *testing.T) {
	nf := New()
	if err := nf.SetPolicy("FORWARD", VerdictDrop); err != nil {
		t.Fatal(err)
	}
	v, _ := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "2.2.2.2"))
	if v != VerdictDrop {
		t.Fatalf("policy not applied: %v", v)
	}
	nf.Append("FORWARD", Rule{Match: Match{Src: pfx("1.1.1.1/32")}, Target: VerdictAccept})
	v, _ = nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "2.2.2.2"))
	if v != VerdictAccept {
		t.Fatalf("accept rule should override drop policy: %v", v)
	}
	if err := nf.SetPolicy("nope", VerdictDrop); err == nil {
		t.Fatal("policy on unknown chain succeeded")
	}
}

func TestUserChainJumpAndReturn(t *testing.T) {
	nf := New()
	if err := nf.NewChain("BLACKLIST"); err != nil {
		t.Fatal(err)
	}
	if err := nf.NewChain("BLACKLIST"); err == nil {
		t.Fatal("duplicate chain created")
	}
	nf.Append("BLACKLIST", Rule{Match: Match{Src: pfx("203.0.113.0/24")}, Target: VerdictDrop})
	nf.Append("BLACKLIST", Rule{Target: VerdictReturn})
	nf.Append("FORWARD", Rule{Jump: "BLACKLIST"})
	nf.Append("FORWARD", Rule{Match: Match{Dst: pfx("10.0.0.0/8")}, Target: VerdictDrop})

	// Blacklisted source dropped inside the user chain.
	v, _ := nf.EvaluateHook(HookForward, metaFor("203.0.113.5", "2.2.2.2"))
	if v != VerdictDrop {
		t.Fatalf("blacklist: %v", v)
	}
	// Non-blacklisted returns and continues: second FORWARD rule applies.
	v, _ = nf.EvaluateHook(HookForward, metaFor("9.9.9.9", "10.1.1.1"))
	if v != VerdictDrop {
		t.Fatalf("post-return rule: %v", v)
	}
	v, _ = nf.EvaluateHook(HookForward, metaFor("9.9.9.9", "11.1.1.1"))
	if v != VerdictAccept {
		t.Fatalf("clean traffic: %v", v)
	}
}

func TestJumpDepthBounded(t *testing.T) {
	nf := New()
	nf.NewChain("LOOP")
	nf.Append("LOOP", Rule{Jump: "LOOP"}) // malicious self-jump
	nf.Append("FORWARD", Rule{Jump: "LOOP"})
	v, st := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "2.2.2.2"))
	if v != VerdictAccept {
		t.Fatalf("looping chain verdict: %v", v)
	}
	if st.RulesEvaluated > maxJumpDepth+5 {
		t.Fatalf("loop not bounded: %d rules evaluated", st.RulesEvaluated)
	}
}

func TestMatchFields(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Match: Match{
		Proto: packet.ProtoTCP, DstPort: 443, InIf: 2, OutIf: 3,
	}, Target: VerdictDrop})

	m := &Meta{Src: 1, Dst: 2, Proto: packet.ProtoTCP, DstPort: 443, InIf: 2, OutIf: 3}
	if v, _ := nf.EvaluateHook(HookForward, m); v != VerdictDrop {
		t.Fatal("full match failed")
	}
	for _, mut := range []func(*Meta){
		func(m *Meta) { m.Proto = packet.ProtoUDP },
		func(m *Meta) { m.DstPort = 80 },
		func(m *Meta) { m.InIf = 9 },
		func(m *Meta) { m.OutIf = 9 },
	} {
		mm := *m
		mut(&mm)
		if v, _ := nf.EvaluateHook(HookForward, &mm); v != VerdictAccept {
			t.Fatalf("mutation should miss: %+v", mm)
		}
	}
}

func TestFragmentSkipsPortMatch(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Match: Match{DstPort: 53}, Target: VerdictDrop})
	m := &Meta{Proto: packet.ProtoUDP, DstPort: 53, Fragment: true}
	if v, _ := nf.EvaluateHook(HookForward, m); v != VerdictAccept {
		t.Fatal("port match must not apply to fragments")
	}
}

func TestInsertDeleteFlushRules(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Comment: "a", Target: VerdictAccept})
	nf.Append("FORWARD", Rule{Comment: "c", Target: VerdictAccept})
	if err := nf.Insert("FORWARD", 2, Rule{Comment: "b", Target: VerdictAccept}); err != nil {
		t.Fatal(err)
	}
	c, _ := nf.Chain("FORWARD")
	if c.Rules[0].Comment != "a" || c.Rules[1].Comment != "b" || c.Rules[2].Comment != "c" {
		t.Fatalf("order: %v %v %v", c.Rules[0].Comment, c.Rules[1].Comment, c.Rules[2].Comment)
	}
	if err := nf.Delete("FORWARD", 2); err != nil {
		t.Fatal(err)
	}
	if nf.RuleCount("FORWARD") != 2 {
		t.Fatalf("count %d", nf.RuleCount("FORWARD"))
	}
	if err := nf.Delete("FORWARD", 5); err == nil {
		t.Fatal("out-of-range delete succeeded")
	}
	if err := nf.Insert("FORWARD", 0, Rule{}); err == nil {
		t.Fatal("position 0 insert succeeded")
	}
	if err := nf.Flush("FORWARD"); err != nil {
		t.Fatal(err)
	}
	if nf.RuleCount("FORWARD") != 0 {
		t.Fatal("flush left rules")
	}
	if err := nf.Append("nope", Rule{}); !errors.Is(err, ErrNoChain) {
		t.Fatalf("append to unknown chain: %v", err)
	}
}

func TestRuleCountersIncrement(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Match: Match{Dst: pfx("10.0.0.0/8")}, Target: VerdictDrop})
	for i := 0; i < 5; i++ {
		nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "10.0.0.1"))
	}
	nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "11.0.0.1"))
	c, _ := nf.Chain("FORWARD")
	if c.Rules[0].Packets != 5 {
		t.Fatalf("counter %d, want 5", c.Rules[0].Packets)
	}
}

func TestChainSnapshotIsCopy(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Target: VerdictDrop})
	c, _ := nf.Chain("FORWARD")
	c.Rules[0].Target = VerdictAccept
	v, _ := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "2.2.2.2"))
	if v != VerdictDrop {
		t.Fatal("snapshot mutation leaked into live chain")
	}
	if _, ok := nf.Chain("nope"); ok {
		t.Fatal("unknown chain returned")
	}
	chains := nf.Chains()
	if len(chains) != 5 || chains[0] != "FORWARD" {
		t.Fatalf("chains: %v", chains)
	}
}

func TestIPSetBasics(t *testing.T) {
	s, err := NewIPSet("bl", "hash:net")
	if err != nil {
		t.Fatal(err)
	}
	s.Add(packet.MustPrefix("203.0.113.0/24"))
	s.Add(packet.MustPrefix("198.51.100.7/32"))
	if !s.Contains(packet.MustAddr("203.0.113.99")) {
		t.Fatal("net member missed")
	}
	if !s.Contains(packet.MustAddr("198.51.100.7")) {
		t.Fatal("host member missed")
	}
	if s.Contains(packet.MustAddr("198.51.100.8")) {
		t.Fatal("false positive")
	}
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.Del(packet.MustPrefix("203.0.113.0/24")) || s.Del(packet.MustPrefix("203.0.113.0/24")) {
		t.Fatal("del semantics wrong")
	}
	if s.Contains(packet.MustAddr("203.0.113.99")) {
		t.Fatal("deleted member still matches")
	}
}

func TestIPSetTypeRules(t *testing.T) {
	if _, err := NewIPSet("x", "list:set"); err == nil {
		t.Fatal("unsupported type accepted")
	}
	s, _ := NewIPSet("ips", "hash:ip")
	if err := s.Add(packet.MustPrefix("10.0.0.0/24")); err == nil {
		t.Fatal("hash:ip accepted a net")
	}
	if err := s.Add(packet.MustPrefix("10.0.0.1/32")); err != nil {
		t.Fatal(err)
	}
}

// TestIPSetMatchesLinearReference: set membership must equal a linear scan
// of the member prefixes for random probes.
func TestIPSetMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := NewIPSet("ref", "hash:net")
	var members []packet.Prefix
	for i := 0; i < 200; i++ {
		p := packet.Prefix{Addr: packet.Addr(rng.Uint32()), Bits: 8 + rng.Intn(25)}.Masked()
		members = append(members, p)
		s.Add(p)
	}
	for i := 0; i < 2000; i++ {
		probe := packet.Addr(rng.Uint32())
		if i%3 == 0 {
			probe = members[rng.Intn(len(members))].Addr | packet.Addr(rng.Uint32()&0xff)
		}
		want := false
		for _, m := range members {
			if m.Contains(probe) {
				want = true
				break
			}
		}
		if got := s.Contains(probe); got != want {
			t.Fatalf("probe %s: got %v want %v", probe, got, want)
		}
	}
}

func TestNetfilterSetRegistry(t *testing.T) {
	nf := New()
	s, err := nf.CreateSet("bl", "hash:net")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf.CreateSet("bl", "hash:net"); err == nil {
		t.Fatal("duplicate set created")
	}
	s.Add(packet.MustPrefix("10.0.0.0/8"))
	got, ok := nf.Set("bl")
	if !ok || got != s {
		t.Fatal("set lookup failed")
	}
	if names := nf.Sets(); len(names) != 1 || names[0] != "bl" {
		t.Fatalf("sets: %v", names)
	}
	if !nf.DestroySet("bl") || nf.DestroySet("bl") {
		t.Fatal("destroy semantics wrong")
	}
}

func TestRuleWithSetMatch(t *testing.T) {
	nf := New()
	s, _ := nf.CreateSet("blacklist", "hash:net")
	for _, p := range []string{"203.0.113.0/24", "198.51.100.0/24"} {
		s.Add(packet.MustPrefix(p))
	}
	nf.Append("FORWARD", Rule{Match: Match{SrcSet: "blacklist"}, Target: VerdictDrop})

	v, st := nf.EvaluateHook(HookForward, metaFor("203.0.113.9", "2.2.2.2"))
	if v != VerdictDrop || st.SetProbes != 1 {
		t.Fatalf("set match: %v %+v", v, st)
	}
	v, st = nf.EvaluateHook(HookForward, metaFor("8.8.8.8", "2.2.2.2"))
	if v != VerdictAccept || st.SetProbes != 1 || st.RulesEvaluated != 1 {
		t.Fatalf("set miss: %v %+v — one rule with one probe replaces N rules", v, st)
	}
	// A rule naming a missing set never matches.
	nf.Flush("FORWARD")
	nf.Append("FORWARD", Rule{Match: Match{DstSet: "ghost"}, Target: VerdictDrop})
	if v, _ := nf.EvaluateHook(HookForward, metaFor("1.1.1.1", "2.2.2.2")); v != VerdictAccept {
		t.Fatal("missing set matched")
	}
}

func TestConntrackFlowLifecycle(t *testing.T) {
	ct := NewConntrack()
	orig := Tuple{Src: 1, Dst: 2, Proto: packet.ProtoTCP, SrcPort: 1000, DstPort: 80}

	st, dir := ct.Track(orig, 0)
	if st != CTNew || dir != DirOriginal {
		t.Fatalf("first packet: %v %v", st, dir)
	}
	st, dir = ct.Track(orig, 1)
	if st != CTNew || dir != DirOriginal {
		t.Fatalf("second original packet: %v %v", st, dir)
	}
	// Reply confirms the flow.
	st, dir = ct.Track(orig.Reverse(), 2)
	if st != CTEstablished || dir != DirReply {
		t.Fatalf("reply packet: %v %v", st, dir)
	}
	st, _ = ct.Track(orig, 3)
	if st != CTEstablished {
		t.Fatalf("original after reply: %v", st)
	}
	if ct.Len() != 1 {
		t.Fatalf("len %d", ct.Len())
	}
	c, dir, ok := ct.Lookup(orig.Reverse(), 3)
	if !ok || dir != DirReply || c.Packets[0] != 3 || c.Packets[1] != 1 {
		t.Fatalf("lookup: %+v dir=%v ok=%v", c, dir, ok)
	}
}

func TestConntrackTupleSymmetry(t *testing.T) {
	// Property: for random tuples, both directions resolve to a flow whose
	// original tuple is one of the two, and direction is consistent.
	rng := rand.New(rand.NewSource(11))
	ct := NewConntrack()
	for i := 0; i < 500; i++ {
		tup := Tuple{
			Src: packet.Addr(rng.Uint32()), Dst: packet.Addr(rng.Uint32()),
			Proto: packet.ProtoUDP, SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
		}
		if tup == tup.Reverse() {
			continue
		}
		ct.Track(tup, 0)
		c1, d1, ok1 := ct.Lookup(tup, 0)
		c2, d2, ok2 := ct.Lookup(tup.Reverse(), 0)
		if !ok1 || !ok2 {
			t.Fatal("both directions must resolve")
		}
		if c1.Orig != c2.Orig {
			t.Fatal("directions resolved to different flows")
		}
		if d1 != DirOriginal || d2 != DirReply {
			t.Fatalf("directions: %v %v", d1, d2)
		}
	}
}

func TestConntrackExpiry(t *testing.T) {
	ct := NewConntrack()
	ct.SetTimeout(10)
	tup := Tuple{Src: 1, Dst: 2, Proto: packet.ProtoUDP, SrcPort: 5, DstPort: 6}
	ct.Track(tup, 0)
	if _, _, ok := ct.Lookup(tup, 5); !ok {
		t.Fatal("live flow missed")
	}
	if _, _, ok := ct.Lookup(tup, 20); ok {
		t.Fatal("expired flow resolved")
	}
	if n := ct.Expire(20); n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if ct.Len() != 0 {
		t.Fatal("expire left flows")
	}
	// Re-tracking after expiry starts a fresh NEW flow.
	st, _ := ct.Track(tup, 21)
	if st != CTNew {
		t.Fatalf("flow after expiry: %v", st)
	}
}

func TestCTStateRuleMatch(t *testing.T) {
	nf := New()
	nf.Append("FORWARD", Rule{Match: Match{CTState: CTEstablished}, Target: VerdictAccept})
	nf.Append("FORWARD", Rule{Match: Match{CTState: CTNew}, Target: VerdictDrop})

	m := metaFor("1.1.1.1", "2.2.2.2")
	m.CTState = CTNew
	if v, _ := nf.EvaluateHook(HookForward, m); v != VerdictDrop {
		t.Fatal("NEW should drop")
	}
	m.CTState = CTEstablished
	if v, _ := nf.EvaluateHook(HookForward, m); v != VerdictAccept {
		t.Fatal("ESTABLISHED should accept")
	}
}

func TestStringsAndIntrospection(t *testing.T) {
	for h, want := range map[Hook]string{
		HookPrerouting: "PREROUTING", HookInput: "INPUT", HookForward: "FORWARD",
		HookOutput: "OUTPUT", HookPostrouting: "POSTROUTING",
	} {
		if h.String() != want {
			t.Errorf("%d -> %q", h, h.String())
		}
	}
	if Hook(42).String() == "" {
		t.Error("unknown hook should format")
	}
	for v, want := range map[Verdict]string{
		VerdictAccept: "ACCEPT", VerdictDrop: "DROP", VerdictReturn: "RETURN", VerdictNone: "NONE",
	} {
		if v.String() != want {
			t.Errorf("%d -> %q", v, v.String())
		}
	}
	for s, want := range map[CTState]string{
		CTNew: "NEW", CTEstablished: "ESTABLISHED", CTRelated: "RELATED", CTState(0): "ANY",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func TestCTRequiredAndTotalRules(t *testing.T) {
	nf := New()
	if nf.CTRequired() {
		t.Fatal("fresh table should not require conntrack")
	}
	nf.Append("FORWARD", Rule{Target: VerdictAccept})
	if nf.CTRequired() {
		t.Fatal("plain rule should not require conntrack")
	}
	nf.Append("INPUT", Rule{Match: Match{CTState: CTEstablished}, Target: VerdictAccept})
	if !nf.CTRequired() {
		t.Fatal("CT-state rule should require conntrack")
	}
	if nf.TotalRules() != 2 {
		t.Fatalf("total %d", nf.TotalRules())
	}
}

func TestHasTerminalDrop(t *testing.T) {
	nf := New()
	if nf.HasTerminalDrop("POSTROUTING") {
		t.Fatal("empty chain cannot drop")
	}
	nf.Append("POSTROUTING", Rule{Target: VerdictAccept})
	if nf.HasTerminalDrop("POSTROUTING") {
		t.Fatal("accept-only chain cannot drop")
	}
	// Drop via a jumped-to user chain must be detected.
	nf.NewChain("MASQ")
	nf.Append("MASQ", Rule{Match: Match{Proto: packet.ProtoTCP}, Target: VerdictDrop})
	nf.Append("POSTROUTING", Rule{Jump: "MASQ"})
	if !nf.HasTerminalDrop("POSTROUTING") {
		t.Fatal("drop through jump not detected")
	}
	// Policy DROP counts too.
	nf2 := New()
	nf2.SetPolicy("POSTROUTING", VerdictDrop)
	if !nf2.HasTerminalDrop("POSTROUTING") {
		t.Fatal("drop policy not detected")
	}
	// Jump loops terminate.
	nf3 := New()
	nf3.NewChain("LOOP")
	nf3.Append("LOOP", Rule{Jump: "LOOP"})
	nf3.Append("POSTROUTING", Rule{Jump: "LOOP"})
	if nf3.HasTerminalDrop("POSTROUTING") {
		t.Fatal("loop misdetected as drop")
	}
	if nf3.HasTerminalDrop("GHOST") {
		t.Fatal("missing chain misdetected")
	}
}

func TestIPSetMembers(t *testing.T) {
	s, _ := NewIPSet("m", "hash:net")
	for _, p := range []string{"10.2.0.0/16", "10.1.0.0/16", "192.168.0.0/24"} {
		s.Add(packet.MustPrefix(p))
	}
	ms := s.Members()
	if len(ms) != 3 || ms[0].String() != "10.1.0.0/16" || ms[2].String() != "192.168.0.0/24" {
		t.Fatalf("members: %v", ms)
	}
}
