// Per-CPU flow fast-cache: memoizes the forwarding decision for a flow (the
// FIB result, resolved neighbour MAC and egress device for L3; the FDB
// decision for L2) so steady-state packets skip the full lookup walk.
//
// The coherence rule is the same one LinuxFP's fast path lives by: the cache
// never copies kernel state it cannot revalidate. Every entry records the
// combined generation of the subsystems consulted to build it, and every hit
// compares that against the live generation — one route change, neighbour
// update, FDB move, rule insertion or sysctl flip bumps a generation and
// every memoized decision dies at once. Expiring state (neighbour
// reachability, FDB ageing) is bounded by the expiry copied at fill time,
// and mutable device fields (MAC, MTU, up/down) are read live on every hit.
//
// The cache is sharded per CPU (same contract as per-CPU data in the
// kernel): a meter's CPU picks the shard, so queue workers never contend.
// It is off by default and enabled with the net.core.flow_cache sysctl.
package kernel

import (
	"encoding/binary"
	"sync/atomic"

	"linuxfp/internal/bridge"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// flowCacheSize is entries per shard; direct-mapped, power of two.
const flowCacheSize = 256

const flowCacheMask = flowCacheSize - 1

// flowEntry memoizes one L3 forwarding decision. The seq field is a seqlock:
// odd while a writer is mid-update, bumped to even when consistent; readers
// verify it did not move across their reads.
type flowEntry struct {
	seq         atomic.Uint32
	gen         uint64
	hash        uint32
	tuple       packet.FlowTuple
	out         *netdev.Device
	dstMAC      packet.HWAddr
	neighExpire sim.Time
}

// flowShard is one CPU's direct-mapped flow table, allocated lazily on the
// first fill so idle shards cost nothing.
type flowShard struct {
	entries [flowCacheSize]flowEntry
}

// l2Key identifies one bridged unicast flow: the decision depends on the
// destination (FDB), the source and ingress port (station-move detection via
// key mismatch), and the raw VLAN tag (classification + retag).
type l2Key struct {
	dst, src packet.HWAddr
	vlan     uint16
	ingress  int32
}

// l2Entry memoizes one L2 forwarding decision.
type l2Entry struct {
	seq    atomic.Uint32
	gen    uint64
	key    l2Key
	out    *netdev.Device
	expire sim.Time
}

// l2Shard is one CPU's L2 decision table.
type l2Shard struct {
	entries [flowCacheSize]l2Entry
}

// dpGen is the combined generation of every subsystem an L3 forwarding
// decision consults. Each term is monotonic, so the sum is monotonic: equal
// sums imply nothing changed.
func (k *Kernel) dpGen() uint64 {
	return k.cfgGen.Load() + k.FIB.Gen() + k.Neigh.Gen() + k.NF.Gen()
}

// l2Gen is the combined generation for a bridged decision.
func (k *Kernel) l2Gen(br *bridge.Bridge) uint64 {
	return k.cfgGen.Load() + br.Gen() + k.NF.Gen()
}

// flowHash computes the symmetric Toeplitz hash of a frame's tuple — the
// model's skb->hash, shared with RSS so both directions of a flow land on
// one queue and one cache shard.
func flowHash(t packet.FlowTuple) uint32 {
	return netdev.HashFlow(&netdev.ToeplitzKeySymmetric, t)
}

// flowFastPath attempts a cached L3 forward. It returns true when the frame
// was fully handled (rewritten and transmitted). Validation on every hit:
// the generation, the tuple (hash collisions), the neighbour expiry against
// virtual now, the live TTL, and the live egress MTU/admin state.
func (k *Kernel) flowFastPath(dev *netdev.Device, frame []byte, m *sim.Meter) bool {
	t, l3, ok := packet.ReadFlowTuple(frame)
	if !ok || t.Frag {
		return false
	}
	c := k.ctr(m)
	sh := k.flows[shardIdx(m)].Load()
	if sh == nil {
		c.flowMisses.Add(1)
		return false
	}
	h := flowHash(t)
	e := &sh.entries[h&flowCacheMask]
	seq := e.seq.Load()
	if seq&1 != 0 {
		c.flowMisses.Add(1)
		return false
	}
	out := e.out
	if e.hash != h || e.tuple != t || out == nil || e.gen != k.dpGen() {
		c.flowMisses.Add(1)
		return false
	}
	if k.Now() > e.neighExpire {
		c.flowMisses.Add(1)
		return false
	}
	if packet.IPv4TTL(frame, l3) <= 1 {
		c.flowMisses.Add(1)
		return false
	}
	if int(binary.BigEndian.Uint16(frame[l3+2:l3+4])) > out.MTU || !out.IsUp() {
		c.flowMisses.Add(1)
		return false
	}
	dstMAC := e.dstMAC
	if e.seq.Load() != seq {
		c.flowMisses.Add(1)
		return false
	}
	packet.DecTTL(frame, l3)
	packet.SetEthSrc(frame, out.MAC)
	packet.SetEthDst(frame, dstMAC)
	m.Charge(sim.CostFlowFastHit + sim.CostDevXmit)
	if ft := k.flowTab.Load(); ft != nil {
		ft.Observe(t, len(frame), true, m)
	}
	out.Transmit(frame, m)
	c.flowHits.Add(1)
	c.forwarded.Add(1)
	return true
}

// flowInstall memoizes the decision just taken for frame: transmitted out
// `out` toward dstMAC, a binding valid until expire. gen was captured before
// the lookups ran, so a concurrent mutation forces a conservative miss. The
// caller has already verified eligibility (empty forward-path chains, no
// conntrack, no IPVS, no TC egress, unicast, unfragmented).
func (k *Kernel) flowInstall(frame []byte, out *netdev.Device, dstMAC packet.HWAddr, expire sim.Time, gen uint64, m *sim.Meter) {
	t, _, ok := packet.ReadFlowTuple(frame)
	if !ok || t.Frag {
		return
	}
	idx := shardIdx(m)
	sh := k.flows[idx].Load()
	if sh == nil {
		sh = new(flowShard)
		if !k.flows[idx].CompareAndSwap(nil, sh) {
			sh = k.flows[idx].Load()
		}
	}
	h := flowHash(t)
	e := &sh.entries[h&flowCacheMask]
	e.seq.Add(1) // odd: writer in progress
	e.gen = gen
	e.hash = h
	e.tuple = t
	e.out = out
	e.dstMAC = dstMAC
	e.neighExpire = expire
	e.seq.Add(1) // even: consistent
}

// flowFillEligible reports whether forwarded flows may currently be
// memoized: nothing on the forward path may filter, track, or rewrite
// packets, because a cache hit skips all of it. Any later change to these
// conditions bumps a generation and evicts.
func (k *Kernel) flowFillEligible(out *netdev.Device) bool {
	if k.NF.RuleCount("PREROUTING") > 0 || k.NF.RuleCount("FORWARD") > 0 ||
		k.NF.RuleCount("POSTROUTING") > 0 || k.NF.CTRequired() {
		return false
	}
	if k.IPVSActive() {
		return false
	}
	return k.tcEgressFor(out.Index) == nil
}

// l2Hash is FNV-1a over the L2 key.
func l2Hash(key l2Key) uint32 {
	h := uint32(2166136261)
	for _, b := range key.dst {
		h = (h ^ uint32(b)) * 16777619
	}
	for _, b := range key.src {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(key.vlan)) * 16777619
	h = (h ^ uint32(key.vlan>>8)) * 16777619
	h = (h ^ uint32(key.ingress)) * 16777619
	h = (h ^ uint32(key.ingress>>8)) * 16777619
	return h
}

// l2FastPath attempts a cached bridged forward for a unicast frame. A hit
// transmits the frame unmodified (entries are only filled when no retag was
// needed). Station moves are caught structurally: a source appearing on a
// new ingress port forms a different key, misses, and the slow path's
// re-learning bumps the bridge generation, killing the stale entry.
func (k *Kernel) l2FastPath(br *bridge.Bridge, dev *netdev.Device, frame []byte, eth packet.Ethernet, m *sim.Meter) bool {
	if eth.Dst.IsMulticast() {
		return false
	}
	c := k.ctr(m)
	sh := k.l2cache[shardIdx(m)].Load()
	if sh == nil {
		c.flowMisses.Add(1)
		return false
	}
	key := l2Key{dst: eth.Dst, src: eth.Src, vlan: eth.VLAN, ingress: int32(dev.Index)}
	e := &sh.entries[l2Hash(key)&flowCacheMask]
	seq := e.seq.Load()
	if seq&1 != 0 {
		c.flowMisses.Add(1)
		return false
	}
	out := e.out
	if e.key != key || out == nil || e.gen != k.l2Gen(br) || k.Now() > e.expire || !out.IsUp() {
		c.flowMisses.Add(1)
		return false
	}
	if e.seq.Load() != seq {
		c.flowMisses.Add(1)
		return false
	}
	m.Charge(sim.CostBridgeFastHit + sim.CostDevXmit)
	if ft := k.flowTab.Load(); ft != nil {
		// Bridged frames need not carry IP; only account the ones that do.
		if t, _, ok := packet.ReadFlowTuple(frame); ok {
			ft.Observe(t, len(frame), true, m)
		}
	}
	out.Transmit(frame, m)
	c.flowHits.Add(1)
	return true
}

// l2Install memoizes a single-egress unicast bridge decision that required
// no retagging. expire bounds the entry by the FDB entry's own ageing.
func (k *Kernel) l2Install(dev *netdev.Device, eth packet.Ethernet, out *netdev.Device, expire sim.Time, gen uint64, m *sim.Meter) {
	idx := shardIdx(m)
	sh := k.l2cache[idx].Load()
	if sh == nil {
		sh = new(l2Shard)
		if !k.l2cache[idx].CompareAndSwap(nil, sh) {
			sh = k.l2cache[idx].Load()
		}
	}
	key := l2Key{dst: eth.Dst, src: eth.Src, vlan: eth.VLAN, ingress: int32(dev.Index)}
	e := &sh.entries[l2Hash(key)&flowCacheMask]
	e.seq.Add(1)
	e.gen = gen
	e.key = key
	e.out = out
	e.expire = expire
	e.seq.Add(1)
}

// FlowCacheEnabled reports whether the per-CPU flow fast-cache is on
// (net.core.flow_cache sysctl).
func (k *Kernel) FlowCacheEnabled() bool { return k.flowCacheOn.Load() }
