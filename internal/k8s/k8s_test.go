package k8s

import (
	"strings"
	"testing"

	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

func cluster(t *testing.T, accelerated bool) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Nodes: 3, Accelerated: accelerated})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range c.Nodes {
			if n.Controller != nil {
				n.Controller.Stop()
			}
		}
	})
	return c
}

func pair(t *testing.T, c *Cluster, intra bool) (*Pod, *Pod) {
	t.Helper()
	client, err := c.AddPod(c.Nodes[1])
	if err != nil {
		t.Fatal(err)
	}
	serverNode := c.Nodes[1]
	if !intra {
		serverNode = c.Nodes[2]
	}
	server, err := c.AddPod(serverNode)
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestIntraNodePodConnectivity(t *testing.T) {
	c := cluster(t, false)
	client, server := pair(t, c, true)
	cyc, err := RRProbe(client, server, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cyc <= 0 {
		t.Fatal("no cycles measured")
	}
	// Intra-node traffic never touches the underlay.
	if st := c.Nodes[1].Eth0.Stats(); st.TxPackets != 0 {
		t.Fatalf("intra-node traffic leaked to the underlay: %+v", st)
	}
}

func TestInterNodePodConnectivity(t *testing.T) {
	c := cluster(t, false)
	client, server := pair(t, c, false)
	cyc, err := RRProbe(client, server, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cyc <= 0 {
		t.Fatal("no cycles measured")
	}
	// Inter-node traffic is vxlan-encapsulated on the wire: the underlay
	// NIC carries UDP to port 8472.
	if st := c.Nodes[1].Eth0.Stats(); st.TxPackets == 0 {
		t.Fatal("no underlay traffic for inter-node pods")
	}
	seen := false
	c.Nodes[2].Eth0.Tap = func(f []byte) {
		if p, err := packet.Decode(f); err == nil && p.IPv4 != nil && p.IPv4.Proto == packet.ProtoUDP {
			if _, dport := packet.L4Ports(p.Payload, 0); dport == 8472 {
				seen = true
			}
		}
	}
	if _, err := RRProbe(client, server, 2); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no vxlan encapsulation observed on the wire")
	}
}

func TestInterNodeCostsMoreThanIntra(t *testing.T) {
	c := cluster(t, false)
	intraC, intraS := pair(t, c, true)
	interC, interS := pair(t, c, false)
	intra, err := RRProbe(intraC, intraS, 20)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := RRProbe(interC, interS, 20)
	if err != nil {
		t.Fatal(err)
	}
	if inter <= intra {
		t.Fatalf("inter (%v) should cost more than intra (%v)", inter, intra)
	}
	// Paper Table V: inter ≈ 3× intra; accept a broad zone.
	if ratio := float64(inter) / float64(intra); ratio < 1.5 || ratio > 5 {
		t.Fatalf("inter/intra ratio %.2f outside zone", ratio)
	}
}

func TestAccelerationPreservesConnectivityAndHelps(t *testing.T) {
	plain := cluster(t, false)
	accel := cluster(t, true)

	for _, intra := range []bool{true, false} {
		pc, ps := pair(t, plain, intra)
		ac, as := pair(t, accel, intra)
		plainCyc, err := RRProbe(pc, ps, 20)
		if err != nil {
			t.Fatalf("plain intra=%v: %v", intra, err)
		}
		accelCyc, err := RRProbe(ac, as, 20)
		if err != nil {
			t.Fatalf("accel intra=%v: %v", intra, err)
		}
		speedup := float64(plainCyc) / float64(accelCyc)
		// Paper: 1.20× intra, 1.16× inter. Our conservative veth model
		// lands lower but must clearly win (see EXPERIMENTS.md).
		if speedup < 1.02 {
			t.Fatalf("intra=%v: acceleration did not help: %.3f (plain %v, accel %v)",
				intra, speedup, plainCyc, accelCyc)
		}
		if speedup > 1.6 {
			t.Fatalf("intra=%v: speedup %.2f implausibly high", intra, speedup)
		}
	}
}

func TestAcceleratedFastPathActuallyUsed(t *testing.T) {
	accel := cluster(t, true)
	client, server := pair(t, accel, true)
	if _, err := RRProbe(client, server, 5); err != nil {
		t.Fatal(err)
	}
	// The controller must have deployed TC programs on the veth ports.
	node := accel.Nodes[1]
	deployed := node.Controller.Deployer().Deployed()
	if len(deployed) == 0 {
		t.Fatal("controller deployed nothing")
	}
	found := false
	for _, name := range deployed {
		if name == "veth0" || name == "veth1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no veth fast path deployed: %v", deployed)
	}
}

func TestMeasureRRAndThroughput(t *testing.T) {
	c := cluster(t, false)
	client, server := pair(t, c, true)
	res, err := MeasureRR(client, server, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanMs <= 0 || res.P99Ms <= res.MeanMs || res.StdDevMs <= 0 {
		t.Fatalf("stats: %+v", res)
	}
	// Paper zone: intra-node RTT single-digit-to-tens of ms.
	if res.MeanMs < 1 || res.MeanMs > 40 {
		t.Fatalf("intra RTT %.2f ms outside the paper's zone", res.MeanMs)
	}
	// Throughput is linear in pairs for closed-loop RR.
	one := Throughput(res, 1)
	ten := Throughput(res, 10)
	if ten < 9.9*one || ten > 10.1*one {
		t.Fatalf("throughput scaling: %v vs %v", one, ten)
	}
	if Throughput(RRResult{}, 5) != 0 {
		t.Fatal("zero RTT should yield zero throughput")
	}
}

func TestClusterDefaults(t *testing.T) {
	c, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 3 {
		t.Fatalf("default nodes: %d", len(c.Nodes))
	}
	if c.Config.KubeProxyRules != DefaultKubeProxyRules {
		t.Fatalf("default rules: %d", c.Config.KubeProxyRules)
	}
	// kube-proxy rules present on every node.
	for _, n := range c.Nodes {
		if got := n.K.NF.RuleCount("FORWARD"); got != DefaultKubeProxyRules {
			t.Fatalf("%s FORWARD has %d rules", n.Name, got)
		}
	}
}

func TestPodAddressing(t *testing.T) {
	c := cluster(t, false)
	p0, _ := c.AddPod(c.Nodes[0])
	p1, _ := c.AddPod(c.Nodes[0])
	if p0.IP != packet.AddrFrom4(10, 244, 0, 2) || p1.IP != packet.AddrFrom4(10, 244, 0, 3) {
		t.Fatalf("pod IPs: %v %v", p0.IP, p1.IP)
	}
	if !c.Nodes[0].PodCIDR().Contains(p0.IP) {
		t.Fatal("pod outside node CIDR")
	}
	br, ok := c.Nodes[0].K.BridgeByName("cni0")
	if !ok || len(br.Ports()) != 2 {
		t.Fatal("pods not attached to cni0")
	}
}

func TestKubeProxyFilterAppliesToBridgedTraffic(t *testing.T) {
	// br_netfilter means bridged pod traffic traverses FORWARD: add an
	// explicit drop and verify pod isolation (a NetworkPolicy would do
	// this).
	c := cluster(t, false)
	client, server := pair(t, c, true)
	if _, err := RRProbe(client, server, 2); err != nil {
		t.Fatal(err)
	}
	blocked := packet.Prefix{Addr: server.IP, Bits: 32}
	if err := c.Nodes[1].K.IptInsert("FORWARD", 1, netfilter.Rule{
		Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := RRProbe(client, server, 2); err == nil {
		t.Fatal("drop rule ignored for bridged pod traffic")
	}
	_ = sim.Cycles(0)
}

func TestTable5ShapeLinuxFPWins(t *testing.T) {
	rows, err := Table5PodLatency()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	// Paper ordering: LinuxFP below Linux in both placements; inter above
	// intra everywhere.
	if byName["LinuxFP (intra)"].AvgMs >= byName["Linux (intra)"].AvgMs {
		t.Fatalf("intra: %+v", rows)
	}
	if byName["LinuxFP (inter)"].AvgMs >= byName["Linux (inter)"].AvgMs {
		t.Fatalf("inter: %+v", rows)
	}
	if byName["Linux (inter)"].AvgMs <= byName["Linux (intra)"].AvgMs {
		t.Fatalf("inter should exceed intra: %+v", rows)
	}
	if !strings.Contains(RenderTable5(rows), "LinuxFP (intra)") {
		t.Fatal("render")
	}
}

func TestFig9ShapeLinuxFPWins(t *testing.T) {
	intra, err := Fig9PodThroughput(3, true)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Fig9PodThroughput(3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range intra {
		if p.LinuxFPTPS <= p.LinuxTPS {
			t.Fatalf("intra point %d: LinuxFP should win: %+v", i, p)
		}
	}
	for i, p := range inter {
		if p.LinuxFPTPS <= p.LinuxTPS {
			t.Fatalf("inter point %d: LinuxFP should win: %+v", i, p)
		}
	}
	// Linear growth in pairs.
	if intra[2].LinuxTPS < 2.9*intra[0].LinuxTPS {
		t.Fatalf("scaling: %+v", intra)
	}
	if !strings.Contains(RenderFig9(intra, inter), "pairs") {
		t.Fatal("render")
	}
}
