package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// FastPathPoint is one measured configuration of the LinuxFP fast path:
// per-packet vs NAPI-batched entry, interpreted vs fused (JIT) program,
// and the batch size used. Cycles is the mean model cost per packet with
// the wires unplugged; PPS is the single-core rate that cost implies.
type FastPathPoint struct {
	Mode      string  `json:"mode"` // "per-packet" or "batched"
	JIT       bool    `json:"jit"`
	BatchSize int     `json:"batch_size"` // 0 for per-packet
	Cycles    float64 `json:"modelcycles_per_pkt"`
	PPS       float64 `json:"pps_1core"`
}

// FastPathCorePoint is one point of the batched fast path's pps-vs-cores
// scaling curve (RSS steering + one NAPI poll loop per queue).
type FastPathCorePoint struct {
	Cores int     `json:"cores"`
	PPS   float64 `json:"pps"`
	Mpps  float64 `json:"mpps"`
}

// FastPathReport is the machine-readable result of FastPathSweep — what
// `lfpbench -exp fastpath` serializes into BENCH_fastpath.json.
type FastPathReport struct {
	Platform   string              `json:"platform"`
	FrameSize  int                 `json:"frame_size"`
	ClockHz    float64             `json:"clock_hz"`
	Points     []FastPathPoint     `json:"points"`
	CoreSweep  []FastPathCorePoint `json:"core_sweep"`
	NAPIBudget int                 `json:"napi_budget"`
	BulkSize   int                 `json:"devmap_bulk_size"`
}

// FastPathSweep measures the virtual-router fast path across the
// batching/JIT matrix plus a batch-size sweep and a cores sweep. n is the
// number of frames per configuration.
func FastPathSweep(batchSizes []int, cores []int, n int) (*FastPathReport, error) {
	d, err := Build(PlatformLinuxFP, Scenario{})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	r := &FastPathReport{
		Platform:   PlatformLinuxFP,
		FrameSize:  64,
		ClockHz:    sim.ClockHz,
		NAPIBudget: netdev.NAPIBudget,
		BulkSize:   netdev.DevMapBulkSize,
	}

	for _, jit := range []bool{false, true} {
		setJIT(d, jit)
		c := fastPathCycles(d, 0, n)
		r.Points = append(r.Points, FastPathPoint{
			Mode: "per-packet", JIT: jit, Cycles: c, PPS: ppsFromCycles(c),
		})
		for _, bs := range batchSizes {
			c := fastPathCycles(d, bs, n)
			r.Points = append(r.Points, FastPathPoint{
				Mode: "batched", JIT: jit, BatchSize: bs, Cycles: c, PPS: ppsFromCycles(c),
			})
		}
	}
	setJIT(d, true)
	for _, nc := range cores {
		pps := batchedParallelPPS(d, nc, n)
		r.CoreSweep = append(r.CoreSweep, FastPathCorePoint{Cores: nc, PPS: pps, Mpps: pps / 1e6})
	}
	return r, nil
}

// batchedParallelPPS is ParallelPPS without the single-core per-packet
// shortcut: every point, including cores=1, runs through the RSS worker
// pool's batched NAPI polls, so the sweep is batched end to end.
func batchedParallelPPS(d *DUT, cores, n int) float64 {
	g := *d.gen
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	pool := d.Kern.StartRxQueues(d.In, cores, netdev.NAPIBudget)
	for _, frame := range g.Burst(n) {
		pool.Steer(frame)
	}
	pool.Close()
	d.In.SetRxQueues(1)
	busiest := pool.MaxQueueCycles()
	if busiest <= 0 {
		return 0
	}
	return float64(n) * sim.ClockHz / float64(busiest)
}

func setJIT(d *DUT, on bool) {
	v := "0"
	if on {
		v = "1"
	}
	d.Kern.SetSysctl("net.core.bpf_jit_enable", v)
}

// fastPathCycles drives n frames through the DUT ingress — per packet when
// batch == 0, otherwise in ReceiveBatch bursts of `batch` — and returns the
// mean model cycles per frame. Wires are unplugged so only DUT work meters.
func fastPathCycles(d *DUT, batch, n int) float64 {
	g := *d.gen
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	var m sim.Meter
	if batch <= 0 {
		for i := 0; i < n; i++ {
			d.In.Receive(g.Frame(i), &m)
		}
	} else {
		frames := make([][]byte, 0, batch)
		for i := 0; i < n; i += batch {
			frames = frames[:0]
			for j := i; j < i+batch && j < n; j++ {
				frames = append(frames, g.Frame(j))
			}
			d.In.ReceiveBatch(frames, 0, &m)
		}
	}
	return float64(m.Total) / float64(n)
}

func ppsFromCycles(c float64) float64 {
	if c <= 0 {
		return 0
	}
	return sim.ClockHz / c
}

// RenderFastPath prints the sweep in the house table style.
func RenderFastPath(r *FastPathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fast path: batching x JIT sweep (64B router, single core)\n")
	fmt.Fprintf(&b, "%-12s %-6s %8s %14s %10s\n", "mode", "jit", "batch", "cycles/pkt", "Mpps")
	for _, p := range r.Points {
		jit := "off"
		if p.JIT {
			jit = "on"
		}
		batch := "-"
		if p.BatchSize > 0 {
			batch = fmt.Sprintf("%d", p.BatchSize)
		}
		fmt.Fprintf(&b, "%-12s %-6s %8s %14.1f %10.2f\n", p.Mode, jit, batch, p.Cycles, p.PPS/1e6)
	}
	fmt.Fprintf(&b, "\nFast path: pps vs cores (batched, JIT on)\n")
	fmt.Fprintf(&b, "%6s %10s\n", "cores", "Mpps")
	for _, p := range r.CoreSweep {
		fmt.Fprintf(&b, "%6d %10.2f\n", p.Cores, p.Mpps)
	}
	return b.String()
}
