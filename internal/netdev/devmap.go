package netdev

import (
	"linuxfp/internal/sim"
)

// DevMapBulkSize matches the kernel's DEV_MAP_BULK_SIZE: a per-queue bulk
// queue holds at most 16 frames before it is force-flushed into the egress
// device's ndo_xdp_xmit.
const DevMapBulkSize = 16

// NAPIBudget is the frame budget of one NAPI poll — the largest burst an
// XDP program runs over before the devmap bulk queues are flushed
// (xdp_do_flush) and the poll returns.
const NAPIBudget = 64

// rxQueueMask folds an RX queue id into the devmap's per-queue array
// (MaxRxQueues is a power of two).
const rxQueueMask = MaxRxQueues - 1

// bulkQueue accumulates frames bound for one egress device during a NAPI
// poll, the model's xdp_dev_bulk_queue. Frames are enqueued in arrival
// order and flushed FIFO, so per-egress-device ordering matches the
// per-packet path exactly.
type bulkQueue struct {
	dev    *Device
	n      int
	frames [DevMapBulkSize][]byte
}

// devMapQueue is one RX queue's flush list: the set of bulk queues touched
// since the last xdp_do_flush. Only that queue's NAPI worker touches it, so
// no lock is needed; padding keeps neighbouring queues off the same cache
// line.
type devMapQueue struct {
	bqs []bulkQueue
	_   [5]uint64
}

// DevMap is the BPF_MAP_TYPE_DEVMAP bulk-redirect machinery: per RX queue
// (the model's per-CPU), frames redirected during a poll are appended to a
// per-egress-device bulk queue instead of being transmitted one at a time,
// and flushed in bursts — one doorbell per bulk instead of per frame.
type DevMap struct {
	queues [MaxRxQueues]devMapQueue
}

// Enqueue appends a frame to the bulk queue for out on RX queue rxq,
// force-flushing first when the queue is already holding DevMapBulkSize
// frames (the kernel's bq_enqueue).
func (dm *DevMap) Enqueue(rxq int, out *Device, frame []byte, m *sim.Meter) {
	m.Charge(sim.CostXDPBulkEnqueue)
	q := &dm.queues[rxq&rxQueueMask]
	bq := (*bulkQueue)(nil)
	for i := range q.bqs {
		if q.bqs[i].dev == out {
			bq = &q.bqs[i]
			break
		}
		if bq == nil && q.bqs[i].dev == nil {
			bq = &q.bqs[i]
		}
	}
	if bq == nil {
		q.bqs = append(q.bqs, bulkQueue{})
		bq = &q.bqs[len(q.bqs)-1]
	}
	if bq.dev == nil {
		bq.dev = out
	}
	if bq.n == DevMapBulkSize {
		flushBQ(bq, m)
		bq.dev = out
	}
	bq.frames[bq.n] = frame
	bq.n++
}

// Flush drains every bulk queue touched on rxq since the last flush — the
// model's xdp_do_flush, called once at the end of a NAPI poll.
func (dm *DevMap) Flush(rxq int, m *sim.Meter) {
	q := &dm.queues[rxq&rxQueueMask]
	for i := range q.bqs {
		if q.bqs[i].n > 0 {
			flushBQ(&q.bqs[i], m)
		}
		q.bqs[i].dev = nil
	}
}

// flushBQ transmits one bulk queue's frames in a single ndo_xdp_xmit call:
// the doorbell cost is paid once, the per-frame cost covers descriptor
// writes, and the egress device counts the whole burst with one bulk
// counter update.
func flushBQ(bq *bulkQueue, m *sim.Meter) {
	m.Charge(sim.CostXDPBulkFlushB + sim.Cycles(bq.n)*sim.CostXDPBulkFlushPer)
	bq.dev.TransmitBatch(bq.frames[:bq.n], m)
	for i := 0; i < bq.n; i++ {
		bq.frames[i] = nil
	}
	bq.n = 0
}
