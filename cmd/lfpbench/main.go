// Command lfpbench regenerates every table and figure of the LinuxFP
// paper's evaluation (§VI) on the simulated testbed and prints them in the
// paper's layout.
//
//	lfpbench -exp all
//	lfpbench -exp fig5 -cores 6
//	lfpbench -exp table6
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"linuxfp/internal/k8s"
	"linuxfp/internal/testbed"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fastpath|gro|cpumap|steer|sockmap|obs|afxdp|specialize|fig5|fig6|fig7|fig8|fig9|fig10|table3|table4|table5|table6|table7|ablation|all")
	cores := flag.Int("cores", 6, "maximum core count for core sweeps")
	pairs := flag.Int("pairs", 10, "maximum pod pairs for fig9")
	fpJSON := flag.String("fastpath-json", "", "write the fastpath sweep as JSON to this file")
	groJSON := flag.String("gro-json", "", "write the GRO sweep as JSON to this file")
	cpumapJSON := flag.String("cpumap-json", "", "write the cpumap sweep as JSON to this file")
	obsJSON := flag.String("obs-json", "", "write the observability overhead sweep as JSON to this file")
	afxdpJSON := flag.String("afxdp-json", "", "write the AF_XDP three-plane race as JSON to this file")
	specJSON := flag.String("specialize-json", "", "write the JIT specialization sweep as JSON to this file")
	steerJSON := flag.String("steer-json", "", "write the closed-loop steering sweep as JSON to this file")
	sockmapJSON := flag.String("sockmap-json", "", "write the socket fast path sweep as JSON to this file")
	flag.Parse()

	if err := run(*exp, *cores, *pairs, *fpJSON, *groJSON, *cpumapJSON, *obsJSON, *afxdpJSON, *specJSON, *steerJSON, *sockmapJSON); err != nil {
		fmt.Fprintln(os.Stderr, "lfpbench:", err)
		os.Exit(1)
	}
}

func run(exp string, cores, pairs int, fpJSON, groJSON, cpumapJSON, obsJSON, afxdpJSON, specJSON, steerJSON, sockmapJSON string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fastpath") {
		ran = true
		report, err := testbed.FastPathSweep([]int{1, 8, 16, 32, 64}, []int{1, 2, 4, 6, 8}, 1024)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderFastPath(report))
		if fpJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(fpJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", fpJSON)
		}
	}
	if want("gro") {
		ran = true
		report, err := testbed.GROSweep([]int{1, 8, 16, 32, 64}, 1024)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderGRO(report))
		if groJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(groJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", groJSON)
		}
	}
	if want("cpumap") {
		ran = true
		report, err := testbed.CpumapSweep([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderCpumap(report))
		if cpumapJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(cpumapJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cpumapJSON)
		}
	}
	if want("steer") {
		ran = true
		report, err := testbed.SteerSweep([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSteer(report))
		if steerJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(steerJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", steerJSON)
		}
	}
	if want("sockmap") {
		ran = true
		report, err := testbed.SockmapSweep([]int{1_000, 100_000, 1_000_000})
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSockmap(report))
		if sockmapJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(sockmapJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", sockmapJSON)
		}
	}
	if want("obs") {
		ran = true
		report, err := testbed.ObsSweep([]int{1, 32, 64})
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderObs(report))
		if obsJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(obsJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", obsJSON)
		}
	}
	if want("afxdp") {
		ran = true
		report, err := testbed.AFXDPSweep([]int{1, 8, 32, 64}, []int{16, 256}, 4096)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderAFXDP(report))
		if afxdpJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(afxdpJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", afxdpJSON)
		}
	}
	if want("specialize") {
		ran = true
		report, err := testbed.SpecializeSweep(200, 256)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSpecialize(report))
		if specJSON != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(specJSON, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", specJSON)
		}
	}
	if want("fig5") {
		ran = true
		series, err := testbed.Fig5RouterThroughput(cores)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSeries("Fig. 5: Virtual router throughput vs cores (64B)", "cores", "Mpps", series))
	}
	if want("table3") {
		ran = true
		rows, err := testbed.Table3RouterLatency()
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderLatencyTable("Table III: Virtual router RTT, single core, 128 sessions (µs)", rows))
	}
	if want("fig6") {
		ran = true
		series, err := testbed.Fig6PacketSize(nil)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSeries("Fig. 6: Virtual router single-core throughput vs packet size", "bytes", "Gbps", series))
	}
	if want("fig7") {
		ran = true
		series, err := testbed.Fig7GatewayThroughput(cores)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSeries("Fig. 7: Virtual gateway throughput vs cores (100 rules)", "cores", "Mpps", series))
	}
	if want("table4") {
		ran = true
		rows, err := testbed.Table4GatewayLatency()
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderLatencyTable("Table IV: Virtual gateway RTT, single core, 128 sessions (µs)", rows))
	}
	if want("fig8") {
		ran = true
		series, err := testbed.Fig8RuleScaling(nil)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderSeries("Fig. 8: Virtual gateway single-core throughput vs filtering rules", "rules", "Mpps", series))
	}
	if want("fig9") {
		ran = true
		intra, err := k8s.Fig9PodThroughput(pairs, true)
		if err != nil {
			return err
		}
		inter, err := k8s.Fig9PodThroughput(pairs, false)
		if err != nil {
			return err
		}
		fmt.Println(k8s.RenderFig9(intra, inter))
	}
	if want("table5") {
		ran = true
		rows, err := k8s.Table5PodLatency()
		if err != nil {
			return err
		}
		fmt.Println(k8s.RenderTable5(rows))
	}
	if want("table6") {
		ran = true
		rows, err := testbed.Table6ReactionTime()
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderTable6(rows))
	}
	if want("fig10") {
		ran = true
		rows, err := testbed.Fig10CallChaining(16)
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderFig10(rows))
	}
	if want("ablation") {
		ran = true
		a, err := testbed.AblationStateSharing()
		if err != nil {
			return err
		}
		b, err := testbed.AblationSpecialization()
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderAblations([]testbed.AblationResult{a, b}))
	}
	if want("table7") {
		ran = true
		rows, err := testbed.Table7HookComparison()
		if err != nil {
			return err
		}
		fmt.Println(testbed.RenderTable7(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want %s)", exp,
			strings.Join([]string{"fastpath", "gro", "cpumap", "steer", "sockmap", "obs", "afxdp", "specialize", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
				"table3", "table4", "table5", "table6", "table7", "ablation", "all"}, "|"))
	}
	return nil
}
