// Package packet implements the wire formats the data plane manipulates:
// Ethernet (with 802.1Q VLAN tags), ARP, IPv4 (including fragments), ICMP,
// UDP and TCP. Frames are plain byte slices — exactly what an XDP program
// sees — with typed encoders/decoders and in-place mutators (MAC rewrite,
// TTL decrement with incremental checksum update) layered on top.
package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// HWAddr is a 48-bit Ethernet MAC address.
type HWAddr [6]byte

// BroadcastHW is the all-ones broadcast address.
var BroadcastHW = HWAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (h HWAddr) IsBroadcast() bool { return h == BroadcastHW }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (h HWAddr) IsMulticast() bool { return h[0]&1 == 1 }

// IsZero reports whether the address is all zeros.
func (h HWAddr) IsZero() bool { return h == HWAddr{} }

func (h HWAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", h[0], h[1], h[2], h[3], h[4], h[5])
}

// ParseHWAddr parses a colon-separated MAC address.
func ParseHWAddr(s string) (HWAddr, error) {
	parts := strings.Split(s, ":")
	var h HWAddr
	if len(parts) != 6 {
		return h, fmt.Errorf("packet: bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return h, fmt.Errorf("packet: bad MAC %q: %w", s, err)
		}
		h[i] = byte(v)
	}
	return h, nil
}

// MustHWAddr parses a MAC address, panicking on error. For tests and tables.
func MustHWAddr(s string) HWAddr {
	h, err := ParseHWAddr(s)
	if err != nil {
		panic(err)
	}
	return h
}

// Addr is an IPv4 address held in host byte order so prefix arithmetic is a
// shift and mask.
type Addr uint32

// AddrFrom4 builds an address from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromBytes decodes 4 network-order bytes.
func AddrFromBytes(b []byte) Addr {
	_ = b[3]
	return AddrFrom4(b[0], b[1], b[2], b[3])
}

// PutBytes writes the address into b in network byte order.
func (a Addr) PutBytes(b []byte) {
	_ = b[3]
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

// Octets returns the four octets of the address.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// IsBroadcast reports whether the address is 255.255.255.255.
func (a Addr) IsBroadcast() bool { return a == 0xffffffff }

// IsMulticast reports whether the address is in 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a>>28 == 0xe }

// IsLoopback reports whether the address is in 127.0.0.0/8.
func (a Addr) IsLoopback() bool { return a>>24 == 127 }

func (a Addr) String() string {
	o := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o[0], o[1], o[2], o[3])
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("packet: bad IPv4 address %q", s)
	}
	var a Addr
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("packet: bad IPv4 address %q: %w", s, err)
		}
		a = a<<8 | Addr(v)
	}
	return a, nil
}

// MustAddr parses an address, panicking on error. For tests and tables.
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix parses "a.b.c.d/len" (a bare address is treated as /32).
func ParsePrefix(s string) (Prefix, error) {
	addrStr, bitsStr, found := strings.Cut(s, "/")
	addr, err := ParseAddr(addrStr)
	if err != nil {
		return Prefix{}, err
	}
	bits := 32
	if found {
		bits, err = strconv.Atoi(bitsStr)
		if err != nil || bits < 0 || bits > 32 {
			return Prefix{}, fmt.Errorf("packet: bad prefix length in %q", s)
		}
	}
	return Prefix{Addr: addr, Bits: bits}, nil
}

// MustPrefix parses a prefix, panicking on error. For tests and tables.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the netmask for the prefix length.
func (p Prefix) Mask() Addr {
	if p.Bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Bits))
}

// Masked returns the prefix with host bits cleared.
func (p Prefix) Masked() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Bits: p.Bits}
}

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.Mask() == p.Addr&p.Mask()
}

func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Bits)
}
