// Package testbed builds the paper's experimental setups — the three-node
// line topology (traffic source, device under test, traffic sink) with each
// platform configured for the virtual-router and virtual-gateway network
// functions — and provides the measurement machinery that regenerates every
// figure and table of the evaluation (§VI).
package testbed

import (
	"fmt"

	"linuxfp/internal/core"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/polycube"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
	"linuxfp/internal/vpp"
)

// Platform names, as they appear in the paper's figures.
const (
	PlatformLinux        = "Linux"
	PlatformLinuxIpset   = "Linux (ipset)"
	PlatformLinuxFP      = "LinuxFP"
	PlatformLinuxFPIpset = "LinuxFP (ipset)"
	PlatformPolycube     = "Polycube"
	PlatformVPP          = "VPP"
)

// Scenario selects and parameterizes the network function under test.
type Scenario struct {
	// Gateway adds IP filtering (the virtual-gateway NF); otherwise the
	// DUT is the plain virtual router.
	Gateway bool
	// Rules is the blacklist size for the gateway (paper: 100).
	Rules int
	// UseIpset aggregates the blacklist into one set-backed rule.
	UseIpset bool
	// PreferTC attaches LinuxFP at the TC hook instead of XDP.
	PreferTC bool
}

// Routed prefixes behind the sink (the paper's 50).
const RoutedPrefixes = 50

// DUT is one configured device under test with its source and sink.
type DUT struct {
	Platform string
	Scenario Scenario

	Src, Kern, Sink *kernel.Kernel
	SrcDev, In      *netdev.Device
	Out, SinkDev    *netdev.Device

	Controller *core.Controller // LinuxFP only
	VPP        *vpp.Instance    // VPP only

	gen    *traffic.Pktgen // forward direction (client -> server)
	genRev *traffic.Pktgen // reverse direction
}

// blacklistPrefix returns the i-th blacklist source prefix. They never
// match the measured traffic, so every allowed packet pays the full
// evaluation — the paper's worst case for linear matching.
func blacklistPrefix(i int) packet.Prefix {
	return packet.Prefix{Addr: packet.AddrFrom4(203, byte(i/256), byte(i%256), 0), Bits: 24}
}

// routedPrefix returns the i-th routed destination prefix.
func routedPrefix(i int) packet.Prefix {
	return packet.Prefix{Addr: packet.AddrFrom4(10, 100+byte(i), 0, 0), Bits: 16}
}

// Build constructs the full three-node world for a platform + scenario.
func Build(platform string, sc Scenario) (*DUT, error) {
	d := &DUT{Platform: platform, Scenario: sc,
		Src: kernel.New("src"), Kern: kernel.New("dut"), Sink: kernel.New("sink")}
	d.SrcDev = d.Src.CreateDevice("eth0", netdev.Physical)
	d.In = d.Kern.CreateDevice("eth0", netdev.Physical)
	d.Out = d.Kern.CreateDevice("eth1", netdev.Physical)
	d.SinkDev = d.Sink.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(d.SrcDev, d.In)
	netdev.Connect(d.Out, d.SinkDev)
	for _, dev := range []*netdev.Device{d.SrcDev, d.In, d.Out, d.SinkDev} {
		dev.SetUp(true)
	}
	d.Src.AddAddr("eth0", packet.MustPrefix("10.1.0.1/24"))
	d.Sink.AddAddr("eth0", packet.MustPrefix("10.2.0.1/24"))
	d.Src.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.1.0.254"), OutIf: d.SrcDev.Index})
	d.Sink.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.2.0.254"), OutIf: d.SinkDev.Index})

	switch platform {
	case PlatformLinux, PlatformLinuxIpset, PlatformLinuxFP, PlatformLinuxFPIpset:
		if err := d.configureLinux(sc, platform == PlatformLinuxIpset || platform == PlatformLinuxFPIpset); err != nil {
			return nil, err
		}
		if platform == PlatformLinuxFP || platform == PlatformLinuxFPIpset {
			d.Controller = core.New(d.Kern, core.Options{PreferTC: sc.PreferTC})
			d.Controller.Start()
			d.Controller.Sync()
		}
	case PlatformPolycube:
		if err := d.configurePolycube(sc); err != nil {
			return nil, err
		}
	case PlatformVPP:
		if err := d.configureVPP(sc); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("testbed: unknown platform %q", platform)
	}

	d.gen = &traffic.Pktgen{
		SrcMAC: d.SrcDev.MAC, DstMAC: d.In.MAC, SrcIP: packet.MustAddr("10.1.0.1"),
		Prefixes: prefixes(), Size: traffic.MinFrameSize,
	}
	// The reverse generator targets the (resolved) client host exactly.
	d.genRev = &traffic.Pktgen{
		SrcMAC: d.SinkDev.MAC, DstMAC: d.Out.MAC, SrcIP: packet.MustAddr("10.100.0.10"),
		Prefixes: []packet.Prefix{packet.MustPrefix("10.1.0.1/32")}, Size: traffic.MinFrameSize,
	}

	d.warm()
	return d, nil
}

func prefixes() []packet.Prefix {
	out := make([]packet.Prefix, RoutedPrefixes)
	for i := range out {
		out[i] = routedPrefix(i)
	}
	return out
}

// configureLinux sets the DUT up with nothing but standard Linux tooling —
// the configuration LinuxFP then introspects without being told anything.
func (d *DUT) configureLinux(sc Scenario, ipset bool) error {
	d.Kern.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	d.Kern.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24"))
	d.Kern.SetSysctl("net.ipv4.ip_forward", "1")
	for i := 0; i < RoutedPrefixes; i++ {
		d.Kern.AddRoute(fib.Route{Prefix: routedPrefix(i), Gateway: packet.MustAddr("10.2.0.1"), OutIf: d.Out.Index})
	}
	// Return route for the reverse (server->client) direction.
	d.Kern.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.1.0.0/24"), OutIf: d.In.Index, Scope: fib.ScopeLink})
	if !sc.Gateway {
		return nil
	}
	if ipset {
		if _, err := d.Kern.IpsetCreate("blacklist", "hash:net"); err != nil {
			return err
		}
		for i := 0; i < sc.Rules; i++ {
			if err := d.Kern.IpsetAdd("blacklist", blacklistPrefix(i)); err != nil {
				return err
			}
		}
		return d.Kern.IptAppend("FORWARD", netfilter.Rule{
			Match: netfilter.Match{SrcSet: "blacklist"}, Target: netfilter.VerdictDrop,
		})
	}
	for i := 0; i < sc.Rules; i++ {
		p := blacklistPrefix(i)
		if err := d.Kern.IptAppend("FORWARD", netfilter.Rule{
			Match: netfilter.Match{Src: &p}, Target: netfilter.VerdictDrop,
		}); err != nil {
			return err
		}
	}
	return nil
}

// configurePolycube mirrors the same function through Polycube's own API.
func (d *DUT) configurePolycube(sc Scenario) error {
	p := polycube.New(d.Kern)
	r, err := p.AddRouter("r0")
	if err != nil {
		return err
	}
	if sc.Gateway {
		fw, err := p.AddFirewall("fw0")
		if err != nil {
			return err
		}
		for i := 0; i < sc.Rules; i++ {
			bp := blacklistPrefix(i)
			fw.AppendRule(polycube.FWRule{Src: &bp, Action: ebpf.VerdictDrop})
		}
		if err := r.ChainFirewall(fw); err != nil {
			return err
		}
	}
	if err := r.AddPort("eth0"); err != nil {
		return err
	}
	if err := r.AddPort("eth1"); err != nil {
		return err
	}
	for i := 0; i < RoutedPrefixes; i++ {
		if err := r.AddRoute(routedPrefix(i), packet.MustAddr("10.2.0.1"), "eth1"); err != nil {
			return err
		}
	}
	if err := r.AddRoute(packet.MustPrefix("10.1.0.0/24"), packet.MustAddr("10.1.0.1"), "eth0"); err != nil {
		return err
	}
	r.AddArpEntry(packet.MustAddr("10.2.0.1"), d.SinkDev.MAC)
	r.AddArpEntry(packet.MustAddr("10.1.0.1"), d.SrcDev.MAC)
	return nil
}

// configureVPP mirrors the function through VPP's API with kernel bypass.
func (d *DUT) configureVPP(sc Scenario) error {
	v := vpp.New(d.Kern, 1)
	d.VPP = v
	if err := v.TakeInterface("eth0"); err != nil {
		return err
	}
	if err := v.TakeInterface("eth1"); err != nil {
		return err
	}
	for i := 0; i < RoutedPrefixes; i++ {
		if err := v.AddRoute(routedPrefix(i), packet.MustAddr("10.2.0.1"), "eth1"); err != nil {
			return err
		}
	}
	if err := v.AddRoute(packet.MustPrefix("10.1.0.0/24"), packet.MustAddr("10.1.0.1"), "eth0"); err != nil {
		return err
	}
	v.AddNeighbor(packet.MustAddr("10.2.0.1"), d.SinkDev.MAC)
	v.AddNeighbor(packet.MustAddr("10.1.0.1"), d.SrcDev.MAC)
	if sc.Gateway {
		for i := 0; i < sc.Rules; i++ {
			bp := blacklistPrefix(i)
			v.AddACL(vpp.ACLRule{Src: &bp, Deny: true})
		}
	}
	return nil
}

// warm resolves neighbours on the kernel platforms so measurements see the
// steady state (the paper lets Pktgen warm up for 10 seconds).
func (d *DUT) warm() {
	if d.VPP != nil {
		return // static adjacencies, nothing to resolve
	}
	var m sim.Meter
	d.Src.Ping(packet.MustAddr("10.100.0.1"), 9, 1, nil, &m)
	d.Sink.Ping(packet.MustAddr("10.1.0.1"), 9, 1, nil, &m)
	// Make sure resolution completed even if pings were filtered.
	if _, ok := d.Kern.Neigh.Resolved(packet.MustAddr("10.2.0.1"), 0); !ok {
		d.Kern.Neigh.AddPermanent(packet.MustAddr("10.2.0.1"), d.SinkDev.MAC, d.Out.Index)
	}
	if _, ok := d.Kern.Neigh.Resolved(packet.MustAddr("10.1.0.1"), 0); !ok {
		d.Kern.Neigh.AddPermanent(packet.MustAddr("10.1.0.1"), d.SrcDev.MAC, d.In.Index)
	}
}

// Close stops background components.
func (d *DUT) Close() {
	if d.Controller != nil {
		d.Controller.Stop()
	}
}

// AvgCycles measures the DUT's mean per-packet cost for n generated frames
// of the given size, with the wires unplugged so only DUT work is metered.
func (d *DUT) AvgCycles(n, size int) sim.Cycles {
	return d.avgCycles(n, size, false)
}

// AvgCyclesReverse measures the server->client direction.
func (d *DUT) AvgCyclesReverse(n, size int) sim.Cycles {
	return d.avgCycles(n, size, true)
}

func (d *DUT) avgCycles(n, size int, reverse bool) sim.Cycles {
	gen := d.gen
	inject := d.In
	if reverse {
		gen = d.genRev
		inject = d.Out
	}
	g := *gen
	g.Size = size

	// Unplug both wires: the meter must only see DUT-side work.
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	var total sim.Cycles
	for i := 0; i < n; i++ {
		var m sim.Meter
		inject.Receive(g.Frame(i), &m)
		total += m.Total
	}
	return total / sim.Cycles(n)
}

// Throughput reports pps and Gbps for the given core count and frame size,
// capped by the 25 Gbps line rate (the paper's NICs) — the model behind
// Figs. 5-8. Multi-core numbers are measured, not extrapolated: the burst
// is RSS-steered across `cores` RX queues, each drained by its own worker
// goroutine on its own virtual CPU, and the aggregate rate is bounded by
// the busiest queue (the core that finishes last). Hash imbalance across
// flows therefore shows up as sub-linear scaling, exactly as on hardware.
func (d *DUT) Throughput(cores, size int) (pps, gbps float64) {
	pps = d.ParallelPPS(cores, size)
	// On-wire overhead: preamble 8 + IFG 12 + FCS 4.
	lineRatePPS := sim.LineRateBitsPerSec / (float64(size+24) * 8)
	if pps > lineRatePPS {
		pps = lineRatePPS
	}
	gbps = pps * float64(size) * 8 / 1e9
	return pps, gbps
}

// ParallelPPS measures aggregate forwarding rate over `cores` RX queues by
// driving real goroutine-parallel load through the DUT (wires unplugged, so
// only DUT work is metered). With one core it reduces to the single-meter
// measurement. Uncapped: callers wanting the line-rate bound use Throughput.
func (d *DUT) ParallelPPS(cores, size int) float64 {
	if cores <= 1 {
		return sim.PacketsPerSecond(d.AvgCycles(200, size))
	}
	g := *d.gen
	g.Size = size
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	pool := d.Kern.StartRxQueues(d.In, cores, 64)
	n := cores * 200 // keep the per-queue sample near the single-core one
	for _, frame := range g.Burst(n) {
		pool.Steer(frame)
	}
	pool.Close()
	d.In.SetRxQueues(1)
	busiest := pool.MaxQueueCycles()
	if busiest <= 0 {
		return 0
	}
	// All queues run concurrently; the burst is done when the slowest
	// queue's core goes idle.
	return float64(n) * sim.ClockHz / float64(busiest)
}

// RRFrameSize is the small request/response frame netperf TCP_RR uses.
const RRFrameSize = 64

// Latency runs the 128-session single-core netperf TCP_RR workload
// (Tables III, IV, VII).
func (d *DUT) Latency(sessions int, seed uint64) traffic.RRResult {
	req := d.AvgCycles(100, RRFrameSize)
	resp := d.AvgCyclesReverse(100, RRFrameSize)
	return traffic.RunRR(traffic.RRConfig{
		Sessions:    sessions,
		Duration:    2 * sim.Second,
		Seed:        seed,
		ReqCycles:   req,
		RespCycles:  resp,
		WireRTT:     20 * sim.Microsecond,
		ServerTime:  8 * sim.Microsecond,
		JitterSigma: 0.22,
		StallProb:   0.0005,
		StallMean:   80 * sim.Microsecond,
	})
}
