package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64-seeded xoshiro256**). Experiments seed it explicitly so every
// run of the harness reproduces the same numbers.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normal variate with the given parameters of the
// underlying normal. Used to model per-packet service-time jitter (cache
// misses, softirq interference) with a realistic heavy right tail.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
