package fpm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// attachCPUSpread loads a fast path that fans every parsed frame out across
// the given CPUs of a fresh cpumap and attaches it to the rig's ingress.
func (r *routerRig) attachCPUSpread(t *testing.T, qsize int, cpus ...int) *ebpf.CPUMap {
	t.Helper()
	loader := ebpf.NewLoader(r.dut)
	cm := ebpf.NewCPUMap("cpu_map", r.dut)
	for _, c := range cpus {
		if !cm.Update(c, qsize) {
			t.Fatalf("cpumap update cpu %d failed", c)
		}
	}
	ops := []ebpf.Op{
		ParseEth(), ParseIPv4(), ParseL4(),
		CPUSpreadOp(CPUSpreadConf{Map: cm, CPUs: cpus}),
	}
	prog, err := loader.Load(&ebpf.Program{Name: "cpu_spread", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.AttachXDP(r.in, prog, "driver"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range cpus {
			cm.Delete(c)
		}
	})
	return cm
}

// TestCpumapConservationParity drives bursts of every size 1..200 through
// the cpumap fast path, alternating the per-packet and batched drivers, and
// asserts after each burst that the XDP verdict conservation invariant
// (drops + tx + redirects + pass == rx) still balances — with the extra
// cpumap clause that every surviving redirect is a ring insert
// (XDPRedirects == CpumapEnqueued), however many frames bulk spills dropped.
func TestCpumapConservationParity(t *testing.T) {
	r := newRouterRig(t)
	r.sinkDev.Tap = nil // three kthreads deliver concurrently; the rig's capture append is single-threaded only
	// qsize 16 with traffic arriving faster than the kthreads drain forces
	// real ring overflows, so the reclassification path is exercised too.
	cm := r.attachCPUSpread(t, 16, 1, 2, 3)

	rxBase := r.in.Stats().RxPackets
	injected := uint64(0)
	for n := 1; n <= 200; n++ {
		frames := make([][]byte, n)
		for i := range frames {
			dst := packet.AddrFrom4(10, 100+byte(i%50), 1, byte(1+i%200))
			frames[i] = r.frameUDP(dst, uint16(1024+n), uint16(2000+i%7), 64, nil)
		}
		var m sim.Meter
		if n%2 == 1 {
			for _, f := range frames {
				r.in.Receive(f, &m)
			}
		} else {
			r.in.ReceiveBatch(frames, 0, &m)
		}
		injected += uint64(n)

		st := r.in.Stats()
		if st.RxPackets-rxBase != injected {
			t.Fatalf("n=%d: rx = %d, want %d", n, st.RxPackets-rxBase, injected)
		}
		if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != injected {
			t.Fatalf("n=%d: conservation violated: drops(%d)+tx(%d)+redir(%d)+pass(%d) = %d != %d",
				n, st.XDPDrops, st.XDPTx, st.XDPRedirects, st.XDPPass, got, injected)
		}
		ks := r.dut.Stats()
		if st.XDPRedirects != ks.CpumapEnqueued {
			t.Fatalf("n=%d: XDPRedirects (%d) != CpumapEnqueued (%d)", n, st.XDPRedirects, ks.CpumapEnqueued)
		}
	}
	cm.Quiesce()
	ks := r.dut.Stats()
	if ks.CpumapDrops == 0 {
		t.Fatal("no ring overflow occurred; overflow reclassification untested (raise traffic or shrink qsize)")
	}
	st := r.in.Stats()
	if st.XDPDrops < ks.CpumapDrops {
		t.Fatalf("XDPDrops (%d) missing reclassified ring overflows (%d)", st.XDPDrops, ks.CpumapDrops)
	}
}

// TestCpumapForwardEquivalence pins the tentpole's correctness half: frames
// rebalanced through a cpumap to another CPU must come out the egress
// byte-identical, and in the same order, as the same workload processed on
// the RX core via XDP_PASS.
func TestCpumapForwardEquivalence(t *testing.T) {
	mkWorld := func(cpumap bool) [][]byte {
		r := newRouterRig(t)
		var cm *ebpf.CPUMap
		if cpumap {
			cm = r.attachCPUSpread(t, 4096, 6)
		} else {
			// Same program shape, no spread op: every frame passes to the
			// slow path on the RX core.
			loader := ebpf.NewLoader(r.dut)
			ops := []ebpf.Op{ParseEth(), ParseIPv4(), ParseL4()}
			prog, err := loader.Load(&ebpf.Program{Name: "pass_all", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
			if err != nil {
				t.Fatal(err)
			}
			if err := loader.AttachXDP(r.in, prog, "driver"); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(23))
		for burst := 0; burst < 4; burst++ {
			frames := make([][]byte, 64)
			for i := range frames {
				dst := packet.AddrFrom4(10, 100+byte(rng.Intn(50)), 2, byte(1+rng.Intn(200)))
				payload := make([]byte, rng.Intn(64))
				rng.Read(payload)
				frames[i] = r.frameUDP(dst, uint16(3000+rng.Intn(512)), 2000, uint8(2+rng.Intn(62)), payload)
			}
			var m sim.Meter
			r.in.ReceiveBatch(frames, 0, &m)
		}
		if cpumap {
			// Wait for the kthread to drain: the quiesce's atomic handoff
			// also makes the captured slice safe to read from here.
			cm.Quiesce()
			ks := r.dut.Stats()
			if ks.CpumapEnqueued != 256 || ks.CpumapDrops != 0 {
				t.Fatalf("cpumap world: enqueued/drops = %d/%d, want 256/0", ks.CpumapEnqueued, ks.CpumapDrops)
			}
		}
		return r.captured
	}
	pass := mkWorld(false)
	cpum := mkWorld(true)
	if len(pass) == 0 {
		t.Fatal("pass world delivered nothing; test is vacuous")
	}
	if len(pass) != len(cpum) {
		t.Fatalf("delivered %d (pass) vs %d (cpumap)", len(pass), len(cpum))
	}
	for i := range pass {
		// Compare from L3 up: MACs are per-rig.
		if !bytes.Equal(pass[i][packet.EthHdrLen:], cpum[i][packet.EthHdrLen:]) {
			t.Fatalf("frame %d differs:\npass   %x\ncpumap %x", i, pass[i], cpum[i])
		}
	}
}

// TestCpumapGROCoalesceParity is the ROADMAP's GRO follow-up: a TCP flow
// rebalanced to another CPU enters that CPU's GRO context and must coalesce
// exactly as it would have on the RX core — identical coalesce/flush/
// superseg counters, poll for poll.
func TestCpumapGROCoalesceParity(t *testing.T) {
	tcpSeg := func(r *routerRig, seq uint32, id uint16, payload []byte) []byte {
		gwMAC, ok := r.src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
		if !ok {
			t.Fatal("gw unresolved")
		}
		src, dst := packet.MustAddr("10.1.0.1"), packet.MustAddr("10.120.0.10")
		tcp := packet.TCP{SrcPort: 4000, DstPort: 80, Seq: seq, Ack: 1, Flags: packet.TCPAck, Window: 512}
		return packet.BuildIPv4(
			packet.Ethernet{Dst: gwMAC, Src: r.srcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, ID: id, Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
			tcp.Marshal(nil, src, dst, payload),
		)
	}
	const polls, payload = 4, 128
	run := func(cpumap bool) (kstats struct {
		coalesced, flushes, supersegs, forwarded uint64
	}) {
		r := newRouterRig(t)
		r.in.SetGRO(true)
		var cm *ebpf.CPUMap
		if cpumap {
			cm = r.attachCPUSpread(t, 4096, 9)
		}
		seq, id := uint32(1), uint16(1)
		for p := 0; p < polls; p++ {
			frames := make([][]byte, 64)
			for i := range frames {
				frames[i] = tcpSeg(r, seq, id, make([]byte, payload))
				seq += payload
				id++
			}
			var m sim.Meter
			r.in.ReceiveBatch(frames, 0, &m)
			if cpumap {
				// One poll per kthread run, exactly like the RX core's one
				// DeliverBatch per poll.
				cm.Quiesce()
			}
		}
		st := r.dut.Stats()
		kstats.coalesced, kstats.flushes, kstats.supersegs, kstats.forwarded =
			st.GROCoalesced, st.GROFlushes, st.GROSupersegs, st.Forwarded
		return kstats
	}
	same := run(false)
	rebal := run(true)
	if same.coalesced == 0 || same.supersegs == 0 {
		t.Fatalf("same-CPU run did not coalesce (%+v); parity is vacuous", same)
	}
	if rebal != same {
		t.Fatalf("GRO counters diverge after cpumap rebalance:\nsame-CPU %+v\nrebalanced %+v", same, rebal)
	}
}

// TestCpumapSwapRaceHammer extends the 8-queue dispatcher-swap/sysctl hammer
// with live cpumap entry churn: while RX workers blast redirect traffic,
// one goroutine swaps the dispatcher between two spreading programs, one
// updates/deletes the cpumap entries the traffic targets, and one flips
// sysctls and reads aggregates. Run under -race this is the cpumap
// memory-safety proof; the conservation checks prove no frame is lost or
// double-delivered across entry teardown and bulk flushes.
func TestCpumapSwapRaceHammer(t *testing.T) {
	r := newRouterRig(t)
	r.sinkDev.Tap = nil // the rig's capture append is single-threaded only
	blocked := packet.MustPrefix("10.100.40.0/24")
	r.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})

	cpus := []int{1, 3, 5, 7}
	loader := ebpf.NewLoader(r.dut)
	cm := ebpf.NewCPUMap("cpu_map", r.dut)
	for _, c := range cpus {
		cm.Update(c, 512)
	}
	counters := ebpf.NewPerCPUArrayMap("mon", 256)
	mkProg := func(name string, rr bool) *ebpf.Program {
		ops := []ebpf.Op{
			ParseEth(), ParseIPv4(), ParseL4(),
			MonitorOpPerCPU(counters),
			CPUSpreadOp(CPUSpreadConf{Map: cm, CPUs: cpus, RoundRobin: rr}),
		}
		p, err := loader.Load(&ebpf.Program{Name: name, Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	progA, progB := mkProg("spread_flow", false), mkProg("spread_rr", true)
	disp, err := loader.NewDispatcher("xdp_disp", ebpf.HookXDP)
	if err != nil {
		t.Fatal(err)
	}
	disp.Swap(progA)
	if err := loader.AttachXDP(r.in, disp.Prog, "driver"); err != nil {
		t.Fatal(err)
	}

	const total = 6000
	rxBase := r.in.Stats().RxPackets
	kBase := r.dut.Stats() // warmup ping predates the program
	pool := r.dut.StartRxQueues(r.in, 8, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // dispatcher swapper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				disp.Swap(progB)
			} else {
				disp.Swap(progA)
			}
		}
	}()
	go func() { // cpumap churn: resize and delete entries under live traffic
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := cpus[i%len(cpus)]
			switch i % 3 {
			case 0:
				cm.Update(c, 256)
			case 1:
				cm.Delete(c)
			default:
				cm.Update(c, 512)
			}
		}
	}()
	go func() { // control plane: sysctls + aggregate reads during traffic
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = counters.LookupAggregate()
			_, _ = cm.Lookup(cpus[int(i)%len(cpus)])
			r.dut.SetSysctl("net.core.bpf_jit_enable", map[bool]string{true: "1", false: "0"}[i%3 != 0])
		}
	}()

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < total; i++ {
		var dst packet.Addr
		switch rng.Intn(6) {
		case 0:
			dst = packet.AddrFrom4(10, 100, 40, byte(1+rng.Intn(200))) // netfilter drop on the target CPU
		case 1:
			dst = packet.AddrFrom4(203, 0, 113, 9) // no route: slow-path drop
		default:
			dst = packet.AddrFrom4(10, 100+byte(rng.Intn(50)), 1, 7)
		}
		pool.Steer(r.frameUDP(dst, uint16(1024+rng.Intn(8000)), 2000, uint8(2+rng.Intn(60)), nil))
	}
	pool.Close()
	close(stop)
	wg.Wait()
	for _, c := range cpus {
		cm.Delete(c) // Stop drains: every ring frame is delivered before this returns
	}

	st := r.in.Stats()
	if st.RxPackets-rxBase != total {
		t.Fatalf("rx = %d, want %d", st.RxPackets-rxBase, total)
	}
	if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != total {
		t.Fatalf("conservation violated: drops(%d)+tx(%d)+redir(%d)+pass(%d) = %d != injected %d",
			st.XDPDrops, st.XDPTx, st.XDPRedirects, st.XDPPass, got, total)
	}
	ks := r.dut.Stats()
	enq := ks.CpumapEnqueued - kBase.CpumapEnqueued
	if st.XDPRedirects != enq {
		t.Fatalf("XDPRedirects (%d) != CpumapEnqueued (%d): a redirect survived without a ring insert", st.XDPRedirects, enq)
	}
	// No loss, no double delivery: every frame handed to a kthread (plus
	// every XDP_PASS punt) entered the stack exactly once and ended as
	// exactly one forward or one drop.
	stackIn := enq + st.XDPPass
	stackOut := (ks.Forwarded - kBase.Forwarded) + (ks.Dropped - kBase.Dropped)
	if stackIn != stackOut {
		t.Fatalf("stack entries %d != outcomes %d (fwd %d, drop %d): frames lost or double-delivered",
			stackIn, stackOut, ks.Forwarded-kBase.Forwarded, ks.Dropped-kBase.Dropped)
	}
}
