// Command lfptop is a live, top-style view of the LinuxFP observability
// pipeline: it builds the standard virtual-router testbed, switches the full
// instrumentation on (per-stage latency histograms, skb drop reasons, and a
// BPF ring buffer event stream fed by both an XDP trace FPM and a kfree_skb
// drop mirror), drives a mixed workload — forwarded traffic plus deliberate
// drops of several reasons — and redraws per-reason drop rates and
// per-stage latency from the consumed event stream each tick.
//
//	lfptop              # live view, redrawn every interval
//	lfptop -once        # one tick, plain output (CI smoke test)
//	lfptop -metrics     # append a Prometheus snapshot to each frame
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/flight"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/metrics"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/testbed"
)

func main() {
	once := flag.Bool("once", false, "render a single frame and exit")
	ticks := flag.Int("ticks", 10, "number of frames to render (0 = run forever)")
	interval := flag.Duration("interval", time.Second, "redraw interval")
	batch := flag.Int("wakeup-batch", 16, "ring buffer wakeup batch size")
	prom := flag.Bool("metrics", false, "append a Prometheus text snapshot to each frame")
	jsonOut := flag.Bool("json", false, "emit one JSON object per frame instead of the ANSI view")
	flag.Parse()

	if err := run(*once, *ticks, *interval, *batch, *prom, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "lfptop:", err)
		os.Exit(1)
	}
}

// eventTally aggregates the consumed ring buffer stream between redraws.
type eventTally struct {
	drops  [drop.NumReasons]uint64
	traces uint64
	spans  uint64
	other  uint64
}

func (t *eventTally) consume(rec []byte) {
	ev, ok := ebpf.DecodeEvent(rec)
	if !ok {
		return
	}
	switch ev.Type {
	case ebpf.EventDrop:
		if int(ev.Reason) < len(t.drops) {
			t.drops[ev.Reason]++
		}
	case ebpf.EventTrace:
		t.traces++
	case ebpf.EventSpan:
		t.spans++
	default:
		t.other++
	}
}

func run(once bool, ticks int, interval time.Duration, batch int, prom, jsonOut bool) error {
	d, err := testbed.Build(testbed.PlatformLinux, testbed.Scenario{})
	if err != nil {
		return err
	}
	defer d.Close()
	// Only the DUT meters: unplug the wires so src/sink stacks don't run.
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)

	// Socket-layer fast path: a local UDP service plus a spliced proxy, so
	// the sockmap counters and the sockmap stage move live.
	d.Kern.SetSysctl("net.core.sockmap", "1")
	d.Kern.RegisterSocket(packet.ProtoUDP, 5353, func(*kernel.Kernel, kernel.SocketMsg) {})
	d.Kern.RegisterProxy(
		kernel.ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7001, Peer: packet.MustAddr("10.2.0.1"), PeerPort: 7100},
		kernel.ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7000, Peer: packet.MustAddr("10.1.0.1"), PeerPort: 6100},
	)

	// The full pipeline: stage histograms, drop mirror, XDP trace stream.
	rb := ebpf.NewRingBuf("lfptop_events", 1<<16)
	rb.SetWakeupBatch(batch)
	sl := d.Kern.EnableStageLat()
	// Flight recorder + flow telemetry: sampled span chains land in the same
	// ring as the drop mirror; the flow table feeds the top-flows view.
	d.Kern.EnableFlight(flight.Config{SampleShift: 4, Ring: rb})
	defer d.Kern.DisableFlight()
	d.Kern.EnableFlowTelemetry(0)
	defer d.Kern.DisableFlowTelemetry()
	d.Kern.SetDropNotify(func(reason drop.Reason, m *sim.Meter) {
		var buf [ebpf.EventSize]byte
		ev := ebpf.Event{Type: ebpf.EventDrop, Reason: reason, Cycles: uint64(m.Total)}
		ev.MarshalInto(&buf)
		rb.Output(buf[:])
	})
	// An AF_XDP capture socket on slot 0: UDP:9999 frames bypass the stack
	// into userspace, so the live view also shows the zero-copy plane.
	xsk := ebpf.NewXSKMap("lfptop_xsks", 1)
	xsock := ebpf.NewAFXDPSocket(ebpf.AFXDPConfig{NumFrames: 512, RingSize: 256})
	xsk.Update(0, xsock)
	var appMeter sim.Meter
	app := ebpf.NewAFXDPApp(xsock, nil, &appMeter)

	loader := ebpf.NewLoader(d.Kern)
	prog, err := loader.Load(&ebpf.Program{
		Name: "lfptop_trace", Hook: ebpf.HookXDP,
		Ops: []ebpf.Op{
			fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4(),
			fpm.TraceOp(fpm.TraceConf{Ring: rb, SampleShift: 4}), // 1-in-16 sampling
			fpm.AFXDPOp(fpm.AFXDPConf{Proto: packet.ProtoUDP, DstPort: 9999, Map: xsk, Slot: 0}),
		},
		Default: ebpf.VerdictPass,
	})
	if err != nil {
		return err
	}
	if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
		return err
	}

	if once {
		ticks = 1
	}
	var tally eventTally
	var prevDrops [drop.NumReasons]uint64
	for tick := 0; ticks == 0 || tick < ticks; tick++ {
		driveTraffic(d)
		app.RunOnce(netdev.NAPIBudget) // one poll() return per doorbell

		// Drain everything the doorbell announced (plus a forced flush for
		// the partial batch, so the display never trails the traffic).
		rb.Flush()
		select {
		case <-rb.C():
		default:
		}
		rb.Poll(tally.consume)

		if jsonOut {
			if err := renderJSON(os.Stdout, d, rb, sl, app, &tally); err != nil {
				return err
			}
			if tick+1 < ticks || ticks == 0 {
				time.Sleep(interval)
			}
			continue
		}
		if !once {
			fmt.Print("\033[H\033[2J") // clear screen, home cursor
		}
		render(os.Stdout, d, rb, sl, app, &tally, &prevDrops, interval)
		renderPrograms(os.Stdout, loader)
		if prom {
			fmt.Println()
			metrics.WriteKernel(os.Stdout, d.Kern)
			metrics.WriteRingBuf(os.Stdout, rb)
			metrics.WriteXSKMap(os.Stdout, xsk)
			metrics.WritePrograms(os.Stdout, loader)
		}
		if tick+1 < ticks || ticks == 0 {
			time.Sleep(interval)
		}
	}
	d.Kern.SetDropNotify(nil)
	d.Kern.DisableStageLat()
	return nil
}

// driveTraffic pushes one tick's workload through the DUT: routed TCP flows
// that forward cleanly, plus deliberate drops — a FIB miss, an expiring TTL,
// an iptables REJECTed destination, and an undersized frame — so every major
// reason shows up live.
func driveTraffic(d *DUT) {
	src := packet.MustAddr("10.1.0.1")
	var frames [][]byte
	add := func(dst packet.Addr, ttl uint8) {
		tcp := packet.TCP{SrcPort: 4000, DstPort: 80, Seq: 1, Ack: 1, Flags: packet.TCPAck, Window: 512}
		frames = append(frames, packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: ttl, Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
			tcp.Marshal(nil, src, dst, make([]byte, 64))))
	}
	for i := 0; i < 224; i++ {
		add(packet.AddrFrom4(10, 100+byte(i%testbed.RoutedPrefixes), 0, 10), 64)
	}
	for i := 0; i < 16; i++ {
		add(packet.AddrFrom4(172, 31, 0, byte(i)), 64) // no route
		add(packet.AddrFrom4(10, 100, 0, 10), 1)       // TTL expires
	}
	for i := 0; i < 32; i++ { // UDP:9999 -> the AF_XDP capture socket
		u := packet.UDP{SrcPort: uint16(5000 + i), DstPort: 9999}
		dst := packet.AddrFrom4(10, 100+byte(i%testbed.RoutedPrefixes), 0, 20)
		frames = append(frames, packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
			u.Marshal(nil, src, dst, make([]byte, 18))))
	}
	dut := packet.MustAddr("10.1.0.254")
	for i := 0; i < 48; i++ { // local UDP service: sockmap fast path hits after first delivery
		u := packet.UDP{SrcPort: uint16(6000 + i%4), DstPort: 5353}
		frames = append(frames, packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, make([]byte, 32))))
	}
	for i := 0; i < 24; i++ { // proxied flow: splices socket-to-socket toward the sink
		u := packet.UDP{SrcPort: 6100, DstPort: 7000}
		frames = append(frames, packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, make([]byte, 32))))
	}
	for i := 0; i < 8; i++ {
		frames = append(frames, []byte{0xde, 0xad}) // runt: L2 header error
	}
	var m sim.Meter
	for i := 0; i < len(frames); i += netdev.NAPIBudget {
		end := i + netdev.NAPIBudget
		if end > len(frames) {
			end = len(frames)
		}
		d.In.ReceiveBatch(frames[i:end], 0, &m)
	}
}

// DUT aliases the testbed type for the local helpers.
type DUT = testbed.DUT

// render draws one frame: totals, per-reason drop rates (from the consumed
// event stream, cross-checked against the kernel's per-reason counters), and
// the per-stage latency table.
func render(w *os.File, d *DUT, rb *ebpf.RingBuf, sl *kernel.StageLat, app *ebpf.AFXDPApp, tally *eventTally, prev *[drop.NumReasons]uint64, interval time.Duration) {
	st := d.Kern.Stats()
	byReason := d.Kern.DropReasons()
	fmt.Fprintf(w, "lfptop — %s  forwarded=%d delivered=%d dropped=%d\n",
		d.Kern.Name, st.Forwarded, st.Delivered, st.Dropped)
	fmt.Fprintf(w, "ring %s: produced=%d consumed=%d dropped=%d (wakeup batching on)\n",
		rb.Name(), rb.Produced(), rb.Consumed(), rb.Dropped())
	fmt.Fprintf(w, "steering: rps_steered=%d rps_ipis=%d backlog_drops=%d rfs_hits=%d rfs_migrations=%d\n",
		st.RPSSteered, st.RPSIPIs, st.RPSBacklogDrops, st.RFSHits, st.RFSMigrations)
	fmt.Fprintf(w, "sockmap:  hits=%d misses=%d splices=%d l7=%d\n\n",
		st.SockmapHits, st.SockmapMisses, st.SockmapSplices, st.L7Verdicts)

	fmt.Fprintf(w, "%-18s %10s %10s %12s\n", "drop reason", "total", "events", "rate/tick")
	perTick := float64(interval) / float64(time.Second)
	if perTick <= 0 {
		perTick = 1
	}
	for _, reason := range drop.Reasons() {
		if byReason[reason] == 0 && tally.drops[reason] == 0 {
			continue
		}
		delta := byReason[reason] - prev[reason]
		fmt.Fprintf(w, "%-18s %10d %10d %12.0f\n",
			reason, byReason[reason], tally.drops[reason], float64(delta)/perTick)
	}
	prev2 := byReason
	*prev = prev2
	fmt.Fprintf(w, "%-18s %10d %10d\n", "trace (sampled)", tally.traces, tally.traces)
	if fr := d.Kern.Flight(); fr != nil {
		t := fr.Terminals()
		fmt.Fprintf(w, "\nflight: sampled=%d drop=%d tx=%d redirect=%d pass=%d lost=%d live=%d (span events=%d)\n",
			t.Sampled, t.Drop, t.Tx, t.Redirect, t.Pass, t.Lost, fr.Live(), tally.spans)
	}
	if ft := d.Kern.FlowTelemetry(); ft != nil {
		fmt.Fprintf(w, "flows: tracked=%d evictions=%d", ft.Tracked(), ft.Evictions())
		for i, f := range ft.Top(3) {
			if i == 0 {
				fmt.Fprintf(w, "  top:")
			}
			fmt.Fprintf(w, " [%s %dpkt %.0f%%fast]", f.Key, f.Pkts, f.FastPct())
		}
		fmt.Fprintln(w)
	}

	ss := app.Sock().Stats()
	fill, rx, tx, comp := app.Sock().RingOccupancy()
	fmt.Fprintf(w, "\nxsk slot0 (wakeup): delivered=%d drained=%d rx_full=%d fill_empty=%d wakeups=%d polls=%d\n",
		ss.RxDelivered, app.Received(), ss.RxFull, ss.FillEmpty, ss.Wakeups, app.Polls())
	fmt.Fprintf(w, "xsk rings: fill=%d rx=%d tx=%d completion=%d\n", fill, rx, tx, comp)

	fmt.Fprintf(w, "\n%-11s %10s %10s %10s %10s %10s\n", "stage", "count", "mean cy", "p50", "p99", "p999")
	for _, s := range sl.Report() {
		fmt.Fprintf(w, "%-11s %10d %10.1f %10.1f %10.1f %10.1f\n",
			s.Stage, s.Count, s.MeanCy, s.P50, s.P99, s.P999)
	}
	if strings.TrimSpace(d.Platform) != "" {
		fmt.Fprintf(w, "\nplatform=%s clock=%.1fGHz\n", d.Platform, sim.ClockHz/1e9)
	}
}

// jsonFrame is one tick of the live view in machine-readable form — the same
// numbers the ANSI view draws, for scripts that poll `lfptop -json -once`.
type jsonFrame struct {
	Kernel    string                `json:"kernel"`
	Stats     kernel.Stats          `json:"stats"`
	Drops     map[string]uint64     `json:"drops_by_reason"`
	Events    map[string]uint64     `json:"ring_events"`
	Ring      map[string]uint64     `json:"ring"`
	XSK       map[string]uint64     `json:"xsk_slot0"`
	Stages    []kernel.StageSummary `json:"stages"`
	Terminals any                   `json:"trace_terminals,omitempty"`
	Flows     any                   `json:"top_flows,omitempty"`
}

// renderJSON emits one frame as a single JSON object (one line per tick when
// streaming, indented — still valid JSONL consumers can strip).
func renderJSON(w *os.File, d *DUT, rb *ebpf.RingBuf, sl *kernel.StageLat, app *ebpf.AFXDPApp, tally *eventTally) error {
	byReason := d.Kern.DropReasons()
	drops := map[string]uint64{}
	for _, r := range drop.Reasons() {
		if byReason[r] != 0 {
			drops[r.String()] = byReason[r]
		}
	}
	ss := app.Sock().Stats()
	f := jsonFrame{
		Kernel: d.Kern.Name,
		Stats:  d.Kern.Stats(),
		Drops:  drops,
		Events: map[string]uint64{"traces": tally.traces, "spans": tally.spans, "other": tally.other},
		Ring: map[string]uint64{
			"produced": rb.Produced(), "consumed": rb.Consumed(), "dropped": rb.Dropped(),
		},
		XSK: map[string]uint64{
			"delivered": ss.RxDelivered, "drained": app.Received(),
			"rx_full": ss.RxFull, "fill_empty": ss.FillEmpty,
			"wakeups": ss.Wakeups, "polls": app.Polls(),
		},
		Stages: sl.Report(),
	}
	if fr := d.Kern.Flight(); fr != nil {
		f.Terminals = fr.Terminals()
	}
	if ft := d.Kern.FlowTelemetry(); ft != nil {
		f.Flows = ft.Top(metrics.DefaultFlowSeries)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// renderPrograms draws the loaded-program table: the generic fused body next
// to the Load-time specialized one, with the static-cost shrinkage the
// specializer bought. The loader line tracks re-load churn.
func renderPrograms(w *os.File, l *ebpf.Loader) {
	progs := l.Programs()
	if len(progs) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-16s %10s %10s %10s %10s %8s\n",
		"program", "gen insns", "spec insns", "gen cy", "spec cy", "shrink")
	for _, p := range progs {
		genCy, specCy := p.JITCost(), p.SpecCost()
		shrink := 0.0
		if genCy > 0 {
			shrink = 100 * (1 - float64(specCy)/float64(genCy))
		}
		fmt.Fprintf(w, "%-16s %10d %10d %10.0f %10.0f %7.1f%%\n",
			p.Name, p.JITInsns(), p.SpecInsns(), float64(genCy), float64(specCy), shrink)
	}
	loads, last, total := l.LoadStats()
	fmt.Fprintf(w, "loader: loads=%d last=%s total=%s\n", loads, last, total)
}
