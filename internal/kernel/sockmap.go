// Socket-layer fast path: first-class socket objects, a lock-free
// established-flow table, and socket-to-socket splicing — the model of
// BPF_MAP_TYPE_SOCKMAP's kernel side.
//
// The listening-socket table is copy-on-write (one atomic load per demux).
// On top of it sits a per-CPU direct-mapped established-flow table populated
// at first successful delivery: a miss walks the full stack and memoizes the
// (tuple -> socket) decision; a hit charges CostSockmapLookup and jumps the
// frame straight from netif_receive to the socket, skipping ip_rcv, the
// PREROUTING/INPUT netfilter traversal and the route lookup. Coherence
// follows the flow fast-cache rule: every entry records the combined
// generation of everything the skipped walk would have consulted (config,
// FIB, netfilter, socket table), and one unregister or rule change kills
// every memoized decision at once — stale entries fall back to the full walk.
//
// Splicing closes the loop for proxy-style flows: a socket can carry an
// egress binding (where its writes go) and a splice partner (where its
// ingress forwards). With the fast path on, a proxied segment never crosses
// into userspace: table hit -> verdict -> partner's egress, charged as
// lookup + redirect instead of poll + sendmsg + two copies. The egress send
// is the same SendUDP/SendTCPSegment call the userspace relay handler makes,
// so the wire output is byte-identical to the full-stack path.
package kernel

import (
	"encoding/binary"
	"sync/atomic"

	"linuxfp/internal/drop"
	"linuxfp/internal/flight"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// --- socket objects ----------------------------------------------------------

// Socket is one bound (proto, port) endpoint — the model's struct sock. The
// handler is immutable after creation; the splice/verdict attachments and the
// closed flag are atomics because the demux fast path reads them lock-free.
type Socket struct {
	proto   uint8
	port    uint16
	handler SocketHandler

	closed atomic.Bool

	// egress is where writes on this socket exit (a connected socket's
	// destination); spliceTo is the sockmap splice partner: ingress payloads
	// forward out the partner's egress without visiting userspace.
	egress   atomic.Pointer[egressBind]
	spliceTo atomic.Pointer[Socket]

	// skskb is the attached sk_skb stream verdict program (via the ebpf
	// package's adapter); nil when no program is attached.
	skskb atomic.Pointer[SKSKBHandler]
}

// Proto returns the socket's bound protocol.
func (s *Socket) Proto() uint8 { return s.proto }

// Port returns the socket's bound port.
func (s *Socket) Port() uint16 { return s.port }

// Closed reports whether the socket has been unregistered (or rebound over).
func (s *Socket) Closed() bool { return s.closed.Load() }

// SetSKSKB attaches an sk_skb stream verdict handler to the socket (nil
// detaches). The sockmap's program attachments install through here.
func (s *Socket) SetSKSKB(h SKSKBHandler) {
	if h == nil {
		s.skskb.Store(nil)
		return
	}
	s.skskb.Store(&h)
}

// SetSplice sets (or clears, nil) the socket's kernel-native splice partner.
func (s *Socket) SetSplice(t *Socket) { s.spliceTo.Store(t) }

// egressBind describes where a socket's writes exit: the remote peer plus the
// source port stamped on egress segments.
type egressBind struct {
	proto            uint8
	dst              packet.Addr
	srcPort, dstPort uint16
}

// --- sk_skb verdict programs -------------------------------------------------

// SKSKBAction is the kernel-visible verdict of an sk_skb stream verdict
// program: SK_PASS, SK_DROP, or SK_REDIRECT.
type SKSKBAction uint8

// sk_skb verdicts.
const (
	SKSKBPass     SKSKBAction = iota // deliver to the owning socket (userspace)
	SKSKBDrop                        // drop the segment
	SKSKBRedirect                    // splice to Target's egress in-kernel
)

// SKSKBResult carries a verdict program's decision. Reason tags SK_DROP
// verdicts (NotSpecified maps to socket_filter, the kernel's reason for
// filter-dropped skbs).
type SKSKBResult struct {
	Action SKSKBAction
	Target *Socket
	Reason drop.Reason
}

// SKSKBHandler is an attached sk_skb stream verdict program. Implemented by
// the ebpf package's adapter (the kernel package defines only the interface,
// mirroring how TCHandler and cpumap programs avoid the import cycle).
type SKSKBHandler interface {
	HandleSKSKB(msg *SocketMsg, m *sim.Meter) SKSKBResult
}

// --- listening-socket table (copy-on-write) ----------------------------------

// sockTable is the read-side snapshot of the listening sockets, replaced
// whole on every bind/unbind so per-packet demux is one atomic load.
type sockTable struct {
	m map[socketKey]*Socket
}

// RegisterSocket binds a handler to (proto, port) — the model's listening
// socket — and returns the socket object (callers that only need delivery
// can ignore it). Rebinding an in-use port closes the previous socket.
func (k *Kernel) RegisterSocket(proto uint8, port uint16, h SocketHandler) *Socket {
	s := &Socket{proto: proto, port: port, handler: h}
	key := socketKey{proto, port}
	k.mu.Lock()
	old := k.socks.Load()
	nt := &sockTable{m: make(map[socketKey]*Socket, len(old.m)+1)}
	for kk, v := range old.m {
		nt.m[kk] = v
	}
	if prev, ok := nt.m[key]; ok {
		prev.closed.Store(true)
		k.sockGen.Add(1)
	}
	nt.m[key] = s
	k.socks.Store(nt)
	k.mu.Unlock()
	return s
}

// UnregisterSocket removes a binding. The socket is marked closed and the
// socket generation bumps, so every memoized delivery decision (established-
// flow entries, RFS placements, sockmap slots) goes stale at once.
func (k *Kernel) UnregisterSocket(proto uint8, port uint16) {
	key := socketKey{proto, port}
	k.mu.Lock()
	old := k.socks.Load()
	s, ok := old.m[key]
	if !ok {
		k.mu.Unlock()
		return
	}
	nt := &sockTable{m: make(map[socketKey]*Socket, len(old.m))}
	for kk, v := range old.m {
		if kk != key {
			nt.m[kk] = v
		}
	}
	k.socks.Store(nt)
	s.closed.Store(true)
	k.sockGen.Add(1)
	k.mu.Unlock()
}

// socketFor is the demux read: one atomic load plus a map probe.
func (k *Kernel) socketFor(proto uint8, port uint16) (*Socket, bool) {
	s, ok := k.socks.Load().m[socketKey{proto, port}]
	return s, ok
}

// LookupSocket is the exported socketFor (sockmap update paths resolve
// members through it).
func (k *Kernel) LookupSocket(proto uint8, port uint16) (*Socket, bool) {
	return k.socketFor(proto, port)
}

// SockGen returns the socket-layer generation counter. External socket maps
// stamp their slots with it to stay coherent with unregistration.
func (k *Kernel) SockGen() uint64 { return k.sockGen.Load() }

// skGen is the combined generation of everything a memoized local-delivery
// decision skips: sysctls/links (cfgGen, which also covers IPVS services),
// local routes (FIB), netfilter chains, and the socket table itself. Each
// term is monotonic, so equal sums imply nothing changed.
func (k *Kernel) skGen() uint64 {
	return k.cfgGen.Load() + k.FIB.Gen() + k.NF.Gen() + k.sockGen.Load()
}

// SockmapEnabled reports whether the socket-layer fast path is on
// (net.core.sockmap sysctl).
func (k *Kernel) SockmapEnabled() bool { return k.sockmapOn.Load() }

// --- established-flow table --------------------------------------------------

// sockCacheSize is entries per CPU shard; direct-mapped, power of two.
// Sized like RFS's sock flow table (rps_sock_flow_entries, commonly 32768
// system-wide) rather than the 4096-entry forwarding flowcache: local
// delivery concentrates on established flows, so the table must hold the
// hot-flow working set to keep collision evictions off the steady state.
const sockCacheSize = 16384

const sockCacheMask = sockCacheSize - 1

// sockEntry memoizes one local-delivery decision (tuple -> socket). The seq
// field is a seqlock: odd while a writer is mid-update.
type sockEntry struct {
	seq   atomic.Uint32
	gen   uint64
	hash  uint32
	tuple packet.FlowTuple
	sock  *Socket
}

// sockShard is one CPU's established-flow table, allocated lazily on the
// first fill.
type sockShard struct {
	entries [sockCacheSize]sockEntry
}

// sockFastPath attempts a memoized local delivery. It returns true when the
// frame was fully consumed (delivered, spliced, or dropped with a reason).
// Validation on every hit: seqlock stability, the tuple (hash collisions),
// and the combined generation; the closed flag catches the unregister that
// has marked the socket but not yet bumped the generation.
func (k *Kernel) sockFastPath(dev *netdev.Device, frame []byte, m *sim.Meter, sc *rxScratch) bool {
	t, l3, ok := packet.ReadFlowTuple(frame)
	if !ok || t.Frag || (t.Proto != packet.ProtoTCP && t.Proto != packet.ProtoUDP) {
		return false
	}
	c := k.ctr(m)
	sh := k.skflows[shardIdx(m)].Load()
	if sh == nil {
		c.sockmapMisses.Add(1)
		return false
	}
	h := flowHash(t)
	e := &sh.entries[h&sockCacheMask]
	seq := e.seq.Load()
	if seq&1 != 0 {
		c.sockmapMisses.Add(1)
		return false
	}
	sock := e.sock
	if e.hash != h || e.tuple != t || sock == nil || e.gen != k.skGen() {
		c.sockmapMisses.Add(1)
		return false
	}
	if e.seq.Load() != seq {
		c.sockmapMisses.Add(1)
		return false
	}

	// Parse the L4 payload exactly as the slow path would, so the delivered
	// bytes are identical. A frame the parsers reject falls back to the full
	// walk (which will also reject it, with its usual accounting).
	b := frame[l3:]
	ihl := int(b[0]&0x0f) * 4
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	if totalLen > len(b) || ihl+4 > totalLen {
		c.sockmapMisses.Add(1)
		return false
	}
	l4 := b[ihl:totalLen]
	var body []byte
	var sport, dport uint16
	if t.Proto == packet.ProtoUDP {
		u, pl, err := packet.UnmarshalUDP(l4, t.Src, t.Dst)
		if err != nil {
			c.sockmapMisses.Add(1)
			return false
		}
		body, sport, dport = pl, u.SrcPort, u.DstPort
	} else {
		tc, pl, err := packet.UnmarshalTCP(l4, t.Src, t.Dst)
		if err != nil {
			c.sockmapMisses.Add(1)
			return false
		}
		body, sport, dport = pl, tc.SrcPort, tc.DstPort
	}

	sl, st := k.stageStart(m)
	m.Charge(sim.CostSockmapLookup)
	c.sockmapHits.Add(1)
	k.flightSpan(m, flight.StageSockmap, flight.VerdictNone)
	if ft := k.flowTab.Load(); ft != nil {
		ft.Observe(t, len(frame), true, m)
	}
	if sock.closed.Load() {
		// Unregister marked the socket between our generation check and now:
		// the memoized socket is gone. sk_no_socket, consumed.
		k.countDropReason(m, drop.ReasonSkNoSocket)
		if sl != nil {
			sl.Observe(StageSockmap, m, st)
		}
		return true
	}
	k.rfsRecordTuple(t, m)
	m.Charge(sim.CostSocketQueue)
	msg := &sc.smsg
	*msg = SocketMsg{
		Proto: t.Proto, Src: t.Src, Dst: t.Dst,
		SrcPort: sport, DstPort: dport, Payload: body, InIf: dev.Index, Meter: m,
	}
	k.finishDeliver(sock, msg, m)
	if sl != nil {
		sl.Observe(StageSockmap, m, st)
	}
	return true
}

// sockInstall memoizes the delivery decision the slow path just took: tuple t
// demuxed to sock. gen was captured in ip_rcv before any lookup ran, so a
// concurrent mutation forces a conservative miss. The caller has already
// verified eligibility (sockInstallEligible).
func (k *Kernel) sockInstall(t packet.FlowTuple, sock *Socket, gen uint64, m *sim.Meter) {
	idx := shardIdx(m)
	sh := k.skflows[idx].Load()
	if sh == nil {
		sh = new(sockShard)
		if !k.skflows[idx].CompareAndSwap(nil, sh) {
			sh = k.skflows[idx].Load()
		}
	}
	m.Charge(sim.CostSockmapUpdate)
	h := flowHash(t)
	e := &sh.entries[h&sockCacheMask]
	e.seq.Add(1) // odd: writer in progress
	e.gen = gen
	e.hash = h
	e.tuple = t
	e.sock = sock
	e.seq.Add(1) // even: consistent
}

// sockInstallEligible reports whether local deliveries may currently be
// memoized: nothing on the receive path may filter, track, or rewrite,
// because a hit skips all of it. Any later change bumps a generation folded
// into skGen and evicts.
func (k *Kernel) sockInstallEligible() bool {
	if k.NF.RuleCount("PREROUTING") > 0 || k.NF.RuleCount("INPUT") > 0 || k.NF.CTRequired() {
		return false
	}
	return !k.IPVSActive()
}

// --- socket-layer delivery pipeline ------------------------------------------

// finishDeliver runs the delivery pipeline shared by the full stack walk and
// the sockmap fast path: sk_skb verdict program (if attached), kernel-native
// splice binding, then the socket's handler. Exactly one of delivered /
// dropped is counted per call, so conservation holds from either entry.
func (k *Kernel) finishDeliver(sock *Socket, msg *SocketMsg, m *sim.Meter) {
	if hp := sock.skskb.Load(); hp != nil {
		k.ctr(m).l7Verdicts.Add(1)
		res := (*hp).HandleSKSKB(msg, m)
		switch res.Action {
		case SKSKBDrop:
			r := res.Reason
			if r == drop.ReasonNotSpecified {
				r = drop.ReasonSocketFilter
			}
			k.countDropReason(m, r)
			return
		case SKSKBRedirect:
			k.spliceForward(res.Target, msg, m)
			return
		}
		// SKSKBPass falls through to the owning socket (userspace).
	} else if k.sockmapOn.Load() {
		if t := sock.spliceTo.Load(); t != nil {
			m.Charge(sim.CostSockmapRedirect)
			k.spliceForward(t, msg, m)
			return
		}
	}
	k.countDelivered(m)
	if sock.handler != nil {
		sock.handler(k, *msg)
	}
}

// spliceForward writes msg's payload out the target socket's egress binding —
// the model of SK_REDIRECT / native sockmap splicing: the bytes never cross
// into userspace. An empty target is sk_no_socket; a closed or unbound one is
// sockmap_stale (present but no longer usable).
func (k *Kernel) spliceForward(t *Socket, msg *SocketMsg, m *sim.Meter) {
	if t == nil {
		k.countDropReason(m, drop.ReasonSkNoSocket)
		return
	}
	eb := t.egress.Load()
	if t.closed.Load() || eb == nil {
		k.countDropReason(m, drop.ReasonSockmapStale)
		return
	}
	k.countDelivered(m)
	k.ctr(m).sockmapSplices.Add(1)
	// The spliced bytes leave through a freshly built frame; the ingress
	// chain follows them out via the TerminalTx current-chain fallback.
	k.flightSpan(m, flight.StageSplice, flight.VerdictNone)
	k.egressSend(eb, msg.Payload, m)
}

// egressSend emits payload out an egress binding. This is the single send
// call both the splice fast path and the userspace relay handler end in —
// the byte-identity argument for the two paths.
func (k *Kernel) egressSend(eb *egressBind, payload []byte, m *sim.Meter) bool {
	if eb.proto == packet.ProtoUDP {
		return k.SendUDP(0, eb.dst, eb.srcPort, eb.dstPort, payload, m)
	}
	return k.SendTCPSegment(0, eb.dst, eb.srcPort, eb.dstPort, packet.TCPPsh|packet.TCPAck, payload, m)
}

// --- proxy registration ------------------------------------------------------

// ProxyEndpoint describes one leg of a proxied connection: the local port the
// proxy binds on that side and the remote peer the leg talks to.
type ProxyEndpoint struct {
	Proto     uint8
	LocalPort uint16
	Peer      packet.Addr
	PeerPort  uint16
}

// RegisterProxy wires a proxy-style flow pair: the downstream socket accepts
// client traffic and forwards it toward the upstream peer; the upstream
// socket accepts server responses and forwards them back to the client. With
// net.core.sockmap off, every segment takes the full stack plus a modeled
// userspace relay (poll + sendmsg + two copies); with it on, established
// segments splice socket-to-socket in the kernel. Both paths end in the same
// egress send, so the wire bytes are identical.
//
// Returns (upstream, downstream) — the sockets, e.g. for sockmap membership.
func (k *Kernel) RegisterProxy(up, down ProxyEndpoint) (*Socket, *Socket) {
	upEg := &egressBind{proto: up.Proto, dst: up.Peer, srcPort: up.LocalPort, dstPort: up.PeerPort}
	downEg := &egressBind{proto: down.Proto, dst: down.Peer, srcPort: down.LocalPort, dstPort: down.PeerPort}
	downSock := k.RegisterSocket(down.Proto, down.LocalPort, relayHandler(upEg))
	upSock := k.RegisterSocket(up.Proto, up.LocalPort, relayHandler(downEg))
	upSock.egress.Store(upEg)
	downSock.egress.Store(downEg)
	upSock.spliceTo.Store(downSock)
	downSock.spliceTo.Store(upSock)
	return upSock, downSock
}

// relayHandler is the userspace half of the proxy: wake from poll, read the
// segment, write it out the opposite leg — two syscalls and two crossings of
// the user/kernel copy boundary, then the same egress send the splice path
// uses.
func relayHandler(out *egressBind) SocketHandler {
	return func(k *Kernel, msg SocketMsg) {
		msg.Meter.Charge(sim.CostSyscallPoll + sim.CostSyscallSendto)
		msg.Meter.ChargeBytes(2 * len(msg.Payload))
		k.egressSend(out, msg.Payload, msg.Meter)
	}
}
