package kernel

import (
	"testing"

	"linuxfp/internal/bridge"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// TestSTPBreaksPhysicalLoop wires two switches together with TWO parallel
// links — a topology that would melt down without spanning tree — and
// verifies the protocol converges, blocks exactly one redundant port, and
// that traffic then crosses the fabric exactly once.
func TestSTPBreaksPhysicalLoop(t *testing.T) {
	// Shared virtual clock.
	var now sim.Time
	clock := func() sim.Time { return now }

	swA, swB := New("swA"), New("swB")
	swA.SetClock(clock)
	swB.SetClock(clock)

	mkSwitch := func(k *Kernel) (ports []*netdev.Device) {
		k.CreateBridge("br0")
		k.SetLinkUp("br0", true)
		k.SetBridgeSTP("br0", true)
		for _, name := range []string{"trunk0", "trunk1", "edge0"} {
			d := k.CreateDevice(name, netdev.Physical)
			d.SetUp(true)
			if err := k.AddBridgePort("br0", name); err != nil {
				t.Fatal(err)
			}
			ports = append(ports, d)
		}
		return ports
	}
	pa := mkSwitch(swA)
	pb := mkSwitch(swB)
	// The loop: two parallel trunks.
	netdev.Connect(pa[0], pb[0])
	netdev.Connect(pa[1], pb[1])

	// Edge hosts.
	hostA, hostB := New("hA"), New("hB")
	ha := hostA.CreateDevice("eth0", netdev.Veth)
	hb := hostB.CreateDevice("eth0", netdev.Veth)
	ha.SetUp(true)
	hb.SetUp(true)
	hostA.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	hostB.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24"))
	netdev.Connect(ha, pa[2])
	netdev.Connect(hb, pb[2])

	// Run the hello protocol until well past two forward delays.
	var m sim.Meter
	for i := 0; i < 20; i++ {
		now = now.Add(sim.Duration(bridge.HelloTime))
		swA.STPHello(&m)
		swB.STPHello(&m)
	}
	now = now.Add(sim.Duration(2*bridge.ForwardDelay) + sim.Second)
	swA.STPHello(&m)
	swB.STPHello(&m)

	if swA.Stats().STPTx == 0 {
		t.Fatal("no BPDUs emitted")
	}

	brA, _ := swA.BridgeByName("br0")
	brB, _ := swB.BridgeByName("br0")
	// Exactly one bridge is root.
	if brA.IsRoot() == brB.IsRoot() {
		t.Fatalf("root election failed: A=%v B=%v", brA.IsRoot(), brB.IsRoot())
	}
	// Exactly one trunk port in the whole fabric is blocking.
	blocking := 0
	forwardingTrunks := 0
	for _, pr := range []struct {
		br   *bridge.Bridge
		devs []*netdev.Device
	}{{brA, pa[:2]}, {brB, pb[:2]}} {
		for _, d := range pr.devs {
			p, ok := pr.br.Port(d.Index)
			if !ok {
				t.Fatal("port missing")
			}
			switch p.State {
			case bridge.Blocking:
				blocking++
			case bridge.Forwarding:
				forwardingTrunks++
			default:
				t.Fatalf("trunk %s still in %v after convergence", d.Name, p.State)
			}
		}
	}
	if blocking != 1 {
		t.Fatalf("%d blocking trunk ports, want exactly 1", blocking)
	}
	if forwardingTrunks != 3 {
		t.Fatalf("%d forwarding trunk ports, want 3", forwardingTrunks)
	}

	// A broadcast from hostA must reach hostB exactly once: the loop is
	// broken (no storm, no duplicate).
	rxBefore := hb.Stats().RxPackets
	bcast := packet.BuildEthernet(packet.Ethernet{
		Dst: packet.BroadcastHW, Src: ha.MAC, EtherType: packet.EtherTypeIPv4}, make([]byte, 30))
	ha.Transmit(bcast, &m)
	got := hb.Stats().RxPackets - rxBefore
	if got != 1 {
		t.Fatalf("broadcast arrived %d times, want exactly 1", got)
	}

	// And plain connectivity works across the fabric (ARP + ping).
	if !hostA.Ping(packet.MustAddr("10.0.0.2"), 1, 1, nil, &m) {
		t.Fatal("ping send failed")
	}
	if hostB.Stats().ICMPTx != 1 {
		t.Fatal("ping unanswered across the STP fabric")
	}
}

// TestSTPPortsNotForwardingBeforeConvergence: during listening/learning the
// fabric must not forward user traffic (that is what prevents transient
// loops).
func TestSTPPortsNotForwardingBeforeConvergence(t *testing.T) {
	k := New("sw")
	k.CreateBridge("br0")
	k.SetLinkUp("br0", true)
	k.SetBridgeSTP("br0", true)
	p0 := k.CreateDevice("p0", netdev.Physical)
	p1 := k.CreateDevice("p1", netdev.Physical)
	p0.SetUp(true)
	p1.SetUp(true)
	k.AddBridgePort("br0", "p0")
	k.AddBridgePort("br0", "p1")

	peer := New("peer")
	pd := peer.CreateDevice("eth0", netdev.Physical)
	pd.SetUp(true)
	netdev.Connect(pd, p0)
	sink := New("sink")
	sd := sink.CreateDevice("eth0", netdev.Physical)
	sd.SetUp(true)
	netdev.Connect(sd, p1)

	var m sim.Meter
	k.STPHello(&m) // roles computed; ports listening, not forwarding

	// Count only user frames at the sink: BPDUs legitimately flow while
	// the port is still listening.
	userFrames := 0
	sd.Tap = func(f []byte) {
		if packet.EthDst(f) != bridge.STPDestMAC {
			userFrames++
		}
	}
	frame := packet.BuildEthernet(packet.Ethernet{
		Dst: packet.BroadcastHW, Src: pd.MAC, EtherType: packet.EtherTypeIPv4}, make([]byte, 30))
	pd.Transmit(frame, &m)
	if userFrames != 0 {
		t.Fatal("listening port forwarded user traffic")
	}
}
