package testbed

import "testing"

// TestAFXDPSweepAcceptance runs a reduced grid and checks the properties
// the full benchmark is expected to exhibit: conservation at every point,
// busy-poll beating the in-kernel XDP fast path on per-packet cycles once
// batching amortizes the ring overheads (batch >= 32), busy-poll within
// 20% of the VPP full-bypass single-core rate, and the syscall tax making
// wakeup mode strictly worse than busy-poll at small batches.
func TestAFXDPSweepAcceptance(t *testing.T) {
	r, err := AFXDPSweep([]int{1, 32, 64}, []int{32}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if r.VPPCyclesPerPkt <= 0 || r.VPPPPS <= 0 {
		t.Fatalf("missing VPP reference: %+v", r)
	}

	point := func(plane string, batch int) AFXDPPoint {
		for _, p := range r.Points {
			if p.Plane == plane && p.Batch == batch {
				return p
			}
		}
		t.Fatalf("no point for %s/batch=%d", plane, batch)
		return AFXDPPoint{}
	}

	for _, p := range r.Points {
		if !p.ConservationOK {
			t.Errorf("%s batch=%d flows=%d: conservation violated", p.Plane, p.Batch, p.Flows)
		}
		if p.CyclesPerPkt <= 0 {
			t.Errorf("%s batch=%d: no cycles measured", p.Plane, p.Batch)
		}
		if p.Drops != 0 {
			t.Errorf("%s batch=%d: %d drops in an undersubscribed sweep", p.Plane, p.Batch, p.Drops)
		}
	}

	for _, batch := range []int{1, 32, 64} {
		slow := point("slowpath", batch)
		xdp := point("xdp", batch)
		if xdp.CyclesPerPkt >= slow.CyclesPerPkt {
			t.Errorf("batch=%d: XDP (%.1f c/p) not faster than slow path (%.1f c/p)",
				batch, xdp.CyclesPerPkt, slow.CyclesPerPkt)
		}
	}

	// Busy-poll beats in-kernel XDP once batched: the app core does the
	// routing work, leaving the RX core only parse+enqueue.
	for _, batch := range []int{32, 64} {
		xdp := point("xdp", batch)
		bp := point("afxdp-busypoll", batch)
		if bp.CyclesPerPkt >= xdp.CyclesPerPkt {
			t.Errorf("batch=%d: busy-poll (%.1f c/p) not faster than in-kernel XDP (%.1f c/p)",
				batch, bp.CyclesPerPkt, xdp.CyclesPerPkt)
		}
	}

	// ...and lands within 20% of VPP's dedicated-core rate.
	bp := point("afxdp-busypoll", 64)
	if bp.PPS < 0.8*r.VPPPPS {
		t.Errorf("busy-poll batch=64: %.2f Mpps < 80%% of VPP %.2f Mpps", bp.PPS/1e6, r.VPPPPS/1e6)
	}

	// The syscall tax: wakeup mode pays poll()+sendto() per iteration, so
	// at batch=1 it must be strictly slower than busy-poll, and it must
	// actually have paid syscalls while busy-poll paid none.
	wk1, bp1 := point("afxdp-wakeup", 1), point("afxdp-busypoll", 1)
	if wk1.CyclesPerPkt <= bp1.CyclesPerPkt {
		t.Errorf("batch=1: wakeup (%.1f c/p) should pay syscalls over busy-poll (%.1f c/p)",
			wk1.CyclesPerPkt, bp1.CyclesPerPkt)
	}
	if wk1.Syscalls == 0 || wk1.Wakeups == 0 {
		t.Errorf("batch=1 wakeup: expected syscalls and doorbells, got %d/%d", wk1.Syscalls, wk1.Wakeups)
	}
	if bp1.Syscalls != 0 || bp1.Wakeups != 0 {
		t.Errorf("batch=1 busy-poll: unexpected syscalls %d / wakeups %d", bp1.Syscalls, bp1.Wakeups)
	}
}
