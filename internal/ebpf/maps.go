package ebpf

import (
	"sync"
	"sync/atomic"
)

// ProgArray is the BPF_MAP_TYPE_PROG_ARRAY: tail-call targets indexed by
// slot. Updating a slot is a single atomic pointer store — the mechanism
// LinuxFP uses to swap an entire data path without dropping packets
// (paper Fig. 4).
type ProgArray struct {
	name  string
	slots []atomic.Pointer[Program]
}

// NewProgArray allocates a program array with n slots.
func NewProgArray(name string, n int) *ProgArray {
	return &ProgArray{name: name, slots: make([]atomic.Pointer[Program], n)}
}

// Name returns the map name.
func (pa *ProgArray) Name() string { return pa.name }

// Len reports the slot count.
func (pa *ProgArray) Len() int { return len(pa.slots) }

// Update installs a program in a slot (nil clears it). It reports whether
// the slot index was valid.
func (pa *ProgArray) Update(slot int, p *Program) bool {
	if slot < 0 || slot >= len(pa.slots) {
		return false
	}
	pa.slots[slot].Store(p)
	return true
}

// Lookup fetches the program in a slot.
func (pa *ProgArray) Lookup(slot int) *Program {
	if slot < 0 || slot >= len(pa.slots) {
		return nil
	}
	return pa.slots[slot].Load()
}

// HashMap is a BPF_MAP_TYPE_HASH with 64-bit keys and values — enough for
// the counters and small lookup tables FPMs keep (remember: LinuxFP
// deliberately does NOT keep configuration state in maps; that is the
// Polycube baseline's approach).
type HashMap struct {
	name string
	max  int

	mu sync.RWMutex
	m  map[uint64]uint64
}

// NewHashMap allocates a hash map with a max-entries bound.
func NewHashMap(name string, maxEntries int) *HashMap {
	return &HashMap{name: name, max: maxEntries, m: make(map[uint64]uint64)}
}

// Name returns the map name.
func (h *HashMap) Name() string { return h.name }

// Lookup reads a key.
func (h *HashMap) Lookup(k uint64) (uint64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.m[k]
	return v, ok
}

// Update writes a key, failing when the map is full (E2BIG in the kernel).
func (h *HashMap) Update(k, v uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.m[k]; !exists && len(h.m) >= h.max {
		return false
	}
	h.m[k] = v
	return true
}

// Delete removes a key.
func (h *HashMap) Delete(k uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.m[k]
	delete(h.m, k)
	return ok
}

// Add atomically increments a key (BPF_XADD-style), creating it at delta.
func (h *HashMap) Add(k, delta uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.m[k]; !exists && len(h.m) >= h.max {
		return
	}
	h.m[k] += delta
}

// Len reports the number of entries.
func (h *HashMap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY of 64-bit values (per-CPU flavour is
// not modeled; a single atomic slot array captures the semantics).
type ArrayMap struct {
	name  string
	slots []atomic.Uint64
}

// NewArrayMap allocates an array map.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, slots: make([]atomic.Uint64, n)}
}

// Name returns the map name.
func (a *ArrayMap) Name() string { return a.name }

// Len reports the slot count.
func (a *ArrayMap) Len() int { return len(a.slots) }

// Lookup reads a slot (out-of-range reads zero, like a missing element).
func (a *ArrayMap) Lookup(i int) uint64 {
	if i < 0 || i >= len(a.slots) {
		return 0
	}
	return a.slots[i].Load()
}

// Update writes a slot.
func (a *ArrayMap) Update(i int, v uint64) bool {
	if i < 0 || i >= len(a.slots) {
		return false
	}
	a.slots[i].Store(v)
	return true
}

// Add atomically increments a slot.
func (a *ArrayMap) Add(i int, delta uint64) {
	if i >= 0 && i < len(a.slots) {
		a.slots[i].Add(delta)
	}
}
