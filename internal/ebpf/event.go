package ebpf

// Fixed-layout telemetry events carried over the RingBuf. A real BPF program
// would define this struct in C and the userspace consumer would mirror it;
// here both sides share one 24-byte little-endian wire format so decode is a
// fixed-offset read, never a parse.

import (
	"encoding/binary"

	"linuxfp/internal/drop"
)

// EventType discriminates ring buffer telemetry records.
type EventType uint8

// Event types.
const (
	EventDrop    EventType = iota + 1 // a packet drop: Reason set, Cycles = meter position
	EventLatency                      // a stage latency sample: Stage + Cycles set
	EventTrace                        // a per-packet fast-path trace (fpm.TraceOp)
	EventSpan                         // a flight-recorder span: Stage packs stage|verdict, Aux = trace ID
)

func (t EventType) String() string {
	switch t {
	case EventDrop:
		return "drop"
	case EventLatency:
		return "latency"
	case EventTrace:
		return "trace"
	case EventSpan:
		return "span"
	default:
		return "event_invalid"
	}
}

// EventSize is the wire size of one Event.
const EventSize = 24

// Event is one telemetry record.
type Event struct {
	Type    EventType
	Reason  drop.Reason // EventDrop
	Stage   uint8       // EventLatency: kernel.Stage ordinal
	CPU     uint8       // producing CPU / RX queue
	IfIndex uint32      // device the packet was on (0 if unknown)
	Cycles  uint64      // modelcycles: stage latency, or meter position at drop
	Aux     uint64      // type-specific: packet bytes, redirect target, ...
}

// MarshalInto writes the event into b.
func (e *Event) MarshalInto(b *[EventSize]byte) {
	b[0] = byte(e.Type)
	b[1] = byte(e.Reason)
	b[2] = e.Stage
	b[3] = e.CPU
	binary.LittleEndian.PutUint32(b[4:8], e.IfIndex)
	binary.LittleEndian.PutUint64(b[8:16], e.Cycles)
	binary.LittleEndian.PutUint64(b[16:24], e.Aux)
}

// DecodeEvent reads an event back out of a ring record. Short records return
// ok=false.
func DecodeEvent(b []byte) (Event, bool) {
	if len(b) < EventSize {
		return Event{}, false
	}
	return Event{
		Type:    EventType(b[0]),
		Reason:  drop.Reason(b[1]),
		Stage:   b[2],
		CPU:     b[3],
		IfIndex: binary.LittleEndian.Uint32(b[4:8]),
		Cycles:  binary.LittleEndian.Uint64(b[8:16]),
		Aux:     binary.LittleEndian.Uint64(b[16:24]),
	}, true
}
