// Package fpm is LinuxFP's library of fast path modules: the code snippets
// the controller's synthesizer composes into per-configuration eBPF
// programs. Each constructor bakes the current configuration into the ops
// it returns — the Go equivalent of rendering the paper's Jinja templates
// into C — so a data path contains only the logic the active configuration
// needs (no VLAN branch unless VLANs are configured, and so on).
//
// Every module obeys one safety rule: when anything is unusual — unknown
// EtherType, fragments, IP options, FDB/FIB/neighbour misses, MAC moves,
// retagging — the op punts the packet to the slow path (VerdictPass), where
// complete Linux semantics apply. Punting can cost performance, never
// correctness.
package fpm

import (
	"encoding/binary"
	"sync/atomic"

	"linuxfp/internal/bridge"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// ParseEth reads the Ethernet header into the context. Without the VLAN
// snippet a tagged frame keeps EtherType 0x8100 and later snippets punt —
// exactly the minimal-code behaviour the synthesizer wants.
func ParseEth() ebpf.Op {
	return ebpf.NewOp("parse_eth", sim.CostParseEth, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
		f := c.Frame()
		if len(f) < packet.EthHdrLen {
			return ebpf.VerdictAborted
		}
		c.DstMAC = packet.EthDst(f)
		c.SrcMAC = packet.EthSrc(f)
		c.EtherType = binary.BigEndian.Uint16(f[12:14])
		c.L3Off = packet.EthHdrLen
		return ebpf.VerdictNext
	})
}

// ParseVLAN unwraps one 802.1Q tag when present. Included only when the
// configuration has VLANs.
func ParseVLAN() ebpf.Op {
	return ebpf.NewOp("parse_vlan", sim.CostParseVLAN, 0, 16, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.EtherType != packet.EtherTypeVLAN {
			return ebpf.VerdictNext
		}
		f := c.Frame()
		if len(f) < packet.EthHdrLen+packet.VLANTagLen {
			return ebpf.VerdictAborted
		}
		tci := binary.BigEndian.Uint16(f[14:16])
		c.VLAN = tci & 0x0fff
		c.EtherType = binary.BigEndian.Uint16(f[16:18])
		c.L3Off = packet.EthHdrLen + packet.VLANTagLen
		return ebpf.VerdictNext
	})
}

// ParseIPv4 validates and reads the IP header. Fragments, options, expiring
// TTLs, and checksum failures all punt: the slow path owns those cases
// (paper Table I). Tagged with its specialization class so a following
// ParseL4 can collapse into it when both survive specialization.
func ParseIPv4() ebpf.Op {
	return parseIPv4Op().WithSpecClass(ebpf.SpecClassParseIPv4)
}

func parseIPv4Op() *ebpf.FuncOp {
	return ebpf.NewOp("parse_ipv4", sim.CostParseIPv4, 0, 48, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.EtherType != packet.EtherTypeIPv4 {
			return ebpf.VerdictPass // ARP, LLDP, tagged frames without the VLAN snippet...
		}
		f := c.Frame()
		l3 := c.L3Off
		if len(f) < l3+packet.IPv4MinLen {
			return ebpf.VerdictAborted
		}
		if f[l3]>>4 != 4 {
			return ebpf.VerdictPass
		}
		if packet.IPv4HasOptions(f, l3) || packet.IPv4IsFragment(f, l3) {
			return ebpf.VerdictPass
		}
		if packet.Checksum(f[l3:l3+packet.IPv4MinLen]) != 0 {
			return ebpf.VerdictPass // slow path will count and drop it
		}
		c.IPSrc = packet.IPv4Src(f, l3)
		c.IPDst = packet.IPv4Dst(f, l3)
		c.IPProto = packet.IPv4Proto(f, l3)
		c.TTL = packet.IPv4TTL(f, l3)
		if c.TTL <= 1 {
			return ebpf.VerdictPass // ICMP time-exceeded is slow-path work
		}
		return ebpf.VerdictNext
	})
}

// ParseL4 reads transport ports; included when filter rules match on them.
// When specialization finds it directly after a surviving ParseIPv4, the two
// collapse into one merged header read.
func ParseL4() ebpf.Op {
	return ebpf.NewOp("parse_l4", sim.CostParseL4, 0, 16, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.IPProto != packet.ProtoTCP && c.IPProto != packet.ProtoUDP {
			return ebpf.VerdictNext
		}
		f := c.Frame()
		l4 := c.L3Off + packet.IPv4MinLen
		if len(f) < l4+4 {
			return ebpf.VerdictAborted
		}
		c.SrcPort, c.DstPort = packet.L4Ports(f, l4)
		return ebpf.VerdictNext
	}).WithSpecClass(ebpf.SpecClassParseL4).
		WithCollapse(ebpf.SpecClassParseIPv4, func(*ebpf.FuncOp) *ebpf.FuncOp {
			return mergedParseIPv4L4()
		})
}

// mergedParseIPv4L4 is the collapsed ParseIPv4+ParseL4 read the specializer
// emits: one frame fetch and one bounds-check cascade cover both headers.
// Verdict behaviour is byte-identical to running the two ops in sequence;
// the merge saves only the duplicated frame access and dispatch overhead
// (sim.CostParseMergeSave).
func mergedParseIPv4L4() *ebpf.FuncOp {
	return ebpf.NewOp("parse_ipv4_l4",
		sim.CostParseIPv4+sim.CostParseL4-sim.CostParseMergeSave, 0, 52,
		func(c *ebpf.Ctx) ebpf.Verdict {
			if c.EtherType != packet.EtherTypeIPv4 {
				return ebpf.VerdictPass
			}
			f := c.Frame()
			l3 := c.L3Off
			if len(f) < l3+packet.IPv4MinLen {
				return ebpf.VerdictAborted
			}
			if f[l3]>>4 != 4 {
				return ebpf.VerdictPass
			}
			if packet.IPv4HasOptions(f, l3) || packet.IPv4IsFragment(f, l3) {
				return ebpf.VerdictPass
			}
			if packet.Checksum(f[l3:l3+packet.IPv4MinLen]) != 0 {
				return ebpf.VerdictPass
			}
			c.IPSrc = packet.IPv4Src(f, l3)
			c.IPDst = packet.IPv4Dst(f, l3)
			c.IPProto = packet.IPv4Proto(f, l3)
			c.TTL = packet.IPv4TTL(f, l3)
			if c.TTL <= 1 {
				return ebpf.VerdictPass
			}
			if c.IPProto != packet.ProtoTCP && c.IPProto != packet.ProtoUDP {
				return ebpf.VerdictNext
			}
			l4 := l3 + packet.IPv4MinLen
			if len(f) < l4+4 {
				return ebpf.VerdictAborted
			}
			c.SrcPort, c.DstPort = packet.L4Ports(f, l4)
			return ebpf.VerdictNext
		})
}

// BridgeConf parameterizes the bridge FPM for the current configuration.
type BridgeConf struct {
	Bridge *bridge.Bridge
	// STP includes the port-state snippet.
	STP bool
	// VLANFiltering includes the VLAN admission snippet.
	VLANFiltering bool
	// LocalNext, when true, continues to the next module (a chained router
	// FPM) for frames addressed to the bridge device itself, instead of
	// punting them.
	LocalNext bool
	// Filter evaluates the FORWARD chain on bridged IPv4 traffic —
	// br_netfilter acceleration for container hosts. Non-IP frames punt.
	Filter bool
}

// BridgeOps builds the bridge FPM: fast L2 forwarding via bpf_fdb_lookup.
// Flooding, learning, BPDUs and aging stay in the slow path.
func BridgeOps(conf BridgeConf) []ebpf.Op {
	br := conf.Bridge
	var ops []ebpf.Op

	ops = append(ops, ebpf.NewOp("bridge_guard", sim.CostBridgeGuard, 0, 16, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.DstMAC.IsMulticast() {
			// Broadcast/multicast (including BPDUs): slow path floods.
			return ebpf.VerdictPass
		}
		if c.DstMAC == br.MAC {
			if conf.LocalNext {
				return ebpf.VerdictNext
			}
			return ebpf.VerdictPass
		}
		return ebpf.VerdictNext
	}).WithSpecializer(func(*ebpf.SpecEnv) ebpf.SpecResult {
		// conf.LocalNext is synthesis-time structure (it reflects the graph,
		// not live kernel state), so the fold needs no generation guard.
		if conf.LocalNext {
			// Local frames continue either way: only multicast punts.
			return ebpf.SpecResult{Replace: ebpf.NewOp("bridge_guard_spec", sim.CostBridgeGuard, 0, 8, func(c *ebpf.Ctx) ebpf.Verdict {
				if c.DstMAC.IsMulticast() {
					return ebpf.VerdictPass
				}
				return ebpf.VerdictNext
			})}
		}
		return ebpf.SpecResult{Replace: ebpf.NewOp("bridge_guard_spec", sim.CostBridgeGuard, 0, 12, func(c *ebpf.Ctx) ebpf.Verdict {
			if c.DstMAC.IsMulticast() || c.DstMAC == br.MAC {
				return ebpf.VerdictPass
			}
			return ebpf.VerdictNext
		})}
	}))

	if conf.STP {
		// stp_port_state deliberately has NO specializer: the obvious fold
		// (elide when STP is off) is unsound — the op also punts frames on
		// Disabled ports, and the only generation that tracks port state
		// (bridge.Gen) is bumped by FDB learning, so a guard on it would
		// invalidate the fold on every new MAC. Port state stays a live read.
		ops = append(ops, ebpf.NewOp("stp_port_state", sim.CostPortState, ebpf.CapHelperFDB, 12, func(c *ebpf.Ctx) ebpf.Verdict {
			p, ok := br.Port(c.IfIndex)
			if !ok || p.State != bridge.Forwarding {
				return ebpf.VerdictPass // blocked/learning ports: slow path decides
			}
			return ebpf.VerdictNext
		}))
	}

	if conf.VLANFiltering {
		ops = append(ops, ebpf.NewOp("vlan_filter", sim.CostPortState, 0, 20, func(c *ebpf.Ctx) ebpf.Verdict {
			vlan, ok := br.IngressVLAN(c.IfIndex, c.VLAN)
			if !ok {
				return ebpf.VerdictPass // slow path drops, keeping counters
			}
			c.VLAN = vlan
			return ebpf.VerdictNext
		}).WithSpecializer(func(*ebpf.SpecEnv) ebpf.SpecResult {
			if br.VLANFiltering() {
				return ebpf.SpecResult{}
			}
			// Live filtering is off: IngressVLAN degenerates to a port-
			// membership check that classifies everything as VLAN 0.
			if !conf.Filter {
				// Nothing runs between here and the FDB decision: the
				// membership check moves into the folded fdb_forward
				// (guarded on ConfGen there) and the op vanishes.
				return ebpf.SpecResult{Elide: true}
			}
			// A filter op sits between this op and the FDB decision. Keep
			// the membership punt in place — eliding it would let rule
			// counters see frames the generic chain punts before filtering.
			g := br.ConfGen()
			return ebpf.SpecResult{Replace: ebpf.NewOp("vlan_member_spec",
				sim.CostBridgeGuard+sim.CostSpecGuard, 0, 12,
				func(c *ebpf.Ctx) ebpf.Verdict {
					if br.ConfGen() != g {
						return ebpf.VerdictPass // stale fold: punt
					}
					if _, ok := br.Port(c.IfIndex); !ok {
						return ebpf.VerdictPass
					}
					c.VLAN = 0
					return ebpf.VerdictNext
				})}
		}))
	}

	if conf.Filter {
		// br_netfilter path: parse to L4 and evaluate FORWARD before the
		// FDB decision, mirroring the slow path's hook placement.
		ops = append(ops, ParseIPv4(), ParseL4(), FilterOp(FilterConf{Hook: netfilter.HookForward}))
	}

	ops = append(ops, ebpf.NewOp("fdb_forward", sim.CostHelperFDB, ebpf.CapHelperFDB|ebpf.CapRedirect, 64, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.DstMAC == br.MAC {
			// Chained local traffic (LocalNext): let the router FPM run.
			return ebpf.VerdictNext
		}
		now := c.Kernel.Now()
		vlan := uint16(0)
		if conf.VLANFiltering {
			vlan = c.VLAN
		}
		// bpf_fdb_lookup checks the source first: unknown or moved MACs
		// punt so the slow path learns (the helper does both lookups in
		// one call; the cost constant covers the pair).
		if srcPort, ok := br.FDBLookup(c.SrcMAC, vlan, now); !ok || srcPort != c.IfIndex {
			return ebpf.VerdictPass
		}
		port, ok := br.FDBLookup(c.DstMAC, vlan, now)
		if !ok || port == c.IfIndex {
			return ebpf.VerdictPass // miss: slow path floods
		}
		p, exists := br.Port(port)
		if !exists || p.State != bridge.Forwarding {
			return ebpf.VerdictPass
		}
		if conf.VLANFiltering {
			tagged, allowed := br.EgressAllowed(port, vlan)
			if !allowed {
				return ebpf.VerdictPass
			}
			if tagged != (c.VLAN != 0 && c.L3Off > packet.EthHdrLen) {
				// Retagging needs head adjustment: punt.
				return ebpf.VerdictPass
			}
		}
		c.RedirectIfIndex = port
		return ebpf.VerdictRedirect
	}).WithSpecializer(func(*ebpf.SpecEnv) ebpf.SpecResult {
		if conf.VLANFiltering && br.VLANFiltering() {
			return ebpf.SpecResult{} // VLAN path live: keep the full walk
		}
		if conf.VLANFiltering {
			// The configuration carries the VLAN snippets but the live
			// bridge has filtering off: everything classifies as VLAN 0 and
			// every egress is allowed untagged. The fold bakes that in —
			// vlan_filter was elided, so its port-membership check moves
			// here — and a ConfGen guard punts the moment STP or VLAN
			// filtering is reconfigured (the slow path is always complete;
			// the controller re-specializes on the next netlink event).
			g := br.ConfGen()
			return ebpf.SpecResult{Replace: ebpf.NewOp("fdb_forward_spec",
				sim.CostHelperFDB+sim.CostSpecGuard, ebpf.CapHelperFDB|ebpf.CapRedirect, 48,
				func(c *ebpf.Ctx) ebpf.Verdict {
					if br.ConfGen() != g {
						return ebpf.VerdictPass // stale fold: punt
					}
					if _, ok := br.Port(c.IfIndex); !ok {
						return ebpf.VerdictPass // was vlan_filter's membership check
					}
					return fdbForwardVLAN0(c, br)
				})}
		}
		// Plain bridge: the conf.VLANFiltering branches are dead by
		// synthesis-time structure alone, so the fold needs no guard.
		return ebpf.SpecResult{Replace: ebpf.NewOp("fdb_forward_spec",
			sim.CostHelperFDB, ebpf.CapHelperFDB|ebpf.CapRedirect, 56,
			func(c *ebpf.Ctx) ebpf.Verdict {
				return fdbForwardVLAN0(c, br)
			})}
	}))
	return ops
}

// fdbForwardVLAN0 is the specialized fdb_forward body with VLAN 0 baked in:
// the source-then-destination lookup pair and port-state check of the
// generic op, minus the VLAN classification and egress-admission branches.
func fdbForwardVLAN0(c *ebpf.Ctx, br *bridge.Bridge) ebpf.Verdict {
	if c.DstMAC == br.MAC {
		return ebpf.VerdictNext // chained local traffic (LocalNext)
	}
	now := c.Kernel.Now()
	if srcPort, ok := br.FDBLookup(c.SrcMAC, 0, now); !ok || srcPort != c.IfIndex {
		return ebpf.VerdictPass
	}
	port, ok := br.FDBLookup(c.DstMAC, 0, now)
	if !ok || port == c.IfIndex {
		return ebpf.VerdictPass // miss: slow path floods
	}
	p, exists := br.Port(port)
	if !exists || p.State != bridge.Forwarding {
		return ebpf.VerdictPass
	}
	c.RedirectIfIndex = port
	return ebpf.VerdictRedirect
}

// RouterConf parameterizes the router FPM.
type RouterConf struct {
	// BridgeForOut maps an egress ifindex to a bridge when the route
	// points at a bridge device; the router FPM then resolves the real
	// port via the FDB instead of punting (next_nf: bridge).
	BridgeForOut func(ifindex int) (*bridge.Bridge, bool)
}

// FIBLookupOp resolves route + neighbour through bpf_fib_lookup, leaving
// the result in the context. Every miss punts.
func FIBLookupOp() ebpf.Op {
	return ebpf.NewOp("fib_lookup", 0, ebpf.CapHelperFIB, 40, func(c *ebpf.Ctx) ebpf.Verdict {
		// Helper charges its own cost.
		res, ok := ebpf.HelperFIBLookup(c, c.IPDst)
		if !ok {
			return ebpf.VerdictPass
		}
		c.FIB = res
		c.FIBOk = true
		return ebpf.VerdictNext
	})
}

// FilterConf parameterizes the filter FPM.
type FilterConf struct {
	Hook netfilter.Hook // chain to evaluate (FORWARD for gateways)
}

// FilterOp evaluates iptables state through bpf_ipt_lookup. Runs after the
// FIB lookup so out-interface matches see the real egress. Flows the
// helper cannot classify (conntrack miss) punt to the slow path.
//
// Specialization compiles the hook's chain into a lock-free snapshot at Load
// time (netfilter.Compile): packets whose protocol no rule can match skip
// the walk entirely, and the rest evaluate without the interpreter's
// per-rule dispatch. A generation guard falls back to the generic helper
// when the ruleset has changed since Load; chains with user-chain jumps
// refuse to compile and keep the generic form.
func FilterOp(conf FilterConf) ebpf.Op {
	return ebpf.NewOp("ipt_filter", 0, ebpf.CapHelperIpt, 72, func(c *ebpf.Ctx) ebpf.Verdict {
		// Helper charges its own cost.
		switch ebpf.HelperIptLookup(c, conf.Hook, c.FIB.EgressIfIndex) {
		case ebpf.IptDeny:
			return ebpf.VerdictDrop
		case ebpf.IptPunt:
			return ebpf.VerdictPass
		default:
			return ebpf.VerdictNext
		}
	}).WithSpecializer(func(env *ebpf.SpecEnv) ebpf.SpecResult {
		comp, ok := env.K.NF.Compile(conf.Hook)
		if !ok {
			return ebpf.SpecResult{} // jumps in the chain: keep the interpreter
		}
		return ebpf.SpecResult{Replace: ebpf.NewOp("ipt_filter_spec", 0, ebpf.CapHelperIpt, 40, func(c *ebpf.Ctx) ebpf.Verdict {
			// Helper charges its own cost (guard + compiled walk, or the
			// full generic cost on a stale-generation fallback).
			switch ebpf.HelperIptLookupCompiled(c, comp, conf.Hook, c.FIB.EgressIfIndex) {
			case ebpf.IptDeny:
				return ebpf.VerdictDrop
			case ebpf.IptPunt:
				return ebpf.VerdictPass
			default:
				return ebpf.VerdictNext
			}
		})}
	})
}

// RewriteOp applies the forwarding rewrite: TTL decrement with incremental
// checksum and MAC rewrite from the FIB result.
func RewriteOp() ebpf.Op {
	return ebpf.NewOp("rewrite_l2l3", sim.CostRewriteL2L3, 0, 32, func(c *ebpf.Ctx) ebpf.Verdict {
		if !c.FIBOk {
			return ebpf.VerdictPass
		}
		f := c.Frame()
		packet.DecTTL(f, c.L3Off)
		packet.SetEthSrc(f, c.FIB.SrcMAC)
		packet.SetEthDst(f, c.FIB.DstMAC)
		return ebpf.VerdictNext
	})
}

// RedirectOp emits the packet on the FIB egress. When the egress is a
// bridge device (next_nf: bridge), it resolves the physical port through
// the FDB; a miss punts so the slow path floods. When no bridge resolver is
// configured — the single-port redirect case — specialization folds the op
// to a direct emit (the branch is synthesis-time structure, no guard
// needed).
func RedirectOp(conf RouterConf) ebpf.Op {
	return ebpf.NewOp("redirect", 0, ebpf.CapRedirect, 16, func(c *ebpf.Ctx) ebpf.Verdict {
		if !c.FIBOk {
			return ebpf.VerdictPass
		}
		egress := c.FIB.EgressIfIndex
		if conf.BridgeForOut != nil {
			if br, ok := conf.BridgeForOut(egress); ok {
				port, hit := ebpf.HelperFDBLookup(c, br, c.FIB.DstMAC, 0)
				if !hit {
					return ebpf.VerdictPass
				}
				egress = port
			}
		}
		c.RedirectIfIndex = egress
		return ebpf.VerdictRedirect
	}).WithSpecializer(func(*ebpf.SpecEnv) ebpf.SpecResult {
		if conf.BridgeForOut != nil {
			return ebpf.SpecResult{}
		}
		return ebpf.SpecResult{Replace: ebpf.NewOp("redirect_direct", 0, ebpf.CapRedirect, 8, func(c *ebpf.Ctx) ebpf.Verdict {
			if !c.FIBOk {
				return ebpf.VerdictPass
			}
			c.RedirectIfIndex = c.FIB.EgressIfIndex
			return ebpf.VerdictRedirect
		})}
	})
}

// RouterOps composes the router FPM: parse → fib → rewrite → redirect.
func RouterOps(conf RouterConf) []ebpf.Op {
	return []ebpf.Op{FIBLookupOp(), RewriteOp(), RedirectOp(conf)}
}

// TrivialOps returns n no-op network functions (the Fig. 10 chain when
// composed with function calls).
func TrivialOps(n int) []ebpf.Op {
	ops := make([]ebpf.Op, n)
	for i := range ops {
		ops[i] = ebpf.NewOp("trivial_nf", sim.CostTrivialNF, 0, 8, func(*ebpf.Ctx) ebpf.Verdict {
			return ebpf.VerdictNext
		})
	}
	return ops
}

// MonitorOp counts packets per IP protocol into an array map — the paper's
// future-work custom monitoring module, insertable at any graph position.
func MonitorOp(counters *ebpf.ArrayMap) ebpf.Op {
	return ebpf.NewOp("monitor", sim.CostMonitorFPM, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
		counters.Add(int(c.IPProto), 1)
		return ebpf.VerdictNext
	})
}

// MonitorOpPerCPU is MonitorOp backed by a BPF_MAP_TYPE_PERCPU_ARRAY: each
// RX queue's worker bumps its own CPU's counter row, so the per-packet
// update never bounces a cache line between cores. Readers aggregate with
// Sum, like userspace summing a percpu map lookup.
func MonitorOpPerCPU(counters *ebpf.PerCPUArrayMap) ebpf.Op {
	return ebpf.NewOp("monitor", sim.CostMonitorFPM, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
		counters.Add(c.CPU(), int(c.IPProto), 1)
		return ebpf.VerdictNext
	})
}

// TraceConf parameterizes the trace FPM.
type TraceConf struct {
	// Ring receives the events.
	Ring *ebpf.RingBuf
	// SampleShift subsamples: emit one event per 2^SampleShift packets
	// (0 traces every packet). Sampling state is per-op, modelling a
	// per-program counter map.
	SampleShift uint
	// Proto/DstPort restrict tracing to matching traffic (zero means any).
	Proto   uint8
	DstPort uint16
}

// TraceOp emits a fixed-layout EventTrace for matching packets via
// bpf_ringbuf_output — the monitoring FPM's streaming twin. The op itself is
// cost-free (like FIBLookupOp, the helper charges what actually runs), so JIT
// fusion's prefix-summed static costs stay exact whether or not the op
// matches. A full ring silently drops the event (counted on the ring), never
// the packet.
func TraceOp(conf TraceConf) ebpf.Op {
	var seq atomic.Uint64
	mask := uint64(1)<<conf.SampleShift - 1
	return ebpf.NewOp("trace", 0, ebpf.CapRingbuf, 56, func(c *ebpf.Ctx) ebpf.Verdict {
		// Helper charges its own cost.
		if conf.Proto != 0 && c.IPProto != conf.Proto {
			return ebpf.VerdictNext
		}
		if conf.DstPort != 0 && c.DstPort != conf.DstPort {
			return ebpf.VerdictNext
		}
		if (seq.Add(1)-1)&mask != 0 {
			return ebpf.VerdictNext
		}
		ev := ebpf.Event{
			Type:    ebpf.EventTrace,
			CPU:     uint8(c.CPU()),
			IfIndex: uint32(c.IfIndex),
			Cycles:  uint64(c.Meter.Total),
			Aux:     uint64(len(c.Frame())),
		}
		ebpf.HelperRingbufOutputEvent(c, conf.Ring, &ev)
		return ebpf.VerdictNext
	})
}

// AFXDPConf parameterizes the AF_XDP capture module (paper future work):
// matching packets bypass the whole kernel stack and land on a user-space
// socket; everything else continues down the chain untouched.
type AFXDPConf struct {
	// Proto/DstPort select the captured traffic (zero means any).
	Proto   uint8
	DstPort uint16
	// Map and Slot name the XSK binding.
	Map  *ebpf.XSKMap
	Slot int
}

// AFXDPOp builds the capture snippet. The helper only records the map and
// slot on the context: the driver's redirect path resolves the socket at
// enqueue time and stages the frame through the per-queue XSK bulk
// queues, so a matching packet counts as an XDP redirect (or an
// xsk_rx_full / xsk_fill_empty drop when the socket's rings are behind).
func AFXDPOp(conf AFXDPConf) ebpf.Op {
	return ebpf.NewOp("afxdp_capture", 0, ebpf.CapRedirect, 40, func(c *ebpf.Ctx) ebpf.Verdict {
		if conf.Proto != 0 && c.IPProto != conf.Proto {
			return ebpf.VerdictNext
		}
		if conf.DstPort != 0 && c.DstPort != conf.DstPort {
			return ebpf.VerdictNext
		}
		return ebpf.HelperRedirectXSK(c, conf.Map, conf.Slot)
	})
}

// IPVSOp is the controller-synthesized LB module (Table I's last row):
// established virtual-service flows are resolved through bpf_ipvs_lookup
// against the kernel's ipvs connection table — the same single-copy state
// the slow path's scheduler writes — then DNATed and redirected. New flows
// punt so the slow path schedules them; non-VIP traffic continues.
func IPVSOp() ebpf.Op {
	return ebpf.NewOp("ipvs_lb", 0, ebpf.CapHelperIPVS|ebpf.CapHelperFIB|ebpf.CapRedirect, 96, func(c *ebpf.Ctx) ebpf.Verdict {
		backend, vip, ok := ebpf.HelperIPVSLookup(c)
		if !vip {
			return ebpf.VerdictNext
		}
		if !ok {
			return ebpf.VerdictPass // unscheduled flow: slow path schedules
		}
		// Resolve the backend route BEFORE touching the frame, so a punt
		// hands the slow path the original (un-NATed) packet.
		res, fok := ebpf.HelperFIBLookup(c, backend)
		if !fok {
			return ebpf.VerdictPass
		}
		f := c.Frame()
		packet.RewriteIPv4Dst(f, c.L3Off, c.L3Off+packet.IPv4MinLen, backend)
		c.IPDst = backend
		c.Meter.Charge(sim.CostRewriteL2L3)
		packet.DecTTL(f, c.L3Off)
		packet.SetEthSrc(f, res.SrcMAC)
		packet.SetEthDst(f, res.DstMAC)
		c.RedirectIfIndex = res.EgressIfIndex
		return ebpf.VerdictRedirect
	})
}

// LBConf parameterizes the ipvs-style load balancer FPM (paper future
// work, Table I's last row).
type LBConf struct {
	VIP      packet.Addr
	Port     uint16
	Backends []packet.Addr
	// Conns pins flows to backends (flow hash -> backend index). This is
	// the one FPM holding private map state: ipvs connection scheduling is
	// explicitly listed as slow-path/control work in Table I, and this
	// prototype keeps only the established-flow cache in the fast path.
	Conns *ebpf.HashMap
	// PerCPUConns, when set, replaces Conns with a per-CPU conn table:
	// RSS pins every flow to one RX queue, so each queue's shard sees all
	// packets of its flows and the global table lock disappears.
	PerCPUConns *ebpf.PerCPUHashMap
}

// mix64 is a splitmix64 finalizer: a cheap, well-spread flow hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// LBOp implements the load-balancer fast path: VIP traffic is DNATed to a
// stable backend and re-routed; everything else continues down the chain.
func LBOp(conf LBConf) ebpf.Op {
	return ebpf.NewOp("ipvs_lb", sim.CostLBConnHash, ebpf.CapHelperFIB|ebpf.CapRedirect, 96, func(c *ebpf.Ctx) ebpf.Verdict {
		if c.IPDst != conf.VIP || c.DstPort != conf.Port || len(conf.Backends) == 0 {
			return ebpf.VerdictNext
		}
		flow := uint64(c.IPSrc)<<32 | uint64(c.SrcPort)<<16 | uint64(c.IPProto)
		var idx uint64
		var ok bool
		if conf.PerCPUConns != nil {
			cpu := c.CPU()
			idx, ok = conf.PerCPUConns.Lookup(cpu, flow)
			if !ok {
				idx = mix64(flow) % uint64(len(conf.Backends))
				if !conf.PerCPUConns.Update(cpu, flow, idx) {
					return ebpf.VerdictPass // conn table full: punt
				}
			}
		} else {
			idx, ok = conf.Conns.Lookup(flow)
			if !ok {
				// New connection: scheduling belongs to the slow path in the
				// full design; the prototype spreads by flow hash.
				idx = mix64(flow) % uint64(len(conf.Backends))
				if !conf.Conns.Update(flow, idx) {
					return ebpf.VerdictPass // conn table full: punt
				}
			}
		}
		backend := conf.Backends[idx%uint64(len(conf.Backends))]
		f := c.Frame()
		packet.RewriteIPv4Dst(f, c.L3Off, c.L3Off+packet.IPv4MinLen, backend)
		c.IPDst = backend
		res, ok := ebpf.HelperFIBLookup(c, backend)
		if !ok {
			return ebpf.VerdictPass
		}
		packet.DecTTL(f, c.L3Off)
		packet.SetEthSrc(f, res.SrcMAC)
		packet.SetEthDst(f, res.DstMAC)
		c.RedirectIfIndex = res.EgressIfIndex
		return ebpf.VerdictRedirect
	})
}

// CPUSpreadConf parameterizes the cpumap spreading module: slow-path-bound
// traffic is fanned out across a set of target CPUs instead of being
// processed on the RX core — the cpumap analogue of LBOp's backend spread.
type CPUSpreadConf struct {
	// Map is the cpumap whose entries receive the frames.
	Map *ebpf.CPUMap
	// CPUs are the target CPU indices (must have live entries in Map).
	CPUs []int
	// RoundRobin spreads packet-by-packet instead of by flow hash. Flow
	// hashing is the default: it keeps every flow on one target CPU, which
	// preserves in-order delivery and lets GRO coalesce there.
	RoundRobin bool
	// Proto, when non-zero, restricts spreading to one IP protocol;
	// everything else continues down the chain.
	Proto uint8
	// Picker, when set, overrides the static hash→CPU mapping: the op hands
	// it the flow hash and redirects to whatever CPU it returns. This is the
	// seam a steering controller plugs into — it can shed NEW flows away
	// from overloaded CPUs while a sticky table keeps established flows in
	// place. The implementation must be safe for concurrent PickCPU calls.
	Picker CPUPicker
}

// CPUPicker chooses a target CPU for a flow hash. satisfied by
// steer.Table without fpm importing it.
type CPUPicker interface {
	PickCPU(hash uint64) int
}

// CPUSpreadOp builds the spreading snippet. The flow key hashes (src IP,
// src port, proto) with the same splitmix64 finalizer LBOp uses, so the
// same flow always lands on the same target CPU.
func CPUSpreadOp(conf CPUSpreadConf) ebpf.Op {
	var rr atomic.Uint64
	return ebpf.NewOp("cpu_spread", 0, ebpf.CapRedirect, 48, func(c *ebpf.Ctx) ebpf.Verdict {
		if len(conf.CPUs) == 0 {
			return ebpf.VerdictNext
		}
		if conf.Proto != 0 && c.IPProto != conf.Proto {
			return ebpf.VerdictNext
		}
		var idx uint64
		if conf.RoundRobin {
			idx = rr.Add(1) - 1
		} else {
			flow := uint64(c.IPSrc)<<32 | uint64(c.SrcPort)<<16 | uint64(c.IPProto)
			if conf.Picker != nil {
				return ebpf.HelperRedirectCPU(c, conf.Map, conf.Picker.PickCPU(mix64(flow)))
			}
			idx = mix64(flow)
		}
		return ebpf.HelperRedirectCPU(c, conf.Map, conf.CPUs[idx%uint64(len(conf.CPUs))])
	})
}
