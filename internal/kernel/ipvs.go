package kernel

import (
	"fmt"
	"sort"
	"sync"

	"linuxfp/internal/drop"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netlink"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// ipvs: the kernel's L4 load balancer (paper Table I's last row, marked
// future work with "initial prototyping showing promising results"). The
// model implements the masquerade-free NAT mode: virtual-service traffic
// is DNATed to a backend chosen by the scheduler, with flow stickiness
// kept in a kernel-owned connection table — the same single-copy-of-state
// discipline as FIB/FDB/iptables, so the fast path's helper shares it.

// IPVSKey identifies a virtual service.
type IPVSKey struct {
	VIP   packet.Addr
	Port  uint16
	Proto uint8
}

// IPVSService is one configured virtual service.
type IPVSService struct {
	Key       IPVSKey
	Scheduler string // "rr" (round robin) or "sh" (source hash)
	Backends  []packet.Addr
}

// ipvsFlow pins one flow to a backend.
type ipvsFlow struct {
	backend packet.Addr
}

// ipvsState is the kernel's ipvs table.
type ipvsState struct {
	mu       sync.RWMutex
	services map[IPVSKey]*IPVSService
	conns    map[netfilterTuple]*ipvsFlow
	rrSeq    map[IPVSKey]int
}

// netfilterTuple mirrors netfilter.Tuple without the import (ipvs keeps its
// own connection table in the kernel, as Linux does).
type netfilterTuple struct {
	src, dst         packet.Addr
	proto            uint8
	srcPort, dstPort uint16
}

func newIPVSState() *ipvsState {
	return &ipvsState{
		services: make(map[IPVSKey]*IPVSService),
		conns:    make(map[netfilterTuple]*ipvsFlow),
		rrSeq:    make(map[IPVSKey]int),
	}
}

// IPVSAddService registers a virtual service (ipvsadm -A).
func (k *Kernel) IPVSAddService(key IPVSKey, scheduler string) error {
	if scheduler == "" {
		scheduler = "rr"
	}
	if scheduler != "rr" && scheduler != "sh" {
		return fmt.Errorf("kernel: unsupported ipvs scheduler %q", scheduler)
	}
	k.ipvs.mu.Lock()
	defer k.ipvs.mu.Unlock()
	if _, ok := k.ipvs.services[key]; ok {
		return fmt.Errorf("kernel: ipvs service %v exists", key)
	}
	k.ipvs.services[key] = &IPVSService{Key: key, Scheduler: scheduler}
	k.cfgGen.Add(1)
	k.publishIPVS(key)
	return nil
}

// IPVSAddBackend adds a real server to a service (ipvsadm -a ... -r).
func (k *Kernel) IPVSAddBackend(key IPVSKey, backend packet.Addr) error {
	k.ipvs.mu.Lock()
	defer k.ipvs.mu.Unlock()
	svc, ok := k.ipvs.services[key]
	if !ok {
		return fmt.Errorf("kernel: no ipvs service %v", key)
	}
	svc.Backends = append(svc.Backends, backend)
	k.cfgGen.Add(1)
	k.publishIPVS(key)
	return nil
}

// IPVSDelService removes a virtual service (ipvsadm -D).
func (k *Kernel) IPVSDelService(key IPVSKey) bool {
	k.ipvs.mu.Lock()
	defer k.ipvs.mu.Unlock()
	if _, ok := k.ipvs.services[key]; !ok {
		return false
	}
	delete(k.ipvs.services, key)
	for tup := range k.ipvs.conns {
		if tup.dst == key.VIP && tup.dstPort == key.Port && tup.proto == key.Proto {
			delete(k.ipvs.conns, tup)
		}
	}
	k.cfgGen.Add(1)
	k.publishIPVS(key)
	return true
}

// publishIPVS emits the configuration-change notification (must hold the
// ipvs lock). Modeled on the genl ipvs channel; the controller subscribes
// through the netfilter group.
func (k *Kernel) publishIPVS(key IPVSKey) {
	count := 0
	if svc, ok := k.ipvs.services[key]; ok {
		count = len(svc.Backends)
	}
	k.Bus.Publish(netlink.Message{Type: netlink.NewIPVS, Payload: netlink.IPVSMsg{
		VIP: key.VIP, Port: key.Port, Proto: key.Proto,
		Backends: count, Services: len(k.ipvs.services),
	}})
}

// IPVSServices snapshots the configured services sorted by VIP.
func (k *Kernel) IPVSServices() []IPVSService {
	k.ipvs.mu.RLock()
	defer k.ipvs.mu.RUnlock()
	out := make([]IPVSService, 0, len(k.ipvs.services))
	for _, s := range k.ipvs.services {
		cp := *s
		cp.Backends = append([]packet.Addr(nil), s.Backends...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.VIP < out[j].Key.VIP })
	return out
}

// IPVSLookup resolves the backend for a flow, scheduling new flows and
// keeping existing ones sticky. It is the single scheduling point for BOTH
// the slow path and the bpf helper — one connection table, one answer.
// ok=false means the packet is not virtual-service traffic.
func (k *Kernel) IPVSLookup(src, dst packet.Addr, proto uint8, srcPort, dstPort uint16, schedule bool) (packet.Addr, bool) {
	key := IPVSKey{VIP: dst, Port: dstPort, Proto: proto}
	k.ipvs.mu.Lock()
	defer k.ipvs.mu.Unlock()
	svc, ok := k.ipvs.services[key]
	if !ok || len(svc.Backends) == 0 {
		return 0, false
	}
	tup := netfilterTuple{src: src, dst: dst, proto: proto, srcPort: srcPort, dstPort: dstPort}
	if fl, ok := k.ipvs.conns[tup]; ok {
		return fl.backend, true
	}
	if !schedule {
		// The caller (the fast path) may not create flows: scheduling is
		// slow-path work (Table I).
		return 0, false
	}
	var backend packet.Addr
	switch svc.Scheduler {
	case "sh":
		h := uint64(src)<<16 | uint64(srcPort)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		backend = svc.Backends[h%uint64(len(svc.Backends))]
	default: // rr
		backend = svc.Backends[k.ipvs.rrSeq[key]%len(svc.Backends)]
		k.ipvs.rrSeq[key]++
	}
	k.ipvs.conns[tup] = &ipvsFlow{backend: backend}
	return backend, true
}

// IPVSConnCount reports the number of tracked LB flows.
func (k *Kernel) IPVSConnCount() int {
	k.ipvs.mu.RLock()
	defer k.ipvs.mu.RUnlock()
	return len(k.ipvs.conns)
}

// ipvsInput intercepts virtual-service traffic in ip_rcv (the LOCAL_IN /
// PREROUTING placement): DNAT to the scheduled backend and hand the frame
// back for a fresh routing decision. Returns true if the packet was
// consumed (rerouted or dropped).
func (k *Kernel) ipvsInput(dev *netdev.Device, frame []byte, pkt *packet.Packet, m *sim.Meter) bool {
	ip := pkt.IPv4
	if ip.IsFragment() || (ip.Proto != packet.ProtoTCP && ip.Proto != packet.ProtoUDP) {
		return false
	}
	sport, dport := packet.L4Ports(pkt.Payload, 0)
	m.Charge(sim.CostConntrackLookup)
	backend, ok := k.IPVSLookup(ip.Src, ip.Dst, ip.Proto, sport, dport, true)
	if !ok {
		return false
	}
	defer k.trace("ip_vs_in", m)()
	m.Charge(sim.CostLBConnHash)
	packet.RewriteIPv4Dst(frame, pkt.L3Off, pkt.L4Off, backend)

	// Re-resolve with the rewritten destination.
	newPkt, err := packet.Decode(frame)
	if err != nil {
		k.countDropReason(m, drop.ReasonIPHdrError)
		return true
	}
	k.trace("fib_table_lookup", m)()
	m.Charge(sim.CostRouteLookup)
	r, rok := k.FIB.Lookup(backend)
	if !rok {
		k.countNoRoute(m)
		return true
	}
	if r.Local {
		meta := k.buildMeta(dev, newPkt)
		k.ipLocalDeliver(dev, frame, newPkt, meta, m, nil)
		return true
	}
	meta := k.buildMeta(dev, newPkt)
	k.ipForward(dev, frame, newPkt, r, meta, m, nil)
	return true
}

// IPVSActive reports whether any virtual service is configured.
func (k *Kernel) IPVSActive() bool {
	k.ipvs.mu.RLock()
	defer k.ipvs.mu.RUnlock()
	return len(k.ipvs.services) > 0
}

// IPVSLookupService reports whether (dst, port, proto) names a configured
// virtual service with at least one backend.
func (k *Kernel) IPVSLookupService(dst packet.Addr, port uint16, proto uint8) (IPVSService, bool) {
	k.ipvs.mu.RLock()
	defer k.ipvs.mu.RUnlock()
	svc, ok := k.ipvs.services[IPVSKey{VIP: dst, Port: port, Proto: proto}]
	if !ok || len(svc.Backends) == 0 {
		return IPVSService{}, false
	}
	return *svc, true
}

// IPVSLookupTest is a test hook: schedule a flow for (src, key) and return
// the chosen backend.
func (k *Kernel) IPVSLookupTest(src packet.Addr, key IPVSKey, srcPort uint16) packet.Addr {
	b, _ := k.IPVSLookup(src, key.VIP, key.Proto, srcPort, key.Port, true)
	return b
}
