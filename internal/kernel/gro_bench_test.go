package kernel

import (
	"testing"

	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// benchRig builds the forwarding router with both ports unplugged so meters
// see only router-side work, plus a same-flow TCP train of templates: batch
// in-order 64-byte segments with consecutive IPv4 IDs, the GRO best case.
func benchTrain(b *testing.B, batch int) (*Kernel, *netdev.Device, [][]byte) {
	r, r0, _, srcMAC, _ := newFwdRouter(b)
	src, dst := packet.MustAddr("10.1.0.1"), packet.AddrFrom4(10, 2, 0, 1)
	payload := make([]byte, 64)
	templates := make([][]byte, batch)
	for i := range templates {
		tcp := packet.TCP{SrcPort: 4000, DstPort: 80, Seq: uint32(i) * 64, Ack: 1, Flags: packet.TCPAck, Window: 512}
		templates[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: r0.MAC, Src: srcMAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, ID: uint16(i), Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
			tcp.Marshal(nil, src, dst, payload))
	}
	return r, r0, templates
}

// benchGRO pushes b.N frames of the same-flow train through the slow path in
// NAPI bursts, with GRO on or off. Each burst restores the templates into
// fixed backing storage; the timeout is 0 so every poll flushes clean.
func benchGRO(b *testing.B, gro bool, batch int) {
	_, r0, templates := benchTrain(b, batch)
	r0.SetGRO(gro)
	bufs := make([][]byte, batch)
	frames := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, len(templates[i]))
	}
	fill := func(n int) {
		for i := 0; i < n; i++ {
			copy(bufs[i], templates[i])
			frames[i] = bufs[i]
		}
	}
	var m sim.Meter
	fill(batch)
	r0.ReceiveBatch(frames[:batch], 0, &m) // warm the scratch pools
	m.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if rem := b.N - done; rem < n {
			n = rem
		}
		fill(n)
		r0.ReceiveBatch(frames[:n], 0, &m)
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Total)/float64(b.N), "modelcycles/op")
}

func BenchmarkGROSameFlowBatch32(b *testing.B)    { benchGRO(b, true, 32) }
func BenchmarkGROOffSameFlowBatch32(b *testing.B) { benchGRO(b, false, 32) }

// benchTCIngress measures the batched vs per-skb TC ingress runner with GRO
// off, isolating the classifier-entry amortization.
func benchTCIngress(b *testing.B, batched bool) {
	r, r0, templates := benchTrain(b, 32)
	r0.SetGRO(false)
	pass := func(s *SKB) TCAction { return TCOk }
	if batched {
		r.AttachTC(r0.Index, true, tcBatchFunc(pass))
	} else {
		r.AttachTC(r0.Index, true, tcFunc(pass))
	}
	bufs := make([][]byte, len(templates))
	frames := make([][]byte, len(templates))
	for i := range bufs {
		bufs[i] = make([]byte, len(templates[i]))
	}
	fill := func(n int) {
		for i := 0; i < n; i++ {
			copy(bufs[i], templates[i])
			frames[i] = bufs[i]
		}
	}
	var m sim.Meter
	fill(len(templates))
	r0.ReceiveBatch(frames, 0, &m)
	m.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := len(templates)
		if rem := b.N - done; rem < n {
			n = rem
		}
		fill(n)
		r0.ReceiveBatch(frames[:n], 0, &m)
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(m.Total)/float64(b.N), "modelcycles/op")
}

func BenchmarkTCIngressBatch32(b *testing.B)  { benchTCIngress(b, true) }
func BenchmarkTCIngressPerSkb32(b *testing.B) { benchTCIngress(b, false) }
