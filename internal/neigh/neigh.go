// Package neigh implements the kernel neighbour subsystem (the ARP cache):
// per-interface IPv4→MAC bindings with a reachability state machine and a
// queue of packets awaiting resolution.
//
// Like the FIB, this table is shared state: the slow path populates it from
// ARP traffic and the fast path's bpf_fib_lookup helper reads it to fill in
// the next hop's MAC — if the entry is missing or stale, the fast path must
// punt the packet to the slow path, which performs resolution.
package neigh

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// State is the reachability state of a neighbour entry.
type State int

// Neighbour states (a condensed version of the kernel's NUD_* set).
const (
	Incomplete State = iota + 1 // resolution in flight, no MAC yet
	Reachable                   // confirmed recently
	Stale                       // usable but due for revalidation
	Permanent                   // statically configured, never ages
)

func (s State) String() string {
	switch s {
	case Incomplete:
		return "INCOMPLETE"
	case Reachable:
		return "REACHABLE"
	case Stale:
		return "STALE"
	case Permanent:
		return "PERMANENT"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ReachableTime is how long a confirmed entry stays REACHABLE.
const ReachableTime = 30 * sim.Second

// MaxPending bounds the number of packets queued per unresolved neighbour
// (the kernel queues 3).
const MaxPending = 3

// Entry is one neighbour binding.
type Entry struct {
	IP        packet.Addr
	MAC       packet.HWAddr
	IfIndex   int
	State     State
	Confirmed sim.Time // last confirmation time
}

// Table is the neighbour table for one namespace. It is safe for concurrent
// use.
type Table struct {
	mu      sync.RWMutex
	entries map[packet.Addr]*Entry
	pending map[packet.Addr][][]byte // frames awaiting resolution
	gen     atomic.Uint64            // bumped on every binding change
}

// Gen reports the table generation, bumped whenever a binding is installed,
// rebound, or deleted. Flow caches that copied a resolved MAC validate
// against it (plus the entry's own expiry) before reusing the binding.
func (t *Table) Gen() uint64 { return t.gen.Load() }

// NewTable returns an empty neighbour table.
func NewTable() *Table {
	return &Table{
		entries: make(map[packet.Addr]*Entry),
		pending: make(map[packet.Addr][][]byte),
	}
}

// Lookup returns the entry for ip, applying aging against now: a REACHABLE
// entry past ReachableTime is downgraded to STALE first.
func (t *Table) Lookup(ip packet.Addr, now sim.Time) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[ip]
	if !ok {
		return Entry{}, false
	}
	if e.State == Reachable && now.Sub(e.Confirmed) > sim.Duration(ReachableTime) {
		e.State = Stale
	}
	return *e, true
}

// Resolved returns the usable MAC for ip if the entry is in a state the fast
// path may use (REACHABLE or PERMANENT). STALE entries are usable by the
// slow path but force the fast path to punt so revalidation happens.
func (t *Table) Resolved(ip packet.Addr, now sim.Time) (packet.HWAddr, bool) {
	e, ok := t.Lookup(ip, now)
	if !ok || (e.State != Reachable && e.State != Permanent) {
		return packet.HWAddr{}, false
	}
	return e.MAC, true
}

// NeverExpires is the expiry ResolvedFull reports for permanent entries.
const NeverExpires = sim.Time(math.MaxInt64)

// ResolvedFull is Resolved plus the virtual time at which the binding stops
// being usable by a fast path (REACHABLE entries age out after
// ReachableTime; PERMANENT entries never do). A flow cache storing the MAC
// must re-validate once now passes the expiry — the same lazy aging
// Resolved applies, enforced outside the table lock.
func (t *Table) ResolvedFull(ip packet.Addr, now sim.Time) (packet.HWAddr, sim.Time, bool) {
	e, ok := t.Lookup(ip, now)
	if !ok {
		return packet.HWAddr{}, 0, false
	}
	switch e.State {
	case Permanent:
		return e.MAC, NeverExpires, true
	case Reachable:
		return e.MAC, e.Confirmed.Add(sim.Duration(ReachableTime)), true
	default:
		return packet.HWAddr{}, 0, false
	}
}

// Confirm installs or refreshes a dynamic binding (called on ARP traffic).
// It returns any frames that were queued awaiting this resolution.
func (t *Table) Confirm(ip packet.Addr, mac packet.HWAddr, ifIndex int, now sim.Time) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[ip]
	if ok && e.State == Permanent {
		return nil
	}
	if !ok {
		e = &Entry{IP: ip}
		t.entries[ip] = e
	}
	e.MAC = mac
	e.IfIndex = ifIndex
	e.State = Reachable
	e.Confirmed = now
	t.gen.Add(1)
	queued := t.pending[ip]
	delete(t.pending, ip)
	return queued
}

// AddPermanent installs a static binding (ip neigh add ... nud permanent).
func (t *Table) AddPermanent(ip packet.Addr, mac packet.HWAddr, ifIndex int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[ip] = &Entry{IP: ip, MAC: mac, IfIndex: ifIndex, State: Permanent}
	delete(t.pending, ip)
	t.gen.Add(1)
}

// Delete removes a binding and drops any queued frames.
func (t *Table) Delete(ip packet.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[ip]
	delete(t.entries, ip)
	delete(t.pending, ip)
	if ok {
		t.gen.Add(1)
	}
	return ok
}

// StartResolution marks ip INCOMPLETE and queues frame for transmission once
// the MAC is learned. first reports whether an ARP request should be sent
// (true only for the first packet that triggers resolution; the kernel
// rate-limits retransmits, which the model elides). queued reports whether
// the frame made it onto the pending queue — past MaxPending the frame is
// discarded, the kernel's NEIGH_QUEUEFULL drop, and the caller must count
// it.
func (t *Table) StartResolution(ip packet.Addr, ifIndex int, frame []byte) (first, queued bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[ip]
	if !ok || e.State != Incomplete {
		t.entries[ip] = &Entry{IP: ip, IfIndex: ifIndex, State: Incomplete}
		t.gen.Add(1)
		first = true
	}
	q := t.pending[ip]
	if len(q) < MaxPending {
		t.pending[ip] = append(q, frame)
		queued = true
	}
	return first, queued
}

// Entries returns a snapshot of all bindings in unspecified order.
func (t *Table) Entries() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	return out
}

// Len reports the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}
