package core

import (
	"testing"
	"time"

	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/netlink"
	"linuxfp/internal/packet"
)

// Failure injection: the system's resilience claims. Acceleration must
// never be load-bearing — whatever happens to the controller or the
// devices, traffic keeps flowing through the slow path.

func TestControllerStopMidTrafficFailsOpen(t *testing.T) {
	w := newRouterWorld(t)
	fwdBase := w.dut.Stats().Forwarded
	c := New(w.dut, Options{})
	c.Start()
	c.Sync()

	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("accelerated traffic lost")
	}
	// Kill the controller mid-run: programs are detached, traffic must
	// keep flowing via the slow path.
	c.Stop()
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 2 {
		t.Fatal("traffic lost after controller stop")
	}
	if w.dut.Stats().Forwarded != fwdBase+1 {
		t.Fatal("slow path did not take over")
	}
	if ok, _ := w.in.XDPAttached(); ok {
		t.Fatal("stale program left attached after stop")
	}
}

func TestDeviceFlapUnderAcceleration(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	// Flap the egress: packets during the outage drop (as they must), and
	// traffic resumes cleanly when the link returns.
	w.dut.SetLinkUp("eth1", false)
	c.Sync()
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 0 {
		t.Fatal("delivered through a down link")
	}
	w.dut.SetLinkUp("eth1", true)
	c.Sync()
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("traffic did not resume after link recovery")
	}
	// The ingress side too: with eth0 down nothing enters; on recovery
	// the fast path is still (or again) in place.
	w.dut.SetLinkUp("eth0", false)
	c.Sync()
	w.dut.SetLinkUp("eth0", true)
	c.Sync()
	redirBefore := w.in.Stats().XDPRedirects
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 2 {
		t.Fatal("traffic lost after ingress flap")
	}
	if w.in.Stats().XDPRedirects != redirBefore+1 {
		t.Fatal("fast path not restored after flap")
	}
}

func TestNetlinkOverflowTriggersResync(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	// Flood the controller's subscription until messages are provably
	// lost, and slip a real configuration change into the storm.
	blocked := packet.MustPrefix("10.100.7.0/24")
	w.dut.AddRoute(fib.Route{Prefix: blocked, Gateway: packet.MustAddr("10.2.0.1"), OutIf: w.out.Index})
	for i := 0; i < 3000; i++ {
		w.dut.Bus.Publish(netlink.Message{Type: netlink.NewNeigh, Payload: netlink.NeighMsg{Index: i}})
	}
	// The route notification may or may not have survived the storm; the
	// overflow-detection path must recover it from a full dump either way.
	c.Sync()
	// The controller's view must include it (it reached the store either
	// directly or via the resync dump).
	g := c.Graph()
	if g == nil || len(g.Interfaces) == 0 {
		t.Fatal("controller lost its graph during the storm")
	}
	// Force one more change + Sync: no stale-state wedge.
	w.dut.SetSysctl("net.ipv4.ip_forward", "0")
	c.Sync()
	if len(c.Deployer().Deployed()) != 0 {
		t.Fatal("controller wedged after overflow: stale deployments")
	}
	w.dut.SetSysctl("net.ipv4.ip_forward", "1")
	c.Sync()
	if len(c.Deployer().Deployed()) == 0 {
		t.Fatal("controller did not recover after overflow")
	}
}

func TestAtomicSwapNoLossAcrossReconfigurations(t *testing.T) {
	// Drive traffic while the controller swaps data paths repeatedly:
	// every packet must be either delivered or counted as a fast-path
	// filter drop — none may vanish into a half-installed program.
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})
	blocked := packet.MustPrefix("10.100.40.0/24")

	delivered, dropped := 0, 0
	w.sendUDP(packet.MustAddr("10.100.5.5")) // prime
	delivered = w.captured

	for round := 0; round < 30; round++ {
		if round%2 == 0 {
			w.dut.IptAppend("FORWARD", netfilter.Rule{
				Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop,
			})
		} else {
			w.dut.IptFlush("FORWARD")
		}
		c.Sync()
		before := w.captured
		w.sendUDP(packet.MustAddr("10.100.5.5")) // never in the blocked range
		if w.captured != before+1 {
			t.Fatalf("round %d: allowed packet lost during reconfiguration", round)
		}
		delivered++
		_ = dropped
	}
	_ = delivered
}

func TestRedirectToVanishedDeviceDropsCleanly(t *testing.T) {
	// The fast path resolved an egress, then the device went away between
	// lookup and transmit — the packet must drop without crashing.
	w := newRouterWorld(t)
	startController(t, w.dut, Options{})
	// Simulate "vanished": unplug the egress wire; Transmit counts a drop.
	netdev.Disconnect(w.out)
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 0 {
		t.Fatal("delivered through a vanished device")
	}
	if w.out.Stats().TxDropped == 0 {
		t.Fatal("drop not accounted")
	}
}

func TestControllerRestartAfterStop(t *testing.T) {
	w := newRouterWorld(t)
	c := New(w.dut, Options{})
	c.Start()
	c.Sync()
	c.Stop()
	if ok, _ := w.in.XDPAttached(); ok {
		t.Fatal("programs survived stop")
	}
	// A stopped controller can be started again and re-accelerates.
	c.Start()
	t.Cleanup(c.Stop)
	c.Sync()
	if ok, _ := w.in.XDPAttached(); !ok {
		t.Fatal("restart did not re-deploy")
	}
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("traffic lost after restart")
	}
}

func TestControllerScalesToLargeConfigurations(t *testing.T) {
	// 40 interfaces, 1000 routes, 200 rules: a reconcile must stay
	// well-behaved (no quadratic blowups) and deploy everything.
	k := kernel.New("big")
	for i := 0; i < 40; i++ {
		name := "eth" + string(rune('A'+i/10)) + string(rune('0'+i%10))
		d := k.CreateDevice(name, netdev.Physical)
		d.SetUp(true)
		k.AddAddr(name, packet.Prefix{Addr: packet.AddrFrom4(10, byte(i), 0, 1), Bits: 24})
	}
	k.SetSysctl("net.ipv4.ip_forward", "1")
	out, _ := k.DeviceByName("ethA0")
	for i := 0; i < 1000; i++ {
		k.AddRoute(fib.Route{
			Prefix:  packet.Prefix{Addr: packet.AddrFrom4(172, 16+byte(i/256), byte(i%256), 0), Bits: 24},
			Gateway: packet.MustAddr("10.0.0.2"), OutIf: out.Index,
		})
	}
	for i := 0; i < 200; i++ {
		p := packet.Prefix{Addr: packet.AddrFrom4(203, 0, byte(i), 0), Bits: 24}
		k.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Src: &p}, Target: netfilter.VerdictDrop})
	}

	start := time.Now()
	c := startController(t, k, Options{})
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Fatalf("startup reconcile took %v", elapsed)
	}
	if got := len(c.Deployer().Deployed()); got != 40 {
		t.Fatalf("deployed %d interfaces, want 40", got)
	}
	// A single incremental change reconciles quickly too.
	start = time.Now()
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("198.18.0.0/16"), Gateway: packet.MustAddr("10.0.0.2"), OutIf: out.Index})
	c.Sync()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("incremental reconcile took %v", elapsed)
	}
}
