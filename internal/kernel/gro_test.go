package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// groRig is a forwarding router (newFwdRouter) with a sink kernel hanging off
// eth1 so egress bytes can be captured. The sink has no addresses or routes:
// it only taps.
type groRig struct {
	r        *Kernel
	r0, r1   *netdev.Device
	srcMAC   packet.HWAddr
	sink     *Kernel
	captured [][]byte
}

func newGroRig(t testing.TB) *groRig {
	g := &groRig{}
	g.r, g.r0, g.r1, g.srcMAC, _ = newFwdRouter(t)
	g.sink = New("sink")
	sd := g.sink.CreateDevice("eth0", netdev.Physical)
	sd.SetUp(true)
	netdev.Connect(g.r1, sd)
	sd.Tap = func(f []byte) { g.captured = append(g.captured, append([]byte(nil), f...)) }
	return g
}

// tcpSeg builds one TCP segment addressed at the router for forwarding.
func (g *groRig) tcpSeg(dst packet.Addr, sport, dport uint16, seq uint32, id uint16, flags packet.TCPFlags, payload []byte) []byte {
	src := packet.MustAddr("10.1.0.1")
	tcp := packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: 7777, Flags: flags, Window: 512}
	return packet.BuildIPv4(
		packet.Ethernet{Dst: g.r0.MAC, Src: g.srcMAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, ID: id, Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
		tcp.Marshal(nil, src, dst, payload),
	)
}

// poll delivers one NAPI burst into the router.
func (g *groRig) poll(frames ...[]byte) {
	var m sim.Meter
	g.r0.ReceiveBatch(frames, 0, &m)
}

// seg shorthand: an in-order data segment of the canonical test flow.
func (g *groRig) seg(seq uint32, id uint16, flags packet.TCPFlags, payload []byte) []byte {
	return g.tcpSeg(packet.AddrFrom4(10, 2, 0, 1), 4000, 80, seq, id, flags, payload)
}

// flowKeyOf buckets a captured frame by its 5-tuple so worlds with different
// cross-flow emission order (GRO holds flush at poll end) compare per flow.
func flowKeyOf(f []byte) string {
	et, l3 := packet.EtherTypeOf(f)
	if et != packet.EtherTypeIPv4 {
		return fmt.Sprintf("l2:%x", f)
	}
	proto := packet.IPv4Proto(f, l3)
	sport, dport := packet.L4Ports(f, l3+packet.IPv4MinLen)
	return fmt.Sprintf("%d|%v|%v|%d|%d", proto, packet.IPv4Src(f, l3), packet.IPv4Dst(f, l3), sport, dport)
}

// normMAC zeroes both MAC fields: device MACs are globally allocated, so two
// otherwise-identical rigs stamp different addresses.
func normMAC(f []byte) []byte {
	g := append([]byte(nil), f...)
	for i := 0; i < 12 && i < len(g); i++ {
		g[i] = 0
	}
	return g
}

// byFlow groups captured frames per flow in arrival order, MAC-normalized.
func byFlow(frames [][]byte) map[string][][]byte {
	out := make(map[string][][]byte)
	for _, f := range frames {
		k := flowKeyOf(f)
		out[k] = append(out[k], normMAC(f))
	}
	return out
}

// groFlow is per-flow generator state for the randomized workload.
type groFlow struct {
	dst   packet.Addr
	sport uint16
	dport uint16
	seq   uint32
	id    uint16
}

// groWorkload materializes a deterministic mixed workload for one rig: four
// TCP flows with in-order data trains, sprinkled with PSH, pure ACKs, FINs,
// out-of-order segments, corrupt checksums, short tails, and UDP — every
// frame class the GRO rules must route correctly.
func groWorkload(g *groRig, n int, seed int64, dports []uint16) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	if dports == nil {
		dports = []uint16{80, 80, 80, 80}
	}
	flows := make([]*groFlow, len(dports))
	for i := range flows {
		flows[i] = &groFlow{
			dst:   packet.AddrFrom4(10, 2, 0, byte(i%16+1)),
			sport: uint16(4000 + i),
			dport: dports[i],
			seq:   uint32(1000 * (i + 1)),
			id:    uint16(rng.Intn(60000)),
		}
	}
	src := packet.MustAddr("10.1.0.1")
	pl := func(size int) []byte {
		b := make([]byte, size)
		rng.Read(b)
		return b
	}
	frames := make([][]byte, 0, n)
	for len(frames) < n {
		f := flows[rng.Intn(len(flows))]
		switch rng.Intn(12) {
		case 0: // UDP on the same hosts: never merges
			u := packet.UDP{SrcPort: f.sport, DstPort: f.dport}
			frames = append(frames, packet.BuildIPv4(
				packet.Ethernet{Dst: g.r0.MAC, Src: g.srcMAC, EtherType: packet.EtherTypeIPv4},
				packet.IPv4{TTL: 64, ID: f.id, Proto: packet.ProtoUDP, Src: src, Dst: f.dst},
				u.Marshal(nil, src, f.dst, pl(18))))
			f.id++
		case 1: // pure ACK: flushes the flow's hold, passes through
			frames = append(frames, g.tcpSeg(f.dst, f.sport, f.dport, f.seq, f.id, packet.TCPAck, nil))
			f.id++
		case 2: // corrupt TCP checksum: must travel untouched
			fr := g.tcpSeg(f.dst, f.sport, f.dport, f.seq, f.id, packet.TCPAck, pl(64))
			fr[len(fr)-1] ^= 0xff
			frames = append(frames, fr)
			f.seq += 64
			f.id++
		case 3: // out-of-order: an old sequence number reappears
			frames = append(frames, g.tcpSeg(f.dst, f.sport, f.dport, f.seq-640, f.id+500, packet.TCPAck, pl(64)))
		case 4: // FIN: never merged, flushes held data first
			frames = append(frames, g.tcpSeg(f.dst, f.sport, f.dport, f.seq, f.id, packet.TCPAck|packet.TCPFin, nil))
			f.id++
		case 5: // short tail: merges then ends the supersegment
			p := pl(24)
			frames = append(frames, g.tcpSeg(f.dst, f.sport, f.dport, f.seq, f.id, packet.TCPAck, p))
			f.seq += uint32(len(p))
			f.id++
		default: // in-order 64-byte data segment, occasionally PSH
			fl := packet.TCPAck
			if rng.Intn(6) == 0 {
				fl |= packet.TCPPsh
			}
			frames = append(frames, g.tcpSeg(f.dst, f.sport, f.dport, f.seq, f.id, fl, pl(64)))
			f.seq += 64
			f.id++
		}
	}
	return frames
}

// TestGROForwardEquivalence is the tentpole's central property: with GRO on,
// the router's egress must be byte-identical per flow to the GRO-off world —
// coalescing and resegmentation must be invisible on the wire — and the
// counters must reconcile exactly: every coalesced frame moves from the
// Forwarded column to GROCoalesced, nothing else changes.
func TestGROForwardEquivalence(t *testing.T) {
	const frames = 900 // spans many polls at several batch sizes

	for _, batch := range []int{1, 7, 32, 64} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			on := newGroRig(t)
			off := newGroRig(t)
			off.r0.SetGRO(false)

			wOn := groWorkload(on, frames, 42, nil)
			wOff := groWorkload(off, frames, 42, nil)
			for i := 0; i < frames; i += batch {
				end := i + batch
				if end > frames {
					end = frames
				}
				on.poll(wOn[i:end]...)
				off.poll(wOff[i:end]...)
			}

			if len(on.captured) == 0 {
				t.Fatal("nothing forwarded; test is vacuous")
			}
			if len(on.captured) != len(off.captured) {
				t.Fatalf("captured %d frames with GRO, %d without", len(on.captured), len(off.captured))
			}
			fOn, fOff := byFlow(on.captured), byFlow(off.captured)
			for key, seq := range fOff {
				oseq := fOn[key]
				if len(oseq) != len(seq) {
					t.Fatalf("flow %s: %d frames with GRO, %d without", key, len(oseq), len(seq))
				}
				for i := range seq {
					if !bytes.Equal(oseq[i], seq[i]) {
						t.Fatalf("flow %s frame %d differs:\n gro %x\n off %x", key, i, oseq[i], seq[i])
					}
				}
			}

			sOn, sOff := on.r.Stats(), off.r.Stats()
			if batch > 1 && (sOn.GROCoalesced == 0 || sOn.GROSupersegs == 0) {
				t.Fatal("GRO never coalesced; equivalence is vacuous")
			}
			if sOn.Forwarded+sOn.GROCoalesced != sOff.Forwarded {
				t.Errorf("forwarded+coalesced = %d+%d, want %d",
					sOn.Forwarded, sOn.GROCoalesced, sOff.Forwarded)
			}
			if sOn.Dropped != sOff.Dropped || sOn.Delivered != sOff.Delivered {
				t.Errorf("dropped/delivered diverged: %d/%d vs %d/%d",
					sOn.Dropped, sOn.Delivered, sOff.Dropped, sOff.Delivered)
			}
			if txOn, txOff := on.r1.Stats().TxPackets, off.r1.Stats().TxPackets; txOn != txOff {
				t.Errorf("egress TxPackets %d with GRO, %d without", txOn, txOff)
			}
		})
	}
}

// TestGROLocalDeliveryEquivalence: a coalesced flow addressed at the router
// itself arrives as one socket message carrying the merged payload; the byte
// stream the application reads is identical either way, and the delivered
// counter reconciles through GROCoalesced.
func TestGROLocalDeliveryEquivalence(t *testing.T) {
	run := func(gro bool) (stream []byte, msgs int, st Stats) {
		g := newGroRig(t)
		g.r0.SetGRO(gro)
		g.r.RegisterSocket(packet.ProtoTCP, 5000, func(_ *Kernel, msg SocketMsg) {
			stream = append(stream, msg.Payload...)
			msgs++
		})
		local := packet.MustAddr("10.1.0.254")
		var frames [][]byte
		seq, id := uint32(100), uint16(50)
		for i := 0; i < 5; i++ {
			fl := packet.TCPAck
			if i == 4 {
				fl |= packet.TCPPsh
			}
			p := bytes.Repeat([]byte{byte('a' + i)}, 32)
			frames = append(frames, g.tcpSeg(local, 4000, 5000, seq, id, fl, p))
			seq += 32
			id++
		}
		g.poll(frames...)
		return stream, msgs, g.r.Stats()
	}

	onStream, onMsgs, onSt := run(true)
	offStream, offMsgs, offSt := run(false)
	if !bytes.Equal(onStream, offStream) {
		t.Fatalf("payload stream differs:\n gro %q\n off %q", onStream, offStream)
	}
	if onMsgs != 1 || offMsgs != 5 {
		t.Errorf("messages = %d gro / %d off, want 1 / 5", onMsgs, offMsgs)
	}
	if onSt.Delivered+onSt.GROCoalesced != offSt.Delivered {
		t.Errorf("delivered+coalesced = %d+%d, want %d", onSt.Delivered, onSt.GROCoalesced, offSt.Delivered)
	}
}

// TestGROMergeRules pins each flush rule individually.
func TestGROMergeRules(t *testing.T) {
	pl := func(size int, b byte) []byte { return bytes.Repeat([]byte{b}, size) }

	t.Run("psh ends supersegment", func(t *testing.T) {
		g := newGroRig(t)
		g.poll(
			g.seg(100, 1, packet.TCPAck, pl(64, 'a')),
			g.seg(164, 2, packet.TCPAck, pl(64, 'b')),
			g.seg(228, 3, packet.TCPAck|packet.TCPPsh, pl(64, 'c')),
		)
		st := g.r.Stats()
		if st.GROCoalesced != 2 || st.GROSupersegs != 1 || st.GROFlushes != 1 {
			t.Fatalf("coalesced/supersegs/flushes = %d/%d/%d, want 2/1/1",
				st.GROCoalesced, st.GROSupersegs, st.GROFlushes)
		}
		if len(g.captured) != 3 {
			t.Fatalf("captured %d segments, want 3", len(g.captured))
		}
		for i, f := range g.captured {
			l4 := packet.EthHdrLen + packet.IPv4MinLen
			psh := packet.TCPRawFlags(f, l4)&packet.TCPPsh != 0
			if want := i == 2; psh != want {
				t.Errorf("segment %d PSH = %v, want %v", i, psh, want)
			}
		}
	})

	t.Run("seventeen segment cap", func(t *testing.T) {
		g := newGroRig(t)
		var frames [][]byte
		for i := 0; i < 20; i++ {
			frames = append(frames, g.seg(100+uint32(i)*64, uint16(1+i), packet.TCPAck, pl(64, byte('a'+i))))
		}
		g.poll(frames...)
		st := g.r.Stats()
		// 17 segments fill the first hold (16 merges); the remaining 3 form a
		// second supersegment flushed at poll end.
		if st.GROCoalesced != 18 || st.GROSupersegs != 2 {
			t.Fatalf("coalesced/supersegs = %d/%d, want 18/2", st.GROCoalesced, st.GROSupersegs)
		}
		if len(g.captured) != 20 {
			t.Fatalf("captured %d segments, want 20", len(g.captured))
		}
		l3, l4 := packet.EthHdrLen, packet.EthHdrLen+packet.IPv4MinLen
		for i, f := range g.captured {
			if got := packet.TCPSeq(f, l4); got != 100+uint32(i)*64 {
				t.Errorf("segment %d seq = %d, want %d", i, got, 100+uint32(i)*64)
			}
			if got := packet.IPv4ID(f, l3); got != uint16(1+i) {
				t.Errorf("segment %d id = %d, want %d", i, got, 1+i)
			}
			if packet.Checksum(f[l3:l4]) != 0 {
				t.Errorf("segment %d IP checksum does not verify", i)
			}
			if packet.ChecksumWithPseudo(packet.IPv4Src(f, l3), packet.IPv4Dst(f, l3), packet.ProtoTCP, f[l4:]) != 0 {
				t.Errorf("segment %d TCP checksum does not verify", i)
			}
		}
	})

	t.Run("fin flushes held data first", func(t *testing.T) {
		g := newGroRig(t)
		g.poll(
			g.seg(100, 1, packet.TCPAck, pl(64, 'a')),
			g.seg(164, 2, packet.TCPAck, pl(64, 'b')),
			g.tcpSeg(packet.AddrFrom4(10, 2, 0, 1), 4000, 80, 228, 3, packet.TCPAck|packet.TCPFin, nil),
		)
		if len(g.captured) != 3 {
			t.Fatalf("captured %d frames, want 3", len(g.captured))
		}
		l4 := packet.EthHdrLen + packet.IPv4MinLen
		// Held data must precede the FIN on the wire.
		if packet.TCPRawFlags(g.captured[2], l4)&packet.TCPFin == 0 {
			t.Error("FIN did not come out last")
		}
		if g.r.Stats().GROSupersegs != 1 {
			t.Errorf("supersegs = %d, want 1", g.r.Stats().GROSupersegs)
		}
	})

	t.Run("ack change never merges", func(t *testing.T) {
		g := newGroRig(t)
		a := g.seg(100, 1, packet.TCPAck, pl(64, 'a'))
		b := g.seg(164, 2, packet.TCPAck, pl(64, 'b'))
		// Bump the ack number on b and fix its checksum so it stays valid.
		l3, l4 := packet.EthHdrLen, packet.EthHdrLen+packet.IPv4MinLen
		b[l4+11]++
		packet.RecomputeTCPChecksum(b, l3, l4)
		g.poll(a, b)
		st := g.r.Stats()
		if st.GROCoalesced != 0 || st.GROSupersegs != 0 {
			t.Fatalf("coalesced/supersegs = %d/%d, want 0/0", st.GROCoalesced, st.GROSupersegs)
		}
		if len(g.captured) != 2 {
			t.Fatalf("captured %d frames, want 2", len(g.captured))
		}
	})

	t.Run("out of order flushes and restarts", func(t *testing.T) {
		g := newGroRig(t)
		g.poll(
			g.seg(100, 1, packet.TCPAck, pl(64, 'a')),
			g.seg(164, 2, packet.TCPAck, pl(64, 'b')),
			g.seg(100, 10, packet.TCPAck, pl(64, 'c')), // retransmit: wrong seq
			g.seg(164, 11, packet.TCPAck, pl(64, 'd')),
		)
		st := g.r.Stats()
		// First pair coalesced and flushed by the mismatch; second pair
		// coalesced and flushed at poll end.
		if st.GROCoalesced != 2 || st.GROSupersegs != 2 {
			t.Fatalf("coalesced/supersegs = %d/%d, want 2/2", st.GROCoalesced, st.GROSupersegs)
		}
		if len(g.captured) != 4 {
			t.Fatalf("captured %d frames, want 4", len(g.captured))
		}
	})

	t.Run("short tail ends supersegment", func(t *testing.T) {
		g := newGroRig(t)
		g.poll(
			g.seg(100, 1, packet.TCPAck, pl(64, 'a')),
			g.seg(164, 2, packet.TCPAck, pl(24, 'b')),
			g.seg(188, 3, packet.TCPAck, pl(64, 'c')), // new hold after the tail
		)
		st := g.r.Stats()
		if st.GROCoalesced != 1 || st.GROSupersegs != 1 {
			t.Fatalf("coalesced/supersegs = %d/%d, want 1/1", st.GROCoalesced, st.GROSupersegs)
		}
	})

	t.Run("oversized segment never appends", func(t *testing.T) {
		g := newGroRig(t)
		g.poll(
			g.seg(100, 1, packet.TCPAck, pl(24, 'a')),
			g.seg(124, 2, packet.TCPAck, pl(64, 'b')), // larger than gso size
		)
		st := g.r.Stats()
		if st.GROCoalesced != 0 || st.GROSupersegs != 0 {
			t.Fatalf("coalesced/supersegs = %d/%d, want 0/0", st.GROCoalesced, st.GROSupersegs)
		}
	})
}

// TestGROConservationParity mirrors the fpm batch counter-parity test through
// the GRO layer: for every burst size 1..200 the frames put in must equal
// forwarded + delivered + dropped + coalesced, and every one must reappear on
// the egress wire.
func TestGROConservationParity(t *testing.T) {
	g := newGroRig(t)
	rng := rand.New(rand.NewSource(9))
	seq, id := uint32(5000), uint16(1)
	total := uint64(0)

	for n := 1; n <= 200; n++ {
		before := g.r.Stats()
		txBefore := g.r1.Stats().TxPackets
		var frames [][]byte
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				u := packet.UDP{SrcPort: 4000, DstPort: 2000}
				src, dst := packet.MustAddr("10.1.0.1"), packet.AddrFrom4(10, 2, 0, 2)
				frames = append(frames, packet.BuildIPv4(
					packet.Ethernet{Dst: g.r0.MAC, Src: g.srcMAC, EtherType: packet.EtherTypeIPv4},
					packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
					u.Marshal(nil, src, dst, make([]byte, 18))))
				continue
			}
			fl := packet.TCPAck
			if rng.Intn(7) == 0 {
				fl |= packet.TCPPsh
			}
			frames = append(frames, g.seg(seq, id, fl, bytes.Repeat([]byte{'x'}, 64)))
			seq += 64
			id++
		}
		g.poll(frames...)
		total += uint64(n)

		st := g.r.Stats()
		in := uint64(n)
		out := (st.Forwarded - before.Forwarded) + (st.Delivered - before.Delivered) +
			(st.Dropped - before.Dropped) + (st.GROCoalesced - before.GROCoalesced)
		if out != in {
			t.Fatalf("n=%d: %d frames in, %d accounted (fwd %d del %d drop %d coal %d)",
				n, in, out,
				st.Forwarded-before.Forwarded, st.Delivered-before.Delivered,
				st.Dropped-before.Dropped, st.GROCoalesced-before.GROCoalesced)
		}
		if tx := g.r1.Stats().TxPackets - txBefore; tx != in {
			t.Fatalf("n=%d: %d frames in, %d on the egress wire", n, in, tx)
		}
	}
	if g.r.Stats().GROCoalesced == 0 {
		t.Fatal("workload never coalesced; parity is vacuous")
	}
	if rx := g.r0.Stats().RxPackets; rx != total {
		t.Fatalf("ingress rx %d, want %d", rx, total)
	}
}

// TestGROFlushTimeout: with net.core.gro_flush_timeout set, holds ride across
// polls and flush only once their virtual-time deadline passes — held bytes
// preceding the triggering burst on the wire.
func TestGROFlushTimeout(t *testing.T) {
	g := newGroRig(t)
	var now sim.Time
	g.r.SetClock(func() sim.Time { return now })
	g.r.SetSysctl("net.core.gro_flush_timeout", "1000000") // 1ms of virtual time

	g.poll(
		g.seg(100, 1, packet.TCPAck, bytes.Repeat([]byte{'a'}, 64)),
		g.seg(164, 2, packet.TCPAck, bytes.Repeat([]byte{'b'}, 64)),
	)
	if len(g.captured) != 0 {
		t.Fatalf("hold flushed before timeout: %d frames", len(g.captured))
	}

	// Still inside the window: the next poll merges into the riding hold.
	now = 500_000
	g.poll(g.seg(228, 3, packet.TCPAck, bytes.Repeat([]byte{'c'}, 64)))
	if len(g.captured) != 0 {
		t.Fatalf("hold flushed inside timeout window: %d frames", len(g.captured))
	}

	// Past the deadline: an unrelated frame's poll flushes the hold first.
	now = 2_000_000
	u := packet.UDP{SrcPort: 1, DstPort: 2}
	src, dst := packet.MustAddr("10.1.0.1"), packet.AddrFrom4(10, 2, 0, 2)
	g.poll(packet.BuildIPv4(
		packet.Ethernet{Dst: g.r0.MAC, Src: g.srcMAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		u.Marshal(nil, src, dst, nil)))
	if len(g.captured) != 4 {
		t.Fatalf("captured %d frames after expiry, want 4", len(g.captured))
	}
	// The three TCP segments precede the UDP frame that triggered the flush.
	l3 := packet.EthHdrLen
	for i := 0; i < 3; i++ {
		if packet.IPv4Proto(g.captured[i], l3) != packet.ProtoTCP {
			t.Errorf("frame %d is not the held TCP data", i)
		}
	}
	if packet.IPv4Proto(g.captured[3], l3) != packet.ProtoUDP {
		t.Error("triggering UDP frame did not come out last")
	}
	if st := g.r.Stats(); st.GROSupersegs != 1 || st.GROCoalesced != 2 {
		t.Errorf("supersegs/coalesced = %d/%d, want 1/2", st.GROSupersegs, st.GROCoalesced)
	}
}

// TestGROFlushAllDrainsHolds: GROFlushAll (the napi_disable analog) pushes
// riding holds into the stack so no segment is ever stranded.
func TestGROFlushAllDrainsHolds(t *testing.T) {
	g := newGroRig(t)
	g.r.SetSysctl("net.core.gro_flush_timeout", "1000000000")
	g.poll(
		g.seg(100, 1, packet.TCPAck, bytes.Repeat([]byte{'a'}, 64)),
		g.seg(164, 2, packet.TCPAck, bytes.Repeat([]byte{'b'}, 64)),
	)
	if len(g.captured) != 0 {
		t.Fatalf("hold flushed early: %d frames", len(g.captured))
	}
	var m sim.Meter
	g.r.GROFlushAll(nil, &m)
	if len(g.captured) != 2 {
		t.Fatalf("captured %d frames after GROFlushAll, want 2", len(g.captured))
	}
	if st := g.r.Stats(); st.Forwarded+st.GROCoalesced != 2 {
		t.Errorf("forwarded+coalesced = %d+%d, want 2", st.Forwarded, st.GROCoalesced)
	}
}

// TestGRORxWorkerDrainOnClose: tearing down per-queue workers flushes each
// queue's GRO context (the drain in the worker loop), so frames held under a
// long gro_flush_timeout still arrive.
func TestGRORxWorkerDrainOnClose(t *testing.T) {
	g := newGroRig(t)
	g.r.SetSysctl("net.core.gro_flush_timeout", "1000000000")
	pool := g.r.StartRxQueues(g.r0, 4, 64)
	const frames = 256
	seq, id := uint32(100), uint16(1)
	for i := 0; i < frames; i++ {
		pool.Steer(g.seg(seq, id, packet.TCPAck, bytes.Repeat([]byte{'x'}, 64)))
		seq += 64
		id++
	}
	pool.Close()
	st := g.r.Stats()
	if got := st.Forwarded + st.GROCoalesced; got != frames {
		t.Fatalf("forwarded+coalesced = %d, want %d", got, frames)
	}
	if len(g.captured) != frames {
		t.Fatalf("captured %d frames, want %d", len(g.captured), frames)
	}
}

// tcBatchFunc adapts a verdict function into a TCBatchHandler.
type tcBatchFunc func(*SKB) TCAction

func (f tcBatchFunc) HandleTC(s *SKB) TCAction { return f(s) }
func (f tcBatchFunc) HandleTCBatch(skbs []*SKB, acts []TCAction) {
	for i, s := range skbs {
		acts[i] = f(s)
	}
}

// TestTCBatchEquivalence: the batched TC ingress runner must be observably
// identical to the per-skb one — same verdicts, same bytes on the wire, same
// counters — across pass, drop, and redirect verdicts, with GRO both on and
// off. Only cycle totals may differ.
func TestTCBatchEquivalence(t *testing.T) {
	verdict := func(r1Index int) func(*SKB) TCAction {
		return func(s *SKB) TCAction {
			if s.Pkt == nil || s.Pkt.IPv4 == nil || len(s.Pkt.Payload) < 4 {
				return TCOk
			}
			_, dport := packet.L4Ports(s.Pkt.Payload, 0)
			switch dport {
			case 9999:
				return TCShot
			case 8888:
				s.RedirectTo = r1Index
				return TCRedirect
			}
			return TCOk
		}
	}
	dports := []uint16{80, 80, 80, 8888, 9999}

	for _, gro := range []bool{true, false} {
		t.Run(fmt.Sprintf("gro=%v", gro), func(t *testing.T) {
			perSkb := newGroRig(t)
			perSkb.r0.SetGRO(gro)
			perSkb.r.AttachTC(perSkb.r0.Index, true, tcFunc(verdict(perSkb.r1.Index)))

			batched := newGroRig(t)
			batched.r0.SetGRO(gro)
			batched.r.AttachTC(batched.r0.Index, true, tcBatchFunc(verdict(batched.r1.Index)))

			const frames = 600
			wA := groWorkload(perSkb, frames, 11, dports)
			wB := groWorkload(batched, frames, 11, dports)
			for i := 0; i < frames; i += 32 {
				end := i + 32
				if end > frames {
					end = frames
				}
				perSkb.poll(wA[i:end]...)
				batched.poll(wB[i:end]...)
			}

			if len(perSkb.captured) == 0 {
				t.Fatal("nothing reached the sink; test is vacuous")
			}
			if len(perSkb.captured) != len(batched.captured) {
				t.Fatalf("captured %d per-skb, %d batched", len(perSkb.captured), len(batched.captured))
			}
			fA, fB := byFlow(perSkb.captured), byFlow(batched.captured)
			for key, seqA := range fA {
				seqB := fB[key]
				if len(seqA) != len(seqB) {
					t.Fatalf("flow %s: %d per-skb, %d batched", key, len(seqA), len(seqB))
				}
				for i := range seqA {
					if !bytes.Equal(seqA[i], seqB[i]) {
						t.Fatalf("flow %s frame %d differs:\n per-skb %x\n batched %x", key, i, seqA[i], seqB[i])
					}
				}
			}
			sA, sB := perSkb.r.Stats(), batched.r.Stats()
			if sA != sB {
				t.Errorf("stats diverged:\n per-skb %+v\n batched %+v", sA, sB)
			}
			if sA.Dropped == 0 {
				t.Error("no TC drops exercised")
			}
			if txA, txB := perSkb.r1.Stats().TxPackets, batched.r1.Stats().TxPackets; txA != txB {
				t.Errorf("egress TxPackets %d per-skb, %d batched", txA, txB)
			}
		})
	}
}

// TestGROToggleRaceHammer drives 8 RX queues of same-flow TCP trains while
// other goroutines toggle device GRO, flip gro_flush_timeout, force
// GROFlushAll, and churn routes — the exact interleavings where a hold could
// be stranded or double-flushed. Run under -race this also proves the GRO
// context locking. The conservation identity at the end proves no frame was
// lost or double-counted.
func TestGROToggleRaceHammer(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)

	const nflows = 64
	const perFlow = 256

	done := make(chan struct{})
	var mut sync.WaitGroup
	mutate := func(fn func(i int)) {
		mut.Add(1)
		go func() {
			defer mut.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	mutate(func(i int) { // ethtool -K gro off/on under load
		r0.SetGRO(false)
		var m sim.Meter
		m.CPU = 63 // a shard no worker uses: exercises cross-shard flush
		r.GROFlushAll(r0, &m)
		r0.SetGRO(true)
	})
	mutate(func(i int) { // sysctl flips between flush-every-poll and riding holds
		r.SetSysctl("net.core.gro_flush_timeout", "1000000")
		r.SetSysctl("net.core.gro_flush_timeout", "0")
	})
	churn := packet.MustPrefix("10.50.0.0/16")
	mutate(func(i int) { // FIB churn invalidating memoized state
		r.AddRoute(fib.Route{Prefix: churn, Gateway: packet.MustAddr("10.2.0.1"), OutIf: 2})
		r.DelRoute(churn)
	})
	never := packet.MustPrefix("10.99.0.0/24")
	mutate(func(i int) { // netfilter churn that matches nothing
		r.IptAppend("FORWARD", netfilter.Rule{
			Match: netfilter.Match{Dst: &never}, Target: netfilter.VerdictDrop,
		})
		r.IptFlush("FORWARD")
	})

	pool := r.StartRxQueues(r0, 8, 64)
	src := packet.MustAddr("10.1.0.1")
	seqs := make([]uint32, nflows)
	ids := make([]uint16, nflows)
	payload := bytes.Repeat([]byte{'h'}, 64)
	for i := 0; i < perFlow; i++ {
		for f := 0; f < nflows; f++ {
			dst := packet.AddrFrom4(10, 2, 0, byte(f%16+1))
			tcp := packet.TCP{SrcPort: uint16(4000 + f), DstPort: 80, Seq: seqs[f], Ack: 1, Flags: packet.TCPAck, Window: 512}
			pool.Steer(packet.BuildIPv4(
				packet.Ethernet{Dst: r0.MAC, Src: srcMAC, EtherType: packet.EtherTypeIPv4},
				packet.IPv4{TTL: 64, ID: ids[f], Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
				tcp.Marshal(nil, src, dst, payload)))
			seqs[f] += 64
			ids[f]++
		}
	}
	pool.Close() // workers drain their GRO shards on exit
	close(done)
	mut.Wait()
	// Anything a mutator's flush raced into a shard no worker drained.
	var m sim.Meter
	r.GROFlushAll(nil, &m)

	const total = nflows * perFlow
	st := r.Stats()
	got := st.Forwarded + st.GROCoalesced + st.Dropped + st.Delivered
	if got != total {
		t.Fatalf("conservation: %d frames in, %d accounted (fwd %d coal %d drop %d del %d)",
			total, got, st.Forwarded, st.GROCoalesced, st.Dropped, st.Delivered)
	}
	if st.Dropped != 0 {
		t.Errorf("hammer dropped %d frames", st.Dropped)
	}
}
