package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/netlink"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// routerWorld: src -- dut -- sink with 50 routed prefixes, forwarding on.
type routerWorld struct {
	src, dut, sink *kernel.Kernel
	srcDev, in     *netdev.Device
	out, sinkDev   *netdev.Device
	captured       int
}

func newRouterWorld(t *testing.T) *routerWorld {
	t.Helper()
	w := &routerWorld{src: kernel.New("src"), dut: kernel.New("dut"), sink: kernel.New("sink")}
	w.srcDev = w.src.CreateDevice("eth0", netdev.Physical)
	w.in = w.dut.CreateDevice("eth0", netdev.Physical)
	w.out = w.dut.CreateDevice("eth1", netdev.Physical)
	w.sinkDev = w.sink.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(w.srcDev, w.in)
	netdev.Connect(w.out, w.sinkDev)
	for _, d := range []*netdev.Device{w.srcDev, w.in, w.out, w.sinkDev} {
		d.SetUp(true)
	}
	w.src.AddAddr("eth0", packet.MustPrefix("10.1.0.1/24"))
	w.dut.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	w.dut.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24"))
	w.sink.AddAddr("eth0", packet.MustPrefix("10.2.0.1/24"))
	w.dut.SetSysctl("net.ipv4.ip_forward", "1")
	w.src.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.1.0.254"), OutIf: w.srcDev.Index})
	for i := 0; i < 50; i++ {
		w.dut.AddRoute(fib.Route{
			Prefix:  packet.Prefix{Addr: packet.AddrFrom4(10, 100+byte(i), 0, 0), Bits: 16},
			Gateway: packet.MustAddr("10.2.0.1"), OutIf: w.out.Index,
		})
	}
	w.sinkDev.Tap = func([]byte) { w.captured++ }
	// Resolve neighbours.
	var m sim.Meter
	w.src.Ping(packet.MustAddr("10.100.0.1"), 1, 1, nil, &m)
	w.captured = 0
	return w
}

func (w *routerWorld) sendUDP(dst packet.Addr) {
	gwMAC, _ := w.src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	srcIP := packet.MustAddr("10.1.0.1")
	u := packet.UDP{SrcPort: 1000, DstPort: 2000}
	frame := packet.BuildIPv4(
		packet.Ethernet{Dst: gwMAC, Src: w.srcDev.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: srcIP, Dst: dst},
		u.Marshal(nil, srcIP, dst, nil),
	)
	var m sim.Meter
	w.srcDev.Transmit(frame, &m)
}

// startController starts a controller and syncs it once.
func startController(t *testing.T, k *kernel.Kernel, opts Options) *Controller {
	t.Helper()
	c := New(k, opts)
	c.Start()
	t.Cleanup(c.Stop)
	c.Sync()
	return c
}

func TestControllerAcceleratesRouterTransparently(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	graph := c.Graph()
	if graph == nil {
		t.Fatal("no graph built")
	}
	// Both DUT interfaces carry a router FPM at XDP.
	for _, name := range []string{"eth0", "eth1"} {
		ig, ok := graph.Interfaces[name]
		if !ok {
			t.Fatalf("interface %s not in graph: %s", name, graph)
		}
		if ig.Hook != "xdp" {
			t.Errorf("%s hook %q, want xdp", name, ig.Hook)
		}
		if keys := ig.ModuleKeys(); len(keys) != 1 || keys[0] != FPMRouter {
			t.Errorf("%s modules %v", name, keys)
		}
	}
	if ok, _ := w.in.XDPAttached(); !ok {
		t.Fatal("no XDP program attached by controller")
	}
	// Traffic now takes the fast path.
	redirBefore := w.in.Stats().XDPRedirects
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("packet lost under acceleration")
	}
	if w.in.Stats().XDPRedirects != redirBefore+1 {
		t.Fatal("packet did not use the fast path")
	}
}

func TestControllerReactsToIptables(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	blocked := packet.MustPrefix("10.100.7.0/24")
	w.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})
	c.Sync()

	ig := c.Graph().Interfaces["eth0"]
	if ig == nil || findNode(ig, FPMFilter) == nil {
		t.Fatalf("filter FPM missing after iptables change: %s", c.Graph())
	}
	// Blocked traffic dies in the fast path; allowed traffic flows.
	w.sendUDP(packet.MustAddr("10.100.7.1"))
	if w.captured != 0 {
		t.Fatal("blocked packet delivered")
	}
	if w.in.Stats().XDPDrops == 0 {
		t.Fatal("drop did not happen at XDP")
	}
	w.sendUDP(packet.MustAddr("10.100.8.1"))
	if w.captured != 1 {
		t.Fatal("allowed packet lost")
	}
	// Reaction for the netfilter trigger includes the libiptc read: it is
	// the slowest reconcile class (Table VI's iptables row).
	last, ok := c.LastReaction()
	if !ok || last.Virtual < 900*sim.Millisecond || last.Virtual > 1200*sim.Millisecond {
		t.Fatalf("iptables reaction %v, want ≈1.0s", last.Virtual)
	}
	// Removing the rules removes the filter FPM again.
	w.dut.IptFlush("FORWARD")
	c.Sync()
	if findNode(c.Graph().Interfaces["eth0"], FPMFilter) != nil {
		t.Fatal("filter FPM not removed after flush")
	}
	w.sendUDP(packet.MustAddr("10.100.7.1"))
	if w.captured != 2 {
		t.Fatal("traffic still blocked after flush")
	}
}

func TestControllerRemovesAccelerationWhenRoutingStops(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})
	if len(c.Deployer().Deployed()) == 0 {
		t.Fatal("nothing deployed")
	}
	w.dut.SetSysctl("net.ipv4.ip_forward", "0")
	c.Sync()
	if n := len(c.Deployer().Deployed()); n != 0 {
		t.Fatalf("still %d deployments with forwarding off: %s", n, c.Graph())
	}
	if ok, _ := w.in.XDPAttached(); ok {
		t.Fatal("XDP program still attached")
	}
	// And back on.
	w.dut.SetSysctl("net.ipv4.ip_forward", "1")
	c.Sync()
	if ok, _ := w.in.XDPAttached(); !ok {
		t.Fatal("acceleration did not return")
	}
}

func TestControllerBridgeScenario(t *testing.T) {
	sw := kernel.New("sw")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	p0 := sw.CreateDevice("swp0", netdev.Physical)
	p1 := sw.CreateDevice("swp1", netdev.Physical)
	p0.SetUp(true)
	p1.SetUp(true)
	sw.AddBridgePort("br0", "swp0")
	sw.AddBridgePort("br0", "swp1")

	c := startController(t, sw, Options{})
	g := c.Graph()
	for _, name := range []string{"swp0", "swp1"} {
		ig := g.Interfaces[name]
		if ig == nil || ig.ModuleKeys()[0] != FPMBridge {
			t.Fatalf("bridge FPM missing on %s: %s", name, g)
		}
		if ig.Hook != "xdp" {
			t.Fatalf("%s hook %s", name, ig.Hook)
		}
	}
	// The bridge device itself is in the graph too (br_dev_xmit).
	if g.Interfaces["br0"] == nil || g.Interfaces["br0"].Hook != "tc" {
		t.Fatalf("bridge device missing: %s", g)
	}
	if ok, _ := p0.XDPAttached(); !ok {
		t.Fatal("no program on bridge port")
	}
	// STP toggle is reflected in the synthesized conf.
	sw.SetBridgeSTP("br0", true)
	c.Sync()
	ig := c.Graph().Interfaces["swp0"]
	if ig.Nodes[0].Conf["stp_enabled"] != "true" {
		t.Fatalf("stp not in conf: %v", ig.Nodes[0].Conf)
	}
}

func TestControllerPreferTCAttachesAtTC(t *testing.T) {
	w := newRouterWorld(t)
	fwdBase := w.dut.Stats().Forwarded
	c := startController(t, w.dut, Options{PreferTC: true})
	ig := c.Graph().Interfaces["eth0"]
	if ig == nil || ig.Hook != "tc" {
		t.Fatalf("hook %v, want tc", ig)
	}
	if !w.dut.TCAttached(w.in.Index, true) {
		t.Fatal("no TC program attached")
	}
	if ok, _ := w.in.XDPAttached(); ok {
		t.Fatal("XDP attached despite PreferTC")
	}
	// Traffic still accelerated (via TC redirect), still correct.
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("packet lost at TC")
	}
	if w.dut.Stats().Forwarded != fwdBase {
		t.Fatal("TC fast path leaked into ip_forward")
	}
}

func TestControllerWithoutHelperFallsBackToSlowPath(t *testing.T) {
	w := newRouterWorld(t)
	fwdBase := w.dut.Stats().Forwarded
	c := startController(t, w.dut, Options{DisabledHelpers: ebpf.CapHelperFIB})
	if n := len(c.Deployer().Deployed()); n != 0 {
		t.Fatalf("deployed %d programs without the FIB helper", n)
	}
	// Unaccelerated but fully functional.
	w.sendUDP(packet.MustAddr("10.100.5.5"))
	if w.captured != 1 {
		t.Fatal("slow-path traffic lost")
	}
	if w.dut.Stats().Forwarded != fwdBase+1 {
		t.Fatal("slow path did not forward")
	}
}

func TestControllerFilterWithoutIptHelperStaysSlow(t *testing.T) {
	// With rules present but no ipt helper, accelerating just the router
	// would bypass the firewall — the controller must not accelerate.
	w := newRouterWorld(t)
	blocked := packet.MustPrefix("10.100.7.0/24")
	w.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})
	c := startController(t, w.dut, Options{DisabledHelpers: ebpf.CapHelperIpt})
	if n := len(c.Deployer().Deployed()); n != 0 {
		t.Fatalf("deployed %d programs; would bypass filtering", n)
	}
	w.sendUDP(packet.MustAddr("10.100.7.1"))
	if w.captured != 0 {
		t.Fatal("filtering bypassed")
	}
}

func TestReactionTimesMatchTableVI(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	// "ip addr add" class: link/addr trigger on a 2-interface router.
	w.dut.DelAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	c.Sync()
	w.dut.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	c.Sync()
	addr, _ := c.LastReaction()
	if addr.Virtual < 450*sim.Millisecond || addr.Virtual > 750*sim.Millisecond {
		t.Errorf("ip addr reaction %v, want ≈0.6s", addr.Virtual)
	}
	// iptables class is slower than addr class (libiptc dump).
	blocked := packet.MustPrefix("10.100.7.0/24")
	w.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})
	c.Sync()
	ipt, _ := c.LastReaction()
	if ipt.Virtual <= addr.Virtual {
		t.Errorf("iptables (%v) should react slower than ip addr (%v)", ipt.Virtual, addr.Virtual)
	}
	if ipt.Virtual < 800*sim.Millisecond || ipt.Virtual > 1300*sim.Millisecond {
		t.Errorf("iptables reaction %v, want ≈1.0s", ipt.Virtual)
	}
}

func TestControllerAsyncLoop(t *testing.T) {
	w := newRouterWorld(t)
	c := New(w.dut, Options{})
	c.Start()
	defer c.Stop()

	// Poke the kernel and wait for the daemon to react on its own.
	blocked := packet.MustPrefix("10.100.9.0/24")
	w.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})

	deadline := time.After(2 * time.Second)
	for {
		g := c.Graph()
		if g != nil {
			if ig := g.Interfaces["eth0"]; ig != nil && findNode(ig, FPMFilter) != nil {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("daemon did not react to iptables change")
		case <-time.After(time.Millisecond):
		}
	}
	// Double Start is a no-op; Stop then restart works.
	c.Start()
}

func TestGraphJSONSerialization(t *testing.T) {
	w := newRouterWorld(t)
	blocked := packet.MustPrefix("10.100.7.0/24")
	w.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})
	c := startController(t, w.dut, Options{})

	raw, err := c.Graph().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Graph
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	ig := parsed.Interfaces["eth0"]
	if ig == nil || len(ig.Nodes) != 2 {
		t.Fatalf("parsed graph: %s", raw)
	}
	if ig.Nodes[0].FPM != FPMRouter || ig.Nodes[0].NextNF != FPMFilter {
		t.Fatalf("node chain: %+v", ig.Nodes[0])
	}
	if ig.Nodes[1].Conf["chain"] != "FORWARD" {
		t.Fatalf("filter conf: %+v", ig.Nodes[1].Conf)
	}
	if !strings.Contains(c.Graph().String(), "router->filter") {
		t.Fatalf("string render: %s", c.Graph())
	}
}

func TestObjectStoreApplySemantics(t *testing.T) {
	s := NewObjectStore()
	link := netlink.Message{Type: netlink.NewLink, Payload: netlink.LinkMsg{
		Index: 3, Name: "eth0", Kind: "physical", Up: true,
	}}
	if !s.Apply(link) {
		t.Fatal("new link should change store")
	}
	if s.Apply(link) {
		t.Fatal("identical link re-apply should be a no-op")
	}
	links := s.Links()
	if len(links) != 1 || links[0].Name != "eth0" {
		t.Fatalf("links: %+v", links)
	}
	// Addr add / duplicate / delete.
	addrMsg := netlink.Message{Type: netlink.NewAddr, Payload: netlink.AddrMsg{
		Index: 3, Prefix: packet.MustPrefix("10.0.0.1/24"),
	}}
	if !s.Apply(addrMsg) || s.Apply(addrMsg) {
		t.Fatal("addr apply semantics")
	}
	if len(s.Addrs(3)) != 1 {
		t.Fatal("addr missing")
	}
	del := addrMsg
	del.Type = netlink.DelAddr
	if !s.Apply(del) || s.Apply(del) {
		t.Fatal("addr delete semantics")
	}
	// Route add / replace / delete.
	routeMsg := netlink.Message{Type: netlink.NewRoute, Payload: netlink.RouteMsg{
		Prefix: packet.MustPrefix("10.5.0.0/16"), OutIf: 3,
	}}
	if !s.Apply(routeMsg) || s.Apply(routeMsg) {
		t.Fatal("route apply semantics")
	}
	if len(s.Routes()) != 1 {
		t.Fatal("route missing")
	}
	routeDel := routeMsg
	routeDel.Type = netlink.DelRoute
	if !s.Apply(routeDel) || s.Apply(routeDel) {
		t.Fatal("route delete semantics")
	}
	// Link delete clears addresses.
	s.Apply(addrMsg)
	linkDel := link
	linkDel.Type = netlink.DelLink
	s.Apply(linkDel)
	if len(s.Links()) != 0 || len(s.Addrs(3)) != 0 {
		t.Fatal("link delete did not cascade")
	}
	// Unknown payloads change nothing.
	if s.Apply(netlink.Message{Type: netlink.NewLink, Payload: 42}) {
		t.Fatal("bogus payload changed store")
	}
}

// routeVia builds a gateway route for tests.
func routeVia(p packet.Prefix, gw string, outIf int) fib.Route {
	return fib.Route{Prefix: p, Gateway: packet.MustAddr(gw), OutIf: outIf}
}

func TestFastPathStats(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})
	slowBase := c.FastPathStats().SlowPath
	for i := 0; i < 5; i++ {
		w.sendUDP(packet.MustAddr("10.100.5.5"))
	}
	st := c.FastPathStats()
	if st.Interfaces == 0 {
		t.Fatal("no accelerated interfaces counted")
	}
	if st.Redirects != 5 {
		t.Fatalf("redirects %d, want 5", st.Redirects)
	}
	if st.SlowPath != slowBase {
		t.Fatal("fast-path traffic counted as slow path")
	}
}
