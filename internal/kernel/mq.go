// Multi-queue receive: per-CPU statistic shards, NAPI-style batch delivery,
// and per-RX-queue worker goroutines. This is the receive-side scaling half
// of the datapath — the netdev package steers flows to queues with the
// Toeplitz hash, and each queue drains into the stack on its own virtual CPU
// with no shared locks on the hot path.
package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"linuxfp/internal/drop"
	"linuxfp/internal/flight"
	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// NumRxShards is the number of per-CPU statistic/cache shards. It matches
// netdev.MaxRxQueues so a meter's CPU maps 1:1 onto a shard, and is a power
// of two so the mapping is a mask.
const NumRxShards = netdev.MaxRxQueues

const rxShardMask = NumRxShards - 1

// shardCounters is one CPU's slice of the stack counters. Fields are
// atomics so a reader (Stats) can sum live shards without stopping traffic;
// the padding keeps each shard on its own cache lines so two queues never
// false-share a counter word.
type shardCounters struct {
	forwarded     atomic.Uint64
	delivered     atomic.Uint64
	dropped       atomic.Uint64
	noRoute       atomic.Uint64
	ttlExpired    atomic.Uint64
	filterDropped atomic.Uint64
	arpTx         atomic.Uint64
	icmpTx        atomic.Uint64
	stpTx         atomic.Uint64
	fragsSent     atomic.Uint64
	reassembled   atomic.Uint64
	flowHits      atomic.Uint64
	flowMisses    atomic.Uint64
	groCoalesced  atomic.Uint64
	groFlushes    atomic.Uint64
	groSupersegs  atomic.Uint64
	// Cpumap counters: enqueued/drops land on the producer CPU's shard
	// (the RX core pays for the redirect), kthread runs on the target's.
	cpumapEnqueued    atomic.Uint64
	cpumapDrops       atomic.Uint64
	cpumapKthreadRuns atomic.Uint64
	// Software steering counters: RPS enqueues/drops/IPIs land on the RX
	// core's shard (it does the steering work), RFS hits/migrations on the
	// shard that took the decision.
	rpsSteered      atomic.Uint64
	rpsBacklogDrops atomic.Uint64
	rpsIPIs         atomic.Uint64
	rfsHits         atomic.Uint64
	rfsMigrations   atomic.Uint64
	// Sockmap (socket-layer fast path) counters: hits/misses/splices land on
	// the probing CPU's shard, L7 verdicts on the CPU running the sk_skb
	// program.
	sockmapHits    atomic.Uint64
	sockmapMisses  atomic.Uint64
	sockmapSplices atomic.Uint64
	l7Verdicts     atomic.Uint64
	// 28 counters: 224 bytes; pad to a 256-byte (four cache line) boundary
	// so adjacent shards never share a line.
	_ [4]uint64
}

// shardIdx maps a meter to its shard. A nil meter (functional tests, config
// paths) accounts on shard 0.
func shardIdx(m *sim.Meter) int {
	if m == nil {
		return 0
	}
	return m.CPU & rxShardMask
}

// ctr returns the counter shard for the meter's CPU.
func (k *Kernel) ctr(m *sim.Meter) *shardCounters {
	return &k.shards[shardIdx(m)]
}

// --- counters ----------------------------------------------------------------

// Every drop bump carries a drop.Reason (see obs.go): the untagged countDrop
// of earlier PRs is gone, so sum(per-reason) == dropped holds by
// construction.

func (k *Kernel) countFilterDrop(m *sim.Meter) {
	c := k.ctr(m)
	c.filterDropped.Add(1)
	c.dropped.Add(1)
	k.countDropReasonOnly(m, drop.ReasonNetfilterDrop)
}

func (k *Kernel) countNoRoute(m *sim.Meter) {
	c := k.ctr(m)
	c.noRoute.Add(1)
	c.dropped.Add(1)
	k.countDropReasonOnly(m, drop.ReasonIPNoRoute)
}

func (k *Kernel) countTTLExpired(m *sim.Meter) {
	c := k.ctr(m)
	c.ttlExpired.Add(1)
	c.dropped.Add(1)
	k.countDropReasonOnly(m, drop.ReasonIPTTLExpired)
}

func (k *Kernel) countForwarded(m *sim.Meter) { k.ctr(m).forwarded.Add(1) }

func (k *Kernel) countDelivered(m *sim.Meter) { k.ctr(m).delivered.Add(1) }

func (k *Kernel) countReassembled(m *sim.Meter) { k.ctr(m).reassembled.Add(1) }

func (k *Kernel) bumpARPTx(m *sim.Meter) { k.ctr(m).arpTx.Add(1) }

func (k *Kernel) bumpICMPTx(m *sim.Meter) { k.ctr(m).icmpTx.Add(1) }

func (k *Kernel) bumpSTPTx(m *sim.Meter) { k.ctr(m).stpTx.Add(1) }

// --- batch receive -----------------------------------------------------------

// DeliverBatch implements netdev.BatchStack: one NAPI poll's worth of frames
// entering the stack together. The poll prologue (irq handling, poll-list
// bookkeeping, budget accounting) is charged once for the burst instead of
// per frame, and one scratch buffer serves every frame — the skb-recycling
// win real NAPI gets from bulk allocation.
//
// When the device has GRO enabled the burst first runs through the per-CPU
// GRO layer, which coalesces same-flow TCP segments into supersegments; the
// stack (and any TC ingress program) then walks once per supersegment
// instead of once per frame. With GRO off but a batch-capable TC program
// attached, the burst still takes the batched TC runner. Either way frames
// that neither coalesce nor batch fall back to the exact per-frame path.
func (k *Kernel) DeliverBatch(dev *netdev.Device, frames [][]byte, m *sim.Meter) {
	if len(frames) == 0 {
		return
	}
	m.Charge(sim.CostNAPIPoll)
	sc := rxScratchPool.Get().(*rxScratch)
	th := k.tcIngressFor(dev.Index)
	_, tcBatch := th.(TCBatchHandler)
	// GRO is gated off for bridge slaves (br_handle_frame runs before IP
	// input and forwards raw L2 frames) and while IPVS is active (its
	// interception path is not supersegment-aware); both keep the batch
	// path byte-for-byte equivalent to the per-frame one.
	gro := dev.GROEnabled() && dev.Master() == 0 && !k.IPVSActive()
	if !gro && !tcBatch {
		for _, frame := range frames {
			k.deliverFrame(dev, frame, m, sc)
		}
		rxScratchPool.Put(sc)
		return
	}
	b := groBatchPool.Get().(*groBatch)
	outs := b.outs[:0]
	if gro {
		sl, st := k.stageStart(m)
		outs = k.groRun(dev, frames, outs, m)
		if sl != nil {
			// One observation per coalesce pass (the burst-level cost),
			// matching how napi_gro_receive shows up in a flame graph.
			sl.Observe(StageGRO, m, st)
		}
	} else {
		for _, frame := range frames {
			outs = append(outs, groOut{frame: frame, dev: dev, gso: gsoMeta{segs: 1}})
		}
	}
	k.deliverOuts(outs, gro, m, sc)
	b.outs = outs[:0]
	groBatchPool.Put(b)
	rxScratchPool.Put(sc)
}

// --- per-queue workers -------------------------------------------------------

// RxQueueStat is one RX queue's lifetime accounting.
type RxQueueStat struct {
	Queue   int
	Packets uint64
	Cycles  sim.Cycles
}

// rxQueueWorker is one queue's goroutine state.
type rxQueueWorker struct {
	ch      chan [][]byte
	meter   sim.Meter
	packets uint64
}

// RxWorkerPool runs one goroutine per RX queue of a device, each draining
// bursts into the stack on its own virtual CPU — the software model of
// per-queue NAPI contexts pinned to distinct cores. The pool's dispatcher
// (Steer) plays the role of the NIC: it hashes each frame to a queue and
// accumulates per-queue bursts.
type RxWorkerPool struct {
	dev     *netdev.Device
	burst   int
	workers []*rxQueueWorker
	pending [][][]byte
	wg      sync.WaitGroup
}

// StartRxQueues configures the device for n RX queues and starts one worker
// goroutine per queue. burst is the NAPI budget: frames per batch handed to
// the stack (64 is the kernel default).
func (k *Kernel) StartRxQueues(dev *netdev.Device, n, burst int) *RxWorkerPool {
	if burst < 1 {
		burst = 64
	}
	dev.SetRxQueues(n)
	n = dev.RxQueues()
	p := &RxWorkerPool{dev: dev, burst: burst}
	p.workers = make([]*rxQueueWorker, n)
	p.pending = make([][][]byte, n)
	for q := 0; q < n; q++ {
		w := &rxQueueWorker{ch: make(chan [][]byte, 256), meter: sim.Meter{CPU: q}}
		p.workers[q] = w
		p.wg.Add(1)
		go func(q int, w *rxQueueWorker) {
			defer p.wg.Done()
			for batch := range w.ch {
				dev.ReceiveBatch(batch, q, &w.meter)
				w.packets += uint64(len(batch))
			}
			// napi_disable: drain anything GRO still holds on this queue's
			// shard (gro_flush_timeout can carry holds across polls) before
			// the worker exits, so no segment is stranded.
			k.groFlushShard(shardIdx(&w.meter), dev, &w.meter)
		}(q, w)
	}
	return p
}

// Steer hashes a frame to its RX queue and appends it to that queue's
// pending burst, flushing when the burst fills. The frame must be owned by
// the pool after the call (callers hand over fresh copies, like DMA'd ring
// buffers).
func (p *RxWorkerPool) Steer(frame []byte) {
	q := p.dev.QueueFor(frame)
	p.pending[q] = append(p.pending[q], frame)
	if len(p.pending[q]) >= p.burst {
		p.workers[q].ch <- p.pending[q]
		p.pending[q] = nil
	}
}

// Flush pushes all partial bursts to their workers.
func (p *RxWorkerPool) Flush() {
	for q, batch := range p.pending {
		if len(batch) > 0 {
			p.workers[q].ch <- batch
			p.pending[q] = nil
		}
	}
}

// Close flushes, stops every worker, and waits for in-flight bursts to
// finish. The pool must not be used afterwards.
func (p *RxWorkerPool) Close() {
	p.Flush()
	for _, w := range p.workers {
		close(w.ch)
	}
	p.wg.Wait()
}

// Stats reports per-queue packet and cycle totals. Only valid after Close
// (the workers own their meters while running).
func (p *RxWorkerPool) Stats() []RxQueueStat {
	out := make([]RxQueueStat, len(p.workers))
	for q, w := range p.workers {
		out[q] = RxQueueStat{Queue: q, Packets: w.packets, Cycles: w.meter.Total}
	}
	return out
}

// MaxQueueCycles reports the busiest queue's cycle total — the wall-clock
// bound on the burst: with one core per queue, the slowest queue finishes
// last. Only valid after Close.
func (p *RxWorkerPool) MaxQueueCycles() sim.Cycles {
	var max sim.Cycles
	for _, w := range p.workers {
		if w.meter.Total > max {
			max = w.meter.Total
		}
	}
	return max
}

// --- cpumap kthreads ---------------------------------------------------------

// cpumapFrame is one redirected frame in flight to another CPU: the frame
// bytes plus the ingress device it arrived on, which the target kthread needs
// to rebuild the skb's dev binding (and to pick the right GRO/TC context).
// at stamps the producer's meter at enqueue time so the kthread can observe
// per-frame queueing latency (dequeue-time minus enqueue-time in virtual
// cycles) when a latency observer is attached.
type cpumapFrame struct {
	dev   *netdev.Device
	frame []byte
	at    sim.Cycles
}

// CpumapProg is a CPUMAP_VALUE_PROG callback: an XDP program attached to the
// map value that the target kthread re-runs on every frame before building
// the skb — the second-verdict hook the kernel grew in 5.9. deliver=false
// with a non-zero reason drops the frame on the kthread's shard; deliver=false
// with ReasonNotSpecified means the program consumed the frame some other way
// (XDP_TX / redirect) and has already accounted for it.
type CpumapProg func(dev *netdev.Device, frame []byte, m *sim.Meter) (deliver bool, reason drop.Reason)

// CpumapEntry is one BPF_MAP_TYPE_CPUMAP slot: a fixed-capacity ptr_ring fed
// by RX cores in bulk, drained by a dedicated kthread goroutine that injects
// the frames into the target CPU's DeliverBatch. The kthread owns a meter
// pinned to the target CPU, so everything downstream of the ring — skb build,
// GRO, netfilter, FIB, neigh — is charged to (and sharded onto) that CPU,
// which is the entire point of the redirect: the RX core's cost stops at the
// enqueue.
type CpumapEntry struct {
	kern  *Kernel
	cpu   int
	qsize int

	mu     sync.Mutex
	ring   []cpumapFrame
	closed bool

	doorbell chan struct{} // cap 1: coalesced wakeups, like wake_up_process
	done     chan struct{} // closed by Stop; kthread drains and exits
	exited   chan struct{} // closed by the kthread on exit

	// enqueued/delivered let Quiesce wait for in-flight frames without a
	// WaitGroup (a producer Add racing Wait at zero is disallowed there).
	enqueued  atomic.Uint64
	delivered atomic.Uint64

	cycles atomic.Uint64 // kthread meter total, published after each run

	// prog is the optional CPUMAP_VALUE_PROG; lat the optional per-frame
	// queueing-latency observer. Both are atomic so they can be installed
	// after the kthread has started without a happens-before hole.
	prog atomic.Pointer[CpumapProg]
	lat  atomic.Pointer[sim.Stats]
}

// NewCpumapEntry creates a cpumap slot targeting cpu with a ring of qsize
// frames and starts its kthread. Stop must be called to release it.
func (k *Kernel) NewCpumapEntry(cpu, qsize int) *CpumapEntry {
	if qsize < 1 {
		qsize = 1
	}
	e := &CpumapEntry{
		kern:     k,
		cpu:      cpu,
		qsize:    qsize,
		ring:     make([]cpumapFrame, 0, qsize),
		doorbell: make(chan struct{}, 1),
		done:     make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go e.kthread()
	return e
}

// CPU reports the target CPU this entry drains onto.
func (e *CpumapEntry) CPU() int { return e.cpu }

// Qsize reports the ring capacity the entry was created with — the cpumap
// value userspace reads back.
func (e *CpumapEntry) Qsize() int { return e.qsize }

// Cycles reports the kthread's accumulated cycle total. Safe to call while
// traffic is running; the value is published after each kthread run.
func (e *CpumapEntry) Cycles() sim.Cycles {
	return sim.Cycles(e.cycles.Load())
}

// SetValueProg attaches (or, with nil, detaches) a CPUMAP_VALUE_PROG. The
// kthread re-runs it on every dequeued frame before stack delivery, exactly
// like cpu_map_bpf_prog_run_xdp — GRO and the second verdict both happen in
// the target CPU's context.
func (e *CpumapEntry) SetValueProg(p CpumapProg) {
	if p == nil {
		e.prog.Store(nil)
		return
	}
	e.prog.Store(&p)
}

// SetLatObserver attaches a per-frame queueing-latency observer: for every
// delivered frame the kthread records (its own meter at dequeue) minus (the
// producer's meter at enqueue), in virtual cycles. Only the kthread writes to
// the Stats, so reads are safe once the entry is quiesced or stopped.
func (e *CpumapEntry) SetLatObserver(s *sim.Stats) {
	e.lat.Store(s)
}

// EnqueueBatch spills a producer's bulk queue into the ring and reports how
// many frames the ring had no room for (or arrived after Stop) — those are
// the caller's to count as drops — plus whether the ring was empty before the
// spill. wasEmpty is the wake signal: an empty ring means the kthread has
// drained everything and is (or is about to be) asleep, so the first spill
// must ring the doorbell instead of waiting for the end-of-poll flush.
// Successful inserts and overflow drops are charged to the producer's shard:
// the RX core is the one observing them.
func (e *CpumapEntry) EnqueueBatch(dev *netdev.Device, frames [][]byte, m *sim.Meter) (dropped int, wasEmpty bool) {
	c := e.kern.ctr(m)
	fr := e.kern.flight.Load()
	var at sim.Cycles
	if m != nil {
		at = m.Total
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		c.cpumapDrops.Add(uint64(len(frames)))
		if fr != nil {
			for _, f := range frames {
				fr.TerminalDropFrame(f, drop.ReasonCpumapOverflow, m)
			}
		}
		return len(frames), false
	}
	wasEmpty = len(e.ring) == 0
	free := cap(e.ring) - len(e.ring)
	n := len(frames)
	if n > free {
		dropped = n - free
		n = free
	}
	if fr != nil {
		// Accepted frames ride the ptr_ring verbatim: their chains park on
		// the producer CPU and resume on the kthread's. The parks happen
		// inside the producer section — the kthread may dequeue the moment
		// the lock drops, and each park must happen-before its Enter.
		for _, f := range frames[:n] {
			fr.ParkFrame(f, flight.StageCpumap, m)
		}
	}
	for _, f := range frames[:n] {
		e.ring = append(e.ring, cpumapFrame{dev: dev, frame: f, at: at})
	}
	e.mu.Unlock()
	if fr != nil {
		// Overflowed frames never left this CPU: the producer observes the
		// drop and closes their chains here.
		for _, f := range frames[n:] {
			fr.TerminalDropFrame(f, drop.ReasonCpumapOverflow, m)
		}
	}
	if n > 0 {
		e.enqueued.Add(uint64(n))
		c.cpumapEnqueued.Add(uint64(n))
	}
	if dropped > 0 {
		c.cpumapDrops.Add(uint64(dropped))
	}
	return dropped, wasEmpty
}

// RingDoorbell wakes the kthread — the IPI-flavoured half of xdp_do_flush.
// It is rung once per target per NAPI poll, plus on the first bulk spill
// into an empty ring (wake_up_process fires as soon as __ptr_ring_produce
// has work for a sleeping kthread; later spills find it already running and
// coalesce into the pending wakeup). The cap-1 channel is that coalescing.
func (e *CpumapEntry) RingDoorbell(m *sim.Meter) {
	m.Charge(sim.CostCpumapDoorbell)
	select {
	case e.doorbell <- struct{}{}:
	default: // already pending: wakeups coalesce
	}
}

// Stop tears the entry down: no further enqueues are accepted (they count as
// drops), the kthread drains whatever the ring still holds, and Stop blocks
// until it has exited. Used by map update/delete, like the RCU-deferred
// __cpu_map_entry_free.
func (e *CpumapEntry) Stop() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
	e.mu.Unlock()
	<-e.exited
}

// Quiesce blocks until every frame enqueued so far has been delivered to the
// stack. Benchmarks and tests call it between polls so each poll's frames
// land in exactly one kthread run — deterministic GRO windows and cycle
// totals.
func (e *CpumapEntry) Quiesce() {
	for e.delivered.Load() < e.enqueued.Load() {
		runtime.Gosched()
	}
}

// kthread is the entry's drain loop: wake on doorbell, pop up to NAPIBudget
// frames, split them into same-device runs, and hand each run to
// DeliverBatch on the target CPU's meter. Mirrors cpu_map_kthread_run.
func (e *CpumapEntry) kthread() {
	defer close(e.exited)
	m := sim.Meter{CPU: e.cpu}
	var local [netdev.NAPIBudget]cpumapFrame
	for {
		select {
		case <-e.doorbell:
			// One wakeup that finds work is one kthread run, however many
			// ptr_ring pops it takes to drain — the unit the real
			// cpu_map_kthread_run loop counts between schedule() calls.
			if e.drainOnce(local[:], &m) {
				e.kern.ctr(&m).cpumapKthreadRuns.Add(1)
				for e.drainOnce(local[:], &m) {
				}
			}
		case <-e.done:
			// Final drain: producers observing closed already count their
			// frames as drops, so everything still in the ring predates
			// Stop and must be delivered.
			if e.drainOnce(local[:], &m) {
				e.kern.ctr(&m).cpumapKthreadRuns.Add(1)
				for e.drainOnce(local[:], &m) {
				}
			}
			// napi_disable-style: flush any GRO holds still parked on the
			// target shard so no segment is stranded by a map delete.
			e.kern.groFlushShard(shardIdx(&m), nil, &m)
			e.cycles.Store(uint64(m.Total))
			return
		}
	}
}

// drainOnce pops one run of up to NAPIBudget frames and delivers it.
// Reports whether any frames were popped.
func (e *CpumapEntry) drainOnce(local []cpumapFrame, m *sim.Meter) bool {
	e.mu.Lock()
	n := len(e.ring)
	if n == 0 {
		e.mu.Unlock()
		return false
	}
	if n > len(local) {
		n = len(local)
	}
	copy(local, e.ring[:n])
	rest := copy(e.ring, e.ring[n:])
	for i := rest; i < len(e.ring); i++ {
		e.ring[i] = cpumapFrame{} // let delivered frames go
	}
	e.ring = e.ring[:rest]
	e.mu.Unlock()

	// ptr_ring consume + xdp_frame→skb prep, per frame.
	m.Charge(sim.Cycles(n) * sim.CostCpumapDequeue)

	// Queueing latency: kthread time at dequeue minus producer time at
	// enqueue, both in virtual cycles from the same measurement epoch. The
	// overloaded-CPU signature is exactly this number exploding.
	if lat := e.lat.Load(); lat != nil {
		for i := 0; i < n; i++ {
			d := m.Total - local[i].at
			if d < 0 {
				d = 0
			}
			lat.Observe(float64(d))
		}
	}

	total := n
	// CPUMAP_VALUE_PROG: re-run XDP on the dequeued frames in the target
	// CPU's context. Frames the program drops are counted on this shard;
	// frames it consumed otherwise (TX/redirect) are already accounted by
	// the program. Survivors are compacted in place and delivered below.
	if pp := e.prog.Load(); pp != nil {
		prog := *pp
		fr := e.kern.flight.Load()
		kept := 0
		for i := 0; i < n; i++ {
			deliver, reason := prog(local[i].dev, local[i].frame, m)
			if deliver {
				local[kept] = local[i]
				kept++
				continue
			}
			if reason != drop.ReasonNotSpecified {
				// Outside an Enter window: close the chain by frame key.
				if fr != nil {
					fr.TerminalDropFrame(local[i].frame, reason, m)
				}
				e.kern.countDropReason(m, reason)
			}
		}
		n = kept
	}

	// One DeliverBatch per same-device run: the batch stack (GRO, batched
	// TC) keys its context on (shard, dev), so frames from one ingress
	// device coalesce together just as they would on the RX CPU.
	var frames [][]byte
	run := 0
	for run < n {
		dev := local[run].dev
		end := run
		for end < n && local[end].dev == dev {
			end++
		}
		frames = frames[:0]
		for i := run; i < end; i++ {
			frames = append(frames, local[i].frame)
		}
		e.kern.DeliverBatch(dev, frames, m)
		run = end
	}
	e.cycles.Store(uint64(m.Total))
	e.delivered.Add(uint64(total))
	return true
}
