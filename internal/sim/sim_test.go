package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events not FIFO: %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested schedule got %v", fired)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		e.At(50, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %v, want clamp to 100", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ≈1", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal mean %v var %v, want 0/1", mean, variance)
	}
}

func TestStatsMoments(t *testing.T) {
	s := NewStats()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Fatalf("mean %v, want 5", s.Mean())
	}
	// Sample std dev of that classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev()-want) > 1e-9 {
		t.Fatalf("std %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
}

func TestStatsQuantileAccuracy(t *testing.T) {
	s := NewStats()
	r := NewRNG(5)
	// Uniform [100, 200): p99 should be ≈199.
	for i := 0; i < 100000; i++ {
		s.Observe(100 + 100*r.Float64())
	}
	if p := s.P99(); p < 195 || p > 203 {
		t.Fatalf("p99 = %v, want ≈199", p)
	}
	if p := s.Quantile(0.5); p < 147 || p > 153 {
		t.Fatalf("median = %v, want ≈150", p)
	}
}

func TestStatsEmptyAndEdgeQuantiles(t *testing.T) {
	s := NewStats()
	if s.Mean() != 0 || s.StdDev() != 0 || s.P99() != 0 {
		t.Fatal("empty stats should report zeros")
	}
	s.Observe(-3) // underflow bucket
	s.Observe(10)
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("q0 with underflow = %v", q)
	}
	if q := s.Quantile(1); q < 9 || q > 11 {
		t.Fatalf("q1 = %v, want ≈10", q)
	}
}

func TestStatsQuantileMonotonic(t *testing.T) {
	check := func(seed uint64) bool {
		s := NewStats()
		r := NewRNG(seed)
		for i := 0; i < 500; i++ {
			s.Observe(r.Float64() * 1000)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Charge(100) // must not panic
	m.ChargeBytes(64)
	m.Reset()
}

func TestMeterAccumulates(t *testing.T) {
	m := &Meter{}
	m.Charge(100)
	m.Charge(50)
	m.ChargeBytes(100)
	want := Cycles(150 + 100*float64(CostPerByte))
	if math.Abs(float64(m.Total-want)) > 1e-9 {
		t.Fatalf("meter total %v, want %v", m.Total, want)
	}
	m.Reset()
	if m.Total != 0 {
		t.Fatal("reset did not clear meter")
	}
}

func TestCostConversions(t *testing.T) {
	// 2400 cycles at 2.4 GHz is exactly 1 µs and 1 Mpps.
	if d := PerPacketDuration(2400); d != Duration(1*Microsecond) {
		t.Fatalf("duration %v, want 1µs", d)
	}
	if pps := PacketsPerSecond(2400); math.Abs(pps-1e6) > 1 {
		t.Fatalf("pps %v, want 1e6", pps)
	}
	if PacketsPerSecond(0) != 0 {
		t.Fatal("zero cycles should report zero pps")
	}
}

func TestFastPathAnchorMatchesPaper(t *testing.T) {
	// The calibration anchor: the XDP forwarding FPM composition should be
	// within a few percent of Table VII's 1.768 Mpps.
	fwd := CostXDPPrologue + CostParseEth + CostParseIPv4 + CostHelperFIB +
		CostRewriteL2L3 + CostXDPRedirect
	pps := PacketsPerSecond(fwd)
	if pps < 1.6e6 || pps > 1.95e6 {
		t.Fatalf("XDP forwarding anchor = %.0f pps, want ≈1.77e6", pps)
	}
	slow := CostDriverRx + CostSKBAlloc + CostNetifReceive + CostIPRcv +
		CostRouteLookup + CostIPForward + CostNeighOutput + CostDevXmit
	speedup := float64(slow) / float64(fwd)
	if speedup < 1.6 || speedup > 1.95 {
		t.Fatalf("fast/slow speedup %.2f, want ≈1.77", speedup)
	}
}

func TestDurationHelpers(t *testing.T) {
	d := Duration(1500 * Microsecond)
	if d.Millis() != 1.5 {
		t.Fatalf("millis %v", d.Millis())
	}
	if d.Micros() != 1500 {
		t.Fatalf("micros %v", d.Micros())
	}
	if d.Seconds() != 0.0015 {
		t.Fatalf("seconds %v", d.Seconds())
	}
	tm := Time(0).Add(d)
	if tm.Sub(Time(0)) != d {
		t.Fatal("time add/sub mismatch")
	}
}

func TestLogNormalTail(t *testing.T) {
	r := NewRNG(21)
	s := NewStats()
	for i := 0; i < 100000; i++ {
		s.Observe(r.LogNormal(0, 0.25))
	}
	// Mean of lognormal(0, 0.25) is exp(0.03125) ≈ 1.032.
	if math.Abs(s.Mean()-1.032) > 0.02 {
		t.Fatalf("lognormal mean %v", s.Mean())
	}
	// p99 ≈ exp(2.326*0.25) ≈ 1.79 — the heavy tail the latency model needs.
	if p := s.P99(); p < 1.6 || p > 2.0 {
		t.Fatalf("lognormal p99 %v, want ≈1.79", p)
	}
}
