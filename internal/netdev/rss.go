// Receive-side scaling: the Toeplitz hash and indirection table NICs use to
// spread flows across RX queues ("Scaling in the Linux Networking Stack").
// The hash is computed over the 4-tuple exactly as the Microsoft RSS spec
// describes, so the known-answer vectors from the spec validate it; the
// indirection table maps the hash's low bits to a queue the way
// `ethtool -X` programs real hardware.
package netdev

import (
	"fmt"

	"linuxfp/internal/packet"
)

// RSSIndirectionSize is the number of indirection-table buckets (Intel NICs
// default to 128).
const RSSIndirectionSize = 128

// MaxRxQueues bounds per-device RX queues (and therefore the CPU shards the
// kernel fans out to).
const MaxRxQueues = 64

// ToeplitzKeyStandard is the 40-byte default key from the Microsoft RSS
// specification — the one the spec's known-answer test vectors assume.
var ToeplitzKeyStandard = [40]byte{
	0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
	0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
	0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
	0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
	0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
}

// ToeplitzKeySymmetric is the repeating 0x6d5a key: it hashes A->B and B->A
// flows identically, so both directions of a connection land on the same
// queue (and the same per-CPU flow-cache shard).
var ToeplitzKeySymmetric = func() [40]byte {
	var k [40]byte
	for i := 0; i < 40; i += 2 {
		k[i], k[i+1] = 0x6d, 0x5a
	}
	return k
}()

// Toeplitz computes the RSS Toeplitz hash of data under key. For each set
// bit in the input (MSB first), the 32-bit window of the key starting at
// that bit position is XORed into the result.
func Toeplitz(key *[40]byte, data []byte) uint32 {
	var hash uint32
	// window holds key bits [shifts, shifts+32); it slides one bit per
	// input bit processed.
	window := uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
	shifts := 0
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			if b>>uint(bit)&1 != 0 {
				hash ^= window
			}
			shifts++
			window <<= 1
			if kb := 31 + shifts; kb < 8*len(key) && key[kb/8]>>(7-uint(kb%8))&1 != 0 {
				window |= 1
			}
		}
	}
	return hash
}

// HashFlow serializes a flow tuple per the RSS spec (src addr, dst addr,
// src port, dst port — all big-endian) and hashes it. Fragments and
// non-TCP/UDP traffic hash the 2-tuple only, keeping a datagram's fragments
// on one queue.
func HashFlow(key *[40]byte, t packet.FlowTuple) uint32 {
	var buf [12]byte
	t.Src.PutBytes(buf[0:4])
	t.Dst.PutBytes(buf[4:8])
	n := 8
	if !t.Frag && (t.Proto == packet.ProtoTCP || t.Proto == packet.ProtoUDP) {
		buf[8] = byte(t.SrcPort >> 8)
		buf[9] = byte(t.SrcPort)
		buf[10] = byte(t.DstPort >> 8)
		buf[11] = byte(t.DstPort)
		n = 12
	}
	return Toeplitz(key, buf[:n])
}

// rssState is a device's RSS configuration, replaced atomically as one unit
// (ethtool reprograms queues and indirection without stopping traffic).
type rssState struct {
	queues int
	key    *[40]byte
	table  [RSSIndirectionSize]uint8 // hash&127 -> queue
}

// SetRxQueues configures n RX queues with an equal-spread indirection table
// and the symmetric Toeplitz key (ethtool -L combined n). n is clamped to
// [1, MaxRxQueues]; n==1 restores single-queue behaviour.
func (d *Device) SetRxQueues(n int) {
	if n < 1 {
		n = 1
	}
	if n > MaxRxQueues {
		n = MaxRxQueues
	}
	if n == 1 {
		d.rss.Store(nil)
		return
	}
	st := &rssState{queues: n, key: &ToeplitzKeySymmetric}
	for i := range st.table {
		st.table[i] = uint8(i % n)
	}
	d.rss.Store(st)
}

// RxQueues reports the number of configured RX queues.
func (d *Device) RxQueues() int {
	if st := d.rss.Load(); st != nil {
		return st.queues
	}
	return 1
}

// SetIndirection programs an explicit indirection table (ethtool -X weight
// ...). Every entry must name a valid queue. The table is stretched/cycled
// to RSSIndirectionSize entries.
func (d *Device) SetIndirection(table []int) error {
	st := d.rss.Load()
	if st == nil {
		return fmt.Errorf("netdev: %s has a single RX queue", d.Name)
	}
	if len(table) == 0 {
		return fmt.Errorf("netdev: empty indirection table")
	}
	ns := &rssState{queues: st.queues, key: st.key}
	for i := range ns.table {
		q := table[i%len(table)]
		if q < 0 || q >= st.queues {
			return fmt.Errorf("netdev: queue %d out of range [0,%d)", q, st.queues)
		}
		ns.table[i] = uint8(q)
	}
	d.rss.Store(ns)
	return nil
}

// QueueFor computes the RX queue a frame is steered to: Toeplitz hash over
// the flow tuple, low bits into the indirection table. Non-IP frames (ARP,
// BPDUs) land on queue 0, like hardware sending unhashable traffic to the
// default queue.
func (d *Device) QueueFor(frame []byte) int {
	q, _ := d.queueAndHash(frame)
	return q
}

// queueAndHash reports both the queue and the raw RSS hash (the hash seeds
// the kernel's flow fast-cache, mirroring skb->hash).
func (d *Device) queueAndHash(frame []byte) (int, uint32) {
	st := d.rss.Load()
	if st == nil {
		return 0, 0
	}
	t, _, ok := packet.ReadFlowTuple(frame)
	if !ok {
		return 0, 0
	}
	h := HashFlow(st.key, t)
	return int(st.table[h%RSSIndirectionSize]), h
}
