// Package vpp models the VPP 23.10 + DPDK baseline: a user-space vector
// packet processor that bypasses the kernel entirely. It takes ownership of
// NICs (the kernel never sees their traffic again), burns its configured
// cores at 100% on busy polling, and amortizes per-node fixed costs across
// vectors of up to 256 packets — which is why the paper shows it fastest,
// and why its resource model (dedicated cores) is not comparable to the
// kernel approaches.
//
// Like Polycube, configuration happens only through its own API (the model
// of vppctl): Linux routes, addresses and iptables rules do not exist here.
package vpp

import (
	"fmt"
	"sync"

	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// GraphNodes is the forwarding graph: dpdk-input, ethernet-input,
// ip4-lookup, ip4-rewrite, interface-output.
const GraphNodes = sim.VPPGraphNodes

// Stats counts VPP-plane events.
type Stats struct {
	Forwarded uint64
	Dropped   uint64
	ACLDenied uint64
}

// Instance is one VPP process.
type Instance struct {
	Workers int // dedicated busy-poll cores

	mu     sync.Mutex
	host   *kernel.Kernel
	ifaces map[int]*netdev.Device
	routes *fib.Table
	neigh  map[packet.Addr]packet.HWAddr
	acl    []ACLRule
	stats  Stats
}

// ACLRule is one entry of the (efficiently matched) VPP ACL plugin.
type ACLRule struct {
	Src, Dst *packet.Prefix
	Deny     bool
}

// New creates a VPP instance on a host with n worker cores.
func New(host *kernel.Kernel, workers int) *Instance {
	return &Instance{
		Workers: workers,
		host:    host,
		ifaces:  make(map[int]*netdev.Device),
		routes:  fib.NewTable(),
		neigh:   make(map[packet.Addr]packet.HWAddr),
	}
}

var _ netdev.Stack = (*Instance)(nil)

// TakeInterface binds a NIC to VPP via kernel bypass: the device's receive
// path is rebound from the kernel to this instance.
func (v *Instance) TakeInterface(devName string) error {
	dev, ok := v.host.DeviceByName(devName)
	if !ok {
		return fmt.Errorf("vpp: no device %q", devName)
	}
	dev.SetStack(v)
	v.mu.Lock()
	v.ifaces[dev.Index] = dev
	v.mu.Unlock()
	return nil
}

// AddRoute installs a route (vppctl ip route add).
func (v *Instance) AddRoute(prefix packet.Prefix, nexthop packet.Addr, devName string) error {
	dev, ok := v.host.DeviceByName(devName)
	if !ok {
		return fmt.Errorf("vpp: no device %q", devName)
	}
	v.mu.Lock()
	v.routes.Add(fib.Route{Prefix: prefix, Gateway: nexthop, OutIf: dev.Index, Scope: fib.ScopeUniverse})
	v.mu.Unlock()
	return nil
}

// AddNeighbor installs a static L2 adjacency (vppctl set ip neighbor).
func (v *Instance) AddNeighbor(ip packet.Addr, mac packet.HWAddr) {
	v.mu.Lock()
	v.neigh[ip] = mac
	v.mu.Unlock()
}

// AddACL appends an ACL rule.
func (v *Instance) AddACL(r ACLRule) {
	v.mu.Lock()
	v.acl = append(v.acl, r)
	v.mu.Unlock()
}

// Stats snapshots plane counters.
func (v *Instance) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// PerPacketCycles reports the amortized per-packet cost of the graph at
// saturation (full vectors): the quantity the throughput model uses.
func (v *Instance) PerPacketCycles() sim.Cycles {
	nodes := GraphNodes
	v.mu.Lock()
	hasACL := len(v.acl) > 0
	v.mu.Unlock()
	if hasACL {
		nodes++ // acl-plugin node in the graph
	}
	per := sim.Cycles(nodes) * (sim.CostVPPNodePerPkt + sim.CostVPPNodeFixed/sim.VPPVectorSize)
	return per
}

// DeviceByIndex implements netdev.Stack for redirect-style lookups.
func (v *Instance) DeviceByIndex(idx int) (*netdev.Device, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, ok := v.ifaces[idx]
	return d, ok
}

// DeliverFrame implements netdev.Stack: a frame arriving on a VPP-owned
// NIC runs the forwarding graph. Costs are charged at the saturated
// amortized rate; functionally each packet is processed immediately.
func (v *Instance) DeliverFrame(dev *netdev.Device, frame []byte, m *sim.Meter) {
	m.Charge(v.PerPacketCycles())

	eth, l3, err := packet.UnmarshalEthernet(frame)
	if err != nil || eth.EtherType != packet.EtherTypeIPv4 {
		v.drop()
		return
	}
	if len(frame) < l3+packet.IPv4MinLen {
		v.drop()
		return
	}
	src := packet.IPv4Src(frame, l3)
	dst := packet.IPv4Dst(frame, l3)
	if packet.IPv4TTL(frame, l3) <= 1 {
		v.drop()
		return
	}

	v.mu.Lock()
	denied := false
	for _, r := range v.acl {
		if r.Src != nil && !r.Src.Contains(src) {
			continue
		}
		if r.Dst != nil && !r.Dst.Contains(dst) {
			continue
		}
		denied = r.Deny
		break
	}
	if denied {
		v.stats.ACLDenied++
		v.stats.Dropped++
		v.mu.Unlock()
		return
	}
	rt, ok := v.routes.Lookup(dst)
	if !ok {
		v.stats.Dropped++
		v.mu.Unlock()
		return
	}
	nh := rt.Gateway
	if nh == 0 {
		nh = dst
	}
	mac, ok := v.neigh[nh]
	out := v.ifaces[rt.OutIf]
	if !ok || out == nil {
		v.stats.Dropped++
		v.mu.Unlock()
		return
	}
	v.stats.Forwarded++
	v.mu.Unlock()

	packet.DecTTL(frame, l3)
	packet.SetEthSrc(frame, out.MAC)
	packet.SetEthDst(frame, mac)
	out.Transmit(frame, m)
}

func (v *Instance) drop() {
	v.mu.Lock()
	v.stats.Dropped++
	v.mu.Unlock()
}
