package traffic

import (
	"testing"

	"linuxfp/internal/packet"
)

// TestZipfDeterministic: the same (seed, s, n) yields the identical rank
// sequence — the reproducibility contract every steering sweep relies on.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(42, 1.2, 64)
	b := NewZipf(42, 1.2, 64)
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ra, rb)
		}
		if ra < 0 || ra >= 64 {
			t.Fatalf("rank %d out of range", ra)
		}
	}
	if c := NewZipf(43, 1.2, 64); func() bool {
		for i := 0; i < 100; i++ {
			if a.Next() != c.Next() {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced the same sequence")
	}
}

// TestZipfSkew: with s=1.2 the top rank must dominate and the distribution
// must be monotonically decreasing in aggregate (heavier ranks drawn more).
func TestZipfSkew(t *testing.T) {
	z := NewZipf(7, 1.2, 64)
	counts := make([]int, 64)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if frac := float64(counts[0]) / draws; frac < 0.15 {
		t.Fatalf("rank 0 carries %.3f of draws, want heavy (>0.15)", frac)
	}
	if counts[0] <= counts[32] {
		t.Fatalf("no skew: rank0=%d rank32=%d", counts[0], counts[32])
	}
	// s=0 degenerates to uniform: rank 0 near 1/64.
	u := NewZipf(7, 0, 64)
	uc := make([]int, 64)
	for i := 0; i < draws; i++ {
		uc[u.Next()]++
	}
	if frac := float64(uc[0]) / draws; frac > 0.03 {
		t.Fatalf("uniform sampler skewed: rank 0 at %.3f", frac)
	}
}

// TestZipfPktgenStableTuples: every frame of a rank reuses the same 5-tuple
// (flows must be stable for steering to pin them), and frames parse.
func TestZipfPktgenStableTuples(t *testing.T) {
	src := packet.MustAddr("10.1.0.1")
	dst := packet.MustAddr("10.2.0.1")
	g := NewZipfPktgen(5, 1.2, 16, packet.HWAddr{1}, packet.HWAddr{2}, src, dst, 64)
	seen := map[uint16][]byte{} // src port (rank identity) -> first tuple bytes
	for i := 0; i < 2000; i++ {
		f := g.Frame()
		eth, l3, err := packet.UnmarshalEthernet(f)
		if err != nil || eth.EtherType != packet.EtherTypeIPv4 {
			t.Fatalf("frame %d unparseable: %v", i, err)
		}
		ip, l4, err := packet.UnmarshalIPv4(f[l3:])
		if err != nil {
			t.Fatalf("frame %d bad IP: %v", i, err)
		}
		sport, dport := packet.L4Ports(f[l3+l4:], 0)
		tuple := []byte{
			byte(ip.Src >> 24), byte(ip.Src), byte(ip.Dst >> 24), byte(ip.Dst),
			byte(sport >> 8), byte(sport), byte(dport >> 8), byte(dport),
		}
		if prev, ok := seen[sport]; ok {
			if string(prev) != string(tuple) {
				t.Fatalf("rank with sport %d changed tuple", sport)
			}
		} else {
			seen[sport] = tuple
		}
	}
	if len(seen) < 2 {
		t.Fatalf("only %d distinct flows in 2000 draws", len(seen))
	}
}
