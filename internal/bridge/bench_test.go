package bridge

import (
	"testing"

	"linuxfp/internal/packet"
)

func BenchmarkFDBLookup(b *testing.B) {
	br := New("br0", 1, macBr)
	for i := 0; i < 16; i++ {
		br.AddPort(i + 1)
	}
	macs := make([]packet.HWAddr, 1024)
	for i := range macs {
		macs[i] = packet.HWAddr{2, 0, byte(i >> 8), byte(i), 0, 1}
		br.Learn(macs[i], 0, i%16+1, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.FDBLookup(macs[i%len(macs)], 0, 1)
	}
}

func BenchmarkBridgeForwardDecision(b *testing.B) {
	br := newBr()
	br.Learn(macB, 0, 2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Forward(1, macB, 0, 1)
	}
}
