// Virtual router (paper §VI-A1, Fig. 5): the same 50-prefix forwarding
// workload on all four platforms, printing single-core throughput and the
// headline speedups. Uses the public testbed harness.
package main

import (
	"fmt"

	"linuxfp/internal/testbed"
	"linuxfp/internal/traffic"
)

func main() {
	fmt.Println("Virtual router, 50 prefixes, 64-byte packets, one core")
	fmt.Println("-------------------------------------------------------")

	results := map[string]float64{}
	for _, platform := range []string{
		testbed.PlatformLinux, testbed.PlatformPolycube,
		testbed.PlatformVPP, testbed.PlatformLinuxFP,
	} {
		d, err := testbed.Build(platform, testbed.Scenario{})
		if err != nil {
			panic(err)
		}
		pps, gbps := d.Throughput(1, traffic.MinFrameSize)
		results[platform] = pps
		fmt.Printf("%-12s %8.3f Mpps   %6.2f Gbps\n", platform, pps/1e6, gbps)
		d.Close()
	}

	fmt.Println()
	fmt.Printf("LinuxFP vs Linux:    +%.0f%%  (paper: +77%%)\n",
		(results[testbed.PlatformLinuxFP]/results[testbed.PlatformLinux]-1)*100)
	fmt.Printf("LinuxFP vs Polycube: +%.0f%%  (paper: +19%%)\n",
		(results[testbed.PlatformLinuxFP]/results[testbed.PlatformPolycube]-1)*100)
	fmt.Println("\nNote: LinuxFP was configured with iproute2 commands only;")
	fmt.Println("Polycube and VPP each required their own bespoke APIs.")
}
