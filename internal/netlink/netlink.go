// Package netlink models the kernel↔userspace control channel the LinuxFP
// controller introspects through: typed RTM-style messages, dump requests
// for initial state, and multicast groups that broadcast configuration
// changes. The kernel publishes; the controller's Service Introspection
// subscribes (paper §IV-C1).
//
// Netfilter changes are modeled as messages on their own group even though
// the real controller reads them through libiptc — the observable behaviour
// (controller learns of the change and reacts) is identical, and the
// libiptc read latency is charged in the reaction-time model.
package netlink

import (
	"fmt"
	"sync"

	"linuxfp/internal/packet"
)

// MsgType enumerates the message kinds (RTM_* analogues).
type MsgType int

// Message types.
const (
	NewLink MsgType = iota + 1
	DelLink
	NewAddr
	DelAddr
	NewRoute
	DelRoute
	NewNeigh
	DelNeigh
	NewRule // netfilter rule added (libiptc-observed)
	DelRule
	NewSet // ipset created or modified
	DelSet
	SysctlChange
	NewIPVS // ipvs service/backend change (genl ipvs channel)
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		NewLink: "RTM_NEWLINK", DelLink: "RTM_DELLINK",
		NewAddr: "RTM_NEWADDR", DelAddr: "RTM_DELADDR",
		NewRoute: "RTM_NEWROUTE", DelRoute: "RTM_DELROUTE",
		NewNeigh: "RTM_NEWNEIGH", DelNeigh: "RTM_DELNEIGH",
		NewRule: "IPT_NEWRULE", DelRule: "IPT_DELRULE",
		NewSet: "IPSET_NEW", DelSet: "IPSET_DEL",
		SysctlChange: "SYSCTL_CHANGE", NewIPVS: "IPVS_NEW",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("msg(%d)", int(t))
}

// Group is a multicast subscription bitmask.
type Group uint32

// Multicast groups.
const (
	GroupLink Group = 1 << iota
	GroupAddr
	GroupRoute
	GroupNeigh
	GroupNetfilter
	GroupSysctl

	GroupAll = GroupLink | GroupAddr | GroupRoute | GroupNeigh | GroupNetfilter | GroupSysctl
)

// GroupOf maps a message type to its multicast group.
func GroupOf(t MsgType) Group {
	switch t {
	case NewLink, DelLink:
		return GroupLink
	case NewAddr, DelAddr:
		return GroupAddr
	case NewRoute, DelRoute:
		return GroupRoute
	case NewNeigh, DelNeigh:
		return GroupNeigh
	case NewRule, DelRule, NewSet, DelSet, NewIPVS:
		return GroupNetfilter
	case SysctlChange:
		return GroupSysctl
	default:
		return 0
	}
}

// LinkMsg describes an interface and its bridge-relevant attributes.
type LinkMsg struct {
	Index   int
	Name    string
	Kind    string // "physical", "veth", "bridge", "vxlan", "loopback"
	MAC     packet.HWAddr
	MTU     int
	Up      bool
	Master  int // enslaving bridge ifindex (0 = none)
	BridgeA *BridgeAttrs
}

// BridgeAttrs carries bridge-device configuration.
type BridgeAttrs struct {
	STPEnabled    bool
	VLANFiltering bool
}

// AddrMsg describes an address assignment.
type AddrMsg struct {
	Index  int
	Prefix packet.Prefix
}

// RouteMsg describes a route.
type RouteMsg struct {
	Table   int
	Prefix  packet.Prefix
	Gateway packet.Addr
	OutIf   int
	Metric  int
}

// NeighMsg describes a neighbour entry.
type NeighMsg struct {
	Index int
	IP    packet.Addr
	MAC   packet.HWAddr
	State string
}

// RuleMsg describes an iptables rule change.
type RuleMsg struct {
	Chain    string
	Position int // 0 = appended
	UsesSet  bool
	Rules    int // chain length after the change
}

// SetMsg describes an ipset change.
type SetMsg struct {
	Name    string
	Type    string
	Members int
}

// IPVSMsg describes an ipvs virtual-service change.
type IPVSMsg struct {
	VIP      packet.Addr
	Port     uint16
	Proto    uint8
	Backends int
	Services int // total services after the change
}

// SysctlMsg describes a sysctl write.
type SysctlMsg struct {
	Key   string
	Value string
}

// Message is one notification: a type plus its typed payload.
type Message struct {
	Type    MsgType
	Payload any
}

// Subscription receives messages for the groups it joined. Receive from C.
type Subscription struct {
	C      chan Message
	groups Group
	bus    *Bus

	mu      sync.Mutex
	dropped uint64
	closed  bool
}

// Dropped reports messages lost to a full channel (netlink's ENOBUFS).
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close leaves all groups and closes the channel.
func (s *Subscription) Close() {
	s.bus.unsubscribe(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.C)
	}
}

// subBuffer is the per-subscription channel depth.
const subBuffer = 1024

// Bus is the netlink socket layer: publish/subscribe plus dump handlers.
type Bus struct {
	mu      sync.RWMutex
	subs    []*Subscription
	dumpers map[Group]func() []Message
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{dumpers: make(map[Group]func() []Message)}
}

// Subscribe joins the given multicast groups.
func (b *Bus) Subscribe(groups Group) *Subscription {
	s := &Subscription{C: make(chan Message, subBuffer), groups: groups, bus: b}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.subs = append(b.subs, s)
	return s
}

func (b *Bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish broadcasts a message to every subscription in its group.
// Non-blocking: a subscriber that cannot keep up loses messages (and can
// detect that via Dropped), exactly the failure mode real netlink has.
func (b *Bus) Publish(msg Message) {
	g := GroupOf(msg.Type)
	b.mu.RLock()
	subs := append([]*Subscription(nil), b.subs...)
	b.mu.RUnlock()
	for _, s := range subs {
		if s.groups&g == 0 {
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		select {
		case s.C <- msg:
		default:
			s.dropped++
		}
		s.mu.Unlock()
	}
}

// RegisterDumper installs the kernel-side handler answering dump requests
// for a group.
func (b *Bus) RegisterDumper(g Group, fn func() []Message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dumpers[g] = fn
}

// Dump performs a synchronous state dump for the requested groups, in group
// bit order — the controller's startup query.
func (b *Bus) Dump(groups Group) []Message {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Message
	for g := Group(1); g <= groups; g <<= 1 {
		if groups&g == 0 {
			continue
		}
		if fn, ok := b.dumpers[g]; ok {
			out = append(out, fn()...)
		}
	}
	return out
}
