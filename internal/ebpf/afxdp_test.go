package ebpf

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// TestXSKRingBatchedOps pins the SPSC ring semantics the whole plane rests
// on: batched reserve/submit/peek/release with cached indexes, partial
// operations at the full/empty boundaries, cancel (unpeek), and index
// wraparound across the uint32 space of a small ring.
func TestXSKRingBatchedOps(t *testing.T) {
	r := newXSKRing(4)
	if r.size() != 4 {
		t.Fatalf("size %d, want 4", r.size())
	}

	// Reserve beyond capacity: partial grant.
	base, got := r.reserve(6)
	if got != 4 || base != 0 {
		t.Fatalf("reserve(6) = (%d,%d), want (0,4)", base, got)
	}
	for i := 0; i < got; i++ {
		*r.at(base + uint32(i)) = XDPDesc{Addr: uint64(i) * 64}
	}
	r.submit(got)
	if _, g := r.reserve(1); g != 0 {
		t.Fatalf("reserve on full ring granted %d", g)
	}

	// Peek beyond occupancy: partial grant; unpeek rewinds.
	base, got = r.peek(8)
	if got != 4 {
		t.Fatalf("peek(8) got %d, want 4", got)
	}
	if r.at(base+2).Addr != 128 {
		t.Fatalf("desc 2 addr %d, want 128", r.at(base+2).Addr)
	}
	r.unpeek(2) // cancel the last two
	r.release(2)
	if r.len() != 2 {
		t.Fatalf("len %d after releasing 2 of 4, want 2", r.len())
	}

	// The producer sees the two freed slots (via cached-index refresh).
	if _, g := r.reserve(4); g != 2 {
		t.Fatalf("reserve after partial release granted %d, want 2", g)
	}
	r.submit(2)

	// Drive the indexes around the ring many times: free-running uint32
	// arithmetic must stay consistent through wraparound.
	_, g := r.peek(4)
	r.release(g)
	for round := 0; round < 1000; round++ {
		b, n := r.reserve(3)
		if n != 3 {
			t.Fatalf("round %d: reserve got %d", round, n)
		}
		for i := 0; i < n; i++ {
			*r.at(b + uint32(i)) = XDPDesc{Addr: uint64(round), Len: uint32(i)}
		}
		r.submit(n)
		pb, pn := r.peek(3)
		if pn != 3 {
			t.Fatalf("round %d: peek got %d", round, pn)
		}
		for i := 0; i < pn; i++ {
			if d := r.at(pb + uint32(i)); d.Addr != uint64(round) || d.Len != uint32(i) {
				t.Fatalf("round %d: desc %d = %+v", round, i, *d)
			}
		}
		r.release(pn)
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty after symmetric rounds: %d", r.len())
	}
}

// TestXSKPerFrameVsBatchedDrainEquivalence pins the equivalence the
// batching optimization must preserve: the same frames pushed through
// one-frame spills and drained one descriptor at a time come out
// byte-identical, and in the same order, as a bulk-staged push drained in
// full bursts.
func TestXSKPerFrameVsBatchedDrainEquivalence(t *testing.T) {
	const frames = 200
	mkFrames := func() [][]byte {
		out := make([][]byte, frames)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("frame-%03d-payload", i))
		}
		return out
	}
	drain := func(batched bool) ([][]byte, AFXDPStats) {
		m := NewXSKMap("xsks", 1)
		sock := NewAFXDPSocket(AFXDPConfig{NumFrames: 512, BusyPoll: true})
		m.Update(0, sock)
		var meter sim.Meter
		var got [][]byte
		descs := make([]XDPDesc, 64)
		addrs := make([]uint64, 64)
		pull := func(max int) {
			for {
				n := sock.RxBurst(descs[:max], &meter)
				if n == 0 {
					return
				}
				for i := 0; i < n; i++ {
					f := sock.UMEM().Frame(descs[i].Addr)[:descs[i].Len]
					got = append(got, append([]byte(nil), f...))
					addrs[i] = descs[i].Addr
				}
				sock.FillAddrs(addrs[:n], &meter)
			}
		}
		if batched {
			for _, f := range mkFrames() {
				m.EnqueueXSK(0, 0, f, &meter)
			}
			m.FlushXSK(0, &meter)
			pull(64)
		} else {
			for _, f := range mkFrames() {
				m.EnqueueXSK(0, 0, f, &meter)
				m.FlushXSK(0, &meter)
				pull(1)
			}
		}
		return got, sock.Stats()
	}

	one, oneStats := drain(false)
	bulk, bulkStats := drain(true)
	if len(one) != frames || len(bulk) != frames {
		t.Fatalf("drained %d (per-frame) vs %d (batched), want %d", len(one), len(bulk), frames)
	}
	for i := range one {
		if !bytes.Equal(one[i], bulk[i]) {
			t.Fatalf("frame %d differs:\nper-frame %q\nbatched   %q", i, one[i], bulk[i])
		}
	}
	if oneStats.RxDelivered != bulkStats.RxDelivered || oneStats.RxFull+oneStats.FillEmpty+bulkStats.RxFull+bulkStats.FillEmpty != 0 {
		t.Fatalf("stats diverge: per-frame %+v batched %+v", oneStats, bulkStats)
	}
}

// TestUMEMFrameLeak pins the zero-alloc recycling invariant: after any mix
// of forwarding, forced RX overflow and forced fill underrun, every
// managed UMEM addr is parked on exactly one ring once the app drains.
func TestUMEMFrameLeak(t *testing.T) {
	m := NewXSKMap("xsks", 1)
	sock := NewAFXDPSocket(AFXDPConfig{NumFrames: 32, RingSize: 8, BusyPoll: true})
	m.Update(0, sock)
	out := netdev.New("xsk-tx", 99, netdev.Physical, [6]byte{2, 0, 0, 0, 0, 99}, nil)
	var appMeter sim.Meter
	app := NewAFXDPApp(sock, out, &appMeter)

	var meter sim.Meter
	frame := []byte("leak-check-payload")
	push := func(n int) {
		for i := 0; i < n; i++ {
			m.EnqueueXSK(0, 0, frame, &meter)
		}
		m.FlushXSK(0, &meter)
	}

	// Forward through TX/completion in several waves.
	for wave := 0; wave < 5; wave++ {
		push(8)
		app.RunOnce(0)
	}
	// Force RX overflow: more frames than the RX ring holds, no draining.
	push(20)
	if sock.Stats().RxFull == 0 {
		t.Fatal("rx overflow not forced; leak check is vacuous")
	}
	// Force fill underrun: hold every frame the app can get, then stuff.
	held := make([]XDPDesc, 32)
	nHeld := 0
	for {
		n := sock.RxBurst(held[nHeld:], &appMeter)
		if n == 0 {
			break
		}
		nHeld += n
		push(8)
	}
	push(8)
	if sock.Stats().FillEmpty == 0 {
		t.Fatal("fill underrun not forced; leak check is vacuous")
	}

	// Hand everything back and drain.
	addrs := make([]uint64, nHeld)
	for i := 0; i < nHeld; i++ {
		addrs[i] = held[i].Addr
	}
	sock.FillAddrs(addrs, &appMeter)
	app.Drain()

	fill, rx, tx, comp, intact := sock.AuditUMEM()
	if !intact {
		t.Fatalf("UMEM audit failed: fill=%d rx=%d tx=%d comp=%d (managed %d)", fill, rx, tx, comp, sock.managed)
	}
	if rx+tx+comp != 0 || fill != sock.managed {
		t.Fatalf("drained socket should hold all frames on fill: fill=%d rx=%d tx=%d comp=%d", fill, rx, tx, comp)
	}
	if app.Forwarded() == 0 || sock.Stats().TxCompleted != app.Forwarded() {
		t.Fatalf("tx accounting: forwarded %d, completed %d", app.Forwarded(), sock.Stats().TxCompleted)
	}
}

// TestXSKMapChurnRaceHammer binds and unbinds sockets across slots while
// four producer goroutines blast bulk enqueues/flushes from distinct RX
// queues and per-socket app goroutines drain concurrently. Under -race
// this is the xsk memory-safety proof; the final accounting proves every
// accepted frame ended as exactly one delivery or one attributed drop,
// across arbitrary mid-poll rebinding.
func TestXSKMapChurnRaceHammer(t *testing.T) {
	const (
		slots     = 4
		producers = 4
		perProd   = 8000
	)
	m := NewXSKMap("xsks", slots)
	socks := make([]*AFXDPSocket, slots)
	apps := make([]*AFXDPApp, slots)
	for i := range socks {
		socks[i] = NewAFXDPSocket(AFXDPConfig{NumFrames: 64, RingSize: 16, BusyPoll: true})
		m.Update(i, socks[i])
		meter := &sim.Meter{CPU: 8 + i}
		apps[i] = NewAFXDPApp(socks[i], nil, meter)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // map churn: unbind, rebind, cross-bind live slots
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := i % slots
			switch i % 3 {
			case 0:
				m.Delete(slot)
			case 1:
				m.Update(slot, socks[(slot+1)%slots])
			default:
				m.Update(slot, socks[slot])
			}
		}
	}()
	for i := range apps {
		wg.Add(1)
		go func(a *AFXDPApp) { // one app per socket: the SPSC consumer side
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.RunOnce(16)
				}
			}
		}(apps[i])
	}
	wg.Add(1)
	go func() { // control plane: stats and occupancy reads under churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Lookup(i % slots)
			_ = socks[i%slots].Stats()
			_, _, _, _ = socks[i%slots].RingOccupancy()
		}
	}()

	accepted := make([]uint64, producers)
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(rxq int) { // the kernel redirect path for one RX queue
			defer pwg.Done()
			var meter sim.Meter
			frame := []byte("hammer-frame-payload")
			for i := 0; i < perProd; i++ {
				if _, _, ok := m.EnqueueXSK(rxq, i%slots, frame, &meter); ok {
					accepted[rxq]++
				}
				if i%24 == 23 {
					m.FlushXSK(rxq, &meter)
				}
			}
			m.FlushXSK(rxq, &meter)
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()

	var total, outcomes uint64
	for p := range accepted {
		total += accepted[p]
	}
	for i, s := range socks {
		apps[i].Drain()
		st := s.Stats()
		outcomes += st.RxDelivered + st.RxFull + st.FillEmpty
		if _, _, _, _, intact := s.AuditUMEM(); !intact {
			t.Fatalf("socket %d leaked UMEM frames under churn", i)
		}
	}
	if outcomes != total {
		t.Fatalf("accepted %d frames but %d outcomes: frames lost or double-counted", total, outcomes)
	}
}

// TestXSKHotPathZeroAlloc pins the zero-alloc claim for the ring hot path:
// a steady-state poll — bulk enqueue, spill, flush, app forward through
// TX/completion — allocates nothing on either core.
func TestXSKHotPathZeroAlloc(t *testing.T) {
	m := NewXSKMap("xsks", 1)
	sock := NewAFXDPSocket(AFXDPConfig{NumFrames: 256, BusyPoll: true})
	m.Update(0, sock)
	out := netdev.New("xsk-tx", 99, netdev.Physical, [6]byte{2, 0, 0, 0, 0, 99}, nil)
	var rxMeter, appMeter sim.Meter
	app := NewAFXDPApp(sock, out, &appMeter)
	frames := make([][]byte, 32)
	for i := range frames {
		frames[i] = []byte("zero-alloc-hot-path-frame")
	}
	poll := func() {
		for _, f := range frames {
			m.EnqueueXSK(0, 0, f, &rxMeter)
		}
		m.FlushXSK(0, &rxMeter)
		app.RunOnce(32)
	}
	poll() // warm up: stage slice growth, pools
	if allocs := testing.AllocsPerRun(100, poll); allocs != 0 {
		t.Fatalf("ring hot path allocates: %.1f allocs/poll", allocs)
	}
}

// BenchmarkXSKRedirectFlush measures the kernel half of one 64-frame NAPI
// poll: bulk enqueue with threshold spills plus the end-of-poll flush.
func BenchmarkXSKRedirectFlush(b *testing.B) {
	m := NewXSKMap("xsks", 1)
	sock := NewAFXDPSocket(AFXDPConfig{NumFrames: 256, BusyPoll: true})
	m.Update(0, sock)
	var rxMeter, appMeter sim.Meter
	app := NewAFXDPApp(sock, nil, &appMeter)
	frame := []byte("bench-frame-payload-64-bytes-of-representative-udp-data....")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			m.EnqueueXSK(0, 0, frame, &rxMeter)
		}
		m.FlushXSK(0, &rxMeter)
		app.RunOnce(64)
	}
}

// BenchmarkAFXDPForwardLoop measures the full two-core pipeline per
// 64-frame poll: kernel RX half plus the app's RX→TX→completion→fill loop.
func BenchmarkAFXDPForwardLoop(b *testing.B) {
	m := NewXSKMap("xsks", 1)
	sock := NewAFXDPSocket(AFXDPConfig{NumFrames: 256, BusyPoll: true})
	m.Update(0, sock)
	out := netdev.New("xsk-tx", 99, netdev.Physical, [6]byte{2, 0, 0, 0, 0, 99}, nil)
	var rxMeter, appMeter sim.Meter
	app := NewAFXDPApp(sock, out, &appMeter)
	frame := []byte("bench-frame-payload-64-bytes-of-representative-udp-data....")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			m.EnqueueXSK(0, 0, frame, &rxMeter)
		}
		m.FlushXSK(0, &rxMeter)
		app.RunOnce(64)
	}
}
