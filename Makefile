GO ?= go

.PHONY: check vet build test race bench-smoke bench-json

## check: everything CI runs — vet, build, tests, race detector, bench smoke
check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency suite — the sharded datapath, flow cache, and
## worker pools are exercised under the race detector
race:
	$(GO) test -race ./internal/...

## bench-smoke: a fast pass over the real-execution forwarding benchmarks
## (including the 4-shard parallel scaling bench and the batched fast
## path), plus a 1-iteration run of the ebpf/netdev/kernel micro-benchmarks
## (GRO coalescing, the batched TC runner, and the cpumap producer/kthread
## benches live in internal/ebpf and internal/kernel) so batch-path and
## cpumap regressions fail fast; no full -bench=. run needed
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkRealForward|BenchmarkRealLinuxFPFastPath' -benchtime 100x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/ebpf/ ./internal/netdev/ ./internal/kernel/

## bench-json: regenerate BENCH_fastpath.json, BENCH_gro.json, and
## BENCH_cpumap.json — the machine-readable batching x JIT sweep plus the
## pps-vs-cores curve for the fast path, the GRO-on/off workload x batch
## sweep for the slow path, and the cpumap CPU fan-out sweep
bench-json:
	$(GO) run ./cmd/lfpbench -exp fastpath -fastpath-json BENCH_fastpath.json
	$(GO) run ./cmd/lfpbench -exp gro -gro-json BENCH_gro.json
	$(GO) run ./cmd/lfpbench -exp cpumap -cpumap-json BENCH_cpumap.json
