// Package core implements the LinuxFP controller — the paper's primary
// contribution. A daemon continuously introspects kernel configuration
// through netlink (Service Introspection), derives relationships between
// the discovered objects (Topology Manager), models the needed data plane
// as a JSON processing graph, synthesizes per-configuration fast-path
// programs from the FPM library (Fast Path Synthesizer), checks them
// against available kernel features (Capability Manager), and deploys them
// atomically behind tail-call dispatchers (Fast Path Deployer).
//
// Nothing configures LinuxFP directly: users keep using ip, brctl,
// iptables, ipset and sysctl, and the controller reacts.
package core

import (
	"fmt"
	"sort"
	"sync"

	"linuxfp/internal/netlink"
	"linuxfp/internal/packet"
)

// ObjectStore is the controller's mirror of kernel networking state,
// maintained purely from netlink dumps and notifications — the controller
// never peeks at kernel internals directly (the data plane's helpers do,
// but that is the point: state stays in the kernel).
type ObjectStore struct {
	mu     sync.RWMutex
	links  map[int]netlink.LinkMsg
	addrs  map[int]map[packet.Prefix]bool
	routes map[string]netlink.RouteMsg // keyed by prefix string
	chains map[string]netlink.RuleMsg  // keyed by chain name
	sets   map[string]netlink.SetMsg
	ipvs   map[string]netlink.IPVSMsg // keyed by vip:port/proto
	sysctl map[string]string
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{
		links:  make(map[int]netlink.LinkMsg),
		addrs:  make(map[int]map[packet.Prefix]bool),
		routes: make(map[string]netlink.RouteMsg),
		chains: make(map[string]netlink.RuleMsg),
		sets:   make(map[string]netlink.SetMsg),
		ipvs:   make(map[string]netlink.IPVSMsg),
		sysctl: make(map[string]string),
	}
}

// Apply folds one netlink message into the store. It reports whether the
// message changed any state (used to skip no-op reconciles).
func (s *ObjectStore) Apply(msg netlink.Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch p := msg.Payload.(type) {
	case netlink.LinkMsg:
		if msg.Type == netlink.DelLink {
			delete(s.links, p.Index)
			delete(s.addrs, p.Index)
			return true
		}
		old, had := s.links[p.Index]
		s.links[p.Index] = p
		return !had || !linkEqual(old, p)
	case netlink.AddrMsg:
		set, ok := s.addrs[p.Index]
		if !ok {
			set = make(map[packet.Prefix]bool)
			s.addrs[p.Index] = set
		}
		if msg.Type == netlink.DelAddr {
			had := set[p.Prefix]
			delete(set, p.Prefix)
			return had
		}
		had := set[p.Prefix]
		set[p.Prefix] = true
		return !had
	case netlink.RouteMsg:
		key := p.Prefix.String()
		if msg.Type == netlink.DelRoute {
			_, had := s.routes[key]
			delete(s.routes, key)
			return had
		}
		old, had := s.routes[key]
		s.routes[key] = p
		return !had || old != p
	case netlink.RuleMsg:
		old, had := s.chains[p.Chain]
		s.chains[p.Chain] = p
		return !had || old != p
	case netlink.SetMsg:
		if msg.Type == netlink.DelSet {
			_, had := s.sets[p.Name]
			delete(s.sets, p.Name)
			return had
		}
		old, had := s.sets[p.Name]
		s.sets[p.Name] = p
		return !had || old != p
	case netlink.IPVSMsg:
		key := fmt.Sprintf("%s:%d/%d", p.VIP, p.Port, p.Proto)
		if p.Backends == 0 && p.Services == 0 {
			_, had := s.ipvs[key]
			delete(s.ipvs, key)
			return had
		}
		old, had := s.ipvs[key]
		s.ipvs[key] = p
		return !had || old != p
	case netlink.SysctlMsg:
		old, had := s.sysctl[p.Key]
		s.sysctl[p.Key] = p.Value
		return !had || old != p.Value
	default:
		return false
	}
}

func linkEqual(a, b netlink.LinkMsg) bool {
	if a.Index != b.Index || a.Name != b.Name || a.Kind != b.Kind ||
		a.Up != b.Up || a.Master != b.Master || a.MTU != b.MTU || a.MAC != b.MAC {
		return false
	}
	switch {
	case a.BridgeA == nil && b.BridgeA == nil:
		return true
	case a.BridgeA == nil || b.BridgeA == nil:
		return false
	default:
		return *a.BridgeA == *b.BridgeA
	}
}

// Links returns all known links sorted by ifindex.
func (s *ObjectStore) Links() []netlink.LinkMsg {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]netlink.LinkMsg, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Link returns one link by ifindex.
func (s *ObjectStore) Link(idx int) (netlink.LinkMsg, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	l, ok := s.links[idx]
	return l, ok
}

// Addrs returns the addresses on one interface.
func (s *ObjectStore) Addrs(idx int) []packet.Prefix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []packet.Prefix
	for p := range s.addrs[idx] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Routes returns all known routes sorted by prefix.
func (s *ObjectStore) Routes() []netlink.RouteMsg {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]netlink.RouteMsg, 0, len(s.routes))
	for _, r := range s.routes {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Bits < out[j].Prefix.Bits
	})
	return out
}

// Chain returns the rule summary for a chain.
func (s *ObjectStore) Chain(name string) (netlink.RuleMsg, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.chains[name]
	return c, ok
}

// Sysctl returns a sysctl value.
func (s *ObjectStore) Sysctl(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sysctl[key]
}

// IPVSServiceCount reports how many virtual services have backends.
func (s *ObjectStore) IPVSServiceCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.ipvs {
		if m.Backends > 0 {
			n++
		}
	}
	return n
}

// BridgePorts returns the ifindexes enslaved to a bridge ifindex.
func (s *ObjectStore) BridgePorts(brIdx int) []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for idx, l := range s.links {
		if l.Master == brIdx {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}
