package core

import (
	"fmt"
	"sync"
	"time"

	"linuxfp/internal/ebpf"
)

// Deployer owns the attachment lifecycle: one permanently attached
// tail-call dispatcher per accelerated interface, with data-path updates
// performed as atomic program-array swaps (paper Fig. 4). Detaching and
// re-attaching a program on every change would drop packets for seconds;
// the dispatcher swap is wait-free.
type Deployer struct {
	loader *ebpf.Loader

	mu    sync.Mutex
	slots map[string]*deploySlot // keyed by interface name
	// Wall time of the most recent Deploy, split into the Load (verify +
	// specialize + fuse) and the attach/swap portion. The controller folds
	// these into each Reaction so churn latency is observable end to end.
	lastLoad time.Duration
	lastSwap time.Duration
}

type deploySlot struct {
	ifindex int
	hook    string
	disp    *ebpf.Dispatcher
}

// NewDeployer returns a deployer using the loader's kernel.
func NewDeployer(loader *ebpf.Loader) *Deployer {
	return &Deployer{loader: loader, slots: make(map[string]*deploySlot)}
}

// Loader exposes the deployer's loader for observability (program tables,
// load counters).
func (d *Deployer) Loader() *ebpf.Loader { return d.loader }

// Deploy installs (or swaps in) a program for an interface graph.
func (d *Deployer) Deploy(ig *IfaceGraph, prog *ebpf.Program) error {
	loadStart := time.Now()
	if _, err := d.loader.Load(prog); err != nil {
		return err
	}
	loadWall := time.Since(loadStart)
	d.mu.Lock()
	slot, ok := d.slots[ig.Name]
	d.mu.Unlock()

	if ok && slot.hook == ig.Hook && slot.ifindex == ig.IfIndex {
		swapStart := time.Now()
		old := slot.disp.Active()
		slot.disp.Swap(prog)
		d.mu.Lock()
		d.lastLoad, d.lastSwap = loadWall, time.Since(swapStart)
		d.mu.Unlock()
		// The replaced program is unreachable once the swap lands; drop it
		// from the loaded set so re-synthesis churn doesn't accumulate.
		if old != nil && old != prog {
			d.loader.Unload(old.ID())
		}
		return nil
	}
	// First deployment on this interface (or the hook moved): create and
	// attach a dispatcher, pre-populated so no packet sees an empty slot.
	hook := ebpf.HookXDP
	if ig.Hook == "tc" {
		hook = ebpf.HookTCIngress
	}
	swapStart := time.Now()
	disp, err := d.loader.NewDispatcher("linuxfp_disp_"+ig.Name, hook)
	if err != nil {
		return err
	}
	disp.Swap(prog)
	if hook == ebpf.HookXDP {
		dev, okDev := d.loader.K.DeviceByIndex(ig.IfIndex)
		if !okDev {
			return fmt.Errorf("core: deploy: no device %d", ig.IfIndex)
		}
		if err := d.loader.AttachXDP(dev, disp.Prog, "driver"); err != nil {
			return err
		}
	} else {
		if err := d.loader.AttachTC(ig.IfIndex, disp.Prog); err != nil {
			return err
		}
	}
	d.mu.Lock()
	d.slots[ig.Name] = &deploySlot{ifindex: ig.IfIndex, hook: ig.Hook, disp: disp}
	d.lastLoad, d.lastSwap = loadWall, time.Since(swapStart)
	d.mu.Unlock()
	return nil
}

// LastTiming reports the wall time of the most recent Deploy, split into
// the Load portion (verify + specialize + fuse) and the attach/swap portion.
func (d *Deployer) LastTiming() (load, swap time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastLoad, d.lastSwap
}

// Undeploy removes acceleration from an interface, returning it fully to
// the slow path.
func (d *Deployer) Undeploy(name string) {
	d.mu.Lock()
	slot, ok := d.slots[name]
	if ok {
		delete(d.slots, name)
	}
	d.mu.Unlock()
	if !ok {
		return
	}
	active := slot.disp.Active()
	slot.disp.Swap(nil)
	if dev, okDev := d.loader.K.DeviceByIndex(slot.ifindex); okDev && slot.hook == "xdp" {
		dev.DetachXDP()
	}
	if slot.hook == "tc" {
		d.loader.K.AttachTC(slot.ifindex, true, nil)
	}
	// Both the data path and the dispatcher entry are now unreachable.
	if active != nil {
		d.loader.Unload(active.ID())
	}
	d.loader.Unload(slot.disp.Prog.ID())
}

// Deployed lists interfaces currently carrying a fast path.
func (d *Deployer) Deployed() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.slots))
	for n := range d.slots {
		out = append(out, n)
	}
	return out
}

// Active returns the program currently live on an interface.
func (d *Deployer) Active(name string) *ebpf.Program {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := d.slots[name]
	if !ok {
		return nil
	}
	return slot.disp.Active()
}
