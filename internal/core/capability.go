package core

import (
	"linuxfp/internal/ebpf"
	"linuxfp/internal/netlink"
)

// CapabilityManager describes what the running kernel supports: which
// helpers exist and which hook each device type can host. The synthesizer
// consults it so LinuxFP degrades gracefully on kernels without the new
// helpers — affected modules are simply not accelerated (the slow path
// always works).
type CapabilityManager struct {
	// Helpers available in this kernel. The stock 6.6 kernel has
	// bpf_fib_lookup; bpf_fdb_lookup and bpf_ipt_lookup are the paper's
	// additions (~260 LoC patch).
	helpers ebpf.Cap
	// PreferTC forces TC attachment even where driver XDP exists — used
	// in container scenarios where the sk_buff will be allocated anyway
	// (paper §VI-B, Table VII discussion).
	preferTC bool
}

// NewCapabilityManager returns a manager for a patched kernel (all LinuxFP
// helpers present).
func NewCapabilityManager(preferTC bool) *CapabilityManager {
	return &CapabilityManager{
		helpers:  ebpf.CapHelperFIB | ebpf.CapHelperFDB | ebpf.CapHelperIpt | ebpf.CapHelperIPVS,
		preferTC: preferTC,
	}
}

// DisableHelper removes a helper (modeling an unpatched kernel).
func (cm *CapabilityManager) DisableHelper(c ebpf.Cap) {
	cm.helpers &^= c
}

// HasHelper reports helper availability.
func (cm *CapabilityManager) HasHelper(c ebpf.Cap) bool {
	return cm.helpers&c == c
}

// HookFor picks the attach hook for a device. Physical NICs support driver
// XDP; veth and bridge devices get TC (their XDP support needs peer
// cooperation, and containers allocate sk_buffs regardless — the paper's
// Kubernetes deployment attaches at TC for exactly this reason).
func (cm *CapabilityManager) HookFor(link netlink.LinkMsg) string {
	if cm.preferTC {
		return "tc"
	}
	switch link.Kind {
	case "physical":
		return "xdp"
	default:
		return "tc"
	}
}

// ModuleSupported reports whether an FPM key can be synthesized with the
// available helpers.
func (cm *CapabilityManager) ModuleSupported(fpm string) bool {
	switch fpm {
	case FPMBridge:
		return cm.HasHelper(ebpf.CapHelperFDB)
	case FPMRouter:
		return cm.HasHelper(ebpf.CapHelperFIB)
	case FPMFilter:
		return cm.HasHelper(ebpf.CapHelperIpt)
	case FPMLB:
		return cm.HasHelper(ebpf.CapHelperIPVS)
	default:
		return false
	}
}
