package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"linuxfp/internal/sim"
)

// Tracer samples kernel function entry stacks, producing the folded-stack
// counts flame graphs are drawn from (paper Fig. 1: the forwarding hot
// path). Tracing is off by default and costs one nil check per call site.
//
// Samples are sharded per CPU: each RX queue's worker pushes onto its own
// shard's stack and bumps its own shard's map, so enabling tracing never
// serializes the multi-queue datapath — and, just as important, stacks from
// different CPUs can't interleave into nonsense frames. Report merges the
// shards.
type Tracer struct {
	shards [NumRxShards]tracerShard
}

// tracerShard is one CPU's call stack and folded-stack counts. The mutex is
// practically uncontended (one owner CPU); it orders the rare concurrent
// Report against traffic.
type tracerShard struct {
	mu      sync.Mutex
	stack   []string
	samples map[string]uint64
}

// StackCount is one folded stack with its hit count.
type StackCount struct {
	Stack string // semicolon-joined frames, root first
	Count uint64
}

// EnableTracing attaches a fresh tracer to the kernel and returns it.
func (k *Kernel) EnableTracing() *Tracer {
	t := &Tracer{}
	for i := range t.shards {
		t.shards[i].samples = make(map[string]uint64)
	}
	k.tracer.Store(t)
	return t
}

// DisableTracing detaches the tracer.
func (k *Kernel) DisableTracing() {
	k.tracer.Store(nil)
}

// trace records entry into a kernel function on the meter's CPU shard and
// returns the exit func. With no tracer attached it is one atomic load — a
// static-key nop.
func (k *Kernel) trace(name string, m *sim.Meter) func() {
	t := k.tracer.Load()
	if t == nil {
		return noopExit
	}
	sh := &t.shards[shardIdx(m)]
	sh.mu.Lock()
	sh.stack = append(sh.stack, name)
	sh.samples[strings.Join(sh.stack, ";")]++
	sh.mu.Unlock()
	return func() {
		sh.mu.Lock()
		if n := len(sh.stack); n > 0 {
			sh.stack = sh.stack[:n-1]
		}
		sh.mu.Unlock()
	}
}

func noopExit() {}

// Report returns folded stacks merged across CPU shards, sorted by
// descending count.
func (t *Tracer) Report() []StackCount {
	merged := make(map[string]uint64)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for s, c := range sh.samples {
			merged[s] += c
		}
		sh.mu.Unlock()
	}
	out := make([]StackCount, 0, len(merged))
	for s, c := range merged {
		out = append(out, StackCount{Stack: s, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// Folded renders the samples in Brendan Gregg's folded-stack format, one
// "stack count" line each — the input format for flamegraph.pl.
func (t *Tracer) Folded() string {
	var b strings.Builder
	for _, sc := range t.Report() {
		fmt.Fprintf(&b, "%s %d\n", sc.Stack, sc.Count)
	}
	return b.String()
}

// ASCII renders a crude text flame graph: each stack as an indented tree
// with bar widths proportional to counts.
func (t *Tracer) ASCII(width int) string {
	report := t.Report()
	if len(report) == 0 {
		return "(no samples)\n"
	}
	var total uint64
	for _, sc := range report {
		if !strings.Contains(sc.Stack, ";") {
			total += sc.Count
		}
	}
	if total == 0 {
		total = report[0].Count
	}
	var b strings.Builder
	sorted := make([]StackCount, len(report))
	copy(sorted, report)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Stack < sorted[j].Stack })
	for _, sc := range sorted {
		depth := strings.Count(sc.Stack, ";")
		frames := strings.Split(sc.Stack, ";")
		name := frames[len(frames)-1]
		bar := int(sc.Count * uint64(width) / total)
		if bar < 1 {
			bar = 1
		}
		if bar > width {
			bar = width
		}
		fmt.Fprintf(&b, "%s%-24s %s %d\n",
			strings.Repeat("  ", depth), name, strings.Repeat("█", bar), sc.Count)
	}
	return b.String()
}
