// Monitoring & future work (paper §VIII): inject a custom monitoring
// module into the synthesized XDP pipeline, stream per-packet trace events
// to user space over a BPF ring buffer, and load-balance a VIP with the
// ipvs-style FPM — the three extension points the paper sketches, running
// together. The DNS "capture" is fpm.TraceOp + ebpf.RingBuf: the fast path
// reserves, fills and submits a fixed-layout event; the consumer waits on
// the epoll-style doorbell and drains in batches. Full-frame capture goes
// one step further: an AF_XDP socket (UMEM + fill/rx rings) receives
// whole UDP:9999 frames zero-copy, bypassing the stack entirely.
package main

import (
	"fmt"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

func main() {
	if err := run(); err != nil {
		panic(err)
	}
}

func run() error {
	// A router with two backends behind it.
	src, dut, sink := kernel.New("src"), kernel.New("dut"), kernel.New("sink")
	srcDev := src.CreateDevice("eth0", netdev.Physical)
	in := dut.CreateDevice("eth0", netdev.Physical)
	out := dut.CreateDevice("eth1", netdev.Physical)
	sinkDev := sink.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(srcDev, in)
	netdev.Connect(out, sinkDev)
	for _, d := range []*netdev.Device{srcDev, in, out, sinkDev} {
		d.SetUp(true)
	}
	dut.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	dut.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24"))
	dut.SetSysctl("net.ipv4.ip_forward", "1")
	dut.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.100.0.0/16"), Gateway: packet.MustAddr("10.2.0.1"), OutIf: out.Index})
	dut.Neigh.AddPermanent(packet.MustAddr("10.2.0.1"), sinkDev.MAC, out.Index)

	// Hand-compose an extended pipeline: monitor → ring-buffer trace for DNS
	// → ipvs-style LB for the VIP → the standard router FPM.
	counters := ebpf.NewPerCPUArrayMap("proto_counts", 256)
	events := ebpf.NewRingBuf("trace_events", 1<<14)
	conns := ebpf.NewPerCPUHashMap("lb_conns", 1024)
	vip := packet.MustAddr("10.99.0.1")
	backends := []packet.Addr{packet.MustAddr("10.100.0.10"), packet.MustAddr("10.100.1.10")}

	// AF_XDP capture: UDP:9999 frames land in the socket's RX ring and a
	// userspace app drains them — the kernel never sees them again.
	xsks := ebpf.NewXSKMap("capture_xsks", 1)
	xsock := ebpf.NewAFXDPSocket(ebpf.AFXDPConfig{NumFrames: 64})
	xsks.Update(0, xsock)
	var appMeter sim.Meter
	captured := 0
	capture := ebpf.NewAFXDPApp(xsock, nil, &appMeter)
	capture.Handle = func(frame []byte) { captured++ }

	loader := ebpf.NewLoader(dut)
	ops := []ebpf.Op{
		fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4(),
		fpm.MonitorOpPerCPU(counters),
		fpm.TraceOp(fpm.TraceConf{Ring: events, Proto: packet.ProtoUDP, DstPort: 53}),
		fpm.AFXDPOp(fpm.AFXDPConf{Proto: packet.ProtoUDP, DstPort: 9999, Map: xsks, Slot: 0}),
		fpm.LBOp(fpm.LBConf{VIP: vip, Port: 80, Backends: backends, PerCPUConns: conns}),
	}
	ops = append(ops, fpm.RouterOps(fpm.RouterConf{})...)
	prog, err := loader.Load(&ebpf.Program{Name: "extended", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		return err
	}
	if err := loader.AttachXDP(in, prog, "driver"); err != nil {
		return err
	}

	send := func(dst packet.Addr, proto uint8, dport uint16) {
		srcIP := packet.MustAddr("10.1.0.1")
		var l4 []byte
		if proto == packet.ProtoUDP {
			u := packet.UDP{SrcPort: 40000, DstPort: dport}
			l4 = u.Marshal(nil, srcIP, dst, []byte("payload"))
		} else {
			tc := packet.TCP{SrcPort: 40000, DstPort: dport, Flags: packet.TCPPsh}
			l4 = tc.Marshal(nil, srcIP, dst, []byte("payload"))
		}
		frame := packet.BuildIPv4(
			packet.Ethernet{Dst: in.MAC, Src: srcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: proto, Src: srcIP, Dst: dst},
			l4,
		)
		var m sim.Meter
		in.Receive(frame, &m)
	}

	fmt.Println("sending: 5×UDP, 3×TCP to the VIP, 2×DNS, 4×UDP:9999 (AF_XDP)")
	for i := 0; i < 5; i++ {
		send(packet.MustAddr("10.100.3.3"), packet.ProtoUDP, 9000)
	}
	for i := 0; i < 3; i++ {
		send(vip, packet.ProtoTCP, 80)
	}
	for i := 0; i < 2; i++ {
		send(packet.MustAddr("10.100.3.53"), packet.ProtoUDP, 53)
	}
	for i := 0; i < 4; i++ {
		send(packet.MustAddr("10.100.3.99"), packet.ProtoUDP, 9999)
	}

	agg := counters.LookupAggregate() // all per-CPU rows reduced in one pass
	fmt.Printf("\nmonitor counters: UDP=%d TCP=%d (per-CPU rows summed control-plane side)\n",
		agg[packet.ProtoUDP], agg[packet.ProtoTCP])

	// Consume the trace stream the way a real ring buffer consumer does:
	// wait on the doorbell, then drain everything consumable in one pass.
	<-events.C()
	fmt.Printf("ring buffer:      %d DNS trace events produced (%d dropped on full ring)\n",
		events.Produced(), events.Dropped())
	events.Poll(func(rec []byte) {
		ev, ok := ebpf.DecodeEvent(rec)
		if !ok {
			return
		}
		fmt.Printf("  %s event: cpu=%d ifindex=%d frame=%dB at %d modelcycles\n",
			ev.Type, ev.CPU, ev.IfIndex, ev.Aux, ev.Cycles)
	})
	// Drain the AF_XDP socket the way a real consumer does: the doorbell
	// announced frames; one poll()-return drains and recycles them.
	capture.Drain()
	xs := xsock.Stats()
	fmt.Printf("AF_XDP capture:   %d full frames drained zero-copy (%d wakeups, %d polls)\n",
		captured, xs.Wakeups, capture.Polls())
	fmt.Printf("LB conn table:    %d sticky flows pinned to backends\n", conns.Len())
	fmt.Printf("forwarded out eth1: %d packets (VIP traffic DNATed to backends)\n", out.Stats().TxPackets)
	return nil
}
