package shell

import (
	"strings"
	"testing"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
)

func sh(t *testing.T) (*Shell, *kernel.Kernel) {
	t.Helper()
	k := kernel.New("host")
	return New(k), k
}

func mustExec(t *testing.T, s *Shell, cmd string) string {
	t.Helper()
	out, err := s.Exec(cmd)
	if err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	return out
}

func TestIpLinkAddSetShow(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add eth0 type phys")
	mustExec(t, s, "ip link set eth0 up")
	d, ok := k.DeviceByName("eth0")
	if !ok || !d.IsUp() {
		t.Fatal("device not created/up")
	}
	out := mustExec(t, s, "ip link show")
	if !strings.Contains(out, "eth0") || !strings.Contains(out, "UP") {
		t.Fatalf("show: %q", out)
	}
	mustExec(t, s, "ip link set eth0 down")
	if d.IsUp() {
		t.Fatal("down failed")
	}
}

func TestVethAndVxlanCreation(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add veth0 type veth peer name veth1")
	v0, ok0 := k.DeviceByName("veth0")
	v1, ok1 := k.DeviceByName("veth1")
	if !ok0 || !ok1 || v0.Peer() != v1 {
		t.Fatal("veth pair not cross-connected")
	}
	mustExec(t, s, "ip link add flannel.1 type vxlan id 1 local 192.168.0.1")
	if _, ok := k.DeviceByName("flannel.1"); !ok {
		t.Fatal("vxlan not created")
	}
	if _, err := s.Exec("ip link add x type warp"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestIpAddrAndRoute(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add eth0 type phys")
	mustExec(t, s, "ip link set eth0 up")
	mustExec(t, s, "ip addr add 10.1.0.254/24 dev eth0")
	d, _ := k.DeviceByName("eth0")
	if !d.HasAddr(packet.MustAddr("10.1.0.254")) {
		t.Fatal("addr missing")
	}
	mustExec(t, s, "ip route add 10.100.0.0/16 via 10.1.0.1 dev eth0")
	// Gateway resolution without an explicit dev.
	mustExec(t, s, "ip route add 10.101.0.0/16 via 10.1.0.1")
	out := mustExec(t, s, "ip route show")
	if !strings.Contains(out, "10.100.0.0/16 via 10.1.0.1 dev eth0") {
		t.Fatalf("route show: %q", out)
	}
	if !strings.Contains(out, "10.101.0.0/16") {
		t.Fatalf("gateway-resolved route missing: %q", out)
	}
	// default keyword.
	mustExec(t, s, "ip route add default via 10.1.0.1")
	if _, ok := k.FIB.Main().Lookup(packet.MustAddr("8.8.8.8")); !ok {
		t.Fatal("default route missing")
	}
	mustExec(t, s, "ip route del 10.100.0.0/16")
	if _, err := s.Exec("ip route del 10.100.0.0/16"); err == nil {
		t.Fatal("double delete accepted")
	}
	out = mustExec(t, s, "ip addr show")
	if !strings.Contains(out, "10.1.0.254/24") {
		t.Fatalf("addr show: %q", out)
	}
	mustExec(t, s, "ip addr del 10.1.0.254/24 dev eth0")
	if d.HasAddr(packet.MustAddr("10.1.0.254")) {
		t.Fatal("addr not removed")
	}
}

func TestIpNeigh(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add eth0 type phys")
	mustExec(t, s, "ip neigh add 10.0.0.1 lladdr 02:aa:bb:cc:dd:ee dev eth0")
	mac, ok := k.Neigh.Resolved(packet.MustAddr("10.0.0.1"), 0)
	if !ok || mac != packet.MustHWAddr("02:aa:bb:cc:dd:ee") {
		t.Fatal("neigh not added")
	}
	out := mustExec(t, s, "ip neigh show")
	if !strings.Contains(out, "PERMANENT") {
		t.Fatalf("neigh show: %q", out)
	}
}

func TestBrctl(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add p0 type phys")
	mustExec(t, s, "brctl addbr br0")
	mustExec(t, s, "brctl addif br0 p0")
	br, ok := k.BridgeByName("br0")
	if !ok || len(br.Ports()) != 1 {
		t.Fatal("bridge/port wrong")
	}
	mustExec(t, s, "brctl stp br0 on")
	if !br.STPEnabled() {
		t.Fatal("stp not enabled")
	}
	out := mustExec(t, s, "brctl show")
	if !strings.Contains(out, "br0") || !strings.Contains(out, "p0") {
		t.Fatalf("brctl show: %q", out)
	}
	mustExec(t, s, "brctl delif br0 p0")
	mustExec(t, s, "brctl delbr br0")
	if _, ok := k.BridgeByName("br0"); ok {
		t.Fatal("bridge survived delbr")
	}
}

func TestIptablesAndIpset(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "iptables -A FORWARD -d 10.10.3.0/24 -j DROP")
	if k.NF.RuleCount("FORWARD") != 1 {
		t.Fatal("rule not appended")
	}
	mustExec(t, s, "iptables -A FORWARD -p tcp --dport 443 -j ACCEPT")
	c, _ := k.NF.Chain("FORWARD")
	if c.Rules[1].Match.Proto != packet.ProtoTCP || c.Rules[1].Match.DstPort != 443 {
		t.Fatalf("match parse: %+v", c.Rules[1].Match)
	}
	mustExec(t, s, "iptables -I FORWARD 1 -s 9.9.9.9/32 -j ACCEPT")
	c, _ = k.NF.Chain("FORWARD")
	if c.Rules[0].Match.Src == nil {
		t.Fatal("insert at head failed")
	}
	out := mustExec(t, s, "iptables -L FORWARD")
	if !strings.Contains(out, "DROP") || !strings.Contains(out, "10.10.3.0/24") {
		t.Fatalf("iptables -L: %q", out)
	}
	mustExec(t, s, "iptables -D FORWARD 1")
	if k.NF.RuleCount("FORWARD") != 2 {
		t.Fatal("delete failed")
	}

	mustExec(t, s, "ipset create blacklist hash:net")
	mustExec(t, s, "ipset add blacklist 203.0.113.0/24")
	mustExec(t, s, "iptables -A FORWARD -m set --match-set blacklist src -j DROP")
	c, _ = k.NF.Chain("FORWARD")
	if c.Rules[2].Match.SrcSet != "blacklist" {
		t.Fatalf("set match parse: %+v", c.Rules[2].Match)
	}
	v, _ := k.NF.EvaluateHook(netfilter.HookForward, &netfilter.Meta{
		Src: packet.MustAddr("203.0.113.9"), Dst: packet.MustAddr("1.1.1.1"),
	})
	if v != netfilter.VerdictDrop {
		t.Fatal("set-backed rule not effective")
	}
	mustExec(t, s, "ipset del blacklist 203.0.113.0/24")
	mustExec(t, s, "ipset destroy blacklist")
	mustExec(t, s, "iptables -F FORWARD")
	if k.NF.RuleCount("FORWARD") != 0 {
		t.Fatal("flush failed")
	}
	mustExec(t, s, "iptables -P FORWARD DROP")
	v, _ = k.NF.EvaluateHook(netfilter.HookForward, &netfilter.Meta{})
	if v != netfilter.VerdictDrop {
		t.Fatal("policy not set")
	}
}

func TestSysctl(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "sysctl -w net.ipv4.ip_forward=1")
	if !k.IPForwarding() {
		t.Fatal("sysctl write failed")
	}
	out := mustExec(t, s, "sysctl net.ipv4.ip_forward")
	if !strings.Contains(out, "= 1") {
		t.Fatalf("sysctl read: %q", out)
	}
}

func TestExecAllScript(t *testing.T) {
	s, k := sh(t)
	script := `
# a router in four lines
ip link add eth0 type phys
ip link set eth0 up
ip addr add 10.1.0.254/24 dev eth0
sysctl -w net.ipv4.ip_forward=1
`
	if _, err := s.ExecAll(script); err != nil {
		t.Fatal(err)
	}
	if !k.IPForwarding() {
		t.Fatal("script not applied")
	}
	// Errors carry the offending line.
	_, err := s.ExecAll("ip link add eth1 type phys\nbogus command here")
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err: %v", err)
	}
}

func TestErrors(t *testing.T) {
	s, _ := sh(t)
	for _, cmd := range []string{
		"frobnicate",
		"ip",
		"ip wormhole add",
		"ip addr add bad dev eth0",
		"ip route add 10.0.0.0/8",
		"brctl",
		"brctl addif br0",
		"iptables",
		"ipset create",
		"sysctl",
	} {
		if _, err := s.Exec(cmd); err == nil {
			t.Errorf("%q accepted", cmd)
		}
	}
	// Blank lines and comments are fine.
	if _, err := s.Exec(""); err != nil {
		t.Error("blank line rejected")
	}
	if _, err := s.Exec("# comment"); err != nil {
		t.Error("comment rejected")
	}
}

func TestBridgeVlanAndFdbCommands(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ip link add p0 type phys")
	mustExec(t, s, "brctl addbr br0")
	mustExec(t, s, "brctl addif br0 p0")
	mustExec(t, s, "bridge vlan add dev p0 vid 10 pvid untagged")
	mustExec(t, s, "bridge vlan add dev p0 vid 20")
	br, _ := k.BridgeByName("br0")
	d, _ := k.DeviceByName("p0")
	port, _ := br.Port(d.Index)
	if port.PVID != 10 || !port.Untagged[10] || !port.Tagged[20] {
		t.Fatalf("vlan config: %+v", port)
	}
	mustExec(t, s, "bridge fdb add 02:aa:00:00:00:01 dev p0 vlan 10")
	if p, ok := br.FDBLookup(packet.MustHWAddr("02:aa:00:00:00:01"), 10, 0); !ok || p != d.Index {
		t.Fatal("static fdb entry missing")
	}
	// VTEP form: needs a vxlan device.
	mustExec(t, s, "ip link add flannel.1 type vxlan id 1 local 192.168.0.1")
	mustExec(t, s, "bridge fdb add 02:bb:00:00:00:01 dev flannel.1 dst 192.168.0.2")

	for _, bad := range []string{
		"bridge",
		"bridge vlan del",
		"bridge vlan add dev ghost vid 1",
		"bridge vlan add dev lo vid 1",
		"bridge fdb add xx dev p0",
		"bridge fdb add 02:aa:00:00:00:01 dev ghost",
		"bridge fdb add 02:aa:00:00:00:01 dev lo",
		"bridge route add",
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestIpvsadmCommands(t *testing.T) {
	s, k := sh(t)
	mustExec(t, s, "ipvsadm -A -t 10.99.0.1:80 -s rr")
	mustExec(t, s, "ipvsadm -a -t 10.99.0.1:80 -r 10.100.0.10")
	mustExec(t, s, "ipvsadm -a -t 10.99.0.1:80 -r 10.101.0.10")
	svcs := k.IPVSServices()
	if len(svcs) != 1 || len(svcs[0].Backends) != 2 || svcs[0].Scheduler != "rr" {
		t.Fatalf("services: %+v", svcs)
	}
	out := mustExec(t, s, "ipvsadm -L")
	if !strings.Contains(out, "10.99.0.1:80") || !strings.Contains(out, "10.100.0.10") {
		t.Fatalf("ipvsadm -L: %q", out)
	}
	mustExec(t, s, "ipvsadm -D -t 10.99.0.1:80")
	if len(k.IPVSServices()) != 0 {
		t.Fatal("service survived -D")
	}
	for _, bad := range []string{
		"ipvsadm",
		"ipvsadm -A",
		"ipvsadm -A -t noport",
		"ipvsadm -A -t 1.1.1.1:xx",
		"ipvsadm -a -t 1.1.1.1:80",
		"ipvsadm -D -t 1.1.1.1:80",
		"ipvsadm -t 1.1.1.1:80",
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
