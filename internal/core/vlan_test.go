package core

import (
	"testing"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// TestVLANIsolationUnderAcceleration: a VLAN-filtering bridge with two
// access ports in VLAN 10 and one in VLAN 20, run through the controller.
// Same-VLAN traffic flows (eventually on the fast path); cross-VLAN
// traffic is isolated on both paths; the synthesized graph carries the
// vlan_filtering specialization.
func TestVLANIsolationUnderAcceleration(t *testing.T) {
	sw := kernel.New("sw")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	sw.SetBridgeVLANFiltering("br0", true)
	br, _ := sw.BridgeByName("br0")

	type station struct {
		host *kernel.Kernel
		dev  *netdev.Device
		port *netdev.Device
	}
	mk := func(i int, vlan uint16, ip string) station {
		h := kernel.New("h")
		hd := h.CreateDevice("eth0", netdev.Physical)
		hd.SetUp(true)
		h.AddAddr("eth0", packet.MustPrefix(ip))
		port := sw.CreateDevice([]string{"swp0", "swp1", "swp2"}[i], netdev.Physical)
		port.SetUp(true)
		netdev.Connect(hd, port)
		if err := sw.AddBridgePort("br0", port.Name); err != nil {
			t.Fatal(err)
		}
		p, _ := br.Port(port.Index)
		p.PVID = vlan
		p.Untagged = map[uint16]bool{vlan: true}
		return station{host: h, dev: hd, port: port}
	}
	a := mk(0, 10, "10.9.0.1/24")
	b := mk(1, 10, "10.9.0.2/24")
	c := mk(2, 20, "10.9.0.3/24")

	ctrl := startController(t, sw, Options{})
	ig := ctrl.Graph().Interfaces["swp0"]
	if ig == nil || ig.Nodes[0].Conf["vlan_filtering"] != "true" {
		t.Fatalf("vlan specialization missing: %s", ctrl.Graph())
	}

	var m sim.Meter
	// Same VLAN: works (first exchange slow path, second fast).
	if !a.host.Ping(packet.MustAddr("10.9.0.2"), 1, 1, nil, &m) {
		t.Fatal("send failed")
	}
	if b.host.Stats().ICMPTx != 1 {
		t.Fatal("same-VLAN ping unanswered")
	}
	redirBefore := a.port.Stats().XDPRedirects
	a.host.Ping(packet.MustAddr("10.9.0.2"), 1, 2, nil, &m)
	if b.host.Stats().ICMPTx != 2 {
		t.Fatal("second same-VLAN ping unanswered")
	}
	if a.port.Stats().XDPRedirects <= redirBefore {
		t.Fatal("learned same-VLAN traffic did not take the fast path")
	}

	// Cross VLAN: fully isolated — even ARP never reaches the station.
	rxBefore := c.dev.Stats().RxPackets
	a.host.Ping(packet.MustAddr("10.9.0.3"), 1, 1, nil, &m)
	if c.host.Stats().ICMPTx != 0 {
		t.Fatal("cross-VLAN ping answered")
	}
	if c.dev.Stats().RxPackets != rxBefore {
		t.Fatal("cross-VLAN frames leaked to the station")
	}
}

// TestRouteChurnUnderTraffic models FRR-style control-plane activity: a
// routing daemon adds and withdraws prefixes continuously while traffic
// flows. Every packet must follow the route table's state at its moment —
// delivered while the route exists, unreachable while it does not.
func TestRouteChurnUnderTraffic(t *testing.T) {
	w := newRouterWorld(t)
	c := startController(t, w.dut, Options{})

	churn := packet.MustPrefix("172.20.0.0/16")
	dst := packet.MustAddr("172.20.1.1")
	for round := 0; round < 20; round++ {
		// FRR installs the prefix.
		w.dut.AddRoute(routeVia(churn, "10.2.0.1", w.out.Index))
		c.Sync()
		before := w.captured
		w.sendUDP(dst)
		if w.captured != before+1 {
			t.Fatalf("round %d: packet lost while route present", round)
		}
		// FRR withdraws it.
		w.dut.DelRoute(churn)
		c.Sync()
		before = w.captured
		w.sendUDP(dst)
		if w.captured != before {
			t.Fatalf("round %d: packet delivered after withdrawal", round)
		}
	}
	// The controller kept up: the last reaction reflects a deployed graph.
	if _, ok := c.LastReaction(); !ok {
		t.Fatal("no reactions recorded")
	}
}
