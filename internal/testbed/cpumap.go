package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fpm"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// CpumapPoint is one measured configuration of the cpumap rebalancer: the
// full slow-path workload arriving on one RX queue, either processed there
// (TargetCPUs == 0, the baseline) or fanned out across TargetCPUs kthreads
// via XDP_REDIRECT into a cpumap. AggregatePPS is bounded by the busiest
// core — the producer once it only pays parse+enqueue, or the most-loaded
// kthread.
type CpumapPoint struct {
	TargetCPUs     int     `json:"target_cpus"` // 0 = same-CPU baseline
	GRO            bool    `json:"gro"`
	AggregatePPS   float64 `json:"aggregate_pps"`
	Speedup        float64 `json:"speedup_vs_same_cpu"`
	ProducerCycles float64 `json:"producer_cycles_per_pkt"`
	BusiestCycles  float64 `json:"busiest_core_cycles_per_pkt"`
	CoalesceRatio  float64 `json:"coalesce_ratio"`
	KthreadRuns    uint64  `json:"kthread_runs"`
	CpumapDrops    uint64  `json:"cpumap_drops"`
}

// CpumapReport is the machine-readable result of CpumapSweep — what
// `lfpbench -exp cpumap` serializes into BENCH_cpumap.json.
type CpumapReport struct {
	Platform     string        `json:"platform"`
	ClockHz      float64       `json:"clock_hz"`
	Qsize        int           `json:"qsize"`
	BulkSize     int           `json:"bulk_size"`
	NAPIBudget   int           `json:"napi_budget"`
	Frames       int           `json:"frames"`
	Flows        int           `json:"flows"`
	PayloadBytes int           `json:"tcp_payload_bytes"`
	Points       []CpumapPoint `json:"points"`
}

// cpumap sweep workload shape: many flows so the splitmix64 spread lands
// near-evenly on the targets, segments emitted flow-major so GRO sees
// coalescible runs on whichever CPU a flow hashes to.
const (
	cpumapFlows   = 256
	cpumapSegs    = 16 // segments per flow -> 4096 frames per point
	cpumapQsize   = 2048
	cpumapPayload = 128
)

// cpumapWorkload builds the sweep's frames: cpumapFlows in-order TCP flows,
// each flow's cpumapSegs segments consecutive.
func cpumapWorkload(d *DUT) [][]byte {
	src := packet.MustAddr("10.1.0.1")
	frames := make([][]byte, 0, cpumapFlows*cpumapSegs)
	for f := 0; f < cpumapFlows; f++ {
		dst := packet.AddrFrom4(10, 100+byte(f%RoutedPrefixes), byte(f/RoutedPrefixes), 10)
		seq, id := uint32(1), uint16(1)
		for s := 0; s < cpumapSegs; s++ {
			tcp := packet.TCP{SrcPort: uint16(4000 + f), DstPort: 80, Seq: seq, Ack: 1,
				Flags: packet.TCPAck, Window: 512}
			frames = append(frames, packet.BuildIPv4(
				packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
				packet.IPv4{TTL: 64, ID: id, Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
				tcp.Marshal(nil, src, dst, make([]byte, cpumapPayload))))
			seq += cpumapPayload
			id++
		}
	}
	return frames
}

// CpumapSweep measures aggregate throughput of one RX queue's slow-path
// workload fanned out across 1/2/4/8 target CPUs, with GRO off and on,
// against the same-CPU baseline. targets entries of 0 are skipped.
func CpumapSweep(targets []int) (*CpumapReport, error) {
	d, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	r := &CpumapReport{
		Platform:     PlatformLinux,
		ClockHz:      sim.ClockHz,
		Qsize:        cpumapQsize,
		BulkSize:     netdev.CPUMapBulkSize,
		NAPIBudget:   netdev.NAPIBudget,
		Frames:       cpumapFlows * cpumapSegs,
		Flows:        cpumapFlows,
		PayloadBytes: cpumapPayload,
	}

	for _, gro := range []bool{false, true} {
		base, err := cpumapPoint(d, 0, gro)
		if err != nil {
			return nil, err
		}
		base.Speedup = 1
		r.Points = append(r.Points, base)
		for _, n := range targets {
			if n <= 0 {
				continue
			}
			p, err := cpumapPoint(d, n, gro)
			if err != nil {
				return nil, err
			}
			p.Speedup = p.AggregatePPS / base.AggregatePPS
			r.Points = append(r.Points, p)
		}
	}
	return r, nil
}

// cpumapPoint drives the workload through one configuration and measures it.
// Wires are unplugged so only DUT work meters; the workload arrives in NAPI
// polls on RX queue 0 with a quiesce per poll, so every poll is exactly one
// kthread run on each touched target — the same GRO window the RX core
// would have had.
func cpumapPoint(d *DUT, targets int, gro bool) (CpumapPoint, error) {
	d.In.SetGRO(gro)
	defer d.In.SetGRO(false)
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	loader := ebpf.NewLoader(d.Kern)
	ops := []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4()}
	var cm *ebpf.CPUMap
	var cpus []int
	if targets > 0 {
		cm = ebpf.NewCPUMap("cpu_map", d.Kern)
		for i := 0; i < targets; i++ {
			cpus = append(cpus, i+1) // CPU 0 is the RX core
			if !cm.Update(i+1, cpumapQsize) {
				return CpumapPoint{}, fmt.Errorf("cpumap: update cpu %d failed", i+1)
			}
		}
		ops = append(ops, fpm.CPUSpreadOp(fpm.CPUSpreadConf{Map: cm, CPUs: cpus}))
	}
	prog, err := loader.Load(&ebpf.Program{Name: "cpumap_sweep", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		return CpumapPoint{}, err
	}
	if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
		return CpumapPoint{}, err
	}

	before := d.Kern.Stats()
	frames := cpumapWorkload(d)
	n := len(frames)
	var m sim.Meter // the RX core (producer)
	for i := 0; i < n; i += netdev.NAPIBudget {
		end := i + netdev.NAPIBudget
		if end > n {
			end = n
		}
		d.In.ReceiveBatch(frames[i:end], 0, &m)
		if cm != nil {
			cm.Quiesce()
		}
	}

	var busiestKthread sim.Cycles
	for _, c := range cpus {
		if cyc := cm.EntryCycles(c); cyc > busiestKthread {
			busiestKthread = cyc
		}
	}
	if cm != nil {
		for _, c := range cpus {
			cm.Delete(c)
		}
	}
	after := d.Kern.Stats()

	// One core per queue/kthread: the aggregate rate is bounded by the
	// busiest of the producer and the kthreads.
	wall := m.Total
	if busiestKthread > wall {
		wall = busiestKthread
	}
	p := CpumapPoint{
		TargetCPUs:     targets,
		GRO:            gro,
		AggregatePPS:   float64(n) * sim.ClockHz / float64(wall),
		ProducerCycles: float64(m.Total) / float64(n),
		BusiestCycles:  float64(wall) / float64(n),
		CoalesceRatio:  float64(after.GROCoalesced-before.GROCoalesced) / float64(n),
		KthreadRuns:    after.CpumapKthreadRuns - before.CpumapKthreadRuns,
		CpumapDrops:    after.CpumapDrops - before.CpumapDrops,
	}
	return p, nil
}

// RenderCpumap prints the sweep in the house table style.
func RenderCpumap(r *CpumapReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cpumap fan-out: one RX queue, slow path spread over N CPUs (%d flows x %d segs, %dB payload)\n",
		r.Flows, r.Frames/r.Flows, r.PayloadBytes)
	fmt.Fprintf(&b, "%-9s %-5s %12s %9s %14s %14s %9s %8s\n",
		"targets", "gro", "Mpps(agg)", "speedup", "producer c/p", "busiest c/p", "coalesce", "runs")
	for _, p := range r.Points {
		gro := "off"
		if p.GRO {
			gro = "on"
		}
		tgt := "same-cpu"
		if p.TargetCPUs > 0 {
			tgt = fmt.Sprintf("%d", p.TargetCPUs)
		}
		fmt.Fprintf(&b, "%-9s %-5s %12.2f %8.2fx %14.1f %14.1f %8.0f%% %8d\n",
			tgt, gro, p.AggregatePPS/1e6, p.Speedup, p.ProducerCycles, p.BusiestCycles, p.CoalesceRatio*100, p.KthreadRuns)
	}
	return b.String()
}
