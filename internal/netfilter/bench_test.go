package netfilter

import (
	"testing"

	"linuxfp/internal/packet"
)

func BenchmarkChainEval100Rules(b *testing.B) {
	nf := New()
	for i := 0; i < 100; i++ {
		p := packet.Prefix{Addr: packet.AddrFrom4(203, 0, byte(i), 0), Bits: 24}
		nf.Append("FORWARD", Rule{Match: Match{Src: &p}, Target: VerdictDrop})
	}
	m := &Meta{Src: packet.MustAddr("8.8.8.8"), Dst: packet.MustAddr("1.1.1.1"), Proto: packet.ProtoUDP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nf.EvaluateHook(HookForward, m)
	}
}

func BenchmarkIpsetContains(b *testing.B) {
	s, _ := NewIPSet("bl", "hash:net")
	for i := 0; i < 1000; i++ {
		s.Add(packet.Prefix{Addr: packet.AddrFrom4(byte(i), byte(i>>2), 0, 0), Bits: 16})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(packet.Addr(uint32(i) * 2654435761))
	}
}

func BenchmarkConntrackTrack(b *testing.B) {
	ct := NewConntrack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.Track(Tuple{Src: packet.Addr(i % 512), Dst: 2, Proto: packet.ProtoTCP, SrcPort: uint16(i), DstPort: 80}, 0)
	}
}
