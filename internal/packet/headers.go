package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ICMP types.
const (
	ICMPEchoReply    uint8 = 0
	ICMPUnreachable  uint8 = 3
	ICMPEchoRequest  uint8 = 8
	ICMPTimeExceeded uint8 = 11
)

// Header sizes in bytes.
const (
	EthHdrLen  = 14
	VLANTagLen = 4
	ARPLen     = 28
	IPv4MinLen = 20
	ICMPHdrLen = 8
	UDPHdrLen  = 8
	TCPHdrLen  = 20
)

// IPv4 flag bits (in the flags/fragment-offset field).
const (
	IPv4DontFragment uint16 = 0x4000
	IPv4MoreFrags    uint16 = 0x2000
	IPv4FragOffMask  uint16 = 0x1fff
)

var (
	// ErrTruncated reports a frame too short for the header being decoded.
	ErrTruncated = errors.New("packet: truncated")
	// ErrBadChecksum reports a failed checksum validation.
	ErrBadChecksum = errors.New("packet: bad checksum")
	// ErrBadHeader reports a malformed header field.
	ErrBadHeader = errors.New("packet: malformed header")
)

// Ethernet is a decoded Ethernet header, with an optional single 802.1Q tag.
type Ethernet struct {
	Dst       HWAddr
	Src       HWAddr
	VLAN      uint16 // VLAN ID 1..4094; 0 means untagged
	VLANPrio  uint8
	EtherType uint16
}

// HeaderLen reports the encoded length (14 or 18 with a VLAN tag).
func (e *Ethernet) HeaderLen() int {
	if e.VLAN != 0 {
		return EthHdrLen + VLANTagLen
	}
	return EthHdrLen
}

// Marshal appends the encoded header to dst and returns the result.
func (e *Ethernet) Marshal(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	if e.VLAN != 0 {
		dst = binary.BigEndian.AppendUint16(dst, EtherTypeVLAN)
		tci := uint16(e.VLANPrio)<<13 | e.VLAN&0x0fff
		dst = binary.BigEndian.AppendUint16(dst, tci)
	}
	return binary.BigEndian.AppendUint16(dst, e.EtherType)
}

// UnmarshalEthernet decodes the Ethernet header and reports its length.
func UnmarshalEthernet(b []byte) (Ethernet, int, error) {
	if len(b) < EthHdrLen {
		return Ethernet{}, 0, fmt.Errorf("ethernet: %w", ErrTruncated)
	}
	var e Ethernet
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	n := EthHdrLen
	if et == EtherTypeVLAN {
		if len(b) < EthHdrLen+VLANTagLen {
			return Ethernet{}, 0, fmt.Errorf("vlan tag: %w", ErrTruncated)
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		e.VLANPrio = uint8(tci >> 13)
		e.VLAN = tci & 0x0fff
		et = binary.BigEndian.Uint16(b[16:18])
		n += VLANTagLen
	}
	e.EtherType = et
	return e, n, nil
}

// ARP is a decoded IPv4-over-Ethernet ARP message.
type ARP struct {
	Op       uint16
	SenderHW HWAddr
	SenderIP Addr
	TargetHW HWAddr
	TargetIP Addr
}

// Marshal appends the encoded message to dst.
func (a *ARP) Marshal(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1) // Ethernet
	dst = binary.BigEndian.AppendUint16(dst, EtherTypeIPv4)
	dst = append(dst, 6, 4)
	dst = binary.BigEndian.AppendUint16(dst, a.Op)
	dst = append(dst, a.SenderHW[:]...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.SenderIP))
	dst = append(dst, a.TargetHW[:]...)
	return binary.BigEndian.AppendUint32(dst, uint32(a.TargetIP))
}

// UnmarshalARP decodes an ARP message.
func UnmarshalARP(b []byte) (ARP, error) {
	if len(b) < ARPLen {
		return ARP{}, fmt.Errorf("arp: %w", ErrTruncated)
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != EtherTypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return ARP{}, fmt.Errorf("arp: %w", ErrBadHeader)
	}
	var a ARP
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	a.SenderIP = AddrFromBytes(b[14:18])
	copy(a.TargetHW[:], b[18:24])
	a.TargetIP = AddrFromBytes(b[24:28])
	return a, nil
}

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint16 // DF/MF bits as in the wire field
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src      Addr
	Dst      Addr
	Options  []byte // raw options, length multiple of 4
}

// HeaderLen reports the encoded header length including options.
func (h *IPv4) HeaderLen() int { return IPv4MinLen + len(h.Options) }

// MoreFragments reports whether the MF bit is set.
func (h *IPv4) MoreFragments() bool { return h.Flags&IPv4MoreFrags != 0 }

// DontFragment reports whether the DF bit is set.
func (h *IPv4) DontFragment() bool { return h.Flags&IPv4DontFragment != 0 }

// IsFragment reports whether the packet is any fragment of a larger datagram.
func (h *IPv4) IsFragment() bool { return h.MoreFragments() || h.FragOff != 0 }

// Marshal appends the encoded header (with correct checksum) to dst.
func (h *IPv4) Marshal(dst []byte) []byte {
	if len(h.Options)%4 != 0 {
		panic("packet: IPv4 options length must be a multiple of 4")
	}
	ihl := (IPv4MinLen + len(h.Options)) / 4
	start := len(dst)
	dst = append(dst, byte(4<<4|ihl), h.TOS)
	dst = binary.BigEndian.AppendUint16(dst, h.TotalLen)
	dst = binary.BigEndian.AppendUint16(dst, h.ID)
	dst = binary.BigEndian.AppendUint16(dst, h.Flags&^IPv4FragOffMask|h.FragOff&IPv4FragOffMask)
	dst = append(dst, h.TTL, h.Proto, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(h.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(h.Dst))
	dst = append(dst, h.Options...)
	csum := Checksum(dst[start:])
	binary.BigEndian.PutUint16(dst[start+10:], csum)
	return dst
}

// UnmarshalIPv4 decodes and validates an IPv4 header, reporting its length.
func UnmarshalIPv4(b []byte) (IPv4, int, error) {
	if len(b) < IPv4MinLen {
		return IPv4{}, 0, fmt.Errorf("ipv4: %w", ErrTruncated)
	}
	if b[0]>>4 != 4 {
		return IPv4{}, 0, fmt.Errorf("ipv4 version %d: %w", b[0]>>4, ErrBadHeader)
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4MinLen || len(b) < ihl {
		return IPv4{}, 0, fmt.Errorf("ipv4 ihl %d: %w", ihl, ErrBadHeader)
	}
	if Checksum(b[:ihl]) != 0 {
		return IPv4{}, 0, fmt.Errorf("ipv4: %w", ErrBadChecksum)
	}
	var h IPv4
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = ff &^ IPv4FragOffMask
	h.FragOff = ff & IPv4FragOffMask
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = AddrFromBytes(b[12:16])
	h.Dst = AddrFromBytes(b[16:20])
	if ihl > IPv4MinLen {
		h.Options = append([]byte(nil), b[IPv4MinLen:ihl]...)
	}
	if int(h.TotalLen) < ihl {
		return IPv4{}, 0, fmt.Errorf("ipv4 total length %d < ihl: %w", h.TotalLen, ErrBadHeader)
	}
	return h, ihl, nil
}

// ICMP is a decoded ICMP header (echo-oriented: Rest carries id/seq).
type ICMP struct {
	Type uint8
	Code uint8
	Rest uint32
}

// Marshal appends the header and payload with a correct checksum.
func (ic *ICMP) Marshal(dst, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, ic.Type, ic.Code, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, ic.Rest)
	dst = append(dst, payload...)
	binary.BigEndian.PutUint16(dst[start+2:], Checksum(dst[start:]))
	return dst
}

// UnmarshalICMP decodes and validates an ICMP message, returning the payload.
func UnmarshalICMP(b []byte) (ICMP, []byte, error) {
	if len(b) < ICMPHdrLen {
		return ICMP{}, nil, fmt.Errorf("icmp: %w", ErrTruncated)
	}
	if Checksum(b) != 0 {
		return ICMP{}, nil, fmt.Errorf("icmp: %w", ErrBadChecksum)
	}
	return ICMP{Type: b[0], Code: b[1], Rest: binary.BigEndian.Uint32(b[4:8])}, b[8:], nil
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// Marshal appends the header and payload; src/dst feed the pseudo-header.
func (u *UDP) Marshal(dst []byte, src, dstIP Addr, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, u.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(UDPHdrLen+len(payload)))
	dst = append(dst, 0, 0)
	dst = append(dst, payload...)
	csum := ChecksumWithPseudo(src, dstIP, ProtoUDP, dst[start:])
	if csum == 0 {
		csum = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(dst[start+6:], csum)
	return dst
}

// UnmarshalUDP decodes a UDP header, returning the payload. Checksum is
// validated when src/dst are provided (non-zero) and the checksum is set.
func UnmarshalUDP(b []byte, src, dst Addr) (UDP, []byte, error) {
	if len(b) < UDPHdrLen {
		return UDP{}, nil, fmt.Errorf("udp: %w", ErrTruncated)
	}
	var u UDP
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	u.Checksum = binary.BigEndian.Uint16(b[6:8])
	if int(u.Length) < UDPHdrLen || int(u.Length) > len(b) {
		return UDP{}, nil, fmt.Errorf("udp length %d: %w", u.Length, ErrBadHeader)
	}
	if u.Checksum != 0 && src != 0 {
		if ChecksumWithPseudo(src, dst, ProtoUDP, b[:u.Length]) != 0 {
			return UDP{}, nil, fmt.Errorf("udp: %w", ErrBadChecksum)
		}
	}
	return u, b[UDPHdrLen:u.Length], nil
}

// TCPFlags hold the TCP control bits.
type TCPFlags uint8

// TCP control bits.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
	TCPEce
	TCPCwr
)

// TCP is a decoded TCP header (no options).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16
}

// Marshal appends the header and payload with a correct checksum.
func (t *TCP) Marshal(dst []byte, src, dstIP Addr, payload []byte) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, t.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, t.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, t.Seq)
	dst = binary.BigEndian.AppendUint32(dst, t.Ack)
	dst = append(dst, byte(TCPHdrLen/4)<<4, byte(t.Flags))
	dst = binary.BigEndian.AppendUint16(dst, t.Window)
	dst = append(dst, 0, 0, 0, 0)
	dst = append(dst, payload...)
	binary.BigEndian.PutUint16(dst[start+16:], ChecksumWithPseudo(src, dstIP, ProtoTCP, dst[start:]))
	return dst
}

// UnmarshalTCP decodes a TCP header, returning the payload.
func UnmarshalTCP(b []byte, src, dst Addr) (TCP, []byte, error) {
	if len(b) < TCPHdrLen {
		return TCP{}, nil, fmt.Errorf("tcp: %w", ErrTruncated)
	}
	off := int(b[12]>>4) * 4
	if off < TCPHdrLen || off > len(b) {
		return TCP{}, nil, fmt.Errorf("tcp offset %d: %w", off, ErrBadHeader)
	}
	if src != 0 {
		if ChecksumWithPseudo(src, dst, ProtoTCP, b) != 0 {
			return TCP{}, nil, fmt.Errorf("tcp: %w", ErrBadChecksum)
		}
	}
	var t TCP
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = TCPFlags(b[13])
	t.Window = binary.BigEndian.Uint16(b[14:16])
	return t, b[off:], nil
}
