package fpm

import (
	"math/rand"
	"sync"
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// attachAFXDPAll loads a fast path that redirects every parsed frame into
// slot 0 of a fresh XSK map and attaches it to the rig's ingress.
func (r *routerRig) attachAFXDPAll(t *testing.T, cfg ebpf.AFXDPConfig) (*ebpf.XSKMap, *ebpf.AFXDPSocket) {
	t.Helper()
	xsk := ebpf.NewXSKMap("xsks", 4)
	sock := ebpf.NewAFXDPSocket(cfg)
	if !xsk.Update(0, sock) {
		t.Fatal("bind failed")
	}
	loader := ebpf.NewLoader(r.dut)
	ops := []ebpf.Op{ParseEth(), ParseIPv4(), ParseL4(),
		AFXDPOp(AFXDPConf{Map: xsk, Slot: 0})}
	prog, err := loader.Load(&ebpf.Program{Name: "xsk_all", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.AttachXDP(r.in, prog, "driver"); err != nil {
		t.Fatal(err)
	}
	return xsk, sock
}

// TestAFXDPConservationParity drives bursts of every size 1..200 into the
// AF_XDP fast path, alternating the per-packet and batched drivers, with a
// deliberately tiny socket and a userspace side that alternates between
// keeping up, hoarding frames (starving the fill ring) and not draining at
// all (overflowing the RX ring). After every burst the XDP verdict
// conservation invariant (drops + tx + redirects + pass == rx) must
// balance, every surviving redirect must be a published RX descriptor
// (XDPRedirects == RxDelivered), and every drop must carry a reason.
func TestAFXDPConservationParity(t *testing.T) {
	r := newRouterRig(t)
	// RX ring 8 against a 32-frame UMEM: an undrained socket overflows the
	// RX ring with fill stock remaining (xsk_rx_full); a hoarding app
	// starves the fill ring with RX space remaining (xsk_fill_empty).
	_, sock := r.attachAFXDPAll(t, ebpf.AFXDPConfig{NumFrames: 32, RingSize: 8})

	var appMeter sim.Meter
	descs := make([]ebpf.XDPDesc, 32)
	addrs := make([]uint64, 32)
	var held []uint64

	rxBase := r.in.Stats().RxPackets
	injected := uint64(0)
	for n := 1; n <= 200; n++ {
		frames := make([][]byte, n)
		for i := range frames {
			dst := packet.AddrFrom4(10, 100+byte(i%50), 1, byte(1+i%200))
			frames[i] = r.frameUDP(dst, uint16(1024+n), uint16(2000+i%7), 64, nil)
		}
		var m sim.Meter
		if n%2 == 1 {
			for _, f := range frames {
				r.in.Receive(f, &m)
			}
		} else {
			r.in.ReceiveBatch(frames, 0, &m)
		}
		injected += uint64(n)

		// Userspace behaviour cycle: stall, starve, recover. Four hoard
		// rounds back-to-back are needed to push held inventory past
		// NumFrames-RingSize (24), the point where the fill ring can run
		// dry while the RX ring still has space.
		switch n % 8 {
		case 3, 4, 5, 6: // hoard: drain RX but keep the frames (fill ring starves)
			for {
				got := sock.RxBurst(descs, &appMeter)
				if got == 0 {
					break
				}
				for i := 0; i < got; i++ {
					held = append(held, descs[i].Addr)
				}
			}
		case 0: // recover: hand everything back
			sock.FillAddrs(held, &appMeter)
			held = held[:0]
			for {
				got := sock.RxBurst(descs, &appMeter)
				if got == 0 {
					break
				}
				for i := 0; i < got; i++ {
					addrs[i] = descs[i].Addr
				}
				sock.FillAddrs(addrs[:got], &appMeter)
			}
		default: // stall: no draining at all (RX ring overflows)
		}

		st := r.in.Stats()
		if st.RxPackets-rxBase != injected {
			t.Fatalf("n=%d: rx = %d, want %d", n, st.RxPackets-rxBase, injected)
		}
		if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != injected {
			t.Fatalf("n=%d: conservation violated: drops(%d)+tx(%d)+redir(%d)+pass(%d) = %d != %d",
				n, st.XDPDrops, st.XDPTx, st.XDPRedirects, st.XDPPass, got, injected)
		}
		if delivered := sock.Stats().RxDelivered; st.XDPRedirects != delivered {
			t.Fatalf("n=%d: XDPRedirects (%d) != RxDelivered (%d): a redirect survived without a descriptor",
				n, st.XDPRedirects, delivered)
		}
		dr := r.in.DropReasons()
		if total := drop.Total(dr); total != st.RxDropped+st.TxDropped+st.XDPDrops {
			t.Fatalf("n=%d: per-reason sum %d != total drops %d", n, total, st.RxDropped+st.TxDropped+st.XDPDrops)
		}
	}

	dr := r.in.DropReasons()
	if dr[drop.ReasonXSKRxFull] == 0 {
		t.Fatal("no RX-ring overflow occurred; xsk_rx_full reclassification untested")
	}
	if dr[drop.ReasonXSKFillEmpty] == 0 {
		t.Fatal("no fill-ring underrun occurred; xsk_fill_empty reclassification untested")
	}
	ss := sock.Stats()
	if dr[drop.ReasonXSKRxFull] != ss.RxFull || dr[drop.ReasonXSKFillEmpty] != ss.FillEmpty {
		t.Fatalf("device reasons (%d/%d) != socket stats (%d/%d)",
			dr[drop.ReasonXSKRxFull], dr[drop.ReasonXSKFillEmpty], ss.RxFull, ss.FillEmpty)
	}

	// Dropped frames rewound their addrs; held frames restored: no leaks.
	sock.FillAddrs(held, &appMeter)
	for {
		got := sock.RxBurst(descs, &appMeter)
		if got == 0 {
			break
		}
		for i := 0; i < got; i++ {
			addrs[i] = descs[i].Addr
		}
		sock.FillAddrs(addrs[:got], &appMeter)
	}
	if _, _, _, _, intact := sock.AuditUMEM(); !intact {
		t.Fatal("UMEM frames leaked across forced overflow/underrun")
	}
}

// TestAFXDPSwapRaceHammer blasts redirect traffic from 8 RX queues into
// four AF_XDP sockets selected by destination port, while one goroutine
// churns the XSK map's slots (delete, rebind, cross-bind), per-socket app
// goroutines drain concurrently, and a control-plane goroutine reads
// stats. Under -race this is the XSKMap memory-safety proof; the final
// conservation checks prove no frame is lost or double-counted across
// mid-poll slot swaps — the enqueue-time resolution satellite.
func TestAFXDPSwapRaceHammer(t *testing.T) {
	r := newRouterRig(t)
	r.sinkDev.Tap = nil // concurrent delivery; the rig's capture append is single-threaded only

	const slots = 4
	xsk := ebpf.NewXSKMap("xsks", slots)
	socks := make([]*ebpf.AFXDPSocket, slots)
	apps := make([]*ebpf.AFXDPApp, slots)
	for i := range socks {
		socks[i] = ebpf.NewAFXDPSocket(ebpf.AFXDPConfig{NumFrames: 128, RingSize: 32, BusyPoll: true})
		xsk.Update(i, socks[i])
		apps[i] = ebpf.NewAFXDPApp(socks[i], nil, &sim.Meter{CPU: 8 + i})
	}

	loader := ebpf.NewLoader(r.dut)
	ops := []ebpf.Op{ParseEth(), ParseIPv4(), ParseL4()}
	for i := 0; i < slots; i++ {
		ops = append(ops, AFXDPOp(AFXDPConf{Proto: packet.ProtoUDP, DstPort: uint16(2000 + i), Map: xsk, Slot: i}))
	}
	prog, err := loader.Load(&ebpf.Program{Name: "xsk_spread", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.AttachXDP(r.in, prog, "driver"); err != nil {
		t.Fatal(err)
	}

	const total = 6000
	rxBase := r.in.Stats().RxPackets
	kBase := r.dut.Stats()
	pool := r.dut.StartRxQueues(r.in, 8, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // slot churn under live redirect traffic
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			slot := i % slots
			switch i % 3 {
			case 0:
				xsk.Delete(slot)
			case 1:
				xsk.Update(slot, socks[(slot+1)%slots])
			default:
				xsk.Update(slot, socks[slot])
			}
		}
	}()
	go func() { // control plane: lookups and stats reads during churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = xsk.Lookup(i % slots)
			_ = socks[i%slots].Stats()
			_, _, _, _ = socks[i%slots].RingOccupancy()
		}
	}()
	for i := range apps {
		wg.Add(1)
		go func(a *ebpf.AFXDPApp) { // one app per socket (SPSC consumer side)
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.RunOnce(32)
				}
			}
		}(apps[i])
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < total; i++ {
		var dst packet.Addr
		if rng.Intn(8) == 0 {
			dst = packet.AddrFrom4(203, 0, 113, 9) // no route: slow-path drop
		} else {
			dst = packet.AddrFrom4(10, 100+byte(rng.Intn(50)), 1, 7)
		}
		// Port 2004 matches no capture op: those frames pass to the stack.
		pool.Steer(r.frameUDP(dst, uint16(1024+rng.Intn(8000)), uint16(2000+rng.Intn(5)), 64, nil))
	}
	pool.Close()
	close(stop)
	wg.Wait()

	st := r.in.Stats()
	if st.RxPackets-rxBase != total {
		t.Fatalf("rx = %d, want %d", st.RxPackets-rxBase, total)
	}
	if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != total {
		t.Fatalf("conservation violated: drops(%d)+tx(%d)+redir(%d)+pass(%d) = %d != injected %d",
			st.XDPDrops, st.XDPTx, st.XDPRedirects, st.XDPPass, got, total)
	}
	var delivered uint64
	for i, s := range socks {
		apps[i].Drain()
		ss := s.Stats()
		delivered += ss.RxDelivered
		if _, _, _, _, intact := s.AuditUMEM(); !intact {
			t.Fatalf("socket %d leaked UMEM frames under churn", i)
		}
	}
	if st.XDPRedirects != delivered {
		t.Fatalf("XDPRedirects (%d) != delivered descriptors (%d): a redirect survived without a descriptor",
			st.XDPRedirects, delivered)
	}
	dr := r.in.DropReasons()
	if total := drop.Total(dr); total != st.RxDropped+st.TxDropped+st.XDPDrops {
		t.Fatalf("per-reason sum %d != total drops %d", total, st.RxDropped+st.TxDropped+st.XDPDrops)
	}
	// Every XDP_PASS punt entered the stack exactly once and ended as
	// exactly one forward or one drop.
	ks := r.dut.Stats()
	stackOut := (ks.Forwarded - kBase.Forwarded) + (ks.Dropped - kBase.Dropped)
	if st.XDPPass != stackOut {
		t.Fatalf("stack entries %d != outcomes %d (fwd %d, drop %d)",
			st.XDPPass, stackOut, ks.Forwarded-kBase.Forwarded, ks.Dropped-kBase.Dropped)
	}
}
