package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemoConfig(t *testing.T) {
	if err := run("", true, false, false); err != nil {
		t.Fatal(err)
	}
	// TC mode too.
	if err := run("", false, true, false); err != nil {
		t.Fatal(err)
	}
	// Metrics snapshot mode: stage latency attached, Prometheus text on exit.
	if err := run("", false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunScriptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "router.cfg")
	script := "ip link add eth0 type phys\nip link set eth0 up\nsysctl -w net.ipv4.ip_forward=1\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, false, false); err != nil {
		t.Fatal(err)
	}
	// Missing file and bad config both error.
	if err := run(filepath.Join(t.TempDir(), "nope.cfg"), false, false, false); err == nil {
		t.Fatal("missing script accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	os.WriteFile(bad, []byte("definitely not a command"), 0o644)
	if err := run(bad, false, false, false); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSplitLines(t *testing.T) {
	got := splitLines("a\nb\n\nc")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("splitLines: %v", got)
	}
	if len(splitLines("")) != 0 {
		t.Fatal("empty input")
	}
}
