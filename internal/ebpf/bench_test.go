package ebpf

import (
	"testing"

	"linuxfp/internal/sim"
)

func BenchmarkProgramRun8Ops(b *testing.B) {
	p := &Program{Name: "bench", Hook: HookXDP, Default: VerdictPass}
	for i := 0; i < 8; i++ {
		p.Ops = append(p.Ops, NewOp("nop", 4, 0, 8, func(*Ctx) Verdict { return VerdictNext }))
	}
	ctx := &Ctx{Meter: &sim.Meter{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.run(ctx)
	}
}

func BenchmarkTailCallChain(b *testing.B) {
	pa := NewProgArray("chain", 4)
	final := &Program{Name: "final", Hook: HookXDP, Ops: []Op{
		NewOp("end", 4, 0, 8, func(*Ctx) Verdict { return VerdictPass }),
	}}
	pa.Update(3, final)
	for i := 2; i >= 0; i-- {
		slot := i + 1
		pa.Update(i, &Program{Name: "link", Hook: HookXDP, Ops: []Op{
			NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict { return c.TailCall(pa, slot) }),
		}})
	}
	entry := pa.Lookup(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Ctx{Meter: &sim.Meter{}}
		entry.run(ctx)
	}
}

func BenchmarkDispatcherSwap(b *testing.B) {
	pa := NewProgArray("d", 1)
	p1 := &Program{Name: "a", Hook: HookXDP}
	p2 := &Program{Name: "b", Hook: HookXDP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			pa.Update(0, p1)
		} else {
			pa.Update(0, p2)
		}
	}
}

// benchProgram8Ops builds the 8-op bench program with specializer hooks on
// half the ops: four are elided under specialization, so the specialized
// body executes (and meters) half the chain.
func benchProgram8Ops() *Program {
	p := &Program{Name: "bench", Hook: HookXDP, Default: VerdictPass}
	for i := 0; i < 8; i++ {
		op := NewOp("nop", 4, 0, 8, func(*Ctx) Verdict { return VerdictNext })
		if i%2 == 1 {
			op = op.WithSpecializer(func(*SpecEnv) SpecResult { return SpecResult{Elide: true} })
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// benchExec runs the program through Program.exec with the jit/spec flags
// set per form — the per-Op dispatch and metering overhead the fusion stage
// removes, and the dead ops the specializer removes on top, isolated from
// packet work.
func benchExec(b *testing.B, jit, spec bool) {
	p := benchProgram8Ops()
	p.jit.Store(fuse(p))
	p.spec.Store(specialize(p, &SpecEnv{Hook: p.Hook}))
	ctx := &Ctx{Meter: &sim.Meter{}, jit: jit, spec: spec}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.exec(ctx)
	}
}

func BenchmarkProgramInterpreted8Ops(b *testing.B) { benchExec(b, false, false) }

func BenchmarkProgramJIT8Ops(b *testing.B) { benchExec(b, true, false) }

func BenchmarkProgramSpecialized8Ops(b *testing.B) { benchExec(b, true, true) }

// TestSpecializedHotPathZeroAlloc pins the specialized fast path at zero
// allocations per packet: a Load-time pass that made the per-packet path
// allocate would trade the win it measures away.
func TestSpecializedHotPathZeroAlloc(t *testing.T) {
	p := benchProgram8Ops()
	p.jit.Store(fuse(p))
	p.spec.Store(specialize(p, &SpecEnv{Hook: p.Hook}))
	ctx := &Ctx{Meter: &sim.Meter{}, jit: true, spec: true}
	if avg := testing.AllocsPerRun(200, func() { p.exec(ctx) }); avg != 0 {
		t.Fatalf("specialized hot path allocates %.1f per exec, want 0", avg)
	}
}
