package testbed

import (
	"bytes"
	"fmt"
	"strings"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
)

// Sockmap experiment modes.
const (
	SockmapModeFull   = "fullstack"  // net.core.sockmap=0: full walk + userspace relay
	SockmapModeSplice = "sockmap"    // fast demux + kernel-native splice
	SockmapModeL7     = "sockmap_l7" // fast demux + sk_skb L7 verdict + bpf_sk_redirect_map
)

// SockmapPoint is one measured (flows, mode) configuration: the same local
// RPC service and proxy workload racing the full stack against the
// socket-layer fast path.
type SockmapPoint struct {
	Flows int    `json:"flows"`
	Mode  string `json:"mode"`

	// Local delivery, cold: the zipf draw including first-packet misses.
	LocalCycles float64 `json:"local_cycles_per_pkt"`
	LocalPPS    float64 `json:"local_pps"`
	LocalGain   float64 `json:"local_gain_vs_fullstack"`
	HitRate     float64 `json:"hit_rate"`

	// Local delivery, established: the same flows replayed after their
	// first delivery memoized them — the steady state an RPC server lives
	// in, and the number the ≥30% reduction claim is about.
	EstCycles float64 `json:"established_cycles_per_pkt"`
	EstGain   float64 `json:"established_gain_vs_fullstack"`

	// Proxy forwarding (ingress→egress through the proxy socket pair).
	ProxyCycles float64 `json:"proxy_cycles_per_pkt"`
	ProxyPPS    float64 `json:"proxy_pps"`
	ProxyGain   float64 `json:"proxy_gain_vs_fullstack"`
	Splices     uint64  `json:"splices"`
	L7Verdicts  uint64  `json:"l7_verdicts"`
	L7Denied    uint64  `json:"l7_denied_drops"`

	// RPC latency (netperf-style RR over the measured proxy cost).
	RTTp50     float64 `json:"rtt_p50_usec"`
	RTTp99     float64 `json:"rtt_p99_usec"`
	RRTputSec  float64 `json:"rr_tput_per_sec"`
	Delivered  uint64  `json:"delivered"`
	Dropped    uint64  `json:"dropped"`
}

// SockmapReport is the machine-readable result of SockmapSweep — what
// `lfpbench -exp sockmap` serializes into BENCH_sockmap.json.
type SockmapReport struct {
	Platform    string         `json:"platform"`
	ClockHz     float64        `json:"clock_hz"`
	ZipfS       float64        `json:"zipf_s"`
	LocalFrames int            `json:"local_frames"`
	ProxyFrames int            `json:"proxy_frames"`
	Points      []SockmapPoint `json:"points"`
}

// Sockmap workload shape: enough frames that zipf reuse establishes the hot
// flows, few enough that the 1M-flow point still runs in seconds. The flow
// count is the concurrent-flow population the zipf draws from; at 1M the
// established-flow table (16384 entries/core) is heavily oversubscribed, so
// the hit rate degrades honestly instead of being configured.
const (
	sockmapZipfS       = 1.2
	sockmapLocalFrames = 65536
	sockmapProxyFrames = 16384
	sockmapSeed        = 20260808
	sockmapDenyFrames  = 64
	// The established-flow replay: a working set small enough that every
	// flow stays memoized, measured on its second pass.
	sockmapEstFlows  = 2048
	sockmapEstFrames = 8192
)

// Proxy port plan: clients hit the DUT's downstream leg; the proxy emits
// toward the sink's server port.
const (
	sockmapSvcPort    = 5353 // local UDP RPC service
	sockmapProxyPort  = 7000 // downstream (client-facing) leg
	sockmapServerPort = 7001 // upstream server on the sink
	sockmapUpLocal    = 7100 // local port of the upstream leg
	sockmapClientPort = 6100 // client source port responses return to
)

// sockmapTuple spreads rank r over (srcIP, srcPort) so every rank is a
// distinct established flow; ports avoid 0.
func sockmapTuple(r int) (packet.Addr, uint16) {
	host := r / 65535
	return packet.AddrFrom4(10, 3, byte(host>>8), byte(host)), uint16(r%65535) + 1
}

// sockmapLocalWorkload draws the service-delivery frames: zipf-ranked flows
// to the DUT's bound UDP service.
func sockmapLocalWorkload(d *DUT, flows int) [][]byte {
	dut := packet.MustAddr("10.1.0.254")
	z := traffic.NewZipf(sockmapSeed, sockmapZipfS, flows)
	frames := make([][]byte, sockmapLocalFrames)
	for i := range frames {
		src, sport := sockmapTuple(z.Next())
		u := packet.UDP{SrcPort: sport, DstPort: sockmapSvcPort}
		frames[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, make([]byte, 64)))
	}
	return frames
}

// sockmapProxyWorkload draws the RPC request frames: zipf-ranked client
// flows into the proxy leg, each carrying an HTTP request line the L7
// verdict can parse. Payloads depend only on (rank, index), so every mode
// sees byte-identical ingress.
func sockmapProxyWorkload(d *DUT, flows int) [][]byte {
	dut := packet.MustAddr("10.1.0.254")
	z := traffic.NewZipf(sockmapSeed+1, sockmapZipfS, flows)
	frames := make([][]byte, sockmapProxyFrames)
	for i := range frames {
		r := z.Next()
		src, sport := sockmapTuple(r)
		payload := make([]byte, 64)
		copy(payload, fmt.Sprintf("GET /api/%d HTTP/1.1\r\n\r\n", r%1000))
		u := packet.UDP{SrcPort: sport, DstPort: sockmapProxyPort}
		frames[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, payload))
	}
	return frames
}

// sockmapEstWorkload draws the established-flow replay: a bounded working
// set cycled round-robin, so after one uncounted warm pass every frame of
// the measured pass lands on a memoized flow.
func sockmapEstWorkload(d *DUT, flows int) [][]byte {
	dut := packet.MustAddr("10.1.0.254")
	set := min(flows, sockmapEstFlows)
	frames := make([][]byte, sockmapEstFrames)
	for i := range frames {
		src, sport := sockmapTuple(i % set)
		u := packet.UDP{SrcPort: sport, DstPort: sockmapSvcPort}
		frames[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, make([]byte, 64)))
	}
	return frames
}

// sockmapDenyWorkload draws frames the L7 policy rejects in-kernel.
func sockmapDenyWorkload(d *DUT) [][]byte {
	dut := packet.MustAddr("10.1.0.254")
	frames := make([][]byte, sockmapDenyFrames)
	for i := range frames {
		src, sport := sockmapTuple(i)
		payload := make([]byte, 64)
		copy(payload, "POST /admin/keys HTTP/1.1\r\n\r\n")
		u := packet.UDP{SrcPort: sport, DstPort: sockmapProxyPort}
		frames[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dut},
			u.Marshal(nil, src, dut, payload))
	}
	return frames
}

// SockmapSweep races the full stack against the socket-layer fast path —
// with and without the L7 verdict offload — at each concurrent-flow count.
// Every point asserts conservation (delivered + forwarded + dropped ==
// injected), the per-reason drop ledger summing to the drop total, and the
// spliced proxy output being byte-identical to the full-stack relay's.
func SockmapSweep(flowCounts []int) (*SockmapReport, error) {
	r := &SockmapReport{
		Platform:    PlatformLinux,
		ClockHz:     sim.ClockHz,
		ZipfS:       sockmapZipfS,
		LocalFrames: sockmapLocalFrames,
		ProxyFrames: sockmapProxyFrames,
	}
	for _, flows := range flowCounts {
		if flows <= 0 {
			continue
		}
		var full SockmapPoint
		var fullTx [][]byte
		for _, mode := range []string{SockmapModeFull, SockmapModeSplice, SockmapModeL7} {
			p, tx, err := sockmapPoint(flows, mode)
			if err != nil {
				return nil, err
			}
			switch mode {
			case SockmapModeFull:
				full, fullTx = p, tx
				p.LocalGain, p.EstGain, p.ProxyGain = 1, 1, 1
			default:
				p.LocalGain = full.LocalCycles / p.LocalCycles
				p.EstGain = full.EstCycles / p.EstCycles
				p.ProxyGain = full.ProxyCycles / p.ProxyCycles
				// Byte identity: the spliced proxy output must match the
				// full-stack relay's frame for frame.
				if err := sockmapCompareTx(fullTx, tx, flows, mode); err != nil {
					return nil, err
				}
			}
			r.Points = append(r.Points, p)
		}
	}
	return r, nil
}

// sockmapCompareTx asserts the egress captures match byte for byte from the
// EtherType onward (the MACs differ because every fresh DUT draws new device
// MACs from the global allocator; everything the stack computes — IP IDs,
// checksums, ports, payload — must be identical).
func sockmapCompareTx(want, got [][]byte, flows int, mode string) error {
	if len(want) != len(got) {
		return fmt.Errorf("sockmap: flows=%d %s emitted %d egress frames, fullstack %d", flows, mode, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if len(w) < 12 || len(g) < 12 || !bytes.Equal(w[12:], g[12:]) {
			return fmt.Errorf("sockmap: flows=%d %s egress frame %d differs from fullstack", flows, mode, i)
		}
	}
	return nil
}

// sockmapAssert checks conservation and the drop ledger for one phase.
func sockmapAssert(d *DUT, phase string, injected uint64, before kernel.Stats, beforeReasons [drop.NumReasons]uint64) (delivered, dropped uint64, err error) {
	after := d.Kern.Stats()
	delivered = after.Delivered - before.Delivered
	dropped = after.Dropped - before.Dropped
	forwarded := after.Forwarded - before.Forwarded
	if delivered+forwarded+dropped != injected {
		return 0, 0, fmt.Errorf("sockmap: conservation violated in %s: delivered %d + forwarded %d + dropped %d != injected %d",
			phase, delivered, forwarded, dropped, injected)
	}
	afterReasons := d.Kern.DropReasons()
	if sum := drop.Total(afterReasons); sum != after.Dropped {
		return 0, 0, fmt.Errorf("sockmap: drop ledger off in %s: per-reason sum %d != total %d", phase, sum, after.Dropped)
	}
	_ = beforeReasons
	return delivered, dropped, nil
}

// sockmapPoint builds a fresh DUT (so IP IDs and warmup state are identical
// across modes), configures one mode, and drives the local then proxy
// phases. It returns the point and the captured proxy egress frames.
func sockmapPoint(flows int, mode string) (SockmapPoint, [][]byte, error) {
	d, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return SockmapPoint{}, nil, err
	}
	defer d.Close()
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)

	if mode == SockmapModeFull {
		d.Kern.SetSysctl("net.core.sockmap", "0")
	} else {
		d.Kern.SetSysctl("net.core.sockmap", "1")
	}

	// The local RPC service and the proxy pair (client 10.1.0.1 → DUT:7000 →
	// server 10.2.0.1:7001), identical in every mode.
	d.Kern.RegisterSocket(packet.ProtoUDP, sockmapSvcPort, func(*kernel.Kernel, kernel.SocketMsg) {})
	upSock, downSock := d.Kern.RegisterProxy(
		kernel.ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: sockmapUpLocal, Peer: packet.MustAddr("10.2.0.1"), PeerPort: sockmapServerPort},
		kernel.ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: sockmapProxyPort, Peer: packet.MustAddr("10.1.0.1"), PeerPort: sockmapClientPort},
	)

	// L7 mode: a two-slot sockmap holding the pair, with a stream
	// parser/verdict attached — deny POST /admin in-kernel, splice allowed
	// requests to the upstream leg, punt anything unparseable to userspace.
	if mode == SockmapModeL7 {
		loader := ebpf.NewLoader(d.Kern)
		sm := ebpf.NewSockMap("proxy_sockmap", d.Kern, 2)
		sm.Update(0, upSock)
		sm.Update(1, downSock)
		parser, err := loader.Load(&ebpf.Program{
			Name: "rpc_strparser", Hook: ebpf.HookSKSKBParser,
			Ops: []ebpf.Op{ebpf.NewOp("strparse_frame", 0, ebpf.CapSKB, 8,
				func(*ebpf.Ctx) ebpf.Verdict { return ebpf.VerdictPass })},
			Default: ebpf.VerdictPass,
		})
		if err != nil {
			return SockmapPoint{}, nil, err
		}
		verdict, err := loader.Load(&ebpf.Program{
			Name: "rpc_l7_verdict", Hook: ebpf.HookSKSKBVerdict,
			Ops: []ebpf.Op{
				fpm.L7HTTPOp(fpm.L7Conf{Rules: []fpm.L7Rule{
					{Method: "POST", PathPrefix: "/admin", Allow: false},
					{Method: "GET", Allow: true},
				}}),
				fpm.SockRedirOp(fpm.SockRedirConf{Map: sm, Slot: 0}),
			},
			Default: ebpf.VerdictPass,
		})
		if err != nil {
			return SockmapPoint{}, nil, err
		}
		if err := loader.AttachSKSKB(sm, parser, verdict); err != nil {
			return SockmapPoint{}, nil, err
		}
		// The sk_skb pair runs on every member; the service socket is not a
		// member, so local delivery stays on the native path.
		downSock.SetSplice(nil) // the verdict program owns the redirect now
	}

	p := SockmapPoint{Flows: flows, Mode: mode}

	// --- phase 1: local delivery -------------------------------------------
	before := d.Kern.Stats()
	beforeReasons := d.Kern.DropReasons()
	frames := sockmapLocalWorkload(d, flows)
	var m sim.Meter
	for i := 0; i < len(frames); i += netdev.NAPIBudget {
		end := min(i+netdev.NAPIBudget, len(frames))
		d.In.ReceiveBatch(frames[i:end], 0, &m)
	}
	delivered, dropped, err := sockmapAssert(d, fmt.Sprintf("local flows=%d mode=%s", flows, mode), uint64(len(frames)), before, beforeReasons)
	if err != nil {
		return SockmapPoint{}, nil, err
	}
	st := d.Kern.Stats()
	p.LocalCycles = float64(m.Total) / float64(len(frames))
	p.LocalPPS = float64(len(frames)) * sim.ClockHz / float64(m.Total)
	if hm := st.SockmapHits + st.SockmapMisses; hm > 0 {
		p.HitRate = float64(st.SockmapHits) / float64(hm)
	}
	p.Delivered += delivered
	p.Dropped += dropped

	// --- phase 1b: established-flow replay ---------------------------------
	// One uncounted pass memoizes the working set; the second pass measures
	// pure established-flow delivery.
	est := sockmapEstWorkload(d, flows)
	var warm sim.Meter
	for i := 0; i < len(est); i += netdev.NAPIBudget {
		end := min(i+netdev.NAPIBudget, len(est))
		d.In.ReceiveBatch(est[i:end], 0, &warm)
	}
	before = d.Kern.Stats()
	beforeReasons = d.Kern.DropReasons()
	est = sockmapEstWorkload(d, flows)
	var em sim.Meter
	for i := 0; i < len(est); i += netdev.NAPIBudget {
		end := min(i+netdev.NAPIBudget, len(est))
		d.In.ReceiveBatch(est[i:end], 0, &em)
	}
	delivered, dropped, err = sockmapAssert(d, fmt.Sprintf("established flows=%d mode=%s", flows, mode), uint64(len(est)), before, beforeReasons)
	if err != nil {
		return SockmapPoint{}, nil, err
	}
	p.EstCycles = float64(em.Total) / float64(len(est))
	p.Delivered += delivered
	p.Dropped += dropped

	// --- phase 2: proxy forwarding, egress captured ------------------------
	var tx [][]byte
	d.Out.SetTxHook(func(frame []byte, _ *sim.Meter) bool {
		tx = append(tx, append([]byte(nil), frame...))
		return true
	})
	before = d.Kern.Stats()
	beforeReasons = d.Kern.DropReasons()
	frames = sockmapProxyWorkload(d, flows)
	var pm sim.Meter
	for i := 0; i < len(frames); i += netdev.NAPIBudget {
		end := min(i+netdev.NAPIBudget, len(frames))
		d.In.ReceiveBatch(frames[i:end], 0, &pm)
	}
	delivered, dropped, err = sockmapAssert(d, fmt.Sprintf("proxy flows=%d mode=%s", flows, mode), uint64(len(frames)), before, beforeReasons)
	if err != nil {
		return SockmapPoint{}, nil, err
	}
	if uint64(len(tx)) != delivered {
		return SockmapPoint{}, nil, fmt.Errorf("sockmap: proxy flows=%d mode=%s delivered %d but emitted %d egress frames",
			flows, mode, delivered, len(tx))
	}
	d.Out.SetTxHook(nil)
	st2 := d.Kern.Stats()
	p.ProxyCycles = float64(pm.Total) / float64(len(frames))
	p.ProxyPPS = float64(len(frames)) * sim.ClockHz / float64(pm.Total)
	p.Splices = st2.SockmapSplices - st.SockmapSplices
	p.L7Verdicts = st2.L7Verdicts - st.L7Verdicts
	p.Delivered += delivered
	p.Dropped += dropped

	// --- phase 3 (L7 only): the in-kernel policy deny ----------------------
	if mode == SockmapModeL7 {
		before = d.Kern.Stats()
		beforeReasons = d.Kern.DropReasons()
		deny := sockmapDenyWorkload(d)
		var dm sim.Meter
		d.In.ReceiveBatch(deny, 0, &dm)
		_, denied, err := sockmapAssert(d, fmt.Sprintf("deny flows=%d", flows), uint64(len(deny)), before, beforeReasons)
		if err != nil {
			return SockmapPoint{}, nil, err
		}
		reasons := d.Kern.DropReasons()
		filtered := reasons[drop.ReasonSocketFilter] - beforeReasons[drop.ReasonSocketFilter]
		if filtered != uint64(len(deny)) {
			return SockmapPoint{}, nil, fmt.Errorf("sockmap: expected %d socket_filter drops, got %d (total denied %d)",
				len(deny), filtered, denied)
		}
		p.L7Denied = filtered
		p.Dropped += denied
	}

	// --- phase 4: RPC latency over the measured proxy cost -----------------
	perPkt := sim.Cycles(p.ProxyCycles)
	lat := traffic.RunRR(traffic.RRConfig{
		Sessions:    128,
		Duration:    1 * sim.Second,
		Seed:        sockmapSeed,
		ReqCycles:   perPkt,
		RespCycles:  perPkt,
		WireRTT:     20 * sim.Microsecond,
		ServerTime:  8 * sim.Microsecond,
		JitterSigma: 0.22,
		StallProb:   0.0005,
		StallMean:   80 * sim.Microsecond,
	})
	p.RTTp50 = lat.Stats.Quantile(0.50)
	p.RTTp99 = lat.Stats.Quantile(0.99)
	p.RRTputSec = lat.TputPerSec

	return p, tx, nil
}

// RenderSockmap prints the sweep in the house table style.
func RenderSockmap(r *SockmapReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "socket-layer fast path: zipf(s=%.1f) reuse, %d local + %d proxy frames per point\n",
		r.ZipfS, r.LocalFrames, r.ProxyFrames)
	fmt.Fprintf(&b, "%-9s %-10s %11s %6s %8s %9s %6s %11s %6s %8s %9s %9s %9s\n",
		"flows", "mode", "local c/p", "gain", "hitrate", "est c/p", "gain", "proxy c/p", "gain", "splices", "rtt p50", "rtt p99", "rr/s")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-9d %-10s %11.1f %5.2fx %7.1f%% %9.1f %5.2fx %11.1f %5.2fx %8d %8.1fµ %8.1fµ %9.0f\n",
			p.Flows, p.Mode, p.LocalCycles, p.LocalGain, p.HitRate*100, p.EstCycles, p.EstGain,
			p.ProxyCycles, p.ProxyGain, p.Splices, p.RTTp50, p.RTTp99, p.RRTputSec)
	}
	return b.String()
}
