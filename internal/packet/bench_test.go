package packet

import "testing"

func benchFrame() []byte {
	u := UDP{SrcPort: 1000, DstPort: 2000}
	src, dst := MustAddr("10.0.1.1"), MustAddr("10.0.2.1")
	return BuildIPv4(
		Ethernet{Dst: MustHWAddr("aa:00:00:00:00:02"), Src: MustHWAddr("aa:00:00:00:00:01"), EtherType: EtherTypeIPv4},
		IPv4{TTL: 64, Proto: ProtoUDP, Src: src, Dst: dst},
		u.Marshal(nil, src, dst, make([]byte, 18)),
	)
}

func BenchmarkDecode(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkDecTTLIncremental(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f[EthHdrLen+8] = 64 // restore TTL so the loop is steady-state
		DecTTL(f, EthHdrLen)
	}
}
