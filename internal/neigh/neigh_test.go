package neigh

import (
	"testing"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

var (
	ip1  = packet.MustAddr("10.0.0.1")
	mac1 = packet.MustHWAddr("02:00:00:00:00:01")
	mac2 = packet.MustHWAddr("02:00:00:00:00:02")
)

func TestConfirmAndLookup(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup(ip1, 0); ok {
		t.Fatal("empty table hit")
	}
	tb.Confirm(ip1, mac1, 3, 100)
	e, ok := tb.Lookup(ip1, 101)
	if !ok || e.MAC != mac1 || e.IfIndex != 3 || e.State != Reachable {
		t.Fatalf("lookup: %+v ok=%v", e, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("len %d", tb.Len())
	}
}

func TestAgingToStale(t *testing.T) {
	tb := NewTable()
	tb.Confirm(ip1, mac1, 1, 0)
	e, _ := tb.Lookup(ip1, sim.Time(ReachableTime)-1)
	if e.State != Reachable {
		t.Fatalf("should still be reachable: %v", e.State)
	}
	e, _ = tb.Lookup(ip1, sim.Time(ReachableTime)+1)
	if e.State != Stale {
		t.Fatalf("should be stale: %v", e.State)
	}
	// Stale entries are not usable by the fast path.
	if _, ok := tb.Resolved(ip1, sim.Time(ReachableTime)+1); ok {
		t.Fatal("fast path must not use stale entry")
	}
	// Reconfirmation restores reachability.
	tb.Confirm(ip1, mac1, 1, sim.Time(ReachableTime)+2)
	if _, ok := tb.Resolved(ip1, sim.Time(ReachableTime)+3); !ok {
		t.Fatal("reconfirmed entry should be usable")
	}
}

func TestPermanentNeverAges(t *testing.T) {
	tb := NewTable()
	tb.AddPermanent(ip1, mac1, 2)
	mac, ok := tb.Resolved(ip1, sim.Time(100*ReachableTime))
	if !ok || mac != mac1 {
		t.Fatal("permanent entry should always resolve")
	}
	// Dynamic confirmation must not overwrite a permanent entry.
	tb.Confirm(ip1, mac2, 2, 0)
	mac, _ = tb.Resolved(ip1, 0)
	if mac != mac1 {
		t.Fatal("confirm overwrote permanent entry")
	}
}

func TestResolutionQueue(t *testing.T) {
	tb := NewTable()
	f1, f2 := []byte{1}, []byte{2}
	first, queued1 := tb.StartResolution(ip1, 1, f1)
	if !first {
		t.Fatal("first resolution should request ARP")
	}
	second, queued2 := tb.StartResolution(ip1, 1, f2)
	if second {
		t.Fatal("second resolution should not re-request")
	}
	if !queued1 || !queued2 {
		t.Fatal("both frames should queue under MaxPending")
	}
	e, ok := tb.Lookup(ip1, 0)
	if !ok || e.State != Incomplete {
		t.Fatalf("state: %+v", e)
	}
	queued := tb.Confirm(ip1, mac1, 1, 10)
	if len(queued) != 2 || queued[0][0] != 1 || queued[1][0] != 2 {
		t.Fatalf("queued: %v", queued)
	}
	// Queue is drained exactly once.
	if q := tb.Confirm(ip1, mac1, 1, 11); len(q) != 0 {
		t.Fatalf("second confirm returned %d frames", len(q))
	}
}

func TestResolutionQueueBounded(t *testing.T) {
	tb := NewTable()
	for i := 0; i < MaxPending+5; i++ {
		_, q := tb.StartResolution(ip1, 1, []byte{byte(i)})
		if want := i < MaxPending; q != want {
			t.Fatalf("frame %d: queued=%v, want %v", i, q, want)
		}
	}
	queued := tb.Confirm(ip1, mac1, 1, 0)
	if len(queued) != MaxPending {
		t.Fatalf("queue length %d, want %d", len(queued), MaxPending)
	}
}

func TestDelete(t *testing.T) {
	tb := NewTable()
	tb.Confirm(ip1, mac1, 1, 0)
	if !tb.Delete(ip1) {
		t.Fatal("delete failed")
	}
	if tb.Delete(ip1) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tb.Lookup(ip1, 0); ok {
		t.Fatal("entry survived delete")
	}
}

func TestEntriesSnapshot(t *testing.T) {
	tb := NewTable()
	tb.Confirm(ip1, mac1, 1, 0)
	tb.AddPermanent(packet.MustAddr("10.0.0.2"), mac2, 1)
	es := tb.Entries()
	if len(es) != 2 {
		t.Fatalf("entries %d", len(es))
	}
	// Mutating the snapshot must not affect the table.
	es[0].MAC = packet.HWAddr{}
	found := 0
	for _, e := range tb.Entries() {
		if e.MAC == mac1 || e.MAC == mac2 {
			found++
		}
	}
	if found != 2 {
		t.Fatal("snapshot aliased table state")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Incomplete: "INCOMPLETE", Reachable: "REACHABLE", Stale: "STALE", Permanent: "PERMANENT",
	} {
		if s.String() != want {
			t.Errorf("state %d string %q", s, s.String())
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should still format")
	}
}
