package core

import (
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// lbWorld extends the router world with two backend hosts reachable
// through eth1 and an ipvs virtual service in front of them.
func lbWorld(t *testing.T) (*routerWorld, kernel.IPVSKey, []packet.Addr) {
	t.Helper()
	w := newRouterWorld(t)
	backends := []packet.Addr{packet.MustAddr("10.100.0.10"), packet.MustAddr("10.101.0.10")}
	key := kernel.IPVSKey{VIP: packet.MustAddr("10.99.0.1"), Port: 80, Proto: packet.ProtoTCP}
	if err := w.dut.IPVSAddService(key, "rr"); err != nil {
		t.Fatal(err)
	}
	for _, b := range backends {
		if err := w.dut.IPVSAddBackend(key, b); err != nil {
			t.Fatal(err)
		}
	}
	return w, key, backends
}

// sendVIP pushes one TCP segment toward the VIP from a given source port
// and returns the destination the sink observed (zero if nothing arrived).
func sendVIP(w *routerWorld, srcPort uint16) packet.Addr {
	var seen packet.Addr
	old := w.sinkDev.Tap
	w.sinkDev.Tap = func(f []byte) {
		if p, err := packet.Decode(f); err == nil && p.IPv4 != nil {
			seen = p.IPv4.Dst
		}
	}
	defer func() { w.sinkDev.Tap = old }()

	gwMAC, _ := w.src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	srcIP := packet.MustAddr("10.1.0.1")
	vip := packet.MustAddr("10.99.0.1")
	tc := packet.TCP{SrcPort: srcPort, DstPort: 80, Flags: packet.TCPPsh}
	frame := packet.BuildIPv4(
		packet.Ethernet{Dst: gwMAC, Src: w.srcDev.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoTCP, Src: srcIP, Dst: vip},
		tc.Marshal(nil, srcIP, vip, []byte("req")),
	)
	var m sim.Meter
	w.srcDev.Transmit(frame, &m)
	return seen
}

func TestIPVSSlowPathLoadBalances(t *testing.T) {
	w, _, backends := lbWorld(t)
	// Round robin across flows; sticky within a flow.
	first := sendVIP(w, 1000)
	second := sendVIP(w, 1001)
	if first == second {
		t.Fatalf("rr did not alternate: %v %v", first, second)
	}
	for _, b := range []packet.Addr{first, second} {
		if b != backends[0] && b != backends[1] {
			t.Fatalf("DNAT to non-backend %v", b)
		}
	}
	for i := 0; i < 5; i++ {
		if got := sendVIP(w, 1000); got != first {
			t.Fatalf("flow moved backend: %v -> %v", first, got)
		}
	}
	if w.dut.IPVSConnCount() != 2 {
		t.Fatalf("conn table %d, want 2", w.dut.IPVSConnCount())
	}
}

func TestIPVSControllerSynthesizesLBModule(t *testing.T) {
	w, _, _ := lbWorld(t)
	c := startController(t, w.dut, Options{})
	ig := c.Graph().Interfaces["eth0"]
	if ig == nil {
		t.Fatalf("graph: %s", c.Graph())
	}
	keys := ig.ModuleKeys()
	if len(keys) < 2 || keys[0] != FPMLB || keys[1] != FPMRouter {
		t.Fatalf("module chain %v, want [lb router ...]", keys)
	}
	if ig.Nodes[0].NextNF != FPMRouter || ig.Nodes[0].Conf["services"] != "1" {
		t.Fatalf("lb node: %+v", ig.Nodes[0])
	}
}

func TestIPVSFastPathSharesConnectionState(t *testing.T) {
	// The state-sharing proof for the LB: a flow scheduled by the SLOW
	// path must hit the SAME backend on the fast path, because both read
	// the kernel's connection table.
	w, _, _ := lbWorld(t)
	c := startController(t, w.dut, Options{})

	// First packet of the flow: the fast path punts (unscheduled), the
	// slow path schedules. No XDP redirect for it.
	redirBase := w.in.Stats().XDPRedirects
	first := sendVIP(w, 2000)
	if first == 0 {
		t.Fatal("first VIP packet lost")
	}
	if w.in.Stats().XDPRedirects != redirBase {
		t.Fatal("fast path handled an unscheduled flow (scheduling is slow-path work)")
	}
	// Established flow: the fast path takes over and lands on the same
	// backend.
	for i := 0; i < 4; i++ {
		got := sendVIP(w, 2000)
		if got != first {
			t.Fatalf("fast path chose %v, slow path chose %v — shadow state?", got, first)
		}
	}
	if w.in.Stats().XDPRedirects != redirBase+4 {
		t.Fatalf("established flow not fast-pathed: %+v", w.in.Stats())
	}
	// Different flows still spread across backends through the fast path.
	other := sendVIP(w, 2001)
	if other == first {
		t.Fatal("rr expected to alternate on new flow")
	}
	_ = c
}

func TestIPVSServiceRemovalStopsLB(t *testing.T) {
	w, key, _ := lbWorld(t)
	c := startController(t, w.dut, Options{})
	sendVIP(w, 3000)
	if !w.dut.IPVSDelService(key) {
		t.Fatal("del failed")
	}
	c.Sync()
	// The lb module disappears from the graph...
	if ig := c.Graph().Interfaces["eth0"]; ig != nil {
		for _, n := range ig.Nodes {
			if n.FPM == FPMLB {
				t.Fatalf("lb module survived service removal: %s", c.Graph())
			}
		}
	}
	// ...and VIP traffic is now unroutable (no such destination).
	if got := sendVIP(w, 3001); got != 0 {
		t.Fatalf("VIP traffic still delivered to %v", got)
	}
	if w.dut.IPVSConnCount() != 0 {
		t.Fatal("connection table not flushed with the service")
	}
}

func TestIPVSSourceHashScheduler(t *testing.T) {
	w := newRouterWorld(t)
	key := kernel.IPVSKey{VIP: packet.MustAddr("10.99.0.2"), Port: 80, Proto: packet.ProtoTCP}
	if err := w.dut.IPVSAddService(key, "sh"); err != nil {
		t.Fatal(err)
	}
	if err := w.dut.IPVSAddService(key, "sh"); err == nil {
		t.Fatal("duplicate service accepted")
	}
	if err := w.dut.IPVSAddService(kernel.IPVSKey{VIP: 1}, "wlc"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	w.dut.IPVSAddBackend(key, packet.MustAddr("10.100.0.10"))
	w.dut.IPVSAddBackend(key, packet.MustAddr("10.101.0.10"))
	if err := w.dut.IPVSAddBackend(kernel.IPVSKey{VIP: 9}, 1); err == nil {
		t.Fatal("backend on missing service accepted")
	}
	// Source hash is deterministic per source, stable across conn flushes.
	a, b := w.dut.IPVSLookupTest(packet.MustAddr("1.2.3.4"), key, 5000), w.dut.IPVSLookupTest(packet.MustAddr("1.2.3.4"), key, 5000)
	if a != b {
		t.Fatalf("sh not deterministic: %v %v", a, b)
	}
	spread := map[packet.Addr]bool{}
	for i := 0; i < 32; i++ {
		spread[w.dut.IPVSLookupTest(packet.Addr(0x01020000+uint32(i)), key, uint16(6000+i))] = true
	}
	if len(spread) != 2 {
		t.Fatalf("sh used %d backends, want 2", len(spread))
	}
}

// routeVia reuse from core_test; silence unused import when tests change.
var _ = fib.Route{}
