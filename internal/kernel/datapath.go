package kernel

import (
	"sync"

	"linuxfp/internal/bridge"
	"linuxfp/internal/drop"
	"linuxfp/internal/fib"
	"linuxfp/internal/flight"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// rxScratch is the per-frame working set of the receive path: the decoded
// packet view, netfilter metadata, and the TC context, all caller-owned so
// the hot path performs no per-packet heap allocation — the model's
// skb-recycling. A scratch is only valid within one DeliverFrame call; the
// structs it holds must not be retained past it.
type rxScratch struct {
	pkt  packet.Packet
	ip   packet.IPv4
	arp  packet.ARP
	meta netfilter.Meta
	skb  SKB

	// Flow fast-cache fill state, threaded from ipRcv (where the combined
	// generation is captured, before any lookup runs) to finishOutput
	// (where the resolved decision is memoized).
	fillGen uint64
	fillOK  bool

	// Sockmap fill state, same discipline: the combined socket-path
	// generation captured in ipRcv before PREROUTING/route/INPUT run,
	// consumed at the demux in ipLocalDeliver. smsg is the delivery message
	// the sockmap hit path reuses so a hit performs no allocation.
	sockGen    uint64
	sockFillOK bool
	smsg       SocketMsg

	// GSO state for the frame in flight: set by groInput when a GRO
	// supersegment enters the stack, read by ipForward to resegment at the
	// egress device. segs <= 1 for ordinary frames.
	gso gsoMeta
}

var rxScratchPool = sync.Pool{New: func() any { return new(rxScratch) }}

// DeliverFrame implements netdev.Stack: the software receive path a frame
// takes after the driver (and after any XDP program passed it up).
func (k *Kernel) DeliverFrame(dev *netdev.Device, frame []byte, m *sim.Meter) {
	sc := rxScratchPool.Get().(*rxScratch)
	k.deliverFrame(dev, frame, m, sc)
	rxScratchPool.Put(sc)
}

// deliverFrame is the body of DeliverFrame with the scratch made explicit,
// so DeliverBatch can run a whole burst on one scratch.
func (k *Kernel) deliverFrame(dev *netdev.Device, frame []byte, m *sim.Meter, sc *rxScratch) {
	defer k.trace("netif_receive_skb", m)()
	if fr, ch := k.flightEnter(frame, m); fr != nil {
		defer fr.Exit(ch, m)
	}
	sc.fillOK = false
	sc.gso = gsoMeta{}

	eth, l3off, err := packet.UnmarshalEthernet(frame)
	if err != nil {
		k.countDropReason(m, drop.ReasonL2HdrError)
		return
	}

	// TC ingress: the classifier runs after sk_buff allocation. If a
	// LinuxFP TC fast path is attached here it can consume the packet.
	if h := k.tcIngressFor(dev.Index); h != nil {
		m.Charge(tcPrologueCost(dev))
		// Best-effort parse: TC programs run on any frame; non-IP or
		// malformed L3 just leaves Pkt at the Ethernet level.
		if perr := packet.DecodeInto(frame, &sc.pkt, &sc.ip, &sc.arp); perr != nil {
			sc.pkt = packet.Packet{Eth: eth, L3Off: l3off, Payload: frame[l3off:]}
		}
		sc.skb = SKB{Data: frame, Dev: dev, Pkt: &sc.pkt, VLAN: eth.VLAN, Meter: m}
		skb := &sc.skb
		sl, st := k.stageStart(m)
		act := h.HandleTC(skb)
		if sl != nil {
			sl.Observe(StageTC, m, st)
		}
		k.flightSpan(m, flight.StageTC, flight.VerdictNone)
		switch act {
		case TCShot:
			k.countDropReason(m, drop.ReasonTCDrop)
			return
		case TCRedirect:
			if out, ok := k.DeviceByIndex(skb.RedirectTo); ok {
				// Redirecting into a veth uses bpf_redirect_peer: the skb
				// lands in the peer namespace without a requeue.
				if out.Type == netdev.Veth {
					m.Charge(sim.CostTCRedirectPeer)
				} else {
					m.Charge(sim.CostTCRedirect)
				}
				out.Transmit(skb.Data, m)
			} else {
				k.countDropReason(m, drop.ReasonTCRedirectFail)
			}
			return
		case TCOk:
			frame = skb.Data
		}
		// Fall through into the normal stack; allocation costs are covered
		// by the TC prologue already charged.
		k.receiveParsed(dev, frame, eth, l3off, m, sc)
		return
	}

	// Receive cost depends on the device class: a physical NIC pays DMA
	// descriptor handling and a fresh sk_buff; a veth hands over the
	// sender's skb through the per-CPU backlog; pseudo-devices (vxlan)
	// re-inject an existing skb.
	m.Charge(rxDeviceCost(dev) + sim.CostNetifReceive)
	k.receiveParsed(dev, frame, eth, l3off, m, sc)
}

// receiveParsed continues processing once the Ethernet header is decoded.
func (k *Kernel) receiveParsed(dev *netdev.Device, frame []byte, eth packet.Ethernet, l3off int, m *sim.Meter, sc *rxScratch) {
	// Bridged port? br_handle_frame intercepts before L3.
	if master := dev.Master(); master != 0 {
		if br, ok := k.Bridge(master); ok {
			k.bridgeInput(br, dev, frame, eth, l3off, m, sc)
			return
		}
	}
	// RPS/RFS: when software steering is on, get_rps_cpu may park the frame
	// in another CPU's backlog; that CPU re-enters here, picks itself, and
	// falls through. One nil load when steering is off.
	if st := k.rps.Load(); st != nil {
		if k.rpsDeliver(st, dev, frame, eth, l3off, m) {
			return
		}
	}
	// Sockmap fast path: established local flows jump straight from here to
	// the socket (or its splice partner), skipping ip_rcv, netfilter, and
	// the route lookup, when the memoized demux decision revalidates.
	if k.sockmapOn.Load() && k.sockFastPath(dev, frame, m, sc) {
		return
	}
	// Per-CPU flow fast-cache: steady-state forwarded flows skip the whole
	// ip_rcv/route/neighbour walk when the memoized decision revalidates.
	if k.flowCacheOn.Load() && k.flowFastPath(dev, frame, m) {
		return
	}
	k.l3Input(dev, frame, m, sc)
}

// bridgeInput is br_handle_frame: STP interception, VLAN classification,
// learning, and the forwarding decision. Bridging is pure L2: the frame's
// payload need not be valid IP.
func (k *Kernel) bridgeInput(br *bridge.Bridge, dev *netdev.Device, frame []byte, eth packet.Ethernet, l3off int, m *sim.Meter, sc *rxScratch) {
	defer k.trace("br_handle_frame", m)()
	now := k.Now()

	// BPDUs are link-local protocol traffic: always slow path (Table I).
	if eth.Dst == bridge.STPDestMAC {
		if br.STPEnabled() {
			if bpdu, err := bridge.UnmarshalBPDU(frame[l3off:]); err == nil {
				br.ReceiveBPDU(dev.Index, bpdu, now)
			}
		}
		return
	}

	// Per-CPU L2 fast-cache: a memoized single-port unicast decision that
	// revalidates skips classification, learning and the FDB walk. The
	// skipped learning refresh is safe: the cached entry expires with the
	// FDB entry it memoized, and any FDB change bumps the bridge
	// generation.
	if k.flowCacheOn.Load() && k.l2FastPath(br, dev, frame, eth, m) {
		return
	}

	vlan, ok := br.IngressVLAN(dev.Index, eth.VLAN)
	if !ok {
		k.countDropReason(m, drop.ReasonVLANFilter)
		return
	}
	br.Learn(eth.Src, vlan, dev.Index, now)
	m.Charge(sim.CostBridgeInput)

	// Capture the L2 generation before the forwarding decision, so a
	// concurrent FDB change after the lookup leaves the memoized entry
	// already stale.
	l2gen := k.l2Gen(br)

	// br_netfilter: with bridge-nf-call-iptables enabled (container hosts
	// set this), bridged IPv4 frames traverse the FORWARD chain too.
	brNF := k.brNFCall.Load() && eth.EtherType == packet.EtherTypeIPv4
	var brMeta *netfilter.Meta
	if brNF {
		if err := packet.DecodeInto(frame, &sc.pkt, &sc.ip, &sc.arp); err == nil && sc.pkt.IPv4 != nil {
			brMeta = k.buildMetaInto(dev, &sc.pkt, &sc.meta)
			if v := k.runHook(netfilter.HookForward, brMeta, m); v == netfilter.VerdictDrop {
				k.countFilterDrop(m)
				return
			}
		}
	}

	d := br.Forward(dev.Index, eth.Dst, vlan, now)
	if d.Drop {
		k.countDropReason(m, d.Reason)
		return
	}
	// br_netfilter's second leg: forwarded bridged frames also traverse
	// POSTROUTING (where kube-proxy's masquerade chains live) before
	// egress. LinuxFP's TC redirect legitimately skips this whole walk —
	// as long as the chain cannot drop (the controller checks).
	if brNF && brMeta != nil && len(d.Egress) > 0 {
		if v := k.runHook(netfilter.HookPostrouting, brMeta, m); v == netfilter.VerdictDrop {
			k.countFilterDrop(m)
			return
		}
	}
	for i, egress := range d.Egress {
		if i > 0 {
			m.Charge(sim.CostBridgeFloodP)
		}
		out, ok := k.DeviceByIndex(egress)
		if !ok {
			continue
		}
		tagged, allowed := br.EgressAllowed(egress, vlan)
		if !allowed {
			continue
		}
		m.Charge(sim.CostDevXmit)
		txFrame := retagFrame(frame, eth, l3off, vlan, tagged)
		out.Transmit(txFrame, m)
		// Memoize: exactly one unicast egress, no netfilter traversal, no
		// retag, not also delivered locally.
		if k.flowCacheOn.Load() && !brNF && !d.Flood && !d.Local &&
			len(d.Egress) == 1 && &txFrame[0] == &frame[0] && !eth.Dst.IsMulticast() {
			if expire, ok := br.FDBExpiry(eth.Dst, vlan); ok {
				k.l2Install(dev, eth, out, expire, l2gen, m)
			}
		}
	}
	if d.Local {
		// Deliver up the stack as if received on the bridge device.
		if brDev, ok := k.DeviceByIndex(br.IfIndex); ok {
			k.l3Input(brDev, frame, m, sc)
		}
	}
}

// retagFrame rewrites the 802.1Q tag to match egress requirements.
func retagFrame(frame []byte, eth packet.Ethernet, l3off int, vlan uint16, tagged bool) []byte {
	hasTag := eth.VLAN != 0
	if hasTag == tagged && (!tagged || eth.VLAN == vlan) {
		return frame
	}
	if tagged {
		eth.VLAN = vlan
	} else {
		eth.VLAN = 0
	}
	return packet.BuildEthernet(eth, frame[l3off:])
}

// l3Input decodes the full frame and demuxes by EtherType: ARP processing
// or IP receive. Frames that fail L3 validation are dropped here, after
// bridging had its chance.
func (k *Kernel) l3Input(dev *netdev.Device, frame []byte, m *sim.Meter, sc *rxScratch) {
	// Flow telemetry, slow-path side: every packet entering the full stack
	// walk is accounted here; the fast paths account their hits themselves.
	if ft := k.flowTab.Load(); ft != nil {
		if t, _, ok := packet.ReadFlowTuple(frame); ok {
			ft.Observe(t, len(frame), false, m)
		}
	}
	if err := packet.DecodeInto(frame, &sc.pkt, &sc.ip, &sc.arp); err != nil {
		k.countDropReason(m, drop.ReasonIPHdrError)
		return
	}
	pkt := &sc.pkt
	switch {
	case pkt.ARP != nil:
		k.arpInput(dev, pkt.ARP, m)
	case pkt.IPv4 != nil:
		k.ipRcv(dev, frame, pkt, m, sc)
	default:
		// Unknown protocol: consumed by taps only.
		k.countDropReason(m, drop.ReasonUnknownL3Proto)
	}
}

// arpInput is arp_rcv: learn the sender, answer requests for local
// addresses, flush the pending queue on replies.
func (k *Kernel) arpInput(dev *netdev.Device, a *packet.ARP, m *sim.Meter) {
	defer k.trace("arp_rcv", m)()
	m.Charge(sim.CostArpProcess)
	now := k.Now()

	queued := k.Neigh.Confirm(a.SenderIP, a.SenderHW, dev.Index, now)
	if len(queued) > 0 {
		// The flushed frames carry their own (parked) flight chains; suspend
		// the ARP reply's chain so an unsampled flushed frame's TerminalTx
		// cannot fall back onto it.
		fr := k.flight.Load()
		var susp *flight.Chain
		if fr != nil {
			susp = fr.SuspendCur(m)
		}
		for _, f := range queued {
			packet.SetEthDst(f, a.SenderHW)
			m.Charge(sim.CostDevXmit)
			dev.Transmit(f, m)
		}
		if fr != nil {
			fr.RestoreCur(susp, m)
		}
	}

	if a.Op == packet.ARPRequest && k.addrIsLocal(a.TargetIP) {
		reply := packet.BuildARP(dev.MAC, a.SenderHW, packet.ARP{
			Op:       packet.ARPReply,
			SenderHW: dev.MAC,
			SenderIP: a.TargetIP,
			TargetHW: a.SenderHW,
			TargetIP: a.SenderIP,
		})
		k.bumpARPTx(m)
		dev.Transmit(reply, m)
	}
}

// addrIsLocal reports whether ip is assigned to any device.
func (k *Kernel) addrIsLocal(ip packet.Addr) bool {
	r, ok := k.FIB.Local().Lookup(ip)
	return ok && r.Local && r.Prefix.Bits == 32 && r.Prefix.Addr == ip
}

// ipRcv is ip_rcv: validation, PREROUTING, routing decision.
func (k *Kernel) ipRcv(dev *netdev.Device, frame []byte, pkt *packet.Packet, m *sim.Meter, sc *rxScratch) {
	defer k.trace("ip_rcv", m)()
	m.Charge(sim.CostIPRcv)
	ip := pkt.IPv4

	// Capture the flow-cache generation before any state is consulted: if
	// anything changes between here and the fill, the stored generation is
	// already stale and the entry can never produce a wrong hit.
	if k.flowCacheOn.Load() {
		sc.fillGen = k.dpGen()
	}
	sc.sockFillOK = k.sockmapOn.Load()
	if sc.sockFillOK {
		sc.sockGen = k.skGen()
	}

	meta := k.buildMetaInto(dev, pkt, &sc.meta)
	if v := k.runHook(netfilter.HookPrerouting, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop(m)
		return
	}

	// ipvs intercepts virtual-service traffic ahead of the routing
	// decision (only when services are configured).
	if k.IPVSActive() && k.ipvsInput(dev, frame, pkt, m) {
		return
	}

	k.trace("fib_table_lookup", m)()
	sl, st := k.stageStart(m)
	m.Charge(sim.CostRouteLookup)
	r, ok := k.FIB.Lookup(ip.Dst)
	if sl != nil {
		sl.Observe(StageFIB, m, st)
	}
	k.flightSpan(m, flight.StageFIB, flight.VerdictNone)
	if !ok {
		k.countNoRoute(m)
		k.sendICMPError(dev, pkt, packet.ICMPUnreachable, 0, m)
		return
	}
	if r.Local || ip.Dst.IsBroadcast() {
		k.ipLocalDeliver(dev, frame, pkt, meta, m, sc)
		return
	}
	k.ipForward(dev, frame, pkt, r, meta, m, sc)
}

// buildMeta summarizes the packet for netfilter on the heap (config-path
// callers that have no scratch).
func (k *Kernel) buildMeta(dev *netdev.Device, pkt *packet.Packet) *netfilter.Meta {
	return k.buildMetaInto(dev, pkt, &netfilter.Meta{})
}

// buildMetaInto summarizes the packet for netfilter into caller-owned
// storage. L4 ports are only visible on first fragments.
func (k *Kernel) buildMetaInto(dev *netdev.Device, pkt *packet.Packet, meta *netfilter.Meta) *netfilter.Meta {
	ip := pkt.IPv4
	*meta = netfilter.Meta{
		Src: ip.Src, Dst: ip.Dst, Proto: ip.Proto,
		InIf: dev.Index, Fragment: ip.IsFragment(),
	}
	if (ip.Proto == packet.ProtoTCP || ip.Proto == packet.ProtoUDP) &&
		ip.FragOff == 0 && len(pkt.Payload) >= 4 {
		meta.SrcPort, meta.DstPort = packet.L4Ports(pkt.Payload, 0)
	}
	if k.NF.CTRequired() && !meta.Fragment {
		st, _ := k.NF.Conntrack.Track(netfilter.Tuple{
			Src: meta.Src, Dst: meta.Dst, Proto: meta.Proto,
			SrcPort: meta.SrcPort, DstPort: meta.DstPort,
		}, k.Now())
		meta.CTState = st
	}
	return meta
}

// runHook evaluates a netfilter hook, charging the slow-path cost model.
// It is the single choke point every hook traversal passes through, so the
// netfilter stage histogram is recorded here.
func (k *Kernel) runHook(h netfilter.Hook, meta *netfilter.Meta, m *sim.Meter) netfilter.Verdict {
	sl, start := k.stageStart(m)
	v, st := k.NF.EvaluateHook(h, meta)
	if st.RulesEvaluated > 0 {
		m.Charge(sim.CostNFHookBase +
			sim.Cycles(st.RulesEvaluated)*sim.CostIptRuleSlow +
			sim.Cycles(st.SetProbes)*sim.CostIpsetLookup)
	}
	if k.NF.CTRequired() {
		m.Charge(sim.CostConntrackLookup)
	}
	if sl != nil {
		sl.Observe(StageNetfilter, m, start)
	}
	k.flightSpan(m, flight.StageNetfilter, flight.VerdictNone)
	return v
}

// ipLocalDeliver is ip_local_deliver: reassembly, INPUT hook, L4 demux. A
// nil sc (loopback sends, IPVS re-injection) just disables sockmap
// memoization.
func (k *Kernel) ipLocalDeliver(dev *netdev.Device, frame []byte, pkt *packet.Packet, meta *netfilter.Meta, m *sim.Meter, sc *rxScratch) {
	defer k.trace("ip_local_deliver", m)()
	m.Charge(sim.CostLocalDeliver)
	ip := pkt.IPv4

	payload := pkt.Payload
	if ip.IsFragment() {
		m.Charge(sim.CostDefragFrag)
		full, done := k.defragInsert(ip, payload)
		if !done {
			return
		}
		payload = full
		k.countReassembled(m)
		// Re-derive L4 ports now that the full datagram exists.
		if (ip.Proto == packet.ProtoTCP || ip.Proto == packet.ProtoUDP) && len(payload) >= 4 {
			meta.SrcPort, meta.DstPort = packet.L4Ports(payload, 0)
		}
		meta.Fragment = false
	}

	if v := k.runHook(netfilter.HookInput, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop(m)
		return
	}

	switch ip.Proto {
	case packet.ProtoICMP:
		k.icmpInput(dev, ip, payload, m)
	case packet.ProtoUDP, packet.ProtoTCP:
		var sport, dport uint16
		if len(payload) >= 4 {
			sport, dport = packet.L4Ports(payload, 0)
		}
		sock, ok := k.socketFor(ip.Proto, dport)
		if !ok {
			k.countDropReason(m, drop.ReasonNoSocket)
			return
		}
		m.Charge(sim.CostSocketQueue)
		body := payload
		if ip.Proto == packet.ProtoUDP {
			if u, b, err := packet.UnmarshalUDP(payload, ip.Src, ip.Dst); err == nil {
				body = b
				sport, dport = u.SrcPort, u.DstPort
			}
		} else if t, b, err := packet.UnmarshalTCP(payload, ip.Src, ip.Dst); err == nil {
			body = b
			sport, dport = t.SrcPort, t.DstPort
		}
		k.rfsRecord(ip, sport, dport, m)
		// Memoize the demux decision for the sockmap fast path: first
		// delivery walks the full stack, later segments of the flow hit the
		// established-flow table. The generation was captured in ip_rcv.
		if sc != nil && sc.sockFillOK && !ip.IsFragment() && !ip.Dst.IsBroadcast() &&
			k.sockInstallEligible() {
			k.sockInstall(packet.FlowTuple{
				Src: ip.Src, Dst: ip.Dst, SrcPort: sport, DstPort: dport, Proto: ip.Proto,
			}, sock, sc.sockGen, m)
		}
		var msg *SocketMsg
		if sc != nil {
			msg = &sc.smsg
		} else {
			msg = &SocketMsg{}
		}
		*msg = SocketMsg{
			Proto: ip.Proto, Src: ip.Src, Dst: ip.Dst,
			SrcPort: sport, DstPort: dport, Payload: body, InIf: dev.Index, Meter: m,
		}
		k.finishDeliver(sock, msg, m)
	default:
		k.countDropReason(m, drop.ReasonUnknownL4Proto)
	}
}

// icmpInput answers echo requests.
func (k *Kernel) icmpInput(dev *netdev.Device, ip *packet.IPv4, payload []byte, m *sim.Meter) {
	defer k.trace("icmp_rcv", m)()
	ic, body, err := packet.UnmarshalICMP(payload)
	if err != nil || ic.Type != packet.ICMPEchoRequest {
		return
	}
	m.Charge(sim.CostIcmpEcho)
	reply := packet.ICMP{Type: packet.ICMPEchoReply, Rest: ic.Rest}
	k.bumpICMPTx(m)
	k.SendIP(ip.Dst, ip.Src, packet.ProtoICMP, reply.Marshal(nil, body), m)
}

// ipForward is ip_forward: TTL, FORWARD hook, neighbour resolution, rewrite
// and transmit — the slow path LinuxFP's router FPM short-circuits.
func (k *Kernel) ipForward(dev *netdev.Device, frame []byte, pkt *packet.Packet, r fib.Route, meta *netfilter.Meta, m *sim.Meter, sc *rxScratch) {
	defer k.trace("ip_forward", m)()
	if !k.IPForwarding() {
		k.countDropReason(m, drop.ReasonIPForwardingOff)
		return
	}
	ip := pkt.IPv4
	if ip.TTL <= 1 {
		k.countTTLExpired(m)
		k.sendICMPError(dev, pkt, packet.ICMPTimeExceeded, 0, m)
		return
	}
	m.Charge(sim.CostIPForward)

	meta.OutIf = r.OutIf
	if v := k.runHook(netfilter.HookForward, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop(m)
		return
	}

	out, ok := k.DeviceByIndex(r.OutIf)
	if !ok {
		k.countNoRoute(m)
		return
	}

	nexthop := r.Gateway
	if nexthop == 0 {
		nexthop = ip.Dst
	}

	// Rewrite in place: decrement TTL (incremental checksum) and stamp the
	// egress source MAC. The frame is our own copy.
	packet.DecTTL(frame, pkt.L3Off)
	packet.SetEthSrc(frame, out.MAC)

	// GRO supersegment: output work runs once on the merged frame, then it
	// is split back into wire frames at the egress device (GSO). The MTU
	// check below applies to the split segments, not the supersegment.
	if sc != nil && sc.gso.segs > 1 {
		if !k.gsoForward(dev, out, nexthop, frame, pkt, sc.gso, m) {
			k.countForwarded(m)
		}
		return
	}

	// Oversized for the egress MTU? Fragment (or bounce with ICMP if DF).
	if int(ip.TotalLen) > out.MTU {
		if ip.DontFragment() {
			k.sendICMPError(dev, pkt, packet.ICMPUnreachable, 4, m) // frag needed
			k.countDropReason(m, drop.ReasonPktTooBig)
			return
		}
		k.fragmentAndSend(out, nexthop, frame, pkt, m)
		return
	}

	if sc != nil {
		sc.fillOK = k.flowCacheOn.Load() && k.flowFillEligible(out)
	}
	k.finishOutput(out, nexthop, frame, m, sc)
	k.countForwarded(m)
}

// finishOutput resolves the next hop and transmits, queueing on the
// neighbour table when the MAC is unknown. When sc requests it, the
// decision is memoized in the flow fast-cache after a successful transmit.
func (k *Kernel) finishOutput(out *netdev.Device, nexthop packet.Addr, frame []byte, m *sim.Meter, sc *rxScratch) {
	defer k.trace("neigh_resolve_output", m)()
	now := k.Now()

	// POSTROUTING runs on every output once rules exist there (NAT
	// plumbing); empty chains cost nothing, like the kernel's static keys.
	if k.NF.RuleCount("POSTROUTING") > 0 {
		if pkt, err := packet.Decode(frame); err == nil && pkt.IPv4 != nil {
			meta := k.buildMeta(out, pkt)
			meta.OutIf = out.Index
			if v := k.runHook(netfilter.HookPostrouting, meta, m); v == netfilter.VerdictDrop {
				k.countFilterDrop(m)
				return
			}
		}
	}
	sl, nst := k.stageStart(m)
	mac, expire, ok := k.Neigh.ResolvedFull(nexthop, now)
	if !ok {
		// The frame parks on the neighbour queue; its flight chain parks
		// with it — before StartResolution publishes the frame, since the
		// ARP-reply flush can run on another CPU — and resumes when the
		// flush drains it. A full queue never published the frame, so the
		// producer closes the chain itself.
		fr := k.flight.Load()
		if fr != nil {
			fr.ParkFrame(frame, flight.StageNeigh, m)
		}
		first, queued := k.Neigh.StartResolution(nexthop, out.Index, frame)
		if !queued {
			if fr != nil {
				fr.TerminalDropFrame(frame, drop.ReasonNeighQueueFull, m)
			}
			k.countDropReason(m, drop.ReasonNeighQueueFull)
		}
		if first {
			k.sendARPRequest(out, nexthop, m)
		}
		return
	}
	packet.SetEthDst(frame, mac)
	m.Charge(sim.CostNeighOutput)
	if sl != nil {
		sl.Observe(StageNeigh, m, nst)
	}
	k.flightSpan(m, flight.StageNeigh, flight.VerdictNone)

	if h := k.tcEgressFor(out.Index); h != nil {
		if pkt, err := packet.Decode(frame); err == nil {
			skb := &SKB{Data: frame, Dev: out, Pkt: pkt, Meter: m}
			tsl, tst := k.stageStart(m)
			act := h.HandleTC(skb)
			if tsl != nil {
				tsl.Observe(StageTC, m, tst)
			}
			k.flightSpan(m, flight.StageTC, flight.VerdictNone)
			switch act {
			case TCShot:
				k.countDropReason(m, drop.ReasonTCDrop)
				return
			case TCRedirect:
				m.Charge(sim.CostTCRedirect)
				if red, ok := k.DeviceByIndex(skb.RedirectTo); ok {
					red.Transmit(skb.Data, m)
				}
				return
			case TCOk:
				frame = skb.Data
			}
		}
	}

	k.trace("dev_queue_xmit", m)()
	xsl, xst := k.stageStart(m)
	m.Charge(sim.CostDevXmit)
	out.Transmit(frame, m)
	if xsl != nil {
		xsl.Observe(StageXmit, m, xst)
	}
	if sc != nil && sc.fillOK {
		k.flowInstall(frame, out, mac, expire, sc.fillGen, m)
	}
}

// sendARPRequest broadcasts a who-has for ip out the device.
func (k *Kernel) sendARPRequest(out *netdev.Device, ip packet.Addr, m *sim.Meter) {
	var src packet.Addr
	if addrs := out.Addrs(); len(addrs) > 0 {
		src = addrs[0].Addr
	}
	req := packet.BuildARP(out.MAC, packet.BroadcastHW, packet.ARP{
		Op:       packet.ARPRequest,
		SenderHW: out.MAC,
		SenderIP: src,
		TargetIP: ip,
	})
	k.bumpARPTx(m)
	out.Transmit(req, m)
}

func (k *Kernel) tcIngressFor(idx int) TCHandler {
	return k.tc.Load().ingress[idx]
}

func (k *Kernel) tcEgressFor(idx int) TCHandler {
	return k.tc.Load().egress[idx]
}
