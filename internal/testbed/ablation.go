package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
)

// Ablation studies for the two design decisions the paper argues for
// (§III-A, §VI-B): sharing kernel state through helpers instead of shadow
// maps, and synthesizing minimal per-configuration code instead of
// shipping one generic program.

// AblationResult compares two variants of one design decision.
type AblationResult struct {
	Name             string
	VariantA         string
	ACycles          sim.Cycles
	VariantB         string
	BCycles          sim.Cycles
	CorrectnessNote  string
	ACorrectOnChange bool
	BCorrectOnChange bool
}

// AblationStateSharing compares the LinuxFP router FPM (bpf_fib_lookup
// against live kernel state) with a Polycube-style variant that keeps a
// private shadow copy of the routing state in its own maps. The paper's
// claim: coherence costs no performance (footnote 2 even has LinuxFP
// ahead) — and the shadow copy silently goes stale when configuration
// changes behind its back.
func AblationStateSharing() (AblationResult, error) {
	res := AblationResult{
		Name:     "state sharing",
		VariantA: "helpers (kernel state)",
		VariantB: "shadow maps (private copy)",
		CorrectnessNote: "after `ip route del`, the helper variant punts (correct); " +
			"the shadow variant keeps forwarding into the deleted route (stale state)",
	}

	// Variant A: the standard LinuxFP fast path.
	helperDUT, err := Build(PlatformLinuxFP, Scenario{})
	if err != nil {
		return res, err
	}
	defer helperDUT.Close()
	res.ACycles = helperDUT.AvgCycles(200, traffic.MinFrameSize)

	// Variant B: same program shape, but the FIB/neighbour state is copied
	// into program-private structures at load time.
	shadowDUT, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return res, err
	}
	defer shadowDUT.Close()
	if err := attachShadowRouter(shadowDUT); err != nil {
		return res, err
	}
	res.BCycles = shadowDUT.AvgCycles(200, traffic.MinFrameSize)

	// Correctness on change: delete one routed prefix through the Linux
	// API and see which variant still forwards into it.
	probe := routedPrefix(3)
	probeDst := probe.Addr | 0x0101

	helperDUT.Kern.DelRoute(probe)
	if helperDUT.Controller != nil {
		helperDUT.Controller.Sync()
	}
	res.ACorrectOnChange = !forwardsTo(helperDUT, probeDst)

	shadowDUT.Kern.DelRoute(probe)
	res.BCorrectOnChange = !forwardsTo(shadowDUT, probeDst)
	return res, nil
}

// forwardsTo reports whether the DUT still forwards a probe packet.
func forwardsTo(d *DUT, dst packet.Addr) bool {
	got := 0
	old := d.SinkDev.Tap
	d.SinkDev.Tap = func([]byte) { got++ }
	defer func() { d.SinkDev.Tap = old }()
	g := *d.gen
	g.Prefixes = []packet.Prefix{{Addr: dst, Bits: 32}}
	var m sim.Meter
	d.In.Receive(g.Frame(0), &m)
	return got > 0
}

// attachShadowRouter installs a router fast path that snapshots the FIB
// and neighbour table into private maps at load time — the alternative
// architecture LinuxFP rejects.
func attachShadowRouter(d *DUT) error {
	type entry struct {
		egress int
		src    packet.HWAddr
		dst    packet.HWAddr
	}
	// Snapshot: prefix -> resolved forwarding entry.
	shadow := make(map[packet.Prefix]entry)
	for _, r := range d.Kern.FIB.Main().Routes() {
		out, ok := d.Kern.DeviceByIndex(r.OutIf)
		if !ok {
			continue
		}
		nh := r.Gateway
		if nh == 0 {
			continue // connected routes would need per-dst entries
		}
		mac, ok := d.Kern.Neigh.Resolved(nh, 0)
		if !ok {
			continue
		}
		shadow[r.Prefix] = entry{egress: out.Index, src: out.MAC, dst: mac}
	}

	loader := ebpf.NewLoader(d.Kern)
	ops := []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(),
		ebpf.NewOp("shadow_lpm", sim.CostCubeLPMLookup+sim.CostCubeARPLookup, 0, 72, func(c *ebpf.Ctx) ebpf.Verdict {
			var (
				best     packet.Prefix
				bestE    entry
				found    bool
				bestBits = -1
			)
			for p, e := range shadow {
				if p.Contains(c.IPDst) && p.Bits > bestBits {
					best, bestE, found, bestBits = p, e, true, p.Bits
				}
			}
			_ = best
			if !found {
				return ebpf.VerdictDrop // no slow path in this architecture
			}
			c.FIB = ebpf.FIBResult{EgressIfIndex: bestE.egress, SrcMAC: bestE.src, DstMAC: bestE.dst}
			c.FIBOk = true
			return ebpf.VerdictNext
		}),
		fpm.RewriteOp(),
		fpm.RedirectOp(fpm.RouterConf{}),
	}
	prog, err := loader.Load(&ebpf.Program{Name: "shadow_router", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictDrop})
	if err != nil {
		return err
	}
	return loader.AttachXDP(d.In, prog, "driver")
}

// AblationSpecialization compares the synthesizer's minimal data path
// (only the snippets the configuration needs) against a generic
// all-features program that carries every branch at run time — the
// "less code leads to more efficient code paths" principle (§III-A).
func AblationSpecialization() (AblationResult, error) {
	res := AblationResult{
		Name:            "specialization",
		VariantA:        "synthesized minimal (no STP/VLAN/filter snippets)",
		VariantB:        "generic (all snippets, runtime branches)",
		CorrectnessNote: "both are correct; the generic variant pays for features the configuration does not use",
	}
	// A plain bridge: no STP, no VLANs, no filtering configured.
	aCyc, err := bridgeVariantCycles(false)
	if err != nil {
		return res, err
	}
	bCyc, err := bridgeVariantCycles(true)
	if err != nil {
		return res, err
	}
	res.ACycles, res.BCycles = aCyc, bCyc
	res.ACorrectOnChange, res.BCorrectOnChange = true, true
	return res, nil
}

// bridgeVariantCycles measures a two-port bridge fast path, either minimal
// or with every optional snippet compiled in.
func bridgeVariantCycles(generic bool) (sim.Cycles, error) {
	sw := kernel.New("sw")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	var ports, hosts []*netdev.Device
	for i := 0; i < 2; i++ {
		hk := kernel.New("h")
		hd := hk.CreateDevice("eth0", netdev.Physical)
		hd.SetUp(true)
		port := sw.CreateDevice(fmt.Sprintf("swp%d", i), netdev.Physical)
		port.SetUp(true)
		netdev.Connect(hd, port)
		if err := sw.AddBridgePort("br0", port.Name); err != nil {
			return 0, err
		}
		ports = append(ports, port)
		hosts = append(hosts, hd)
	}
	br, _ := sw.BridgeByName("br0")
	br.Learn(hosts[0].MAC, 0, ports[0].Index, 0)
	br.Learn(hosts[1].MAC, 0, ports[1].Index, 0)

	conf := fpm.BridgeConf{Bridge: br}
	ops := []ebpf.Op{fpm.ParseEth()}
	if generic {
		// Everything the template library has, configured or not.
		conf.STP = true
		conf.VLANFiltering = false // functional VLAN classify would drop untagged; model its cost instead
		conf.Filter = true
		ops = append(ops, fpm.ParseVLAN())
		ops = append(ops, ebpf.NewOp("vlan_branch", sim.CostPortState, 0, 20, func(*ebpf.Ctx) ebpf.Verdict {
			return ebpf.VerdictNext // the runtime "is VLAN filtering on?" branch
		}))
	}
	ops = append(ops, fpm.BridgeOps(conf)...)
	loader := ebpf.NewLoader(sw)
	prog, err := loader.Load(&ebpf.Program{Name: "bridge_variant", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		return 0, err
	}
	if err := loader.AttachXDP(ports[0], prog, "driver"); err != nil {
		return 0, err
	}

	frame := packet.BuildEthernet(packet.Ethernet{
		Dst: hosts[1].MAC, Src: hosts[0].MAC, EtherType: packet.EtherTypeIPv4}, make([]byte, 46))
	netdev.Disconnect(ports[1])
	var total sim.Cycles
	const n = 200
	for i := 0; i < n; i++ {
		var m sim.Meter
		ports[0].Receive(append([]byte(nil), frame...), &m)
		total += m.Total
	}
	return total / n, nil
}

// RenderAblations formats the two studies.
func RenderAblations(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation studies\n================\n")
	for _, r := range results {
		fmt.Fprintf(&b, "\n%s:\n", r.Name)
		fmt.Fprintf(&b, "  %-45s %8.0f cycles/pkt (%.3f Mpps)  correct-after-change=%v\n",
			r.VariantA, float64(r.ACycles), sim.PacketsPerSecond(r.ACycles)/1e6, r.ACorrectOnChange)
		fmt.Fprintf(&b, "  %-45s %8.0f cycles/pkt (%.3f Mpps)  correct-after-change=%v\n",
			r.VariantB, float64(r.BCycles), sim.PacketsPerSecond(r.BCycles)/1e6, r.BCorrectOnChange)
		fmt.Fprintf(&b, "  note: %s\n", r.CorrectnessNote)
	}
	return b.String()
}
