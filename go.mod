module linuxfp

go 1.22
