// Package sim provides the discrete-event simulation substrate used by the
// LinuxFP reproduction: a virtual clock with an event heap, a deterministic
// random number generator, online statistics, and the cycle-cost model that
// converts executed data-plane work into virtual time.
//
// Experiments in the paper ran on real CloudLab hosts; here, every pipeline
// stage is real Go code that additionally charges a documented cycle cost to
// the core it runs on. The engine turns those charges into throughput and
// latency numbers whose *shape* reproduces the paper's evaluation.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct from
// time.Duration so virtual and wall-clock quantities cannot be mixed silently.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Std converts a virtual duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("t+%s", time.Duration(t)) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic FIFO order at equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return popped
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the model; it is clamped to "now" to keep the clock monotonic.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the earliest pending event, advancing the clock. It reports
// whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil processes events until the clock would pass the deadline or no
// events remain. Events at exactly the deadline still run.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run processes events until none remain. Use with models that quiesce.
func (e *Engine) Run() {
	for e.Step() {
	}
}
