// Package metrics renders observability snapshots in Prometheus text
// exposition format: kernel stack counters, per-reason drop counters (kernel
// and per-device), per-stage latency quantiles, and ring buffer event
// accounting. It is a pure formatter over already-collected state — scraping
// it never touches the datapath beyond the same monotonic counter loads the
// stats snapshots use.
package metrics

import (
	"fmt"
	"io"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/flight"
	"linuxfp/internal/kernel"
)

// WriteKernel writes one kernel's full observability snapshot. The kernel
// label keeps multi-namespace setups (testbeds run three) distinguishable.
func WriteKernel(w io.Writer, k *kernel.Kernel) {
	st := k.Stats()
	name := k.Name

	fmt.Fprintf(w, "# HELP linuxfp_packets_total Stack-level packet outcomes.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_packets_total counter\n")
	for _, c := range []struct {
		outcome string
		v       uint64
	}{
		{"forwarded", st.Forwarded},
		{"delivered", st.Delivered},
		{"dropped", st.Dropped},
	} {
		fmt.Fprintf(w, "linuxfp_packets_total{kernel=%q,outcome=%q} %d\n", name, c.outcome, c.v)
	}

	fmt.Fprintf(w, "# HELP linuxfp_steering_total RPS/RFS packet-steering outcomes.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_steering_total counter\n")
	for _, c := range []struct {
		event string
		v     uint64
	}{
		{"rps_steered", st.RPSSteered},
		{"rps_backlog_drops", st.RPSBacklogDrops},
		{"rps_ipis", st.RPSIPIs},
		{"rfs_hits", st.RFSHits},
		{"rfs_migrations", st.RFSMigrations},
	} {
		fmt.Fprintf(w, "linuxfp_steering_total{kernel=%q,event=%q} %d\n", name, c.event, c.v)
	}

	fmt.Fprintf(w, "# HELP linuxfp_sockmap_total Socket-layer fast path outcomes.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_sockmap_total counter\n")
	for _, c := range []struct {
		event string
		v     uint64
	}{
		{"hits", st.SockmapHits},
		{"misses", st.SockmapMisses},
		{"splices", st.SockmapSplices},
		{"l7_verdicts", st.L7Verdicts},
	} {
		fmt.Fprintf(w, "linuxfp_sockmap_total{kernel=%q,event=%q} %d\n", name, c.event, c.v)
	}

	fmt.Fprintf(w, "# HELP linuxfp_drop_reason_total Kernel-layer drops by skb drop reason.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_drop_reason_total counter\n")
	byReason := k.DropReasons()
	// Every reason is exposed, zeros included: the audit test asserts each
	// enum member has a series, so a reason silently losing its drop site
	// (or its name) fails the scrape diff rather than vanishing.
	for _, r := range drop.Reasons() {
		fmt.Fprintf(w, "linuxfp_drop_reason_total{kernel=%q,reason=%q} %d\n", name, r, byReason[r])
	}

	fmt.Fprintf(w, "# HELP linuxfp_device_drop_reason_total Device-level drops by reason (rx/tx down, XDP verdicts, cpumap).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_device_drop_reason_total counter\n")
	for _, dev := range k.Devices() {
		devReasons := dev.DropReasons()
		for _, r := range drop.Reasons() {
			if devReasons[r] == 0 {
				continue
			}
			fmt.Fprintf(w, "linuxfp_device_drop_reason_total{kernel=%q,device=%q,reason=%q} %d\n",
				name, dev.Name, r, devReasons[r])
		}
	}

	if sl := k.StageObs(); sl != nil {
		WriteStages(w, name, sl)
	}
	if fr := k.Flight(); fr != nil {
		WriteFlight(w, name, fr)
	}
	if ft := k.FlowTelemetry(); ft != nil {
		WriteFlows(w, name, ft, DefaultFlowSeries)
	}
}

// WriteFlight writes the flight recorder's trace ledger: stamps, spans, and
// per-terminal chain counts. Conservation is visible in the scrape itself:
// sampled == drop + tx + redirect + pass + lost once the datapath quiesces.
func WriteFlight(w io.Writer, name string, fr *flight.Recorder) {
	t := fr.Terminals()
	fmt.Fprintf(w, "# HELP linuxfp_trace_chains_total Flight-recorder chains by terminal verdict (trace-ID weighted).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_trace_chains_total counter\n")
	for _, c := range []struct {
		terminal string
		v        uint64
	}{
		{"sampled", t.Sampled},
		{"drop", t.Drop},
		{"tx", t.Tx},
		{"redirect", t.Redirect},
		{"pass", t.Pass},
		{"lost", t.Lost},
	} {
		fmt.Fprintf(w, "linuxfp_trace_chains_total{kernel=%q,terminal=%q} %d\n", name, c.terminal, c.v)
	}
	fmt.Fprintf(w, "# HELP linuxfp_trace_spans_total Flight-recorder spans stamped.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_trace_spans_total counter\n")
	fmt.Fprintf(w, "linuxfp_trace_spans_total{kernel=%q} %d\n", name, t.Spans)
	fmt.Fprintf(w, "# HELP linuxfp_trace_live_chains Chains still registered in the side table.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_trace_live_chains gauge\n")
	fmt.Fprintf(w, "linuxfp_trace_live_chains{kernel=%q} %d\n", name, fr.Live())
}

// DefaultFlowSeries is how many top flows WriteFlows exposes as per-flow
// series (the table itself tracks far more; the scrape shows the heavy
// hitters, like `ss` piped through head).
const DefaultFlowSeries = 10

// WriteFlows writes the flow telemetry table: table-level gauges plus the
// top-n flows by packets as labeled per-flow series.
func WriteFlows(w io.Writer, name string, ft *flight.FlowTable, n int) {
	fmt.Fprintf(w, "# HELP linuxfp_flow_tracked Flows currently tracked by the top-k sketch.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_tracked gauge\n")
	fmt.Fprintf(w, "linuxfp_flow_tracked{kernel=%q} %d\n", name, ft.Tracked())
	fmt.Fprintf(w, "# HELP linuxfp_flow_evictions_total Space-saving replace-min evictions.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_evictions_total counter\n")
	fmt.Fprintf(w, "linuxfp_flow_evictions_total{kernel=%q} %d\n", name, ft.Evictions())
	fmt.Fprintf(w, "# HELP linuxfp_flow_capacity Flow-table capacity (entries across all shards).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_capacity gauge\n")
	fmt.Fprintf(w, "linuxfp_flow_capacity{kernel=%q} %d\n", name, ft.Capacity())

	top := ft.Top(n)
	fmt.Fprintf(w, "# HELP linuxfp_flow_packets_total Per-flow packets (top flows by packets).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_packets_total counter\n")
	for _, f := range top {
		fmt.Fprintf(w, "linuxfp_flow_packets_total{kernel=%q,flow=%q} %d\n", name, f.Key, f.Pkts)
	}
	fmt.Fprintf(w, "# HELP linuxfp_flow_bytes_total Per-flow bytes (top flows by packets).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_bytes_total counter\n")
	for _, f := range top {
		fmt.Fprintf(w, "linuxfp_flow_bytes_total{kernel=%q,flow=%q} %d\n", name, f.Key, f.Bytes)
	}
	fmt.Fprintf(w, "# HELP linuxfp_flow_drops_total Per-flow drops attributed at the kfree_skb choke points.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_drops_total counter\n")
	for _, f := range top {
		fmt.Fprintf(w, "linuxfp_flow_drops_total{kernel=%q,flow=%q} %d\n", name, f.Key, f.Drops)
	}
	fmt.Fprintf(w, "# HELP linuxfp_flow_fastpath_ratio Fraction of the flow's packets that took a fast path.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_flow_fastpath_ratio gauge\n")
	for _, f := range top {
		fmt.Fprintf(w, "linuxfp_flow_fastpath_ratio{kernel=%q,flow=%q} %.4f\n", name, f.Key, f.FastPct()/100)
	}
}

// WriteStages writes the per-stage latency summaries in Prometheus summary
// style: one series per quantile plus count and mean.
func WriteStages(w io.Writer, name string, sl *kernel.StageLat) {
	report := sl.Report()
	fmt.Fprintf(w, "# HELP linuxfp_stage_latency_cycles Per-stage latency in modelcycles.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_stage_latency_cycles summary\n")
	for _, s := range report {
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"0.5", s.P50}, {"0.99", s.P99}, {"0.999", s.P999},
		} {
			fmt.Fprintf(w, "linuxfp_stage_latency_cycles{kernel=%q,stage=%q,quantile=%q} %.1f\n",
				name, s.Stage, q.label, q.v)
		}
		fmt.Fprintf(w, "linuxfp_stage_latency_cycles_count{kernel=%q,stage=%q} %d\n", name, s.Stage, s.Count)
	}
	// The mean is its own gauge family: summaries only own the _count and
	// _sum suffixes, and the exposition lint holds this file to that.
	fmt.Fprintf(w, "# HELP linuxfp_stage_latency_cycles_mean Per-stage mean latency in modelcycles.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_stage_latency_cycles_mean gauge\n")
	for _, s := range report {
		fmt.Fprintf(w, "linuxfp_stage_latency_cycles_mean{kernel=%q,stage=%q} %.1f\n", name, s.Stage, s.MeanCy)
	}
}

// WriteXSKMap writes the AF_XDP state for every bound slot of an XSK map:
// the four ring occupancies as gauges plus frame and drop outcomes as
// counters. Occupancy reads are the same acquire-loads the rings' own
// producers and consumers use, so scraping is safe during traffic.
func WriteXSKMap(w io.Writer, m *ebpf.XSKMap) {
	fmt.Fprintf(w, "# HELP linuxfp_xsk_ring_occupancy AF_XDP ring occupancy in descriptors.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_xsk_ring_occupancy gauge\n")
	type slotSock struct {
		slot int
		s    *ebpf.AFXDPSocket
	}
	var bound []slotSock
	for i := 0; i < m.Len(); i++ {
		if s := m.Lookup(i); s != nil {
			bound = append(bound, slotSock{i, s})
		}
	}
	for _, b := range bound {
		fill, rx, tx, comp := b.s.RingOccupancy()
		for _, r := range []struct {
			ring string
			v    int
		}{
			{"fill", fill}, {"rx", rx}, {"tx", tx}, {"completion", comp},
		} {
			fmt.Fprintf(w, "linuxfp_xsk_ring_occupancy{map=%q,slot=\"%d\",ring=%q} %d\n",
				m.Name(), b.slot, r.ring, r.v)
		}
	}

	fmt.Fprintf(w, "# HELP linuxfp_xsk_frames_total AF_XDP per-socket frame outcomes.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_xsk_frames_total counter\n")
	for _, b := range bound {
		st := b.s.Stats()
		for _, c := range []struct {
			outcome string
			v       uint64
		}{
			{"rx_delivered", st.RxDelivered},
			{"tx_completed", st.TxCompleted},
			{"dropped_rx_full", st.RxFull},
			{"dropped_fill_empty", st.FillEmpty},
			{"wakeups", st.Wakeups},
		} {
			fmt.Fprintf(w, "linuxfp_xsk_frames_total{map=%q,slot=\"%d\",outcome=%q} %d\n",
				m.Name(), b.slot, c.outcome, c.v)
		}
	}
}

// WritePrograms writes per-program JIT body sizes and static costs for every
// loaded program, in both forms: form="generic" is the fused chain as
// synthesized, form="specialized" the config-folded body the loader built at
// Load time. The gap between the two series is the specialization win the
// datapath collects on every packet. Loader-level counters cover re-load
// churn: total Loads and the wall time the verify+specialize+fuse pipeline
// has consumed.
func WritePrograms(w io.Writer, l *ebpf.Loader) {
	progs := l.Programs()

	fmt.Fprintf(w, "# HELP linuxfp_prog_insns JIT body size in pseudo-instructions by form.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_prog_insns gauge\n")
	for _, p := range progs {
		fmt.Fprintf(w, "linuxfp_prog_insns{prog=%q,form=\"generic\"} %d\n", p.Name, p.JITInsns())
		fmt.Fprintf(w, "linuxfp_prog_insns{prog=%q,form=\"specialized\"} %d\n", p.Name, p.SpecInsns())
	}

	fmt.Fprintf(w, "# HELP linuxfp_prog_cost_cycles Static (prefix-summed) JIT cost in modelcycles by form.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_prog_cost_cycles gauge\n")
	for _, p := range progs {
		fmt.Fprintf(w, "linuxfp_prog_cost_cycles{prog=%q,form=\"generic\"} %.0f\n", p.Name, float64(p.JITCost()))
		fmt.Fprintf(w, "linuxfp_prog_cost_cycles{prog=%q,form=\"specialized\"} %.0f\n", p.Name, float64(p.SpecCost()))
	}

	loads, last, total := l.LoadStats()
	fmt.Fprintf(w, "# HELP linuxfp_prog_loads_total Programs loaded (verify+specialize+fuse runs).\n")
	fmt.Fprintf(w, "# TYPE linuxfp_prog_loads_total counter\n")
	fmt.Fprintf(w, "linuxfp_prog_loads_total %d\n", loads)
	fmt.Fprintf(w, "# HELP linuxfp_prog_load_wall_seconds Wall time spent in Loader.Load.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_prog_load_wall_seconds gauge\n")
	fmt.Fprintf(w, "linuxfp_prog_load_wall_seconds{window=\"last\"} %.9f\n", last.Seconds())
	fmt.Fprintf(w, "linuxfp_prog_load_wall_seconds{window=\"total\"} %.9f\n", total.Seconds())
}

// WriteRingBuf writes one ring buffer's event accounting. Event drops carry
// reason ringbuf_full but stay out of the packet-drop series by design —
// lost telemetry is not lost traffic.
func WriteRingBuf(w io.Writer, rb *ebpf.RingBuf) {
	fmt.Fprintf(w, "# HELP linuxfp_ringbuf_events_total Ring buffer event outcomes.\n")
	fmt.Fprintf(w, "# TYPE linuxfp_ringbuf_events_total counter\n")
	fmt.Fprintf(w, "linuxfp_ringbuf_events_total{ring=%q,outcome=\"produced\"} %d\n", rb.Name(), rb.Produced())
	fmt.Fprintf(w, "linuxfp_ringbuf_events_total{ring=%q,outcome=\"consumed\"} %d\n", rb.Name(), rb.Consumed())
	fmt.Fprintf(w, "linuxfp_ringbuf_events_total{ring=%q,outcome=\"dropped\",reason=%q} %d\n",
		rb.Name(), rb.DroppedReason(), rb.Dropped())
}
