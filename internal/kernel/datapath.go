package kernel

import (
	"linuxfp/internal/bridge"
	"linuxfp/internal/fib"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// DeliverFrame implements netdev.Stack: the software receive path a frame
// takes after the driver (and after any XDP program passed it up).
func (k *Kernel) DeliverFrame(dev *netdev.Device, frame []byte, m *sim.Meter) {
	defer k.trace("netif_receive_skb")()

	eth, l3off, err := packet.UnmarshalEthernet(frame)
	if err != nil {
		k.countDrop()
		return
	}

	// TC ingress: the classifier runs after sk_buff allocation. If a
	// LinuxFP TC fast path is attached here it can consume the packet.
	if h := k.tcIngressFor(dev.Index); h != nil {
		switch dev.Type {
		case netdev.Veth:
			m.Charge(sim.CostTCPrologueVeth)
		case netdev.Physical:
			m.Charge(sim.CostTCPrologue)
		default:
			// Pseudo-devices (vxlan): the skb already exists; only the
			// demux and classifier entry are paid.
			m.Charge(sim.CostNetifReceive + 130)
		}
		// Best-effort parse: TC programs run on any frame; non-IP or
		// malformed L3 just leaves Pkt at the Ethernet level.
		pkt, perr := packet.Decode(frame)
		if perr != nil {
			pkt = &packet.Packet{Eth: eth, L3Off: l3off, Payload: frame[l3off:]}
		}
		skb := &SKB{Data: frame, Dev: dev, Pkt: pkt, VLAN: eth.VLAN, Meter: m}
		switch h.HandleTC(skb) {
		case TCShot:
			k.countDrop()
			return
		case TCRedirect:
			if out, ok := k.DeviceByIndex(skb.RedirectTo); ok {
				// Redirecting into a veth uses bpf_redirect_peer: the skb
				// lands in the peer namespace without a requeue.
				if out.Type == netdev.Veth {
					m.Charge(sim.CostTCRedirectPeer)
				} else {
					m.Charge(sim.CostTCRedirect)
				}
				out.Transmit(skb.Data, m)
			} else {
				k.countDrop()
			}
			return
		case TCOk:
			frame = skb.Data
		}
		// Fall through into the normal stack; allocation costs are covered
		// by the TC prologue already charged.
		k.receiveParsed(dev, frame, eth, l3off, m)
		return
	}

	// Receive cost depends on the device class: a physical NIC pays DMA
	// descriptor handling and a fresh sk_buff; a veth hands over the
	// sender's skb through the per-CPU backlog; pseudo-devices (vxlan)
	// re-inject an existing skb.
	switch dev.Type {
	case netdev.Veth:
		m.Charge(sim.CostVethRx + sim.CostNetifReceive)
	case netdev.Physical:
		m.Charge(sim.CostDriverRx + sim.CostSKBAlloc + sim.CostNetifReceive)
	default:
		m.Charge(sim.CostNetifReceive)
	}
	k.receiveParsed(dev, frame, eth, l3off, m)
}

// receiveParsed continues processing once the Ethernet header is decoded.
func (k *Kernel) receiveParsed(dev *netdev.Device, frame []byte, eth packet.Ethernet, l3off int, m *sim.Meter) {
	// Bridged port? br_handle_frame intercepts before L3.
	if master := dev.Master(); master != 0 {
		if br, ok := k.Bridge(master); ok {
			k.bridgeInput(br, dev, frame, eth, l3off, m)
			return
		}
	}
	k.l3Input(dev, frame, m)
}

// bridgeInput is br_handle_frame: STP interception, VLAN classification,
// learning, and the forwarding decision. Bridging is pure L2: the frame's
// payload need not be valid IP.
func (k *Kernel) bridgeInput(br *bridge.Bridge, dev *netdev.Device, frame []byte, eth packet.Ethernet, l3off int, m *sim.Meter) {
	defer k.trace("br_handle_frame")()
	now := k.Now()

	// BPDUs are link-local protocol traffic: always slow path (Table I).
	if eth.Dst == bridge.STPDestMAC {
		if br.STPEnabled() {
			if bpdu, err := bridge.UnmarshalBPDU(frame[l3off:]); err == nil {
				br.ReceiveBPDU(dev.Index, bpdu, now)
			}
		}
		return
	}

	vlan, ok := br.IngressVLAN(dev.Index, eth.VLAN)
	if !ok {
		k.countDrop()
		return
	}
	br.Learn(eth.Src, vlan, dev.Index, now)
	m.Charge(sim.CostBridgeInput)

	// br_netfilter: with bridge-nf-call-iptables enabled (container hosts
	// set this), bridged IPv4 frames traverse the FORWARD chain too.
	brNF := k.Sysctl("net.bridge.bridge-nf-call-iptables") == "1" && eth.EtherType == packet.EtherTypeIPv4
	var brMeta *netfilter.Meta
	if brNF {
		if pkt, err := packet.Decode(frame); err == nil && pkt.IPv4 != nil {
			brMeta = k.buildMeta(dev, pkt)
			if v := k.runHook(netfilter.HookForward, brMeta, m); v == netfilter.VerdictDrop {
				k.countFilterDrop()
				return
			}
		}
	}

	d := br.Forward(dev.Index, eth.Dst, vlan, now)
	if d.Drop {
		k.countDrop()
		return
	}
	// br_netfilter's second leg: forwarded bridged frames also traverse
	// POSTROUTING (where kube-proxy's masquerade chains live) before
	// egress. LinuxFP's TC redirect legitimately skips this whole walk —
	// as long as the chain cannot drop (the controller checks).
	if brNF && brMeta != nil && len(d.Egress) > 0 {
		if v := k.runHook(netfilter.HookPostrouting, brMeta, m); v == netfilter.VerdictDrop {
			k.countFilterDrop()
			return
		}
	}
	for i, egress := range d.Egress {
		if i > 0 {
			m.Charge(sim.CostBridgeFloodP)
		}
		out, ok := k.DeviceByIndex(egress)
		if !ok {
			continue
		}
		tagged, allowed := br.EgressAllowed(egress, vlan)
		if !allowed {
			continue
		}
		m.Charge(sim.CostDevXmit)
		out.Transmit(retagFrame(frame, eth, l3off, vlan, tagged), m)
	}
	if d.Local {
		// Deliver up the stack as if received on the bridge device.
		if brDev, ok := k.DeviceByIndex(br.IfIndex); ok {
			k.l3Input(brDev, frame, m)
		}
	}
}

// retagFrame rewrites the 802.1Q tag to match egress requirements.
func retagFrame(frame []byte, eth packet.Ethernet, l3off int, vlan uint16, tagged bool) []byte {
	hasTag := eth.VLAN != 0
	if hasTag == tagged && (!tagged || eth.VLAN == vlan) {
		return frame
	}
	if tagged {
		eth.VLAN = vlan
	} else {
		eth.VLAN = 0
	}
	return packet.BuildEthernet(eth, frame[l3off:])
}

// l3Input decodes the full frame and demuxes by EtherType: ARP processing
// or IP receive. Frames that fail L3 validation are dropped here, after
// bridging had its chance.
func (k *Kernel) l3Input(dev *netdev.Device, frame []byte, m *sim.Meter) {
	pkt, err := packet.Decode(frame)
	if err != nil {
		k.countDrop()
		return
	}
	switch {
	case pkt.ARP != nil:
		k.arpInput(dev, pkt.ARP, m)
	case pkt.IPv4 != nil:
		k.ipRcv(dev, frame, pkt, m)
	default:
		// Unknown protocol: consumed by taps only.
		k.countDrop()
	}
}

// arpInput is arp_rcv: learn the sender, answer requests for local
// addresses, flush the pending queue on replies.
func (k *Kernel) arpInput(dev *netdev.Device, a *packet.ARP, m *sim.Meter) {
	defer k.trace("arp_rcv")()
	m.Charge(sim.CostArpProcess)
	now := k.Now()

	queued := k.Neigh.Confirm(a.SenderIP, a.SenderHW, dev.Index, now)
	for _, f := range queued {
		packet.SetEthDst(f, a.SenderHW)
		m.Charge(sim.CostDevXmit)
		dev.Transmit(f, m)
	}

	if a.Op == packet.ARPRequest && k.addrIsLocal(a.TargetIP) {
		reply := packet.BuildARP(dev.MAC, a.SenderHW, packet.ARP{
			Op:       packet.ARPReply,
			SenderHW: dev.MAC,
			SenderIP: a.TargetIP,
			TargetHW: a.SenderHW,
			TargetIP: a.SenderIP,
		})
		k.bumpARPTx()
		dev.Transmit(reply, m)
	}
}

// addrIsLocal reports whether ip is assigned to any device.
func (k *Kernel) addrIsLocal(ip packet.Addr) bool {
	r, ok := k.FIB.Local().Lookup(ip)
	return ok && r.Local && r.Prefix.Bits == 32 && r.Prefix.Addr == ip
}

// ipRcv is ip_rcv: validation, PREROUTING, routing decision.
func (k *Kernel) ipRcv(dev *netdev.Device, frame []byte, pkt *packet.Packet, m *sim.Meter) {
	defer k.trace("ip_rcv")()
	m.Charge(sim.CostIPRcv)
	ip := pkt.IPv4

	meta := k.buildMeta(dev, pkt)
	if v := k.runHook(netfilter.HookPrerouting, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop()
		return
	}

	// ipvs intercepts virtual-service traffic ahead of the routing
	// decision (only when services are configured).
	if k.IPVSActive() && k.ipvsInput(dev, frame, pkt, m) {
		return
	}

	k.trace("fib_table_lookup")()
	m.Charge(sim.CostRouteLookup)
	r, ok := k.FIB.Lookup(ip.Dst)
	if !ok {
		k.countNoRoute()
		k.sendICMPError(dev, pkt, packet.ICMPUnreachable, 0, m)
		return
	}
	if r.Local || ip.Dst.IsBroadcast() {
		k.ipLocalDeliver(dev, frame, pkt, meta, m)
		return
	}
	k.ipForward(dev, frame, pkt, r, meta, m)
}

// buildMeta summarizes the packet for netfilter. L4 ports are only visible
// on first fragments.
func (k *Kernel) buildMeta(dev *netdev.Device, pkt *packet.Packet) *netfilter.Meta {
	ip := pkt.IPv4
	meta := &netfilter.Meta{
		Src: ip.Src, Dst: ip.Dst, Proto: ip.Proto,
		InIf: dev.Index, Fragment: ip.IsFragment(),
	}
	if (ip.Proto == packet.ProtoTCP || ip.Proto == packet.ProtoUDP) &&
		ip.FragOff == 0 && len(pkt.Payload) >= 4 {
		meta.SrcPort, meta.DstPort = packet.L4Ports(pkt.Payload, 0)
	}
	if k.NF.CTRequired() && !meta.Fragment {
		st, _ := k.NF.Conntrack.Track(netfilter.Tuple{
			Src: meta.Src, Dst: meta.Dst, Proto: meta.Proto,
			SrcPort: meta.SrcPort, DstPort: meta.DstPort,
		}, k.Now())
		meta.CTState = st
	}
	return meta
}

// runHook evaluates a netfilter hook, charging the slow-path cost model.
func (k *Kernel) runHook(h netfilter.Hook, meta *netfilter.Meta, m *sim.Meter) netfilter.Verdict {
	v, st := k.NF.EvaluateHook(h, meta)
	if st.RulesEvaluated > 0 {
		m.Charge(sim.CostNFHookBase +
			sim.Cycles(st.RulesEvaluated)*sim.CostIptRuleSlow +
			sim.Cycles(st.SetProbes)*sim.CostIpsetLookup)
	}
	if k.NF.CTRequired() {
		m.Charge(sim.CostConntrackLookup)
	}
	return v
}

// ipLocalDeliver is ip_local_deliver: reassembly, INPUT hook, L4 demux.
func (k *Kernel) ipLocalDeliver(dev *netdev.Device, frame []byte, pkt *packet.Packet, meta *netfilter.Meta, m *sim.Meter) {
	defer k.trace("ip_local_deliver")()
	m.Charge(sim.CostLocalDeliver)
	ip := pkt.IPv4

	payload := pkt.Payload
	if ip.IsFragment() {
		m.Charge(sim.CostDefragFrag)
		full, done := k.defragInsert(ip, payload)
		if !done {
			return
		}
		payload = full
		k.countReassembled()
		// Re-derive L4 ports now that the full datagram exists.
		if (ip.Proto == packet.ProtoTCP || ip.Proto == packet.ProtoUDP) && len(payload) >= 4 {
			meta.SrcPort, meta.DstPort = packet.L4Ports(payload, 0)
		}
		meta.Fragment = false
	}

	if v := k.runHook(netfilter.HookInput, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop()
		return
	}

	switch ip.Proto {
	case packet.ProtoICMP:
		k.icmpInput(dev, ip, payload, m)
	case packet.ProtoUDP, packet.ProtoTCP:
		var sport, dport uint16
		if len(payload) >= 4 {
			sport, dport = packet.L4Ports(payload, 0)
		}
		h, ok := k.socketFor(ip.Proto, dport)
		if !ok {
			k.countDrop()
			return
		}
		m.Charge(sim.CostSocketQueue)
		body := payload
		if ip.Proto == packet.ProtoUDP {
			if u, b, err := packet.UnmarshalUDP(payload, ip.Src, ip.Dst); err == nil {
				body = b
				sport, dport = u.SrcPort, u.DstPort
			}
		} else if t, b, err := packet.UnmarshalTCP(payload, ip.Src, ip.Dst); err == nil {
			body = b
			sport, dport = t.SrcPort, t.DstPort
		}
		k.countDelivered()
		h(k, SocketMsg{
			Proto: ip.Proto, Src: ip.Src, Dst: ip.Dst,
			SrcPort: sport, DstPort: dport, Payload: body, InIf: dev.Index, Meter: m,
		})
	default:
		k.countDrop()
	}
}

// icmpInput answers echo requests.
func (k *Kernel) icmpInput(dev *netdev.Device, ip *packet.IPv4, payload []byte, m *sim.Meter) {
	defer k.trace("icmp_rcv")()
	ic, body, err := packet.UnmarshalICMP(payload)
	if err != nil || ic.Type != packet.ICMPEchoRequest {
		return
	}
	m.Charge(sim.CostIcmpEcho)
	reply := packet.ICMP{Type: packet.ICMPEchoReply, Rest: ic.Rest}
	k.bumpICMPTx()
	k.SendIP(ip.Dst, ip.Src, packet.ProtoICMP, reply.Marshal(nil, body), m)
}

// ipForward is ip_forward: TTL, FORWARD hook, neighbour resolution, rewrite
// and transmit — the slow path LinuxFP's router FPM short-circuits.
func (k *Kernel) ipForward(dev *netdev.Device, frame []byte, pkt *packet.Packet, r fib.Route, meta *netfilter.Meta, m *sim.Meter) {
	defer k.trace("ip_forward")()
	if !k.IPForwarding() {
		k.countDrop()
		return
	}
	ip := pkt.IPv4
	if ip.TTL <= 1 {
		k.countTTLExpired()
		k.sendICMPError(dev, pkt, packet.ICMPTimeExceeded, 0, m)
		return
	}
	m.Charge(sim.CostIPForward)

	meta.OutIf = r.OutIf
	if v := k.runHook(netfilter.HookForward, meta, m); v == netfilter.VerdictDrop {
		k.countFilterDrop()
		return
	}

	out, ok := k.DeviceByIndex(r.OutIf)
	if !ok {
		k.countNoRoute()
		return
	}

	nexthop := r.Gateway
	if nexthop == 0 {
		nexthop = ip.Dst
	}

	// Rewrite in place: decrement TTL (incremental checksum) and stamp the
	// egress source MAC. The frame is our own copy.
	packet.DecTTL(frame, pkt.L3Off)
	packet.SetEthSrc(frame, out.MAC)

	// Oversized for the egress MTU? Fragment (or bounce with ICMP if DF).
	if int(ip.TotalLen) > out.MTU {
		if ip.DontFragment() {
			k.sendICMPError(dev, pkt, packet.ICMPUnreachable, 4, m) // frag needed
			k.countDrop()
			return
		}
		k.fragmentAndSend(out, nexthop, frame, pkt, m)
		return
	}

	k.finishOutput(out, nexthop, frame, m)
	k.countForwarded()
}

// finishOutput resolves the next hop and transmits, queueing on the
// neighbour table when the MAC is unknown.
func (k *Kernel) finishOutput(out *netdev.Device, nexthop packet.Addr, frame []byte, m *sim.Meter) {
	defer k.trace("neigh_resolve_output")()
	now := k.Now()

	// POSTROUTING runs on every output once rules exist there (NAT
	// plumbing); empty chains cost nothing, like the kernel's static keys.
	if k.NF.RuleCount("POSTROUTING") > 0 {
		if pkt, err := packet.Decode(frame); err == nil && pkt.IPv4 != nil {
			meta := k.buildMeta(out, pkt)
			meta.OutIf = out.Index
			if v := k.runHook(netfilter.HookPostrouting, meta, m); v == netfilter.VerdictDrop {
				k.countFilterDrop()
				return
			}
		}
	}
	mac, ok := k.Neigh.Resolved(nexthop, now)
	if !ok {
		if first := k.Neigh.StartResolution(nexthop, out.Index, frame); first {
			k.sendARPRequest(out, nexthop, m)
		}
		return
	}
	packet.SetEthDst(frame, mac)
	m.Charge(sim.CostNeighOutput)

	if h := k.tcEgressFor(out.Index); h != nil {
		if pkt, err := packet.Decode(frame); err == nil {
			skb := &SKB{Data: frame, Dev: out, Pkt: pkt, Meter: m}
			switch h.HandleTC(skb) {
			case TCShot:
				k.countDrop()
				return
			case TCRedirect:
				m.Charge(sim.CostTCRedirect)
				if red, ok := k.DeviceByIndex(skb.RedirectTo); ok {
					red.Transmit(skb.Data, m)
				}
				return
			case TCOk:
				frame = skb.Data
			}
		}
	}

	k.trace("dev_queue_xmit")()
	m.Charge(sim.CostDevXmit)
	out.Transmit(frame, m)
}

// sendARPRequest broadcasts a who-has for ip out the device.
func (k *Kernel) sendARPRequest(out *netdev.Device, ip packet.Addr, m *sim.Meter) {
	var src packet.Addr
	if addrs := out.Addrs(); len(addrs) > 0 {
		src = addrs[0].Addr
	}
	req := packet.BuildARP(out.MAC, packet.BroadcastHW, packet.ARP{
		Op:       packet.ARPRequest,
		SenderHW: out.MAC,
		SenderIP: src,
		TargetIP: ip,
	})
	k.bumpARPTx()
	out.Transmit(req, m)
}

func (k *Kernel) tcIngressFor(idx int) TCHandler {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.tcIngress[idx]
}

func (k *Kernel) tcEgressFor(idx int) TCHandler {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.tcEgress[idx]
}

// --- counters ----------------------------------------------------------------

func (k *Kernel) countDrop() {
	k.mu.Lock()
	k.stats.Dropped++
	k.mu.Unlock()
}

func (k *Kernel) countFilterDrop() {
	k.mu.Lock()
	k.stats.FilterDropped++
	k.stats.Dropped++
	k.mu.Unlock()
}

func (k *Kernel) countNoRoute() {
	k.mu.Lock()
	k.stats.NoRoute++
	k.stats.Dropped++
	k.mu.Unlock()
}

func (k *Kernel) countTTLExpired() {
	k.mu.Lock()
	k.stats.TTLExpired++
	k.stats.Dropped++
	k.mu.Unlock()
}

func (k *Kernel) countForwarded() {
	k.mu.Lock()
	k.stats.Forwarded++
	k.mu.Unlock()
}

func (k *Kernel) countDelivered() {
	k.mu.Lock()
	k.stats.Delivered++
	k.mu.Unlock()
}

func (k *Kernel) countReassembled() {
	k.mu.Lock()
	k.stats.Reassembled++
	k.mu.Unlock()
}

func (k *Kernel) bumpARPTx() {
	k.mu.Lock()
	k.stats.ARPTx++
	k.mu.Unlock()
}

func (k *Kernel) bumpICMPTx() {
	k.mu.Lock()
	k.stats.ICMPTx++
	k.mu.Unlock()
}
