package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// GROPoint is one measured configuration of the slow-path GRO layer: a
// workload driven through the stock Linux DUT in NAPI bursts with GRO on or
// off. Cycles is the mean model cost per ingress frame (wires unplugged);
// CoalesceRatio is the fraction of frames absorbed into supersegments.
type GROPoint struct {
	Workload      string  `json:"workload"`
	GRO           bool    `json:"gro"`
	BatchSize     int     `json:"batch_size"`
	Cycles        float64 `json:"modelcycles_per_pkt"`
	NsPerPkt      float64 `json:"ns_per_pkt"`
	PPS           float64 `json:"pps_1core"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	Supersegs     uint64  `json:"supersegs"`
}

// GROReport is the machine-readable result of GROSweep — what
// `lfpbench -exp gro` serializes into BENCH_gro.json.
type GROReport struct {
	Platform       string     `json:"platform"`
	PayloadBytes   int        `json:"tcp_payload_bytes"`
	ClockHz        float64    `json:"clock_hz"`
	FlushTimeoutNs int64      `json:"gro_flush_timeout_ns"`
	MaxSegs        int        `json:"gro_max_segs"`
	Points         []GROPoint `json:"points"`
}

// groPayload is the TCP payload per segment in the sweep workloads. Small
// segments keep the per-byte memcpy term honest while leaving the per-frame
// stack walk dominant — the regime GRO targets.
const groPayload = 128

// groGen generates the sweep's workloads: `flows` concurrent in-order TCP
// streams round-robined frame by frame (flows=1 is the GRO best case;
// interleaved flows exercise the hold table), or, with udp true, the
// multi-flow UDP traffic GRO must leave untouched.
type groGen struct {
	d     *DUT
	flows int
	udp   bool
	seq   []uint32
	id    []uint16
	n     int
}

func newGroGen(d *DUT, flows int, udp bool) *groGen {
	return &groGen{d: d, flows: flows, udp: udp,
		seq: make([]uint32, flows), id: make([]uint16, flows)}
}

func (g *groGen) frame() []byte {
	f := g.n % g.flows
	g.n++
	src := packet.MustAddr("10.1.0.1")
	dst := packet.AddrFrom4(10, 100+byte(f), 0, 10)
	eth := packet.Ethernet{Dst: g.d.In.MAC, Src: g.d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4}
	if g.udp {
		u := packet.UDP{SrcPort: uint16(4000 + f), DstPort: 2000}
		g.id[f]++
		return packet.BuildIPv4(eth,
			packet.IPv4{TTL: 64, ID: g.id[f], Proto: packet.ProtoUDP, Src: src, Dst: dst},
			u.Marshal(nil, src, dst, make([]byte, groPayload)))
	}
	tcp := packet.TCP{SrcPort: uint16(4000 + f), DstPort: 80, Seq: g.seq[f], Ack: 1,
		Flags: packet.TCPAck, Window: 512}
	fr := packet.BuildIPv4(eth,
		packet.IPv4{TTL: 64, ID: g.id[f], Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
		tcp.Marshal(nil, src, dst, make([]byte, groPayload)))
	g.seq[f] += groPayload
	g.id[f]++
	return fr
}

// GROSweep measures the stock Linux slow path with and without GRO across
// batch sizes for same-flow TCP, interleaved 8-flow TCP, and multi-flow UDP.
// n is the number of frames per configuration.
func GROSweep(batchSizes []int, n int) (*GROReport, error) {
	d, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	r := &GROReport{
		Platform:     PlatformLinux,
		PayloadBytes: groPayload,
		ClockHz:      sim.ClockHz,
		MaxSegs:      kernel.GROMaxSegs,
	}

	workloads := []struct {
		name  string
		flows int
		udp   bool
	}{
		{"tcp-1flow", 1, false},
		{"tcp-8flow", 8, false},
		{"udp-multiflow", 8, true},
	}
	for _, w := range workloads {
		for _, gro := range []bool{false, true} {
			for _, bs := range batchSizes {
				p := groCycles(d, w.flows, w.udp, gro, bs, n)
				p.Workload = w.name
				r.Points = append(r.Points, p)
			}
		}
	}
	return r, nil
}

// groCycles drives n frames of one workload through the DUT in ReceiveBatch
// bursts of `batch` and returns the measured point. Wires are unplugged so
// only DUT work meters.
func groCycles(d *DUT, flows int, udp, gro bool, batch, n int) GROPoint {
	d.In.SetGRO(gro)
	defer d.In.SetGRO(true)
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	before := d.Kern.Stats()
	g := newGroGen(d, flows, udp)
	var m sim.Meter
	frames := make([][]byte, 0, batch)
	for i := 0; i < n; i += batch {
		frames = frames[:0]
		for j := i; j < i+batch && j < n; j++ {
			frames = append(frames, g.frame())
		}
		d.In.ReceiveBatch(frames, 0, &m)
	}
	after := d.Kern.Stats()

	c := float64(m.Total) / float64(n)
	return GROPoint{
		GRO:           gro,
		BatchSize:     batch,
		Cycles:        c,
		NsPerPkt:      c / sim.ClockHz * 1e9,
		PPS:           ppsFromCycles(c),
		CoalesceRatio: float64(after.GROCoalesced-before.GROCoalesced) / float64(n),
		Supersegs:     after.GROSupersegs - before.GROSupersegs,
	}
}

// RenderGRO prints the sweep in the house table style.
func RenderGRO(r *GROReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Slow-path GRO: workload x batch sweep (%dB TCP payload, single core)\n", r.PayloadBytes)
	fmt.Fprintf(&b, "%-14s %-5s %6s %14s %10s %10s %9s\n",
		"workload", "gro", "batch", "cycles/pkt", "ns/pkt", "Mpps", "coalesce")
	for _, p := range r.Points {
		gro := "off"
		if p.GRO {
			gro = "on"
		}
		fmt.Fprintf(&b, "%-14s %-5s %6d %14.1f %10.1f %10.2f %8.0f%%\n",
			p.Workload, gro, p.BatchSize, p.Cycles, p.NsPerPkt, p.PPS/1e6, p.CoalesceRatio*100)
	}
	return b.String()
}
