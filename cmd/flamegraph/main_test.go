package main

import "testing"

func TestRunBothModes(t *testing.T) {
	if err := run(50, true); err != nil {
		t.Fatal(err)
	}
	if err := run(50, false); err != nil {
		t.Fatal(err)
	}
}
