// Kernel-faithful observability: skb drop reasons and per-stage latency
// histograms. Both follow the Tracer's static-key discipline — detached, the
// hot path pays one atomic pointer load per gate; attached, observations land
// on the observing CPU's shard so enabling them never serializes the
// multi-queue datapath.
package kernel

import (
	"sync"

	"linuxfp/internal/drop"
	"linuxfp/internal/sim"
)

// --- drop reasons ------------------------------------------------------------

// countDropReason is the tagged twin of countDrop: one drop on the meter's
// shard, attributed to reason r. Every kernel-layer drop site goes through
// here (or through a counter helper that does), so the per-reason counters
// sum exactly to Stats().Dropped.
func (k *Kernel) countDropReason(m *sim.Meter, r drop.Reason) {
	sh := shardIdx(m)
	k.shards[sh].dropped.Add(1)
	k.dropReasons[sh].Count(r)
	k.notifyDrop(m, r)
	k.flightDrop(m, r)
}

// countDropReasonOnly attributes a reason for a drop whose total is counted
// elsewhere (the specialised counters below bump both).
func (k *Kernel) countDropReasonOnly(m *sim.Meter, r drop.Reason) {
	k.dropReasons[shardIdx(m)].Count(r)
	k.notifyDrop(m, r)
	k.flightDrop(m, r)
}

// flightDrop terminates the CPU's current flight chain (the packet being
// processed) as dropped and attributes the drop to its flow — the kfree_skb
// side of the flight recorder, sharing the drop choke points with
// DropNotify.
func (k *Kernel) flightDrop(m *sim.Meter, r drop.Reason) {
	if fr := k.flight.Load(); fr != nil {
		fr.TerminalDropCur(r, m)
	}
	if ft := k.flowTab.Load(); ft != nil {
		ft.NoteDrop(m)
	}
}

// DropReasons folds the per-CPU reason shards into one array indexed by
// drop.Reason. Like Stats, the fold is monotonic-per-counter, so a quiesced
// datapath sums exactly: drop.Total(k.DropReasons()) == k.Stats().Dropped.
func (k *Kernel) DropReasons() [drop.NumReasons]uint64 {
	return drop.Sum(k.dropReasons[:])
}

// DropNotify receives every kernel-layer drop as it happens — the model of a
// kfree_skb tracepoint consumer (drop_monitor). It runs on the dropping CPU
// and must not block.
type DropNotify func(r drop.Reason, m *sim.Meter)

// SetDropNotify attaches fn to the kfree_skb tracepoint (nil detaches).
// Detached, every drop site pays one nil check.
func (k *Kernel) SetDropNotify(fn DropNotify) {
	if fn == nil {
		k.dropNotify.Store(nil)
		return
	}
	k.dropNotify.Store(&fn)
}

func (k *Kernel) notifyDrop(m *sim.Meter, r drop.Reason) {
	if fn := k.dropNotify.Load(); fn != nil {
		(*fn)(r, m)
	}
}

// --- per-stage latency histograms --------------------------------------------

// Stage identifies one datapath stage for latency accounting. The set
// mirrors the paper's Fig. 1 decomposition of where forwarding cycles go.
type Stage uint8

// Datapath stages.
const (
	StageXDP       Stage = iota // XDP program run (prologue + program)
	StageGRO                    // GRO coalesce pass over a NAPI burst
	StageTC                     // TC ingress/egress classifier
	StageNetfilter              // netfilter hook traversal
	StageFIB                    // FIB lookup
	StageNeigh                  // neighbour resolve + L2 header fill
	StageXmit                   // dev_queue_xmit through the driver
	StageSockmap                // sockmap fast path: probe + verdict + deliver/splice
	NumStages
)

var stageNames = [NumStages]string{
	StageXDP:       "xdp",
	StageGRO:       "gro",
	StageTC:        "tc",
	StageNetfilter: "netfilter",
	StageFIB:       "fib",
	StageNeigh:     "neigh",
	StageXmit:      "xmit",
	StageSockmap:   "sockmap",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage_invalid"
}

// stageShard is one CPU's stage accumulators. The mutex is per shard:
// observations come from that shard's own queue worker, so it is practically
// uncontended — it only orders the rare concurrent Report against traffic.
type stageShard struct {
	mu    sync.Mutex
	stats [NumStages]*sim.Stats
}

// StageLat is the per-CPU, per-stage latency table: a log-linear histogram
// (sim.Stats) per (CPU shard, stage), recording modelcycles spent in each
// stage of each packet. One instance is attached per EnableStageLat, like
// the Tracer.
type StageLat struct {
	shards [NumRxShards]stageShard
}

// StageSummary is one stage's merged view across all CPU shards.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  int     `json:"count"`
	MeanCy float64 `json:"mean_cycles"`
	P50    float64 `json:"p50_cycles"`
	P99    float64 `json:"p99_cycles"`
	P999   float64 `json:"p999_cycles"`
	MaxCy  float64 `json:"max_cycles"`
}

// EnableStageLat attaches a fresh stage-latency table and returns it.
func (k *Kernel) EnableStageLat() *StageLat {
	sl := &StageLat{}
	for i := range sl.shards {
		for s := range sl.shards[i].stats {
			sl.shards[i].stats[s] = sim.NewStats()
		}
	}
	k.stageLat.Store(sl)
	return sl
}

// DisableStageLat detaches the table. Already-taken references stay readable.
func (k *Kernel) DisableStageLat() {
	k.stageLat.Store(nil)
}

// StageObs returns the attached stage table, or nil — the static-key load
// call sites gate on. Exported so the ebpf adapters can charge the XDP stage
// from outside the package.
func (k *Kernel) StageObs() *StageLat {
	return k.stageLat.Load()
}

// stageStart opens one stage measurement: it returns the attached table and
// the meter's cycle position. With stage accounting off (or no meter to
// read) it returns nil and the call site skips the Observe — one atomic
// load, the same static-key shape as Kernel.trace.
func (k *Kernel) stageStart(m *sim.Meter) (*StageLat, sim.Cycles) {
	sl := k.stageLat.Load()
	if sl == nil || m == nil {
		return nil, 0
	}
	return sl, m.Total
}

// Observe records that the meter spent (m.Total - start) modelcycles in
// stage st, and charges the tracepoint-pair cost the enabled instrumentation
// itself costs. Call only on a non-nil StageLat.
func (sl *StageLat) Observe(st Stage, m *sim.Meter, start sim.Cycles) {
	var cy sim.Cycles
	if m != nil {
		cy = m.Total - start
	}
	m.Charge(sim.CostStageObserve)
	sh := &sl.shards[shardIdx(m)]
	sh.mu.Lock()
	sh.stats[st].Observe(float64(cy))
	sh.mu.Unlock()
}

// ObserveCycles records an explicit cycle count against stage st on the
// meter's shard (for stages measured outside a start/stop pair).
func (sl *StageLat) ObserveCycles(st Stage, m *sim.Meter, cy sim.Cycles) {
	m.Charge(sim.CostStageObserve)
	sh := &sl.shards[shardIdx(m)]
	sh.mu.Lock()
	sh.stats[st].Observe(float64(cy))
	sh.mu.Unlock()
}

// Merged folds every CPU shard of one stage into a single accumulator.
func (sl *StageLat) Merged(st Stage) *sim.Stats {
	out := sim.NewStats()
	for i := range sl.shards {
		sh := &sl.shards[i]
		sh.mu.Lock()
		out.Merge(sh.stats[st])
		sh.mu.Unlock()
	}
	return out
}

// Report summarizes all stages, merged across shards, in stage order.
// Stages with no samples are skipped.
func (sl *StageLat) Report() []StageSummary {
	out := make([]StageSummary, 0, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		s := sl.Merged(st)
		if s.Count() == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage:  st.String(),
			Count:  s.Count(),
			MeanCy: s.Mean(),
			P50:    s.P50(),
			P99:    s.P99(),
			P999:   s.P999(),
			MaxCy:  s.Max(),
		})
	}
	return out
}
