package sim

// Cycles counts CPU work in clock cycles. Fractional values arise from
// per-byte costs; accumulation stays in floating point.
type Cycles float64

// ClockHz is the modeled core clock. CloudLab c6525-25g hosts carry AMD EPYC
// 7302P CPUs (3.0 GHz base); the model derates to 2.4 GHz effective to stand
// in for the memory stalls it does not simulate. All throughput numbers are
// cycles-per-packet divided into this rate.
const ClockHz = 2.4e9

// PerPacketDuration converts a cycle count into virtual time on one core.
func PerPacketDuration(c Cycles) Duration {
	return Duration(float64(c) / ClockHz * float64(Second))
}

// PacketsPerSecond reports single-core throughput for a per-packet cost.
func PacketsPerSecond(c Cycles) float64 {
	if c <= 0 {
		return 0
	}
	return ClockHz / float64(c)
}

// Cycle-cost constants for the modeled Linux slow path. The decomposition
// follows the forwarding flame graph (paper Fig. 1): driver/NAPI receive,
// sk_buff allocation, netif_receive_skb demux, ip_rcv (+netfilter hook
// traversal), FIB lookup, ip_forward, neighbour output and dev_queue_xmit.
// The anchor is end-to-end: 64B forwarding ≈ 2400 cycles ≈ 1.0 Mpps/core,
// which makes LinuxFP's XDP fast path (≈1350 cycles, Table VII: 1.768 Mpps)
// come out 77% faster — the paper's headline number.
const (
	CostDriverRx     Cycles = 350 // NAPI poll, DMA sync, descriptor handling
	CostSKBAlloc     Cycles = 400 // sk_buff + data allocation and init
	CostSKBFree      Cycles = 80  // kfree_skb on drop/consume
	CostNetifReceive Cycles = 250 // taps, VLAN untag, protocol demux
	CostBridgeInput  Cycles = 320 // br_handle_frame: learn + FDB lookup
	CostBridgeFloodP Cycles = 180 // per extra port cloned on flood
	CostIPRcv        Cycles = 300 // header validation, checksum, route input
	CostRouteLookup  Cycles = 450 // fib_table_lookup on the slow path
	CostIPForward    Cycles = 200 // TTL decrement, forward checks
	CostNeighOutput  Cycles = 150 // neighbour resolve hit + eth header fill
	CostDevXmit      Cycles = 300 // qdisc, driver transmit
	CostLocalDeliver Cycles = 250 // ip_local_deliver, demux to L4
	CostSocketQueue  Cycles = 300 // socket receive queue + wakeup
	CostArpProcess   Cycles = 250 // arp_rcv processing
	CostIcmpEcho     Cycles = 250 // icmp_echo reply construction
	CostDefragFrag   Cycles = 350 // per-fragment reassembly work
	CostFragmentPer  Cycles = 420 // per-fragment emission on ip_fragment
	CostVXLANEncap   Cycles = 450 // vxlan header + outer UDP emit
	CostVXLANDecap   Cycles = 400 // outer UDP strip + inner re-inject
)

// Multi-queue receive costs. A NAPI poll pays its prologue (irq handling,
// poll-list bookkeeping, budget accounting) once per burst, not per packet —
// the amortization DeliverBatch models. The flow fast-cache costs replace the
// full ip_rcv/fib_lookup/ip_forward walk on a hit: hash the 4-tuple, probe
// the per-CPU table, validate the generation, rewrite headers in place.
const (
	CostNAPIPoll      Cycles = 180 // per napi_poll invocation, amortized over the burst
	CostFlowFastHit   Cycles = 120 // per-CPU flow cache: hash + probe + gen check + rewrite
	CostBridgeFastHit Cycles = 100 // per-CPU L2 cache: hash + probe + gen check
)

// Netfilter costs. iptables evaluates chains linearly (the scaling problem
// Fig. 8 exercises); ipset aggregates a rule list into one hashed match.
const (
	CostNFHookBase      Cycles = 60  // hook traversal when rules are present
	CostIptRuleSlow     Cycles = 12  // per rule on the slow path (chain jumps, skb matches)
	CostIptRuleFast     Cycles = 4   // per rule via bpf_ipt_lookup helper
	CostIpsetLookup     Cycles = 110 // hash:net set probe
	CostConntrackLookup Cycles = 180
	CostConntrackCreate Cycles = 420
)

// eBPF fast-path costs. An XDP program runs straight off the driver with no
// sk_buff; a TC program pays the allocation prologue first — Table VII's gap.
const (
	CostXDPPrologue Cycles = 160  // driver XDP hook entry, xdp_buff setup
	CostXDPRedirect Cycles = 420  // ndo_xdp_xmit through the redirect map
	CostXDPTx       Cycles = 300  // bounce out the same NIC
	CostXDPPass     Cycles = 90   // convert to the regular receive path
	CostTCPrologue  Cycles = 1530 // driver rx + skb alloc + GRO + cls entry
	CostTCRedirect  Cycles = 516  // skb redirect to egress device
	// veth variants: a veth RX is a netif_rx + per-CPU backlog softirq
	// pass (no DMA, no fresh allocation — the sender's skb travels), and
	// bpf_redirect_peer hands the skb straight into the peer namespace.
	CostVethRx         Cycles = 650
	CostTCPrologueVeth Cycles = 1030 // veth rx + netif + cls entry
	CostTCRedirectPeer Cycles = 250  // bpf_redirect_peer, no requeue
	CostTailCall       Cycles = 13   // prog-array lookup + jump (Fig. 10: ≈1%)
	CostParseEth       Cycles = 60
	CostParseVLAN      Cycles = 45
	CostParseIPv4      Cycles = 90
	CostRewriteL2L3    Cycles = 140 // MAC rewrite, TTL decrement, csum update
	CostHelperFIB      Cycles = 480 // bpf_fib_lookup
	CostHelperFDB      Cycles = 550 // bpf_fdb_lookup (new helper)
	CostHelperIptB     Cycles = 280 // bpf_ipt_lookup fixed part (new helper)
	CostPortState      Cycles = 60  // STP port state + VLAN filter check
	CostMapLookup      Cycles = 55  // generic hash map lookup
	CostTrivialNF      Cycles = 4   // Fig. 10 no-op body (inlined by clang)
	CostMonitorFPM     Cycles = 95  // extension: per-packet counters
	CostLBConnHash     Cycles = 260 // extension: ipvs-style conn hash + DNAT
	CostParseL4        Cycles = 30  // transport port read (half an eth parse)
	CostBridgeGuard    Cycles = 30  // dst-MAC class check at bridge entry
)

// Specialization costs. The Load-time specializer (K2-style) constant-folds
// the live configuration into the fused program: folded ops either disappear
// or shrink to a guarded fast form. The guard is one generation load+compare
// (the specialized body's staleness check); the merged IPv4+L4 parse saves
// one Frame() fetch and the shared bounds/dispatch overhead; the compiled
// iptables evaluation drops the helper's meta-marshalling fixed part and the
// per-rule interpretive dispatch (precomputed match order over a snapshot).
const (
	CostSpecGuard      Cycles = 2  // generation load + compare in a folded op
	CostParseMergeSave Cycles = 20 // saved by merging ParseIPv4+ParseL4
	CostIptSpecBase    Cycles = 90 // compiled bpf_ipt_lookup fixed part
	CostIptRuleSpec    Cycles = 2  // per rule over the compiled snapshot
)

// Batched fast-path costs. A NAPI poll runs the XDP program over up to 64
// frames back to back: the driver-hook/xdp_buff-setup prologue is paid once
// per poll, and every later frame enters with warm I-cache and a live
// context for the reduced per-frame cost. XDP_TX/XDP_REDIRECT frames are
// accumulated into per-queue devmap bulk queues (DEV_MAP_BULK_SIZE = 16)
// and flushed once per poll (xdp_do_flush): one ndo_xdp_xmit doorbell
// amortized over the burst instead of a full per-frame redirect.
const (
	CostXDPBatchEntry   Cycles = 45  // per frame after the first in a NAPI poll
	CostXDPBulkEnqueue  Cycles = 40  // bq_enqueue: append to the per-queue bulk queue
	CostXDPBulkFlushB   Cycles = 250 // per ndo_xdp_xmit call (doorbell, descriptor sync)
	CostXDPBulkFlushPer Cycles = 120 // per frame transmitted in a bulk flush
)

// Cpumap (XDP_REDIRECT to another CPU) costs. The producer side mirrors the
// kernel's bq_enqueue/bq_flush_to_queue: frames staged during a NAPI poll in
// per-(RX-queue, target-CPU) bulk queues of CPU_MAP_BULK_SIZE, spilled into
// the target CPU's ptr_ring in bulk, with one kthread wakeup (the IPI-ish
// doorbell) per target per xdp_do_flush. The consumer side is the per-entry
// kthread: a ptr_ring consume per frame, then skb build + full stack entry —
// those stack costs are charged by DeliverBatch on the kthread's own meter,
// which is the whole point: the RX core sheds everything past the enqueue.
const (
	CostCpumapEnqueue  Cycles = 40  // bq_enqueue + ptr_ring_produce share per frame
	CostCpumapDequeue  Cycles = 60  // ptr_ring consume + xdp_frame -> skb prep per frame
	CostCpumapDoorbell Cycles = 300 // wake_up_process of the target kthread per flush
)

// Software steering costs (RPS/RFS/XPS, Documentation/networking/scaling.rst).
// RPS hashes the flow on the RX CPU, appends the frame to the target CPU's
// per-CPU backlog (enqueue_to_backlog) and kicks it with an IPI
// (net_rps_send_ipi) — one IPI per poll per target, coalesced exactly like
// the cpumap doorbell. The backlog NAPI pass on the target CPU re-enters the
// stack via process_backlog. RFS adds a sock-flow-table probe on receive and
// an update at socket demux (sock_rps_record_flow). XPS is one per-CPU
// tx-queue map read at dev_queue_xmit; without it, queue selection falls back
// to skb_tx_hash over the full queue set (more work and a shared qdisc line).
const (
	CostRPSHash       Cycles = 40  // get_rps_cpu: flow hash reuse + map probe
	CostRPSEnqueue    Cycles = 90  // enqueue_to_backlog: ring produce + qlen check
	CostRPSIPI        Cycles = 500 // smp_call_function_single_async + remote irq entry
	CostRPSBacklogRun Cycles = 120 // process_backlog NAPI pass, amortized per burst
	CostRFSProbe      Cycles = 35  // rps_sock_flow_table load + ident compare
	CostRFSUpdate     Cycles = 30  // sock_rps_record_flow store on socket demux
	CostXPSPick       Cycles = 25  // xps_map per-CPU tx queue lookup
	CostTxHashPick    Cycles = 55  // skb_tx_hash fallback without XPS
	CostTxQueueShare  Cycles = 110 // qdisc/txq cacheline bounce when CPUs share a queue
)

// Sockmap socket-layer fast-path costs. A sockmap hit replaces the
// ip_rcv/netfilter/fib/ip_local_deliver walk for an established flow with
// one flow-hash probe against the per-CPU socket table (sk_lookup the way
// BPF_MAP_TYPE_SOCKHASH does it); the update is the memoization write at
// first delivery (sock_map_update_elem); the redirect is the sk_skb
// SK_REDIRECT move of a segment from one socket's ingress queue to
// another's egress — the splice that lets a proxy forward without ever
// waking userspace. L7 parse is the verdict program's scan of the HTTP
// request line in the first segment.
const (
	CostSockmapLookup   Cycles = 150 // flow-hash probe + generation check + sk ref
	CostSockmapUpdate   Cycles = 120 // sock_map_update_elem: slot publish
	CostSockmapRedirect Cycles = 220 // sk_skb SK_REDIRECT: ingress->egress queue move
	CostL7Parse         Cycles = 260 // HTTP method/path scan over the first segment
)

// AF_XDP costs. The kernel RX half mirrors xsk_rcv: one fill-ring consume +
// xsk_buff conversion + RX-descriptor publish per frame (zero-copy: payload
// never moves, so there is no per-byte term beyond the driver's), staged
// through per-queue bulk queues like devmap/cpumap with one sock_def_readable
// doorbell per flush — skipped entirely when the app busy-polls
// (XDP_USE_NEED_WAKEUP). The userspace half splits into per-descriptor ring
// work and the syscalls only the wakeup-driven mode pays: busy-poll burns its
// dedicated core instead, exactly the VPP trade.
const (
	CostXSKBulkEnqueue Cycles = 40  // stage append in the per-queue bulk queue
	CostXSKRxDesc      Cycles = 190 // fill consume + zc buff conversion + RX desc publish
	CostXSKDoorbell    Cycles = 300 // sock_def_readable wakeup per flush (wakeup mode only)
	CostXSKAppRx       Cycles = 25  // app: RX desc peek/release, amortized per frame
	CostXSKAppFwd      Cycles = 40  // app: header rewrite + TX descriptor publish
	CostXSKTxDesc      Cycles = 45  // kernel: TX desc consume + xmit descriptor write
	CostXSKCompletion  Cycles = 15  // kernel: completion entry publish
	CostXSKFillRecycle Cycles = 10  // app: recycle one addr onto the fill ring
	CostSyscallPoll    Cycles = 900 // poll() enter/exit (wakeup-driven RX)
	CostSyscallSendto  Cycles = 750 // sendto() TX kick (wakeup-driven TX)
)

// GRO/GSO and batched-TC costs. The GRO layer sits between XDP batch exit
// and IP input: every TCP candidate pays a receive probe (flow-key parse +
// hold-table lookup, napi_gro_receive), merged frames pay an append plus the
// per-byte memcpy, and each emitted supersegment pays one flush
// (napi_gro_complete: length/checksum fixup). The stack then walks once per
// supersegment instead of once per frame — that difference, not these
// constants, is the amortization. On forward, GSO resegmentation pays a
// per-output-frame split cost (skb_segment). The TC classifier entry is the
// 130-cycle residual of CostTCPrologue after driver rx (750), netif (250)
// and implicit GRO (400) are accounted; a batched TC runner pays it once per
// poll and the warm-I-cache CostTCBatchEntry for every later skb, mirroring
// the XDP batch model.
const (
	CostGROReceive   Cycles = 70  // per TCP candidate: key parse + hold probe
	CostGROMerge     Cycles = 60  // per merged segment (plus per-byte memcpy)
	CostGROFlush     Cycles = 90  // per emitted supersegment: len/csum fixup
	CostGSOSegment   Cycles = 180 // per output frame of a GSO split
	CostTCClsEntry   Cycles = 130 // cls_bpf entry: the TC prologue residual
	CostTCBatchEntry Cycles = 45  // per skb after the first in a batched TC run
)

// Observability costs. Stage latency accounting models a pair of enabled
// tracepoints (TSC read + histogram bucket increment) per stage; the BPF
// ring buffer splits the kernel's bpf_ringbuf_reserve/commit pair, with
// bpf_ringbuf_output paying both plus the copy. All of these are charged
// only when the corresponding observer is attached — the disabled path is
// one nil pointer load, the static-key nop.
const (
	CostStageObserve   Cycles = 24  // tracepoint pair + log-linear bucket add
	CostRingbufReserve Cycles = 60  // producer position cas + hdr write
	CostRingbufCommit  Cycles = 40  // commit flip + maybe-wakeup check
	CostRingbufWakeup  Cycles = 250 // irq_work -> wake_up_all of the consumer
	CostRingbufPerByte Cycles = 0.5 // record payload copy into the ring
)

// Flight-recorder and flow-telemetry costs. The recorder's sampling decision
// is a per-CPU counter increment; stamped packets pay a side-table probe per
// instrumentation site (pwru's skb-address hash) and a span append; the flow
// table pays one sharded map upsert plus a heap fix per observed packet.
// All charged only while the observer is attached — detached is the usual
// one-nil-check static key.
const (
	CostFlightProbe  Cycles = 6  // per-RX sampling counter increment
	CostFlightLookup Cycles = 18 // side-table shard lock + map probe
	CostFlightSpan   Cycles = 28 // span append (TSC read + store)
	CostFlowObserve  Cycles = 34 // flow shard upsert + min-heap fix
)

// Shadow-state costs for the Polycube baseline: its cubes keep private maps
// instead of calling into kernel state, so lookups are plain map probes but
// every function boundary is a tail call and filtering uses its own
// classifier.
const (
	CostCubeEntry       Cycles = 70  // per-cube entry bookkeeping
	CostCubeMeta        Cycles = 60  // inter-cube metadata map read/write
	CostCubeLPMLookup   Cycles = 430 // LPM trie map in cube-private state
	CostCubeFDBLookup   Cycles = 410
	CostCubeARPLookup   Cycles = 55  // cube-private ARP hash map
	CostCubeClassifier  Cycles = 180 // efficient multidim classifier base
	CostCubeClassPer100 Cycles = 18  // classifier growth per 100 rules
)

// VPP vector-processing model: per-node costs split into a per-packet part
// and a per-vector fixed part amortized across the batch.
const (
	VPPVectorSize            = 256
	CostVPPNodePerPkt Cycles = 95  // per packet per graph node
	CostVPPNodeFixed  Cycles = 600 // per vector per graph node (I-cache win)
	VPPGraphNodes            = 5   // input, parse, lookup, rewrite, output
)

// Per-byte cost: payload moves by DMA, the CPU only touches headers, so
// the per-byte share is tiny (descriptor and cacheline effects). Keeps
// Fig. 6 packets-per-second nearly flat in packet size while
// bits-per-second scale toward line rate with large frames.
const CostPerByte Cycles = 0.04

// LineRateBitsPerSec is the testbed NIC speed (25 Gbps on c6525-25g).
const LineRateBitsPerSec = 25e9

// Controller reaction-time model (Table VI): virtual latencies of each stage
// of the deploy pipeline. The dominant term is the clang compile of the
// synthesized data path, exactly as in the real system.
const (
	LatNetlinkNotify  Duration = 1 * Millisecond
	LatIntrospectDump Duration = 12 * Millisecond
	LatIptcDump       Duration = 350 * Millisecond // libiptc full-table read
	LatGraphBuild     Duration = 3 * Millisecond
	LatSynthPerFPM    Duration = 25 * Millisecond // template render
	LatSynthIptExtra  Duration = 60 * Millisecond // ipt helper glue codegen
	LatCompileBase    Duration = 380 * Millisecond
	LatCompilePerFPM  Duration = 40 * Millisecond
	LatVerifyLoad     Duration = 60 * Millisecond
	LatAttachSwap     Duration = 25 * Millisecond
)

// Meter accumulates the cycle cost of processing one packet (or one
// controller action). Pipelines charge it as they execute real work; the
// testbed converts the total into virtual time.
type Meter struct {
	Total Cycles
	// CPU identifies the virtual core doing the work. Sharded subsystems
	// (per-queue stats, the flow fast-cache) index their per-CPU state by
	// it. Zero is a valid CPU; concurrent callers must use distinct CPUs,
	// exactly like per-CPU data in the kernel.
	CPU int
}

// Charge adds cycles to the meter. A nil meter is valid and ignores charges,
// so functional tests can run pipelines without cost accounting.
func (m *Meter) Charge(c Cycles) {
	if m == nil {
		return
	}
	m.Total += c
}

// ChargeBytes adds the per-byte memory cost for a frame of n bytes.
func (m *Meter) ChargeBytes(n int) {
	if m == nil {
		return
	}
	m.Total += Cycles(float64(n) * float64(CostPerByte))
}

// Reset clears the meter for reuse.
func (m *Meter) Reset() {
	if m != nil {
		m.Total = 0
	}
}
