package ebpf

import (
	"sync"
	"sync/atomic"

	"linuxfp/internal/drop"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/sim"
)

// ProgArray is the BPF_MAP_TYPE_PROG_ARRAY: tail-call targets indexed by
// slot. Updating a slot is a single atomic pointer store — the mechanism
// LinuxFP uses to swap an entire data path without dropping packets
// (paper Fig. 4).
type ProgArray struct {
	name  string
	slots []atomic.Pointer[Program]
}

// NewProgArray allocates a program array with n slots.
func NewProgArray(name string, n int) *ProgArray {
	return &ProgArray{name: name, slots: make([]atomic.Pointer[Program], n)}
}

// Name returns the map name.
func (pa *ProgArray) Name() string { return pa.name }

// Len reports the slot count.
func (pa *ProgArray) Len() int { return len(pa.slots) }

// Update installs a program in a slot (nil clears it). It reports whether
// the slot index was valid.
func (pa *ProgArray) Update(slot int, p *Program) bool {
	if slot < 0 || slot >= len(pa.slots) {
		return false
	}
	pa.slots[slot].Store(p)
	return true
}

// Lookup fetches the program in a slot.
func (pa *ProgArray) Lookup(slot int) *Program {
	if slot < 0 || slot >= len(pa.slots) {
		return nil
	}
	return pa.slots[slot].Load()
}

// HashMap is a BPF_MAP_TYPE_HASH with 64-bit keys and values — enough for
// the counters and small lookup tables FPMs keep (remember: LinuxFP
// deliberately does NOT keep configuration state in maps; that is the
// Polycube baseline's approach).
type HashMap struct {
	name string
	max  int

	mu sync.RWMutex
	m  map[uint64]uint64
}

// NewHashMap allocates a hash map with a max-entries bound.
func NewHashMap(name string, maxEntries int) *HashMap {
	return &HashMap{name: name, max: maxEntries, m: make(map[uint64]uint64)}
}

// Name returns the map name.
func (h *HashMap) Name() string { return h.name }

// Lookup reads a key.
func (h *HashMap) Lookup(k uint64) (uint64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.m[k]
	return v, ok
}

// Update writes a key, failing when the map is full (E2BIG in the kernel).
func (h *HashMap) Update(k, v uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.m[k]; !exists && len(h.m) >= h.max {
		return false
	}
	h.m[k] = v
	return true
}

// Delete removes a key.
func (h *HashMap) Delete(k uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.m[k]
	delete(h.m, k)
	return ok
}

// Add atomically increments a key (BPF_XADD-style), creating it at delta.
func (h *HashMap) Add(k, delta uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.m[k]; !exists && len(h.m) >= h.max {
		return
	}
	h.m[k] += delta
}

// Len reports the number of entries.
func (h *HashMap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY of 64-bit values (per-CPU flavour is
// not modeled; a single atomic slot array captures the semantics).
type ArrayMap struct {
	name  string
	slots []atomic.Uint64
}

// NewArrayMap allocates an array map.
func NewArrayMap(name string, n int) *ArrayMap {
	return &ArrayMap{name: name, slots: make([]atomic.Uint64, n)}
}

// Name returns the map name.
func (a *ArrayMap) Name() string { return a.name }

// Len reports the slot count.
func (a *ArrayMap) Len() int { return len(a.slots) }

// Lookup reads a slot (out-of-range reads zero, like a missing element).
func (a *ArrayMap) Lookup(i int) uint64 {
	if i < 0 || i >= len(a.slots) {
		return 0
	}
	return a.slots[i].Load()
}

// Update writes a slot.
func (a *ArrayMap) Update(i int, v uint64) bool {
	if i < 0 || i >= len(a.slots) {
		return false
	}
	a.slots[i].Store(v)
	return true
}

// Add atomically increments a slot.
func (a *ArrayMap) Add(i int, delta uint64) {
	if i >= 0 && i < len(a.slots) {
		a.slots[i].Add(delta)
	}
}

// MapCPUs is the number of virtual CPUs per-CPU map variants shard over.
// It matches netdev.MaxRxQueues (and therefore kernel.NumRxShards) so a
// meter's CPU maps 1:1 onto a shard, and is a power of two so the mapping
// is a mask.
const MapCPUs = netdev.MaxRxQueues

const mapCPUMask = MapCPUs - 1

// PerCPUArrayMap is a BPF_MAP_TYPE_PERCPU_ARRAY: each virtual CPU owns its
// own value row, so per-packet counter updates from different RX queues
// never contend on a cache line. Data-path writers pass their Meter CPU;
// control-plane readers aggregate with Sum, the way userspace sums the
// per-CPU values a percpu map lookup returns.
type PerCPUArrayMap struct {
	name   string
	n      int
	stride int // per-CPU row length, rounded up to a cache line of slots
	slots  []atomic.Uint64
}

// NewPerCPUArrayMap allocates a per-CPU array map with n slots per CPU.
func NewPerCPUArrayMap(name string, n int) *PerCPUArrayMap {
	stride := (n + 7) &^ 7 // cache-line align rows: no false sharing between CPUs
	return &PerCPUArrayMap{name: name, n: n, stride: stride, slots: make([]atomic.Uint64, MapCPUs*stride)}
}

// Name returns the map name.
func (a *PerCPUArrayMap) Name() string { return a.name }

// Len reports the per-CPU slot count.
func (a *PerCPUArrayMap) Len() int { return a.n }

// Add increments slot i on the given CPU's row.
func (a *PerCPUArrayMap) Add(cpu, i int, delta uint64) {
	if i >= 0 && i < a.n {
		a.slots[(cpu&mapCPUMask)*a.stride+i].Add(delta)
	}
}

// Lookup reads slot i on one CPU's row (out-of-range reads zero).
func (a *PerCPUArrayMap) Lookup(cpu, i int) uint64 {
	if i < 0 || i >= a.n {
		return 0
	}
	return a.slots[(cpu&mapCPUMask)*a.stride+i].Load()
}

// Sum aggregates slot i across every CPU — the control-plane read.
func (a *PerCPUArrayMap) Sum(i int) uint64 {
	if i < 0 || i >= a.n {
		return 0
	}
	var total uint64
	for cpu := 0; cpu < MapCPUs; cpu++ {
		total += a.slots[cpu*a.stride+i].Load()
	}
	return total
}

// LookupAggregate sums every slot across every CPU in one pass — what a
// userspace bpf_map_lookup_elem on a percpu map hands back, pre-reduced.
// Monitors and tests that want the whole map's totals use this instead of
// hand-rolling a Sum loop per slot.
func (a *PerCPUArrayMap) LookupAggregate() []uint64 {
	out := make([]uint64, a.n)
	for cpu := 0; cpu < MapCPUs; cpu++ {
		row := a.slots[cpu*a.stride:]
		for i := 0; i < a.n; i++ {
			out[i] += row[i].Load()
		}
	}
	return out
}

// pcpuShard is one CPU's slice of a PerCPUHashMap. The mutex is effectively
// uncontended (each RX queue only touches its own shard); the padding keeps
// shards on distinct cache lines.
type pcpuShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
	_  [4]uint64
}

// PerCPUHashMap is a BPF_MAP_TYPE_PERCPU_HASH modeled as per-CPU key/value
// shards: an update from CPU x is visible only to CPU x, exactly like the
// kernel's per-CPU values. For flow-keyed state this is coherent because
// RSS pins every flow to one RX queue — the property LinuxFP's LB module
// relies on to drop the cross-queue lock.
type PerCPUHashMap struct {
	name   string
	max    int // per-CPU entry bound, like the kernel's per-CPU allocation
	shards []pcpuShard
}

// NewPerCPUHashMap allocates a per-CPU hash map bounded at maxEntries per
// CPU.
func NewPerCPUHashMap(name string, maxEntries int) *PerCPUHashMap {
	h := &PerCPUHashMap{name: name, max: maxEntries, shards: make([]pcpuShard, MapCPUs)}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]uint64)
	}
	return h
}

// Name returns the map name.
func (h *PerCPUHashMap) Name() string { return h.name }

func (h *PerCPUHashMap) shard(cpu int) *pcpuShard { return &h.shards[cpu&mapCPUMask] }

// Lookup reads a key on one CPU's shard.
func (h *PerCPUHashMap) Lookup(cpu int, k uint64) (uint64, bool) {
	s := h.shard(cpu)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// Update writes a key on one CPU's shard, failing when that shard is full.
func (h *PerCPUHashMap) Update(cpu int, k, v uint64) bool {
	s := h.shard(cpu)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[k]; !exists && len(s.m) >= h.max {
		return false
	}
	s.m[k] = v
	return true
}

// Add increments a key on one CPU's shard, creating it at delta.
func (h *PerCPUHashMap) Add(cpu int, k, delta uint64) {
	s := h.shard(cpu)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[k]; !exists && len(s.m) >= h.max {
		return
	}
	s.m[k] += delta
}

// Delete removes a key from one CPU's shard.
func (h *PerCPUHashMap) Delete(cpu int, k uint64) bool {
	s := h.shard(cpu)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[k]
	delete(s.m, k)
	return ok
}

// LookupAggregate sums a key's value across every CPU and reports whether
// any shard held it — Sum plus existence, the shape userspace gets from a
// percpu hash lookup after reducing the per-CPU rows.
func (h *PerCPUHashMap) LookupAggregate(k uint64) (uint64, bool) {
	var total uint64
	found := false
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if v, ok := s.m[k]; ok {
			total += v
			found = true
		}
		s.mu.Unlock()
	}
	return total, found
}

// Sum aggregates a key's value across every CPU (control-plane read).
func (h *PerCPUHashMap) Sum(k uint64) uint64 {
	var total uint64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		total += s.m[k]
		s.mu.Unlock()
	}
	return total
}

// Len reports the total entry count across CPUs.
func (h *PerCPUHashMap) Len() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// cpuStage is one (RX queue, target CPU) bulk queue: up to CPUMapBulkSize
// frames staged for one cpumap entry during a NAPI poll. The entry pointer
// is captured at stage time so an in-flight stage still spills into the
// entry the frames were redirected to, even if the map slot was swapped or
// deleted mid-poll (the stopped entry counts them as drops — no frame is
// silently lost).
type cpuStage struct {
	e      *kernel.CpumapEntry
	dev    *netdev.Device
	n      int
	frames [netdev.CPUMapBulkSize][]byte
}

// cpumapRxQueue is one RX queue's staging state. The mutex is uncontended
// when each device polls its own queue index (the common case), and keeps
// the map safe when programs on two devices share a queue index; the
// padding keeps queues on distinct cache lines.
type cpumapRxQueue struct {
	mu     sync.Mutex
	stages []cpuStage
	_      [4]uint64
}

// CPUMap is the BPF_MAP_TYPE_CPUMAP: XDP_REDIRECT targets that are CPUs, not
// devices. Each occupied slot is a kernel.CpumapEntry — a bounded ptr_ring
// plus a kthread that drains it into the target CPU's DeliverBatch. The map
// implements netdev.CPURedirectTarget: the redirect helper plants it on the
// XDP buff, the driver's batch loop stages frames per (RX queue, CPU) and
// spills in CPUMapBulkSize bursts, and xdp_do_flush rings each touched
// entry's doorbell once per poll.
type CPUMap struct {
	name    string
	kern    *kernel.Kernel
	entries [MapCPUs]atomic.Pointer[kernel.CpumapEntry]
	queues  [netdev.MaxRxQueues]cpumapRxQueue
}

// NewCPUMap allocates a cpumap bound to the kernel whose stack the target
// kthreads inject into. All slots start empty.
func NewCPUMap(name string, k *kernel.Kernel) *CPUMap {
	return &CPUMap{name: name, kern: k}
}

// Name returns the map name.
func (cm *CPUMap) Name() string { return cm.name }

// Len reports the slot count.
func (cm *CPUMap) Len() int { return MapCPUs }

// Update installs (or replaces) the entry for a CPU with a ring of qsize
// frames, starting its kthread. A replaced entry is stopped and drained
// before Update returns. Reports whether the CPU index was valid.
func (cm *CPUMap) Update(cpu, qsize int) bool {
	if cpu < 0 || cpu >= MapCPUs || qsize < 1 {
		return false
	}
	e := cm.kern.NewCpumapEntry(cpu, qsize)
	if old := cm.entries[cpu].Swap(e); old != nil {
		old.Stop()
	}
	return true
}

// UpdateWithProg installs an entry whose kthread re-runs an XDP program on
// every frame after dequeue — BPF_MAP_TYPE_CPUMAP with a CPUMAP_VALUE_PROG
// (bpf_cpu_map_entry.prog, kernel 5.9+). The program executes on the target
// CPU's meter, after the redirect, so the RX core stays at its minimal
// enqueue cost and the second verdict (filter, TX, device redirect) is
// charged where the kernel charges it: in cpu_map_bpf_prog_run_xdp.
func (cm *CPUMap) UpdateWithProg(cpu, qsize int, p *Program) bool {
	if cpu < 0 || cpu >= MapCPUs || qsize < 1 || p == nil {
		return false
	}
	k := cm.kern
	e := k.NewCpumapEntry(cpu, qsize)
	e.SetValueProg(func(dev *netdev.Device, frame []byte, m *sim.Meter) (bool, drop.Reason) {
		buff := &netdev.XDPBuff{Data: frame, IfIndex: dev.Index, Meter: m}
		ctx := ctxPool.Get().(*Ctx)
		*ctx = Ctx{
			Kernel: k, Meter: m, Hook: HookXDP,
			IfIndex: dev.Index, XDP: buff,
			jit: k.BPFJITEnabled(), spec: k.BPFSpecEnabled(),
		}
		v := p.exec(ctx)
		redirectIf, redirectCPUMap := ctx.RedirectIfIndex, ctx.RedirectCPUMap
		ctxPool.Put(ctx)
		switch v {
		case VerdictDrop:
			return false, drop.ReasonXDPDrop
		case VerdictAborted:
			return false, drop.ReasonXDPAborted
		case VerdictTX:
			// Reflect out the arrival device; the frame is consumed here and
			// the device's TX counters account for it.
			dev.Transmit(frame, m)
			return false, drop.ReasonNotSpecified
		case VerdictRedirect:
			// Chained cpumap redirects are not a thing in the kernel either:
			// a value prog may only target devices.
			if redirectCPUMap == nil {
				if out, ok := k.DeviceByIndex(redirectIf); ok {
					m.Charge(sim.CostDevXmit)
					out.Transmit(frame, m)
					return false, drop.ReasonNotSpecified
				}
			}
			return false, drop.ReasonXDPRedirectFail
		default:
			return true, drop.ReasonNotSpecified
		}
	})
	if old := cm.entries[cpu].Swap(e); old != nil {
		old.Stop()
	}
	return true
}

// SetLatObserver attaches a latency observer to a CPU's entry: every frame's
// enqueue→dequeue cycle delta is recorded into s. Reports whether the slot
// was occupied.
func (cm *CPUMap) SetLatObserver(cpu int, s *sim.Stats) bool {
	if cpu < 0 || cpu >= MapCPUs {
		return false
	}
	e := cm.entries[cpu].Load()
	if e == nil {
		return false
	}
	e.SetLatObserver(s)
	return true
}

// Delete clears a CPU's slot, stopping and draining its kthread. Reports
// whether a live entry was removed.
func (cm *CPUMap) Delete(cpu int) bool {
	if cpu < 0 || cpu >= MapCPUs {
		return false
	}
	old := cm.entries[cpu].Swap(nil)
	if old == nil {
		return false
	}
	old.Stop()
	return true
}

// Lookup reports a slot's ring capacity (the map value) and occupancy.
func (cm *CPUMap) Lookup(cpu int) (qsize int, ok bool) {
	if cpu < 0 || cpu >= MapCPUs {
		return 0, false
	}
	e := cm.entries[cpu].Load()
	if e == nil {
		return 0, false
	}
	return e.Qsize(), true
}

// EntryCycles reports the cycle total a slot's kthread has charged so far —
// the per-target-CPU load a sweep needs to find the busiest core. Zero for
// an empty slot.
func (cm *CPUMap) EntryCycles(cpu int) sim.Cycles {
	if cpu < 0 || cpu >= MapCPUs {
		return 0
	}
	e := cm.entries[cpu].Load()
	if e == nil {
		return 0
	}
	return e.Cycles()
}

// Quiesce blocks until every frame enqueued to any live entry has been
// delivered to the stack. Tests and sweeps call it between polls for
// deterministic GRO windows and cycle totals.
func (cm *CPUMap) Quiesce() {
	for i := range cm.entries {
		if e := cm.entries[i].Load(); e != nil {
			e.Quiesce()
		}
	}
}

// EnqueueCPU implements netdev.CPURedirectTarget: stage one frame for cpu on
// rxq, spilling the stage into the entry's ring when it is already full.
// ok is false when the slot is empty (an unresolvable redirect); dropped
// counts frames a threshold spill lost to ring overflow.
func (cm *CPUMap) EnqueueCPU(rxq, cpu int, dev *netdev.Device, frame []byte, m *sim.Meter) (dropped int, ok bool) {
	if cpu < 0 || cpu >= MapCPUs {
		return 0, false
	}
	e := cm.entries[cpu].Load()
	if e == nil {
		return 0, false
	}
	m.Charge(sim.CostCpumapEnqueue)
	q := &cm.queues[rxq&(netdev.MaxRxQueues-1)]
	q.mu.Lock()
	st := (*cpuStage)(nil)
	for i := range q.stages {
		if q.stages[i].e == e {
			st = &q.stages[i]
			break
		}
	}
	if st == nil {
		q.stages = append(q.stages, cpuStage{e: e, dev: dev})
		st = &q.stages[len(q.stages)-1]
	}
	if st.n == netdev.CPUMapBulkSize || (st.n > 0 && st.dev != dev) {
		var wasEmpty bool
		dropped, wasEmpty = e.EnqueueBatch(st.dev, st.frames[:st.n], m)
		st.n = 0
		if wasEmpty {
			// First spill into an idle ring: wake the kthread now instead of
			// waiting for end-of-poll, so it overlaps with the rest of the
			// NAPI burst (cpu_map_kthread wake-on-first-enqueue).
			e.RingDoorbell(m)
		}
	}
	st.dev = dev
	st.frames[st.n] = frame
	st.n++
	q.mu.Unlock()
	return dropped, true
}

// FlushCPU implements netdev.CPURedirectTarget: spill every stage rxq
// touched since the last flush and ring each target's doorbell once — the
// cpumap half of xdp_do_flush.
func (cm *CPUMap) FlushCPU(rxq int, m *sim.Meter) (dropped int) {
	q := &cm.queues[rxq&(netdev.MaxRxQueues-1)]
	q.mu.Lock()
	for i := range q.stages {
		st := &q.stages[i]
		if st.n > 0 {
			d, _ := st.e.EnqueueBatch(st.dev, st.frames[:st.n], m)
			dropped += d
		}
		// One doorbell per entry touched this poll, even if its frames all
		// went in via threshold spills.
		st.e.RingDoorbell(m)
		*st = cpuStage{} // release frame and entry references
	}
	q.stages = q.stages[:0]
	q.mu.Unlock()
	return dropped
}
