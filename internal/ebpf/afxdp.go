package ebpf

import (
	"sync/atomic"

	"linuxfp/internal/sim"
)

// AF_XDP support (paper §VIII future work): "add custom packet-processing
// applications in user space and use a special type of socket, called
// AF_XDP, that allows sending raw packets directly from the XDP layer to
// user space". An AFXDPSocket is the user-space end; an XSKMap is the
// BPF_MAP_TYPE_XSKMAP programs redirect into.

// CostXSKRedirect models the zero-copy descriptor hand-off to the
// user-space ring — far below the regular socket path.
const CostXSKRedirect sim.Cycles = 220

// AFXDPSocket is a bound user-space receive ring. Read raw frames from C.
type AFXDPSocket struct {
	C chan []byte

	dropped atomic.Uint64
}

// NewAFXDPSocket allocates a socket with the given RX ring depth.
func NewAFXDPSocket(depth int) *AFXDPSocket {
	return &AFXDPSocket{C: make(chan []byte, depth)}
}

// Dropped reports frames lost to a full RX ring.
func (s *AFXDPSocket) Dropped() uint64 { return s.dropped.Load() }

// push enqueues one frame without blocking (full ring drops, as real
// AF_XDP does when the fill queue is empty).
func (s *AFXDPSocket) push(frame []byte) bool {
	select {
	case s.C <- frame:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// XSKMap maps queue indexes to AF_XDP sockets.
type XSKMap struct {
	name  string
	slots []atomic.Pointer[AFXDPSocket]
}

// NewXSKMap allocates an XSK map with n slots.
func NewXSKMap(name string, n int) *XSKMap {
	return &XSKMap{name: name, slots: make([]atomic.Pointer[AFXDPSocket], n)}
}

// Name returns the map name.
func (m *XSKMap) Name() string { return m.name }

// Len reports the slot count.
func (m *XSKMap) Len() int { return len(m.slots) }

// Update binds a socket to a slot (nil unbinds).
func (m *XSKMap) Update(slot int, s *AFXDPSocket) bool {
	if slot < 0 || slot >= len(m.slots) {
		return false
	}
	m.slots[slot].Store(s)
	return true
}

// HelperRedirectXSK is bpf_redirect_map on an XSK map: the frame is handed
// to the bound user-space socket. An unbound slot or a full ring behaves
// like the kernel: the packet is dropped (the caller should treat the
// verdict as terminal).
func HelperRedirectXSK(c *Ctx, m *XSKMap, slot int) Verdict {
	c.Meter.Charge(CostXSKRedirect)
	if slot < 0 || slot >= len(m.slots) {
		return VerdictAborted
	}
	s := m.slots[slot].Load()
	if s == nil {
		return VerdictDrop
	}
	s.push(append([]byte(nil), c.Frame()...))
	return VerdictDrop // consumed from the kernel's point of view
}
