package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/flight"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// ObsPoint is one measured observability configuration: the slow-path
// forwarding workload with instrumentation fully off (the baseline the
// ≤2%-overhead budget is judged against) or fully on — per-stage latency
// histograms plus a per-packet EventTrace into the ring buffer — at one
// ring wakeup batch size.
type ObsPoint struct {
	Enabled      bool                  `json:"enabled"`
	WakeupBatch  int                   `json:"wakeup_batch"` // 0 for the off point
	CyclesPerPkt float64               `json:"cycles_per_pkt"`
	OverheadPct  float64               `json:"overhead_pct_vs_off"`
	Events       uint64                `json:"events_produced"`
	EventDrops   uint64                `json:"events_dropped"` // ringbuf_full, never packets
	Consumed     uint64                `json:"events_consumed"`
	Stages       []kernel.StageSummary `json:"stages,omitempty"`
}

// FlightPoint is one measured flight-recorder configuration: the same
// forwarding workload with the packet flight recorder (and optionally the
// flow telemetry table) attached at one sampling shift. OverheadPct is
// relative to the recorder-off baseline — the same point the ObsPoint
// overheads are judged against.
type FlightPoint struct {
	SampleShift   int     `json:"sample_shift"` // samples 1 in 2^shift
	FlowTelemetry bool    `json:"flow_telemetry"`
	CyclesPerPkt  float64 `json:"cycles_per_pkt"`
	OverheadPct   float64 `json:"flight_overhead_pct"`
	Sampled       uint64  `json:"chains_sampled"`
	Spans         uint64  `json:"spans"`
	Lost          uint64  `json:"chains_lost"`
	Events        uint64  `json:"events_produced"`
	EventDrops    uint64  `json:"events_dropped"`
	FlowsTracked  int     `json:"flows_tracked,omitempty"`
}

// ObsReport is the machine-readable result of ObsSweep — what
// `lfpbench -exp obs` serializes into BENCH_obs.json.
type ObsReport struct {
	Platform     string        `json:"platform"`
	ClockHz      float64       `json:"clock_hz"`
	Frames       int           `json:"frames"`
	Flows        int           `json:"flows"`
	PayloadBytes int           `json:"tcp_payload_bytes"`
	RingBytes    int           `json:"ring_bytes"`
	Points       []ObsPoint    `json:"points"`
	Flight       []FlightPoint `json:"flight_points"`
}

const (
	obsFlows   = 64
	obsSegs    = 64 // 4096 frames per point
	obsPayload = 128
	obsRing    = 1 << 16
)

// obsWorkload builds the sweep's frames: routed TCP flows, flow-major.
func obsWorkload(d *DUT) [][]byte {
	src := packet.MustAddr("10.1.0.1")
	frames := make([][]byte, 0, obsFlows*obsSegs)
	for f := 0; f < obsFlows; f++ {
		dst := packet.AddrFrom4(10, 100+byte(f%RoutedPrefixes), byte(f/RoutedPrefixes), 10)
		seq, id := uint32(1), uint16(1)
		for s := 0; s < obsSegs; s++ {
			tcp := packet.TCP{SrcPort: uint16(4000 + f), DstPort: 80, Seq: seq, Ack: 1,
				Flags: packet.TCPAck, Window: 512}
			frames = append(frames, packet.BuildIPv4(
				packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
				packet.IPv4{TTL: 64, ID: id, Flags: packet.IPv4DontFragment, Proto: packet.ProtoTCP, Src: src, Dst: dst},
				tcp.Marshal(nil, src, dst, make([]byte, obsPayload))))
			seq += obsPayload
			id++
		}
	}
	return frames
}

// ObsSweep measures the observability pipeline's cost: the same forwarding
// workload with instrumentation off, then on at each requested ring wakeup
// batch size. "On" means the full pipeline — stage histograms attached, a
// kfree_skb mirror and a per-packet XDP TraceOp both producing into one
// ring buffer, with a consumer draining between polls.
func ObsSweep(batches []int) (*ObsReport, error) {
	d, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	r := &ObsReport{
		Platform:     PlatformLinux,
		ClockHz:      sim.ClockHz,
		Frames:       obsFlows * obsSegs,
		Flows:        obsFlows,
		PayloadBytes: obsPayload,
		RingBytes:    obsRing,
	}

	base, err := obsPoint(d, false, 0)
	if err != nil {
		return nil, err
	}
	r.Points = append(r.Points, base)
	for _, b := range batches {
		if b < 1 {
			continue
		}
		p, err := obsPoint(d, true, b)
		if err != nil {
			return nil, err
		}
		p.OverheadPct = (p.CyclesPerPkt/base.CyclesPerPkt - 1) * 100
		r.Points = append(r.Points, p)
	}
	// Flight-recorder cost: span stamping scales with the sampling rate
	// (1-in-256 down to every packet); the last point adds the flow
	// telemetry table, which observes every packet regardless of sampling.
	for _, cfg := range []struct {
		shift int
		flows bool
	}{{8, false}, {4, false}, {0, false}, {4, true}} {
		fp, err := flightPoint(d, cfg.shift, cfg.flows)
		if err != nil {
			return nil, err
		}
		fp.OverheadPct = (fp.CyclesPerPkt/base.CyclesPerPkt - 1) * 100
		r.Flight = append(r.Flight, fp)
	}
	return r, nil
}

// flightPoint drives the workload with the flight recorder attached at one
// sampling shift, emitting span events into a drained ring; withFlows also
// attaches the flow telemetry table.
func flightPoint(d *DUT, shift int, withFlows bool) (FlightPoint, error) {
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	// Same XDP parse pipeline as the baseline point, so the delta is the
	// recorder alone: sampling probe, span stamps, ring production.
	loader := ebpf.NewLoader(d.Kern)
	prog, err := loader.Load(&ebpf.Program{
		Name: "flight_parse", Hook: ebpf.HookXDP,
		Ops:     []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4()},
		Default: ebpf.VerdictPass,
	})
	if err != nil {
		return FlightPoint{}, err
	}
	if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
		return FlightPoint{}, err
	}
	defer d.In.DetachXDP()

	rb := ebpf.NewRingBuf("flight_events", obsRing)
	fr := d.Kern.EnableFlight(flight.Config{SampleShift: uint8(shift), Ring: rb})
	defer d.Kern.DisableFlight()
	var ft *flight.FlowTable
	if withFlows {
		ft = d.Kern.EnableFlowTelemetry(0)
		defer d.Kern.DisableFlowTelemetry()
	}

	frames := obsWorkload(d)
	n := len(frames)
	var m sim.Meter
	for i := 0; i < n; i += netdev.NAPIBudget {
		end := i + netdev.NAPIBudget
		if end > n {
			end = n
		}
		d.In.ReceiveBatch(frames[i:end], 0, &m)
		// Consumer keeps pace poll-by-poll, off the metered path: spans
		// outnumber packets, so it drains every batch, not just doorbells.
		rb.Poll(func([]byte) {})
	}
	rb.Flush()
	rb.Poll(func([]byte) {})

	t := fr.Terminals()
	p := FlightPoint{
		SampleShift:   shift,
		FlowTelemetry: withFlows,
		CyclesPerPkt:  float64(m.Total) / float64(n),
		Sampled:       t.Sampled,
		Spans:         t.Spans,
		Lost:          t.Lost,
		Events:        rb.Produced(),
		EventDrops:    rb.Dropped(),
	}
	if ft != nil {
		p.FlowsTracked = ft.Tracked()
	}
	return p, nil
}

// obsPoint drives the workload through one configuration. Wires are
// unplugged so only DUT work meters; frames arrive in NAPI polls on RX
// queue 0.
func obsPoint(d *DUT, enabled bool, wakeupBatch int) (ObsPoint, error) {
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()

	// Both points run the same XDP parse pipeline, so the off/on delta is
	// observability alone: stage observations, trace events, ring overhead.
	ops := []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4()}
	var rb *ebpf.RingBuf
	var sl *kernel.StageLat
	if enabled {
		rb = ebpf.NewRingBuf("obs_events", obsRing)
		rb.SetWakeupBatch(wakeupBatch)
		sl = d.Kern.EnableStageLat()
		// kfree_skb mirror: every kernel drop becomes one ring event, from
		// the dropping CPU, through the same non-blocking producer path.
		d.Kern.SetDropNotify(func(reason drop.Reason, m *sim.Meter) {
			var buf [ebpf.EventSize]byte
			ev := ebpf.Event{Type: ebpf.EventDrop, Reason: reason, Cycles: uint64(m.Total)}
			ev.MarshalInto(&buf)
			rb.Output(buf[:])
		})
		defer d.Kern.DisableStageLat()
		defer d.Kern.SetDropNotify(nil)
		ops = append(ops, fpm.TraceOp(fpm.TraceConf{Ring: rb}))
	}
	loader := ebpf.NewLoader(d.Kern)
	prog, err := loader.Load(&ebpf.Program{
		Name: "obs_trace", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass,
	})
	if err != nil {
		return ObsPoint{}, err
	}
	if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
		return ObsPoint{}, err
	}
	defer d.In.DetachXDP()

	frames := obsWorkload(d)
	n := len(frames)
	var consumed uint64
	var m sim.Meter
	for i := 0; i < n; i += netdev.NAPIBudget {
		end := i + netdev.NAPIBudget
		if end > n {
			end = n
		}
		d.In.ReceiveBatch(frames[i:end], 0, &m)
		if rb != nil {
			// Consumer keeps pace poll-by-poll, off the metered path, the
			// way a userspace reader on another core would.
			select {
			case <-rb.C():
				consumed += uint64(rb.Poll(func([]byte) {}))
			default:
			}
		}
	}

	p := ObsPoint{
		Enabled:      enabled,
		WakeupBatch:  wakeupBatch,
		CyclesPerPkt: float64(m.Total) / float64(n),
	}
	if rb != nil {
		rb.Flush()
		consumed += uint64(rb.Poll(func([]byte) {}))
		p.Events = rb.Produced()
		p.EventDrops = rb.Dropped()
		p.Consumed = consumed
	}
	if sl != nil {
		p.Stages = sl.Report()
	}
	return p, nil
}

// RenderObs prints the sweep in the house table style.
func RenderObs(r *ObsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability overhead: slow-path forwarding, instrumentation off vs on (%d flows x %d segs, %dB payload, %dKiB ring)\n",
		r.Flows, r.Frames/r.Flows, r.PayloadBytes, r.RingBytes/1024)
	fmt.Fprintf(&b, "%-7s %-7s %14s %10s %10s %10s %9s\n",
		"obs", "batch", "cycles/pkt", "overhead", "events", "consumed", "evdrops")
	for _, p := range r.Points {
		mode, batch, overhead := "off", "-", "-"
		if p.Enabled {
			mode = "on"
			batch = fmt.Sprintf("%d", p.WakeupBatch)
			overhead = fmt.Sprintf("%+.2f%%", p.OverheadPct)
		}
		fmt.Fprintf(&b, "%-7s %-7s %14.1f %10s %10d %10d %9d\n",
			mode, batch, p.CyclesPerPkt, overhead, p.Events, p.Consumed, p.EventDrops)
	}
	if len(r.Flight) > 0 {
		fmt.Fprintf(&b, "\nflight recorder: span chains + trace ledger, same workload (overhead vs obs-off baseline)\n")
		fmt.Fprintf(&b, "%-9s %-6s %14s %10s %9s %9s %6s %9s\n",
			"sampling", "flows", "cycles/pkt", "overhead", "sampled", "spans", "lost", "events")
		for _, p := range r.Flight {
			flows := "-"
			if p.FlowTelemetry {
				flows = fmt.Sprintf("%d", p.FlowsTracked)
			}
			fmt.Fprintf(&b, "1-in-%-4d %-6s %14.1f %+9.2f%% %9d %9d %6d %9d\n",
				1<<p.SampleShift, flows, p.CyclesPerPkt, p.OverheadPct, p.Sampled, p.Spans, p.Lost, p.Events)
		}
	}
	for _, p := range r.Points {
		if !p.Enabled || len(p.Stages) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nper-stage latency (batch %d), modelcycles:\n", p.WakeupBatch)
		fmt.Fprintf(&b, "%-11s %10s %10s %10s %10s %10s\n", "stage", "count", "mean", "p50", "p99", "p999")
		for _, s := range p.Stages {
			fmt.Fprintf(&b, "%-11s %10d %10.1f %10.1f %10.1f %10.1f\n",
				s.Stage, s.Count, s.MeanCy, s.P50, s.P99, s.P999)
		}
		break // one table is enough; batches only change wakeup amortization
	}
	return b.String()
}
