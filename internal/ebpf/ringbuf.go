package ebpf

// RingBuf models BPF_MAP_TYPE_RINGBUF: a byte-sized MPSC ring shared by every
// producer CPU, with kernel-ringbuf semantics where they matter to the model:
//
//   - Reserve/Submit/Discard producer API. Reserve claims ring bytes up front
//     (header + 8-byte-aligned payload) under a short producer lock — the
//     analogue of the real ringbuf's per-reserve spinlock — and NEVER waits
//     for the consumer: a full ring fails the reserve and the producer drops
//     the event (counted, reason ringbuf_full) without stalling the datapath.
//   - MPSC ordering: records become consumable strictly in reserve order. A
//     reserved-but-uncommitted record blocks delivery of every later record,
//     committed or not, exactly like the busy bit in a real record header.
//   - Epoll-style consumer wakeup with batching: Submit posts a doorbell
//     (coalesced channel of capacity 1) only once per WakeupBatch committed
//     records, modelling BPF_RB_NO_WAKEUP-based batching; Flush forces the
//     doorbell for a partial batch.
//
// Event drops here are bookkept on the ring itself — they are lost telemetry,
// not lost packets, so they stay out of the kernel/netdev packet-drop
// conservation sums while still carrying drop.ReasonRingbufFull in the
// exported reason table.

import (
	"sync"
	"sync/atomic"

	"linuxfp/internal/drop"
)

// recState is the lifecycle of one reserved record.
const (
	recBusy      uint32 = iota // reserved, producer still writing
	recCommitted               // submitted, consumable once it reaches head
	recDiscarded               // discarded, skipped by the consumer
)

// ringbufHdrSize is the per-record header overhead charged against the ring's
// byte capacity, like struct bpf_ringbuf_hdr.
const ringbufHdrSize = 8

// RingRecord is one reserved region. The producer fills Bytes() then calls
// exactly one of Submit or Discard; the record is invalid afterwards.
type RingRecord struct {
	rb    *RingBuf
	buf   []byte
	size  int    // ring bytes accounted: header + aligned payload
	state uint32 // recBusy/recCommitted/recDiscarded, guarded by rb.mu
}

// Bytes returns the reserved payload region.
func (r *RingRecord) Bytes() []byte { return r.buf }

// RingBuf is the ring itself. The zero value is not usable; use NewRingBuf.
type RingBuf struct {
	name string
	cap  int // payload+header byte capacity, power of two

	mu   sync.Mutex
	used int // bytes reserved and not yet consumed
	recs []*RingRecord
	head int // index of the oldest unconsumed record in recs

	wakeupBatch atomic.Int64
	unacked     int // committed since the last doorbell, guarded by mu

	doorbell chan struct{}

	produced  atomic.Uint64 // records submitted
	discarded atomic.Uint64 // records discarded
	consumed  atomic.Uint64 // records delivered to the consumer
	dropped   atomic.Uint64 // reserves refused on a full ring (ringbuf_full)
}

// NewRingBuf creates a ring with at least capBytes of capacity, rounded up to
// a power of two (minimum 4096), waking the consumer on every submit until
// SetWakeupBatch raises the batch.
func NewRingBuf(name string, capBytes int) *RingBuf {
	c := 4096
	for c < capBytes {
		c <<= 1
	}
	rb := &RingBuf{
		name:     name,
		cap:      c,
		doorbell: make(chan struct{}, 1),
	}
	rb.wakeupBatch.Store(1)
	return rb
}

// Name returns the ring's map name.
func (rb *RingBuf) Name() string { return rb.name }

// Cap returns the ring's byte capacity.
func (rb *RingBuf) Cap() int { return rb.cap }

// SetWakeupBatch sets how many committed records accumulate before Submit
// posts the consumer doorbell (values < 1 mean every submit). Larger batches
// amortize the wakeup cost the way BPF_RB_NO_WAKEUP producers do, at the
// price of delivery latency for a trickle of events — pair with Flush.
func (rb *RingBuf) SetWakeupBatch(n int) {
	if n < 1 {
		n = 1
	}
	rb.wakeupBatch.Store(int64(n))
}

// align8 rounds payload sizes up the way the kernel ringbuf does.
func align8(n int) int { return (n + 7) &^ 7 }

// Reserve claims size payload bytes. It returns nil — and counts a drop —
// when the ring cannot hold the record; it never waits for the consumer.
func (rb *RingBuf) Reserve(size int) *RingRecord {
	if size < 0 {
		return nil
	}
	need := ringbufHdrSize + align8(size)
	rb.mu.Lock()
	if rb.used+need > rb.cap {
		rb.mu.Unlock()
		rb.dropped.Add(1)
		return nil
	}
	rec := recordPool.Get().(*RingRecord)
	if cap(rec.buf) < size {
		rec.buf = make([]byte, size)
	}
	rec.rb, rec.buf, rec.size, rec.state = rb, rec.buf[:size], need, recBusy
	rb.used += need
	rb.recs = append(rb.recs, rec)
	rb.mu.Unlock()
	return rec
}

var recordPool = sync.Pool{New: func() any { return new(RingRecord) }}

// Submit commits the record, making it consumable once every earlier reserve
// has resolved. It reports whether it posted the consumer doorbell (one
// wakeup per WakeupBatch commits).
func (r *RingRecord) Submit() bool {
	rb := r.rb
	rb.mu.Lock()
	r.state = recCommitted
	rb.unacked++
	wake := rb.unacked >= int(rb.wakeupBatch.Load())
	if wake {
		rb.unacked = 0
	}
	rb.mu.Unlock()
	rb.produced.Add(1)
	if wake {
		rb.ring()
	}
	return wake
}

// Discard releases the record without delivering it. Its ring bytes free once
// the consumer's scan passes it, like a discarded kernel record.
func (r *RingRecord) Discard() {
	rb := r.rb
	rb.mu.Lock()
	r.state = recDiscarded
	rb.mu.Unlock()
	rb.discarded.Add(1)
}

// Flush posts the doorbell if any committed records have not been signalled —
// the producer-side BPF_RB_FORCE_WAKEUP for a partial batch.
func (rb *RingBuf) Flush() {
	rb.mu.Lock()
	wake := rb.unacked > 0
	rb.unacked = 0
	rb.mu.Unlock()
	if wake {
		rb.ring()
	}
}

// ring posts the coalesced doorbell without blocking.
func (rb *RingBuf) ring() {
	select {
	case rb.doorbell <- struct{}{}:
	default:
	}
}

// C is the consumer's wakeup channel: one coalesced signal per doorbell, the
// model of epoll_wait on the ring's fd. Consumers drain with Poll after each
// wakeup (and once before waiting, to catch pre-subscription events).
func (rb *RingBuf) C() <-chan struct{} { return rb.doorbell }

// Poll delivers every currently-consumable record, in reserve order, to fn,
// and returns how many it delivered. It stops at the first still-busy record.
// The payload slice is only valid for the duration of the callback.
func (rb *RingBuf) Poll(fn func(rec []byte)) int {
	n := 0
	for {
		rb.mu.Lock()
		var rec *RingRecord
		for rb.head < len(rb.recs) {
			r := rb.recs[rb.head]
			if r.state == recBusy {
				break
			}
			rb.recs[rb.head] = nil
			rb.head++
			rb.used -= r.size
			if rb.head == len(rb.recs) {
				rb.recs = rb.recs[:0]
				rb.head = 0
			}
			if r.state == recDiscarded {
				recordPool.Put(r)
				continue
			}
			rec = r
			break
		}
		rb.mu.Unlock()
		if rec == nil {
			return n
		}
		fn(rec.buf)
		recordPool.Put(rec)
		rb.consumed.Add(1)
		n++
	}
}

// Output is reserve+copy+submit in one call: the bpf_ringbuf_output helper
// shape. It reports whether the event was accepted and whether the doorbell
// was posted.
func (rb *RingBuf) Output(data []byte) (ok, woke bool) {
	rec := rb.Reserve(len(data))
	if rec == nil {
		return false, false
	}
	copy(rec.buf, data)
	return true, rec.Submit()
}

// Produced returns how many records have been submitted.
func (rb *RingBuf) Produced() uint64 { return rb.produced.Load() }

// Consumed returns how many records the consumer has drained.
func (rb *RingBuf) Consumed() uint64 { return rb.consumed.Load() }

// Dropped returns how many events were refused on a full ring. These carry
// drop.ReasonRingbufFull in telemetry but are NOT packet drops: they never
// enter the kernel/netdev drop conservation sums.
func (rb *RingBuf) Dropped() uint64 { return rb.dropped.Load() }

// DroppedReason is the reason every ringbuf event drop carries.
func (rb *RingBuf) DroppedReason() drop.Reason { return drop.ReasonRingbufFull }
