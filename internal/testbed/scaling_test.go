package testbed

import "testing"

// TestParallelScaling checks the multi-queue datapath actually scales: the
// measured aggregate packet rate with 4 RX queues (4 worker CPUs) must be at
// least 2.5x the single-core rate. The parallel rate is measured, not
// modelled — per-queue goroutines drain RSS-steered bursts and the busiest
// queue's cycle count bounds the wall clock.
func TestParallelScaling(t *testing.T) {
	d := build(t, PlatformLinux, Scenario{})
	one := d.ParallelPPS(1, 64)
	four := d.ParallelPPS(4, 64)
	if one <= 0 || four <= 0 {
		t.Fatalf("non-positive rates: 1 core %.0f pps, 4 cores %.0f pps", one, four)
	}
	if scale := four / one; scale < 2.5 {
		t.Errorf("4-queue scaling %.2fx (%.0f -> %.0f pps), want >= 2.5x", scale, one, four)
	}

	// Throughput derives Gbps from the same measured rate and caps at line
	// rate; more cores can never report less.
	pps1, _ := d.Throughput(1, 64)
	pps4, _ := d.Throughput(4, 64)
	if pps4 < pps1 {
		t.Errorf("Throughput regressed with cores: %.0f -> %.0f pps", pps1, pps4)
	}
}
