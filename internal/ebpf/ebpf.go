// Package ebpf models the kernel's eBPF execution environment at the level
// LinuxFP uses it: programs composed of ops (the synthesized snippets),
// XDP and TC attach points with different capability sets, a verifier, maps
// (including the program array that powers atomic tail-call swaps), and the
// kernel helpers — bpf_fib_lookup plus the paper's new bpf_fdb_lookup and
// bpf_ipt_lookup — that read kernel state directly instead of shadow maps.
package ebpf

import (
	"fmt"
	"sync/atomic"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// Hook is an eBPF attach point.
type Hook int

// Attach points.
const (
	HookXDP Hook = iota + 1
	HookTCIngress
	HookTCEgress
	HookSKSKBParser  // sk_skb stream parser (BPF_SK_SKB_STREAM_PARSER)
	HookSKSKBVerdict // sk_skb stream verdict (BPF_SK_SKB_STREAM_VERDICT)
)

func (h Hook) String() string {
	switch h {
	case HookXDP:
		return "xdp"
	case HookTCIngress:
		return "tc-ingress"
	case HookTCEgress:
		return "tc-egress"
	case HookSKSKBParser:
		return "sk_skb-parser"
	case HookSKSKBVerdict:
		return "sk_skb-verdict"
	default:
		return fmt.Sprintf("hook(%d)", int(h))
	}
}

// Cap is a bitmask of capabilities an op requires from its hook.
type Cap uint32

// Capabilities.
const (
	CapSKB       Cap = 1 << iota // needs sk_buff fields (TC hooks only)
	CapHelperFIB                 // bpf_fib_lookup available
	CapHelperFDB                 // bpf_fdb_lookup (new helper)
	CapHelperIpt                 // bpf_ipt_lookup (new helper)
	CapTailCall
	CapRedirect
	CapAdjustHead // packet headroom manipulation (encap)
	CapHelperIPVS // bpf_ipvs_lookup (new helper, Table I's LB row)
	CapRingbuf    // bpf_ringbuf_output (event stream to userspace)
)

// Verdict is an op outcome inside a program.
type Verdict int

// Verdicts. VerdictNext continues to the following op; the rest terminate
// the program.
const (
	VerdictNext Verdict = iota
	VerdictPass         // hand the packet to the kernel slow path
	VerdictDrop
	VerdictTX       // bounce out the receiving interface
	VerdictRedirect // transmit on ctx.RedirectIfIndex
	VerdictAborted  // runtime fault (bounds violation)
)

func (v Verdict) String() string {
	switch v {
	case VerdictNext:
		return "next"
	case VerdictPass:
		return "pass"
	case VerdictDrop:
		return "drop"
	case VerdictTX:
		return "tx"
	case VerdictRedirect:
		return "redirect"
	case VerdictAborted:
		return "aborted"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// MaxTailCalls matches the kernel's tail-call depth limit.
const MaxTailCalls = 33

// Ctx is the execution context of one program run: the packet plus scratch
// state the parse ops populate for downstream ops (in real eBPF these are
// registers/stack; here they are typed fields).
type Ctx struct {
	Kernel  *kernel.Kernel
	Meter   *sim.Meter
	Hook    Hook
	IfIndex int

	// Exactly one of these is set, matching the hook.
	XDP *netdev.XDPBuff
	SKB *kernel.SKB

	// Parsed state.
	L3Off     int
	EtherType uint16
	VLAN      uint16
	SrcMAC    packet.HWAddr
	DstMAC    packet.HWAddr
	IPSrc     packet.Addr
	IPDst     packet.Addr
	IPProto   uint8
	TTL       uint8
	Fragment  bool
	Options   bool
	SrcPort   uint16
	DstPort   uint16

	// FIB holds the last HelperFIBLookup result for downstream ops
	// (filter needs the egress ifindex; rewrite needs the MACs).
	FIB   FIBResult
	FIBOk bool

	// Redirect target for VerdictRedirect.
	RedirectIfIndex int

	// Cpumap redirect target, set by HelperRedirectCPU: when RedirectCPUMap
	// is non-nil a VerdictRedirect means "hand the frame to RedirectCPU's
	// kthread in that map" instead of a device transmit.
	RedirectCPUMap *CPUMap
	RedirectCPU    int

	// AF_XDP redirect target, set by HelperRedirectXSK: when RedirectXSKMap
	// is non-nil a VerdictRedirect means "hand the frame to the socket in
	// RedirectXSKSlot of that map" instead of a device transmit.
	RedirectXSKMap  *XSKMap
	RedirectXSKSlot int

	// sk_skb state: Msg is the socket-layer segment a stream parser/verdict
	// program runs over (nil on packet hooks). HelperSKRedirectMap sets the
	// sockmap redirect target; a VerdictRedirect with RedirectSockMap non-nil
	// means SK_REDIRECT to that slot's socket.
	Msg             *kernel.SocketMsg
	RedirectSockMap *SockMap
	RedirectSockKey int

	depth int  // tail-call depth
	jit   bool // run fused (JIT) program bodies, including tail-call targets
	spec  bool // prefer the specialized body when one exists (implies jit)
}

// CPU reports the virtual core the packet is being processed on (per-CPU
// map variants index their shards by it). A nil meter accounts on CPU 0.
func (c *Ctx) CPU() int {
	if c.Meter == nil {
		return 0
	}
	return c.Meter.CPU
}

// Frame returns the raw packet bytes.
func (c *Ctx) Frame() []byte {
	if c.XDP != nil {
		return c.XDP.Data
	}
	if c.SKB != nil {
		return c.SKB.Data
	}
	return nil
}

// SetFrame replaces the packet bytes (after head adjustment).
func (c *Ctx) SetFrame(b []byte) {
	if c.XDP != nil {
		c.XDP.Data = b
	} else if c.SKB != nil {
		c.SKB.Data = b
	}
}

// Op is one synthesized code snippet inside a program.
type Op interface {
	// Name identifies the snippet in diagnostics and synthesized source.
	Name() string
	// Cost is the op's cycle charge per execution.
	Cost() sim.Cycles
	// Caps reports the capabilities the op requires from its hook.
	Caps() Cap
	// Insns estimates the op's eBPF instruction count (verifier budget).
	Insns() int
	// Run executes the op.
	Run(*Ctx) Verdict
}

// FuncOp is the standard Op implementation the synthesizer instantiates
// from snippet templates: configuration is baked into the closure, exactly
// like the paper's per-configuration code generation.
type FuncOp struct {
	name  string
	cost  sim.Cycles
	caps  Cap
	insns int
	fn    func(*Ctx) Verdict

	// Optional specializer hooks, consumed by the Load-time specialization
	// pass (specialize.go). All are nil for ops with no foldable structure.
	class        SpecClass                 // what this op computes (collapse key)
	spec         func(*SpecEnv) SpecResult // constant-fold against live config
	collapsePrev SpecClass                 // merge with a preceding op of this class
	collapse     func(prev *FuncOp) *FuncOp
}

// NewOp builds an op.
func NewOp(name string, cost sim.Cycles, caps Cap, insns int, fn func(*Ctx) Verdict) *FuncOp {
	return &FuncOp{name: name, cost: cost, caps: caps, insns: insns, fn: fn}
}

// WithSpecClass tags the op with the header-read class it implements, making
// it a candidate for adjacent-read collapsing.
func (o *FuncOp) WithSpecClass(class SpecClass) *FuncOp {
	o.class = class
	return o
}

// WithSpecializer installs the op's constant-folding hook: called once per
// Load with the live configuration environment, it may elide the op entirely
// or replace it with a cheaper form. The hook must be conservative — any
// fold whose precondition can change under a live program must guard on a
// generation counter and punt (VerdictPass) or fall back when stale.
func (o *FuncOp) WithSpecializer(fn func(*SpecEnv) SpecResult) *FuncOp {
	o.spec = fn
	return o
}

// WithCollapse declares that this op can merge with an immediately preceding
// surviving op of class prev, producing a single fused op via merge.
func (o *FuncOp) WithCollapse(prev SpecClass, merge func(prev *FuncOp) *FuncOp) *FuncOp {
	o.collapsePrev = prev
	o.collapse = merge
	return o
}

// Name implements Op.
func (o *FuncOp) Name() string { return o.name }

// Cost implements Op.
func (o *FuncOp) Cost() sim.Cycles { return o.cost }

// Caps implements Op.
func (o *FuncOp) Caps() Cap { return o.caps }

// Insns implements Op.
func (o *FuncOp) Insns() int { return o.insns }

// Run implements Op: charge, then execute.
func (o *FuncOp) Run(c *Ctx) Verdict {
	c.Meter.Charge(o.cost)
	return o.fn(c)
}

// Program is a sequence of ops with a default verdict when the ops run out.
type Program struct {
	Name    string
	Hook    Hook
	Ops     []Op
	Default Verdict // applied if no op terminates; VerdictPass is the safe choice

	id int // assigned by the loader

	// Compiled forms, built at load time and published atomically so a
	// re-Load (controller re-synthesis) can swap bodies under live traffic
	// without a torn read.
	jit  atomic.Pointer[jitProg] // fused form
	spec atomic.Pointer[jitProg] // specialized+fused form
}

// ID reports the loader-assigned program ID (0 if not loaded).
func (p *Program) ID() int { return p.id }

// run executes the program body against a context.
func (p *Program) run(c *Ctx) Verdict {
	for _, op := range p.Ops {
		v := op.Run(c)
		if v != VerdictNext {
			return v
		}
	}
	if p.Default == VerdictNext {
		return VerdictPass
	}
	return p.Default
}

// TailCall jumps from the current program into the target held in a
// program array slot, charging the tail-call cost and enforcing the depth
// limit. It returns the callee's verdict (tail calls never return to the
// caller, as in the kernel).
func (c *Ctx) TailCall(pa *ProgArray, slot int) Verdict {
	c.Meter.Charge(sim.CostTailCall)
	c.depth++
	if c.depth > MaxTailCalls {
		return VerdictAborted
	}
	target := pa.Lookup(slot)
	if target == nil {
		return VerdictAborted
	}
	return target.exec(c)
}
