package netdev

import (
	"testing"

	"linuxfp/internal/sim"
)

// BenchmarkRunXDPBatch measures one NAPI poll over a full 64-frame budget
// with mixed verdicts (drop/tx/redirect/pass) and bulk devmap flushing —
// the batch hot path in isolation. b.N counts frames.
func BenchmarkRunXDPBatch(b *testing.B) {
	r := newBenchRig(b)
	frames := make([][]byte, NAPIBudget)
	backing := make([]byte, NAPIBudget)
	var m sim.Meter
	fill := func() {
		for i := range frames {
			backing[i] = byte(i)
			frames[i] = backing[i : i+1]
		}
	}
	fill()
	r.rx.ReceiveBatch(frames, 0, &m) // warm: devmap + scratch
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += NAPIBudget {
		fill()
		r.rx.ReceiveBatch(frames, 0, &m)
	}
}

// BenchmarkRunXDPPerPacket is the same verdict mix through the per-packet
// entry point, for the batched-vs-per-packet A/B at the netdev layer.
func BenchmarkRunXDPPerPacket(b *testing.B) {
	r := newBenchRig(b)
	buf := make([]byte, 1)
	var m sim.Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		r.rx.Receive(buf, &m)
	}
}

func newBenchRig(b *testing.B) *batchRig {
	b.Helper()
	r := &batchRig{rxStack: newFakeStack(), sinkRxTx: newFakeStack(), sinkOut: newFakeStack()}
	r.rx = New("rx0", 1, Physical, testMAC, r.rxStack)
	r.out = New("out0", 2, Physical, testMAC, r.rxStack)
	for _, d := range []*Device{r.rx, r.out} {
		d.SetUp(true)
	}
	r.rxStack.devices[r.rx.Index] = r.rx
	r.rxStack.devices[r.out.Index] = r.out
	r.rx.AttachXDP(mixedVerdicts(2), "driver")
	return r
}
