package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 -> csum 220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing byte is padded with zero.
	if Checksum([]byte{0xab}) != Checksum([]byte{0xab, 0x00}) {
		t.Fatal("odd-length padding wrong")
	}
}

func TestChecksumValidatesToZero(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		b := append([]byte(nil), data...)
		b[0], b[1] = 0, 0
		c := Checksum(b)
		b[0], b[1] = byte(c>>8), byte(c)
		return Checksum(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumIncrementalEqualsFull(t *testing.T) {
	// Property: RFC 1624 incremental update equals recomputation, for any
	// 16-bit field change anywhere in a random even-length buffer.
	f := func(data []byte, pos uint8, repl uint16) bool {
		if len(data) < 4 {
			return true
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		b := append([]byte(nil), data...)
		i := int(pos) % (len(b) / 2) * 2
		old := binary.BigEndian.Uint16(b[i:])
		hc := Checksum(b)
		binary.BigEndian.PutUint16(b[i:], repl)
		want := Checksum(b)
		got := ChecksumUpdate16(hc, old, repl)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MustHWAddr("aa:bb:cc:dd:ee:ff"),
		Src:       MustHWAddr("11:22:33:44:55:66"),
		EtherType: EtherTypeIPv4,
	}
	b := e.Marshal(nil)
	if len(b) != EthHdrLen {
		t.Fatalf("len %d", len(b))
	}
	got, n, err := UnmarshalEthernet(append(b, 0xde, 0xad))
	if err != nil || n != EthHdrLen || got != e {
		t.Fatalf("round trip: %+v n=%d err=%v", got, n, err)
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MustHWAddr("aa:bb:cc:dd:ee:ff"),
		Src:       MustHWAddr("11:22:33:44:55:66"),
		VLAN:      100,
		VLANPrio:  5,
		EtherType: EtherTypeARP,
	}
	b := e.Marshal(nil)
	if len(b) != EthHdrLen+VLANTagLen {
		t.Fatalf("len %d", len(b))
	}
	got, n, err := UnmarshalEthernet(b)
	if err != nil || n != 18 || got != e {
		t.Fatalf("vlan round trip: %+v n=%d err=%v", got, n, err)
	}
	if got.HeaderLen() != 18 {
		t.Fatalf("header len %d", got.HeaderLen())
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, err := UnmarshalEthernet(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// VLAN tag implies 18 bytes minimum.
	e := Ethernet{VLAN: 5, EtherType: EtherTypeIPv4}
	b := e.Marshal(nil)
	if _, _, err := UnmarshalEthernet(b[:15]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated for short vlan, got %v", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       ARPRequest,
		SenderHW: MustHWAddr("02:00:00:00:00:01"),
		SenderIP: MustAddr("10.0.0.1"),
		TargetIP: MustAddr("10.0.0.2"),
	}
	b := a.Marshal(nil)
	if len(b) != ARPLen {
		t.Fatalf("len %d", len(b))
	}
	got, err := UnmarshalARP(b)
	if err != nil || got != a {
		t.Fatalf("round trip: %+v err=%v", got, err)
	}
}

func TestARPRejectsNonEthernetIPv4(t *testing.T) {
	a := ARP{Op: ARPReply}
	b := a.Marshal(nil)
	b[0] = 9 // htype
	if _, err := UnmarshalARP(b); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader, got %v", err)
	}
	if _, err := UnmarshalARP(b[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS:      0x10,
		TotalLen: 60,
		ID:       0x1234,
		Flags:    IPv4DontFragment,
		TTL:      64,
		Proto:    ProtoUDP,
		Src:      MustAddr("192.168.0.1"),
		Dst:      MustAddr("10.9.8.7"),
	}
	b := h.Marshal(nil)
	if len(b) != IPv4MinLen {
		t.Fatalf("len %d", len(b))
	}
	got, n, err := UnmarshalIPv4(b)
	if err != nil || n != IPv4MinLen {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	got.Checksum = 0 // round-trip compare ignores the computed checksum field
	want := h
	if got.TOS != want.TOS || got.TotalLen != want.TotalLen || got.ID != want.ID ||
		got.Flags != want.Flags || got.TTL != want.TTL || got.Proto != want.Proto ||
		got.Src != want.Src || got.Dst != want.Dst {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestIPv4Options(t *testing.T) {
	h := IPv4{TotalLen: 28, TTL: 1, Proto: ProtoICMP, Options: []byte{7, 4, 0, 0}}
	b := h.Marshal(nil)
	if len(b) != 24 {
		t.Fatalf("len %d", len(b))
	}
	got, n, err := UnmarshalIPv4(b)
	if err != nil || n != 24 || !bytes.Equal(got.Options, h.Options) {
		t.Fatalf("options round trip: n=%d err=%v opts=%v", n, err, got.Options)
	}
}

func TestIPv4BadOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misaligned options")
		}
	}()
	h := IPv4{Options: []byte{1}}
	h.Marshal(nil)
}

func TestIPv4RejectsCorruption(t *testing.T) {
	h := IPv4{TotalLen: 20, TTL: 64, Proto: ProtoTCP, Src: 1, Dst: 2}
	good := h.Marshal(nil)

	bad := append([]byte(nil), good...)
	bad[8] = 63 // flip TTL without fixing checksum
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[0] = 0x60 // version 6
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader for version, got %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[0] = 0x44 // ihl 4 < 5
	if _, _, err := UnmarshalIPv4(bad); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader for ihl, got %v", err)
	}

	if _, _, err := UnmarshalIPv4(good[:19]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestIPv4FragmentFlags(t *testing.T) {
	h := IPv4{Flags: IPv4MoreFrags, FragOff: 0, TotalLen: 20}
	if !h.IsFragment() || !h.MoreFragments() || h.DontFragment() {
		t.Error("MF fragment flags wrong")
	}
	h = IPv4{FragOff: 185, TotalLen: 20}
	if !h.IsFragment() {
		t.Error("nonzero offset should be a fragment")
	}
	h = IPv4{Flags: IPv4DontFragment, TotalLen: 20}
	if h.IsFragment() || !h.DontFragment() {
		t.Error("DF-only should not be a fragment")
	}
	// Flag bits survive a marshal round trip alongside the offset.
	h = IPv4{Flags: IPv4MoreFrags, FragOff: 100, TotalLen: 20, TTL: 9}
	got, _, err := UnmarshalIPv4(h.Marshal(nil))
	if err != nil || got.FragOff != 100 || !got.MoreFragments() {
		t.Fatalf("fragment round trip: %+v err=%v", got, err)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ic := ICMP{Type: ICMPEchoRequest, Rest: 0xcafe0001}
	payload := []byte("ping payload")
	b := ic.Marshal(nil, payload)
	got, pl, err := UnmarshalICMP(b)
	if err != nil || got != ic || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v %q err=%v", got, pl, err)
	}
	b[1] ^= 0xff
	if _, _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := MustAddr("10.0.0.1"), MustAddr("10.0.0.2")
	u := UDP{SrcPort: 5201, DstPort: 12865}
	payload := []byte("netperf request")
	b := u.Marshal(nil, src, dst, payload)
	got, pl, err := UnmarshalUDP(b, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5201 || got.DstPort != 12865 || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v %q", got, pl)
	}
	b[9]++ // corrupt payload
	if _, _, err := UnmarshalUDP(b, src, dst); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestUDPLengthValidation(t *testing.T) {
	b := UDP{SrcPort: 1, DstPort: 2}.marshalBadLen(t)
	if _, _, err := UnmarshalUDP(b, 0, 0); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader, got %v", err)
	}
}

// marshalBadLen builds a UDP header whose length field exceeds the buffer.
func (u UDP) marshalBadLen(t *testing.T) []byte {
	t.Helper()
	b := u.Marshal(nil, 0, 0, nil)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)+10))
	return b
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := MustAddr("172.16.0.1"), MustAddr("172.16.0.9")
	tc := TCP{SrcPort: 443, DstPort: 51000, Seq: 7, Ack: 9, Flags: TCPSyn | TCPAck, Window: 65535}
	payload := []byte{1, 2, 3}
	b := tc.Marshal(nil, src, dst, payload)
	got, pl, err := UnmarshalTCP(b, src, dst)
	if err != nil || got != tc || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip: %+v %v err=%v", got, pl, err)
	}
	b[20]++ // corrupt payload
	if _, _, err := UnmarshalTCP(b, src, dst); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestTCPOffsetValidation(t *testing.T) {
	tc := TCP{SrcPort: 1, DstPort: 2}
	b := tc.Marshal(nil, 0, 0, nil)
	b[12] = 3 << 4 // data offset 12 bytes < 20
	if _, _, err := UnmarshalTCP(b, 0, 0); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("want ErrBadHeader, got %v", err)
	}
}

func TestTransportChecksumProperty(t *testing.T) {
	// Property: any built UDP frame validates; flipping any byte fails.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		src, dst := Addr(rng.Uint32()), Addr(rng.Uint32())
		if src == 0 {
			src = 1
		}
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		u := UDP{SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32())}
		b := u.Marshal(nil, src, dst, payload)
		if _, _, err := UnmarshalUDP(b, src, dst); err != nil {
			t.Fatalf("fresh frame failed validation: %v", err)
		}
		if len(b) > UDPHdrLen {
			j := UDPHdrLen + rng.Intn(len(b)-UDPHdrLen)
			b[j] ^= 1 << uint(rng.Intn(8))
			if _, _, err := UnmarshalUDP(b, src, dst); err == nil {
				t.Fatal("corrupted frame passed validation")
			}
		}
	}
}
