package vpp

import (
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

type rig struct {
	src, dut, sink *kernel.Kernel
	srcDev, in     *netdev.Device
	out, sinkDev   *netdev.Device
	captured       int
	v              *Instance
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{src: kernel.New("src"), dut: kernel.New("dut"), sink: kernel.New("sink")}
	r.srcDev = r.src.CreateDevice("eth0", netdev.Physical)
	r.in = r.dut.CreateDevice("eth0", netdev.Physical)
	r.out = r.dut.CreateDevice("eth1", netdev.Physical)
	r.sinkDev = r.sink.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(r.srcDev, r.in)
	netdev.Connect(r.out, r.sinkDev)
	for _, d := range []*netdev.Device{r.srcDev, r.in, r.out, r.sinkDev} {
		d.SetUp(true)
	}
	r.sinkDev.Tap = func([]byte) { r.captured++ }

	r.v = New(r.dut, 1)
	if err := r.v.TakeInterface("eth0"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.TakeInterface("eth1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.v.AddRoute(packet.Prefix{Addr: packet.AddrFrom4(10, 100+byte(i), 0, 0), Bits: 16},
			packet.MustAddr("10.2.0.1"), "eth1")
	}
	r.v.AddNeighbor(packet.MustAddr("10.2.0.1"), r.sinkDev.MAC)
	return r
}

func (r *rig) frameTo(dst packet.Addr, ttl uint8) []byte {
	srcIP := packet.MustAddr("10.1.0.1")
	u := packet.UDP{SrcPort: 1, DstPort: 2}
	return packet.BuildIPv4(
		packet.Ethernet{Dst: r.in.MAC, Src: r.srcDev.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: ttl, Proto: packet.ProtoUDP, Src: srcIP, Dst: dst},
		u.Marshal(nil, srcIP, dst, nil),
	)
}

func TestVPPForwards(t *testing.T) {
	r := newRig(t)
	var m sim.Meter
	r.srcDev.Transmit(r.frameTo(packet.MustAddr("10.100.1.1"), 64), &m)
	if r.captured != 1 {
		t.Fatal("packet lost")
	}
	if r.v.Stats().Forwarded != 1 {
		t.Fatalf("stats %+v", r.v.Stats())
	}
	// Kernel bypass: the DUT kernel saw nothing at all.
	if s := r.dut.Stats(); s.Forwarded != 0 && s.Dropped != 0 {
		t.Fatalf("kernel touched the packet: %+v", s)
	}
}

func TestVPPBypassIsTotal(t *testing.T) {
	// Even Linux-destined traffic (ARP, pings to kernel-configured
	// addresses) dies inside VPP once it owns the NIC.
	r := newRig(t)
	r.dut.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24"))
	var m sim.Meter
	r.src.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.1.0.254"), OutIf: r.srcDev.Index})
	r.src.Ping(packet.MustAddr("10.1.0.254"), 1, 1, nil, &m)
	if r.dut.Stats().ICMPTx != 0 {
		t.Fatal("kernel answered a ping on a VPP-owned NIC")
	}
	if r.v.Stats().Dropped == 0 {
		t.Fatal("vpp should have eaten the ARP")
	}
}

func TestVPPDropsCornerCases(t *testing.T) {
	r := newRig(t)
	var m sim.Meter
	r.srcDev.Transmit(r.frameTo(packet.MustAddr("203.0.113.1"), 64), &m) // no route
	r.srcDev.Transmit(r.frameTo(packet.MustAddr("10.100.1.1"), 1), &m)   // ttl
	frame := packet.BuildEthernet(packet.Ethernet{Dst: r.in.MAC, Src: r.srcDev.MAC, EtherType: 0x86dd}, make([]byte, 40))
	r.srcDev.Transmit(frame, &m) // non-IPv4
	if r.captured != 0 {
		t.Fatal("corner case delivered")
	}
	if r.v.Stats().Dropped != 3 {
		t.Fatalf("stats %+v", r.v.Stats())
	}
}

func TestVPPACL(t *testing.T) {
	r := newRig(t)
	blocked := packet.MustPrefix("10.1.0.0/24")
	r.v.AddACL(ACLRule{Src: &blocked, Deny: true})
	var m sim.Meter
	r.srcDev.Transmit(r.frameTo(packet.MustAddr("10.100.1.1"), 64), &m)
	if r.captured != 0 || r.v.Stats().ACLDenied != 1 {
		t.Fatalf("acl: captured=%d stats=%+v", r.captured, r.v.Stats())
	}
	// Permit rules shadow later denies.
	r2 := newRig(t)
	ok := packet.MustPrefix("10.1.0.1/32")
	r2.v.AddACL(ACLRule{Src: &ok, Deny: false})
	r2.v.AddACL(ACLRule{Src: &blocked, Deny: true})
	r2.srcDev.Transmit(r2.frameTo(packet.MustAddr("10.100.1.1"), 64), &m)
	if r2.captured != 1 {
		t.Fatal("permit rule ignored")
	}
}

func TestVPPVectorAmortization(t *testing.T) {
	// The batching model: per-packet cost ≈ nodes × (perPkt + fixed/256),
	// far below the same fixed costs unamortized.
	r := newRig(t)
	per := r.v.PerPacketCycles()
	unamortized := sim.Cycles(GraphNodes) * (sim.CostVPPNodePerPkt + sim.CostVPPNodeFixed)
	if per >= unamortized/4 {
		t.Fatalf("amortization missing: %v vs %v", per, unamortized)
	}
	// Paper shape: VPP beats the XDP fast path clearly (Fig. 5).
	linuxfpFwd := sim.CostXDPPrologue + sim.CostParseEth + sim.CostParseIPv4 +
		sim.CostHelperFIB + sim.CostRewriteL2L3 + sim.CostXDPRedirect
	if float64(per) > 0.6*float64(linuxfpFwd) {
		t.Fatalf("vpp (%v cycles) should be well below LinuxFP (%v)", per, linuxfpFwd)
	}
	// ACL adds one graph node.
	r.v.AddACL(ACLRule{Deny: false})
	if r.v.PerPacketCycles() <= per {
		t.Fatal("acl node free")
	}
}

func TestVPPErrors(t *testing.T) {
	k := kernel.New("t")
	v := New(k, 2)
	if err := v.TakeInterface("ghost"); err == nil {
		t.Fatal("took missing interface")
	}
	if err := v.AddRoute(packet.MustPrefix("10.0.0.0/8"), 0, "ghost"); err == nil {
		t.Fatal("route via missing interface")
	}
	if v.Workers != 2 {
		t.Fatal("workers")
	}
}
