package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"linuxfp/internal/netlink"
)

// FPM keys in the processing graph (paper Fig. 3).
const (
	FPMBridge = "bridge"
	FPMRouter = "router"
	FPMFilter = "filter"
	FPMLB     = "lb" // ipvs load balancer (Table I's last row)
)

// Node is one FPM in an interface's processing graph: the key names the
// module, Conf carries its specialization attributes, and NextNF points at
// the module that follows it (paper §IV-C2).
type Node struct {
	FPM    string            `json:"fpm"`
	Conf   map[string]string `json:"conf,omitempty"`
	NextNF string            `json:"next_nf,omitempty"`
}

// IfaceGraph is the data path for one interface.
type IfaceGraph struct {
	IfIndex int     `json:"ifindex"`
	Name    string  `json:"name"`
	Hook    string  `json:"hook"` // "xdp" or "tc"
	Nodes   []*Node `json:"nodes"`
}

// ModuleKeys returns the FPM keys on this interface in order.
func (g *IfaceGraph) ModuleKeys() []string {
	out := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = n.FPM
	}
	return out
}

// Graph is the complete processing-graph model, serializable to JSON for
// the synthesizer (and for humans: `linuxfpd -graph` prints it).
type Graph struct {
	Interfaces map[string]*IfaceGraph `json:"interfaces"`
}

// JSON renders the model.
func (g *Graph) JSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// ModuleSet returns the set of "iface/fpm" instance keys, used to compute
// which modules a reconcile added (reaction-time accounting) and whether
// anything changed at all.
func (g *Graph) ModuleSet() map[string]bool {
	out := make(map[string]bool)
	for name, ig := range g.Interfaces {
		for _, n := range ig.Nodes {
			out[name+"/"+n.FPM] = true
		}
	}
	return out
}

// Fingerprint returns a stable string identifying graph content, for
// change detection.
func (g *Graph) Fingerprint() string {
	names := make([]string, 0, len(g.Interfaces))
	for n := range g.Interfaces {
		names = append(names, n)
	}
	sort.Strings(names)
	fp := ""
	for _, n := range names {
		ig := g.Interfaces[n]
		fp += n + "@" + ig.Hook + "{"
		for _, node := range ig.Nodes {
			fp += node.FPM + "("
			keys := make([]string, 0, len(node.Conf))
			for k := range node.Conf {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fp += k + "=" + node.Conf[k] + ","
			}
			fp += ")->" + node.NextNF + ";"
		}
		fp += "}"
	}
	return fp
}

// TopologyManager derives the processing graph from introspected objects:
// which subsystems are active, on which interfaces, with which
// specializations, in kernel processing order.
type TopologyManager struct {
	store *ObjectStore
	caps  *CapabilityManager
}

// NewTopologyManager wires the manager to its inputs.
func NewTopologyManager(store *ObjectStore, caps *CapabilityManager) *TopologyManager {
	return &TopologyManager{store: store, caps: caps}
}

// Build derives the graph for the current configuration.
func (tm *TopologyManager) Build() *Graph {
	g := &Graph{Interfaces: make(map[string]*IfaceGraph)}

	forwarding := tm.store.Sysctl("net.ipv4.ip_forward") == "1"
	routes := tm.store.Routes()
	// Only gateway/static routes count as "routing configured": connected
	// subnets alone do not make the box a router.
	routedOut := make(map[int]bool)
	hasRoutes := false
	for _, r := range routes {
		hasRoutes = true
		routedOut[r.OutIf] = true
	}
	routingActive := forwarding && hasRoutes

	filterInfo, filterActive := tm.store.Chain("FORWARD")
	filterOn := filterActive && filterInfo.Rules > 0
	// Container hosts bridge-filter: bridged frames traverse FORWARD too.
	brNetfilter := filterOn && tm.store.Sysctl("net.bridge.bridge-nf-call-iptables") == "1"

	for _, link := range tm.store.Links() {
		if !link.Up || link.Kind == "loopback" {
			continue
		}
		switch {
		case link.Kind == "bridge" && link.BridgeA != nil:
			// The bridge device itself: accelerates br_dev_xmit for
			// locally originated frames, and anchors the bridge FPM
			// template in the generated data path.
			node := &Node{FPM: FPMBridge, Conf: map[string]string{
				"bridge":         link.Name,
				"stp_enabled":    strconv.FormatBool(link.BridgeA.STPEnabled),
				"vlan_filtering": strconv.FormatBool(link.BridgeA.VLANFiltering),
			}}
			ig := &IfaceGraph{IfIndex: link.Index, Name: link.Name, Hook: "tc", Nodes: []*Node{node}}
			if routingActive && len(tm.store.Addrs(link.Index)) > 0 {
				tm.appendRouter(ig, routedOut, filterOn, filterInfo)
				node.NextNF = ig.Nodes[1].FPM
			}
			g.Interfaces[link.Name] = ig

		case link.Master != 0:
			// A bridged port: bridge FPM first (kernel order: rx_handler
			// before L3).
			br, ok := tm.store.Link(link.Master)
			if !ok || br.BridgeA == nil {
				continue
			}
			node := &Node{FPM: FPMBridge, Conf: map[string]string{
				"bridge":         br.Name,
				"stp_enabled":    strconv.FormatBool(br.BridgeA.STPEnabled),
				"vlan_filtering": strconv.FormatBool(br.BridgeA.VLANFiltering),
				"filter":         strconv.FormatBool(brNetfilter),
			}}
			ig := &IfaceGraph{IfIndex: link.Index, Name: link.Name, Hook: tm.caps.HookFor(link), Nodes: []*Node{node}}
			// Bridge with IPs + routing: routed traffic addressed to the
			// bridge continues into the router FPM (next_nf: router, or lb
			// when ipvs services are configured).
			if routingActive && len(tm.store.Addrs(link.Master)) > 0 {
				tm.appendRouter(ig, routedOut, filterOn, filterInfo)
				node.NextNF = ig.Nodes[1].FPM
			}
			g.Interfaces[link.Name] = ig

		case routingActive && len(tm.store.Addrs(link.Index)) > 0:
			// Plain L3 interface on a router.
			ig := &IfaceGraph{IfIndex: link.Index, Name: link.Name, Hook: tm.caps.HookFor(link)}
			tm.appendRouter(ig, routedOut, filterOn, filterInfo)
			g.Interfaces[link.Name] = ig
		}
	}
	return g
}

// appendRouter adds the router node (and chained lb/filter nodes).
func (tm *TopologyManager) appendRouter(ig *IfaceGraph, routedOut map[int]bool, filterOn bool, filterInfo netlink.RuleMsg) {
	// ipvs runs ahead of routing (PREROUTING placement).
	if n := tm.store.IPVSServiceCount(); n > 0 {
		ig.Nodes = append(ig.Nodes, &Node{FPM: FPMLB, Conf: map[string]string{
			"services": strconv.Itoa(n),
		}, NextNF: FPMRouter})
	}
	router := &Node{FPM: FPMRouter, Conf: map[string]string{}}
	// Routes pointing at bridge devices chain the router back into a
	// bridge FPM (next_nf: bridge, paper §IV-C2).
	for out := range routedOut {
		if l, ok := tm.store.Link(out); ok && l.Kind == "bridge" {
			router.Conf["bridge_out"] = l.Name
			router.NextNF = FPMBridge
		}
	}
	ig.Nodes = append(ig.Nodes, router)
	if filterOn {
		router.NextNF = FPMFilter
		filter := &Node{FPM: FPMFilter, Conf: map[string]string{
			"chain": "FORWARD",
			"rules": strconv.Itoa(filterInfo.Rules),
			"ipset": strconv.FormatBool(filterInfo.UsesSet),
		}}
		ig.Nodes = append(ig.Nodes, filter)
	}
}

// String renders a short human-readable summary.
func (g *Graph) String() string {
	names := make([]string, 0, len(g.Interfaces))
	for n := range g.Interfaces {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		ig := g.Interfaces[n]
		out += fmt.Sprintf("%s[%s]:", n, ig.Hook)
		for i, node := range ig.Nodes {
			if i > 0 {
				out += "->"
			}
			out += node.FPM
		}
		out += " "
	}
	return out
}
