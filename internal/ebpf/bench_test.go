package ebpf

import (
	"testing"

	"linuxfp/internal/sim"
)

func BenchmarkProgramRun8Ops(b *testing.B) {
	p := &Program{Name: "bench", Hook: HookXDP, Default: VerdictPass}
	for i := 0; i < 8; i++ {
		p.Ops = append(p.Ops, NewOp("nop", 4, 0, 8, func(*Ctx) Verdict { return VerdictNext }))
	}
	ctx := &Ctx{Meter: &sim.Meter{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.run(ctx)
	}
}

func BenchmarkTailCallChain(b *testing.B) {
	pa := NewProgArray("chain", 4)
	final := &Program{Name: "final", Hook: HookXDP, Ops: []Op{
		NewOp("end", 4, 0, 8, func(*Ctx) Verdict { return VerdictPass }),
	}}
	pa.Update(3, final)
	for i := 2; i >= 0; i-- {
		slot := i + 1
		pa.Update(i, &Program{Name: "link", Hook: HookXDP, Ops: []Op{
			NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict { return c.TailCall(pa, slot) }),
		}})
	}
	entry := pa.Lookup(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &Ctx{Meter: &sim.Meter{}}
		entry.run(ctx)
	}
}

func BenchmarkDispatcherSwap(b *testing.B) {
	pa := NewProgArray("d", 1)
	p1 := &Program{Name: "a", Hook: HookXDP}
	p2 := &Program{Name: "b", Hook: HookXDP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			pa.Update(0, p1)
		} else {
			pa.Update(0, p2)
		}
	}
}

// benchFusedVsInterpreted builds one 8-op program and runs it through
// Program.exec with the jit flag set both ways — the per-Op dispatch and
// metering overhead the fusion stage removes, isolated from packet work.
func benchExec(b *testing.B, jit bool) {
	p := &Program{Name: "bench", Hook: HookXDP, Default: VerdictPass}
	for i := 0; i < 8; i++ {
		p.Ops = append(p.Ops, NewOp("nop", 4, 0, 8, func(*Ctx) Verdict { return VerdictNext }))
	}
	p.jit = fuse(p)
	ctx := &Ctx{Meter: &sim.Meter{}, jit: jit}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.exec(ctx)
	}
}

func BenchmarkProgramInterpreted8Ops(b *testing.B) { benchExec(b, false) }

func BenchmarkProgramJIT8Ops(b *testing.B) { benchExec(b, true) }
