package testbed

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"linuxfp/internal/core"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
)

// SpecializePoint is one configuration measured both ways: the generic fused
// data path (net.core.bpf_jit_specialize=0) against the Load-time
// specialized one. Insns are the data-path program's body sizes in both
// forms.
type SpecializePoint struct {
	Config      string  `json:"config"`
	GenericCy   float64 `json:"generic_modelcycles_per_pkt"`
	SpecCy      float64 `json:"specialized_modelcycles_per_pkt"`
	WinPct      float64 `json:"win_pct"`
	GenericInsn int     `json:"generic_insns"`
	SpecInsn    int     `json:"specialized_insns"`
}

// SpecializeChurn summarizes the re-specialization storm: a live gateway
// whose config (iptables rules + routes) changes continuously while the
// controller re-synthesizes, re-loads (verify + specialize + fuse), and
// swaps on every change.
type SpecializeChurn struct {
	Events      int     `json:"events"`
	LoadP50us   float64 `json:"load_p50_us"`
	LoadP99us   float64 `json:"load_p99_us"`
	LoadMaxus   float64 `json:"load_max_us"`
	SwapP50us   float64 `json:"swap_p50_us"`
	SwapP99us   float64 `json:"swap_p99_us"`
	SwapMaxus   float64 `json:"swap_max_us"`
	WallP99us   float64 `json:"reconcile_wall_p99_us"`
	LoadedCount int     `json:"loaded_count"`
	Injected    uint64  `json:"injected_during_churn"`
	Redirected  uint64  `json:"redirected_during_churn"`
	Dropped     uint64  `json:"dropped_during_churn"`
}

// SpecializeReport is the machine-readable result of SpecializeSweep — what
// `lfpbench -exp specialize` serializes into BENCH_specialize.json.
type SpecializeReport struct {
	ClockHz float64           `json:"clock_hz"`
	Points  []SpecializePoint `json:"points"`
	Churn   SpecializeChurn   `json:"churn"`
}

func setSpec(k *kernel.Kernel, on bool) {
	v := "0"
	if on {
		v = "1"
	}
	k.SetSysctl("net.core.bpf_jit_specialize", v)
}

// dataPathInsns picks the largest loaded program (the synthesized data path,
// not the 4-insn dispatcher) and reports its body size in both forms.
func dataPathInsns(l *ebpf.Loader) (gen, spec int) {
	for _, p := range l.Programs() {
		if p.JITInsns() > gen {
			gen, spec = p.JITInsns(), p.SpecInsns()
		}
	}
	return gen, spec
}

// SpecializeSweep measures the specializer's A/B across the standard
// configurations (n frames per measurement) and then runs the config-churn
// storm (churnEvents netlink-visible mutations with live re-deploys).
func SpecializeSweep(n, churnEvents int) (*SpecializeReport, error) {
	r := &SpecializeReport{ClockHz: sim.ClockHz}

	// Scenario-based DUTs: plain router, gateway with the paper's 100-rule
	// blacklist, and an ACL whose rules all name TCP while the measured
	// traffic is UDP — the "ACL with no UDP rules drops the UDP arm" case.
	for _, cfg := range []struct {
		name  string
		sc    Scenario
		rules func(k *kernel.Kernel) error
	}{
		{"router", Scenario{}, nil},
		{"gateway-100", Scenario{Gateway: true, Rules: 100}, nil},
		{"acl-tcp100-udp-traffic", Scenario{}, func(k *kernel.Kernel) error {
			for i := 0; i < 100; i++ {
				p := blacklistPrefix(i)
				if err := k.IptAppend("FORWARD", netfilter.Rule{
					Match:  netfilter.Match{Src: &p, Proto: packet.ProtoTCP},
					Target: netfilter.VerdictDrop,
				}); err != nil {
					return err
				}
			}
			return nil
		}},
	} {
		d, err := Build(PlatformLinuxFP, cfg.sc)
		if err != nil {
			return nil, err
		}
		if cfg.rules != nil {
			if err := cfg.rules(d.Kern); err != nil {
				d.Close()
				return nil, err
			}
			d.Controller.Sync() // re-synthesize with the filter stage
		}
		setSpec(d.Kern, false)
		gen := float64(d.AvgCycles(n, traffic.MinFrameSize))
		setSpec(d.Kern, true)
		spec := float64(d.AvgCycles(n, traffic.MinFrameSize))
		pt := SpecializePoint{Config: cfg.name, GenericCy: gen, SpecCy: spec}
		if gen > 0 {
			pt.WinPct = 100 * (1 - spec/gen)
		}
		pt.GenericInsn, pt.SpecInsn = dataPathInsns(d.Controller.Deployer().Loader())
		r.Points = append(r.Points, pt)
		d.Close()
	}

	// Bridge rig (two learned stations through an accelerated bridge).
	bp, err := bridgeSpecPoint()
	if err != nil {
		return nil, err
	}
	r.Points = append(r.Points, bp)

	churn, err := specializeChurn(churnEvents)
	if err != nil {
		return nil, err
	}
	r.Churn = *churn
	return r, nil
}

// bridgeSpecPoint measures L2 forwarding generic vs specialized on one rig.
func bridgeSpecPoint() (SpecializePoint, error) {
	sw := kernel.New("sw")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	var ports, hosts []*netdev.Device
	for i := 0; i < 2; i++ {
		hk := kernel.New("host")
		hd := hk.CreateDevice("eth0", netdev.Physical)
		hd.SetUp(true)
		hk.AddAddr("eth0", packet.Prefix{Addr: packet.AddrFrom4(10, 9, 0, byte(i+1)), Bits: 24})
		port := sw.CreateDevice(fmt.Sprintf("swp%d", i), netdev.Physical)
		port.SetUp(true)
		netdev.Connect(hd, port)
		if err := sw.AddBridgePort("br0", port.Name); err != nil {
			return SpecializePoint{}, err
		}
		ports = append(ports, port)
		hosts = append(hosts, hd)
	}
	ctrl := core.New(sw, core.Options{})
	ctrl.Start()
	defer ctrl.Stop()
	ctrl.Sync()
	br, _ := sw.BridgeByName("br0")
	br.Learn(hosts[0].MAC, 0, ports[0].Index, 0)
	br.Learn(hosts[1].MAC, 0, ports[1].Index, 0)

	frame := packet.BuildEthernet(packet.Ethernet{
		Dst: hosts[1].MAC, Src: hosts[0].MAC, EtherType: packet.EtherTypeIPv4,
	}, make([]byte, 46))
	netdev.Disconnect(ports[1])
	measure := func() float64 {
		var total sim.Cycles
		const n = 200
		for i := 0; i < n; i++ {
			var m sim.Meter
			ports[0].Receive(append([]byte(nil), frame...), &m)
			total += m.Total
		}
		return float64(total) / n
	}
	setSpec(sw, false)
	gen := measure()
	setSpec(sw, true)
	spec := measure()
	pt := SpecializePoint{Config: "bridge", GenericCy: gen, SpecCy: spec}
	if gen > 0 {
		pt.WinPct = 100 * (1 - spec/gen)
	}
	pt.GenericInsn, pt.SpecInsn = dataPathInsns(ctrl.Deployer().Loader())
	return pt, nil
}

// specializeChurn mutates a live gateway's config `events` times — rule
// append/delete alternating with route add/delete, each followed by a forced
// reconcile (synthesize -> verify -> specialize -> fuse -> swap) — while
// traffic keeps flowing. It reports swap-pipeline latency percentiles, the
// loaded-program count (which must not grow with churn), and the traffic
// outcome during the storm (the blacklist never matches, so every dropped
// packet would be a swap tear).
func specializeChurn(events int) (*SpecializeChurn, error) {
	d, err := Build(PlatformLinuxFP, Scenario{Gateway: true, Rules: 100})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)

	churnPrefix := packet.MustPrefix("203.200.0.0/24")
	churnRoute := packet.MustPrefix("10.200.0.0/16")
	start := d.Controller.FastPathStats()
	g := *d.gen
	var injected uint64

	var loads, swaps, walls []time.Duration
	for i := 0; i < events; i++ {
		switch i % 4 {
		case 0:
			if err := d.Kern.IptAppend("FORWARD", netfilter.Rule{
				Match: netfilter.Match{Src: &churnPrefix}, Target: netfilter.VerdictDrop,
			}); err != nil {
				return nil, err
			}
		case 1:
			if err := d.Kern.IptDelete("FORWARD", 101); err != nil {
				return nil, err
			}
		case 2:
			d.Kern.AddRoute(fib.Route{Prefix: churnRoute, Gateway: packet.MustAddr("10.2.0.1"), OutIf: d.Out.Index})
		case 3:
			d.Kern.DelRoute(churnRoute)
		}
		d.Controller.Sync()
		if r, ok := d.Controller.LastReaction(); ok && r.Deployed {
			loads = append(loads, r.LoadWall)
			swaps = append(swaps, r.SwapWall)
			walls = append(walls, r.Wall)
		}
		// Traffic between every mutation: all of it must redirect through
		// the fast path; a drop here would mean a packet saw a torn or
		// empty data path (the blacklist never matches generated traffic).
		var m sim.Meter
		for j := 0; j < 8; j++ {
			d.In.Receive(g.Frame(i*8+j), &m)
			injected++
		}
	}
	end := d.Controller.FastPathStats()

	c := &SpecializeChurn{
		Events:      events,
		LoadedCount: d.Controller.Deployer().Loader().LoadedCount(),
		Injected:    injected,
		Redirected:  end.Redirects - start.Redirects,
		Dropped:     end.Drops - start.Drops,
	}
	c.LoadP50us, c.LoadP99us, c.LoadMaxus = durQuantiles(loads)
	c.SwapP50us, c.SwapP99us, c.SwapMaxus = durQuantiles(swaps)
	_, c.WallP99us, _ = durQuantiles(walls)
	return c, nil
}

// durQuantiles returns p50/p99/max in microseconds.
func durQuantiles(ds []time.Duration) (p50, p99, max float64) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(time.Microsecond)
	}
	return at(0.5), at(0.99), at(1.0)
}

// RenderSpecialize prints the sweep in the house table style.
func RenderSpecialize(r *SpecializeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "JIT specialization: generic fused vs Load-time specialized (64B, single core)\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %8s %10s %10s\n",
		"config", "generic cy", "spec cy", "win", "gen insns", "spec insns")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-24s %12.1f %12.1f %7.1f%% %10d %10d\n",
			p.Config, p.GenericCy, p.SpecCy, p.WinPct, p.GenericInsn, p.SpecInsn)
	}
	c := r.Churn
	fmt.Fprintf(&b, "\nRe-specialization under config churn (%d netlink events)\n", c.Events)
	fmt.Fprintf(&b, "load  (verify+specialize+fuse): p50=%.1fus p99=%.1fus max=%.1fus\n",
		c.LoadP50us, c.LoadP99us, c.LoadMaxus)
	fmt.Fprintf(&b, "swap  (dispatcher update):      p50=%.1fus p99=%.1fus max=%.1fus\n",
		c.SwapP50us, c.SwapP99us, c.SwapMaxus)
	fmt.Fprintf(&b, "reconcile wall p99=%.1fus  loaded programs=%d  injected=%d redirected=%d dropped=%d\n",
		c.WallP99us, c.LoadedCount, c.Injected, c.Redirected, c.Dropped)
	return b.String()
}
