// Load-time specialization (K2-style). The fused body (jit.go) removed
// dispatch and per-op metering but still executes every op's *general* form:
// closures re-check configuration predicates that are constants for the
// lifetime of a loaded program. This pass runs inside Loader.Load, after
// verification and before fusion, and constant-folds the live configuration
// into the chain:
//
//   - ops whose work is statically dead under the current config are elided
//     (a bridge with VLAN filtering off skips vlan_filter entirely);
//   - ops with a cheaper configuration-specific form are replaced (an ACL
//     evaluated over a compiled rule snapshot instead of the generic helper,
//     a single-target redirect emitted directly);
//   - adjacent header reads are collapsed (ParseIPv4+ParseL4 merge into one
//     op with a single frame fetch when both survive).
//
// The result is fused like any program, so the prefix-summed cost table and
// Insns count are re-derived from the *specialized* chain — model cycles
// reflect the savings. Folds that depend on state which can change under a
// live program carry a generation guard and punt to the slow path when
// stale; the controller re-synthesizes (and therefore re-specializes) on the
// next netlink event. Frames and all Stats counters stay identical to the
// interpreted path; only the charged cycles legitimately shrink.
package ebpf

import "linuxfp/internal/kernel"

// SpecClass identifies what an op computes, keyed for adjacent-read
// collapsing (an op declares which class it can merge with).
type SpecClass int

// Specialization classes.
const (
	SpecClassNone SpecClass = iota
	SpecClassParseIPv4
	SpecClassParseL4
)

// SpecEnv is the configuration environment a specializer hook folds against:
// the live kernel state the program will run in.
type SpecEnv struct {
	K    *kernel.Kernel
	Hook Hook
}

// SpecResult is a specializer hook's decision for one op.
type SpecResult struct {
	// Elide drops the op from the specialized chain entirely.
	Elide bool
	// Replace substitutes a cheaper op (nil with Elide false keeps the
	// original).
	Replace Op
}

// specialize builds the specialized+fused form of a verified program. The
// original Ops slice is never mutated, so re-loading the same *Program* is
// idempotent — the pass always starts from the generic chain.
func specialize(p *Program, env *SpecEnv) *jitProg {
	ops := make([]Op, 0, len(p.Ops))
	for _, op := range p.Ops {
		f, ok := op.(*FuncOp)
		if !ok || f.spec == nil {
			ops = append(ops, op)
			continue
		}
		r := f.spec(env)
		switch {
		case r.Elide:
			// dropped
		case r.Replace != nil:
			ops = append(ops, r.Replace)
		default:
			ops = append(ops, op)
		}
	}
	// Collapse adjacent header reads among the survivors: an op that
	// declares a collapse against its predecessor's class merges into one.
	out := ops[:0]
	for _, op := range ops {
		f, ok := op.(*FuncOp)
		if ok && f.collapse != nil && len(out) > 0 {
			if prev, ok := out[len(out)-1].(*FuncOp); ok &&
				prev.class != SpecClassNone && prev.class == f.collapsePrev {
				out[len(out)-1] = f.collapse(prev)
				continue
			}
		}
		out = append(out, op)
	}
	return fuse(&Program{Name: p.Name, Hook: p.Hook, Ops: out, Default: p.Default})
}
