package netdev

import (
	"testing"

	"linuxfp/internal/packet"
)

// msVectors are the known-answer test vectors from the Microsoft RSS
// specification ("Verifying the RSS Hash Calculation"), computed with
// ToeplitzKeyStandard.
var msVectors = []struct {
	src, dst         string
	srcPort, dstPort uint16
	hash2            uint32 // IPv4 2-tuple only
	hash4            uint32 // IPv4 with TCP ports
}{
	{"66.9.149.187", "161.142.100.80", 2794, 1766, 0x323e8fc2, 0x51ccc178},
	{"199.92.111.2", "65.69.140.83", 14230, 4739, 0xd718262a, 0xc626b0ea},
	{"24.19.198.95", "12.22.207.184", 12898, 38024, 0xd2d0a5de, 0x5c2b394a},
	{"38.27.205.30", "209.142.163.6", 48228, 2217, 0x82989176, 0xafc7327f},
	{"153.39.163.191", "202.188.127.2", 44251, 1303, 0x5d1809c5, 0x10e828a2},
}

func TestToeplitzKnownAnswers(t *testing.T) {
	for _, v := range msVectors {
		tcp := packet.FlowTuple{
			Src: packet.MustAddr(v.src), Dst: packet.MustAddr(v.dst),
			SrcPort: v.srcPort, DstPort: v.dstPort, Proto: packet.ProtoTCP,
		}
		if h := HashFlow(&ToeplitzKeyStandard, tcp); h != v.hash4 {
			t.Errorf("TCP 4-tuple %s:%d->%s:%d: hash %#08x, want %#08x",
				v.src, v.srcPort, v.dst, v.dstPort, h, v.hash4)
		}

		// Non-TCP/UDP traffic hashes addresses only.
		icmp := tcp
		icmp.Proto = packet.ProtoICMP
		icmp.SrcPort, icmp.DstPort = 0, 0
		if h := HashFlow(&ToeplitzKeyStandard, icmp); h != v.hash2 {
			t.Errorf("IPv4 2-tuple %s->%s: hash %#08x, want %#08x",
				v.src, v.dst, h, v.hash2)
		}

		// Fragments fall back to the 2-tuple even for TCP, so all
		// fragments of a datagram land on one queue.
		frag := tcp
		frag.Frag = true
		if h := HashFlow(&ToeplitzKeyStandard, frag); h != v.hash2 {
			t.Errorf("fragment %s->%s: hash %#08x, want 2-tuple %#08x",
				v.src, v.dst, h, v.hash2)
		}
	}
}

func TestSymmetricKeyReversedFlows(t *testing.T) {
	seen := make(map[uint32]bool)
	for _, v := range msVectors {
		fwd := packet.FlowTuple{
			Src: packet.MustAddr(v.src), Dst: packet.MustAddr(v.dst),
			SrcPort: v.srcPort, DstPort: v.dstPort, Proto: packet.ProtoTCP,
		}
		rev := packet.FlowTuple{
			Src: fwd.Dst, Dst: fwd.Src,
			SrcPort: fwd.DstPort, DstPort: fwd.SrcPort, Proto: packet.ProtoTCP,
		}
		hf := HashFlow(&ToeplitzKeySymmetric, fwd)
		hr := HashFlow(&ToeplitzKeySymmetric, rev)
		if hf != hr {
			t.Errorf("symmetric key: %s:%d<->%s:%d forward %#08x != reverse %#08x",
				v.src, v.srcPort, v.dst, v.dstPort, hf, hr)
		}
		seen[hf] = true
	}
	// The symmetric key must still separate distinct flows.
	if len(seen) < len(msVectors) {
		t.Errorf("symmetric key collapsed %d flows into %d hashes", len(msVectors), len(seen))
	}
}

// testFrame builds a UDP frame for a given 4-tuple.
func testFrame(src, dst packet.Addr, sport, dport uint16) []byte {
	u := packet.UDP{SrcPort: sport, DstPort: dport}
	return packet.BuildIPv4(
		packet.Ethernet{Dst: packet.HWAddr{2, 0, 0, 0, 0, 2}, Src: packet.HWAddr{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		u.Marshal(nil, src, dst, make([]byte, 18)),
	)
}

func TestQueueDistribution(t *testing.T) {
	d := New("eth0", 1, Physical, packet.HWAddr{2, 0, 0, 0, 0, 2}, nil)
	const queues = 4
	d.SetRxQueues(queues)
	if got := d.RxQueues(); got != queues {
		t.Fatalf("RxQueues() = %d, want %d", got, queues)
	}

	const flows = 1024
	counts := make([]int, queues)
	for i := 0; i < flows; i++ {
		f := testFrame(
			packet.AddrFrom4(10, 0, byte(i>>8), byte(i)),
			packet.AddrFrom4(192, 168, byte(i%7), byte(i%250+1)),
			uint16(40000+i), 7,
		)
		q := d.QueueFor(f)
		if q < 0 || q >= queues {
			t.Fatalf("QueueFor returned out-of-range queue %d", q)
		}
		counts[q]++
	}

	// A decent hash spreads load roughly evenly; allow generous slack
	// (perfect would be 256 per queue).
	for q, c := range counts {
		if c < flows/queues/2 || c > flows/queues*2 {
			t.Errorf("queue %d got %d of %d flows (counts %v) — poor spread", q, c, flows, counts)
		}
	}

	// QueueFor is deterministic: the same flow always lands on the same queue.
	f := testFrame(packet.MustAddr("10.0.0.1"), packet.MustAddr("192.168.0.1"), 40001, 7)
	q0 := d.QueueFor(f)
	for i := 0; i < 10; i++ {
		if q := d.QueueFor(f); q != q0 {
			t.Fatalf("QueueFor not deterministic: %d then %d", q0, q)
		}
	}
}

func TestSetIndirection(t *testing.T) {
	d := New("eth0", 1, Physical, packet.HWAddr{2, 0, 0, 0, 0, 2}, nil)

	// Single-queue devices have no indirection table to program.
	if err := d.SetIndirection([]int{0}); err == nil {
		t.Error("SetIndirection on single-queue device should fail")
	}

	d.SetRxQueues(4)
	if err := d.SetIndirection(nil); err == nil {
		t.Error("empty indirection table should be rejected")
	}
	if err := d.SetIndirection([]int{0, 4}); err == nil {
		t.Error("queue index out of range should be rejected")
	}

	// Steering everything to queue 2 (ethtool -X weight 0 0 1 0).
	if err := d.SetIndirection([]int{2}); err != nil {
		t.Fatalf("SetIndirection: %v", err)
	}
	for i := 0; i < 64; i++ {
		f := testFrame(
			packet.AddrFrom4(10, 1, 0, byte(i+1)),
			packet.AddrFrom4(10, 2, 0, byte(i+1)),
			uint16(50000+i), 7,
		)
		if q := d.QueueFor(f); q != 2 {
			t.Fatalf("flow %d steered to queue %d, want 2", i, q)
		}
	}
}

func TestQueueForEdgeCases(t *testing.T) {
	d := New("eth0", 1, Physical, packet.HWAddr{2, 0, 0, 0, 0, 2}, nil)

	f := testFrame(packet.MustAddr("10.0.0.1"), packet.MustAddr("192.168.0.1"), 40001, 7)
	if q := d.QueueFor(f); q != 0 {
		t.Errorf("single-queue device steered to %d, want 0", q)
	}

	d.SetRxQueues(8)

	// Non-IP frames (ARP, BPDUs) land on the default queue like real NICs.
	arp := packet.BuildARP(
		packet.HWAddr{2, 0, 0, 0, 0, 1},
		packet.HWAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		packet.ARP{Op: 1, SenderHW: packet.HWAddr{2, 0, 0, 0, 0, 1},
			SenderIP: packet.MustAddr("10.0.0.1"), TargetIP: packet.MustAddr("10.0.0.2")})
	if q := d.QueueFor(arp); q != 0 {
		t.Errorf("ARP frame steered to queue %d, want 0", q)
	}

	// Truncated garbage must not panic and goes to queue 0.
	if q := d.QueueFor([]byte{1, 2, 3}); q != 0 {
		t.Errorf("truncated frame steered to queue %d, want 0", q)
	}

	// SetRxQueues clamps: 0 -> 1 queue, huge -> MaxRxQueues.
	d.SetRxQueues(0)
	if got := d.RxQueues(); got != 1 {
		t.Errorf("SetRxQueues(0): RxQueues() = %d, want 1", got)
	}
	d.SetRxQueues(1 << 20)
	if got := d.RxQueues(); got != MaxRxQueues {
		t.Errorf("SetRxQueues(big): RxQueues() = %d, want %d", got, MaxRxQueues)
	}
}

func TestFragmentsShareQueue(t *testing.T) {
	d := New("eth0", 1, Physical, packet.HWAddr{2, 0, 0, 0, 0, 2}, nil)
	d.SetRxQueues(4)

	src, dst := packet.MustAddr("10.0.0.1"), packet.MustAddr("192.168.0.9")

	// Fragments carry no (meaningful) ports: frames of one datagram with
	// different payload bytes at the L4 offset must still share a queue.
	frag := func(off uint16, more uint16) []byte {
		ip := packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst,
			Flags: more, FragOff: off}
		return packet.BuildIPv4(
			packet.Ethernet{Dst: packet.HWAddr{2, 0, 0, 0, 0, 2}, Src: packet.HWAddr{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
			ip, make([]byte, 32))
	}
	first := frag(0, packet.IPv4MoreFrags)
	second := frag(4, packet.IPv4MoreFrags)
	last := frag(8, 0)
	q := d.QueueFor(first)
	if d.QueueFor(second) != q || d.QueueFor(last) != q {
		t.Errorf("fragments split across queues: %d, %d, %d",
			q, d.QueueFor(second), d.QueueFor(last))
	}
}
