// Package flight is the packet flight recorder: a pwru-style per-packet path
// tracer for the modeled datapath. At RX a 1-in-2^k sampled packet is stamped
// with a trace ID (the stamp is a side-table entry keyed by the frame's
// backing-array address, the same trick pwru plays with the skb pointer), and
// every stage it crosses — XDP, GRO, cpumap/RPS handoff, TC, netfilter, FIB,
// neighbour, sockmap, splice, GSO, xmit — appends a span (stage, CPU,
// verdict, meter position). Chains survive cross-CPU redirects because the
// frame pointer rides the cpumap/RPS rings verbatim; GRO merges fold the
// merged packet's trace IDs into the supersegment's chain; GSO children
// inherit the parent chain by key aliasing.
//
// The recorder extends the repo's conservation invariant to traces: every
// sampled chain terminates in exactly one terminal verdict (drop, tx,
// redirect, or pass) and the per-terminal tallies — weighted by the number of
// folded trace IDs — reconcile with the kernel's Stats ledger.
//
// Detached, every instrumentation site pays one atomic nil-pointer load (the
// static-key discipline shared with Tracer/StageLat/DropNotify). Attached,
// costs are charged on the observing meter and measured by testbed.ObsSweep.
package flight

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"linuxfp/internal/drop"
	"linuxfp/internal/sim"
)

// Stage identifies the datapath stage a span was recorded at. Richer than
// kernel.Stage because handoffs (cpumap, RPS), socket splicing, and the two
// terminal pseudo-stages (local consume, kfree_skb) need their own rows in a
// timeline.
type Stage uint8

// Flight-recorder stages. Values must stay within 4 bits: the ring event
// encoding packs stage|verdict<<4 into one byte.
const (
	StageRX        Stage = iota // frame entered a device's receive path
	StageXDP                    // XDP program verdict
	StageGRO                    // GRO hold opened / merged / flushed
	StageCpumap                 // cpumap cross-CPU handoff (park + resume)
	StageRPS                    // RPS backlog re-steer (park + resume)
	StageTC                     // TC classifier verdict
	StageNetfilter              // netfilter hook traversal verdict
	StageFIB                    // FIB lookup
	StageNeigh                  // neighbour resolution (park on miss)
	StageSockmap                // sockmap fast-path hit
	StageSplice                 // socket-to-socket splice
	StageGSO                    // GSO resegmentation on forward
	StageXmit                   // driver transmit (tx terminal)
	StageLocal                  // locally consumed (pass terminal)
	StageFree                   // kfree_skb (drop terminal)
	NumStages
)

var stageNames = [NumStages]string{
	StageRX: "rx", StageXDP: "xdp", StageGRO: "gro", StageCpumap: "cpumap",
	StageRPS: "rps", StageTC: "tc", StageNetfilter: "netfilter",
	StageFIB: "fib", StageNeigh: "neigh", StageSockmap: "sockmap",
	StageSplice: "splice", StageGSO: "gso", StageXmit: "xmit",
	StageLocal: "local", StageFree: "free",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage_invalid"
}

// Verdict is what happened to the packet at a span's stage. Drop, Tx,
// Redirect, and Pass are terminal; the rest are waypoints.
type Verdict uint8

// Span verdicts. Values must stay within 4 bits (see Stage).
const (
	VerdictNone     Verdict = iota // plain waypoint
	VerdictPass                    // terminal: consumed locally
	VerdictDrop                    // terminal: freed
	VerdictTx                      // terminal: left through a driver
	VerdictRedirect                // terminal: left the stack (AF_XDP)
	VerdictPark                    // chain handed off (ring/queue/hold)
	VerdictResume                  // chain resumed after a handoff
	VerdictMerge                   // another chain folded in (GRO)
	VerdictHold                    // chain moved into a GRO hold
	NumVerdicts
)

var verdictNames = [NumVerdicts]string{
	VerdictNone: "-", VerdictPass: "pass", VerdictDrop: "drop",
	VerdictTx: "tx", VerdictRedirect: "redirect", VerdictPark: "park",
	VerdictResume: "resume", VerdictMerge: "merge", VerdictHold: "hold",
}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "verdict_invalid"
}

// Terminal reports whether the verdict ends a chain.
func (v Verdict) Terminal() bool {
	switch v {
	case VerdictPass, VerdictDrop, VerdictTx, VerdictRedirect:
		return true
	}
	return false
}

// Span is one waypoint of a sampled packet's path.
type Span struct {
	Stage   Stage
	Verdict Verdict
	CPU     uint8
	Reason  drop.Reason // set on drop spans
	Cycles  sim.Cycles  // meter position when the span was stamped
}

// Chain is the span list of one sampled packet, plus every trace ID folded
// into it by GRO merges. A chain is owned by exactly one goroutine at a time;
// ownership moves through the same rings and queues the frame does, whose
// locks provide the happens-before edges.
type Chain struct {
	ID      uint64
	IfIndex int32 // device the packet was sampled on
	Spans   []Span

	ids    []uint64 // own ID first, then every folded ID
	keys   []uintptr
	parked bool
	resume Stage
	done   bool
	term   Verdict
}

// IDs returns the chain's own trace ID followed by every folded one.
func (c *Chain) IDs() []uint64 { return c.ids }

// Done reports whether the chain has terminated.
func (c *Chain) Done() bool { return c.done }

// Terminal returns the terminal verdict (VerdictNone while in flight).
func (c *Chain) Terminal() Verdict { return c.term }

// Ring is the event sink: ebpf.RingBuf satisfies it. An interface keeps the
// import graph acyclic (ebpf imports kernel imports flight).
type Ring interface {
	Output(data []byte) (ok, woke bool)
}

// EventType is the ring-record type byte flight emits. It must equal
// ebpf.EventSpan; a cross-package test pins the two.
const EventType byte = 4

// EventSize mirrors ebpf.EventSize.
const EventSize = 24

// PackStageVerdict packs a span's stage and verdict into the event's stage
// byte (stage in the low nibble, verdict in the high).
func PackStageVerdict(s Stage, v Verdict) uint8 { return uint8(s) | uint8(v)<<4 }

// UnpackStageVerdict is the inverse of PackStageVerdict.
func UnpackStageVerdict(b uint8) (Stage, Verdict) {
	return Stage(b & 0xf), Verdict(b >> 4)
}

// NumCPUSlots is the per-CPU fan-out of the recorder's current-chain slots
// and sampling counters. Matches kernel.NumRxShards / netdev.MaxRxQueues
// without importing either.
const NumCPUSlots = 64

const tableShards = 64

// Terminals is the trace ledger: Sampled counts SampleRX stamps; each
// terminal counter is weighted by the number of trace IDs the terminating
// chain carried, so after quiescing
//
//	Sampled == Drop + Tx + Redirect + Pass + Lost.
//
// Lost counts stamps whose side-table key was overwritten by a later stamp
// before the chain terminated — zero unless an instrumentation site is
// missing.
type Terminals struct {
	Sampled  uint64 `json:"sampled"`
	Drop     uint64 `json:"drop"`
	Tx       uint64 `json:"tx"`
	Redirect uint64 `json:"redirect"`
	Pass     uint64 `json:"pass"`
	Lost     uint64 `json:"lost"`
	Spans    uint64 `json:"spans"`
}

// Config configures a Recorder.
type Config struct {
	// SampleShift samples 1 in 2^SampleShift packets (0 = every packet).
	SampleShift uint8
	// Ring, when non-nil, receives one EventSize record per span of every
	// terminated chain.
	Ring Ring
	// Retain keeps terminated chains in memory (capped at RetainLimit) for
	// Completed() — tests and lfptrace use it; production uses the Ring.
	Retain bool
	// RetainLimit bounds the retained list (default 65536).
	RetainLimit int
}

type cpuSlot struct {
	cur atomic.Pointer[Chain]
	ctr atomic.Uint64
	seq atomic.Uint64
	_   [40]byte // pad to a cacheline
}

type tableShard struct {
	mu sync.Mutex
	m  map[uintptr]*Chain
}

// Recorder is the flight recorder. One instance is attached per kernel (and
// propagated to its devices); all methods are safe for concurrent use from
// the per-queue workers and cpumap/RPS kthreads.
type Recorder struct {
	mask        uint64
	ring        Ring
	retain      bool
	retainLimit int

	cpus  [NumCPUSlots]cpuSlot
	table [tableShards]tableShard

	sampled      atomic.Uint64
	termDrop     atomic.Uint64
	termTx       atomic.Uint64
	termRedirect atomic.Uint64
	termPass     atomic.Uint64
	lost         atomic.Uint64
	spans        atomic.Uint64

	compMu    sync.Mutex
	completed []*Chain
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	r := &Recorder{
		mask:        (1 << cfg.SampleShift) - 1,
		ring:        cfg.Ring,
		retain:      cfg.Retain,
		retainLimit: cfg.RetainLimit,
	}
	if r.retainLimit <= 0 {
		r.retainLimit = 1 << 16
	}
	for i := range r.table {
		r.table[i].m = make(map[uintptr]*Chain)
	}
	return r
}

func cpuIdx(m *sim.Meter) int {
	if m == nil || m.CPU < 0 {
		return 0
	}
	return m.CPU & (NumCPUSlots - 1)
}

func frameKey(frame []byte) uintptr {
	if len(frame) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&frame[0]))
}

func hashKey(k uintptr) int {
	// Frames are at least cacheline-ish apart; fold the middle bits.
	return int((uint64(k) >> 6) & (tableShards - 1))
}

func (r *Recorder) register(k uintptr, ch *Chain) {
	if k == 0 {
		return
	}
	sh := &r.table[hashKey(k)]
	sh.mu.Lock()
	if old, ok := sh.m[k]; ok && old != ch && !old.done {
		// A stamped frame's backing array was reused before its chain
		// terminated: an instrumentation gap. The stale chain is lost.
		r.lost.Add(uint64(len(old.ids)))
	}
	sh.m[k] = ch
	sh.mu.Unlock()
	ch.keys = append(ch.keys, k)
}

func (r *Recorder) lookup(frame []byte) *Chain {
	k := frameKey(frame)
	if k == 0 {
		return nil
	}
	sh := &r.table[hashKey(k)]
	sh.mu.Lock()
	ch := sh.m[k]
	sh.mu.Unlock()
	return ch
}

func (r *Recorder) unregisterAll(ch *Chain) {
	for _, k := range ch.keys {
		sh := &r.table[hashKey(k)]
		sh.mu.Lock()
		if sh.m[k] == ch {
			delete(sh.m, k)
		}
		sh.mu.Unlock()
	}
	ch.keys = ch.keys[:0]
}

func (r *Recorder) appendSpan(ch *Chain, st Stage, v Verdict, reason drop.Reason, m *sim.Meter) {
	var cy sim.Cycles
	if m != nil {
		cy = m.Total
	}
	ch.Spans = append(ch.Spans, Span{
		Stage: st, Verdict: v, CPU: uint8(cpuIdx(m)), Reason: reason, Cycles: cy,
	})
	r.spans.Add(1)
	m.Charge(sim.CostFlightSpan)
}

// SampleRX runs the sampling decision for one received frame and, for the
// 1-in-2^k winners, stamps it: allocates a chain with a fresh trace ID,
// registers the frame's address in the side table, and opens the span list
// with an rx span. Callers gate on the recorder pointer, so the disabled
// cost is their nil check; the enabled miss cost is one counter increment.
func (r *Recorder) SampleRX(frame []byte, ifindex int, m *sim.Meter) *Chain {
	cpu := cpuIdx(m)
	m.Charge(sim.CostFlightProbe)
	if (r.cpus[cpu].ctr.Add(1)-1)&r.mask != 0 {
		return nil
	}
	if len(frame) == 0 {
		return nil
	}
	seq := r.cpus[cpu].seq.Add(1)
	ch := &Chain{
		ID:      uint64(cpu)<<48 | seq,
		IfIndex: int32(ifindex),
	}
	ch.ids = append(ch.ids, ch.ID)
	r.sampled.Add(1)
	r.register(frameKey(frame), ch)
	r.appendSpan(ch, StageRX, VerdictNone, 0, m)
	return ch
}

// Enter looks the frame up in the side table at a stack entry point
// (deliverFrame, the batched GRO/TC runner, the RPS backlog drain) and, on a
// hit, makes the chain the CPU's current chain so span sites that only have
// the meter in hand (netfilter hooks, FIB, drop sites) can reach it. A chain
// parked by a handoff resumes here with a resume span stamped by the
// *current* (target) CPU.
func (r *Recorder) Enter(frame []byte, m *sim.Meter) *Chain {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return nil
	}
	m.Charge(sim.CostFlightLookup)
	if ch.parked {
		ch.parked = false
		r.appendSpan(ch, ch.resume, VerdictResume, 0, m)
	}
	r.cpus[cpuIdx(m)].cur.Store(ch)
	return ch
}

// Exit closes the Enter window: the CPU's current chain is cleared, and a
// chain that neither terminated nor parked mid-flight is terminated as a
// local pass — the packet was consumed by the stack (socket delivery, ARP,
// BPDU, ...). A chain no longer in the cur slot left this CPU mid-window
// (ParkFrame onto a handoff ring cleared the slot): its fields now belong to
// whichever CPU picks the frame up, so Exit must not even read them.
func (r *Recorder) Exit(ch *Chain, m *sim.Meter) {
	slot := &r.cpus[cpuIdx(m)].cur
	own := slot.Load() == ch
	slot.Store(nil)
	if !own || ch == nil || ch.done || ch.parked {
		return
	}
	r.terminal(ch, StageLocal, VerdictPass, 0, m)
}

// Cur returns the CPU's current chain (nil outside an Enter window or for
// unsampled packets).
func (r *Recorder) Cur(m *sim.Meter) *Chain {
	return r.cpus[cpuIdx(m)].cur.Load()
}

// SuspendCur clears and returns the CPU's current chain. Stack code about to
// transmit frames that are *not* the current packet's continuation — neigh
// queue flushes on an ARP reply, ICMP errors — suspends around the send so an
// unsampled frame's TerminalTx cannot fall back onto the wrong chain. Pair
// with RestoreCur.
func (r *Recorder) SuspendCur(m *sim.Meter) *Chain {
	slot := &r.cpus[cpuIdx(m)].cur
	ch := slot.Load()
	if ch != nil {
		slot.Store(nil)
	}
	return ch
}

// RestoreCur reinstates a chain suspended by SuspendCur.
func (r *Recorder) RestoreCur(ch *Chain, m *sim.Meter) {
	if ch != nil {
		r.cpus[cpuIdx(m)].cur.Store(ch)
	}
}

// SpanCur appends a waypoint span to the CPU's current chain, if any. For
// sites that have the meter but not the frame (netfilter verdicts, FIB).
func (r *Recorder) SpanCur(m *sim.Meter, st Stage, v Verdict) {
	ch := r.Cur(m)
	if ch == nil || ch.done {
		return
	}
	r.appendSpan(ch, st, v, 0, m)
}

// SpanFrame appends a waypoint span to the frame's chain, if sampled. For
// sites outside an Enter window that hold the frame (XDP verdicts).
func (r *Recorder) SpanFrame(frame []byte, st Stage, v Verdict, m *sim.Meter) {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.appendSpan(ch, st, v, 0, m)
}

// ParkFrame marks the frame's chain as handed off at stage st (cpumap ring,
// RPS backlog, neighbour queue): a park span is stamped by the parking CPU,
// and the matching resume span — stamped by whichever CPU picks the frame
// back up — is appended by the Enter that finds the parked chain. Callers
// must park BEFORE the frame becomes visible to the consuming CPU (inside
// the ring's producer critical section, or before queueing), so that lock
// orders the park against the consumer's Enter. The chain leaves the cur
// slot here: once the frame is handed off its chain belongs to the target
// CPU, and the parking window's Exit must not touch it again.
func (r *Recorder) ParkFrame(frame []byte, st Stage, m *sim.Meter) {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.appendSpan(ch, st, VerdictPark, 0, m)
	ch.parked = true
	ch.resume = st
	slot := &r.cpus[cpuIdx(m)].cur
	if slot.Load() == ch {
		slot.Store(nil)
	}
}

// Detach removes the frame's chain from the side table and hands it to the
// caller (the GRO layer, whose holds copy the frame into a private buffer —
// the original address dies). The chain is parked on StageGRO until
// Reattach + Enter resume it.
func (r *Recorder) Detach(frame []byte, m *sim.Meter) *Chain {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return nil
	}
	m.Charge(sim.CostFlightLookup)
	r.appendSpan(ch, StageGRO, VerdictHold, 0, m)
	ch.parked = true
	ch.resume = StageGRO
	r.unregisterAll(ch)
	return ch
}

// Fold merges the frame's chain (a packet GRO just coalesced away) into dst,
// the supersegment's chain: dst inherits the trace IDs and gains a merge
// span; the source chain is absorbed, not terminated. When dst is nil (the
// hold itself was unsampled) the source chain is detached and returned to
// become the hold's chain.
func (r *Recorder) Fold(dst *Chain, frame []byte, m *sim.Meter) *Chain {
	src := r.lookup(frame)
	if src == nil || src.done {
		return dst
	}
	m.Charge(sim.CostFlightLookup)
	if dst == nil || dst == src {
		src.parked = true
		src.resume = StageGRO
		r.appendSpan(src, StageGRO, VerdictHold, 0, m)
		r.unregisterAll(src)
		return src
	}
	r.unregisterAll(src)
	dst.ids = append(dst.ids, src.ids...)
	r.appendSpan(dst, StageGRO, VerdictMerge, 0, m)
	return dst
}

// Reattach registers a held chain under the flushed supersegment's frame
// address. The chain stays parked; the downstream Enter resumes it.
func (r *Recorder) Reattach(frame []byte, ch *Chain) {
	if ch == nil || ch.done {
		return
	}
	r.register(frameKey(frame), ch)
}

// Inherit aliases a child frame (GSO segment, IP fragment) to the parent's
// chain so whichever child reaches a terminal first closes the chain.
func (r *Recorder) Inherit(ch *Chain, child []byte) {
	if ch == nil || ch.done {
		return
	}
	r.register(frameKey(child), ch)
}

// InheritFrame is Inherit keyed by the parent frame instead of the chain.
func (r *Recorder) InheritFrame(parent, child []byte, m *sim.Meter) {
	ch := r.lookup(parent)
	if ch == nil || ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.register(frameKey(child), ch)
}

// --- terminals ---------------------------------------------------------------

func (r *Recorder) terminal(ch *Chain, st Stage, v Verdict, reason drop.Reason, m *sim.Meter) {
	if ch.done {
		return
	}
	ch.done = true
	ch.term = v
	ch.parked = false
	r.appendSpan(ch, st, v, reason, m)
	r.unregisterAll(ch)
	n := uint64(len(ch.ids))
	switch v {
	case VerdictDrop:
		r.termDrop.Add(n)
	case VerdictTx:
		r.termTx.Add(n)
	case VerdictRedirect:
		r.termRedirect.Add(n)
	case VerdictPass:
		r.termPass.Add(n)
	}
	if r.ring != nil {
		var buf [EventSize]byte
		for _, sp := range ch.Spans {
			buf[0] = EventType
			buf[1] = byte(sp.Reason)
			buf[2] = PackStageVerdict(sp.Stage, sp.Verdict)
			buf[3] = sp.CPU
			putU32(buf[4:8], uint32(ch.IfIndex))
			putU64(buf[8:16], uint64(sp.Cycles))
			putU64(buf[16:24], ch.ID)
			m.Charge(sim.CostRingbufReserve + sim.CostRingbufCommit)
			r.ring.Output(buf[:])
		}
	}
	if r.retain {
		r.compMu.Lock()
		if len(r.completed) < r.retainLimit {
			r.completed = append(r.completed, ch)
		}
		r.compMu.Unlock()
	}
}

// little-endian writers, matching ebpf.Event's wire format without the import.
func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b[:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

// TerminalDropCur terminates the CPU's current chain as dropped — called
// from the kernel's kfree_skb choke points, which have reason and meter but
// not the frame.
func (r *Recorder) TerminalDropCur(reason drop.Reason, m *sim.Meter) {
	ch := r.Cur(m)
	if ch == nil || ch.done {
		return
	}
	r.terminal(ch, StageFree, VerdictDrop, reason, m)
}

// TerminalDropFrame terminates the frame's chain as dropped — for
// device-level drop sites (XDP verdicts, cpumap/XSK overflow) that hold the
// frame but run outside an Enter window.
func (r *Recorder) TerminalDropFrame(frame []byte, reason drop.Reason, m *sim.Meter) {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.terminal(ch, StageFree, VerdictDrop, reason, m)
}

// TerminalTx terminates the frame's chain as transmitted. Called by the
// driver transmit path *before* the wire copy, so the side-table key is
// still live. Frames the stack synthesized mid-chain (ICMP errors, spliced
// or relayed segments, fragments) miss the table; the CPU's live current
// chain — the packet whose processing produced this transmit — is the
// fallback, which is how a spliced payload's chain follows the bytes out the
// egress socket.
func (r *Recorder) TerminalTx(frame []byte, m *sim.Meter) {
	ch := r.lookup(frame)
	if ch == nil {
		ch = r.Cur(m)
		if ch == nil || ch.parked {
			return
		}
	}
	if ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.terminal(ch, StageXmit, VerdictTx, 0, m)
}

// TerminalRedirectFrame terminates the frame's chain as redirected out of
// the stack (AF_XDP enqueue accepted the descriptor).
func (r *Recorder) TerminalRedirectFrame(frame []byte, m *sim.Meter) {
	ch := r.lookup(frame)
	if ch == nil || ch.done {
		return
	}
	m.Charge(sim.CostFlightLookup)
	r.terminal(ch, StageXDP, VerdictRedirect, 0, m)
}

// --- accounting --------------------------------------------------------------

// Terminals snapshots the trace ledger.
func (r *Recorder) Terminals() Terminals {
	return Terminals{
		Sampled:  r.sampled.Load(),
		Drop:     r.termDrop.Load(),
		Tx:       r.termTx.Load(),
		Redirect: r.termRedirect.Load(),
		Pass:     r.termPass.Load(),
		Lost:     r.lost.Load(),
		Spans:    r.spans.Load(),
	}
}

// Live counts distinct chains still registered in the side table (parked in
// a ring or awaiting a stage). After the datapath quiesces (GRO flushed,
// cpumap drained, ARP resolved) it must be zero.
func (r *Recorder) Live() int {
	seen := make(map[*Chain]struct{})
	for i := range r.table {
		sh := &r.table[i]
		sh.mu.Lock()
		for _, ch := range sh.m {
			seen[ch] = struct{}{}
		}
		sh.mu.Unlock()
	}
	return len(seen)
}

// Completed returns the retained terminated chains (Config.Retain mode).
func (r *Recorder) Completed() []*Chain {
	r.compMu.Lock()
	out := make([]*Chain, len(r.completed))
	copy(out, r.completed)
	r.compMu.Unlock()
	return out
}
