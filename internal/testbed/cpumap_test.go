package testbed

import (
	"strings"
	"testing"
)

// TestCpumapSweepSpeedupAndGROParity pins the two headline properties of the
// cpumap rebalancer: fanning one RX queue's slow path across 4 CPUs at least
// doubles aggregate throughput, and flows that were rebalanced coalesce in
// GRO exactly as well as they did on the RX core.
func TestCpumapSweepSpeedupAndGROParity(t *testing.T) {
	r, err := CpumapSweep([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 { // (baseline + 2 targets) x gro off/on
		t.Fatalf("got %d points, want 6", len(r.Points))
	}

	find := func(targets int, gro bool) CpumapPoint {
		for _, p := range r.Points {
			if p.TargetCPUs == targets && p.GRO == gro {
				return p
			}
		}
		t.Fatalf("no point for targets=%d gro=%v", targets, gro)
		return CpumapPoint{}
	}

	for _, gro := range []bool{false, true} {
		base := find(0, gro)
		if base.Speedup != 1 {
			t.Fatalf("baseline speedup = %v, want 1", base.Speedup)
		}
		four := find(4, gro)
		if four.Speedup < 2 {
			t.Fatalf("gro=%v: 4-CPU speedup = %.2fx, want >= 2x", gro, four.Speedup)
		}
		if find(2, gro).Speedup >= four.Speedup {
			t.Fatalf("gro=%v: 2-CPU speedup not below 4-CPU", gro)
		}
		if four.KthreadRuns == 0 {
			t.Fatalf("gro=%v: kthreads never ran", gro)
		}
		if four.CpumapDrops != 0 {
			t.Fatalf("gro=%v: cpumap dropped %d frames with qsize %d", gro, four.CpumapDrops, r.Qsize)
		}
		if base.KthreadRuns != 0 || base.CpumapDrops != 0 {
			t.Fatalf("gro=%v: baseline touched the cpumap: %+v", gro, base)
		}
	}

	// GRO parity: rebalancing must not cost coalescing opportunities. The
	// flow-major workload coalesces heavily on the RX core; the same ratio
	// must survive the fan-out (each flow lands whole on one kthread).
	baseOn := find(0, true)
	if baseOn.CoalesceRatio < 0.5 {
		t.Fatalf("baseline coalesce ratio = %.2f, want >= 0.5", baseOn.CoalesceRatio)
	}
	for _, n := range []int{2, 4} {
		p := find(n, true)
		if p.CoalesceRatio != baseOn.CoalesceRatio {
			t.Fatalf("%d-CPU coalesce ratio %.4f != same-CPU %.4f", n, p.CoalesceRatio, baseOn.CoalesceRatio)
		}
	}
	for _, p := range r.Points {
		if !p.GRO && p.CoalesceRatio != 0 {
			t.Fatalf("gro off but coalesce ratio = %v", p.CoalesceRatio)
		}
	}

	out := RenderCpumap(r)
	for _, want := range []string{"same-cpu", "speedup", "coalesce"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderCpumap missing %q:\n%s", want, out)
		}
	}
}
