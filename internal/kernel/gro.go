// Generic receive offload: the slow-path batching layer between XDP batch
// exit and IP input. Same-flow TCP data segments arriving back to back in a
// NAPI poll are coalesced into supersegments, so the IP/netfilter/FIB/neigh
// walk — and any TC program — runs once per supersegment instead of once per
// frame. On forward the supersegment is split back into wire frames at the
// egress device (GSO), byte-identical to what the per-frame path would have
// transmitted; on local delivery the socket sees one message carrying the
// merged payload, exactly as with kernel GRO.
//
// The hold table is per-CPU (per shard), sized and ruled like Linux:
// MAX_GRO_SKBS holds, at most 17 segments or 65535 IP bytes per
// supersegment, with PSH/FIN/SYN/RST/URG/CWR/ECE, TCP options, urgent data,
// out-of-order sequence numbers, ack/window changes, and undersized tails
// all forcing a flush. net.core.gro_flush_timeout == 0 flushes every hold at
// the end of each poll; a positive timeout lets holds ride across polls
// until their virtual-time deadline.
package kernel

import (
	"bytes"
	"sync"

	"linuxfp/internal/drop"
	"linuxfp/internal/flight"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

const (
	// GROMaxSegs caps the segments per supersegment (Linux's gso_max_segs
	// contribution to GRO: 17 MSS-sized segments fill a 64KB skb).
	GROMaxSegs = 17
	// groMaxHolds is MAX_GRO_SKBS: concurrent flows held per NAPI context.
	groMaxHolds = 8
	// groMaxSuperLen caps the coalesced IP datagram (total-length field).
	groMaxSuperLen = 65535
)

// gsoMeta rides with a frame from GRO flush to egress: how to split it back.
// segs <= 1 means a plain wire frame that needs no resegmentation.
type gsoMeta struct {
	size    int // payload bytes per output segment
	segs    int // coalesced segment count
	pshLast bool
}

// groOut is one frame the GRO layer emits into the stack: a passthrough
// single or a finalized supersegment, tagged with its ingress device.
type groOut struct {
	frame []byte
	dev   *netdev.Device
	gso   gsoMeta
}

// groBatch is the pooled per-poll emission buffer.
type groBatch struct{ outs []groOut }

var groBatchPool = sync.Pool{New: func() any {
	return &groBatch{outs: make([]groOut, 0, netdev.NAPIBudget+groMaxHolds)}
}}

// groHold is one in-progress coalesce: the supersegment under construction
// plus the expectations the next in-order segment must meet.
type groHold struct {
	buf     []byte
	dev     *netdev.Device
	l3, l4  int
	gsoSize int // payload length of the first segment: the split size
	segs    int
	pshLast bool

	src, dst     packet.Addr
	sport, dport uint16
	nextSeq      uint32 // expected sequence number of the next segment
	nextID       uint16 // expected IP ID (must be consecutive to resegment)
	ack          uint32
	window       uint16

	born     uint64   // allocation order, for oldest-first eviction
	deadline sim.Time // gro_flush_timeout expiry; 0 = flush at poll end

	// fl is the flight chain riding the hold: the first sampled segment's
	// chain, with every later sampled segment's trace ID folded in. The hold
	// copies frames into its own buffer, so the chain detaches from the
	// original frame address here and reattaches to the supersegment at flush.
	fl *flight.Chain
}

// groCtx is one shard's NAPI GRO context. The mutex is per-CPU so it is
// uncontended in steady state; it exists because GROFlushAll (device toggle,
// queue teardown, sysctl flips) may run from another goroutine.
type groCtx struct {
	mu     sync.Mutex
	holds  [groMaxHolds]groHold
	active int
	seq    uint64
}

// groCtxFor returns (lazily allocating) the GRO context for the meter's CPU.
func (k *Kernel) groCtxFor(m *sim.Meter) *groCtx {
	idx := shardIdx(m)
	ctx := k.gro[idx].Load()
	if ctx == nil {
		ctx = new(groCtx)
		if !k.gro[idx].CompareAndSwap(nil, ctx) {
			ctx = k.gro[idx].Load()
		}
	}
	return ctx
}

// groCand is the parse result of one ingress frame against the GRO rules.
type groCand struct {
	tcp   bool // IPv4 TCP with a readable tuple: may flush a matching hold
	merge bool // fully merge-eligible in-order data segment

	l3, l4       int
	src, dst     packet.Addr
	sport, dport uint16
	seq, ack     uint32
	window       uint16
	id           uint16
	flags        packet.TCPFlags
	payload      []byte
}

// groParse classifies a frame. Anything unusual — control bits, TCP options,
// urgent data, fragments, IP options, padding, checksum failures — leaves
// merge false so the frame travels the stock per-frame path untouched.
func groParse(frame []byte, c *groCand) {
	*c = groCand{}
	et, l3 := packet.EtherTypeOf(frame)
	if et != packet.EtherTypeIPv4 || len(frame) < l3+packet.IPv4MinLen+packet.TCPHdrLen {
		return
	}
	if frame[l3]>>4 != 4 || frame[l3]&0xf != 5 {
		return // IP options: slow path
	}
	if packet.IPv4Proto(frame, l3) != packet.ProtoTCP || packet.IPv4IsFragment(frame, l3) {
		return
	}
	l4 := l3 + packet.IPv4MinLen
	c.tcp = true
	c.l3, c.l4 = l3, l4
	c.src, c.dst = packet.IPv4Src(frame, l3), packet.IPv4Dst(frame, l3)
	c.sport, c.dport = packet.L4Ports(frame, l4)
	c.seq = packet.TCPSeq(frame, l4)
	c.ack = packet.TCPAckNum(frame, l4)
	c.window = packet.TCPWindow(frame, l4)
	c.id = packet.IPv4ID(frame, l3)
	c.flags = packet.TCPRawFlags(frame, l4)
	if packet.TCPDataOff(frame, l4) != packet.TCPHdrLen || packet.TCPUrgent(frame, l4) != 0 {
		return
	}
	if c.flags&(packet.TCPSyn|packet.TCPFin|packet.TCPRst|packet.TCPUrg|packet.TCPEce|packet.TCPCwr) != 0 ||
		c.flags&packet.TCPAck == 0 {
		return
	}
	totalLen := int(packet.IPv4TotalLen(frame, l3))
	if totalLen <= packet.IPv4MinLen+packet.TCPHdrLen || l3+totalLen != len(frame) {
		return // no payload, or padded/truncated on the wire
	}
	// Both checksums must verify: a corrupt segment must reach the stack
	// unmodified so it fails there exactly as without GRO.
	if packet.Checksum(frame[l3:l4]) != 0 {
		return
	}
	if packet.ChecksumWithPseudo(c.src, c.dst, packet.ProtoTCP, frame[l4:l3+totalLen]) != 0 {
		return
	}
	c.payload = frame[l4+packet.TCPHdrLen : l3+totalLen]
	c.merge = true
}

// groRun feeds one poll's frames through the shard's GRO context and returns
// the emitted frames (passthrough singles and finalized supersegments) in
// per-flow arrival order. Per-frame driver receive costs are charged here;
// stack entry costs are charged per emitted frame by deliverRun.
func (k *Kernel) groRun(dev *netdev.Device, frames [][]byte, outs []groOut, m *sim.Meter) []groOut {
	defer k.trace("napi_gro_receive", m)()
	ctx := k.groCtxFor(m)
	ctx.mu.Lock()
	now := k.Now()
	// Holds that rode over from earlier polls under gro_flush_timeout:
	// expired ones flush first so their bytes precede this burst.
	if ctx.active > 0 {
		outs = ctx.flushExpired(k, now, outs, m)
	}
	to := k.groFlushTO.Load()
	rx := rxDeviceCost(dev)
	for _, frame := range frames {
		m.Charge(rx)
		outs = ctx.receive(k, dev, frame, now, to, outs, m)
	}
	// End of poll: with no flush timeout every hold drains now (napi
	// complete); with one, unexpired holds wait for a later poll.
	if to == 0 && ctx.active > 0 {
		outs = ctx.flushAll(k, nil, outs, m)
	}
	ctx.mu.Unlock()
	return outs
}

// receive runs one frame through the GRO rules, appending whatever must be
// emitted (in order) to outs.
func (ctx *groCtx) receive(k *Kernel, dev *netdev.Device, frame []byte, now sim.Time, to int64, outs []groOut, m *sim.Meter) []groOut {
	var c groCand
	groParse(frame, &c)
	if !c.merge {
		// Same-flow traffic that cannot merge (pure ACKs, SYN/FIN/RST,
		// fragments, bad checksums) must not overtake held data: flush the
		// flow's hold first, then pass the frame through untouched.
		if c.tcp && ctx.active > 0 {
			if h := ctx.find(dev, &c); h != nil {
				outs = ctx.flushHold(k, h, outs, m)
			}
		}
		return append(outs, groOut{frame: frame, dev: dev, gso: gsoMeta{segs: 1}})
	}
	m.Charge(sim.CostGROReceive)
	h := ctx.find(dev, &c)
	if h == nil {
		if c.flags&packet.TCPPsh != 0 {
			// PSH with nothing to merge into: deliver immediately.
			return append(outs, groOut{frame: frame, dev: dev, gso: gsoMeta{segs: 1}})
		}
		return ctx.start(k, dev, frame, &c, now, to, outs, m)
	}
	if !h.canAppend(frame, &c) {
		outs = ctx.flushHold(k, h, outs, m)
		if c.flags&packet.TCPPsh != 0 {
			return append(outs, groOut{frame: frame, dev: dev, gso: gsoMeta{segs: 1}})
		}
		return ctx.start(k, dev, frame, &c, now, to, outs, m)
	}
	if fr := k.flight.Load(); fr != nil {
		// The merged frame's chain folds into the hold's: the supersegment
		// carries every sampled segment's trace ID forward.
		h.fl = fr.Fold(h.fl, frame, m)
	}
	h.buf = append(h.buf, c.payload...)
	h.segs++
	h.nextSeq += uint32(len(c.payload))
	h.nextID++
	m.Charge(sim.CostGROMerge)
	m.ChargeBytes(len(c.payload))
	k.ctr(m).groCoalesced.Add(1)
	// Flush triggers that end a supersegment at this frame: PSH, an
	// undersized tail (later segments may not grow past the split size),
	// or the 17-segment cap.
	if c.flags&packet.TCPPsh != 0 || len(c.payload) < h.gsoSize || h.segs >= GROMaxSegs {
		h.pshLast = c.flags&packet.TCPPsh != 0
		outs = ctx.flushHold(k, h, outs, m)
	}
	return outs
}

// find returns the hold matching the candidate's flow on this device.
func (ctx *groCtx) find(dev *netdev.Device, c *groCand) *groHold {
	for i := range ctx.holds {
		h := &ctx.holds[i]
		if h.segs > 0 && h.dev == dev && h.src == c.src && h.dst == c.dst &&
			h.sport == c.sport && h.dport == c.dport {
			return h
		}
	}
	return nil
}

// canAppend reports whether the candidate extends the hold in order with
// headers that resegmentation can reproduce exactly.
func (h *groHold) canAppend(frame []byte, c *groCand) bool {
	if c.l3 != h.l3 || h.segs >= GROMaxSegs {
		return false
	}
	if len(h.buf)-h.l3+len(c.payload) > groMaxSuperLen {
		return false
	}
	if len(c.payload) > h.gsoSize {
		return false
	}
	if c.seq != h.nextSeq || c.id != h.nextID || c.ack != h.ack || c.window != h.window {
		return false
	}
	// L2 headers and the invariant IP fields must match byte for byte:
	// MACs/ethertype (and any VLAN tag), then TOS, flags/frag-off (DF), TTL.
	if !bytes.Equal(frame[:h.l3], h.buf[:h.l3]) {
		return false
	}
	if frame[h.l3+1] != h.buf[h.l3+1] ||
		frame[h.l3+6] != h.buf[h.l3+6] || frame[h.l3+7] != h.buf[h.l3+7] ||
		frame[h.l3+8] != h.buf[h.l3+8] {
		return false
	}
	return true
}

// start opens a new hold for the candidate, evicting the oldest hold when
// the table is full (MAX_GRO_SKBS). The frame is copied: the hold owns its
// supersegment buffer and hands it off at flush.
func (ctx *groCtx) start(k *Kernel, dev *netdev.Device, frame []byte, c *groCand, now sim.Time, to int64, outs []groOut, m *sim.Meter) []groOut {
	slot := -1
	for i := range ctx.holds {
		if ctx.holds[i].segs == 0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		oldest := 0
		for i := 1; i < groMaxHolds; i++ {
			if ctx.holds[i].born < ctx.holds[oldest].born {
				oldest = i
			}
		}
		outs = ctx.flushHold(k, &ctx.holds[oldest], outs, m)
		slot = oldest
	}
	ctx.seq++
	h := &ctx.holds[slot]
	var fl *flight.Chain
	if fr := k.flight.Load(); fr != nil {
		// The hold owns a private copy of the frame; the chain detaches from
		// the dying original address and parks on the hold until flush.
		fl = fr.Detach(frame, m)
	}
	*h = groHold{
		fl:      fl,
		buf:     append([]byte(nil), frame...),
		dev:     dev,
		l3:      c.l3,
		l4:      c.l4,
		gsoSize: len(c.payload),
		segs:    1,
		src:     c.src, dst: c.dst, sport: c.sport, dport: c.dport,
		nextSeq: c.seq + uint32(len(c.payload)),
		nextID:  c.id + 1,
		ack:     c.ack,
		window:  c.window,
		born:    ctx.seq,
	}
	if to > 0 {
		h.deadline = now + sim.Time(to)
	}
	ctx.active++
	return outs
}

// flushHold finalizes a hold into an emitted frame: a single passes through
// byte-identical; a supersegment gets its IP total length patched
// (incremental checksum), the PSH bit restored when the last merged segment
// carried it, and the TCP checksum recomputed over the merged payload.
func (ctx *groCtx) flushHold(k *Kernel, h *groHold, outs []groOut, m *sim.Meter) []groOut {
	out := groOut{frame: h.buf, dev: h.dev, gso: gsoMeta{size: h.gsoSize, segs: h.segs, pshLast: h.pshLast}}
	if h.fl != nil {
		// The held chain registers under the flushed frame's address, still
		// parked; the downstream Enter stamps the resume span.
		if fr := k.flight.Load(); fr != nil {
			fr.Reattach(out.frame, h.fl)
		}
	}
	c := k.ctr(m)
	if h.segs > 1 {
		m.Charge(sim.CostGROFlush)
		f := out.frame
		packet.SetIPv4TotalLen(f, h.l3, uint16(len(f)-h.l3))
		if h.pshLast {
			f[h.l4+13] |= byte(packet.TCPPsh)
		}
		packet.RecomputeTCPChecksum(f, h.l3, h.l4)
		c.groSupersegs.Add(1)
	}
	c.groFlushes.Add(1)
	*h = groHold{}
	ctx.active--
	return append(outs, out)
}

// flushExpired flushes holds whose gro_flush_timeout deadline has passed.
func (ctx *groCtx) flushExpired(k *Kernel, now sim.Time, outs []groOut, m *sim.Meter) []groOut {
	for i := range ctx.holds {
		h := &ctx.holds[i]
		if h.segs > 0 && h.deadline != 0 && now >= h.deadline {
			outs = ctx.flushHold(k, h, outs, m)
		}
	}
	return outs
}

// flushAll flushes every hold, or only dev's holds when dev is non-nil.
func (ctx *groCtx) flushAll(k *Kernel, dev *netdev.Device, outs []groOut, m *sim.Meter) []groOut {
	for i := range ctx.holds {
		h := &ctx.holds[i]
		if h.segs > 0 && (dev == nil || h.dev == dev) {
			outs = ctx.flushHold(k, h, outs, m)
		}
	}
	return outs
}

// groFlushShard flushes one shard's holds (optionally restricted to dev) and
// delivers the results into the stack.
func (k *Kernel) groFlushShard(shard int, dev *netdev.Device, m *sim.Meter) {
	ctx := k.gro[shard&rxShardMask].Load()
	if ctx == nil {
		return
	}
	b := groBatchPool.Get().(*groBatch)
	outs := b.outs[:0]
	ctx.mu.Lock()
	if ctx.active > 0 {
		outs = ctx.flushAll(k, dev, outs, m)
	}
	ctx.mu.Unlock()
	if len(outs) > 0 {
		sc := rxScratchPool.Get().(*rxScratch)
		k.deliverOuts(outs, true, m, sc)
		rxScratchPool.Put(sc)
	}
	b.outs = outs[:0]
	groBatchPool.Put(b)
}

// GROFlushAll flushes every GRO hold on every shard into the stack — what
// napi_disable does when GRO is toggled or a queue is torn down, so held
// segments are never stranded. dev restricts the flush to holds from that
// device; nil flushes everything. Safe concurrently with live polls.
func (k *Kernel) GROFlushAll(dev *netdev.Device, m *sim.Meter) {
	for i := range k.gro {
		k.groFlushShard(i, dev, m)
	}
}

// --- batch stack entry -------------------------------------------------------

// rxDeviceCost is the driver-side receive cost by device class: what a frame
// pays before netif_receive_skb.
func rxDeviceCost(dev *netdev.Device) sim.Cycles {
	switch dev.Type {
	case netdev.Veth:
		return sim.CostVethRx
	case netdev.Physical:
		return sim.CostDriverRx + sim.CostSKBAlloc
	default:
		return 0
	}
}

// tcPrologueCost is the full per-frame cost up to and including cls_bpf
// entry, by device class — what the per-frame TC path charges as one lump.
func tcPrologueCost(dev *netdev.Device) sim.Cycles {
	switch dev.Type {
	case netdev.Veth:
		return sim.CostTCPrologueVeth
	case netdev.Physical:
		return sim.CostTCPrologue
	default:
		// Pseudo-devices (vxlan): the skb already exists; only the demux
		// and classifier entry are paid.
		return sim.CostNetifReceive + sim.CostTCClsEntry
	}
}

// tcPollScratch holds one chunk's worth of TC skb state so the batched TC
// runner allocates nothing per poll.
type tcPollScratch struct {
	skbs [netdev.NAPIBudget]SKB
	ptrs [netdev.NAPIBudget]*SKB
	acts [netdev.NAPIBudget]TCAction
	pkts [netdev.NAPIBudget]packet.Packet
	ips  [netdev.NAPIBudget]packet.IPv4
	arps [netdev.NAPIBudget]packet.ARP
	idx  [netdev.NAPIBudget]int
}

var tcPollScratchPool = sync.Pool{New: func() any { return new(tcPollScratch) }}

// deliverOuts feeds GRO-emitted frames into the stack, splitting the slice
// into same-device runs (mixed devices only arise from timeout/teardown
// flushes) so each run can use the batched TC path.
func (k *Kernel) deliverOuts(outs []groOut, decomposed bool, m *sim.Meter, sc *rxScratch) {
	for start := 0; start < len(outs); {
		end := start + 1
		for end < len(outs) && outs[end].dev == outs[start].dev {
			end++
		}
		k.deliverRun(outs[start].dev, outs[start:end], decomposed, m, sc)
		start = end
	}
}

// deliverRun runs TC ingress (batched when the program supports it) and the
// stack over one device's emitted frames. decomposed means the driver
// receive costs were already charged by the GRO pass, so only the
// netif/classifier-entry residuals are due here; otherwise (batched TC with
// GRO off) each frame pays the full prologue, with later frames getting the
// warm-I-cache batch-entry discount.
func (k *Kernel) deliverRun(dev *netdev.Device, outs []groOut, decomposed bool, m *sim.Meter, sc *rxScratch) {
	fr := k.flight.Load()
	th := k.tcIngressFor(dev.Index)
	if th == nil {
		for i := range outs {
			if decomposed {
				m.Charge(sim.CostNetifReceive)
			} else {
				m.Charge(rxDeviceCost(dev) + sim.CostNetifReceive)
			}
			if fr != nil {
				ch := fr.Enter(outs[i].frame, m)
				k.groInput(dev, outs[i].frame, outs[i].gso, m, sc)
				fr.Exit(ch, m)
			} else {
				k.groInput(dev, outs[i].frame, outs[i].gso, m, sc)
			}
		}
		return
	}
	bh, batched := th.(TCBatchHandler)
	ts := tcPollScratchPool.Get().(*tcPollScratch)
	first := true
	for off := 0; off < len(outs); off += netdev.NAPIBudget {
		end := off + netdev.NAPIBudget
		if end > len(outs) {
			end = len(outs)
		}
		chunk := outs[off:end]
		n := 0
		for i := range chunk {
			entry := sim.CostTCClsEntry
			if batched && !first {
				entry = sim.CostTCBatchEntry
			}
			if decomposed {
				m.Charge(sim.CostNetifReceive + entry)
			} else {
				m.Charge(tcPrologueCost(dev) - sim.CostTCClsEntry + entry)
			}
			first = false
			frame := chunk[i].frame
			eth, l3off, err := packet.UnmarshalEthernet(frame)
			if err != nil {
				// Outside an Enter window: terminate the frame's chain by key.
				if fr != nil {
					fr.TerminalDropFrame(frame, drop.ReasonL2HdrError, m)
				}
				k.countDropReason(m, drop.ReasonL2HdrError)
				continue
			}
			if perr := packet.DecodeInto(frame, &ts.pkts[n], &ts.ips[n], &ts.arps[n]); perr != nil {
				ts.pkts[n] = packet.Packet{Eth: eth, L3Off: l3off, Payload: frame[l3off:]}
			}
			ts.skbs[n] = SKB{Data: frame, Dev: dev, Pkt: &ts.pkts[n], VLAN: eth.VLAN, Meter: m}
			ts.ptrs[n] = &ts.skbs[n]
			ts.idx[n] = i
			n++
		}
		if batched {
			bh.HandleTCBatch(ts.ptrs[:n], ts.acts[:n])
		} else {
			for i := 0; i < n; i++ {
				ts.acts[i] = th.HandleTC(ts.ptrs[i])
			}
		}
		for i := 0; i < n; i++ {
			o := &chunk[ts.idx[i]]
			skb := &ts.skbs[i]
			var fch *flight.Chain
			if fr != nil {
				fch = fr.Enter(skb.Data, m)
				fr.SpanCur(m, flight.StageTC, flight.VerdictNone)
			}
			switch ts.acts[i] {
			case TCShot:
				k.countDropReason(m, drop.ReasonTCDrop)
			case TCRedirect:
				tgt, ok := k.DeviceByIndex(skb.RedirectTo)
				if !ok {
					k.countDropReason(m, drop.ReasonTCRedirectFail)
					break
				}
				if tgt.Type == netdev.Veth {
					m.Charge(sim.CostTCRedirectPeer)
				} else {
					m.Charge(sim.CostTCRedirect)
				}
				if o.gso.segs > 1 {
					// A redirected supersegment leaves as wire frames.
					if et, l3 := packet.EtherTypeOf(skb.Data); et == packet.EtherTypeIPv4 {
						if fr != nil {
							fr.SpanCur(m, flight.StageGSO, flight.VerdictNone)
						}
						segs := packet.SegmentTCP(skb.Data, l3, l3+packet.IPv4MinLen, o.gso.size, o.gso.pshLast)
						m.Charge(sim.CostGSOSegment * sim.Cycles(len(segs)))
						tgt.TransmitBatch(segs, m)
					}
					break
				}
				tgt.Transmit(skb.Data, m)
			default:
				k.groInput(dev, skb.Data, o.gso, m, sc)
			}
			if fr != nil {
				fr.Exit(fch, m)
			}
		}
	}
	tcPollScratchPool.Put(ts)
}

// groInput enters the stack proper for one emitted frame, threading the GSO
// metadata through the scratch so ip_forward can resegment at egress.
func (k *Kernel) groInput(dev *netdev.Device, frame []byte, gso gsoMeta, m *sim.Meter, sc *rxScratch) {
	defer k.trace("netif_receive_skb", m)()
	sc.fillOK = false
	sc.gso = gso
	eth, l3off, err := packet.UnmarshalEthernet(frame)
	if err != nil {
		k.countDropReason(m, drop.ReasonL2HdrError)
		sc.gso = gsoMeta{}
		return
	}
	if gso.segs > 1 {
		// Supersegments bypass the flow fast-cache — its hit path would
		// transmit the merged frame without resegmentation — and are never
		// bridged (GRO is gated off on bridge slaves).
		k.l3Input(dev, frame, m, sc)
	} else {
		k.receiveParsed(dev, frame, eth, l3off, m, sc)
	}
	sc.gso = gsoMeta{}
}

// gsoForward is finishOutput for a supersegment: POSTROUTING, neighbour
// resolution, and TC egress run once on the merged frame — the amortization
// — then the supersegment is split back into wire frames at the egress
// device, byte-identical to the per-frame path. Returns true when the
// forwarded counter was already advanced (the fragmentation fallback counts
// per segment, matching what the per-frame path would have recorded).
func (k *Kernel) gsoForward(dev, out *netdev.Device, nexthop packet.Addr, frame []byte, pkt *packet.Packet, gso gsoMeta, m *sim.Meter) bool {
	defer k.trace("gso_segment", m)()
	now := k.Now()

	if k.NF.RuleCount("POSTROUTING") > 0 {
		if p2, err := packet.Decode(frame); err == nil && p2.IPv4 != nil {
			meta := k.buildMeta(out, p2)
			meta.OutIf = out.Index
			if v := k.runHook(netfilter.HookPostrouting, meta, m); v == netfilter.VerdictDrop {
				k.countFilterDrop(m)
				return false
			}
		}
	}

	l3, l4 := pkt.L3Off, pkt.L3Off+packet.IPv4MinLen
	sl, nst := k.stageStart(m)
	mac, _, ok := k.Neigh.ResolvedFull(nexthop, now)
	if !ok {
		// The neighbour queue retains frames verbatim until the ARP reply
		// flushes them — so queue wire-sized segments, never the super.
		segs := packet.SegmentTCP(frame, l3, l4, gso.size, gso.pshLast)
		m.Charge(sim.CostGSOSegment * sim.Cycles(len(segs)))
		fr := k.flight.Load()
		if fr != nil {
			// The superseg's chain parks before any segment is published:
			// the ARP-reply flush can run on another CPU the moment a
			// segment hits the queue. Each segment aliases the chain — also
			// pre-publication — so the flush finds it by key and closes it
			// with a Tx terminal.
			fr.ParkFrame(frame, flight.StageNeigh, m)
		}
		first, queuedAny := false, false
		for _, s := range segs {
			if fr != nil {
				fr.InheritFrame(frame, s, m)
			}
			f, q := k.Neigh.StartResolution(nexthop, out.Index, s)
			if f {
				first = true
			}
			if q {
				queuedAny = true
			} else {
				k.countDropReason(m, drop.ReasonNeighQueueFull)
			}
		}
		if !queuedAny && fr != nil {
			// No segment left this CPU: the producer closes the chain.
			fr.TerminalDropFrame(frame, drop.ReasonNeighQueueFull, m)
		}
		if first {
			k.sendARPRequest(out, nexthop, m)
		}
		return false
	}
	packet.SetEthDst(frame, mac)
	m.Charge(sim.CostNeighOutput)
	if sl != nil {
		sl.Observe(StageNeigh, m, nst)
	}
	k.flightSpan(m, flight.StageNeigh, flight.VerdictNone)

	if h := k.tcEgressFor(out.Index); h != nil {
		if p2, err := packet.Decode(frame); err == nil {
			skb := &SKB{Data: frame, Dev: out, Pkt: p2, Meter: m}
			switch h.HandleTC(skb) {
			case TCShot:
				k.countDropReason(m, drop.ReasonTCDrop)
				return false
			case TCRedirect:
				m.Charge(sim.CostTCRedirect)
				if red, ok := k.DeviceByIndex(skb.RedirectTo); ok {
					return k.gsoTransmit(dev, red, nexthop, skb.Data, l3, l4, gso, m)
				}
				return false
			case TCOk:
				frame = skb.Data
			}
		}
	}

	k.trace("dev_queue_xmit", m)()
	xsl, xst := k.stageStart(m)
	m.Charge(sim.CostDevXmit)
	sent := k.gsoTransmit(dev, out, nexthop, frame, l3, l4, gso, m)
	if xsl != nil {
		xsl.Observe(StageXmit, m, xst)
	}
	return sent
}

// gsoTransmit splits the supersegment at the egress device and transmits the
// resulting wire frames as one batch. When the segments themselves exceed
// the egress MTU it falls back to the per-segment slow output, which
// fragments or bounces (ICMP frag-needed on DF) exactly like the per-frame
// path; that fallback advances the forwarded counter per segment itself, so
// it returns true to tell the caller not to count the supersegment again.
func (k *Kernel) gsoTransmit(dev, out *netdev.Device, nexthop packet.Addr, frame []byte, l3, l4 int, gso gsoMeta, m *sim.Meter) bool {
	k.flightSpan(m, flight.StageGSO, flight.VerdictNone)
	segs := packet.SegmentTCP(frame, l3, l4, gso.size, gso.pshLast)
	m.Charge(sim.CostGSOSegment * sim.Cycles(len(segs)))
	if l4-l3+packet.TCPHdrLen+gso.size <= out.MTU {
		out.TransmitBatch(segs, m)
		return false
	}
	for _, s := range segs {
		p, err := packet.Decode(s)
		if err != nil || p.IPv4 == nil {
			continue
		}
		if p.IPv4.DontFragment() {
			k.sendICMPError(dev, p, packet.ICMPUnreachable, 4, m)
			k.countDropReason(m, drop.ReasonPktTooBig)
			continue
		}
		k.fragmentAndSend(out, nexthop, s, p, m)
	}
	return true
}
