package kernel

import (
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/flight"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// hasSpan reports whether the chain carries a span with the given stage,
// verdict, and CPU.
func hasSpan(ch *flight.Chain, st flight.Stage, v flight.Verdict, cpu uint8) bool {
	for _, sp := range ch.Spans {
		if sp.Stage == st && sp.Verdict == v && sp.CPU == cpu {
			return true
		}
	}
	return false
}

// assertConserved checks the trace ledger: every sampled stamp is accounted
// for by exactly one terminal, and nothing is still in flight.
func assertConserved(t *testing.T, fr *flight.Recorder) flight.Terminals {
	t.Helper()
	tl := fr.Terminals()
	if tl.Sampled != tl.Drop+tl.Tx+tl.Redirect+tl.Pass+tl.Lost {
		t.Fatalf("trace ledger violated: sampled=%d != drop=%d + tx=%d + redirect=%d + pass=%d + lost=%d",
			tl.Sampled, tl.Drop, tl.Tx, tl.Redirect, tl.Pass, tl.Lost)
	}
	if live := fr.Live(); live != 0 {
		t.Fatalf("%d chains still live after quiesce", live)
	}
	return tl
}

// TestFlightLedgerConservesMixedWorkload drives forwards, FIB misses, TTL
// expiries, and local deliveries through a router tracing every packet, then
// reconciles the trace ledger against the kernel's Stats ledger: trace tx ==
// Forwarded, trace drop == Dropped, trace pass == Delivered, and every
// retained chain closed with exactly one terminal span.
func TestFlightLedgerConservesMixedWorkload(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	r.RegisterSocket(packet.ProtoUDP, 9, func(*Kernel, SocketMsg) {})
	fr := r.EnableFlight(flight.Config{SampleShift: 0, Retain: true})
	defer r.DisableFlight()

	src := packet.MustAddr("10.1.0.1")
	local := packet.MustAddr("10.1.0.254")
	var frames [][]byte
	for i := 0; i < 64; i++ { // forwarded
		frames = append(frames, fwdFrame(r0.MAC, srcMAC, src, packet.AddrFrom4(10, 2, 0, byte(i%16+1)), uint16(3000+i), 8080))
	}
	for i := 0; i < 16; i++ { // no route
		frames = append(frames, fwdFrame(r0.MAC, srcMAC, src, packet.AddrFrom4(172, 31, 0, byte(i+1)), uint16(3100+i), 8080))
	}
	for i := 0; i < 16; i++ { // TTL expires in FORWARD
		frames = append(frames, ttlFrame(r0.MAC, srcMAC, src, packet.AddrFrom4(10, 2, 0, 1), 1))
	}
	for i := 0; i < 16; i++ { // local delivery
		u := packet.UDP{SrcPort: uint16(3200 + i), DstPort: 9}
		frames = append(frames, packet.BuildIPv4(
			packet.Ethernet{Dst: r0.MAC, Src: srcMAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: local},
			u.Marshal(nil, src, local, make([]byte, 18))))
	}
	var m sim.Meter
	for i := 0; i < len(frames); i += 32 {
		end := i + 32
		if end > len(frames) {
			end = len(frames)
		}
		r0.ReceiveBatch(frames[i:end], 0, &m)
	}

	tl := assertConserved(t, fr)
	st := r.Stats()
	if tl.Sampled != uint64(len(frames)) {
		t.Fatalf("sampled=%d, want every one of the %d packets at shift 0", tl.Sampled, len(frames))
	}
	if tl.Tx != st.Forwarded || tl.Tx != 64 {
		t.Fatalf("trace tx=%d, kernel Forwarded=%d, want 64", tl.Tx, st.Forwarded)
	}
	if tl.Drop != st.Dropped || tl.Drop != 32 {
		t.Fatalf("trace drop=%d, kernel Dropped=%d, want 32", tl.Drop, st.Dropped)
	}
	if tl.Pass != st.Delivered || tl.Pass != 16 {
		t.Fatalf("trace pass=%d, kernel Delivered=%d, want 16", tl.Pass, st.Delivered)
	}
	if tl.Lost != 0 {
		t.Fatalf("lost=%d, want 0 (instrumentation gap)", tl.Lost)
	}
	for _, ch := range fr.Completed() {
		nTerm := 0
		for _, sp := range ch.Spans {
			if sp.Verdict.Terminal() {
				nTerm++
			}
		}
		if nTerm != 1 || !ch.Spans[len(ch.Spans)-1].Verdict.Terminal() {
			t.Fatalf("chain %#x has %d terminal spans (%v), want exactly one, last", ch.ID, nTerm, ch.Spans)
		}
	}
	assertLedger(t, r)
}

// TestFlightCpumapOverflowConservation forces a cpumap ring overflow and
// checks the ledger splits exactly: accepted frames park on the producer CPU,
// resume on the kthread's CPU, and terminate tx; overflowed frames terminate
// as cpumap_overflow drops charged to the producer. Nothing is lost.
func TestFlightCpumapOverflowConservation(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	fr := r.EnableFlight(flight.Config{SampleShift: 0, Retain: true})
	defer r.DisableFlight()

	const qsize, total = 4, 10
	e := r.NewCpumapEntry(2, qsize)
	defer e.Stop()

	src := packet.MustAddr("10.1.0.1")
	m := sim.Meter{CPU: 0}
	frames := make([][]byte, total)
	for i := range frames {
		frames[i] = fwdFrame(r0.MAC, srcMAC, src, packet.AddrFrom4(10, 2, 0, byte(i%16+1)), uint16(4000+i), 8080)
		// The XDP redirect path samples at device RX before enqueueing; the
		// direct EnqueueBatch injection replays that stamp.
		fr.SampleRX(frames[i], r0.Index, &m)
	}
	dropped, _ := e.EnqueueBatch(r0, frames, &m)
	if dropped != total-qsize {
		t.Fatalf("EnqueueBatch dropped %d of %d with qsize %d, want %d", dropped, total, qsize, total-qsize)
	}
	e.RingDoorbell(&m)
	e.Quiesce()

	tl := assertConserved(t, fr)
	if tl.Sampled != total || tl.Drop != total-qsize || tl.Tx != qsize || tl.Lost != 0 {
		t.Fatalf("ledger %+v, want sampled=%d drop=%d tx=%d lost=0", tl, total, total-qsize, qsize)
	}
	forwarded := 0
	for _, ch := range fr.Completed() {
		switch ch.Terminal() {
		case flight.VerdictTx:
			forwarded++
			if !hasSpan(ch, flight.StageCpumap, flight.VerdictPark, 0) {
				t.Fatalf("forwarded chain %#x missing cpumap park on producer cpu0: %v", ch.ID, ch.Spans)
			}
			if !hasSpan(ch, flight.StageCpumap, flight.VerdictResume, 2) {
				t.Fatalf("forwarded chain %#x missing cpumap resume on kthread cpu2: %v", ch.ID, ch.Spans)
			}
		case flight.VerdictDrop:
			if last := ch.Spans[len(ch.Spans)-1]; last.Reason != drop.ReasonCpumapOverflow {
				t.Fatalf("dropped chain %#x reason=%v, want cpumap_overflow", ch.ID, last.Reason)
			}
		}
	}
	if forwarded != qsize {
		t.Fatalf("%d tx chains retained, want %d", forwarded, qsize)
	}
}

// TestFlightRPSOverflowConservation fills an RPS backlog ring directly (the
// kthread provably asleep), then receives one traced packet that overflows
// it: the chain must terminate as an rps_backlog_full drop and the ledger
// must balance — the park span is not a leak.
func TestFlightRPSOverflowConservation(t *testing.T) {
	k, d := steerHost(t)
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	const qlen = 4
	if err := k.EnableRPS([]int{1}, qlen); err != nil {
		t.Fatal(err)
	}
	defer k.DisableRPS()
	fr := k.EnableFlight(flight.Config{SampleShift: 0, Retain: true})
	defer k.DisableFlight()

	// Pre-fill the ring with frames that never crossed device RX: unsampled,
	// invisible to the recorder.
	st := k.rps.Load()
	b := st.backlogs[1]
	for i := 0; i < qlen; i++ {
		if ok, _ := b.enqueue(d, steerSeqFrame(d, 5000, uint32(i)), nil, nil); !ok {
			t.Fatalf("park %d rejected with qlen %d", i, qlen)
		}
	}
	m := sim.Meter{CPU: 0}
	d.Receive(steerSeqFrame(d, 5000, qlen), &m) // sampled, overflows

	b.kick()
	k.RPSQuiesce()

	tl := assertConserved(t, fr)
	if tl.Sampled != 1 || tl.Drop != 1 {
		t.Fatalf("ledger %+v, want the one traced packet to drop", tl)
	}
	chains := fr.Completed()
	if len(chains) != 1 {
		t.Fatalf("%d chains retained, want 1", len(chains))
	}
	last := chains[0].Spans[len(chains[0].Spans)-1]
	if last.Verdict != flight.VerdictDrop || last.Reason != drop.ReasonRPSBacklogFull {
		t.Fatalf("terminal span %+v, want drop/rps_backlog_full", last)
	}
	if k.DropReasons()[drop.ReasonRPSBacklogFull] != 1 {
		t.Fatal("kernel ledger missing the rps_backlog_full drop")
	}
}

// TestFlightRPSCrossCPUContinuity steers every packet off the RX core and
// checks trace continuity across the handoff: each chain parks on the RX CPU,
// resumes on the backlog kthread's CPU, and its pass terminal is stamped by
// the target CPU — the span timeline shows the migration.
func TestFlightRPSCrossCPUContinuity(t *testing.T) {
	k, d := steerHost(t)
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	if err := k.EnableRPS([]int{3}, 1024); err != nil {
		t.Fatal(err)
	}
	defer k.DisableRPS()
	fr := k.EnableFlight(flight.Config{SampleShift: 0, Retain: true})
	defer k.DisableFlight()

	const n = 32
	m := sim.Meter{CPU: 0}
	for i := 0; i < n; i++ {
		d.Receive(steerSeqFrame(d, uint16(6000+i), uint32(i)), &m)
	}
	k.RPSQuiesce()

	tl := assertConserved(t, fr)
	if tl.Sampled != n || tl.Pass != n {
		t.Fatalf("ledger %+v, want all %d delivered", tl, n)
	}
	chains := fr.Completed()
	if len(chains) != n {
		t.Fatalf("%d chains retained, want %d", len(chains), n)
	}
	for _, ch := range chains {
		if !hasSpan(ch, flight.StageRPS, flight.VerdictPark, 0) {
			t.Fatalf("chain %#x missing rps park on rx cpu0: %v", ch.ID, ch.Spans)
		}
		if !hasSpan(ch, flight.StageRPS, flight.VerdictResume, 3) {
			t.Fatalf("chain %#x missing rps resume on target cpu3: %v", ch.ID, ch.Spans)
		}
		last := ch.Spans[len(ch.Spans)-1]
		if last.Verdict != flight.VerdictPass || last.CPU != 3 {
			t.Fatalf("chain %#x terminal %+v, want pass stamped by cpu3", ch.ID, last)
		}
	}
}

// TestFlightSpliceContinuity runs the sockmap proxy splice and checks the
// ingress packet's chain follows its bytes out the egress device: spliced
// chains carry sockmap and splice spans and terminate tx, even though the
// transmitted frame is a synthesized one the side table has never seen.
func TestFlightSpliceContinuity(t *testing.T) {
	k, in, out := proxyHost(t)
	k.SetSysctl("net.core.sockmap", "1")
	registerTestProxy(k)
	out.SetTxHook(func([]byte, *sim.Meter) bool { return true })
	fr := k.EnableFlight(flight.Config{SampleShift: 0, Retain: true})
	defer k.DisableFlight()

	const n = 8
	var m sim.Meter
	for i := 0; i < n; i++ {
		in.Receive(sockFrame(in, 6100, 7000, []byte("proxied payload")), &m)
	}
	if sp := k.Stats().SockmapSplices; sp != n {
		t.Fatalf("splices=%d, want %d (the proxy registration pre-wires the sockmap)", sp, n)
	}

	tl := assertConserved(t, fr)
	if tl.Sampled != n || tl.Tx != n {
		t.Fatalf("ledger %+v, want all %d chains to follow their bytes out as tx", tl, n)
	}
	spliced := 0
	for _, ch := range fr.Completed() {
		if ch.Terminal() != flight.VerdictTx {
			t.Fatalf("chain %#x terminated %v, want tx", ch.ID, ch.Terminal())
		}
		if hasSpan(ch, flight.StageSplice, flight.VerdictNone, 0) {
			spliced++
		}
	}
	if spliced != n {
		t.Fatalf("%d chains carry splice spans, want %d", spliced, n)
	}
}

// TestFlightDetachedZeroAlloc pins the static-key contract: with no recorder
// attached, the established-flow delivery path allocates nothing — every
// instrumentation site costs one atomic nil load, and none of them reach for
// the side table.
func TestFlightDetachedZeroAlloc(t *testing.T) {
	k, d := sockHost(t)
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	if k.Flight() != nil {
		t.Fatal("recorder attached before EnableFlight")
	}
	// Attach and detach: a past attachment must leave no residue either.
	k.EnableFlight(flight.Config{SampleShift: 0})
	k.DisableFlight()
	if k.Flight() != nil {
		t.Fatal("DisableFlight left the recorder attached")
	}
	var m sim.Meter
	frame := sockFrame(d, 4001, 7, []byte("warm"))
	d.Receive(frame, &m) // install
	d.Receive(frame, &m) // warm pools
	if allocs := testing.AllocsPerRun(200, func() {
		d.Receive(frame, &m)
	}); allocs != 0 {
		t.Fatalf("detached recorder costs %.1f allocs/pkt on the hot path, want 0", allocs)
	}
}

// TestFlightSamplingSubset checks that at 1-in-4 sampling the traced subset
// still conserves: roughly a quarter of the packets are stamped, and every
// stamp terminates.
func TestFlightSamplingSubset(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	fr := r.EnableFlight(flight.Config{SampleShift: 2})
	defer r.DisableFlight()

	src := packet.MustAddr("10.1.0.1")
	var frames [][]byte
	for i := 0; i < 64; i++ {
		frames = append(frames, fwdFrame(r0.MAC, srcMAC, src, packet.AddrFrom4(10, 2, 0, byte(i%16+1)), uint16(5000+i), 8080))
	}
	var m sim.Meter
	r0.ReceiveBatch(frames[:32], 0, &m)
	r0.ReceiveBatch(frames[32:], 0, &m)

	tl := assertConserved(t, fr)
	if tl.Sampled != 16 {
		t.Fatalf("sampled=%d of 64 at shift 2, want 16", tl.Sampled)
	}
	if st := r.Stats(); st.Forwarded != 64 {
		t.Fatalf("forwarded=%d, sampling must not perturb the datapath", st.Forwarded)
	}
}
