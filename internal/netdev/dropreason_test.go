package netdev

import (
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/sim"
)

// devReasonSum adds up a device's per-reason drop counters.
func devReasonSum(d *Device) uint64 {
	var sum uint64
	for _, c := range d.DropReasons() {
		sum += c
	}
	return sum
}

// devDropTotal is the device's aggregate drop count across all counters a
// reason can account against.
func devDropTotal(d *Device) uint64 {
	st := d.Stats()
	return st.RxDropped + st.TxDropped + st.XDPDrops
}

// TestDeviceDropReasonConservation exercises every device-level drop path —
// tx/rx on a down device, XDP drop, XDP abort, XDP redirect failure — and
// checks each drop carries exactly one reason: per-device
// sum(reasons) == RxDropped + TxDropped + XDPDrops throughout.
func TestDeviceDropReasonConservation(t *testing.T) {
	a, b, _, _ := pair(t)
	var m sim.Meter

	check := func(step string) {
		t.Helper()
		for _, d := range []*Device{a, b} {
			if got, want := devReasonSum(d), devDropTotal(d); got != want {
				t.Fatalf("%s: %s reason sum %d != drop total %d (%v)",
					step, d.Name, got, want, d.DropReasons())
			}
		}
	}

	// Down-device drops, both directions.
	a.SetUp(false)
	a.Transmit(frameTo(b.MAC), &m)
	a.SetUp(true)
	b.SetUp(false)
	a.Transmit(frameTo(b.MAC), &m)
	b.SetUp(true)
	check("down")
	if r := a.DropReasons(); r[drop.ReasonDevTxDown] != 1 {
		t.Fatalf("tx-down reason missing: %v", r)
	}
	if r := b.DropReasons(); r[drop.ReasonDevRxDown] != 1 {
		t.Fatalf("rx-down reason missing: %v", r)
	}

	// XDP verdicts: drop, abort, and a redirect to a nonexistent ifindex.
	verdicts := []XDPAction{XDPDrop, XDPAborted, XDPRedirect}
	i := 0
	b.AttachXDP(xdpFunc(func(buf *XDPBuff) XDPAction {
		v := verdicts[i%len(verdicts)]
		i++
		if v == XDPRedirect {
			buf.RedirectTo = 999 // no such device
		}
		return v
	}), "driver")
	for n := 0; n < 3*4; n++ {
		a.Transmit(frameTo(b.MAC), &m)
	}
	b.DetachXDP()
	check("xdp singles")
	r := b.DropReasons()
	if r[drop.ReasonXDPDrop] != 4 || r[drop.ReasonXDPAborted] != 4 || r[drop.ReasonXDPRedirectFail] != 4 {
		t.Fatalf("xdp reasons %v, want 4 each of drop/aborted/redirect_fail", r)
	}

	// Same verdict cycle through the batched NAPI poll path.
	frames := make([][]byte, 24)
	for j := range frames {
		frames[j] = frameTo(b.MAC)
	}
	i = 0
	b.AttachXDP(xdpFunc(func(buf *XDPBuff) XDPAction {
		v := verdicts[i%len(verdicts)]
		i++
		if v == XDPRedirect {
			buf.RedirectTo = 999
		}
		return v
	}), "driver")
	b.ReceiveBatch(frames, 0, &m)
	b.DetachXDP()
	check("xdp batch")
	r = b.DropReasons()
	if r[drop.ReasonXDPDrop] != 12 || r[drop.ReasonXDPAborted] != 12 || r[drop.ReasonXDPRedirectFail] != 12 {
		t.Fatalf("batched xdp reasons %v, want 12 each", r)
	}

	// Batched down-device receive: one Add(n), not n Adds.
	b.SetUp(false)
	b.ReceiveBatch(frames[:8], 0, &m)
	b.SetUp(true)
	check("batch down")
	if r := b.DropReasons(); r[drop.ReasonDevRxDown] != 9 {
		t.Fatalf("rx-down after batch %v, want 9", r)
	}
}
