// Command netcfg is an interactive shell for the simulated kernel: it
// accepts the same ip/brctl/iptables/ipset/sysctl commands a real host
// would, with a live LinuxFP controller reacting to every change. Use it
// to watch the processing graph follow the configuration.
//
//	netcfg            # interactive
//	netcfg < setup.cfg
//
// Extra commands: "graph" prints the current processing graph, "reactions"
// the reconcile history, "quit" exits.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"linuxfp"
)

func main() {
	sys := linuxfp.New("netcfg")
	defer sys.Close()
	ctrl := sys.Accelerate(linuxfp.Options{})

	in := bufio.NewScanner(os.Stdin)
	interactive := false
	if st, err := os.Stdin.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
		interactive = true
	}
	if interactive {
		fmt.Println("netcfg: simulated Linux host with a live LinuxFP controller")
		fmt.Println("netcfg: try: ip link add eth0 type phys | graph | reactions | stats | quit")
		fmt.Print("> ")
	}
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch line {
		case "quit", "exit":
			return
		case "graph":
			sys.Sync()
			fmt.Println(sys.GraphJSON())
		case "reactions":
			sys.Sync()
			for _, r := range ctrl.Reactions() {
				fmt.Printf("trigger=%-14s modules=%d new=%d virtual=%.3fs deployed=%v\n",
					r.Trigger, r.Modules, r.NewModules, r.Virtual.Seconds(), r.Deployed)
			}
		case "stats":
			sys.Sync()
			st := ctrl.FastPathStats()
			fmt.Printf("accelerated interfaces=%d fastpath redirects=%d drops=%d slowpath packets=%d\n",
				st.Interfaces, st.Redirects, st.Drops, st.SlowPath)
		case "":
		default:
			out, err := sys.Exec(line)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else if out != "" {
				fmt.Print(out)
			}
			sys.Sync()
		}
		if interactive {
			fmt.Print("> ")
		}
	}
}
