package testbed

import (
	"fmt"
	"strings"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/traffic"
	"linuxfp/internal/vpp"
)

// AF_XDP sweep socket shape: a production-sized UMEM so the data plane,
// not the pool, is the bottleneck at every batch size.
const (
	afxdpUMEMFrames = 4096
	afxdpRingSize   = 2048
)

// AFXDPPoint is one measured configuration of the three-plane race: the
// same 64B router workload through the slow path, the in-kernel XDP fast
// path, or an AF_XDP socket with a userspace forwarder (wakeup-driven or
// busy-polling). AF_XDP splits the work across two cores — the RX/NAPI
// core feeding the rings and the app core draining them — so the rate is
// bounded by the busier of the two.
type AFXDPPoint struct {
	Plane          string  `json:"plane"` // slowpath | xdp | afxdp-wakeup | afxdp-busypoll
	Batch          int     `json:"batch"`
	Flows          int     `json:"flows"`
	CyclesPerPkt   float64 `json:"modelcycles_per_pkt"` // busiest core
	RxCoreCycles   float64 `json:"rx_core_cycles_per_pkt"`
	AppCoreCycles  float64 `json:"app_core_cycles_per_pkt"`
	PPS            float64 `json:"pps"`
	Drops          uint64  `json:"drops"`
	Wakeups        uint64  `json:"wakeups"`
	Syscalls       uint64  `json:"syscalls"` // poll() + sendto() paid by the app
	ConservationOK bool    `json:"conservation_ok"`
}

// AFXDPReport is the machine-readable result of AFXDPSweep — what
// `lfpbench -exp afxdp` serializes into BENCH_afxdp.json. The VPP fields
// are the full-kernel-bypass reference the busy-poll plane is racing.
type AFXDPReport struct {
	Platform        string       `json:"platform"`
	ClockHz         float64      `json:"clock_hz"`
	NAPIBudget      int          `json:"napi_budget"`
	XSKBulkSize     int          `json:"xsk_bulk_size"`
	UMEMFrames      int          `json:"umem_frames"`
	RingSize        int          `json:"ring_size"`
	FrameSize       int          `json:"frame_size"`
	Frames          int          `json:"frames_per_point"`
	VPPCyclesPerPkt float64      `json:"vpp_cycles_per_pkt"`
	VPPPPS          float64      `json:"vpp_pps"`
	Points          []AFXDPPoint `json:"points"`
}

// afxdpPlanes in race order, slowest to fastest.
var afxdpPlanes = []string{"slowpath", "xdp", "afxdp-wakeup", "afxdp-busypoll"}

// afxdpWorkload builds n minimum-size UDP frames spread round-robin over
// `flows` distinct (dst, src-port) flows across the routed prefixes.
func afxdpWorkload(d *DUT, flows, n int) [][]byte {
	src := packet.MustAddr("10.1.0.1")
	overhead := packet.EthHdrLen + packet.IPv4MinLen + packet.UDPHdrLen
	frames := make([][]byte, n)
	for i := 0; i < n; i++ {
		f := i % flows
		p := routedPrefix(f % RoutedPrefixes)
		host := packet.Addr(uint32(f/RoutedPrefixes)%250 + 1)
		dst := p.Addr | host&^p.Mask()
		u := packet.UDP{SrcPort: uint16(4000 + f%1000), DstPort: 9000}
		frames[i] = packet.BuildIPv4(
			packet.Ethernet{Dst: d.In.MAC, Src: d.SrcDev.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, ID: uint16(i), Proto: packet.ProtoUDP, Src: src, Dst: dst},
			u.Marshal(nil, src, dst, make([]byte, traffic.MinFrameSize-overhead)))
	}
	return frames
}

// AFXDPSweep races the three data planes over the batch-size x flow-count
// grid, n frames per point, and reports per-packet model cycles on the
// busiest core plus the single-core VPP reference.
func AFXDPSweep(batches, flowCounts []int, n int) (*AFXDPReport, error) {
	d, err := Build(PlatformLinux, Scenario{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	setJIT(d, true)

	r := &AFXDPReport{
		Platform:    PlatformLinux,
		ClockHz:     sim.ClockHz,
		NAPIBudget:  netdev.NAPIBudget,
		XSKBulkSize: netdev.XSKBulkSize,
		UMEMFrames:  afxdpUMEMFrames,
		RingSize:    afxdpRingSize,
		FrameSize:   traffic.MinFrameSize,
		Frames:      n,
	}
	// The reference plane: VPP's saturated graph cost on one dedicated
	// core — the same resource trade busy-poll makes.
	vppCycles := vpp.New(kernel.New("vpp-ref"), 1).PerPacketCycles()
	r.VPPCyclesPerPkt = float64(vppCycles)
	r.VPPPPS = sim.ClockHz / float64(vppCycles)

	for _, flows := range flowCounts {
		for _, batch := range batches {
			if batch <= 0 || flows <= 0 {
				continue
			}
			for _, plane := range afxdpPlanes {
				p, err := afxdpPoint(d, plane, batch, flows, n)
				if err != nil {
					return nil, err
				}
				r.Points = append(r.Points, p)
			}
		}
	}
	return r, nil
}

// afxdpPoint drives n frames through one plane in ReceiveBatch polls of
// `batch` frames and measures it. Wires are unplugged so only DUT work
// meters. For the AF_XDP planes the app core runs interleaved with the RX
// core — one RunOnce per poll, the steady state of a consumer keeping up —
// and both meters are read at the end.
func afxdpPoint(d *DUT, plane string, batch, flows, n int) (AFXDPPoint, error) {
	netdev.Disconnect(d.In)
	netdev.Disconnect(d.Out)
	defer func() {
		netdev.Connect(d.SrcDev, d.In)
		netdev.Connect(d.Out, d.SinkDev)
	}()
	defer d.In.DetachXDP()

	loader := ebpf.NewLoader(d.Kern)
	var sock *ebpf.AFXDPSocket
	var app *ebpf.AFXDPApp
	switch plane {
	case "slowpath":
		// No program: every frame climbs the full stack.
	case "xdp":
		ops := append([]ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4()}, fpm.RouterOps(fpm.RouterConf{})...)
		prog, err := loader.Load(&ebpf.Program{Name: "afxdp_sweep_router", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
		if err != nil {
			return AFXDPPoint{}, err
		}
		if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
			return AFXDPPoint{}, err
		}
	case "afxdp-wakeup", "afxdp-busypoll":
		xsk := ebpf.NewXSKMap("xsks", 1)
		sock = ebpf.NewAFXDPSocket(ebpf.AFXDPConfig{
			NumFrames: afxdpUMEMFrames, RingSize: afxdpRingSize,
			BusyPoll: plane == "afxdp-busypoll",
		})
		if !xsk.Update(0, sock) {
			return AFXDPPoint{}, fmt.Errorf("afxdp: bind slot 0 failed")
		}
		ops := []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4(),
			fpm.AFXDPOp(fpm.AFXDPConf{Map: xsk, Slot: 0})}
		prog, err := loader.Load(&ebpf.Program{Name: "afxdp_sweep_xsk", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
		if err != nil {
			return AFXDPPoint{}, err
		}
		if err := loader.AttachXDP(d.In, prog, "driver"); err != nil {
			return AFXDPPoint{}, err
		}
		app = ebpf.NewAFXDPApp(sock, d.Out, &sim.Meter{CPU: 1})
	default:
		return AFXDPPoint{}, fmt.Errorf("afxdp: unknown plane %q", plane)
	}

	frames := afxdpWorkload(d, flows, n)
	before := d.In.Stats()
	var rx sim.Meter // the RX/NAPI core
	for i := 0; i < n; i += batch {
		end := i + batch
		if end > n {
			end = n
		}
		d.In.ReceiveBatch(frames[i:end], 0, &rx)
		if app != nil {
			app.RunOnce(batch)
		}
	}
	if app != nil {
		app.Drain()
	}
	after := d.In.Stats()

	ok := after.RxPackets-before.RxPackets == uint64(n)
	if plane != "slowpath" {
		verdicts := (after.XDPDrops - before.XDPDrops) + (after.XDPTx - before.XDPTx) +
			(after.XDPRedirects - before.XDPRedirects) + (after.XDPPass - before.XDPPass)
		ok = ok && verdicts == uint64(n)
	}

	p := AFXDPPoint{
		Plane: plane, Batch: batch, Flows: flows,
		RxCoreCycles:   float64(rx.Total) / float64(n),
		Drops:          (after.XDPDrops - before.XDPDrops) + (after.RxDropped - before.RxDropped) + (after.TxDropped - before.TxDropped),
		ConservationOK: ok,
	}
	busiest := rx.Total
	if app != nil {
		ss := sock.Stats()
		// Every surviving redirect must have become exactly one RX
		// descriptor, and everything delivered must have been drained.
		p.ConservationOK = p.ConservationOK &&
			after.XDPRedirects-before.XDPRedirects == ss.RxDelivered &&
			app.Received() == ss.RxDelivered
		p.AppCoreCycles = float64(app.Meter.Total) / float64(n)
		p.Wakeups = ss.Wakeups
		p.Syscalls = app.Polls() + app.Sendtos()
		if app.Meter.Total > busiest {
			busiest = app.Meter.Total
		}
	}
	p.CyclesPerPkt = float64(busiest) / float64(n)
	p.PPS = float64(n) * sim.ClockHz / float64(busiest)
	return p, nil
}

// RenderAFXDP prints the sweep in the house table style.
func RenderAFXDP(r *AFXDPReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "AF_XDP three-plane race: %dB router workload, %d frames/point (VPP ref: %.1f c/p, %.2f Mpps)\n",
		r.FrameSize, r.Frames, r.VPPCyclesPerPkt, r.VPPPPS/1e6)
	fmt.Fprintf(&b, "%-16s %6s %6s %12s %12s %12s %10s %9s %8s\n",
		"plane", "batch", "flows", "busiest c/p", "rx-core c/p", "app-core c/p", "Mpps", "syscalls", "conserv")
	for _, p := range r.Points {
		appc := "-"
		if p.AppCoreCycles > 0 {
			appc = fmt.Sprintf("%.1f", p.AppCoreCycles)
		}
		cons := "ok"
		if !p.ConservationOK {
			cons = "VIOLATED"
		}
		fmt.Fprintf(&b, "%-16s %6d %6d %12.1f %12.1f %12s %10.2f %9d %8s\n",
			p.Plane, p.Batch, p.Flows, p.CyclesPerPkt, p.RxCoreCycles, appc, p.PPS/1e6, p.Syscalls, cons)
	}
	return b.String()
}
