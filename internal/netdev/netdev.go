// Package netdev models network devices and the wires between them: NICs,
// veth pairs, bridge/vxlan pseudo-devices, per-device statistics, and the
// XDP attach point that runs before any kernel processing — the earliest
// (and fastest) hook LinuxFP can place a fast path on.
package netdev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// Type discriminates device kinds.
type Type int

// Device types.
const (
	Physical Type = iota + 1
	Veth
	BridgeDev
	VXLAN
	Loopback
)

func (t Type) String() string {
	switch t {
	case Physical:
		return "physical"
	case Veth:
		return "veth"
	case BridgeDev:
		return "bridge"
	case VXLAN:
		return "vxlan"
	case Loopback:
		return "loopback"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// XDPAction is an XDP program verdict.
type XDPAction int

// XDP verdicts.
const (
	XDPAborted XDPAction = iota
	XDPDrop
	XDPPass
	XDPTx
	XDPRedirect
)

func (a XDPAction) String() string {
	switch a {
	case XDPAborted:
		return "XDP_ABORTED"
	case XDPDrop:
		return "XDP_DROP"
	case XDPPass:
		return "XDP_PASS"
	case XDPTx:
		return "XDP_TX"
	case XDPRedirect:
		return "XDP_REDIRECT"
	default:
		return fmt.Sprintf("xdp(%d)", int(a))
	}
}

// XDPBuff is the context handed to an XDP program: the raw frame plus the
// minimal driver metadata available before any sk_buff exists.
type XDPBuff struct {
	Data       []byte
	IfIndex    int
	RxQueue    int
	RedirectTo int // egress ifindex, set by the redirect helper
	Meter      *sim.Meter
}

// XDPHandler is an XDP program attachment.
type XDPHandler interface {
	HandleXDP(*XDPBuff) XDPAction
}

// Stack is the slow path a device delivers into when XDP passes the frame
// (or no program is attached). The kernel implements it.
type Stack interface {
	// DeliverFrame hands a received frame to the network stack.
	DeliverFrame(dev *Device, frame []byte, m *sim.Meter)
	// DeviceByIndex resolves redirect targets.
	DeviceByIndex(ifindex int) (*Device, bool)
}

// Stats are device packet counters.
type Stats struct {
	RxPackets, RxBytes   uint64
	TxPackets, TxBytes   uint64
	RxDropped, TxDropped uint64
	XDPDrops, XDPTx      uint64
	XDPRedirects         uint64
}

// Device is one network interface.
type Device struct {
	Name  string
	Index int
	Type  Type
	MAC   packet.HWAddr
	MTU   int

	mu     sync.RWMutex
	up     bool
	addrs  []packet.Prefix
	master int // enslaving bridge ifindex, 0 if none
	stats  Stats
	peer   *Device // wire endpoint (nil if down/unplugged)
	wire   Wire    // multi-endpoint attachment (switch); nil if none

	stack  Stack
	xdp    atomic.Pointer[xdpSlot]
	txHook func(frame []byte, m *sim.Meter) bool

	// Tap, when set, observes every frame the device receives (before XDP)
	// — the model's equivalent of a packet capture.
	Tap func(frame []byte)
}

// xdpSlot wraps the handler so attach/detach is a single atomic pointer
// swap, mirroring how program replacement must not disturb traffic.
type xdpSlot struct {
	h    XDPHandler
	mode string // "driver" or "generic"
}

// Wire is a multi-device segment (e.g. a LAN switch).
type Wire interface {
	// Send puts a frame on the segment from the given device.
	Send(from *Device, frame []byte, m *sim.Meter)
}

// New creates a device bound to a stack.
func New(name string, index int, typ Type, mac packet.HWAddr, stack Stack) *Device {
	return &Device{Name: name, Index: index, Type: typ, MAC: mac, MTU: 1500, stack: stack}
}

// SetUp brings the device up or down.
func (d *Device) SetUp(up bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.up = up
}

// IsUp reports administrative state.
func (d *Device) IsUp() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.up
}

// AddAddr assigns an IP address (with prefix) to the device.
func (d *Device) AddAddr(p packet.Prefix) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range d.addrs {
		if a == p {
			return
		}
	}
	d.addrs = append(d.addrs, p)
}

// DelAddr removes an assigned address, reporting whether it was present.
func (d *Device) DelAddr(p packet.Prefix) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, a := range d.addrs {
		if a == p {
			d.addrs = append(d.addrs[:i], d.addrs[i+1:]...)
			return true
		}
	}
	return false
}

// Addrs returns the assigned addresses.
func (d *Device) Addrs() []packet.Prefix {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]packet.Prefix(nil), d.addrs...)
}

// HasAddr reports whether ip is assigned to this device.
func (d *Device) HasAddr(ip packet.Addr) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, a := range d.addrs {
		if a.Addr == ip {
			return true
		}
	}
	return false
}

// SetMaster enslaves the device to a bridge (0 releases it).
func (d *Device) SetMaster(bridgeIfIndex int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.master = bridgeIfIndex
}

// Master reports the enslaving bridge ifindex (0 if none).
func (d *Device) Master() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.master
}

// AttachXDP installs an XDP program in the given mode ("driver" or
// "generic"). It replaces atomically: in-flight packets finish on the old
// program; new packets see the new one.
func (d *Device) AttachXDP(h XDPHandler, mode string) {
	if h == nil {
		d.xdp.Store(nil)
		return
	}
	d.xdp.Store(&xdpSlot{h: h, mode: mode})
}

// DetachXDP removes any XDP program.
func (d *Device) DetachXDP() { d.xdp.Store(nil) }

// XDPAttached reports whether a program is attached and its mode.
func (d *Device) XDPAttached() (bool, string) {
	s := d.xdp.Load()
	if s == nil {
		return false, ""
	}
	return true, s.mode
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// Connect wires two devices point-to-point (a cable, or a veth pair's
// cross-connect).
func Connect(a, b *Device) {
	a.mu.Lock()
	a.peer = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peer = a
	b.mu.Unlock()
}

// Disconnect unplugs the device from its peer.
func Disconnect(a *Device) {
	a.mu.Lock()
	p := a.peer
	a.peer = nil
	a.mu.Unlock()
	if p != nil {
		p.mu.Lock()
		if p.peer == a {
			p.peer = nil
		}
		p.mu.Unlock()
	}
}

// AttachWire connects the device to a multi-endpoint segment.
func (d *Device) AttachWire(w Wire) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wire = w
}

// Peer returns the point-to-point peer, if any.
func (d *Device) Peer() *Device {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.peer
}

// SetStack rebinds the device's receive path to a different stack — how a
// kernel-bypass platform (VPP/DPDK) takes a NIC away from the kernel.
func (d *Device) SetStack(s Stack) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stack = s
}

// SetTxHook intercepts transmission: pseudo-devices (VXLAN) encapsulate in
// the hook instead of putting the frame on a wire. A hook returning true
// consumes the frame.
func (d *Device) SetTxHook(fn func(frame []byte, m *sim.Meter) bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.txHook = fn
}

// Transmit sends a frame out the device: across the wire to the peer (or
// segment), which receives it as if off the NIC. Frames sent on a down or
// unplugged device are counted as drops.
func (d *Device) Transmit(frame []byte, m *sim.Meter) {
	d.mu.Lock()
	if !d.up {
		d.stats.TxDropped++
		d.mu.Unlock()
		return
	}
	d.stats.TxPackets++
	d.stats.TxBytes += uint64(len(frame))
	peer := d.peer
	wire := d.wire
	hook := d.txHook
	d.mu.Unlock()

	if hook != nil && hook(frame, m) {
		return
	}

	switch {
	case peer != nil:
		// Copy across the wire: the two ends must not alias memory.
		peer.Receive(append([]byte(nil), frame...), m)
	case wire != nil:
		wire.Send(d, append([]byte(nil), frame...), m)
	default:
		d.mu.Lock()
		d.stats.TxDropped++
		d.mu.Unlock()
	}
}

// Receive processes a frame arriving from the wire: tap, XDP program (if
// any), then delivery into the stack. This is the driver RX path.
func (d *Device) Receive(frame []byte, m *sim.Meter) {
	d.mu.Lock()
	if !d.up {
		d.stats.RxDropped++
		d.mu.Unlock()
		return
	}
	d.stats.RxPackets++
	d.stats.RxBytes += uint64(len(frame))
	tap := d.Tap
	d.mu.Unlock()

	if tap != nil {
		tap(frame)
	}
	m.ChargeBytes(len(frame))

	if slot := d.xdp.Load(); slot != nil {
		buff := &XDPBuff{Data: frame, IfIndex: d.Index, Meter: m}
		switch act := slot.h.HandleXDP(buff); act {
		case XDPDrop, XDPAborted:
			d.mu.Lock()
			d.stats.XDPDrops++
			d.mu.Unlock()
			return
		case XDPTx:
			d.mu.Lock()
			d.stats.XDPTx++
			d.mu.Unlock()
			m.Charge(sim.CostXDPTx)
			d.Transmit(buff.Data, m)
			return
		case XDPRedirect:
			d.mu.Lock()
			d.stats.XDPRedirects++
			d.mu.Unlock()
			if d.stack == nil {
				return
			}
			if out, ok := d.stack.DeviceByIndex(buff.RedirectTo); ok {
				m.Charge(sim.CostXDPRedirect)
				out.Transmit(buff.Data, m)
			}
			return
		case XDPPass:
			m.Charge(sim.CostXDPPass)
			frame = buff.Data // program may have adjusted the frame
		}
	}
	if d.stack != nil {
		d.stack.DeliverFrame(d, frame, m)
	}
}

// InjectLocal is used by traffic generators attached directly to a device:
// the frame enters the device's RX path as if it arrived from the wire.
func (d *Device) InjectLocal(frame []byte, m *sim.Meter) {
	d.Receive(frame, m)
}
