package fpm

import (
	"testing"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/kernel"
	"linuxfp/internal/sim"
)

func TestParseRequestLine(t *testing.T) {
	cases := []struct {
		in           string
		method, path string
		ok           bool
	}{
		{"GET /api/users HTTP/1.1\r\n\r\n", "GET", "/api/users", true},
		{"POST /admin/keys HTTP/1.1\r\n", "POST", "/admin/keys", true},
		{"DELETE / HTTP/1.1", "DELETE", "/", true},
		{"get /api HTTP/1.1", "", "", false},        // lowercase method
		{"GET noslash HTTP/1.1", "", "", false},     // path must start with /
		{"TOOLONGMETHOD / HTTP/1.1", "", "", false}, // method > 8 letters
		{"GET /unterminated", "", "", false},        // no space after path
		{"GET /bad\r\npath HTTP/1.1", "", "", false},
		{"", "", "", false},
		{" / HTTP/1.1", "", "", false}, // empty method
		{"\x00\x01\x02binary", "", "", false},
	}
	for _, c := range cases {
		m, p, ok := parseRequestLine([]byte(c.in))
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (string(m) != c.method || string(p) != c.path) {
			t.Errorf("%q: (%q, %q), want (%q, %q)", c.in, m, p, c.method, c.path)
		}
	}
}

func TestL7HTTPOpVerdicts(t *testing.T) {
	op := L7HTTPOp(L7Conf{Rules: []L7Rule{
		{Method: "POST", PathPrefix: "/admin", Allow: false},
		{Method: "GET", Allow: true},
	}})
	if op.Cost() != sim.CostL7Parse {
		t.Fatalf("op cost %v, want %v", op.Cost(), sim.CostL7Parse)
	}
	run := func(payload string) ebpf.Verdict {
		var m sim.Meter
		return op.Run(&ebpf.Ctx{Meter: &m, Msg: &kernel.SocketMsg{Payload: []byte(payload)}})
	}

	if v := run("POST /admin/keys HTTP/1.1\r\n\r\n"); v != ebpf.VerdictDrop {
		t.Fatalf("deny rule: %v", v)
	}
	if v := run("GET /api/users HTTP/1.1\r\n\r\n"); v != ebpf.VerdictNext {
		t.Fatalf("allow rule must chain to the splice: %v", v)
	}
	// POST outside /admin matches no rule: undecidable, punt to userspace.
	if v := run("POST /api/users HTTP/1.1\r\n\r\n"); v != ebpf.VerdictPass {
		t.Fatalf("unmatched request must punt: %v", v)
	}
	// Non-HTTP bytes (a mid-stream segment): punt, never drop.
	if v := run("\x8f\x02raw tls bytes"); v != ebpf.VerdictPass {
		t.Fatalf("unparseable segment must punt: %v", v)
	}
	// Nil message (no socket context): punt.
	var m sim.Meter
	if v := op.Run(&ebpf.Ctx{Meter: &m}); v != ebpf.VerdictPass {
		t.Fatalf("nil msg must punt: %v", v)
	}
}

func TestSockRedirOpRecordsTarget(t *testing.T) {
	k := kernel.New("t")
	sm := ebpf.NewSockMap("sm", k, 2)
	op := SockRedirOp(SockRedirConf{Map: sm, Slot: 1})
	var m sim.Meter
	c := &ebpf.Ctx{Meter: &m}
	if v := op.Run(c); v != ebpf.VerdictRedirect {
		t.Fatalf("verdict %v", v)
	}
	if c.RedirectSockMap != sm || c.RedirectSockKey != 1 {
		t.Fatalf("target not recorded: %v/%d", c.RedirectSockMap, c.RedirectSockKey)
	}
	if m.Total != sim.CostSockmapRedirect {
		t.Fatalf("charged %v, want %v", m.Total, sim.CostSockmapRedirect)
	}
}
