package kernel

import (
	"bytes"
	"testing"
	"testing/quick"

	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// TestFragmentationRoundTripProperty: for random payload sizes and egress
// MTUs, a UDP datagram forwarded through a narrow link must reassemble to
// exactly the original payload at the destination socket.
func TestFragmentationRoundTripProperty(t *testing.T) {
	f := func(sizeRaw uint16, mtuRaw uint8, seed byte) bool {
		size := int(sizeRaw)%3000 + 1
		mtu := 200 + int(mtuRaw)%1200

		src, r, dst := routerTopo2(t)
		r1, _ := r.DeviceByName("eth1")
		r1.MTU = mtu

		var got []byte
		delivered := false
		dst.RegisterSocket(packet.ProtoUDP, 9000, func(_ *Kernel, msg SocketMsg) {
			got = append([]byte(nil), msg.Payload...)
			delivered = true
		})
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = seed + byte(i)
		}
		var m sim.Meter
		if !src.SendUDP(0, packet.MustAddr("10.2.0.1"), 1234, 9000, payload, &m) {
			return false
		}
		return delivered && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// routerTopo2 is routerTopo without the testing.T plumbing differences —
// quick.Check calls it many times.
func routerTopo2(t *testing.T) (src, r, dst *Kernel) {
	t.Helper()
	return routerTopo(t)
}

// TestFragmentOffsetsNeverOverlapProperty: the fragments the router emits
// must tile the payload exactly: sorted by offset, contiguous, no overlap,
// MF set on all but the last.
func TestFragmentOffsetsNeverOverlapProperty(t *testing.T) {
	f := func(sizeRaw uint16) bool {
		size := int(sizeRaw)%2500 + 600 // force at least one split at MTU 600
		src, r, dst := routerTopo2(t)
		r1, _ := r.DeviceByName("eth1")
		r1.MTU = 600

		type frag struct {
			off  int
			size int
			mf   bool
		}
		var frags []frag
		d0, _ := dst.DeviceByName("eth0")
		d0.Tap = func(fr []byte) {
			p, err := packet.Decode(fr)
			if err != nil || p.IPv4 == nil {
				return
			}
			frags = append(frags, frag{
				off:  int(p.IPv4.FragOff) * 8,
				size: int(p.IPv4.TotalLen) - p.IPv4.HeaderLen(),
				mf:   p.IPv4.MoreFragments(),
			})
		}
		var m sim.Meter
		src.SendUDP(0, packet.MustAddr("10.2.0.1"), 1, 9000, make([]byte, size), &m)
		if len(frags) < 2 {
			return false
		}
		want := 0
		for i, fg := range frags {
			if fg.off != want {
				return false
			}
			want += fg.size
			if (i < len(frags)-1) != fg.mf {
				return false
			}
		}
		return want == size+packet.UDPHdrLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTTLEquivalenceProperty: for any TTL, forwarding either decrements it
// by exactly one or generates a time-exceeded — never both, never neither.
func TestTTLEquivalenceProperty(t *testing.T) {
	f := func(ttl uint8) bool {
		src, r, dst := routerTopo2(t)
		var m sim.Meter
		src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m) // resolve
		s0, _ := src.DeviceByName("eth0")
		rMAC, _ := src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)

		var arrivedTTL = -1
		d0, _ := dst.DeviceByName("eth0")
		d0.Tap = func(f []byte) {
			if et, l3 := packet.EtherTypeOf(f); et == packet.EtherTypeIPv4 &&
				packet.IPv4Proto(f, l3) == packet.ProtoUDP {
				arrivedTTL = int(packet.IPv4TTL(f, l3))
			}
		}
		u := packet.UDP{SrcPort: 1, DstPort: 2}
		srcIP, dstIP := packet.MustAddr("10.1.0.1"), packet.MustAddr("10.2.0.1")
		frame := packet.BuildIPv4(
			packet.Ethernet{Dst: rMAC, Src: s0.MAC, EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: ttl, Proto: packet.ProtoUDP, Src: srcIP, Dst: dstIP},
			u.Marshal(nil, srcIP, dstIP, nil),
		)
		expiredBefore := r.Stats().TTLExpired
		s0.Transmit(frame, &m)
		expired := r.Stats().TTLExpired > expiredBefore

		if ttl <= 1 {
			return expired && arrivedTTL == -1
		}
		return !expired && arrivedTTL == int(ttl)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestVethVsPhysicalReceiveCost: the device-class cost model must charge
// physical NICs more than veths (DMA + fresh skb vs backlog handoff).
func TestVethVsPhysicalReceiveCost(t *testing.T) {
	measure := func(typ netdev.Type) sim.Cycles {
		k := New("host")
		d := k.CreateDevice("d0", typ)
		d.SetUp(true)
		k.AddAddr("d0", packet.MustPrefix("10.0.0.1/24"))
		var got sim.Cycles
		k.RegisterSocket(packet.ProtoUDP, 7, func(_ *Kernel, msg SocketMsg) {
			got = msg.Meter.Total
		})
		u := packet.UDP{SrcPort: 1, DstPort: 7}
		srcIP, dstIP := packet.MustAddr("10.0.0.2"), packet.MustAddr("10.0.0.1")
		frame := packet.BuildIPv4(
			packet.Ethernet{Dst: d.MAC, Src: packet.MustHWAddr("02:00:00:00:00:99"), EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: srcIP, Dst: dstIP},
			u.Marshal(nil, srcIP, dstIP, nil),
		)
		var m sim.Meter
		d.Receive(frame, &m)
		return got
	}
	phys := measure(netdev.Physical)
	veth := measure(netdev.Veth)
	if phys <= veth {
		t.Fatalf("physical rx (%v) should cost more than veth rx (%v)", phys, veth)
	}
}

// TestNeighborAgingForcesFastPathPunt: when a neighbour entry goes STALE,
// the fast path must stop using it (punt) while the slow path still
// forwards and revalidates — the coherence rule for dynamic state.
func TestNeighborAgingForcesFastPathPunt(t *testing.T) {
	var now sim.Time
	src, r, dst := routerTopo2(t)
	r.SetClock(func() sim.Time { return now })

	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m) // resolve both sides

	// Fresh entry: usable by the fast path.
	if _, ok := r.Neigh.Resolved(packet.MustAddr("10.2.0.1"), now); !ok {
		t.Fatal("entry should be reachable")
	}
	// Let it age past ReachableTime.
	now = now.Add(sim.Duration(40 * sim.Second))
	if _, ok := r.Neigh.Resolved(packet.MustAddr("10.2.0.1"), now); ok {
		t.Fatal("stale entry still usable by the fast path")
	}
	// The slow path still delivers (it can use STALE and revalidate).
	icmpBase := dst.Stats().ICMPTx
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 2, nil, &m)
	if dst.Stats().ICMPTx != icmpBase+1 {
		t.Fatal("slow path failed on stale neighbour")
	}
}

// TestConntrackGCSweep: the kernel's periodic conntrack GC removes idle
// flows so the table does not grow without bound.
func TestConntrackGCSweep(t *testing.T) {
	var now sim.Time
	k := New("host")
	k.SetClock(func() sim.Time { return now })
	k.NF.Conntrack.SetTimeout(10 * sim.Second)
	for i := 0; i < 50; i++ {
		k.NF.Conntrack.Track(ctTuple(i), now)
	}
	if k.NF.Conntrack.Len() != 50 {
		t.Fatalf("len %d", k.NF.Conntrack.Len())
	}
	now = now.Add(sim.Duration(5 * sim.Second))
	for i := 0; i < 10; i++ { // keep 10 flows warm
		k.NF.Conntrack.Track(ctTuple(i), now)
	}
	now = now.Add(sim.Duration(6 * sim.Second))
	if removed := k.NF.Conntrack.Expire(now); removed != 40 {
		t.Fatalf("expired %d, want 40", removed)
	}
	if k.NF.Conntrack.Len() != 10 {
		t.Fatalf("len %d, want 10", k.NF.Conntrack.Len())
	}
}
