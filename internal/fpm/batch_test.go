package fpm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// frameUDP builds a UDP frame toward the DUT with explicit ports, for
// workloads that need flow diversity (RSS spreading, LB conn pinning).
func (r *routerRig) frameUDP(dst packet.Addr, sport, dport uint16, ttl uint8, payload []byte) []byte {
	gwMAC, ok := r.src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	if !ok {
		panic("gw unresolved")
	}
	u := packet.UDP{SrcPort: sport, DstPort: dport}
	srcIP := packet.MustAddr("10.1.0.1")
	return packet.BuildIPv4(
		packet.Ethernet{Dst: gwMAC, Src: r.srcDev.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: ttl, Proto: packet.ProtoUDP, Src: srcIP, Dst: dst},
		u.Marshal(nil, srcIP, dst, payload),
	)
}

// attachGatewayFPM is the full mixed pipeline the equivalence test runs:
// monitor (per-CPU counters) → LB (per-CPU conn table) → filter → router.
func (r *routerRig) attachGatewayFPM(t *testing.T) {
	t.Helper()
	loader := ebpf.NewLoader(r.dut)
	counters := ebpf.NewPerCPUArrayMap("mon", 256)
	conns := ebpf.NewPerCPUHashMap("lb_conns", 4096)
	backends := []packet.Addr{packet.MustAddr("10.100.1.10"), packet.MustAddr("10.100.2.10")}
	ops := []ebpf.Op{
		ParseEth(), ParseIPv4(), ParseL4(),
		MonitorOpPerCPU(counters),
		LBOp(LBConf{VIP: packet.MustAddr("10.99.0.1"), Port: 80, Backends: backends, PerCPUConns: conns}),
		FIBLookupOp(), FilterOp(FilterConf{Hook: netfilter.HookForward}), RewriteOp(), RedirectOp(RouterConf{}),
	}
	prog, err := loader.Load(&ebpf.Program{Name: "gw_fp", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.AttachXDP(r.in, prog, "driver"); err != nil {
		t.Fatal(err)
	}
}

// workloadSpec is one frame of the randomized mixed workload, materialized
// per world (MACs differ between rigs).
type workloadSpec struct {
	dst          packet.Addr
	sport, dport uint16
	ttl          uint8
	payload      []byte
}

func mixedWorkload(n int, seed int64) []workloadSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]workloadSpec, n)
	for i := range specs {
		s := workloadSpec{sport: uint16(1024 + rng.Intn(4000)), dport: 2000, ttl: uint8(1 + rng.Intn(64))}
		switch rng.Intn(8) {
		case 0:
			s.dst = packet.AddrFrom4(203, 0, 113, byte(rng.Intn(255))) // no route: punt + drop
		case 1:
			s.dst = packet.AddrFrom4(10, 100, 40, byte(rng.Intn(255))) // filtered: XDP drop
		case 2, 3:
			s.dst = packet.MustAddr("10.99.0.1") // VIP: DNAT + redirect
			s.dport = 80
		default:
			s.dst = packet.AddrFrom4(10, 100+byte(rng.Intn(50)), byte(rng.Intn(4)), byte(rng.Intn(255)))
		}
		s.payload = make([]byte, rng.Intn(64))
		rng.Read(s.payload)
		specs[i] = s
	}
	return specs
}

// TestBatchedJITEquivalence is the PR's central correctness property: the
// batched, JIT-fused fast path must be observably identical to the
// per-packet interpreted one — byte-identical delivered frames, identical
// device/XDP counters, identical kernel slow-path counters — over a
// randomized mixed workload (routed, filtered, unroutable, TTL-expiring,
// and VIP-load-balanced traffic). Only cycle totals may differ: that is
// the amortization being modeled.
func TestBatchedJITEquivalence(t *testing.T) {
	const frames = 900 // spans many 64-frame NAPI polls and bulk flushes
	specs := mixedWorkload(frames, 7)

	perPkt := newRouterRig(t)
	perPkt.attachGatewayFPM(t)
	perPkt.dut.SetSysctl("net.core.bpf_jit_enable", "0") // interpreted

	batched := newRouterRig(t)
	batched.attachGatewayFPM(t) // JIT stays default-on

	// World A: one packet at a time through the interpreted program.
	var mA sim.Meter
	for _, s := range specs {
		perPkt.in.Receive(perPkt.frameUDP(s.dst, s.sport, s.dport, s.ttl, s.payload), &mA)
	}
	// World B: the same workload as NAPI bursts through the fused program.
	batch := make([][]byte, frames)
	for i, s := range specs {
		batch[i] = batched.frameUDP(s.dst, s.sport, s.dport, s.ttl, s.payload)
	}
	var mB sim.Meter
	batched.in.ReceiveBatch(batch, 0, &mB)

	if len(perPkt.captured) == 0 {
		t.Fatal("workload delivered nothing; test is vacuous")
	}
	if len(perPkt.captured) != len(batched.captured) {
		t.Fatalf("delivered %d (per-packet) vs %d (batched)", len(perPkt.captured), len(batched.captured))
	}
	for i := range perPkt.captured {
		a, b := perPkt.captured[i], batched.captured[i]
		// Compare from L3 up: MACs are per-rig.
		if !bytes.Equal(a[packet.EthHdrLen:], b[packet.EthHdrLen:]) {
			t.Fatalf("frame %d differs:\nper-packet %x\nbatched    %x", i, a, b)
		}
	}
	if a, b := perPkt.in.Stats(), batched.in.Stats(); a != b {
		t.Fatalf("ingress device stats diverge:\nper-packet %+v\nbatched    %+v", a, b)
	}
	if a, b := perPkt.out.Stats(), batched.out.Stats(); a != b {
		t.Fatalf("egress device stats diverge:\nper-packet %+v\nbatched    %+v", a, b)
	}
	if a, b := perPkt.dut.Stats(), batched.dut.Stats(); a != b {
		t.Fatalf("kernel stats diverge:\nper-packet %+v\nbatched    %+v", a, b)
	}
	// The batched world must actually have been cheaper per delivered
	// packet, or the whole exercise models nothing.
	if mB.Total >= mA.Total {
		t.Fatalf("batched run not cheaper: %v vs %v cycles", mB.Total, mA.Total)
	}
	// Conservation over the workload itself (the rig's warmup ping arrived
	// before the program attached, so it has no XDP verdict).
	st := batched.in.Stats()
	if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != frames {
		t.Fatalf("verdict conservation: %d accounted of %d sent", got, frames)
	}
}

// TestBridgeBatchedEquivalence runs the bridge FPM over both paths. Source
// MACs are pre-learned so FDB learning (slow-path work driven by punts)
// cannot order-skew the comparison: batched XDP computes all verdicts of a
// poll before any punt is delivered, so mid-burst learning would let later
// frames fast-path in one world and punt in the other.
func TestBridgeBatchedEquivalence(t *testing.T) {
	mkWorld := func(jit bool) (*netdev.Device, [][]byte) {
		sw, _, hostDevs, ports := newBridgeRig(t, 3)
		br, _ := sw.BridgeByName("br0")
		for i, hd := range hostDevs {
			br.Learn(hd.MAC, 0, ports[i].Index, 0)
		}
		loader := ebpf.NewLoader(sw)
		ops := append([]ebpf.Op{ParseEth()}, BridgeOps(BridgeConf{Bridge: br})...)
		prog, err := loader.Load(&ebpf.Program{Name: "bridge_fp", Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
		if err != nil {
			t.Fatal(err)
		}
		if err := loader.AttachXDP(ports[0], prog, "driver"); err != nil {
			t.Fatal(err)
		}
		if !jit {
			sw.SetSysctl("net.core.bpf_jit_enable", "0")
		}
		var captured [][]byte
		hostDevs[1].Tap = func(f []byte) { captured = append(captured, append([]byte(nil), f...)) }

		rng := rand.New(rand.NewSource(11))
		frames := make([][]byte, 300)
		for i := range frames {
			dst := hostDevs[1+rng.Intn(2)].MAC
			if rng.Intn(6) == 0 {
				dst = packet.MustHWAddr("02:ee:ee:ee:ee:99") // unknown: punt + flood
			}
			payload := make([]byte, 20+rng.Intn(40))
			rng.Read(payload)
			frames[i] = packet.BuildEthernet(packet.Ethernet{Dst: dst, Src: hostDevs[0].MAC, EtherType: packet.EtherTypeIPv4}, payload)
		}
		var m sim.Meter
		if jit {
			ports[0].ReceiveBatch(frames, 0, &m)
		} else {
			for _, f := range frames {
				ports[0].Receive(f, &m)
			}
		}
		return ports[0], captured
	}
	wA, capA := mkWorld(false)
	wB, capB := mkWorld(true)
	if len(capA) == 0 {
		t.Fatal("bridge delivered nothing")
	}
	if len(capA) != len(capB) {
		t.Fatalf("delivered %d vs %d", len(capA), len(capB))
	}
	// Delivery order is FIFO per verdict class (bulk queues are FIFO; punts
	// are FIFO), but batching reorders ACROSS classes: redirected frames
	// flush at poll end while punted floods go up the stack afterwards —
	// exactly like real XDP. Compare as multisets of L3-up content.
	seen := make(map[string]int)
	for _, f := range capA {
		seen[string(f[packet.EthHdrLen:])]++
	}
	for i, f := range capB {
		k := string(f[packet.EthHdrLen:])
		if seen[k] == 0 {
			t.Fatalf("batched frame %d has no per-packet counterpart", i)
		}
		seen[k]--
	}
	if a, b := wA.Stats(), wB.Stats(); a != b {
		t.Fatalf("port stats diverge:\nper-packet %+v\nbatched    %+v", a, b)
	}
}

// TestDispatcherSwapRaceUnderBatchLoad hammers the batched fast path on 8
// RX queues while (a) the dispatcher atomically swaps between two loaded
// programs and (b) a control-plane goroutine reads/writes the per-CPU maps
// the data path updates. Run under -race this is the PR's memory-safety
// proof; the counter-conservation check proves no frame is double-counted
// or lost across swap boundaries and bulk flushes.
func TestDispatcherSwapRaceUnderBatchLoad(t *testing.T) {
	r := newRouterRig(t)
	r.sinkDev.Tap = nil // the rig's capture append is single-threaded only
	blocked := packet.MustPrefix("10.100.40.0/24")
	r.dut.IptAppend("FORWARD", netfilter.Rule{Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop})

	loader := ebpf.NewLoader(r.dut)
	counters := ebpf.NewPerCPUArrayMap("mon", 256)
	conns := ebpf.NewPerCPUHashMap("lb_conns", 8192)
	backends := []packet.Addr{packet.MustAddr("10.100.1.10"), packet.MustAddr("10.100.2.10")}
	mkProg := func(name string) *ebpf.Program {
		ops := []ebpf.Op{
			ParseEth(), ParseIPv4(), ParseL4(),
			MonitorOpPerCPU(counters),
			LBOp(LBConf{VIP: packet.MustAddr("10.99.0.1"), Port: 80, Backends: backends, PerCPUConns: conns}),
			FIBLookupOp(), FilterOp(FilterConf{Hook: netfilter.HookForward}), RewriteOp(), RedirectOp(RouterConf{}),
		}
		p, err := loader.Load(&ebpf.Program{Name: name, Hook: ebpf.HookXDP, Ops: ops, Default: ebpf.VerdictPass})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	progA, progB := mkProg("dp_a"), mkProg("dp_b")
	disp, err := loader.NewDispatcher("xdp_disp", ebpf.HookXDP)
	if err != nil {
		t.Fatal(err)
	}
	disp.Swap(progA)
	if err := loader.AttachXDP(r.in, disp.Prog, "driver"); err != nil {
		t.Fatal(err)
	}

	const total = 6000
	rxBase := r.in.Stats().RxPackets // warmup ping predates the program
	pool := r.dut.StartRxQueues(r.in, 8, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // dispatcher swapper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				disp.Swap(progB)
			} else {
				disp.Swap(progA)
			}
		}
	}()
	go func() { // control plane: aggregate reads + map writes during traffic
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = counters.Sum(int(packet.ProtoUDP))
			_ = conns.Len()
			conns.Update(int(i%64), 0xdead_0000+i%512, i)
			r.dut.SetSysctl("net.core.bpf_jit_enable", map[bool]string{true: "1", false: "0"}[i%3 != 0])
			r.dut.SetSysctl("net.core.bpf_jit_specialize", map[bool]string{true: "1", false: "0"}[i%5 != 0])
		}
	}()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < total; i++ {
		sport := uint16(1024 + rng.Intn(8000))
		var dst packet.Addr
		dport := uint16(2000)
		switch rng.Intn(6) {
		case 0:
			dst = packet.AddrFrom4(10, 100, 40, byte(rng.Intn(255))) // XDP drop
		case 1:
			dst = packet.AddrFrom4(203, 0, 113, 9) // punt, no route
		case 2:
			dst, dport = packet.MustAddr("10.99.0.1"), 80 // VIP
		default:
			dst = packet.AddrFrom4(10, 100+byte(rng.Intn(50)), 1, 7)
		}
		pool.Steer(r.frameUDP(dst, sport, dport, uint8(2+rng.Intn(60)), nil))
	}
	pool.Close()
	close(stop)
	wg.Wait()

	st := r.in.Stats()
	if st.RxPackets-rxBase != total {
		t.Fatalf("rx = %d, want %d", st.RxPackets-rxBase, total)
	}
	if got := st.XDPDrops + st.XDPTx + st.XDPRedirects + st.XDPPass; got != total {
		t.Fatalf("conservation violated: drops(%d)+tx(%d)+redir(%d)+pass(%d) = %d != injected %d",
			st.XDPDrops, st.XDPTx, st.XDPRedirects, st.XDPPass, got, total)
	}
	// Every well-formed UDP frame crossed the monitor op exactly once,
	// whichever program instance was installed when it ran.
	if got := counters.LookupAggregate()[packet.ProtoUDP]; got != total {
		t.Fatalf("monitor counted %d, want %d", got, total)
	}
}
