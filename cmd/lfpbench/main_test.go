package main

import "testing"

func TestRunKnownExperiments(t *testing.T) {
	// Only the cheap experiments here; the full set runs in bench_test.go.
	for _, exp := range []string{"table6", "fig10", "ablation"} {
		if err := run(exp, 2, 2); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
