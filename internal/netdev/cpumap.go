package netdev

import (
	"linuxfp/internal/sim"
)

// CPUMapBulkSize matches the kernel's CPU_MAP_BULK_SIZE: frames redirected
// to one target CPU during a NAPI poll are staged in a per-RX-queue bulk
// queue of at most 8 entries before being spilled into the target's
// ptr_ring.
const CPUMapBulkSize = 8

// CPURedirectTarget is the cpumap seen from the driver's redirect path — the
// BPF_MAP_TYPE_CPUMAP object lives in the ebpf package (it holds kernel
// state the netdev layer must not know about), and the XDP redirect helper
// plants it on the XDPBuff so runXDPBatch can stage and flush without a
// dependency cycle.
//
// The accounting contract mirrors the devmap path: the caller counts a
// successful enqueue as an XDP redirect immediately, and both methods return
// how many previously-enqueued frames were dropped (ring overflow, or an
// entry torn down mid-poll) so the caller can reclassify them as XDP
// exception drops before publishing its per-poll counters.
type CPURedirectTarget interface {
	// EnqueueCPU stages a frame for the target CPU on RX queue rxq,
	// spilling the stage into the CPU's ring when it already holds
	// CPUMapBulkSize frames. ok is false when the map has no entry for
	// cpu (an unresolvable redirect: the frame was not consumed).
	EnqueueCPU(rxq, cpu int, dev *Device, frame []byte, m *sim.Meter) (dropped int, ok bool)
	// FlushCPU spills every stage touched on rxq since the last flush and
	// rings each target kthread's doorbell once — the cpumap half of
	// xdp_do_flush, called once per NAPI poll.
	FlushCPU(rxq int, m *sim.Meter) (dropped int)
}
