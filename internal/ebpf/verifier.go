package ebpf

import (
	"errors"
	"fmt"
)

// Verifier errors.
var (
	ErrEmptyProgram = errors.New("ebpf: empty program")
	ErrTooManyInsns = errors.New("ebpf: program exceeds instruction limit")
	ErrMissingCap   = errors.New("ebpf: op requires capability unavailable on hook")
	ErrBadHook      = errors.New("ebpf: unknown hook")
)

// MaxInsns is the per-program instruction budget (the kernel's classic
// 4096-insn limit for unprivileged programs).
const MaxInsns = 4096

// HookCaps reports the capability set each hook provides. XDP has no
// sk_buff; both hook families can reach the LinuxFP helpers (the paper
// added them kernel-wide); redirect and tail calls work everywhere.
func HookCaps(h Hook) (Cap, error) {
	switch h {
	case HookXDP:
		return CapHelperFIB | CapHelperFDB | CapHelperIpt | CapHelperIPVS | CapTailCall | CapRedirect | CapAdjustHead | CapRingbuf, nil
	case HookTCIngress, HookTCEgress:
		return CapSKB | CapHelperFIB | CapHelperFDB | CapHelperIpt | CapHelperIPVS | CapTailCall | CapRedirect | CapRingbuf, nil
	case HookSKSKBParser, HookSKSKBVerdict:
		// Stream programs see socket-layer segments, not raw frames: the
		// sk_buff view, socket redirects, the ringbuf, and tail calls — no
		// packet-forwarding helpers.
		return CapSKB | CapTailCall | CapRedirect | CapRingbuf, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadHook, int(h))
	}
}

// Verifier statically checks programs before load, the way the kernel
// verifier gates bytecode: size budget and per-hook capability validity.
// (Memory safety is enforced dynamically by ops' bounds checks returning
// VerdictAborted, standing in for the verifier's range analysis.)
type Verifier struct {
	// MaxInsns overrides the default instruction budget when positive.
	MaxInsns int
}

// Verify checks one program against its declared hook.
func (v *Verifier) Verify(p *Program) error {
	if p == nil || len(p.Ops) == 0 {
		return ErrEmptyProgram
	}
	caps, err := HookCaps(p.Hook)
	if err != nil {
		return err
	}
	budget := MaxInsns
	if v != nil && v.MaxInsns > 0 {
		budget = v.MaxInsns
	}
	insns := 0
	for i, op := range p.Ops {
		insns += op.Insns()
		if missing := op.Caps() &^ caps; missing != 0 {
			return fmt.Errorf("%w: op %d (%s) needs %#x on %v", ErrMissingCap, i, op.Name(), uint32(missing), p.Hook)
		}
	}
	if insns > budget {
		return fmt.Errorf("%w: %d > %d", ErrTooManyInsns, insns, budget)
	}
	return nil
}
