package netfilter

import (
	"sync"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// CTState is a connection-tracking state as seen by rule matches.
type CTState int

// Conntrack states (condensed from the kernel's set).
const (
	CTNew CTState = iota + 1
	CTEstablished
	CTRelated
)

func (s CTState) String() string {
	switch s {
	case CTNew:
		return "NEW"
	case CTEstablished:
		return "ESTABLISHED"
	case CTRelated:
		return "RELATED"
	default:
		return "ANY"
	}
}

// Tuple identifies one direction of a flow.
type Tuple struct {
	Src, Dst         packet.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Reverse returns the reply-direction tuple.
func (t Tuple) Reverse() Tuple {
	return Tuple{Src: t.Dst, Dst: t.Src, Proto: t.Proto, SrcPort: t.DstPort, DstPort: t.SrcPort}
}

// Direction of a packet relative to its flow.
type Direction int

// Flow directions.
const (
	DirOriginal Direction = iota + 1
	DirReply
)

// Conn is one tracked connection.
type Conn struct {
	Orig     Tuple
	State    CTState
	Packets  [2]uint64 // per direction
	LastSeen sim.Time
}

// DefaultCTTimeout is the idle expiry for tracked flows.
const DefaultCTTimeout = 120 * sim.Second

// Conntrack is the connection tracking table. Both directions of a flow map
// to the same Conn — the tuple-symmetry invariant the tests check.
type Conntrack struct {
	mu      sync.Mutex
	conns   map[Tuple]*Conn // both tuple directions index the same *Conn
	timeout sim.Duration
}

// NewConntrack returns an empty tracker.
func NewConntrack() *Conntrack {
	return &Conntrack{conns: make(map[Tuple]*Conn), timeout: DefaultCTTimeout}
}

// SetTimeout overrides the idle expiry (for tests).
func (ct *Conntrack) SetTimeout(d sim.Duration) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.timeout = d
}

// Track processes one packet: it finds or creates the flow, updates
// counters and state, and returns the packet's conntrack state and
// direction. A packet in the reply direction of a NEW flow confirms it
// ESTABLISHED, as in the kernel.
func (ct *Conntrack) Track(t Tuple, now sim.Time) (CTState, Direction) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if c, ok := ct.conns[t]; ok && !ct.expiredLocked(c, now) {
		dir := DirOriginal
		if t == c.Orig.Reverse() && t != c.Orig {
			dir = DirReply
		}
		if dir == DirReply && c.State == CTNew {
			c.State = CTEstablished
		}
		c.Packets[dir-1]++
		c.LastSeen = now
		return c.State, dir
	}
	c := &Conn{Orig: t, State: CTNew, LastSeen: now}
	c.Packets[0] = 1
	ct.conns[t] = c
	ct.conns[t.Reverse()] = c
	return CTNew, DirOriginal
}

// Lookup returns the flow for a tuple without mutating it.
func (ct *Conntrack) Lookup(t Tuple, now sim.Time) (Conn, Direction, bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	c, ok := ct.conns[t]
	if !ok || ct.expiredLocked(c, now) {
		return Conn{}, 0, false
	}
	dir := DirOriginal
	if t == c.Orig.Reverse() && t != c.Orig {
		dir = DirReply
	}
	return *c, dir, true
}

// Expire sweeps idle flows, reporting how many connections were removed.
func (ct *Conntrack) Expire(now sim.Time) int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	seen := make(map[*Conn]bool)
	removed := 0
	for tup, c := range ct.conns {
		if ct.expiredLocked(c, now) {
			delete(ct.conns, tup)
			if !seen[c] {
				seen[c] = true
				removed++
			}
		}
	}
	return removed
}

// Len reports the number of tracked connections.
func (ct *Conntrack) Len() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	seen := make(map[*Conn]bool)
	for _, c := range ct.conns {
		seen[c] = true
	}
	return len(seen)
}

func (ct *Conntrack) expiredLocked(c *Conn, now sim.Time) bool {
	return now.Sub(c.LastSeen) > ct.timeout
}
