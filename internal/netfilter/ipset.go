package netfilter

import (
	"fmt"
	"sort"
	"sync"

	"linuxfp/internal/packet"
)

// IPSet is a named hash:net set: membership testing probes one hash table
// per distinct prefix length present, like the kernel implementation — so a
// 100-entry /32 blacklist is a single probe, which is exactly why
// aggregating iptables rules into an ipset flattens Fig. 8's scaling curve.
type IPSet struct {
	Name string
	Type string // "hash:ip" or "hash:net"

	mu      sync.RWMutex
	byBits  map[int]map[packet.Addr]bool // prefix length -> masked addr set
	bitsAsc []int                        // distinct lengths, ascending
}

// NewIPSet creates a set of the given type ("hash:ip" or "hash:net").
func NewIPSet(name, typ string) (*IPSet, error) {
	if typ != "hash:ip" && typ != "hash:net" {
		return nil, fmt.Errorf("netfilter: unsupported set type %q", typ)
	}
	return &IPSet{Name: name, Type: typ, byBits: make(map[int]map[packet.Addr]bool)}, nil
}

// Add inserts a prefix (a /32 for hash:ip sets).
func (s *IPSet) Add(p packet.Prefix) error {
	if s.Type == "hash:ip" && p.Bits != 32 {
		return fmt.Errorf("netfilter: hash:ip set %q only holds /32s", s.Name)
	}
	p = p.Masked()
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byBits[p.Bits]
	if !ok {
		m = make(map[packet.Addr]bool)
		s.byBits[p.Bits] = m
		s.bitsAsc = append(s.bitsAsc, p.Bits)
		sort.Ints(s.bitsAsc)
	}
	m[p.Addr] = true
	return nil
}

// Del removes a prefix, reporting whether it was present.
func (s *IPSet) Del(p packet.Prefix) bool {
	p = p.Masked()
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.byBits[p.Bits]
	if !ok || !m[p.Addr] {
		return false
	}
	delete(m, p.Addr)
	return true
}

// Contains reports whether addr matches any member prefix.
func (s *IPSet) Contains(addr packet.Addr) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Probe longest prefixes first, like the kernel (most specific wins;
	// for plain membership any hit suffices).
	for i := len(s.bitsAsc) - 1; i >= 0; i-- {
		bits := s.bitsAsc[i]
		masked := addr & packet.Prefix{Bits: bits}.Mask()
		if s.byBits[bits][masked] {
			return true
		}
	}
	return false
}

// Len reports the number of member prefixes.
func (s *IPSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.byBits {
		n += len(m)
	}
	return n
}

// Members returns the member prefixes in sorted order.
func (s *IPSet) Members() []packet.Prefix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []packet.Prefix
	for bits, m := range s.byBits {
		for a := range m {
			out = append(out, packet.Prefix{Addr: a, Bits: bits})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

// CreateSet registers a new named set (ipset create).
func (nf *Netfilter) CreateSet(name, typ string) (*IPSet, error) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if _, ok := nf.sets[name]; ok {
		return nil, fmt.Errorf("netfilter: set %q exists", name)
	}
	s, err := NewIPSet(name, typ)
	if err != nil {
		return nil, err
	}
	nf.sets[name] = s
	nf.gen.Add(1)
	return s, nil
}

// Set returns a named set.
func (nf *Netfilter) Set(name string) (*IPSet, bool) {
	nf.mu.RLock()
	defer nf.mu.RUnlock()
	s, ok := nf.sets[name]
	return s, ok
}

// DestroySet removes a named set (ipset destroy).
func (nf *Netfilter) DestroySet(name string) bool {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	_, ok := nf.sets[name]
	delete(nf.sets, name)
	return ok
}

// Sets lists set names in sorted order.
func (nf *Netfilter) Sets() []string {
	nf.mu.RLock()
	defer nf.mu.RUnlock()
	out := make([]string, 0, len(nf.sets))
	for n := range nf.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
