// Command flamegraph reproduces the paper's Fig. 1: the flame graph of
// Linux forwarding, showing that the overwhelming majority of packets walk
// one call chain — the hot spot LinuxFP's router FPM replaces. It builds
// the virtual-router testbed, traces the DUT kernel while forwarding a
// packet batch, and prints both a folded-stack dump (pipe into
// flamegraph.pl for the classic SVG) and an ASCII rendering.
package main

import (
	"flag"
	"fmt"
	"os"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
	"linuxfp/internal/testbed"
	"linuxfp/internal/traffic"
)

func main() {
	packets := flag.Int("n", 1000, "packets to trace")
	folded := flag.Bool("folded", false, "print folded stacks only (flamegraph.pl input)")
	flag.Parse()

	if err := run(*packets, *folded); err != nil {
		fmt.Fprintln(os.Stderr, "flamegraph:", err)
		os.Exit(1)
	}
}

func run(packets int, folded bool) error {
	d, err := testbed.Build(testbed.PlatformLinux, testbed.Scenario{})
	if err != nil {
		return err
	}
	defer d.Close()

	tracer := d.Kern.EnableTracing()
	prefixes := make([]packet.Prefix, testbed.RoutedPrefixes)
	for i := range prefixes {
		prefixes[i] = packet.Prefix{Addr: packet.AddrFrom4(10, 100+byte(i), 0, 0), Bits: 16}
	}
	gen := traffic.Pktgen{
		SrcMAC: d.SrcDev.MAC, DstMAC: d.In.MAC,
		SrcIP:    packet.MustAddr("10.1.0.1"),
		Prefixes: prefixes,
		Size:     traffic.MinFrameSize,
	}
	for i := 0; i < packets; i++ {
		var m sim.Meter
		d.In.Receive(gen.Frame(i), &m)
	}
	d.Kern.DisableTracing()

	if folded {
		fmt.Print(tracer.Folded())
		return nil
	}
	fmt.Printf("Fig. 1: flame graph of Linux forwarding (%d packets)\n\n", packets)
	fmt.Print(tracer.ASCII(60))
	fmt.Println("\nFolded stacks (for flamegraph.pl, use -folded):")
	fmt.Print(tracer.Folded())
	return nil
}
