GO ?= go

.PHONY: check vet build test race bench-smoke bench-json bench-diff obs-smoke trace-smoke

## check: everything CI runs — vet, build, tests, race detector, bench smoke,
## the observability pipeline smoke (lfptop + Prometheus export), and the
## flight-recorder smoke (lfptrace timelines + trace-ledger conservation)
check: vet build test race bench-smoke obs-smoke trace-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency suite — the sharded datapath, flow cache, and
## worker pools are exercised under the race detector
race:
	$(GO) test -race ./internal/...

## bench-smoke: a fast pass over the real-execution forwarding benchmarks
## (including the 4-shard parallel scaling bench and the batched fast
## path), plus a 1-iteration run of the ebpf/netdev/kernel micro-benchmarks
## (GRO coalescing, the batched TC runner, the cpumap producer/kthread
## benches, and the AF_XDP redirect-flush / forward-loop benches live in
## internal/ebpf and internal/kernel) so batch-path, cpumap, and XSK ring
## regressions fail fast; the steer micro-benches (table pick hot path and
## controller observe loop) ride along in internal/steer; no full -bench=.
## run needed. The sockmap micro-benches (established-flow hit, full-demux
## miss, socket-to-socket splice) ride along in internal/kernel.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkRealForward|BenchmarkRealLinuxFPFastPath' -benchtime 100x -benchmem .
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/ebpf/ ./internal/netdev/ ./internal/kernel/ ./internal/steer/

## obs-smoke: one lfptop frame (drop reasons + ring buffer + stage latency,
## with the Prometheus snapshot appended) and a linuxfpd run with -metrics,
## so the live view and both exporters stay wired end to end
obs-smoke:
	$(GO) run ./cmd/lfptop -once -metrics > /dev/null
	$(GO) run ./cmd/linuxfpd -metrics < /dev/null > /dev/null

## trace-smoke: one lfptrace pass in both table and JSON form — lfptrace
## exits nonzero if the trace ledger fails to conserve (every sampled chain
## must end in exactly one terminal verdict with no live chains left), so
## this is the end-to-end conservation gate, and `lfptop -once -json` keeps
## the machine-readable live view wired
trace-smoke:
	$(GO) run ./cmd/lfptrace > /dev/null
	$(GO) run ./cmd/lfptrace -shift 0 -json > /dev/null
	$(GO) run ./cmd/lfptop -once -json > /dev/null

## bench-json: regenerate BENCH_fastpath.json, BENCH_gro.json,
## BENCH_cpumap.json, BENCH_obs.json, BENCH_afxdp.json,
## BENCH_specialize.json, and BENCH_steer.json — the machine-readable
## batching x JIT sweep plus
## the pps-vs-cores curve for the fast path, the GRO-on/off workload x batch
## sweep for the slow path, the cpumap CPU fan-out sweep, the observability
## off/on overhead sweep across ring wakeup batches, the AF_XDP three-plane
## race (slow path vs in-kernel XDP vs userspace socket, wakeup and
## busy-poll), and the JIT specialization A/B (generic fused vs Load-time
## config-folded across router/bridge/gateway/ACL, with re-specialization
## latency under a config-churn storm), and the closed-loop steering sweep
## (static splitmix64 hash vs adaptive steer.Table placement over a zipf
## workload at 1/2/4/8 cpumap CPUs), and the socket-layer fast path race
## (full stack vs sockmap splice vs sockmap+L7 verdict at 1k/100k/1M
## concurrent flows)
bench-json:
	$(GO) run ./cmd/lfpbench -exp fastpath -fastpath-json BENCH_fastpath.json
	$(GO) run ./cmd/lfpbench -exp gro -gro-json BENCH_gro.json
	$(GO) run ./cmd/lfpbench -exp cpumap -cpumap-json BENCH_cpumap.json
	$(GO) run ./cmd/lfpbench -exp obs -obs-json BENCH_obs.json
	$(GO) run ./cmd/lfpbench -exp afxdp -afxdp-json BENCH_afxdp.json
	$(GO) run ./cmd/lfpbench -exp specialize -specialize-json BENCH_specialize.json
	$(GO) run ./cmd/lfpbench -exp steer -steer-json BENCH_steer.json
	$(GO) run ./cmd/lfpbench -exp sockmap -sockmap-json BENCH_sockmap.json

## bench-diff: regenerate every BENCH_*.json into a scratch dir and compare
## each against the committed baseline with cmd/benchdiff; any headline
## metric (pps/gain up, cycles/latency/drops down) moving >15% in the wrong
## direction fails the target. Run before committing perf-sensitive changes.
BENCH_TMP := /tmp/linuxfp-bench-diff
bench-diff:
	rm -rf $(BENCH_TMP) && mkdir -p $(BENCH_TMP)
	$(GO) build -o $(BENCH_TMP)/benchdiff ./cmd/benchdiff
	$(GO) run ./cmd/lfpbench -exp fastpath -fastpath-json $(BENCH_TMP)/BENCH_fastpath.json
	$(GO) run ./cmd/lfpbench -exp gro -gro-json $(BENCH_TMP)/BENCH_gro.json
	$(GO) run ./cmd/lfpbench -exp cpumap -cpumap-json $(BENCH_TMP)/BENCH_cpumap.json
	$(GO) run ./cmd/lfpbench -exp obs -obs-json $(BENCH_TMP)/BENCH_obs.json
	$(GO) run ./cmd/lfpbench -exp afxdp -afxdp-json $(BENCH_TMP)/BENCH_afxdp.json
	$(GO) run ./cmd/lfpbench -exp specialize -specialize-json $(BENCH_TMP)/BENCH_specialize.json
	$(GO) run ./cmd/lfpbench -exp steer -steer-json $(BENCH_TMP)/BENCH_steer.json
	$(GO) run ./cmd/lfpbench -exp sockmap -sockmap-json $(BENCH_TMP)/BENCH_sockmap.json
	@for b in fastpath gro cpumap obs afxdp specialize steer sockmap; do \
		$(BENCH_TMP)/benchdiff -old BENCH_$$b.json -new $(BENCH_TMP)/BENCH_$$b.json || exit 1; \
	done
	@rm -rf $(BENCH_TMP)
