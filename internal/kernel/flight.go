// Flight-recorder and flow-telemetry attachment. Both follow the static-key
// discipline of the other observers (Tracer, StageLat, DropNotify): detached,
// every instrumentation site in the datapath pays one atomic nil-pointer
// load; attached, the recorder is propagated to every device so RX sampling,
// XDP verdicts, and driver transmits stamp the same side table the kernel
// stages append to.
package kernel

import (
	"linuxfp/internal/flight"
	"linuxfp/internal/sim"
)

// EnableFlight attaches a fresh packet flight recorder built from cfg and
// propagates it to every registered device (devices created later inherit
// it). Returns the recorder for terminal/ledger reads.
func (k *Kernel) EnableFlight(cfg flight.Config) *flight.Recorder {
	r := flight.New(cfg)
	k.flight.Store(r)
	for _, d := range k.Devices() {
		d.SetFlight(r)
	}
	return r
}

// DisableFlight detaches the recorder from the kernel and its devices.
// Already-taken references stay readable.
func (k *Kernel) DisableFlight() {
	k.flight.Store(nil)
	for _, d := range k.Devices() {
		d.SetFlight(nil)
	}
}

// Flight returns the attached recorder, or nil — the static-key load the
// datapath gates on.
func (k *Kernel) Flight() *flight.Recorder {
	return k.flight.Load()
}

// EnableFlowTelemetry attaches a fresh flow table bounded at capPerShard
// entries per CPU shard (<=0 selects flight.DefaultFlowCap) and returns it.
func (k *Kernel) EnableFlowTelemetry(capPerShard int) *flight.FlowTable {
	t := flight.NewFlowTable(capPerShard)
	k.flowTab.Store(t)
	return t
}

// DisableFlowTelemetry detaches the flow table.
func (k *Kernel) DisableFlowTelemetry() {
	k.flowTab.Store(nil)
}

// FlowTelemetry returns the attached flow table, or nil.
func (k *Kernel) FlowTelemetry() *flight.FlowTable {
	return k.flowTab.Load()
}

// flightEnter opens a per-frame flight window at a stack entry point: nil
// recorder (the common case) costs this one load and a nil return.
func (k *Kernel) flightEnter(frame []byte, m *sim.Meter) (*flight.Recorder, *flight.Chain) {
	fr := k.flight.Load()
	if fr == nil {
		return nil, nil
	}
	return fr, fr.Enter(frame, m)
}

// flightSpan appends a waypoint to the CPU's current chain, if a recorder is
// attached and the packet was sampled.
func (k *Kernel) flightSpan(m *sim.Meter, st flight.Stage, v flight.Verdict) {
	if fr := k.flight.Load(); fr != nil {
		fr.SpanCur(m, st, v)
	}
}
