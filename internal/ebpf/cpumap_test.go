package ebpf

import (
	"testing"

	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

func newCpumapKernel(t testing.TB) (*kernel.Kernel, *netdev.Device) {
	t.Helper()
	k := kernel.New("dut")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	return k, d
}

func TestCPUMapUpdateLookupDelete(t *testing.T) {
	k, _ := newCpumapKernel(t)
	cm := NewCPUMap("cpu_map", k)
	if cm.Len() != MapCPUs {
		t.Fatalf("Len = %d, want %d", cm.Len(), MapCPUs)
	}
	if _, ok := cm.Lookup(3); ok {
		t.Fatal("empty slot reported occupied")
	}
	if cm.Update(-1, 64) || cm.Update(MapCPUs, 64) || cm.Update(0, 0) {
		t.Fatal("invalid update accepted")
	}
	if !cm.Update(3, 192) {
		t.Fatal("valid update rejected")
	}
	defer cm.Delete(3)
	if q, ok := cm.Lookup(3); !ok || q != 192 {
		t.Fatalf("Lookup(3) = %d/%v, want 192/true", q, ok)
	}
	// Replacing swaps in a new entry (the old kthread is stopped/drained).
	if !cm.Update(3, 64) {
		t.Fatal("replace rejected")
	}
	if q, _ := cm.Lookup(3); q != 64 {
		t.Fatalf("replaced qsize = %d, want 64", q)
	}
	if !cm.Delete(3) {
		t.Fatal("delete of live slot failed")
	}
	if cm.Delete(3) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := cm.Lookup(3); ok {
		t.Fatal("deleted slot still occupied")
	}
}

// TestCPUMapRingOverflowAccounting: with the kthread asleep (the doorbell
// only rings at flush), a 64-frame poll into a qsize-8 entry is fully
// deterministic: the first 8-frame spill fits, every later spill overflows.
// All 56 lost frames surface as dropped counts for the caller to reclassify.
func TestCPUMapRingOverflowAccounting(t *testing.T) {
	k, d := newCpumapKernel(t)
	cm := NewCPUMap("cpu_map", k)
	if !cm.Update(1, 8) {
		t.Fatal("update failed")
	}
	defer cm.Delete(1)

	frame := make([]byte, 64)
	var m sim.Meter
	dropped := 0
	for i := 0; i < 64; i++ {
		dr, ok := cm.EnqueueCPU(0, 1, d, frame, &m)
		if !ok {
			t.Fatalf("frame %d: enqueue to live entry failed", i)
		}
		dropped += dr
	}
	dropped += cm.FlushCPU(0, &m)
	if dropped != 56 {
		t.Fatalf("dropped = %d, want 56 (one 8-frame spill fits a qsize-8 ring)", dropped)
	}
	cm.Quiesce()
	st := k.Stats()
	if st.CpumapEnqueued != 8 || st.CpumapDrops != 56 {
		t.Fatalf("enqueued/drops = %d/%d, want 8/56", st.CpumapEnqueued, st.CpumapDrops)
	}
}

// TestCPUMapEnqueueMissingSlot: redirect to an empty slot is an
// unresolvable redirect (ok=false), not a stage or a drop count.
func TestCPUMapEnqueueMissingSlot(t *testing.T) {
	k, d := newCpumapKernel(t)
	cm := NewCPUMap("cpu_map", k)
	var m sim.Meter
	if _, ok := cm.EnqueueCPU(0, 9, d, make([]byte, 64), &m); ok {
		t.Fatal("enqueue to empty slot succeeded")
	}
	if _, ok := cm.EnqueueCPU(0, -1, d, nil, &m); ok {
		t.Fatal("enqueue to negative cpu succeeded")
	}
	if st := k.Stats(); st.CpumapEnqueued != 0 || st.CpumapDrops != 0 {
		t.Fatalf("counters moved on unresolvable redirect: %+v", st)
	}
}

func TestPerCPUArrayLookupAggregate(t *testing.T) {
	a := NewPerCPUArrayMap("mon", 4)
	a.Add(0, 1, 5)
	a.Add(3, 1, 7)
	a.Add(63, 2, 11)
	got := a.LookupAggregate()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	want := []uint64{0, 12, 11, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Matches the slot-by-slot Sum the callers used to hand-roll.
	for i := 0; i < 4; i++ {
		if got[i] != a.Sum(i) {
			t.Fatalf("slot %d: aggregate %d != Sum %d", i, got[i], a.Sum(i))
		}
	}
}

func TestPerCPUHashLookupAggregate(t *testing.T) {
	h := NewPerCPUHashMap("conns", 16)
	if v, ok := h.LookupAggregate(42); ok || v != 0 {
		t.Fatalf("missing key = %d/%v", v, ok)
	}
	h.Add(0, 42, 1)
	h.Add(5, 42, 2)
	h.Update(9, 42, 4)
	if v, ok := h.LookupAggregate(42); !ok || v != 7 {
		t.Fatalf("LookupAggregate = %d/%v, want 7/true", v, ok)
	}
	if v := h.Sum(42); v != 7 {
		t.Fatalf("Sum = %d, want 7", v)
	}
}

// BenchmarkCpumapProducerPoll measures the producer half only: staging,
// bulk spills, and one flush+doorbell for a 64-frame poll, with the kthread
// consuming concurrently.
func BenchmarkCpumapProducerPoll(b *testing.B) {
	k, d := newCpumapKernel(b)
	cm := NewCPUMap("cpu_map", k)
	cm.Update(1, 4096)
	defer cm.Delete(1)
	frame := packet.BuildEthernet(packet.Ethernet{EtherType: packet.EtherTypeIPv4}, make([]byte, 46))
	var m sim.Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			cm.EnqueueCPU(0, 1, d, frame, &m)
		}
		cm.FlushCPU(0, &m)
		if i%16 == 15 {
			cm.Quiesce() // keep the ring from running away from the kthread
		}
	}
	b.StopTimer()
	cm.Quiesce()
}
