package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// kat builds the reference segment used by the known-answer tests below:
//
//	IPv4  192.168.0.1 -> 192.168.0.2, ID 0x1234, DF, TTL 64, proto TCP
//	TCP   1024 -> 80, seq 100, ack 200, flags ACK, window 0x2000
//	data  "abcd"
//
// Both checksums are hand-computed in TestChecksumKnownAnswer; every other
// test in this file leans on those constants.
func katFrame(id uint16, seq uint32, payload string) []byte {
	eth := Ethernet{
		Dst:       HWAddr{0x02, 0, 0, 0, 0, 2},
		Src:       HWAddr{0x02, 0, 0, 0, 0, 1},
		EtherType: EtherTypeIPv4,
	}
	ip := IPv4{
		ID: id, Flags: IPv4DontFragment, TTL: 64, Proto: ProtoTCP,
		Src: AddrFrom4(192, 168, 0, 1), Dst: AddrFrom4(192, 168, 0, 2),
	}
	tcp := TCP{SrcPort: 1024, DstPort: 80, Seq: seq, Ack: 200, Flags: TCPAck, Window: 0x2000}
	return BuildTCP(eth, ip, tcp, []byte(payload))
}

// TestChecksumKnownAnswer pins the checksum math to hand-computed values so a
// regression in Checksum/ChecksumWithPseudo (or in the Marshal offsets) cannot
// hide behind "recompute matches recompute".
func TestChecksumKnownAnswer(t *testing.T) {
	f := katFrame(0x1234, 100, "abcd")
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen

	// IP header words: 4500 002c 1234 4000 4006 csum c0a8 0001 c0a8 0002.
	// Sum with csum=0: 4500+002c+1234+4000+4006+c0a8+0001+c0a8+0002
	//   = 0x158bb -> fold carry -> 0x58bb; complement = 0xa744.
	if got := binary.BigEndian.Uint16(f[l3+10 : l3+12]); got != 0xa744 {
		t.Errorf("IP checksum = %#04x, want 0xa744", got)
	}
	// TCP pseudo-header: c0a8 0001 c0a8 0002 0006 0018 (len 24) -> 0x8172.
	// TCP words: 0400 0050 0000 0064 0000 00c8 5010 2000 0000 0000 6162 6364
	//   -> 0x3a53 (carries folded). 0x8172+0x3a53 = 0xbbc5; complement 0x443a.
	if got := binary.BigEndian.Uint16(f[l4+16 : l4+18]); got != 0x443a {
		t.Errorf("TCP checksum = %#04x, want 0x443a", got)
	}
	// Both must verify as zero the way the GRO parser checks them.
	if Checksum(f[l3:l4]) != 0 {
		t.Error("IP header does not verify")
	}
	if ChecksumWithPseudo(IPv4Src(f, l3), IPv4Dst(f, l3), ProtoTCP, f[l4:]) != 0 {
		t.Error("TCP segment does not verify")
	}
}

// TestSetIPv4TotalLenIncremental checks the RFC 1624 incremental update
// against a hand-computed value: growing the KAT frame's total length from
// 44 to 48 moves the sum from 0x58bb to 0x58bf, so the checksum must land on
// 0xa740 — and equal a from-scratch recompute.
func TestSetIPv4TotalLenIncremental(t *testing.T) {
	f := katFrame(0x1234, 100, "abcd")
	l3 := EthHdrLen
	SetIPv4TotalLen(f, l3, 48)
	if got := binary.BigEndian.Uint16(f[l3+10 : l3+12]); got != 0xa740 {
		t.Errorf("incremental IP checksum = %#04x, want 0xa740", got)
	}
	g := append([]byte(nil), f...)
	RecomputeIPv4Checksum(g, l3)
	if !bytes.Equal(f, g) {
		t.Error("incremental update differs from recompute")
	}

	SetIPv4ID(f, l3, 0x1304)
	g = append([]byte(nil), f...)
	RecomputeIPv4Checksum(g, l3)
	if !bytes.Equal(f, g) {
		t.Error("SetIPv4ID incremental update differs from recompute")
	}
}

// TestSupersegmentChecksumKnownAnswer coalesces two KAT segments by hand the
// way the GRO engine does — append the payload, patch the total length,
// recompute the TCP checksum — and pins the resulting checksums.
func TestSupersegmentChecksumKnownAnswer(t *testing.T) {
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen
	super := append([]byte(nil), katFrame(0x1234, 100, "abcd")...)
	super = append(super, "efgh"...)
	SetIPv4TotalLen(super, l3, uint16(len(super)-l3))
	RecomputeTCPChecksum(super, l3, l4)

	if got := binary.BigEndian.Uint16(super[l3+10 : l3+12]); got != 0xa740 {
		t.Errorf("super IP checksum = %#04x, want 0xa740", got)
	}
	// Pseudo-header len grows 24->28: 0x8172+4 = 0x8176. Payload words gain
	// 6566+6768 on top of 0x3a53 -> 0x0722 (carry folded).
	// 0x8176+0x0722 = 0x8898; complement = 0x7767.
	if got := binary.BigEndian.Uint16(super[l4+16 : l4+18]); got != 0x7767 {
		t.Errorf("super TCP checksum = %#04x, want 0x7767", got)
	}
}

// TestSegmentTCPRoundTrip is the byte-parity core of the GRO design: merging
// two wire segments and splitting the supersegment back must reproduce the
// original frames bit for bit — IDs, sequence numbers, flags, checksums.
func TestSegmentTCPRoundTrip(t *testing.T) {
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen
	a := katFrame(0x1234, 100, "abcd")
	b := katFrame(0x1235, 104, "efgh")

	super := append([]byte(nil), a...)
	super = append(super, "efgh"...)
	SetIPv4TotalLen(super, l3, uint16(len(super)-l3))
	RecomputeTCPChecksum(super, l3, l4)

	segs := SegmentTCP(super, l3, l4, 4, false)
	if len(segs) != 2 {
		t.Fatalf("SegmentTCP produced %d segments, want 2", len(segs))
	}
	if !bytes.Equal(segs[0], a) {
		t.Errorf("segment 0 differs:\n got %x\nwant %x", segs[0], a)
	}
	if !bytes.Equal(segs[1], b) {
		t.Errorf("segment 1 differs:\n got %x\nwant %x", segs[1], b)
	}
}

// TestSegmentTCPPshLast: the PSH bit that ended the coalesce must reappear on
// the final split segment and only there.
func TestSegmentTCPPshLast(t *testing.T) {
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen
	super := append([]byte(nil), katFrame(0x1234, 100, "abcd")...)
	super = append(super, "efghijkl"...)
	SetIPv4TotalLen(super, l3, uint16(len(super)-l3))
	super[l4+13] |= byte(TCPPsh)
	RecomputeTCPChecksum(super, l3, l4)

	segs := SegmentTCP(super, l3, l4, 4, true)
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3", len(segs))
	}
	for i, s := range segs {
		psh := TCPRawFlags(s, l4)&TCPPsh != 0
		if want := i == len(segs)-1; psh != want {
			t.Errorf("segment %d PSH = %v, want %v", i, psh, want)
		}
		if Checksum(s[l3:l4]) != 0 {
			t.Errorf("segment %d IP checksum does not verify", i)
		}
		if ChecksumWithPseudo(IPv4Src(s, l3), IPv4Dst(s, l3), ProtoTCP, s[l4:]) != 0 {
			t.Errorf("segment %d TCP checksum does not verify", i)
		}
	}
}

// TestSegmentTCPSingle: a single (mss >= payload) passes through as one frame,
// byte-identical.
func TestSegmentTCPSingle(t *testing.T) {
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen
	a := katFrame(0x1234, 100, "abcd")
	segs := SegmentTCP(append([]byte(nil), a...), l3, l4, 1460, false)
	if len(segs) != 1 || !bytes.Equal(segs[0], a) {
		t.Fatalf("single-segment split not identity: %d segs", len(segs))
	}
}

// TestSegmentTCPAfterTTLDec mirrors the forwarding path: decrementing TTL on
// the supersegment then splitting must equal splitting first and decrementing
// each segment — the incremental-vs-recompute equivalence the GRO forward
// path relies on.
func TestSegmentTCPAfterTTLDec(t *testing.T) {
	l3, l4 := EthHdrLen, EthHdrLen+IPv4MinLen
	a := katFrame(0x1234, 100, "abcd")
	b := katFrame(0x1235, 104, "efgh")

	super := append([]byte(nil), a...)
	super = append(super, "efgh"...)
	SetIPv4TotalLen(super, l3, uint16(len(super)-l3))
	RecomputeTCPChecksum(super, l3, l4)
	DecTTL(super, l3)

	want := [][]byte{append([]byte(nil), a...), append([]byte(nil), b...)}
	for _, w := range want {
		DecTTL(w, l3)
	}
	segs := SegmentTCP(super, l3, l4, 4, false)
	for i := range want {
		if !bytes.Equal(segs[i], want[i]) {
			t.Errorf("segment %d differs after TTL decrement:\n got %x\nwant %x", i, segs[i], want[i])
		}
	}
}
