package flight

import (
	"testing"

	"linuxfp/internal/packet"
)

func tup(sport uint16) packet.FlowTuple {
	return packet.FlowTuple{
		Src: packet.AddrFrom4(10, 0, 0, 1), Dst: packet.AddrFrom4(10, 0, 1, 1),
		SrcPort: sport, DstPort: 80, Proto: 6,
	}
}

func TestFlowTopOrdering(t *testing.T) {
	ft := NewFlowTable(16)
	m := meterOn(0)
	// Flow s sends 2*s packets: Top must come back heaviest-first.
	for s := uint16(1); s <= 5; s++ {
		for i := uint16(0); i < 2*s; i++ {
			ft.Observe(tup(s), 100, s%2 == 0, m)
		}
	}
	top := ft.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) returned %d rows", len(top))
	}
	wantPorts := []uint16{5, 4, 3}
	for i, f := range top {
		if f.Key.SrcPort != wantPorts[i] {
			t.Fatalf("row %d is port %d, want %d (order %v)", i, f.Key.SrcPort, wantPorts[i], top)
		}
		if f.Pkts != uint64(2*f.Key.SrcPort) || f.Bytes != 100*f.Pkts {
			t.Fatalf("row %d miscounted: %+v", i, f)
		}
	}
	if ft.Tracked() != 5 || ft.Evictions() != 0 {
		t.Fatalf("tracked=%d evictions=%d, want 5/0", ft.Tracked(), ft.Evictions())
	}
}

func TestFlowFastPct(t *testing.T) {
	ft := NewFlowTable(8)
	m := meterOn(0)
	for i := 0; i < 3; i++ {
		ft.Observe(tup(9), 64, true, m)
	}
	ft.Observe(tup(9), 64, false, m)
	f := ft.Top(1)[0]
	if f.Fast != 3 || f.Slow != 1 || f.FastPct() != 75 {
		t.Fatalf("fast=%d slow=%d pct=%.1f, want 3/1/75", f.Fast, f.Slow, f.FastPct())
	}
	if (FlowEntry{}).FastPct() != 0 {
		t.Fatal("empty entry FastPct must be 0, not NaN")
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ft := NewFlowTable(2) // tiny shard: heavy hitter + one churn slot
	m := meterOn(0)
	// Heavy hitter: 100 packets on port 1.
	for i := 0; i < 100; i++ {
		ft.Observe(tup(1), 60, true, m)
	}
	// Mouse flows churn through the remaining slot, one packet each.
	for s := uint16(100); s < 150; s++ {
		ft.Observe(tup(s), 60, false, m)
	}
	if ft.Tracked() != 2 {
		t.Fatalf("tracked=%d, capacity must bound the shard at 2", ft.Tracked())
	}
	if ft.Evictions() == 0 {
		t.Fatal("replace-min churn must count evictions")
	}
	top := ft.Top(0)
	if top[0].Key.SrcPort != 1 || top[0].Pkts != 100 || top[0].Err != 0 {
		t.Fatalf("heavy hitter displaced or corrupted: %+v", top[0])
	}
	// The survivor mouse inherited the evicted minimum as its error bound:
	// counted pkts overestimate its true 1 packet by at most Err.
	mouse := top[1]
	if mouse.Err == 0 || mouse.Pkts <= mouse.Err-0 {
		// pkts = inherited + 1, so pkts > err always.
		t.Fatalf("mouse entry %+v: want inherited err bound < pkts", mouse)
	}
	if mouse.Pkts-mouse.Err != 1 {
		t.Fatalf("mouse true count = pkts-err = %d, want 1 (%+v)", mouse.Pkts-mouse.Err, mouse)
	}
}

func TestHeavyHitterSurvivesChurn(t *testing.T) {
	ft := NewFlowTable(4)
	m := meterOn(0)
	for i := 0; i < 1000; i++ {
		ft.Observe(tup(7), 60, true, m) // elephant
		ft.Observe(tup(uint16(1000+i)), 60, false, m)
	}
	top := ft.Top(1)
	if top[0].Key.SrcPort != 7 {
		t.Fatalf("elephant evicted by mice: top=%+v", top[0])
	}
	if top[0].Pkts != 1000 {
		t.Fatalf("elephant count %d, want exact 1000 (never evicted → err 0)", top[0].Pkts)
	}
}

func TestNoteDropAttributesToLastFlow(t *testing.T) {
	ft := NewFlowTable(8)
	m := meterOn(0)
	ft.Observe(tup(1), 60, false, m)
	ft.Observe(tup(2), 60, false, m)
	ft.NoteDrop(m) // the drop follows its own observe on the same CPU
	ft.NoteDrop(m)
	top := ft.Top(0)
	for _, f := range top {
		want := uint64(0)
		if f.Key.SrcPort == 2 {
			want = 2
		}
		if f.Drops != want {
			t.Fatalf("port %d drops=%d, want %d", f.Key.SrcPort, f.Drops, want)
		}
	}
	// A drop with no prior observe on that CPU is a no-op, not a panic.
	NewFlowTable(8).NoteDrop(meterOn(3))
}

func TestFlowShardsPerCPU(t *testing.T) {
	ft := NewFlowTable(2)
	// The same tuple observed on different CPUs lands on different shards;
	// Top must merge them back into one row.
	ft.Observe(tup(1), 60, true, meterOn(0))
	ft.Observe(tup(1), 60, false, meterOn(1))
	ft.Observe(tup(1), 60, true, meterOn(2))
	top := ft.Top(0)
	if len(top) != 1 || top[0].Pkts != 3 || top[0].Fast != 2 || top[0].Slow != 1 {
		t.Fatalf("cross-shard merge wrong: %v", top)
	}
	if ft.Tracked() != 3 { // one entry per shard touched
		t.Fatalf("tracked=%d, want 3 shard entries", ft.Tracked())
	}
	if ft.Capacity() != 2*NumCPUSlots {
		t.Fatalf("capacity=%d, want %d", ft.Capacity(), 2*NumCPUSlots)
	}
}
