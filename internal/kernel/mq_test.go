package kernel

import (
	"bytes"
	"sync"
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// fwdFrame builds a forwardable UDP frame addressed to the router's ingress
// MAC.
func fwdFrame(dstMAC, srcMAC packet.HWAddr, src, dst packet.Addr, sport, dport uint16) []byte {
	u := packet.UDP{SrcPort: sport, DstPort: dport}
	return packet.BuildIPv4(
		packet.Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		u.Marshal(nil, src, dst, make([]byte, 18)),
	)
}

// newFwdRouter builds a standalone two-port router with permanent neighbours
// on both sides, so forwarding never blocks on ARP and ICMP errors always
// have a resolved return path.
func newFwdRouter(t testing.TB) (r *Kernel, r0, r1 *netdev.Device, srcMAC, dstMAC packet.HWAddr) {
	t.Helper()
	r = New("router")
	r0 = r.CreateDevice("eth0", netdev.Physical)
	r1 = r.CreateDevice("eth1", netdev.Physical)
	r0.SetUp(true)
	r1.SetUp(true)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24")))
	must(r.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24")))
	r.SetSysctl("net.ipv4.ip_forward", "1")
	srcMAC = packet.MustHWAddr("02:00:00:00:01:01")
	dstMAC = packet.MustHWAddr("02:00:00:00:02:01")
	must(r.AddNeigh("eth0", packet.MustAddr("10.1.0.1"), srcMAC))
	// All 16 destination hosts the tests address resolve permanently.
	for i := 0; i < 16; i++ {
		mac := dstMAC
		mac[5] = byte(i + 1)
		must(r.AddNeigh("eth1", packet.AddrFrom4(10, 2, 0, byte(i+1)), mac))
	}
	return r, r0, r1, srcMAC, dstMAC
}

// TestShardedDatapathRace hammers the datapath from concurrent virtual CPUs
// while the control plane mutates routes, neighbours, firewall rules, and the
// flow-cache sysctl. Run under -race this exercises the lock-free device/TC
// tables, the per-shard counters, and the seqlocked flow cache; the counter
// sum proves no frame was double-counted or lost.
func TestShardedDatapathRace(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)
	r.SetSysctl("net.core.flow_cache", "1")

	const workers = 8
	const perWorker = 2048

	done := make(chan struct{})
	var mut sync.WaitGroup
	mutate := func(fn func(i int)) {
		mut.Add(1)
		go func() {
			defer mut.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					fn(i)
				}
			}
		}()
	}
	// Route churn on a prefix the traffic never matches: every add/delete
	// bumps the FIB generation and invalidates all memoized decisions.
	churnPrefix := packet.MustPrefix("10.50.0.0/16")
	mutate(func(i int) {
		r.AddRoute(fib.Route{Prefix: churnPrefix, Gateway: packet.MustAddr("10.2.0.1"), OutIf: 2})
		r.DelRoute(churnPrefix)
	})
	// Neighbour churn on a host no frame is addressed to.
	mutate(func(i int) {
		r.Neigh.AddPermanent(packet.MustAddr("10.2.0.200"), packet.MustHWAddr("02:00:00:00:02:c8"), 2)
		r.Neigh.Delete(packet.MustAddr("10.2.0.200"))
	})
	// Firewall churn with a rule that matches nothing: the traffic stays
	// accepted, but chain evaluation toggles on and off and the netfilter
	// generation bumps.
	never := packet.MustPrefix("10.99.0.0/24")
	mutate(func(i int) {
		r.IptAppend("FORWARD", netfilter.Rule{
			Match: netfilter.Match{Dst: &never}, Target: netfilter.VerdictDrop,
		})
		r.IptFlush("FORWARD")
	})
	// Sysctl churn: the cache flips on and off underneath the workers.
	mutate(func(i int) {
		r.SetSysctl("net.core.flow_cache", "0")
		r.SetSysctl("net.core.flow_cache", "1")
	})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := sim.Meter{CPU: w} // the per-CPU shard contract
			if w%2 == 0 {
				// Even CPUs deliver NAPI-style bursts.
				batch := make([][]byte, 0, 64)
				for i := 0; i < perWorker; i++ {
					batch = append(batch, fwdFrame(r0.MAC, srcMAC,
						packet.MustAddr("10.1.0.1"), packet.AddrFrom4(10, 2, 0, byte(i%16+1)),
						uint16(40000+i%128), 9))
					if len(batch) == 64 {
						r.DeliverBatch(r0, batch, &m)
						batch = batch[:0]
					}
				}
				r.DeliverBatch(r0, batch, &m)
			} else {
				for i := 0; i < perWorker; i++ {
					frame := fwdFrame(r0.MAC, srcMAC,
						packet.MustAddr("10.1.0.1"), packet.AddrFrom4(10, 2, 0, byte(i%16+1)),
						uint16(40000+i%128), 9)
					r.DeliverFrame(r0, frame, &m)
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	mut.Wait()

	s := r.Stats()
	const total = workers * perWorker
	if s.Forwarded != total {
		t.Errorf("forwarded %d of %d injected frames (stats %+v)", s.Forwarded, total, s)
	}
	if s.Dropped != 0 || s.NoRoute != 0 || s.TTLExpired != 0 || s.FilterDropped != 0 {
		t.Errorf("unexpected drops under churn: %+v", s)
	}
	// Every frame probed the cache exactly once while it was enabled.
	if s.FlowHits+s.FlowMisses == 0 {
		t.Error("flow cache never probed despite sysctl on")
	}
}

// TestRxWorkerPoolCounts drives the per-queue worker goroutines end to end:
// frames steered by RSS hash, drained by per-CPU workers, counted exactly
// once across shards.
func TestRxWorkerPoolCounts(t *testing.T) {
	r, r0, _, srcMAC, _ := newFwdRouter(t)

	pool := r.StartRxQueues(r0, 4, 16)
	const frames = 1000
	for i := 0; i < frames; i++ {
		pool.Steer(fwdFrame(r0.MAC, srcMAC,
			packet.AddrFrom4(10, 1, 0, byte(i%200+1)), packet.AddrFrom4(10, 2, 0, byte(i%16+1)),
			uint16(40000+i), 9))
	}
	pool.Close()
	r0.SetRxQueues(1)

	var steered uint64
	busy := 0
	for _, qs := range pool.Stats() {
		steered += qs.Packets
		if qs.Packets > 0 {
			busy++
		}
	}
	if steered != frames {
		t.Errorf("queues drained %d frames, want %d", steered, frames)
	}
	if busy < 2 {
		t.Errorf("only %d of 4 queues saw traffic — RSS not spreading", busy)
	}
	if pool.MaxQueueCycles() <= 0 {
		t.Error("busiest queue reports no cycles")
	}
	if got := r.Stats().Forwarded; got != frames {
		t.Errorf("forwarded %d, want %d (stats %+v)", got, frames, r.Stats())
	}
}

// TestFlowCacheHitMatchesSlowPath proves a cache hit emits a byte-identical
// frame to the slow path: same TTL decrement, same MAC rewrite, same egress.
func TestFlowCacheHitMatchesSlowPath(t *testing.T) {
	r, r0, r1, srcMAC, _ := newFwdRouter(t)
	var egress [][]byte
	r1.SetTxHook(func(frame []byte, m *sim.Meter) bool {
		egress = append(egress, append([]byte(nil), frame...))
		return true
	})

	mk := func() []byte {
		return fwdFrame(r0.MAC, srcMAC, packet.MustAddr("10.1.0.1"), packet.MustAddr("10.2.0.1"), 777, 9)
	}
	var m sim.Meter

	// Slow path reference (cache off).
	r.DeliverFrame(r0, mk(), &m)
	// Cache on: first packet misses and installs, second hits.
	r.SetSysctl("net.core.flow_cache", "1")
	r.DeliverFrame(r0, mk(), &m)
	r.DeliverFrame(r0, mk(), &m)

	if len(egress) != 3 {
		t.Fatalf("egress saw %d frames, want 3", len(egress))
	}
	if !bytes.Equal(egress[0], egress[1]) || !bytes.Equal(egress[0], egress[2]) {
		t.Errorf("cache path diverges from slow path:\nslow: %x\nmiss: %x\nhit:  %x",
			egress[0], egress[1], egress[2])
	}
	s := r.Stats()
	if s.FlowHits < 1 {
		t.Errorf("no flow-cache hit recorded: %+v", s)
	}
	if s.Forwarded != 3 {
		t.Errorf("forwarded %d, want 3", s.Forwarded)
	}
}

// TestFlowCacheInvalidation flips every input the cache memoizes — route,
// neighbour, firewall, sysctl — and checks the very next packet observes the
// new state (the generation-bump coherence rule).
func TestFlowCacheInvalidation(t *testing.T) {
	r, r0, r1, srcMAC, _ := newFwdRouter(t)
	// A third port for rerouting.
	r2 := r.CreateDevice("eth2", netdev.Physical)
	r2.SetUp(true)
	if err := r.AddAddr("eth2", packet.MustPrefix("10.3.0.254/24")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddNeigh("eth2", packet.MustAddr("10.3.0.1"), packet.MustHWAddr("02:00:00:00:03:01")); err != nil {
		t.Fatal(err)
	}

	var onR1, onR2 [][]byte
	r1.SetTxHook(func(frame []byte, m *sim.Meter) bool {
		onR1 = append(onR1, append([]byte(nil), frame...))
		return true
	})
	r2.SetTxHook(func(frame []byte, m *sim.Meter) bool {
		onR2 = append(onR2, append([]byte(nil), frame...))
		return true
	})

	r.SetSysctl("net.core.flow_cache", "1")
	var m sim.Meter
	inject := func() {
		r.DeliverFrame(r0, fwdFrame(r0.MAC, srcMAC,
			packet.MustAddr("10.1.0.1"), packet.MustAddr("10.2.0.1"), 777, 9), &m)
	}

	// Warm: install + verify a hit toward eth1.
	inject()
	inject()
	if r.Stats().FlowHits < 1 {
		t.Fatalf("cache not warm: %+v", r.Stats())
	}
	if len(onR1) != 2 {
		t.Fatalf("warmup frames on eth1: %d, want 2", len(onR1))
	}

	// (a) A more specific route steals the flow: the cached decision must
	// die with the FIB generation bump, not keep forwarding out eth1.
	steal := packet.MustPrefix("10.2.0.0/25")
	r.AddRoute(fib.Route{Prefix: steal, Gateway: packet.MustAddr("10.3.0.1"), OutIf: r2.Index})
	inject()
	if len(onR2) != 1 || len(onR1) != 2 {
		t.Fatalf("route change not observed: eth1=%d eth2=%d", len(onR1), len(onR2))
	}
	r.DelRoute(steal)

	// (b) The next hop's MAC changes: the next packet must carry it.
	newMAC := packet.MustHWAddr("02:00:00:00:02:ee")
	if err := r.AddNeigh("eth1", packet.MustAddr("10.2.0.1"), newMAC); err != nil {
		t.Fatal(err)
	}
	inject()
	if len(onR1) != 3 {
		t.Fatalf("frame did not return to eth1 after route delete: %d", len(onR1))
	}
	if got := packet.EthDst(onR1[2]); got != newMAC {
		t.Errorf("stale neighbour MAC after update: got %v, want %v", got, newMAC)
	}

	// (c) A drop rule appears: cached forwarding must not bypass it.
	blocked := packet.MustPrefix("10.2.0.0/24")
	if err := r.IptAppend("FORWARD", netfilter.Rule{
		Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop,
	}); err != nil {
		t.Fatal(err)
	}
	fwdBefore := r.Stats().Forwarded
	inject()
	if len(onR1) != 3 {
		t.Errorf("packet bypassed new FORWARD drop rule via cache")
	}
	if s := r.Stats(); s.FilterDropped != 1 || s.Forwarded != fwdBefore {
		t.Errorf("drop not accounted: %+v", s)
	}
	if err := r.IptFlush("FORWARD"); err != nil {
		t.Fatal(err)
	}

	// (d) Sysctl off: forwarding continues on the slow path, no new hits.
	inject()
	inject() // re-warm after the flush bumped generations
	hits := r.Stats().FlowHits
	r.SetSysctl("net.core.flow_cache", "0")
	inject()
	if r.Stats().FlowHits != hits {
		t.Errorf("cache hit while disabled")
	}
	if len(onR1) != 6 {
		t.Errorf("slow path lost frames after disable: eth1=%d, want 6", len(onR1))
	}
}

// TestL2CacheStationMove warms the bridged fast path and then moves the
// destination station to another port: the bridge generation bump must kill
// the memoized decision immediately.
func TestL2CacheStationMove(t *testing.T) {
	swk := New("sw")
	_, br := swk.CreateBridge("br0")
	brDev, _ := swk.DeviceByName("br0")
	brDev.SetUp(true)

	ports := make([]*netdev.Device, 3)
	for i := range ports {
		ports[i] = swk.CreateDevice("swp"+string(rune('0'+i)), netdev.Physical)
		ports[i].SetUp(true)
		if err := swk.AddBridgePort("br0", ports[i].Name); err != nil {
			t.Fatal(err)
		}
	}
	macA := packet.MustHWAddr("02:00:00:00:0a:01")
	macB := packet.MustHWAddr("02:00:00:00:0b:01")
	br.AddStatic(macA, 0, ports[0].Index)
	br.AddStatic(macB, 0, ports[1].Index)
	swk.SetSysctl("net.core.flow_cache", "1")

	var onP1, onP2 int
	ports[1].SetTxHook(func(frame []byte, m *sim.Meter) bool { onP1++; return true })
	ports[2].SetTxHook(func(frame []byte, m *sim.Meter) bool { onP2++; return true })

	var m sim.Meter
	inject := func() {
		swk.DeliverFrame(ports[0], fwdFrame(macB, macA,
			packet.MustAddr("10.9.0.1"), packet.MustAddr("10.9.0.2"), 5000, 5001), &m)
	}
	inject() // learn + install
	inject() // hit
	if onP1 != 2 || onP2 != 0 {
		t.Fatalf("warmup egress p1=%d p2=%d, want 2/0", onP1, onP2)
	}
	if swk.Stats().FlowHits < 1 {
		t.Fatalf("L2 cache never hit: %+v", swk.Stats())
	}

	// Station B moves to port 2.
	br.AddStatic(macB, 0, ports[2].Index)
	inject()
	if onP2 != 1 || onP1 != 2 {
		t.Errorf("station move not observed: p1=%d p2=%d, want 2/1", onP1, onP2)
	}
}
