// Package k8s models the paper's Kubernetes evaluation (§VI-A2): a
// three-node cluster running the Flannel CNI's vxlan backend, pods attached
// through veth pairs to a cni0 bridge, kube-proxy's iptables footprint, and
// netperf TCP_RR pod pairs. Everything is configured exclusively through
// the Linux API surface (bridges, routes, neighbours, FDB entries, sysctls,
// iptables) — which is the point: LinuxFP accelerates the unmodified plugin
// because the plugin only ever talks to Linux.
package k8s

import (
	"fmt"

	"linuxfp/internal/core"
	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the node count (paper: 3 — one primary, two workers).
	Nodes int
	// Accelerated runs a LinuxFP controller on every node (the only
	// change the paper makes: "install and run LinuxFP on each worker").
	Accelerated bool
	// KubeProxyRules is the FORWARD-chain footprint kube-proxy leaves on
	// every node (service chains walked per packet).
	KubeProxyRules int
}

// DefaultKubeProxyRules approximates a small cluster with a few dozen
// services.
const DefaultKubeProxyRules = 120

// VNI is flannel's default vxlan network identifier.
const VNI = 1

// Node is one cluster member.
type Node struct {
	Name    string
	Index   int
	K       *kernel.Kernel
	IP      packet.Addr
	Eth0    *netdev.Device
	CNI0    *netdev.Device
	Flannel *netdev.Device

	Controller *core.Controller
	Pods       []*Pod
}

// PodCIDR returns the node's 10.244.<i>.0/24 allocation.
func (n *Node) PodCIDR() packet.Prefix {
	return packet.Prefix{Addr: packet.AddrFrom4(10, 244, byte(n.Index), 0), Bits: 24}
}

// Pod is one pod: its own network namespace with a veth into cni0.
type Pod struct {
	Name string
	K    *kernel.Kernel
	IP   packet.Addr
	Eth0 *netdev.Device
	Node *Node
}

// Cluster is the whole testbed.
type Cluster struct {
	Config   Config
	Underlay *netdev.Switch
	Nodes    []*Node
}

// NewCluster builds and wires the cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.KubeProxyRules == 0 {
		cfg.KubeProxyRules = DefaultKubeProxyRules
	}
	c := &Cluster{Config: cfg, Underlay: netdev.NewSwitch()}

	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{Name: fmt.Sprintf("node%d", i), Index: i, K: kernel.New(fmt.Sprintf("node%d", i))}
		n.IP = packet.AddrFrom4(192, 168, 0, byte(10+i))

		n.Eth0 = n.K.CreateDevice("eth0", netdev.Physical)
		n.Eth0.SetUp(true)
		c.Underlay.Attach(n.Eth0)
		n.K.AddAddr("eth0", packet.Prefix{Addr: n.IP, Bits: 24})

		// cni0: the bridge the CNI plugs pods into.
		n.K.CreateBridge("cni0")
		n.CNI0, _ = n.K.DeviceByName("cni0")
		n.K.SetLinkUp("cni0", true)
		gw := packet.Prefix{Addr: packet.AddrFrom4(10, 244, byte(i), 1), Bits: 24}
		n.K.AddAddr("cni0", gw)

		// flannel.1: the vxlan VTEP.
		n.Flannel = n.K.CreateVXLAN("flannel.1", VNI, n.IP)
		n.K.SetLinkUp("flannel.1", true)
		n.K.AddAddr("flannel.1", packet.Prefix{Addr: packet.AddrFrom4(10, 244, byte(i), 0), Bits: 32})

		n.K.SetSysctl("net.ipv4.ip_forward", "1")
		n.K.SetSysctl("net.bridge.bridge-nf-call-iptables", "1")
		installKubeProxyRules(n.K, cfg.KubeProxyRules)

		c.Nodes = append(c.Nodes, n)
	}

	// Flannel's route/ARP/FDB programming for every remote node.
	for _, n := range c.Nodes {
		for _, remote := range c.Nodes {
			if remote == n {
				continue
			}
			vtepIP := packet.AddrFrom4(10, 244, byte(remote.Index), 0)
			n.K.AddRoute(fib.Route{
				Prefix:  remote.PodCIDR(),
				Gateway: vtepIP,
				OutIf:   n.Flannel.Index,
			})
			n.K.Neigh.AddPermanent(vtepIP, remote.Flannel.MAC, n.Flannel.Index)
			if err := n.K.VXLANAddFDB("flannel.1", remote.Flannel.MAC, remote.IP); err != nil {
				return nil, err
			}
		}
	}

	if cfg.Accelerated {
		for _, n := range c.Nodes {
			n.Controller = core.New(n.K, core.Options{})
			n.Controller.Start()
			n.Controller.Sync()
		}
	}
	return c, nil
}

// installKubeProxyRules approximates kube-proxy's iptables footprint: a
// service-matching walk every packet performs in FORWARD, the same jungle
// again in POSTROUTING (KUBE-POSTROUTING masquerade checks, traversed by
// br_netfilter on bridged egress), a conntrack accept, and the pod-CIDR
// accept.
func installKubeProxyRules(k *kernel.Kernel, rules int) {
	for i := 0; i < rules-2 && i >= 0; i++ {
		svc := packet.Prefix{Addr: packet.AddrFrom4(10, 96, byte(i/250), byte(i%250+1)), Bits: 32}
		k.IptAppend("FORWARD", netfilter.Rule{
			Match:   netfilter.Match{Dst: &svc, Proto: packet.ProtoTCP},
			Comment: fmt.Sprintf("KUBE-SVC-%d", i),
		})
		k.IptAppend("POSTROUTING", netfilter.Rule{
			Match:   netfilter.Match{Dst: &svc, Proto: packet.ProtoTCP},
			Comment: fmt.Sprintf("KUBE-POSTROUTING-%d", i),
		})
	}
	k.IptAppend("FORWARD", netfilter.Rule{
		Match:  netfilter.Match{CTState: netfilter.CTEstablished},
		Target: netfilter.VerdictAccept, Comment: "KUBE-FORWARD established",
	})
	pods := packet.MustPrefix("10.244.0.0/16")
	k.IptAppend("FORWARD", netfilter.Rule{
		Match:  netfilter.Match{Src: &pods},
		Target: netfilter.VerdictAccept, Comment: "KUBE-FORWARD pod cidr",
	})
}

// AddPod creates a pod on a node: a fresh namespace, a veth pair with the
// host side enslaved to cni0, an address from the pod CIDR and a default
// route — exactly the CNI plugin's job.
func (c *Cluster) AddPod(node *Node) (*Pod, error) {
	idx := len(node.Pods)
	p := &Pod{
		Name: fmt.Sprintf("%s-pod%d", node.Name, idx),
		K:    kernel.New(fmt.Sprintf("%s-pod%d", node.Name, idx)),
		Node: node,
	}
	p.IP = packet.AddrFrom4(10, 244, byte(node.Index), byte(idx+2))

	hostSide := node.K.CreateDevice(fmt.Sprintf("veth%d", idx), netdev.Veth)
	p.Eth0 = p.K.CreateDevice("eth0", netdev.Veth)
	netdev.Connect(hostSide, p.Eth0)
	hostSide.SetUp(true)
	p.Eth0.SetUp(true)
	if err := node.K.AddBridgePort("cni0", hostSide.Name); err != nil {
		return nil, err
	}
	p.K.AddAddr("eth0", packet.Prefix{Addr: p.IP, Bits: 24})
	gw := packet.AddrFrom4(10, 244, byte(node.Index), 1)
	p.K.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: gw, OutIf: p.Eth0.Index})

	node.Pods = append(node.Pods, p)
	if node.Controller != nil {
		node.Controller.Sync() // the controller notices the new port
	}
	return p, nil
}

// NetperfPort is the netperf data port the server pod listens on.
const NetperfPort = 12865

// StartNetserver registers the netperf server in a pod: every request gets
// a same-size response.
func (p *Pod) StartNetserver() {
	p.K.RegisterSocket(packet.ProtoTCP, NetperfPort, func(k *kernel.Kernel, msg kernel.SocketMsg) {
		k.SendTCPSegment(msg.Dst, msg.Src, msg.DstPort, msg.SrcPort,
			packet.TCPPsh|packet.TCPAck, msg.Payload, msg.Meter)
	})
}

// RRProbe runs request/response transactions from client to server and
// returns the mean per-transaction cycle cost across the whole path (both
// pods and every node hop). The response delivery is confirmed per
// transaction; a lost transaction is an error.
func RRProbe(client, server *Pod, transactions int) (sim.Cycles, error) {
	server.StartNetserver()
	got := 0
	client.K.RegisterSocket(packet.ProtoTCP, 45001, func(_ *kernel.Kernel, msg kernel.SocketMsg) {
		got++
	})
	defer client.K.UnregisterSocket(packet.ProtoTCP, 45001)

	// Warmup: resolve ARP, teach FDBs, establish conntrack flow.
	for i := 0; i < 3; i++ {
		var m sim.Meter
		client.K.SendTCPSegment(client.IP, server.IP, 45001, NetperfPort,
			packet.TCPPsh|packet.TCPAck, []byte("warm"), &m)
	}
	if got == 0 {
		return 0, fmt.Errorf("k8s: no connectivity between %s and %s", client.Name, server.Name)
	}

	got = 0
	var total sim.Cycles
	for i := 0; i < transactions; i++ {
		var m sim.Meter
		client.K.SendTCPSegment(client.IP, server.IP, 45001, NetperfPort,
			packet.TCPPsh|packet.TCPAck, []byte("rr-payload-1"), &m)
		total += m.Total
	}
	if got != transactions {
		return 0, fmt.Errorf("k8s: %d/%d transactions completed", got, transactions)
	}
	return total / sim.Cycles(transactions), nil
}

// PodScale converts per-transaction stack time into end-to-end netperf
// TCP_RR time. The paper's Table V reports milliseconds per transaction —
// dominated by container scheduling, TCP stack wakeups and netperf itself,
// none of which this model simulates. The multiplicative scale preserves
// exactly the quantity the experiment isolates: the relative cost of the
// network path. See EXPERIMENTS.md.
const PodScale = 2200

// RRResult summarizes a pod-to-pod latency measurement.
type RRResult struct {
	MeanMs   float64
	P99Ms    float64
	StdDevMs float64
	Cycles   sim.Cycles
}

// MeasureRR measures scaled TCP_RR latency between two pods with
// per-transaction jitter, reproducing Table V's statistics.
func MeasureRR(client, server *Pod, transactions int, seed uint64) (RRResult, error) {
	base, err := RRProbe(client, server, transactions)
	if err != nil {
		return RRResult{}, err
	}
	rng := sim.NewRNG(seed)
	stats := sim.NewStats()
	baseMs := sim.PerPacketDuration(base).Millis() * PodScale
	for i := 0; i < 2000; i++ {
		v := baseMs * rng.LogNormal(0, 0.18)
		if rng.Float64() < 0.01 {
			v += rng.ExpFloat64() * baseMs
		}
		stats.Observe(v)
	}
	return RRResult{
		MeanMs: stats.Mean(), P99Ms: stats.P99(), StdDevMs: stats.StdDev(),
		Cycles: base,
	}, nil
}

// Throughput reports aggregate transactions/second for n closed-loop pod
// pairs (Fig. 9's y-axis): each pair completes 1/RTT transactions per
// second.
func Throughput(rtt RRResult, pairs int) float64 {
	if rtt.MeanMs <= 0 {
		return 0
	}
	return float64(pairs) * 1000 / rtt.MeanMs
}
