// Package bridge implements the kernel's L2 bridging subsystem: the
// forwarding database (FDB) with learning and ageing, per-port VLAN
// filtering, flooding decisions, and a simplified 802.1D spanning tree.
//
// The split matches the paper's Table I: the fast path performs FDB lookups
// (through the bpf_fdb_lookup helper, which reads this same structure) and
// forwards; the slow path owns learning on misses, ageing, flooding, and STP
// protocol processing.
package bridge

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"linuxfp/internal/drop"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// PortState is the STP state of a bridge port.
type PortState int

// Port states per 802.1D.
const (
	Disabled PortState = iota + 1
	Blocking
	Listening
	Learning
	Forwarding
)

func (s PortState) String() string {
	switch s {
	case Disabled:
		return "disabled"
	case Blocking:
		return "blocking"
	case Listening:
		return "listening"
	case Learning:
		return "learning"
	case Forwarding:
		return "forwarding"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DefaultAgeingTime matches the kernel's 300-second FDB ageing default.
const DefaultAgeingTime = 300 * sim.Second

// Port is one interface enslaved to a bridge.
type Port struct {
	IfIndex  int
	State    PortState
	PVID     uint16          // VLAN assigned to untagged ingress traffic
	Tagged   map[uint16]bool // VLANs admitted tagged
	Untagged map[uint16]bool // VLANs emitted untagged on egress
	PathCost int
	stp      stpPort
}

// FDBKey identifies an FDB entry: MAC within a VLAN.
type FDBKey struct {
	MAC  packet.HWAddr
	VLAN uint16
}

// FDBEntry is one learned or static forwarding entry.
type FDBEntry struct {
	Key      FDBKey
	Port     int // ifindex
	Static   bool
	LastSeen sim.Time
}

// Decision is the outcome of a bridge forwarding lookup.
type Decision struct {
	Egress []int       // ifindexes to transmit on (one for a hit, many for flood)
	Flood  bool        // FDB miss / broadcast / multicast
	Local  bool        // destined to the bridge device itself (deliver up)
	Drop   bool        // blocked by STP or VLAN filtering
	Reason drop.Reason // why, when Drop is set (skb_drop_reason)
}

// Bridge is one bridge device. It is safe for concurrent use.
type Bridge struct {
	Name    string
	IfIndex int // ifindex of the bridge device itself
	MAC     packet.HWAddr

	mu            sync.RWMutex
	stpEnabled    bool
	vlanFiltering bool
	ageing        sim.Duration
	ports         map[int]*Port
	fdb           map[FDBKey]*FDBEntry
	stp           stpState
	gen           atomic.Uint64 // bumped whenever a forwarding decision input changes
	confGen       atomic.Uint64 // bumped only on STP/VLAN-filtering reconfiguration
}

// Gen reports the bridge generation, bumped on any change that could alter a
// forwarding decision: FDB binding changes, port membership, STP or VLAN
// reconfiguration, port state transitions. The L2 fast-cache validates
// memoized decisions against it.
func (b *Bridge) Gen() uint64 { return b.gen.Load() }

// ConfGen reports the *configuration* generation: bumped only when STP or
// VLAN filtering is toggled, never by data-plane churn (FDB learning, port
// state flaps). The JIT specializer guards configuration folds against it —
// Gen would be useless there, as every learned MAC would invalidate the
// specialized body.
func (b *Bridge) ConfGen() uint64 { return b.confGen.Load() }

// New returns an empty bridge with default ageing.
func New(name string, ifIndex int, mac packet.HWAddr) *Bridge {
	b := &Bridge{
		Name:    name,
		IfIndex: ifIndex,
		MAC:     mac,
		ageing:  DefaultAgeingTime,
		ports:   make(map[int]*Port),
		fdb:     make(map[FDBKey]*FDBEntry),
	}
	b.stp.init(mac)
	return b
}

// SetSTP enables or disables spanning tree processing.
func (b *Bridge) SetSTP(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stpEnabled = on
	b.gen.Add(1)
	b.confGen.Add(1)
	if !on {
		for _, p := range b.ports {
			if p.State != Disabled {
				p.State = Forwarding
			}
		}
	}
}

// STPEnabled reports whether STP is on.
func (b *Bridge) STPEnabled() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.stpEnabled
}

// SetVLANFiltering toggles VLAN-aware bridging.
func (b *Bridge) SetVLANFiltering(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.vlanFiltering = on
	b.gen.Add(1)
	b.confGen.Add(1)
}

// VLANFiltering reports whether VLAN filtering is on.
func (b *Bridge) VLANFiltering() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.vlanFiltering
}

// SetAgeingTime configures the FDB ageing interval.
func (b *Bridge) SetAgeingTime(d sim.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ageing = d
	b.gen.Add(1)
}

// AddPort enslaves an interface. New ports start forwarding unless STP is
// enabled, in which case they begin blocking until the protocol promotes
// them.
func (b *Bridge) AddPort(ifIndex int) *Port {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := &Port{
		IfIndex:  ifIndex,
		State:    Forwarding,
		PVID:     1,
		Tagged:   make(map[uint16]bool),
		Untagged: map[uint16]bool{1: true},
		PathCost: 100,
	}
	if b.stpEnabled {
		p.State = Blocking
	}
	b.ports[ifIndex] = p
	b.gen.Add(1)
	return p
}

// DelPort removes an interface and flushes its FDB entries.
func (b *Bridge) DelPort(ifIndex int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ports[ifIndex]; !ok {
		return false
	}
	delete(b.ports, ifIndex)
	for k, e := range b.fdb {
		if e.Port == ifIndex {
			delete(b.fdb, k)
		}
	}
	b.gen.Add(1)
	return true
}

// Port returns the port for an ifindex.
func (b *Bridge) Port(ifIndex int) (*Port, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.ports[ifIndex]
	return p, ok
}

// Ports returns the enslaved ifindexes in ascending order.
func (b *Bridge) Ports() []int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]int, 0, len(b.ports))
	for i := range b.ports {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// IngressVLAN classifies an incoming frame's VLAN on a port, applying the
// admission rules when VLAN filtering is on. ok=false means drop.
func (b *Bridge) IngressVLAN(ifIndex int, tag uint16) (vlan uint16, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, exists := b.ports[ifIndex]
	if !exists {
		return 0, false
	}
	if !b.vlanFiltering {
		// VLAN-unaware bridge: everything shares the single FDB space.
		return 0, true
	}
	if tag == 0 {
		if p.PVID == 0 {
			return 0, false // no PVID: untagged traffic dropped
		}
		return p.PVID, true
	}
	if p.Tagged[tag] || p.PVID == tag {
		return tag, true
	}
	return 0, false
}

// EgressAllowed reports whether vlan may leave via the port, and whether it
// should be transmitted tagged.
func (b *Bridge) EgressAllowed(ifIndex int, vlan uint16) (tagged, ok bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, exists := b.ports[ifIndex]
	if !exists {
		return false, false
	}
	if !b.vlanFiltering || vlan == 0 {
		return false, true
	}
	if p.Untagged[vlan] || p.PVID == vlan {
		return false, true
	}
	if p.Tagged[vlan] {
		return true, true
	}
	return false, false
}

// Learn records the source MAC behind a port. Learning only happens in
// Learning or Forwarding state. Static entries are never overwritten.
func (b *Bridge) Learn(mac packet.HWAddr, vlan uint16, ifIndex int, now sim.Time) {
	if mac.IsMulticast() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.ports[ifIndex]
	if !ok || (p.State != Learning && p.State != Forwarding) {
		return
	}
	k := FDBKey{MAC: mac, VLAN: vlan}
	if e, ok := b.fdb[k]; ok {
		if !e.Static {
			if e.Port != ifIndex {
				// Station moved: memoized decisions are now wrong.
				b.gen.Add(1)
			}
			e.Port = ifIndex
			e.LastSeen = now
		}
		return
	}
	b.fdb[k] = &FDBEntry{Key: k, Port: ifIndex, LastSeen: now}
	b.gen.Add(1)
}

// AddStatic installs a static FDB entry (bridge fdb add ... static).
func (b *Bridge) AddStatic(mac packet.HWAddr, vlan uint16, ifIndex int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := FDBKey{MAC: mac, VLAN: vlan}
	b.fdb[k] = &FDBEntry{Key: k, Port: ifIndex, Static: true}
	b.gen.Add(1)
}

// FDBLookup resolves the egress port for a MAC/VLAN. Expired entries miss
// (ageing is enforced lazily here and eagerly in Age). This is exactly what
// the bpf_fdb_lookup helper exposes to the fast path.
func (b *Bridge) FDBLookup(mac packet.HWAddr, vlan uint16, now sim.Time) (int, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.fdb[FDBKey{MAC: mac, VLAN: vlan}]
	if !ok {
		return 0, false
	}
	if !e.Static && now.Sub(e.LastSeen) > b.ageing {
		return 0, false
	}
	return e.Port, true
}

// Age sweeps expired dynamic entries (the slow path's periodic gc_timer).
// It reports how many entries were removed.
func (b *Bridge) Age(now sim.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	removed := 0
	for k, e := range b.fdb {
		if !e.Static && now.Sub(e.LastSeen) > b.ageing {
			delete(b.fdb, k)
			removed++
		}
	}
	if removed > 0 {
		b.gen.Add(1)
	}
	return removed
}

// FDBEntries returns a snapshot of the FDB sorted by (VLAN, MAC).
func (b *Bridge) FDBEntries() []FDBEntry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]FDBEntry, 0, len(b.fdb))
	for _, e := range b.fdb {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.VLAN != out[j].Key.VLAN {
			return out[i].Key.VLAN < out[j].Key.VLAN
		}
		for x := 0; x < 6; x++ {
			if out[i].Key.MAC[x] != out[j].Key.MAC[x] {
				return out[i].Key.MAC[x] < out[j].Key.MAC[x]
			}
		}
		return false
	})
	return out
}

// FDBExpiry reports the virtual time at which the FDB entry for mac/vlan
// stops being valid (NeverExpires for static entries). The L2 fast-cache
// copies the expiry at fill time so a cached decision cannot outlive the
// binding it memoized — the same lazy ageing FDBLookup applies.
func (b *Bridge) FDBExpiry(mac packet.HWAddr, vlan uint16) (sim.Time, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.fdb[FDBKey{MAC: mac, VLAN: vlan}]
	if !ok {
		return 0, false
	}
	if e.Static {
		return NeverExpires, true
	}
	return e.LastSeen.Add(b.ageing), true
}

// NeverExpires is the expiry FDBExpiry reports for static entries.
const NeverExpires = sim.Time(1<<63 - 1)

// FDBLen reports the number of FDB entries.
func (b *Bridge) FDBLen() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.fdb)
}

// Forward computes the full slow-path forwarding decision for a frame that
// arrived on ingress with the given destination MAC and (already classified)
// VLAN. It handles STP port-state checks, local delivery, FDB hits, and
// flooding; VLAN egress filtering is applied to the flood set.
func (b *Bridge) Forward(ingress int, dst packet.HWAddr, vlan uint16, now sim.Time) Decision {
	b.mu.RLock()
	defer b.mu.RUnlock()
	in, ok := b.ports[ingress]
	if !ok || in.State == Disabled || in.State == Blocking || in.State == Listening {
		return Decision{Drop: true, Reason: drop.ReasonSTPBlocked}
	}
	if in.State == Learning {
		// Learning ports absorb frames without forwarding.
		return Decision{Drop: true, Reason: drop.ReasonSTPBlocked}
	}
	if dst == b.MAC {
		return Decision{Local: true}
	}
	if !dst.IsMulticast() {
		if e, ok := b.fdb[FDBKey{MAC: dst, VLAN: vlan}]; ok &&
			(e.Static || now.Sub(e.LastSeen) <= b.ageing) {
			if e.Port == ingress {
				return Decision{Drop: true, Reason: drop.ReasonBridgeNoFwd} // hairpin off by default
			}
			if p, ok := b.ports[e.Port]; ok && p.State == Forwarding {
				if _, allowed := b.egressAllowedLocked(e.Port, vlan); allowed {
					return Decision{Egress: []int{e.Port}}
				}
				return Decision{Drop: true, Reason: drop.ReasonVLANFilter}
			}
			return Decision{Drop: true, Reason: drop.ReasonBridgeNoFwd}
		}
	}
	// Miss, broadcast or multicast: flood to all other forwarding ports.
	var egress []int
	for idx, p := range b.ports {
		if idx == ingress || p.State != Forwarding {
			continue
		}
		if _, allowed := b.egressAllowedLocked(idx, vlan); allowed {
			egress = append(egress, idx)
		}
	}
	sort.Ints(egress)
	d := Decision{Egress: egress, Flood: true}
	if dst.IsBroadcast() || dst == b.MAC {
		d.Local = true
	}
	return d
}

func (b *Bridge) egressAllowedLocked(ifIndex int, vlan uint16) (tagged, ok bool) {
	p, exists := b.ports[ifIndex]
	if !exists {
		return false, false
	}
	if !b.vlanFiltering || vlan == 0 {
		return false, true
	}
	if p.Untagged[vlan] || p.PVID == vlan {
		return false, true
	}
	if p.Tagged[vlan] {
		return true, true
	}
	return false, false
}
