package steer

import (
	"sync"
	"testing"

	"linuxfp/internal/sim"
)

// TestTableSticky: a flow's first pick is permanent across policy changes —
// the no-migration contract rebalancing relies on.
func TestTableSticky(t *testing.T) {
	tb := NewTable(1024, []int{0, 1, 2, 3})
	hashes := make([]uint64, 512)
	first := make([]int, len(hashes))
	rng := sim.NewRNG(7)
	for i := range hashes {
		hashes[i] = rng.Uint64()
		first[i] = tb.PickCPU(hashes[i])
	}
	tb.SetPolicy([]int{2}, nil) // radical policy change: everything to CPU 2
	for i, h := range hashes {
		if got := tb.PickCPU(h); got != first[i] {
			t.Fatalf("flow %d moved %d -> %d after SetPolicy", i, first[i], got)
		}
	}
	// But a brand-new flow follows the new policy.
	for i := 0; i < 64; i++ {
		h := rng.Uint64()
		if got := tb.PickCPU(h); got != 2 {
			// Collisions with already-assigned slots are legitimate; only
			// count genuinely fresh slots.
			if slotCPU(tb.slots[h&tb.mask].Load()) != 2 {
				continue
			}
			t.Fatalf("new flow landed on %d, want 2", got)
		}
	}
}

// TestTablePolicyWeights: zero-weight CPUs receive no new flows.
func TestTablePolicyWeights(t *testing.T) {
	tb := NewTable(4096, []int{0, 1})
	tb.SetPolicy([]int{0, 1, 2}, []int{1, 0, 1})
	rng := sim.NewRNG(11)
	counts := map[int]int{}
	for i := 0; i < 4096; i++ {
		counts[tb.PickCPU(rng.Uint64())]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight CPU 1 got %d new flows", counts[1])
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Fatalf("weighted CPUs starved: %v", counts)
	}
}

// TestTableFlush: flushing a CPU frees exactly its slots and the flows
// re-pick under the current policy.
func TestTableFlush(t *testing.T) {
	tb := NewTable(1024, []int{0, 1})
	rng := sim.NewRNG(3)
	assigned := map[uint64]int{}
	for i := 0; i < 600; i++ {
		h := rng.Uint64()
		assigned[h] = tb.PickCPU(h)
	}
	tb.SetPolicy([]int{1}, nil)
	tb.Flush(0)
	for h, was := range assigned {
		got := tb.PickCPU(h)
		if was == 1 && got != 1 {
			t.Fatalf("untouched flow moved %d -> %d", was, got)
		}
		if was == 0 && got != 1 {
			t.Fatalf("flushed flow re-picked %d, want 1", got)
		}
	}
}

// TestControllerShedsOnDrops: a CPU that dropped packets since the last
// sample stops receiving new flows; established flows stay.
func TestControllerShedsOnDrops(t *testing.T) {
	tb := NewTable(4096, []int{0, 1, 2, 3})
	ctl := NewController(tb, Config{})
	base := []CPULoad{{CPU: 0}, {CPU: 1}, {CPU: 2}, {CPU: 3}}
	ctl.Observe(base)

	h := uint64(0xdeadbeef)
	pinned := tb.PickCPU(h)

	next := []CPULoad{
		{CPU: 0, Cycles: 1000},
		{CPU: 1, Cycles: 1000, Drops: 5}, // overflowed since last sample
		{CPU: 2, Cycles: 1000},
		{CPU: 3, Cycles: 1000},
	}
	ctl.Observe(next)
	if ctl.Rebalances() != 1 {
		t.Fatalf("Rebalances = %d, want 1", ctl.Rebalances())
	}
	rng := sim.NewRNG(5)
	for i := 0; i < 2048; i++ {
		hh := rng.Uint64()
		cpu := tb.PickCPU(hh)
		if cpu == 1 && slotHits(tb.slots[hh&tb.mask].Load()) == 1 && hh != h {
			// A fresh placement (hit count 1) landed on the shed CPU —
			// collisions with pre-shed assignments are sticky by design and
			// carry higher counts.
			t.Fatalf("new flow placed on shedding CPU 1")
		}
	}
	if got := tb.PickCPU(h); got != pinned {
		t.Fatalf("established flow moved %d -> %d during shed", pinned, got)
	}
}

// TestTableMigrate: an overloaded CPU keeps its heaviest flow and sheds the
// lighter ones, respecting the hit-share budget.
func TestTableMigrate(t *testing.T) {
	tb := NewTable(256, []int{0})
	elephant := uint64(1)
	mouseA, mouseB := uint64(2), uint64(3)
	for i := 0; i < 1000; i++ {
		tb.PickCPU(elephant)
	}
	for i := 0; i < 10; i++ {
		tb.PickCPU(mouseA)
		tb.PickCPU(mouseB)
	}
	tb.SetPolicy([]int{5}, nil)
	if n := tb.Migrate(0, 1.0); n != 2 {
		t.Fatalf("migrated %d flows, want 2 (both mice)", n)
	}
	if got := tb.PickCPU(elephant); got != 0 {
		t.Fatalf("elephant moved to %d; the heaviest flow must stay", got)
	}
	if got := tb.PickCPU(mouseA); got != 5 {
		t.Fatalf("migrated mouse re-picked %d, want 5", got)
	}
	// A zero budget migrates nothing.
	tb2 := NewTable(256, []int{0})
	tb2.PickCPU(10)
	tb2.PickCPU(11)
	if n := tb2.Migrate(0, 0); n != 0 {
		t.Fatalf("zero-budget migrate moved %d flows", n)
	}
}

// TestControllerMigratesWhenDrained: with Migrate enabled, a drained
// overloaded CPU loses its light flows but never its heaviest.
func TestControllerMigratesWhenDrained(t *testing.T) {
	tb := NewTable(1024, []int{0, 1})
	ctl := NewController(tb, Config{Migrate: true})
	// Pin two flows to CPU 0 with very different weights.
	var heavy, light uint64
	for h := uint64(0); heavy == 0 || light == 0; h++ {
		if tb.PickCPU(h) == 0 {
			if heavy == 0 {
				heavy = h
			} else if light == 0 && h != heavy {
				light = h
			}
		}
	}
	for i := 0; i < 500; i++ {
		tb.PickCPU(heavy)
	}
	ctl.Observe([]CPULoad{{CPU: 0}, {CPU: 1}})
	ctl.Observe([]CPULoad{
		{CPU: 0, Cycles: 10_000, Drops: 1, Drained: true},
		{CPU: 1, Cycles: 1_000, Drained: true},
	})
	if got := tb.PickCPU(heavy); got != 0 {
		t.Fatalf("heaviest flow migrated to %d", got)
	}
	if got := tb.PickCPU(light); got != 1 {
		t.Fatalf("light flow still on overloaded CPU (got %d)", got)
	}
	// Without Drained, nothing moves even under identical overload.
	tb2 := NewTable(1024, []int{0, 1})
	ctl2 := NewController(tb2, Config{Migrate: true})
	tb2.PickCPU(42)
	was := tb2.PickCPU(42)
	ctl2.Observe([]CPULoad{{CPU: 0}, {CPU: 1}})
	ctl2.Observe([]CPULoad{
		{CPU: 0, Cycles: 10_000, Drops: 1},
		{CPU: 1, Cycles: 1_000},
	})
	if got := tb2.PickCPU(42); got != was {
		t.Fatalf("flow migrated off an undrained CPU: %d -> %d", was, got)
	}
}

// TestControllerLatencyShed: queueing-latency P99 above the threshold sheds
// a CPU even when it has not dropped anything yet — the early signal.
func TestControllerLatencyShed(t *testing.T) {
	tb := NewTable(1024, []int{0, 1})
	ctl := NewController(tb, Config{LatP99Shed: 10_000})
	ctl.Observe([]CPULoad{{CPU: 0}, {CPU: 1}})
	ctl.Observe([]CPULoad{
		{CPU: 0, Cycles: 500},
		{CPU: 1, Cycles: 500, P99: 50_000},
	})
	p := tb.pol.Load()
	for _, c := range p.accept {
		if c == 1 {
			t.Fatal("latency-shed CPU still in accept set")
		}
	}
}

// TestControllerAlwaysAccepts: even with every CPU overloaded, some CPU
// keeps accepting new flows (the least loaded one).
func TestControllerAlwaysAccepts(t *testing.T) {
	tb := NewTable(256, []int{0, 1})
	ctl := NewController(tb, Config{})
	ctl.Observe([]CPULoad{{CPU: 0}, {CPU: 1}})
	ctl.Observe([]CPULoad{
		{CPU: 0, Cycles: 9000, Drops: 1},
		{CPU: 1, Cycles: 9500, Drops: 2},
	})
	p := tb.pol.Load()
	if len(p.accept) == 0 {
		t.Fatal("empty accept set")
	}
	for _, c := range p.accept {
		if c != 0 {
			t.Fatalf("least-loaded CPU is 0, accept set has %d", c)
		}
	}
}

// TestSteerChurnRace hammers one table from 8 "RX CPU" goroutines picking
// flows while a controller goroutine rebalances and flushes as fast as it
// can — the steer-table churn race the -race build must stay clean on.
// Invariant under churn: every pick returns a CPU from the configured set.
func TestSteerChurnRace(t *testing.T) {
	cpus := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tb := NewTable(4096, cpus)
	ctl := NewController(tb, Config{LatP99Shed: 5000, Migrate: true})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				cpu := tb.PickCPU(rng.Uint64() & 0xffff) // shared flow space
				if cpu < 0 || cpu > 7 {
					t.Errorf("pick returned CPU %d outside set", cpu)
					return
				}
			}
		}(uint64(g + 1))
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 400; i++ {
		loads := make([]CPULoad, 8)
		for c := range loads {
			loads[c] = CPULoad{
				CPU:     c,
				Cycles:  float64(i*1000) + float64(rng.Intn(5000)),
				Drops:   uint64(i) * uint64(rng.Intn(2)),
				P99:     float64(rng.Intn(10000)),
				Drained: rng.Intn(2) == 0,
			}
		}
		ctl.Observe(loads)
		if i%37 == 0 {
			tb.Flush(rng.Intn(8))
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkTablePickSticky is the steady-state hot path: one atomic load.
func BenchmarkTablePickSticky(b *testing.B) {
	tb := NewTable(4096, []int{0, 1, 2, 3})
	h := uint64(0x12345)
	tb.PickCPU(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.PickCPU(h)
	}
}

// BenchmarkTablePickSpread cycles through many flows (mixed hit/assign).
func BenchmarkTablePickSpread(b *testing.B) {
	tb := NewTable(4096, []int{0, 1, 2, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.PickCPU(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// BenchmarkControllerObserve is the control-loop cost at 8 CPUs.
func BenchmarkControllerObserve(b *testing.B) {
	tb := NewTable(4096, []int{0, 1, 2, 3, 4, 5, 6, 7})
	ctl := NewController(tb, Config{})
	loads := make([]CPULoad, 8)
	for c := range loads {
		loads[c] = CPULoad{CPU: c}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := range loads {
			loads[c].Cycles += float64(1000 + c*100)
		}
		ctl.Observe(loads)
	}
}
