package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/ebpf"
	"linuxfp/internal/flight"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// scrapeHost builds a host with every observer attached, drives a small
// mixed workload (deliveries, forwards off, drops), and returns the kernel
// plus the ring its recorder emits into.
func scrapeHost(t *testing.T) (*kernel.Kernel, *ebpf.RingBuf) {
	t.Helper()
	k := kernel.New("scrape")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	k.RegisterSocket(packet.ProtoUDP, 7, func(*kernel.Kernel, kernel.SocketMsg) {})
	k.EnableStageLat()
	rb := ebpf.NewRingBuf("scrape_events", 1<<14)
	k.EnableFlight(flight.Config{SampleShift: 0, Ring: rb})
	k.EnableFlowTelemetry(0)

	src := packet.MustAddr("10.0.0.1")
	dst := packet.MustAddr("10.0.0.2")
	var m sim.Meter
	for i := 0; i < 8; i++ {
		u := packet.UDP{SrcPort: uint16(4000 + i%2), DstPort: 7}
		d.Receive(packet.BuildIPv4(
			packet.Ethernet{Dst: d.MAC, Src: packet.MustHWAddr("02:00:00:00:00:01"), EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
			u.Marshal(nil, src, dst, make([]byte, 24))), &m)
	}
	for i := 0; i < 3; i++ { // forwarding off: these drop
		u := packet.UDP{SrcPort: 5000, DstPort: 7}
		off := packet.MustAddr("10.99.0.1")
		d.Receive(packet.BuildIPv4(
			packet.Ethernet{Dst: d.MAC, Src: packet.MustHWAddr("02:00:00:00:00:01"), EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: off},
			u.Marshal(nil, src, off, make([]byte, 24))), &m)
	}
	return k, rb
}

// TestDropReasonAudit is the exhaustive drop.Reason audit: every enum member
// has a unique non-empty name, and every one of them — zeros included —
// appears as a reason label in the kernel scrape. A reason that loses its
// name or its series fails here, not in a dashboard.
func TestDropReasonAudit(t *testing.T) {
	seen := map[string]drop.Reason{}
	for _, r := range drop.Reasons() {
		name := r.String()
		if name == "" {
			t.Fatalf("drop reason %d has an empty name", r)
		}
		if strings.ContainsAny(name, " \"\n") {
			t.Fatalf("drop reason %d name %q is not label-safe", r, name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("drop reasons %d and %d share the name %q", prev, r, name)
		}
		seen[name] = r
	}

	k, _ := scrapeHost(t)
	var buf bytes.Buffer
	WriteKernel(&buf, k)
	out := buf.String()
	for name := range seen {
		series := fmt.Sprintf("linuxfp_drop_reason_total{kernel=\"scrape\",reason=%q}", name)
		if !strings.Contains(out, series) {
			t.Errorf("scrape is missing the %s series", series)
		}
	}
}

// TestPromExpositionLint composes every writer into one scrape and lints it
// against the Prometheus text format: exactly one HELP and one TYPE per
// family, TYPE before any sample, all of a family's samples contiguous,
// every sample owned by a declared family (summaries own their _count and
// _sum children), and no duplicate series.
func TestPromExpositionLint(t *testing.T) {
	k, rb := scrapeHost(t)
	loader := ebpf.NewLoader(k)
	if _, err := loader.Load(&ebpf.Program{
		Name: "lint_parse", Hook: ebpf.HookXDP,
		Ops:     []ebpf.Op{fpm.ParseEth(), fpm.ParseIPv4(), fpm.ParseL4()},
		Default: ebpf.VerdictPass,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteKernel(&buf, k)
	WriteRingBuf(&buf, rb)
	WriteXSKMap(&buf, ebpf.NewXSKMap("lint_xsk", 4))
	WritePrograms(&buf, loader)

	helps := map[string]int{}
	types := map[string]string{}
	families := []string{}
	curFamily := ""
	closed := map[string]bool{}
	series := map[string]bool{}

	// owner resolves a sample name to its declared family.
	owner := func(name string) string {
		if _, ok := types[name]; ok {
			return name
		}
		for _, suf := range []string{"_count", "_sum"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "summary" {
				return base
			}
		}
		return ""
	}

	sc := bufio.NewScanner(&buf)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)[2]
			helps[f]++
			if helps[f] > 1 {
				t.Errorf("line %d: duplicate HELP for family %s", ln, f)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			f, typ := parts[2], parts[3]
			if _, dup := types[f]; dup {
				t.Errorf("line %d: duplicate TYPE for family %s", ln, f)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Errorf("line %d: family %s has invalid type %q", ln, f, typ)
			}
			types[f] = typ
			families = append(families, f)
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", ln, line)
			continue
		}
		// Sample line: name{labels} value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := owner(name)
		if fam == "" {
			t.Errorf("line %d: sample %s has no declared family", ln, name)
			continue
		}
		if fam != curFamily {
			if closed[fam] {
				t.Errorf("line %d: family %s samples are not contiguous", ln, fam)
			}
			if curFamily != "" {
				closed[curFamily] = true
			}
			curFamily = fam
		}
		id := line[:strings.LastIndex(line, " ")]
		if series[id] {
			t.Errorf("line %d: duplicate series %s", ln, id)
		}
		series[id] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, f := range families {
		if helps[f] == 0 {
			t.Errorf("family %s has TYPE but no HELP", f)
		}
	}
	for f := range helps {
		if _, ok := types[f]; !ok {
			t.Errorf("family %s has HELP but no TYPE", f)
		}
	}
	// The composed scrape must actually include the new telemetry families.
	for _, f := range []string{
		"linuxfp_trace_chains_total", "linuxfp_trace_spans_total",
		"linuxfp_trace_live_chains", "linuxfp_flow_tracked",
		"linuxfp_flow_packets_total", "linuxfp_flow_fastpath_ratio",
		"linuxfp_stage_latency_cycles", "linuxfp_stage_latency_cycles_mean",
	} {
		if _, ok := types[f]; !ok {
			t.Errorf("composed scrape is missing family %s", f)
		}
	}
}

// TestWriteFlightConservationVisible checks the scrape carries the trace
// ledger in reconcilable form: the sampled series equals the sum of the
// terminal series once quiesced.
func TestWriteFlightConservationVisible(t *testing.T) {
	k, _ := scrapeHost(t)
	var buf bytes.Buffer
	WriteFlight(&buf, "scrape", k.Flight())
	vals := map[string]uint64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "linuxfp_trace_chains_total") {
			continue
		}
		var term string
		var v uint64
		if _, err := fmt.Sscanf(line, "linuxfp_trace_chains_total{kernel=\"scrape\",terminal=%q} %d", &term, &v); err != nil {
			t.Fatalf("unparseable series %q: %v", line, err)
		}
		vals[term] = v
	}
	if vals["sampled"] == 0 {
		t.Fatal("no sampled chains in the scrape")
	}
	sum := vals["drop"] + vals["tx"] + vals["redirect"] + vals["pass"] + vals["lost"]
	if vals["sampled"] != sum {
		t.Fatalf("scrape ledger violated: sampled=%d, terminals sum to %d (%v)", vals["sampled"], sum, vals)
	}
}
