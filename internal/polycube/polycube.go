// Package polycube models the Polycube baseline (v0.9 in the paper): an
// eBPF-based packet-processing platform that is architecturally the
// opposite of LinuxFP in two ways the evaluation isolates.
//
// First, state: cubes keep *private* copies of forwarding state (routes,
// ARP bindings, ACLs) in their own maps, configured exclusively through the
// platform's bespoke API (polycubectl / pcn-iptables). Linux tools do not
// configure it, and Linux state changes are invisible to it — the
// incompatibility Table II summarizes.
//
// Second, composition: cubes are separate eBPF programs chained with tail
// calls, where LinuxFP inlines snippets into one program with function
// calls (Fig. 10's comparison).
package polycube

import (
	"fmt"
	"sync"

	"linuxfp/internal/ebpf"
	"linuxfp/internal/fib"
	"linuxfp/internal/fpm"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// Platform is a Polycube service instance on one host.
type Platform struct {
	k      *kernel.Kernel
	loader *ebpf.Loader

	mu        sync.Mutex
	routers   map[string]*Router
	firewalls map[string]*Firewall
}

// New creates a platform on a host (it uses the host's devices, nothing
// else).
func New(k *kernel.Kernel) *Platform {
	return &Platform{
		k:         k,
		loader:    ebpf.NewLoader(k),
		routers:   make(map[string]*Router),
		firewalls: make(map[string]*Firewall),
	}
}

// Router is a pcn-router cube: private FIB and ARP state.
type Router struct {
	Name string

	p  *Platform
	mu sync.Mutex
	// Private shadow state: configured only via the cube API.
	routes *fib.Table
	arp    map[packet.Addr]packet.HWAddr
	ports  map[int]*netdev.Device

	next *Firewall // chained firewall cube (tail call)
}

// AddRouter creates a router cube.
func (p *Platform) AddRouter(name string) (*Router, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.routers[name]; ok {
		return nil, fmt.Errorf("polycube: router %q exists", name)
	}
	r := &Router{
		Name: name, p: p,
		routes: fib.NewTable(),
		arp:    make(map[packet.Addr]packet.HWAddr),
		ports:  make(map[int]*netdev.Device),
	}
	p.routers[name] = r
	return r, nil
}

// AddPort attaches a device to the cube and installs its data path.
func (r *Router) AddPort(devName string) error {
	dev, ok := r.p.k.DeviceByName(devName)
	if !ok {
		return fmt.Errorf("polycube: no device %q", devName)
	}
	r.mu.Lock()
	r.ports[dev.Index] = dev
	r.mu.Unlock()
	return r.reattach()
}

// AddRoute installs a route in the cube's private table. The API mirrors
// polycubectl, not iproute2.
func (r *Router) AddRoute(prefix packet.Prefix, nexthop packet.Addr, outPort string) error {
	dev, ok := r.p.k.DeviceByName(outPort)
	if !ok {
		return fmt.Errorf("polycube: no port %q", outPort)
	}
	r.mu.Lock()
	r.routes.Add(fib.Route{Prefix: prefix, Gateway: nexthop, OutIf: dev.Index, Scope: fib.ScopeUniverse})
	r.mu.Unlock()
	return nil
}

// AddArpEntry installs a static ARP binding in cube state.
func (r *Router) AddArpEntry(ip packet.Addr, mac packet.HWAddr) {
	r.mu.Lock()
	r.arp[ip] = mac
	r.mu.Unlock()
}

// ChainFirewall attaches a firewall cube after the parser (tail-called
// before routing, matching pcn-firewall's ingress placement).
func (r *Router) ChainFirewall(fw *Firewall) error {
	r.mu.Lock()
	r.next = fw
	r.mu.Unlock()
	return r.reattach()
}

// RouteCount reports the number of routes in cube state.
func (r *Router) RouteCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routes.Len()
}

// reattach regenerates and attaches the cube chain on every port.
// Polycube chains cubes with tail calls: parser cube -> (firewall cube) ->
// router cube, one prog array slot per stage.
func (r *Router) reattach() error {
	r.mu.Lock()
	ports := make([]*netdev.Device, 0, len(r.ports))
	for _, d := range r.ports {
		ports = append(ports, d)
	}
	fw := r.next
	r.mu.Unlock()

	chain := ebpf.NewProgArray(r.Name+"_chain", 3)

	// Stage 2: router cube — LPM + ARP from private maps, rewrite, redirect.
	routerProg := &ebpf.Program{Name: r.Name + "_router", Hook: ebpf.HookXDP, Default: ebpf.VerdictDrop,
		Ops: []ebpf.Op{
			ebpf.NewOp("cube_entry", sim.CostCubeEntry+sim.CostCubeMeta, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
				return ebpf.VerdictNext
			}),
			ebpf.NewOp("rt_lpm_lookup", sim.CostCubeLPMLookup, 0, 64, func(c *ebpf.Ctx) ebpf.Verdict {
				r.mu.Lock()
				rt, ok := r.routes.Lookup(c.IPDst)
				r.mu.Unlock()
				if !ok {
					return ebpf.VerdictDrop // no slow path to punt to
				}
				nh := rt.Gateway
				if nh == 0 {
					nh = c.IPDst
				}
				c.FIB = ebpf.FIBResult{EgressIfIndex: rt.OutIf}
				// Next-hop MAC from the cube-private ARP map.
				c.Meter.Charge(sim.CostCubeARPLookup)
				r.mu.Lock()
				mac, ok := r.arp[nh]
				dev := r.ports[rt.OutIf]
				r.mu.Unlock()
				if !ok || dev == nil {
					return ebpf.VerdictDrop
				}
				c.FIB.DstMAC = mac
				c.FIB.SrcMAC = dev.MAC
				c.FIBOk = true
				return ebpf.VerdictNext
			}),
			fpm.RewriteOp(),
			ebpf.NewOp("rt_redirect", 0, ebpf.CapRedirect, 16, func(c *ebpf.Ctx) ebpf.Verdict {
				c.RedirectIfIndex = c.FIB.EgressIfIndex
				return ebpf.VerdictRedirect
			}),
		}}
	if _, err := r.p.loader.Load(routerProg); err != nil {
		return err
	}
	chain.Update(2, routerProg)

	// Stage 1 (optional): firewall cube, tail-calling into the router.
	nextSlot := 2
	if fw != nil {
		fwProg := fw.program(chain, 2)
		if _, err := r.p.loader.Load(fwProg); err != nil {
			return err
		}
		chain.Update(1, fwProg)
		nextSlot = 1
	}

	// Stage 0: parser cube.
	target := nextSlot
	parserProg := &ebpf.Program{Name: r.Name + "_parser", Hook: ebpf.HookXDP, Default: ebpf.VerdictDrop,
		Ops: []ebpf.Op{
			ebpf.NewOp("cube_entry", sim.CostCubeEntry+sim.CostCubeMeta, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
				return ebpf.VerdictNext
			}),
			fpm.ParseEth(),
			fpm.ParseIPv4(),
			fpm.ParseL4(),
			ebpf.NewOp("cube_chain", 0, ebpf.CapTailCall, 8, func(c *ebpf.Ctx) ebpf.Verdict {
				return c.TailCall(chain, target)
			}),
		}}
	if _, err := r.p.loader.Load(parserProg); err != nil {
		return err
	}
	chain.Update(0, parserProg)

	for _, dev := range ports {
		if err := r.p.loader.AttachXDP(dev, parserProg, "driver"); err != nil {
			return err
		}
	}
	return nil
}

// Firewall is a pcn-firewall cube with an efficient classifier (the paper
// credits Polycube's better-than-linear matching to [34]).
type Firewall struct {
	Name string

	mu    sync.Mutex
	rules []FWRule
	// classifier buckets: masked /16 of the matched address -> rule idxs.
	srcBuckets map[packet.Addr][]int
	dstBuckets map[packet.Addr][]int
	wildcards  []int
}

// FWRule is one firewall rule.
type FWRule struct {
	Src, Dst *packet.Prefix
	Proto    uint8
	Action   ebpf.Verdict // VerdictDrop or VerdictPass(=accept)
}

// AddFirewall creates a firewall cube.
func (p *Platform) AddFirewall(name string) (*Firewall, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.firewalls[name]; ok {
		return nil, fmt.Errorf("polycube: firewall %q exists", name)
	}
	fw := &Firewall{
		Name:       name,
		srcBuckets: make(map[packet.Addr][]int),
		dstBuckets: make(map[packet.Addr][]int),
	}
	p.firewalls[name] = fw
	return fw, nil
}

var bucketMask = packet.Prefix{Bits: 16}.Mask()

// AppendRule adds a rule and indexes it into the classifier.
func (fw *Firewall) AppendRule(rule FWRule) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	idx := len(fw.rules)
	fw.rules = append(fw.rules, rule)
	switch {
	case rule.Src != nil && rule.Src.Bits >= 16:
		fw.srcBuckets[rule.Src.Addr&bucketMask] = append(fw.srcBuckets[rule.Src.Addr&bucketMask], idx)
	case rule.Dst != nil && rule.Dst.Bits >= 16:
		fw.dstBuckets[rule.Dst.Addr&bucketMask] = append(fw.dstBuckets[rule.Dst.Addr&bucketMask], idx)
	default:
		fw.wildcards = append(fw.wildcards, idx)
	}
}

// RuleCount reports the number of rules.
func (fw *Firewall) RuleCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return len(fw.rules)
}

// Evaluate classifies a packet: bucket probes plus any wildcard rules, in
// rule order within the candidate set. Default accept.
func (fw *Firewall) Evaluate(src, dst packet.Addr, proto uint8) ebpf.Verdict {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	best := -1
	consider := func(idxs []int) {
		for _, i := range idxs {
			rl := fw.rules[i]
			if rl.Src != nil && !rl.Src.Contains(src) {
				continue
			}
			if rl.Dst != nil && !rl.Dst.Contains(dst) {
				continue
			}
			if rl.Proto != 0 && rl.Proto != proto {
				continue
			}
			if best == -1 || i < best {
				best = i
			}
		}
	}
	consider(fw.srcBuckets[src&bucketMask])
	consider(fw.dstBuckets[dst&bucketMask])
	consider(fw.wildcards)
	if best == -1 {
		return ebpf.VerdictPass
	}
	return fw.rules[best].Action
}

// program builds the firewall cube program, tail-calling to the next slot
// on accept.
func (fw *Firewall) program(chain *ebpf.ProgArray, nextSlot int) *ebpf.Program {
	return &ebpf.Program{Name: fw.Name + "_fw", Hook: ebpf.HookXDP, Default: ebpf.VerdictDrop,
		Ops: []ebpf.Op{
			ebpf.NewOp("cube_entry", sim.CostCubeEntry+sim.CostCubeMeta, 0, 24, func(c *ebpf.Ctx) ebpf.Verdict {
				return ebpf.VerdictNext
			}),
			ebpf.NewOp("fw_classify", 0, 0, 96, func(c *ebpf.Ctx) ebpf.Verdict {
				fw.mu.Lock()
				n := len(fw.rules)
				fw.mu.Unlock()
				c.Meter.Charge(sim.CostCubeClassifier + sim.Cycles(n/100)*sim.CostCubeClassPer100)
				if fw.Evaluate(c.IPSrc, c.IPDst, c.IPProto) == ebpf.VerdictDrop {
					return ebpf.VerdictDrop
				}
				return ebpf.VerdictNext
			}),
			ebpf.NewOp("cube_chain", 0, ebpf.CapTailCall, 8, func(c *ebpf.Ctx) ebpf.Verdict {
				return c.TailCall(chain, nextSlot)
			}),
		}}
}
