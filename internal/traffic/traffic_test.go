package traffic

import (
	"math"
	"testing"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

func testGen(size int) *Pktgen {
	return &Pktgen{
		SrcMAC: packet.MustHWAddr("02:00:00:00:00:01"),
		DstMAC: packet.MustHWAddr("02:00:00:00:00:02"),
		SrcIP:  packet.MustAddr("10.1.0.1"),
		Prefixes: []packet.Prefix{
			packet.MustPrefix("10.100.0.0/16"),
			packet.MustPrefix("10.101.0.0/16"),
		},
		Size: size,
	}
}

func TestPktgenFrameSizeAndValidity(t *testing.T) {
	for _, size := range []int{64, 128, 512, 1500} {
		g := testGen(size)
		f := g.Frame(0)
		if len(f) != size {
			t.Fatalf("size %d: frame is %d bytes", size, len(f))
		}
		p, err := packet.Decode(f)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if p.IPv4 == nil || p.IPv4.Proto != packet.ProtoUDP {
			t.Fatalf("size %d: decode %+v", size, p)
		}
	}
	// Sub-minimum requests are clamped to 64.
	g := testGen(10)
	if len(g.Frame(0)) != MinFrameSize {
		t.Fatal("minimum size not enforced")
	}
}

func TestPktgenRotatesDestinations(t *testing.T) {
	g := testGen(64)
	seen := map[packet.Addr]bool{}
	for i := 0; i < 100; i++ {
		p, err := packet.Decode(g.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		seen[p.IPv4.Dst] = true
		// Destination must fall inside one of the prefixes.
		if !g.Prefixes[0].Contains(p.IPv4.Dst) && !g.Prefixes[1].Contains(p.IPv4.Dst) {
			t.Fatalf("dst %v outside prefixes", p.IPv4.Dst)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("only %d distinct destinations in 100 frames", len(seen))
	}
}

func baseCfg() RRConfig {
	return RRConfig{
		Sessions:   128,
		Duration:   500 * sim.Millisecond,
		Seed:       1,
		ReqCycles:  2400, // 1 µs per packet
		RespCycles: 2400,
		WireRTT:    20 * sim.Microsecond,
		ServerTime: 8 * sim.Microsecond,
	}
}

func TestRunRRSaturatedLatencyMatchesTheory(t *testing.T) {
	// Closed loop, no jitter: with N sessions and 2 DUT passes of 1 µs per
	// transaction, the DUT is the bottleneck and RTT ≈ N × 2 µs.
	res := RunRR(baseCfg())
	wantRTT := 128 * 2.0 // µs
	if math.Abs(res.Stats.Mean()-wantRTT)/wantRTT > 0.15 {
		t.Fatalf("mean RTT %.1f µs, want ≈%.0f", res.Stats.Mean(), wantRTT)
	}
	// Throughput ≈ 1 / (2 µs) = 500k transactions/s.
	if math.Abs(res.TputPerSec-500e3)/500e3 > 0.1 {
		t.Fatalf("tput %.0f/s, want ≈500k", res.TputPerSec)
	}
}

func TestRunRRFasterDUTLowersLatencyProportionally(t *testing.T) {
	slow := RunRR(baseCfg())
	cfg := baseCfg()
	cfg.ReqCycles, cfg.RespCycles = 1356, 1356 // the LinuxFP fast path
	fast := RunRR(cfg)
	ratio := fast.Stats.Mean() / slow.Stats.Mean()
	want := 1356.0 / 2400.0
	if math.Abs(ratio-want) > 0.08 {
		t.Fatalf("latency ratio %.3f, want ≈%.3f (the paper's 77%% throughput = 44%% latency relation)", ratio, want)
	}
}

func TestRunRRJitterWidensTail(t *testing.T) {
	cfg := baseCfg()
	noJitter := RunRR(cfg)
	cfg.JitterSigma = 0.25
	cfg.StallProb = 0.0005
	cfg.StallMean = 80 * sim.Microsecond
	jittered := RunRR(cfg)

	plainRatio := noJitter.Stats.P99() / noJitter.Stats.Mean()
	jitterRatio := jittered.Stats.P99() / jittered.Stats.Mean()
	if jitterRatio <= plainRatio {
		t.Fatalf("jitter did not widen tail: %.3f vs %.3f", jitterRatio, plainRatio)
	}
	// The paper's tables show p99/mean between ≈1.3 and ≈2.1.
	if jitterRatio < 1.2 || jitterRatio > 2.5 {
		t.Fatalf("p99/mean %.2f outside plausible netperf range", jitterRatio)
	}
}

func TestRunRRSingleSessionIsUnqueued(t *testing.T) {
	cfg := baseCfg()
	cfg.Sessions = 1
	res := RunRR(cfg)
	// RTT = wire 20 + req 1 + server 8 + resp 1 = 30 µs.
	if math.Abs(res.Stats.Mean()-30) > 2 {
		t.Fatalf("unloaded RTT %.1f µs, want ≈30", res.Stats.Mean())
	}
}

func TestRunRRDeterministicAcrossRuns(t *testing.T) {
	a := RunRR(baseCfg())
	b := RunRR(baseCfg())
	if a.Transactions != b.Transactions || a.Stats.Mean() != b.Stats.Mean() {
		t.Fatal("same seed produced different results")
	}
	cfg := baseCfg()
	cfg.Seed = 2
	cfg.JitterSigma = 0.2
	c := RunRR(cfg)
	cfg2 := baseCfg()
	cfg2.JitterSigma = 0.2
	d := RunRR(cfg2)
	if c.Stats.Mean() == d.Stats.Mean() && c.Transactions == d.Transactions {
		t.Fatal("different seeds produced identical jittered results")
	}
}
