package kernel

import (
	"bytes"
	"sync"
	"testing"

	"linuxfp/internal/drop"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// sockHost builds a single host owning 10.0.0.2/24 with the socket-layer
// fast path enabled.
func sockHost(t *testing.T) (*Kernel, *netdev.Device) {
	t.Helper()
	k := New("host")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	k.SetSysctl("net.core.sockmap", "1")
	return k, d
}

// sockFrame builds one UDP frame of the (10.0.0.1:sport → 10.0.0.2:dport)
// flow.
func sockFrame(d *netdev.Device, sport, dport uint16, payload []byte) []byte {
	src := packet.MustAddr("10.0.0.1")
	dst := packet.MustAddr("10.0.0.2")
	u := packet.UDP{SrcPort: sport, DstPort: dport}
	return packet.BuildIPv4(
		packet.Ethernet{Dst: d.MAC, Src: packet.MustHWAddr("02:00:00:00:00:01"), EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		u.Marshal(nil, src, dst, payload))
}

// assertLedger checks the per-reason drop sum equals the drop total.
func assertLedger(t *testing.T, k *Kernel) {
	t.Helper()
	if sum := drop.Total(k.DropReasons()); sum != k.Stats().Dropped {
		t.Fatalf("drop ledger off: per-reason sum %d != total %d", sum, k.Stats().Dropped)
	}
}

// TestSockmapHitMissAndGenInvalidation: the first delivery of a flow walks
// the full stack and memoizes; the second hits; a socket unregister bumps
// the generation so the next packet conservatively misses, and a rebind
// re-establishes the flow.
func TestSockmapHitMissAndGenInvalidation(t *testing.T) {
	k, d := sockHost(t)
	var payloads [][]byte
	reg := func() {
		k.RegisterSocket(packet.ProtoUDP, 7, func(_ *Kernel, msg SocketMsg) {
			payloads = append(payloads, append([]byte(nil), msg.Payload...))
		})
	}
	reg()
	var m sim.Meter
	want := []byte("established-flow payload")

	d.Receive(sockFrame(d, 4001, 7, want), &m) // miss + install
	st := k.Stats()
	if st.SockmapHits != 0 || st.SockmapMisses == 0 {
		t.Fatalf("first packet: hits=%d misses=%d, want 0 hits", st.SockmapHits, st.SockmapMisses)
	}
	d.Receive(sockFrame(d, 4001, 7, want), &m) // hit
	st = k.Stats()
	if st.SockmapHits != 1 {
		t.Fatalf("second packet: hits=%d, want 1", st.SockmapHits)
	}
	if len(payloads) != 2 || !bytes.Equal(payloads[0], want) || !bytes.Equal(payloads[1], want) {
		t.Fatalf("delivered payloads differ between slow and fast path: %q", payloads)
	}

	// Unregister bumps the generation: the memoized entry must not serve a
	// dead socket, and the slow walk finds no socket either.
	k.UnregisterSocket(packet.ProtoUDP, 7)
	d.Receive(sockFrame(d, 4001, 7, want), &m)
	st = k.Stats()
	if st.SockmapHits != 1 {
		t.Fatalf("post-unregister: hits=%d, want still 1 (gen must invalidate)", st.SockmapHits)
	}
	if got := k.DropReasons()[drop.ReasonNoSocket]; got != 1 {
		t.Fatalf("post-unregister drop reason no_socket = %d, want 1", got)
	}

	// Rebind: first packet re-memoizes, second hits again.
	reg()
	d.Receive(sockFrame(d, 4001, 7, want), &m)
	d.Receive(sockFrame(d, 4001, 7, want), &m)
	if st = k.Stats(); st.SockmapHits != 2 {
		t.Fatalf("post-rebind: hits=%d, want 2", st.SockmapHits)
	}
	if st.Delivered+st.Dropped != 5 {
		t.Fatalf("conservation: delivered %d + dropped %d != 5 injected", st.Delivered, st.Dropped)
	}
	assertLedger(t, k)
}

// TestSockmapDisabledKeepsSlowPath: with net.core.sockmap=0 nothing is
// memoized and nothing hits.
func TestSockmapDisabledKeepsSlowPath(t *testing.T) {
	k, d := sockHost(t)
	k.SetSysctl("net.core.sockmap", "0")
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter
	for i := 0; i < 4; i++ {
		d.Receive(sockFrame(d, 4001, 7, nil), &m)
	}
	st := k.Stats()
	if st.SockmapHits != 0 || st.SockmapMisses != 0 {
		t.Fatalf("sysctl off: hits=%d misses=%d, want 0/0", st.SockmapHits, st.SockmapMisses)
	}
	if st.Delivered != 4 {
		t.Fatalf("delivered=%d, want 4", st.Delivered)
	}
}

// TestSockmapNetfilterCoherence: an INPUT rule makes memoization ineligible
// (a hit would skip the hook), and appending a rule after a flow is
// established invalidates it through the generation.
func TestSockmapNetfilterCoherence(t *testing.T) {
	k, d := sockHost(t)
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter

	// Establish, then verify a hit.
	d.Receive(sockFrame(d, 4001, 7, nil), &m)
	d.Receive(sockFrame(d, 4001, 7, nil), &m)
	if st := k.Stats(); st.SockmapHits != 1 {
		t.Fatalf("hits=%d, want 1", st.SockmapHits)
	}

	// A new INPUT rule must take effect immediately: the established entry
	// goes stale (netfilter generation) and nothing new is memoized.
	if err := k.IptAppend("INPUT", netfilter.Rule{Target: netfilter.VerdictAccept}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := k.Stats().SockmapHits
	for i := 0; i < 3; i++ {
		d.Receive(sockFrame(d, 4001, 7, nil), &m)
	}
	st := k.Stats()
	if st.SockmapHits != hitsBefore {
		t.Fatalf("hits grew to %d after INPUT rule append, want frozen at %d", st.SockmapHits, hitsBefore)
	}
	if st.Delivered != 5 {
		t.Fatalf("delivered=%d, want 5 (slow path still delivers)", st.Delivered)
	}
	assertLedger(t, k)
}

// TestSockmapClosedRaceSkNoSocket: a socket marked closed between the
// generation check and delivery (the unregister race window) drops with
// sk_no_socket, consumed on the fast path.
func TestSockmapClosedRaceSkNoSocket(t *testing.T) {
	k, d := sockHost(t)
	sock := k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter
	d.Receive(sockFrame(d, 4001, 7, nil), &m) // install
	// Simulate the race: closed flag set, generation not yet bumped.
	sock.closed.Store(true)
	d.Receive(sockFrame(d, 4001, 7, nil), &m)
	st := k.Stats()
	if got := k.DropReasons()[drop.ReasonSkNoSocket]; got != 1 {
		t.Fatalf("sk_no_socket = %d, want 1", got)
	}
	if st.SockmapHits != 1 {
		t.Fatalf("hits=%d, want 1 (the closed delivery still hit the table)", st.SockmapHits)
	}
	if st.Delivered+st.Dropped != 2 {
		t.Fatalf("conservation: delivered %d + dropped %d != 2", st.Delivered, st.Dropped)
	}
	assertLedger(t, k)
}

// proxyHost builds a two-legged proxy host: clients on eth0 (10.0.0.0/24),
// the upstream server 10.9.0.2 behind eth1.
func proxyHost(t *testing.T) (*Kernel, *netdev.Device, *netdev.Device) {
	t.Helper()
	k := New("proxy")
	in := k.CreateDevice("eth0", netdev.Physical)
	in.SetUp(true)
	out := k.CreateDevice("eth1", netdev.Physical)
	out.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddAddr("eth1", packet.MustPrefix("10.9.0.1/24")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddNeigh("eth1", packet.MustAddr("10.9.0.2"), packet.MustHWAddr("02:00:00:00:09:02")); err != nil {
		t.Fatal(err)
	}
	return k, in, out
}

func registerTestProxy(k *Kernel) (*Socket, *Socket) {
	return k.RegisterProxy(
		ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7100, Peer: packet.MustAddr("10.9.0.2"), PeerPort: 7001},
		ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7000, Peer: packet.MustAddr("10.0.0.1"), PeerPort: 6100},
	)
}

// TestProxySpliceByteIdentity: the spliced proxy path emits byte-identical
// frames (from the EtherType; fresh kernels draw fresh MACs) to the
// full-stack userspace relay, for both established and first packets.
func TestProxySpliceByteIdentity(t *testing.T) {
	run := func(sockmapOn bool) [][]byte {
		k, in, out := proxyHost(t)
		if sockmapOn {
			k.SetSysctl("net.core.sockmap", "1")
		}
		registerTestProxy(k)
		var tx [][]byte
		out.SetTxHook(func(frame []byte, _ *sim.Meter) bool {
			tx = append(tx, append([]byte(nil), frame...))
			return true
		})
		var m sim.Meter
		for i := 0; i < 8; i++ {
			payload := []byte("req payload ")
			payload = append(payload, byte('0'+i))
			in.Receive(sockFrame(in, uint16(6100+i%2), 7000, payload), &m)
		}
		st := k.Stats()
		if st.Delivered != 8 || st.Dropped != 0 {
			t.Fatalf("sockmap=%v delivered=%d dropped=%d, want 8/0", sockmapOn, st.Delivered, st.Dropped)
		}
		if sockmapOn && k.Stats().SockmapSplices != 8 {
			t.Fatalf("splices=%d, want 8", k.Stats().SockmapSplices)
		}
		assertLedger(t, k)
		return tx
	}
	slow := run(false)
	fast := run(true)
	if len(slow) != len(fast) {
		t.Fatalf("egress count: relay %d vs splice %d", len(slow), len(fast))
	}
	for i := range slow {
		if !bytes.Equal(slow[i][12:], fast[i][12:]) {
			t.Fatalf("egress frame %d differs between relay and splice", i)
		}
	}
}

// TestSpliceStaleDrop: unregistering the upstream leg mid-stream turns
// subsequent proxied packets into sockmap_stale drops — never a delivery to
// a dead socket.
func TestSpliceStaleDrop(t *testing.T) {
	k, in, out := proxyHost(t)
	k.SetSysctl("net.core.sockmap", "1")
	registerTestProxy(k)
	out.SetTxHook(func([]byte, *sim.Meter) bool { return true })
	var m sim.Meter
	in.Receive(sockFrame(in, 6100, 7000, []byte("a")), &m)
	if st := k.Stats(); st.SockmapSplices != 1 {
		t.Fatalf("splices=%d, want 1", st.SockmapSplices)
	}

	k.UnregisterSocket(packet.ProtoUDP, 7100) // upstream leg goes away
	in.Receive(sockFrame(in, 6100, 7000, []byte("b")), &m)
	if got := k.DropReasons()[drop.ReasonSockmapStale]; got != 1 {
		t.Fatalf("sockmap_stale = %d, want 1", got)
	}
	st := k.Stats()
	if st.Delivered+st.Dropped != 2 {
		t.Fatalf("conservation: delivered %d + dropped %d != 2", st.Delivered, st.Dropped)
	}
	assertLedger(t, k)

	// And a redirect with no target at all is sk_no_socket.
	k.spliceForward(nil, &SocketMsg{}, &m)
	if got := k.DropReasons()[drop.ReasonSkNoSocket]; got != 1 {
		t.Fatalf("sk_no_socket = %d, want 1", got)
	}
	assertLedger(t, k)
}

// TestRFSUnregisterInvalidatesSockFlow: satellite of the unregister path —
// rfs stamps carry the socket generation, so any unregister anywhere stops
// stale sock-flow entries from steering (the probe CASes them out) until the
// flow's next delivery re-stamps.
func TestRFSUnregisterInvalidatesSockFlow(t *testing.T) {
	k, d := sockHost(t)
	k.SetSysctl("net.core.sockmap", "0") // isolate RFS from the sockmap path
	k.SetSysctl("net.core.rps_sock_flow_entries", "1024")
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	if err := k.EnableRPS([]int{1, 2}, 1024); err != nil {
		t.Fatal(err)
	}
	defer k.DisableRPS()
	m := sim.Meter{CPU: 0}

	send := func() uint64 {
		before := k.Stats().RFSHits
		d.Receive(sockFrame(d, 4001, 7, nil), &m)
		k.RPSQuiesce()
		return k.Stats().RFSHits - before
	}
	send() // no stamp yet: static hash placement, delivery stamps
	if got := send(); got == 0 {
		t.Fatal("second frame took no rfs hit, want stamped placement")
	}

	// Any socket unregister bumps the generation: the stamp is stale and
	// the probe must retire it rather than steer to a possibly-gone socket.
	k.RegisterSocket(packet.ProtoUDP, 99, func(*Kernel, SocketMsg) {})
	k.UnregisterSocket(packet.ProtoUDP, 99)
	if got := send(); got != 0 {
		t.Fatalf("frame after unregister took %d rfs hits, want 0 (stale stamp)", got)
	}
	if got := send(); got == 0 {
		t.Fatal("re-stamped flow took no rfs hit")
	}
	st := k.Stats()
	if st.Delivered != 4 {
		t.Fatalf("delivered=%d, want 4", st.Delivered)
	}
	assertLedger(t, k)
}

// TestSockmapChurnHammer drives concurrent injectors on distinct CPUs
// against continuous register/unregister churn — the -race workout for the
// COW socket table, the seqlock flow table, and the generation plumbing.
// Every packet must be delivered or dropped with a reason; no torn reads.
func TestSockmapChurnHammer(t *testing.T) {
	k, d := sockHost(t)
	k.SetSysctl("net.core.rps_sock_flow_entries", "1024")
	if err := k.EnableRPS([]int{1, 2}, 4096); err != nil {
		t.Fatal(err)
	}
	defer k.DisableRPS()
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})

	const injectors = 4
	const perInjector = 1500
	var injWG, churnWG sync.WaitGroup
	stop := make(chan struct{})

	// Churn: bump the socket generation constantly, and flap the hot port
	// so unregister lands mid-stream.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k.RegisterSocket(packet.ProtoUDP, 99, func(*Kernel, SocketMsg) {})
			k.UnregisterSocket(packet.ProtoUDP, 99)
			if i%8 == 0 {
				k.UnregisterSocket(packet.ProtoUDP, 7)
				k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
			}
		}
	}()

	// Injector CPU ids are disjoint from the RPS accept set {1,2}: one CPU
	// id is one execution context, so a frame whose steering target is the
	// injector's own CPU would otherwise process locally, concurrent with
	// that CPU's kthread on the same flow-table shard.
	for w := 0; w < injectors; w++ {
		injWG.Add(1)
		go func(cpu int) {
			defer injWG.Done()
			m := sim.Meter{CPU: cpu}
			for i := 0; i < perInjector; i++ {
				d.Receive(sockFrame(d, uint16(4000+i%32), 7, nil), &m)
			}
		}(4 + w)
	}
	injWG.Wait()
	close(stop)
	churnWG.Wait()
	k.RPSQuiesce()

	st := k.Stats()
	total := st.Delivered + st.Dropped
	if total != uint64(injectors*perInjector) {
		t.Fatalf("conservation: delivered %d + dropped %d != %d injected", st.Delivered, st.Dropped, injectors*perInjector)
	}
	// Drops may only come from the unregistered windows.
	reasons := k.DropReasons()
	for r, n := range reasons {
		if n == 0 {
			continue
		}
		rr := drop.Reason(r)
		if rr != drop.ReasonNoSocket && rr != drop.ReasonSkNoSocket && rr != drop.ReasonSockmapStale && rr != drop.ReasonRPSBacklogFull {
			t.Fatalf("unexpected drop reason %v = %d", rr, n)
		}
	}
	assertLedger(t, k)
}

// TestSockmapHitZeroAlloc pins the established-flow delivery path at zero
// heap allocations per packet.
func TestSockmapHitZeroAlloc(t *testing.T) {
	k, d := sockHost(t)
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter
	frame := sockFrame(d, 4001, 7, []byte("warm"))
	d.Receive(frame, &m) // install
	d.Receive(frame, &m) // warm pools
	if allocs := testing.AllocsPerRun(200, func() {
		d.Receive(frame, &m)
	}); allocs != 0 {
		t.Fatalf("established-flow delivery allocates %.1f/pkt, want 0", allocs)
	}
}

// --- micro-benchmarks (wired into make bench-smoke) --------------------------

// BenchmarkSockmapHit measures the memoized local delivery.
func BenchmarkSockmapHit(b *testing.B) {
	k := New("bench")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		b.Fatal(err)
	}
	k.SetSysctl("net.core.sockmap", "1")
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter
	frame := sockFrame(d, 4001, 7, make([]byte, 64))
	d.Receive(frame, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Receive(frame, &m)
	}
}

// BenchmarkSockmapSlowDemux measures the same delivery with the fast path
// off — the baseline the hit is racing.
func BenchmarkSockmapSlowDemux(b *testing.B) {
	k := New("bench")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		b.Fatal(err)
	}
	k.RegisterSocket(packet.ProtoUDP, 7, func(*Kernel, SocketMsg) {})
	var m sim.Meter
	frame := sockFrame(d, 4001, 7, make([]byte, 64))
	d.Receive(frame, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Receive(frame, &m)
	}
}

// BenchmarkSockmapSplice measures socket-to-socket proxy forwarding.
func BenchmarkSockmapSplice(b *testing.B) {
	k := New("bench")
	in := k.CreateDevice("eth0", netdev.Physical)
	in.SetUp(true)
	out := k.CreateDevice("eth1", netdev.Physical)
	out.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		b.Fatal(err)
	}
	if err := k.AddAddr("eth1", packet.MustPrefix("10.9.0.1/24")); err != nil {
		b.Fatal(err)
	}
	if err := k.AddNeigh("eth1", packet.MustAddr("10.9.0.2"), packet.MustHWAddr("02:00:00:00:09:02")); err != nil {
		b.Fatal(err)
	}
	k.SetSysctl("net.core.sockmap", "1")
	k.RegisterProxy(
		ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7100, Peer: packet.MustAddr("10.9.0.2"), PeerPort: 7001},
		ProxyEndpoint{Proto: packet.ProtoUDP, LocalPort: 7000, Peer: packet.MustAddr("10.0.0.1"), PeerPort: 6100},
	)
	out.SetTxHook(func([]byte, *sim.Meter) bool { return true })
	var m sim.Meter
	frame := sockFrame(in, 6100, 7000, make([]byte, 64))
	in.Receive(frame, &m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Receive(frame, &m)
	}
}
