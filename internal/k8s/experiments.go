package k8s

import (
	"fmt"
	"strings"
)

// Fig9Point is one pod-pair count's aggregate throughput.
type Fig9Point struct {
	Pairs      int
	LinuxTPS   float64 // transactions per second
	LinuxFPTPS float64
}

// Table5Row is one Table V latency row.
type Table5Row struct {
	Config   string // "Linux (intra)" etc.
	AvgMs    float64
	P99Ms    float64
	StdDevMs float64
}

// runPair builds a cluster, places one pod pair and measures its RR cost.
func runPair(accelerated, intra bool, seed uint64) (RRResult, func(), error) {
	c, err := NewCluster(Config{Nodes: 3, Accelerated: accelerated})
	if err != nil {
		return RRResult{}, nil, err
	}
	cleanup := func() {
		for _, n := range c.Nodes {
			if n.Controller != nil {
				n.Controller.Stop()
			}
		}
	}
	client, err := c.AddPod(c.Nodes[1])
	if err != nil {
		cleanup()
		return RRResult{}, nil, err
	}
	serverNode := c.Nodes[1]
	if !intra {
		serverNode = c.Nodes[2]
	}
	server, err := c.AddPod(serverNode)
	if err != nil {
		cleanup()
		return RRResult{}, nil, err
	}
	res, err := MeasureRR(client, server, 40, seed)
	if err != nil {
		cleanup()
		return RRResult{}, nil, err
	}
	return res, cleanup, nil
}

// Fig9PodThroughput sweeps 1..maxPairs pod pairs for intra or inter-node
// placement, Linux vs LinuxFP.
func Fig9PodThroughput(maxPairs int, intra bool) ([]Fig9Point, error) {
	linux, cl1, err := runPair(false, intra, 42)
	if err != nil {
		return nil, err
	}
	defer cl1()
	lfp, cl2, err := runPair(true, intra, 42)
	if err != nil {
		return nil, err
	}
	defer cl2()

	var out []Fig9Point
	for pairs := 1; pairs <= maxPairs; pairs++ {
		out = append(out, Fig9Point{
			Pairs:      pairs,
			LinuxTPS:   Throughput(linux, pairs),
			LinuxFPTPS: Throughput(lfp, pairs),
		})
	}
	return out, nil
}

// Table5PodLatency measures the single-pair latency rows.
func Table5PodLatency() ([]Table5Row, error) {
	var out []Table5Row
	for _, cfg := range []struct {
		name        string
		accelerated bool
		intra       bool
	}{
		{"Linux (intra)", false, true},
		{"LinuxFP (intra)", true, true},
		{"Linux (inter)", false, false},
		{"LinuxFP (inter)", true, false},
	} {
		res, cleanup, err := runPair(cfg.accelerated, cfg.intra, 42)
		if err != nil {
			return nil, err
		}
		cleanup()
		out = append(out, Table5Row{
			Config: cfg.name, AvgMs: res.MeanMs, P99Ms: res.P99Ms, StdDevMs: res.StdDevMs,
		})
	}
	return out, nil
}

// RenderFig9 formats the throughput sweep.
func RenderFig9(intra []Fig9Point, inter []Fig9Point) string {
	var b strings.Builder
	b.WriteString("Fig. 9: Pod-to-pod throughput (transactions/s)\n")
	fmt.Fprintf(&b, "%-8s%16s%16s%16s%16s\n", "pairs",
		"Linux intra", "LinuxFP intra", "Linux inter", "LinuxFP inter")
	for i := range intra {
		fmt.Fprintf(&b, "%-8d%16.1f%16.1f%16.1f%16.1f\n", intra[i].Pairs,
			intra[i].LinuxTPS, intra[i].LinuxFPTPS, inter[i].LinuxTPS, inter[i].LinuxFPTPS)
	}
	return b.String()
}

// RenderTable5 formats the latency table.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table V: Pod-to-pod latency, single pair (ms)\n")
	fmt.Fprintf(&b, "%-20s%10s%10s%12s\n", "", "Avg.", "P_99", "Std. Dev")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s%10.3f%10.1f%12.3f\n", r.Config, r.AvgMs, r.P99Ms, r.StdDevMs)
	}
	return b.String()
}
