package packet

import "encoding/binary"

// GRO/GSO helpers: raw in-place readers and writers over wire frames, plus
// SegmentTCP, the GSO-style split that turns a coalesced TCP supersegment
// back into wire frames. The GRO engine in internal/kernel merges same-flow
// segments by appending payload bytes; every header field it merged away was
// required identical-or-consecutive at merge time, so resegmentation here can
// reconstruct the original frames byte for byte.

// IPv4TotalLen reads the total-length field of the IPv4 header at l3.
func IPv4TotalLen(frame []byte, l3 int) uint16 {
	return binary.BigEndian.Uint16(frame[l3+2 : l3+4])
}

// IPv4ID reads the identification field of the IPv4 header at l3.
func IPv4ID(frame []byte, l3 int) uint16 {
	return binary.BigEndian.Uint16(frame[l3+4 : l3+6])
}

// SetIPv4TotalLen patches the total-length field at l3 in place, updating
// the header checksum incrementally (RFC 1624) — the same trick DecTTL uses.
func SetIPv4TotalLen(frame []byte, l3 int, v uint16) {
	old := binary.BigEndian.Uint16(frame[l3+2 : l3+4])
	binary.BigEndian.PutUint16(frame[l3+2:l3+4], v)
	csum := binary.BigEndian.Uint16(frame[l3+10 : l3+12])
	binary.BigEndian.PutUint16(frame[l3+10:l3+12], ChecksumUpdate16(csum, old, v))
}

// SetIPv4ID patches the identification field at l3 in place, updating the
// header checksum incrementally.
func SetIPv4ID(frame []byte, l3 int, v uint16) {
	old := binary.BigEndian.Uint16(frame[l3+4 : l3+6])
	binary.BigEndian.PutUint16(frame[l3+4:l3+6], v)
	csum := binary.BigEndian.Uint16(frame[l3+10 : l3+12])
	binary.BigEndian.PutUint16(frame[l3+10:l3+12], ChecksumUpdate16(csum, old, v))
}

// RecomputeIPv4Checksum rewrites the header checksum at l3 from scratch.
func RecomputeIPv4Checksum(frame []byte, l3 int) {
	ihl := int(frame[l3]&0xf) * 4
	frame[l3+10], frame[l3+11] = 0, 0
	binary.BigEndian.PutUint16(frame[l3+10:l3+12], Checksum(frame[l3:l3+ihl]))
}

// RecomputeTCPChecksum rewrites the TCP checksum of the segment starting at
// l4 from scratch, covering the pseudo-header; the segment extent is taken
// from the IP total length at l3.
func RecomputeTCPChecksum(frame []byte, l3, l4 int) {
	seg := frame[l4 : l3+int(IPv4TotalLen(frame, l3))]
	frame[l4+16], frame[l4+17] = 0, 0
	csum := ChecksumWithPseudo(IPv4Src(frame, l3), IPv4Dst(frame, l3), ProtoTCP, seg)
	binary.BigEndian.PutUint16(frame[l4+16:l4+18], csum)
}

// TCPSeq reads the sequence number of the TCP header at l4.
func TCPSeq(frame []byte, l4 int) uint32 {
	return binary.BigEndian.Uint32(frame[l4+4 : l4+8])
}

// TCPAckNum reads the acknowledgement number of the TCP header at l4.
func TCPAckNum(frame []byte, l4 int) uint32 {
	return binary.BigEndian.Uint32(frame[l4+8 : l4+12])
}

// TCPDataOff reads the header length in bytes of the TCP header at l4.
func TCPDataOff(frame []byte, l4 int) int { return int(frame[l4+12]>>4) * 4 }

// TCPRawFlags reads the control bits of the TCP header at l4.
func TCPRawFlags(frame []byte, l4 int) TCPFlags { return TCPFlags(frame[l4+13]) }

// TCPWindow reads the receive window of the TCP header at l4.
func TCPWindow(frame []byte, l4 int) uint16 {
	return binary.BigEndian.Uint16(frame[l4+14 : l4+16])
}

// TCPUrgent reads the urgent pointer of the TCP header at l4.
func TCPUrgent(frame []byte, l4 int) uint16 {
	return binary.BigEndian.Uint16(frame[l4+18 : l4+20])
}

// SegmentTCP splits a coalesced TCP supersegment back into wire frames:
// each output carries up to mss payload bytes behind a copy of the
// supersegment's L2+L3+L4 headers with the IP ID and TCP sequence advanced
// per segment, the IP total length patched, PSH cleared on all but the last
// segment (set there only when pshLast), and both checksums recomputed from
// scratch. GRO required consecutive IDs, in-order sequence numbers, and
// otherwise identical headers at merge time, so for a supersegment built
// from valid frames this is the exact inverse of coalescing; recomputing a
// valid checksum equals the incremental update the fast path would have
// done, so TTL-decremented supersegments resegment byte-identically too.
// All output frames share one backing array: a single allocation per split.
func SegmentTCP(super []byte, l3, l4 int, mss int, pshLast bool) [][]byte {
	hdrLen := l4 + TCPHdrLen
	payload := super[hdrLen : l3+int(IPv4TotalLen(super, l3))]
	if mss <= 0 || len(payload) <= mss {
		mss = len(payload)
	}
	n := (len(payload) + mss - 1) / mss
	if n == 0 {
		n = 1
	}
	backing := make([]byte, 0, n*hdrLen+len(payload))
	out := make([][]byte, 0, n)
	baseSeq := TCPSeq(super, l4)
	baseID := IPv4ID(super, l3)
	flags := TCPRawFlags(super, l4)
	for i, off := 0, 0; off < len(payload) || i == 0; i, off = i+1, off+mss {
		end := off + mss
		if end > len(payload) {
			end = len(payload)
		}
		start := len(backing)
		backing = append(backing, super[:hdrLen]...)
		backing = append(backing, payload[off:end]...)
		seg := backing[start:]
		last := end == len(payload)
		binary.BigEndian.PutUint16(seg[l3+2:l3+4], uint16(hdrLen-l3+(end-off)))
		binary.BigEndian.PutUint16(seg[l3+4:l3+6], baseID+uint16(i))
		binary.BigEndian.PutUint32(seg[l4+4:l4+8], baseSeq+uint32(off))
		f := flags &^ TCPPsh
		if last && pshLast {
			f |= TCPPsh
		}
		seg[l4+13] = byte(f)
		RecomputeIPv4Checksum(seg, l3)
		RecomputeTCPChecksum(seg, l3, l4)
		out = append(out, seg)
		if last {
			break
		}
	}
	return out
}
