// Package steer closes the loop between the observability plane and the
// cpumap redirect layer. The static CPUSpreadOp hashes flows over a fixed
// CPU set, which is optimal exactly when the workload is uniform — under a
// zipf flow-size distribution one heavy flow pins its CPU while the others
// idle, the pinned CPU's ptr_ring overflows, and the drop counters light
// up long after latency already collapsed.
//
// The package provides two pieces:
//
//   - Table: a sticky flow→CPU map that satisfies fpm.CPUPicker. Once a
//     flow is assigned it stays on its CPU (in-order delivery, warm GRO
//     state); only NEW flows follow the current placement policy.
//   - Controller: periodically fed per-CPU load signals (kthread cycle
//     deltas, cpumap overflow drops, queueing-latency P99), it recomputes
//     which CPUs accept new flows and in what proportion, and publishes
//     the result to the Table with one atomic store.
//
// The contract mirrors the kernel's own steering philosophy (RFS's
// "in-order beats placement" rule): ordinary rebalancing never moves an
// established flow — an overloaded CPU sheds load by losing its share of
// *new* flows. Forced migration exists (Table.Migrate) but only fires when
// the caller vouches that the CPU's backlog has drained — the same qtail
// condition RFS checks before retargeting a flow — and even then the CPU's
// heaviest flow stays: an elephant cannot be split, so moving it only
// relocates the hotspot.
package steer

import (
	"sort"
	"sync/atomic"
)

// policy is one published placement decision: the CPUs that currently
// accept new flows, each repeated in proportion to its weight. Read by
// every PickCPU with a single atomic load; replaced whole on rebalance.
type policy struct {
	accept []int32 // weighted round-robin expansion, len > 0
}

// Table is the sticky flow→CPU assignment. Slots are a power-of-two hash
// table indexed by flow hash; each slot packs (CPU+1) in its top byte and
// a packet hit count below (0 in the top byte = unassigned), so the hot
// path maintains a per-flow load estimate with the same atomic it reads
// the assignment from. Collisions simply share a decision — same as the
// kernel's rps_sock_flow_table, which trades perfect flow identity for a
// fixed-size lock-free table.
type Table struct {
	slots  []atomic.Uint64
	mask   uint64
	pol    atomic.Pointer[policy]
	placed atomic.Uint64 // new-flow assignments (table writes)
	moved  atomic.Uint64 // slots reassigned by Flush/Migrate (forced re-pick)
}

const slotHitsMask = (uint64(1) << 56) - 1

func packSlot(cpu int) uint64    { return uint64(cpu+1)<<56 | 1 }
func slotCPU(v uint64) int       { return int(v>>56) - 1 }
func slotHits(v uint64) uint64   { return v & slotHitsMask }
func slotAssigned(v uint64) bool { return v>>56 != 0 }

// NewTable builds a table with at least size slots (rounded up to a power
// of two) and an initial uniform policy over cpus.
func NewTable(size int, cpus []int) *Table {
	n := 1
	for n < size {
		n <<= 1
	}
	t := &Table{slots: make([]atomic.Uint64, n), mask: uint64(n - 1)}
	t.SetPolicy(cpus, nil)
	return t
}

// PickCPU implements fpm.CPUPicker: sticky assignment for known flows, the
// current policy for new ones. Safe for concurrent use with SetPolicy,
// Flush, and Migrate; a racing reassignment may cost one extra re-pick,
// never a lost frame.
func (t *Table) PickCPU(hash uint64) int {
	slot := &t.slots[hash&t.mask]
	for {
		v := slot.Load()
		if slotAssigned(v) {
			// Sticky hit: count it. The add cannot carry into the CPU byte
			// (hits would need 2^56 packets), and a concurrent Migrate that
			// just cleared the slot only makes this bump land on an
			// unassigned slot — the next packet's CAS claims over it.
			slot.Add(1)
			return slotCPU(v)
		}
		p := t.pol.Load()
		cpu := p.accept[hash%uint64(len(p.accept))]
		// CAS so two CPUs racing on the same new flow agree on one target —
		// losing the race means adopting the winner's pick, keeping the
		// flow on a single CPU from its very first packet.
		if slot.CompareAndSwap(v, packSlot(int(cpu))) {
			t.placed.Add(1)
			return int(cpu)
		}
	}
}

// SetPolicy publishes a new placement for future flows: cpus with optional
// integer weights (nil = uniform). Established assignments are untouched.
func (t *Table) SetPolicy(cpus []int, weights []int) {
	accept := make([]int32, 0, len(cpus))
	for i, c := range cpus {
		w := 1
		if weights != nil && i < len(weights) {
			w = weights[i]
		}
		for j := 0; j < w; j++ {
			accept = append(accept, int32(c))
		}
	}
	if len(accept) == 0 && len(cpus) > 0 {
		// All weights zero: fall back to uniform rather than a policy no
		// PickCPU could satisfy.
		for _, c := range cpus {
			accept = append(accept, int32(c))
		}
	}
	if len(accept) == 0 {
		accept = []int32{0}
	}
	t.pol.Store(&policy{accept: accept})
}

// Flush clears every assignment pointing at cpu, forcing those flows to
// re-pick under the current policy — the CPU-removed-from-service path.
// Safe only when cpu's queue has drained (its qtail caught up): clearing a
// slot while frames of that flow are still parked on cpu would let the
// re-picked CPU overtake them.
func (t *Table) Flush(cpu int) (flows int) {
	for i := range t.slots {
		v := t.slots[i].Load()
		if slotAssigned(v) && slotCPU(v) == cpu && t.slots[i].CompareAndSwap(v, 0) {
			flows++
		}
	}
	t.moved.Add(uint64(flows))
	return flows
}

// Migrate sheds load from an overloaded CPU by forcing its flows to
// re-pick under the current policy — all but the heaviest (an elephant
// cannot be split across CPUs; everything else can run elsewhere), and
// only up to share of the CPU's observed packet hits, so a mild overload
// moves a few mice rather than reshuffling everything. Like Flush, callers
// must ensure cpu's backlog has drained first: that is the qtail rule that
// keeps forced migration order-safe.
func (t *Table) Migrate(cpu int, share float64) (flows int) {
	type cand struct {
		idx  int
		hits uint64
	}
	var cands []cand
	var total uint64
	for i := range t.slots {
		v := t.slots[i].Load()
		if slotAssigned(v) && slotCPU(v) == cpu {
			cands = append(cands, cand{i, slotHits(v)})
			total += slotHits(v)
		}
	}
	if len(cands) < 2 || total == 0 {
		return 0
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].hits > cands[b].hits })
	budget := uint64(share * float64(total))
	var spent uint64
	for _, c := range cands[1:] { // cands[0], the heaviest, stays
		if spent+c.hits > budget {
			continue // too heavy for the remaining budget; try lighter ones
		}
		v := t.slots[c.idx].Load()
		if !slotAssigned(v) || slotCPU(v) != cpu {
			continue
		}
		// CAS: racing traffic may have bumped hits since the scan — retry
		// once with the fresh value, else leave the flow where it is.
		if !t.slots[c.idx].CompareAndSwap(v, 0) {
			v = t.slots[c.idx].Load()
			if !slotAssigned(v) || slotCPU(v) != cpu || !t.slots[c.idx].CompareAndSwap(v, 0) {
				continue
			}
		}
		spent += c.hits
		flows++
	}
	t.moved.Add(uint64(flows))
	return flows
}

// Stats reports cumulative table activity.
func (t *Table) Stats() (placed, moved uint64) {
	return t.placed.Load(), t.moved.Load()
}

// CPULoad is one CPU's signal sample, cumulative counters as exposed by
// the cpumap/observability plane: EntryCycles for work, the per-reason
// cpumap_overflow drop counter for loss, and the entry's queueing-latency
// P99 for the early-warning signal that fires before drops do.
type CPULoad struct {
	CPU    int
	Cycles float64 // cumulative kthread cycles (ebpf.CPUMap.EntryCycles)
	Drops  uint64  // cumulative cpumap ring-overflow drops on this CPU
	P99    float64 // current queueing-latency P99 in cycles (0 = no signal)
	// Drained marks the CPU's backlog as fully caught up at sample time
	// (qtail == delivered). Only a drained CPU may have flows migrated off
	// it — the out-of-order guard applied to forced migration.
	Drained bool
}

// Config tunes the controller's reaction.
type Config struct {
	// ShedFactor: a CPU whose cycle delta exceeds ShedFactor × the mean
	// delta is overloaded and stops accepting new flows. Default 1.5.
	ShedFactor float64
	// LatP99Shed: a CPU whose queueing P99 exceeds this many cycles is
	// overloaded regardless of its cycle share. Default 0 (disabled).
	LatP99Shed float64
	// Migrate allows the controller to force flows OFF an overloaded CPU
	// (Table.Migrate) when the sample marks it Drained. Off by default:
	// shedding new flows is always safe; forced migration needs the
	// caller to vouch for the drain.
	Migrate bool
}

// Controller turns load samples into Table policies. Single goroutine use;
// only its Table publications are concurrent with the data path.
type Controller struct {
	table *Table
	cfg   Config

	prev map[int]CPULoad // previous cumulative sample per CPU

	rebalances uint64 // policies published with a non-uniform accept set
}

// NewController binds a controller to the table it steers.
func NewController(table *Table, cfg Config) *Controller {
	if cfg.ShedFactor <= 1 {
		cfg.ShedFactor = 1.5
	}
	return &Controller{table: table, cfg: cfg, prev: make(map[int]CPULoad)}
}

// Observe ingests one sample per CPU and republishes the placement policy:
// CPUs keep weight in inverse proportion to their cycle delta, and a CPU
// that dropped packets since the last sample — or whose queueing P99
// crossed the shed threshold — is removed from the accept set outright
// (its backlog already proves it cannot take more). At least one CPU
// always remains accepting: with everything overloaded, the least-loaded
// CPU is the right place for new flows anyway.
func (c *Controller) Observe(loads []CPULoad) {
	if len(loads) == 0 {
		return
	}
	type delta struct {
		cpu      int
		cycles   float64
		dropped  bool
		latOver  bool
		overMean bool
		drained  bool
	}
	ds := make([]delta, 0, len(loads))
	var total float64
	for _, l := range loads {
		p := c.prev[l.CPU]
		d := delta{
			cpu:     l.CPU,
			cycles:  l.Cycles - p.Cycles,
			dropped: l.Drops > p.Drops,
			latOver: c.cfg.LatP99Shed > 0 && l.P99 > c.cfg.LatP99Shed,
			drained: l.Drained,
		}
		if d.cycles < 0 {
			d.cycles = 0 // counter reset upstream: treat as idle
		}
		total += d.cycles
		ds = append(ds, d)
		c.prev[l.CPU] = l
	}
	mean := total / float64(len(ds))

	cpus := make([]int, 0, len(ds))
	weights := make([]int, 0, len(ds))
	minIdx, shed := 0, false
	for i := range ds {
		d := &ds[i]
		d.overMean = mean > 0 && d.cycles > c.cfg.ShedFactor*mean
		if d.cycles < ds[minIdx].cycles {
			minIdx = i
		}
		w := weightFor(d.cycles, mean)
		if d.dropped || d.latOver || d.overMean {
			w = 0
			shed = true
		}
		cpus = append(cpus, d.cpu)
		weights = append(weights, w)
	}
	allZero := true
	for _, w := range weights {
		if w > 0 {
			allZero = false
			break
		}
	}
	if allZero {
		weights[minIdx] = 1
	}
	if shed {
		c.rebalances++
	}
	c.table.SetPolicy(cpus, weights)

	// Forced migration runs after the policy store so evicted flows re-pick
	// under the placement that already excludes the overloaded CPUs. The
	// budget is the fraction of the CPU's work above the mean: a mild
	// overload sheds a few mice, a pinned CPU sheds everything but its
	// elephant.
	if c.cfg.Migrate {
		for i := range ds {
			d := &ds[i]
			if !(d.dropped || d.latOver || d.overMean) || !d.drained || d.cycles <= mean {
				continue
			}
			c.table.Migrate(d.cpu, (d.cycles-mean)/d.cycles)
		}
	}
}

// weightFor maps a cycle delta to an integer share: idle CPUs get the most
// new flows, busy-but-healthy CPUs get fewer, in four coarse steps so the
// accept slice stays small.
func weightFor(cycles, mean float64) int {
	if mean <= 0 {
		return 1
	}
	switch r := cycles / mean; {
	case r < 0.5:
		return 4
	case r < 1.0:
		return 2
	default:
		return 1
	}
}

// Rebalances reports how many Observe calls shed at least one CPU.
func (c *Controller) Rebalances() uint64 { return c.rebalances }
