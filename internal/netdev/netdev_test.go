package netdev

import (
	"sync"
	"testing"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// fakeStack records delivered frames.
type fakeStack struct {
	mu      sync.Mutex
	frames  [][]byte
	devices map[int]*Device
}

func newFakeStack() *fakeStack { return &fakeStack{devices: make(map[int]*Device)} }

func (s *fakeStack) DeliverFrame(dev *Device, frame []byte, m *sim.Meter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, frame)
}

func (s *fakeStack) DeviceByIndex(i int) (*Device, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devices[i]
	return d, ok
}

func (s *fakeStack) delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// xdpFunc adapts a func to XDPHandler.
type xdpFunc func(*XDPBuff) XDPAction

func (f xdpFunc) HandleXDP(b *XDPBuff) XDPAction { return f(b) }

var testMAC = packet.MustHWAddr("02:00:00:00:00:01")

func frameTo(dst packet.HWAddr) []byte {
	return packet.BuildEthernet(packet.Ethernet{Dst: dst, Src: testMAC, EtherType: packet.EtherTypeIPv4}, []byte{1, 2, 3})
}

func pair(t *testing.T) (*Device, *Device, *fakeStack, *fakeStack) {
	t.Helper()
	sa, sb := newFakeStack(), newFakeStack()
	a := New("a0", 1, Physical, testMAC, sa)
	b := New("b0", 1, Physical, packet.MustHWAddr("02:00:00:00:00:02"), sb)
	a.SetUp(true)
	b.SetUp(true)
	Connect(a, b)
	return a, b, sa, sb
}

func TestTransmitReachesPeerStack(t *testing.T) {
	a, b, _, sb := pair(t)
	var m sim.Meter
	a.Transmit(frameTo(b.MAC), &m)
	if sb.delivered() != 1 {
		t.Fatalf("delivered %d", sb.delivered())
	}
	if st := a.Stats(); st.TxPackets != 1 || st.TxBytes == 0 {
		t.Fatalf("tx stats %+v", st)
	}
	if st := b.Stats(); st.RxPackets != 1 {
		t.Fatalf("rx stats %+v", st)
	}
	if m.Total == 0 {
		t.Fatal("per-byte cost not charged")
	}
}

func TestFrameCopiedAcrossWire(t *testing.T) {
	a, _, _, sb := pair(t)
	f := frameTo(packet.BroadcastHW)
	a.Transmit(f, nil)
	f[0] = 0xEE // mutate sender's buffer after transmit
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.frames[0][0] == 0xEE {
		t.Fatal("frame aliased across the wire")
	}
}

func TestDownDeviceDrops(t *testing.T) {
	a, b, _, sb := pair(t)
	a.SetUp(false)
	a.Transmit(frameTo(b.MAC), nil)
	if st := a.Stats(); st.TxDropped != 1 {
		t.Fatalf("tx drop not counted: %+v", st)
	}
	a.SetUp(true)
	b.SetUp(false)
	a.Transmit(frameTo(b.MAC), nil)
	if st := b.Stats(); st.RxDropped != 1 {
		t.Fatalf("rx drop not counted: %+v", st)
	}
	if sb.delivered() != 0 {
		t.Fatal("down device delivered frames")
	}
}

func TestUnpluggedDeviceDrops(t *testing.T) {
	s := newFakeStack()
	a := New("a0", 1, Physical, testMAC, s)
	a.SetUp(true)
	a.Transmit(frameTo(packet.BroadcastHW), nil)
	if st := a.Stats(); st.TxDropped != 1 {
		t.Fatalf("unplugged tx should drop: %+v", st)
	}
	b := New("b0", 2, Physical, testMAC, s)
	b.SetUp(true)
	Connect(a, b)
	Disconnect(a)
	if a.Peer() != nil || b.Peer() != nil {
		t.Fatal("disconnect left peers")
	}
}

func TestXDPDrop(t *testing.T) {
	a, b, _, sb := pair(t)
	b.AttachXDP(xdpFunc(func(*XDPBuff) XDPAction { return XDPDrop }), "driver")
	a.Transmit(frameTo(b.MAC), nil)
	if sb.delivered() != 0 {
		t.Fatal("dropped frame reached stack")
	}
	if st := b.Stats(); st.XDPDrops != 1 {
		t.Fatalf("xdp drop not counted: %+v", st)
	}
	if ok, mode := b.XDPAttached(); !ok || mode != "driver" {
		t.Fatalf("attached: %v %q", ok, mode)
	}
}

func TestXDPPassChargesAndDelivers(t *testing.T) {
	a, b, _, sb := pair(t)
	b.AttachXDP(xdpFunc(func(*XDPBuff) XDPAction { return XDPPass }), "driver")
	var m sim.Meter
	a.Transmit(frameTo(b.MAC), &m)
	if sb.delivered() != 1 {
		t.Fatal("passed frame lost")
	}
	if m.Total < sim.CostXDPPass {
		t.Fatalf("pass cost not charged: %v", m.Total)
	}
}

func TestXDPTxBouncesFrame(t *testing.T) {
	a, b, sa, sb := pair(t)
	b.AttachXDP(xdpFunc(func(buf *XDPBuff) XDPAction {
		// Swap MACs and bounce — a tiny XDP reflector.
		src := packet.EthSrc(buf.Data)
		packet.SetEthSrc(buf.Data, packet.EthDst(buf.Data))
		packet.SetEthDst(buf.Data, src)
		return XDPTx
	}), "driver")
	a.Transmit(frameTo(b.MAC), nil)
	if sa.delivered() != 1 {
		t.Fatal("bounced frame did not return")
	}
	if sb.delivered() != 0 {
		t.Fatal("bounced frame also delivered")
	}
	if st := b.Stats(); st.XDPTx != 1 || st.TxPackets != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestXDPRedirect(t *testing.T) {
	// a --- b [XDP redirect to c] ,  c --- d
	sa, sb := newFakeStack(), newFakeStack()
	a := New("a", 1, Physical, testMAC, sa)
	b := New("b", 2, Physical, testMAC, sb)
	c := New("c", 3, Physical, testMAC, sb) // same host as b
	dStack := newFakeStack()
	d := New("d", 4, Physical, testMAC, dStack)
	for _, dev := range []*Device{a, b, c, d} {
		dev.SetUp(true)
	}
	Connect(a, b)
	Connect(c, d)
	sb.devices[3] = c
	b.AttachXDP(xdpFunc(func(buf *XDPBuff) XDPAction {
		buf.RedirectTo = 3
		return XDPRedirect
	}), "driver")
	var m sim.Meter
	a.Transmit(frameTo(b.MAC), &m)
	if dStack.delivered() != 1 {
		t.Fatal("redirected frame did not arrive at d")
	}
	if sb.delivered() != 0 {
		t.Fatal("redirected frame leaked into b's stack")
	}
	if st := b.Stats(); st.XDPRedirects != 1 {
		t.Fatalf("redirect not counted: %+v", st)
	}
	if m.Total < sim.CostXDPRedirect {
		t.Fatalf("redirect cost not charged: %v", m.Total)
	}
	// Redirect to a nonexistent ifindex silently drops.
	b.AttachXDP(xdpFunc(func(buf *XDPBuff) XDPAction {
		buf.RedirectTo = 99
		return XDPRedirect
	}), "driver")
	a.Transmit(frameTo(b.MAC), nil)
	if dStack.delivered() != 1 {
		t.Fatal("bogus redirect delivered somewhere")
	}
}

func TestXDPAtomicSwapUnderTraffic(t *testing.T) {
	a, b, _, sb := pair(t)
	drop := xdpFunc(func(*XDPBuff) XDPAction { return XDPDrop })
	pass := xdpFunc(func(*XDPBuff) XDPAction { return XDPPass })
	b.AttachXDP(drop, "driver")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.AttachXDP(pass, "driver")
				b.AttachXDP(drop, "driver")
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		a.Transmit(frameTo(b.MAC), nil)
	}
	close(stop)
	wg.Wait()
	st := b.Stats()
	// Every packet either dropped or delivered — none lost or double-counted.
	if int(st.XDPDrops)+sb.delivered() != 2000 {
		t.Fatalf("drops %d + delivered %d != 2000", st.XDPDrops, sb.delivered())
	}
}

func TestDetachXDP(t *testing.T) {
	a, b, _, sb := pair(t)
	b.AttachXDP(xdpFunc(func(*XDPBuff) XDPAction { return XDPDrop }), "driver")
	b.DetachXDP()
	if ok, _ := b.XDPAttached(); ok {
		t.Fatal("still attached after detach")
	}
	a.Transmit(frameTo(b.MAC), nil)
	if sb.delivered() != 1 {
		t.Fatal("frame lost after detach")
	}
	// Attaching nil is equivalent to detach.
	b.AttachXDP(nil, "driver")
	if ok, _ := b.XDPAttached(); ok {
		t.Fatal("nil attach left a program")
	}
}

func TestAddrManagement(t *testing.T) {
	d := New("eth0", 1, Physical, testMAC, nil)
	p1 := packet.MustPrefix("10.0.0.1/24")
	d.AddAddr(p1)
	d.AddAddr(p1) // idempotent
	d.AddAddr(packet.MustPrefix("10.0.1.1/24"))
	if len(d.Addrs()) != 2 {
		t.Fatalf("addrs %v", d.Addrs())
	}
	if !d.HasAddr(packet.MustAddr("10.0.0.1")) || d.HasAddr(packet.MustAddr("10.0.0.2")) {
		t.Fatal("HasAddr wrong")
	}
	if !d.DelAddr(p1) || d.DelAddr(p1) {
		t.Fatal("DelAddr semantics wrong")
	}
}

func TestMasterAssignment(t *testing.T) {
	d := New("veth0", 5, Veth, testMAC, nil)
	if d.Master() != 0 {
		t.Fatal("fresh device has master")
	}
	d.SetMaster(10)
	if d.Master() != 10 {
		t.Fatal("master not set")
	}
	d.SetMaster(0)
	if d.Master() != 0 {
		t.Fatal("master not cleared")
	}
}

func TestTapObservesFrames(t *testing.T) {
	a, b, _, _ := pair(t)
	var seen [][]byte
	b.Tap = func(f []byte) { seen = append(seen, f) }
	b.AttachXDP(xdpFunc(func(*XDPBuff) XDPAction { return XDPDrop }), "driver")
	a.Transmit(frameTo(b.MAC), nil)
	if len(seen) != 1 {
		t.Fatal("tap should see frames even when XDP drops them")
	}
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	sw := NewSwitch()
	stacks := make([]*fakeStack, 3)
	devs := make([]*Device, 3)
	for i := range devs {
		stacks[i] = newFakeStack()
		mac := packet.HWAddr{2, 0, 0, 0, 0, byte(i + 1)}
		devs[i] = New("n", i+1, Physical, mac, stacks[i])
		devs[i].SetUp(true)
		sw.Attach(devs[i])
	}
	// Unknown destination floods to the other two ports.
	devs[0].Transmit(packet.BuildEthernet(packet.Ethernet{
		Dst: devs[2].MAC, Src: devs[0].MAC, EtherType: packet.EtherTypeIPv4}, nil), nil)
	if stacks[1].delivered() != 1 || stacks[2].delivered() != 1 {
		t.Fatalf("flood: %d %d", stacks[1].delivered(), stacks[2].delivered())
	}
	// Reply teaches the switch; next frame is unicast only.
	devs[2].Transmit(packet.BuildEthernet(packet.Ethernet{
		Dst: devs[0].MAC, Src: devs[2].MAC, EtherType: packet.EtherTypeIPv4}, nil), nil)
	devs[0].Transmit(packet.BuildEthernet(packet.Ethernet{
		Dst: devs[2].MAC, Src: devs[0].MAC, EtherType: packet.EtherTypeIPv4}, nil), nil)
	if stacks[1].delivered() != 1 {
		t.Fatal("learned unicast still flooded")
	}
	if stacks[2].delivered() != 2 {
		t.Fatalf("unicast lost: %d", stacks[2].delivered())
	}
	// Runt frames are ignored.
	sw.Send(devs[0], []byte{1, 2}, nil)
}

func TestDeviceTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		Physical: "physical", Veth: "veth", BridgeDev: "bridge", VXLAN: "vxlan", Loopback: "loopback",
	} {
		if typ.String() != want {
			t.Errorf("%d -> %q", typ, typ.String())
		}
	}
	for act, want := range map[XDPAction]string{
		XDPDrop: "XDP_DROP", XDPPass: "XDP_PASS", XDPTx: "XDP_TX", XDPRedirect: "XDP_REDIRECT", XDPAborted: "XDP_ABORTED",
	} {
		if act.String() != want {
			t.Errorf("%d -> %q", act, act.String())
		}
	}
}
