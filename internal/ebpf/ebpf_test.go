package ebpf

import (
	"errors"
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/kernel"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

func opReturning(name string, v Verdict) Op {
	return NewOp(name, 10, 0, 8, func(*Ctx) Verdict { return v })
}

func TestProgramRunSequencing(t *testing.T) {
	var order []string
	mk := func(name string, v Verdict) Op {
		return NewOp(name, 5, 0, 4, func(*Ctx) Verdict {
			order = append(order, name)
			return v
		})
	}
	p := &Program{Name: "seq", Hook: HookXDP, Ops: []Op{
		mk("a", VerdictNext), mk("b", VerdictNext), mk("c", VerdictDrop), mk("d", VerdictNext),
	}}
	ctx := &Ctx{Meter: &sim.Meter{}}
	if v := p.run(ctx); v != VerdictDrop {
		t.Fatalf("verdict %v", v)
	}
	if len(order) != 3 || order[2] != "c" {
		t.Fatalf("order %v — op d must not run after a terminal verdict", order)
	}
	// Cost accumulates per executed op.
	if ctx.Meter.Total != 15 {
		t.Fatalf("charged %v, want 15", ctx.Meter.Total)
	}
}

func TestProgramDefaultVerdict(t *testing.T) {
	p := &Program{Name: "fallthrough", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictNext)}}
	if v := p.run(&Ctx{Meter: &sim.Meter{}}); v != VerdictPass {
		t.Fatalf("unset default should be pass, got %v", v)
	}
	p.Default = VerdictDrop
	if v := p.run(&Ctx{Meter: &sim.Meter{}}); v != VerdictDrop {
		t.Fatal("explicit default ignored")
	}
}

func TestVerifierRejectsEmptyProgram(t *testing.T) {
	var v Verifier
	if err := v.Verify(&Program{Name: "e", Hook: HookXDP}); !errors.Is(err, ErrEmptyProgram) {
		t.Fatalf("err %v", err)
	}
	if err := v.Verify(nil); !errors.Is(err, ErrEmptyProgram) {
		t.Fatalf("nil: %v", err)
	}
}

func TestVerifierRejectsOversizedProgram(t *testing.T) {
	v := Verifier{MaxInsns: 100}
	p := &Program{Name: "big", Hook: HookXDP}
	for i := 0; i < 20; i++ {
		p.Ops = append(p.Ops, NewOp("pad", 1, 0, 10, func(*Ctx) Verdict { return VerdictNext }))
	}
	if err := v.Verify(p); !errors.Is(err, ErrTooManyInsns) {
		t.Fatalf("err %v", err)
	}
	v.MaxInsns = 300
	if err := v.Verify(p); err != nil {
		t.Fatalf("within budget: %v", err)
	}
}

func TestVerifierEnforcesHookCaps(t *testing.T) {
	var v Verifier
	skbOp := NewOp("read_skb_mark", 5, CapSKB, 4, func(*Ctx) Verdict { return VerdictNext })
	p := &Program{Name: "needs-skb", Hook: HookXDP, Ops: []Op{skbOp}}
	if err := v.Verify(p); !errors.Is(err, ErrMissingCap) {
		t.Fatalf("XDP must reject skb ops: %v", err)
	}
	p.Hook = HookTCIngress
	if err := v.Verify(p); err != nil {
		t.Fatalf("TC should allow skb ops: %v", err)
	}
	p.Hook = Hook(99)
	if err := v.Verify(p); !errors.Is(err, ErrBadHook) {
		t.Fatalf("bad hook: %v", err)
	}
}

func TestLoaderAssignsIDs(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	p1, err := l.Load(&Program{Name: "a", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictPass)}})
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := l.Load(&Program{Name: "b", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictPass)}})
	if p1.ID() == 0 || p1.ID() == p2.ID() {
		t.Fatalf("ids %d %d", p1.ID(), p2.ID())
	}
	if l.LoadedCount() != 2 {
		t.Fatalf("loaded %d", l.LoadedCount())
	}
	if !l.Unload(p1.ID()) || l.Unload(p1.ID()) {
		t.Fatal("unload semantics")
	}
	// Load rejects what the verifier rejects.
	if _, err := l.Load(&Program{Name: "bad", Hook: HookXDP}); err == nil {
		t.Fatal("empty program loaded")
	}
}

func TestAttachXDPChecksHookAndLoad(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	d := k.CreateDevice("eth0", netdev.Physical)
	tcProg := &Program{Name: "tc", Hook: HookTCIngress, Ops: []Op{opReturning("x", VerdictPass)}}
	if err := l.AttachXDP(d, tcProg, "driver"); err == nil {
		t.Fatal("attached TC program to XDP")
	}
	unloaded := &Program{Name: "u", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictPass)}}
	if err := l.AttachXDP(d, unloaded, "driver"); err == nil {
		t.Fatal("attached unloaded program")
	}
	xdp, _ := l.Load(&Program{Name: "x", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictDrop)}})
	if err := l.AttachXDP(d, xdp, "driver"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.XDPAttached(); !ok {
		t.Fatal("not attached")
	}
}

func TestAttachTCChecksHook(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	d := k.CreateDevice("eth0", netdev.Physical)
	xdpProg, _ := l.Load(&Program{Name: "x", Hook: HookXDP, Ops: []Op{opReturning("x", VerdictPass)}})
	if err := l.AttachTC(d.Index, xdpProg); err == nil {
		t.Fatal("attached XDP program to TC")
	}
	tc, _ := l.Load(&Program{Name: "t", Hook: HookTCIngress, Ops: []Op{opReturning("x", VerdictPass)}})
	if err := l.AttachTC(d.Index, tc); err != nil {
		t.Fatal(err)
	}
	if !k.TCAttached(d.Index, true) {
		t.Fatal("not attached")
	}
}

func TestXDPAdapterVerdictMapping(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	cases := []struct {
		v    Verdict
		want netdev.XDPAction
	}{
		{VerdictDrop, netdev.XDPDrop},
		{VerdictPass, netdev.XDPPass},
		{VerdictTX, netdev.XDPTx},
		{VerdictAborted, netdev.XDPAborted},
	}
	for _, c := range cases {
		p, _ := l.Load(&Program{Name: "m", Hook: HookXDP, Ops: []Op{opReturning("x", c.v)}})
		a := &xdpAdapter{k: k, prog: p}
		buff := &netdev.XDPBuff{Data: []byte{1}, Meter: &sim.Meter{}}
		if got := a.HandleXDP(buff); got != c.want {
			t.Errorf("verdict %v -> %v, want %v", c.v, got, c.want)
		}
		if buff.Meter.Total < sim.CostXDPPrologue {
			t.Error("XDP prologue not charged")
		}
	}
	// Redirect carries the ifindex out.
	p, _ := l.Load(&Program{Name: "r", Hook: HookXDP, Ops: []Op{
		NewOp("redir", 1, CapRedirect, 2, func(c *Ctx) Verdict {
			c.RedirectIfIndex = 42
			return VerdictRedirect
		}),
	}})
	a := &xdpAdapter{k: k, prog: p}
	buff := &netdev.XDPBuff{Data: []byte{1}, Meter: &sim.Meter{}}
	if got := a.HandleXDP(buff); got != netdev.XDPRedirect || buff.RedirectTo != 42 {
		t.Fatalf("redirect mapping: %v to %d", got, buff.RedirectTo)
	}
}

func TestTailCallDepthLimit(t *testing.T) {
	pa := NewProgArray("t", 1)
	var selfCall *Program
	selfCall = &Program{Name: "loop", Hook: HookXDP, Ops: []Op{
		NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict {
			return c.TailCall(pa, 0)
		}),
	}}
	pa.Update(0, selfCall)
	ctx := &Ctx{Meter: &sim.Meter{}}
	if v := selfCall.run(ctx); v != VerdictAborted {
		t.Fatalf("unbounded tail-call chain returned %v", v)
	}
	// Exactly MaxTailCalls tail-call costs were charged.
	if got := ctx.Meter.Total; got != sim.Cycles(MaxTailCalls+1)*sim.CostTailCall {
		t.Fatalf("charged %v", got)
	}
}

func TestTailCallEmptySlotAborts(t *testing.T) {
	pa := NewProgArray("t", 2)
	p := &Program{Name: "entry", Hook: HookXDP, Ops: []Op{
		NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict { return c.TailCall(pa, 1) }),
	}}
	if v := p.run(&Ctx{Meter: &sim.Meter{}}); v != VerdictAborted {
		t.Fatalf("empty slot returned %v", v)
	}
	// Out-of-range slot too.
	p2 := &Program{Name: "oob", Hook: HookXDP, Ops: []Op{
		NewOp("tail", 0, CapTailCall, 4, func(c *Ctx) Verdict { return c.TailCall(pa, 9) }),
	}}
	if v := p2.run(&Ctx{Meter: &sim.Meter{}}); v != VerdictAborted {
		t.Fatalf("oob slot returned %v", v)
	}
}

func TestDispatcherAtomicSwap(t *testing.T) {
	k := kernel.New("t")
	l := NewLoader(k)
	disp, err := l.NewDispatcher("main", HookXDP)
	if err != nil {
		t.Fatal(err)
	}
	// Empty dispatcher: tail call aborts -> adapter maps to XDPAborted,
	// but dispatcher semantics should be "pass to slow path" — the entry
	// program's tail-call failure falls through in real BPF. Model: the
	// abort is visible; LinuxFP always installs a program before attach.
	drop, _ := l.Load(&Program{Name: "drop", Hook: HookXDP, Ops: []Op{opReturning("d", VerdictDrop)}})
	pass, _ := l.Load(&Program{Name: "pass", Hook: HookXDP, Ops: []Op{opReturning("p", VerdictPass)}})

	disp.Swap(drop)
	if disp.Active() != drop {
		t.Fatal("active program wrong")
	}
	ctx := &Ctx{Meter: &sim.Meter{}}
	if v := disp.Prog.run(ctx); v != VerdictDrop {
		t.Fatalf("dispatch to drop: %v", v)
	}
	disp.Swap(pass)
	ctx = &Ctx{Meter: &sim.Meter{}}
	if v := disp.Prog.run(ctx); v != VerdictPass {
		t.Fatalf("dispatch to pass: %v", v)
	}
	// Tail-call cost is charged on every dispatch (Fig. 10's overhead).
	if ctx.Meter.Total < sim.CostTailCall {
		t.Fatal("tail call not charged")
	}
	disp.Swap(nil)
	if disp.Active() != nil {
		t.Fatal("clear failed")
	}
}

func TestDispatcherSwapUnderTraffic(t *testing.T) {
	// No packet may observe a half-installed program: every run returns
	// either old or new verdict, never aborted, while swapping rapidly.
	k := kernel.New("t")
	l := NewLoader(k)
	disp, _ := l.NewDispatcher("main", HookXDP)
	drop, _ := l.Load(&Program{Name: "drop", Hook: HookXDP, Ops: []Op{opReturning("d", VerdictDrop)}})
	pass, _ := l.Load(&Program{Name: "pass", Hook: HookXDP, Ops: []Op{opReturning("p", VerdictPass)}})
	disp.Swap(drop)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			if i%2 == 0 {
				disp.Swap(pass)
			} else {
				disp.Swap(drop)
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		v := disp.Prog.run(&Ctx{Meter: &sim.Meter{}})
		if v != VerdictDrop && v != VerdictPass {
			t.Fatalf("packet observed invalid state: %v", v)
		}
	}
	<-done
}

func TestHelperFIBLookup(t *testing.T) {
	k := kernel.New("t")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	k.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.5.0.0/16"), Gateway: packet.MustAddr("10.0.0.254"), OutIf: d.Index})

	ctx := &Ctx{Kernel: k, Meter: &sim.Meter{}}
	// No neighbour entry yet: helper must miss (punt to slow path).
	if _, ok := HelperFIBLookup(ctx, packet.MustAddr("10.5.1.1")); ok {
		t.Fatal("unresolved neighbour should miss")
	}
	gwMAC := packet.MustHWAddr("02:00:00:00:aa:01")
	k.Neigh.AddPermanent(packet.MustAddr("10.0.0.254"), gwMAC, d.Index)
	res, ok := HelperFIBLookup(ctx, packet.MustAddr("10.5.1.1"))
	if !ok || res.EgressIfIndex != d.Index || res.DstMAC != gwMAC || res.SrcMAC != d.MAC {
		t.Fatalf("fib helper: %+v ok=%v", res, ok)
	}
	// No route at all.
	if _, ok := HelperFIBLookup(ctx, packet.MustAddr("99.9.9.9")); ok {
		t.Fatal("no-route should miss")
	}
	// Local destination punts (delivery is slow-path work).
	if _, ok := HelperFIBLookup(ctx, packet.MustAddr("10.0.0.1")); ok {
		t.Fatal("local dst should miss")
	}
	// Down egress device punts.
	d.SetUp(false)
	if _, ok := HelperFIBLookup(ctx, packet.MustAddr("10.5.1.1")); ok {
		t.Fatal("down device should miss")
	}
	if ctx.Meter.Total < 4*sim.CostHelperFIB {
		t.Fatal("helper cost not charged per call")
	}
}

func TestHelperFDBLookup(t *testing.T) {
	k := kernel.New("t")
	_, br := k.CreateBridge("br0")
	br.AddPort(5)
	mac := packet.MustHWAddr("02:00:00:00:bb:01")
	ctx := &Ctx{Kernel: k, Meter: &sim.Meter{}}

	if _, ok := HelperFDBLookup(ctx, br, mac, 0); ok {
		t.Fatal("unlearned MAC should miss")
	}
	br.Learn(mac, 0, 5, 0)
	port, ok := HelperFDBLookup(ctx, br, mac, 0)
	if !ok || port != 5 {
		t.Fatalf("fdb helper: %d %v", port, ok)
	}
	// Blocked port punts even on FDB hit.
	p, _ := br.Port(5)
	p.State = 2 // bridge.Blocking
	if _, ok := HelperFDBLookup(ctx, br, mac, 0); ok {
		t.Fatal("blocked port should miss")
	}
}

func TestHelperIptLookup(t *testing.T) {
	k := kernel.New("t")
	blocked := packet.MustPrefix("203.0.113.0/24")
	k.NF.Append("FORWARD", netfilter.Rule{Match: netfilter.Match{Src: &blocked}, Target: netfilter.VerdictDrop})

	ctx := &Ctx{Kernel: k, Meter: &sim.Meter{}, IPSrc: packet.MustAddr("203.0.113.7"), IPProto: packet.ProtoUDP}
	if HelperIptLookup(ctx, netfilter.HookForward, 0) != IptDeny {
		t.Fatal("blacklisted src allowed")
	}
	ctx2 := &Ctx{Kernel: k, Meter: &sim.Meter{}, IPSrc: packet.MustAddr("8.8.8.8"), IPProto: packet.ProtoUDP}
	if HelperIptLookup(ctx2, netfilter.HookForward, 0) != IptAllow {
		t.Fatal("clean src dropped")
	}
	// Fast path charges less per rule than the slow path would.
	if ctx2.Meter.Total >= sim.CostHelperIptB+sim.CostIptRuleSlow {
		t.Fatalf("fast-path rule cost too high: %v", ctx2.Meter.Total)
	}
}

// TestHelperSeesLiveKernelState is the state-coherence property at the
// heart of the paper: a config change through the Linux API is immediately
// visible to the helper with no synchronization step.
func TestHelperSeesLiveKernelState(t *testing.T) {
	k := kernel.New("t")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	k.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	k.Neigh.AddPermanent(packet.MustAddr("10.0.0.254"), packet.MustHWAddr("02:00:00:00:cc:01"), d.Index)
	ctx := &Ctx{Kernel: k, Meter: &sim.Meter{}}

	dst := packet.MustAddr("172.16.9.9")
	if _, ok := HelperFIBLookup(ctx, dst); ok {
		t.Fatal("route not yet added")
	}
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("172.16.0.0/16"), Gateway: packet.MustAddr("10.0.0.254"), OutIf: d.Index})
	if _, ok := HelperFIBLookup(ctx, dst); !ok {
		t.Fatal("route add not visible to helper")
	}
	k.DelRoute(packet.MustPrefix("172.16.0.0/16"))
	if _, ok := HelperFIBLookup(ctx, dst); ok {
		t.Fatal("route delete not visible to helper")
	}
}

func TestMapsBasics(t *testing.T) {
	h := NewHashMap("h", 2)
	if !h.Update(1, 100) || !h.Update(2, 200) {
		t.Fatal("updates failed")
	}
	if h.Update(3, 300) {
		t.Fatal("over-capacity update succeeded")
	}
	if v, ok := h.Lookup(1); !ok || v != 100 {
		t.Fatal("lookup")
	}
	h.Add(1, 5)
	if v, _ := h.Lookup(1); v != 105 {
		t.Fatal("add")
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("delete semantics")
	}
	if h.Len() != 1 || h.Name() != "h" {
		t.Fatal("len/name")
	}

	a := NewArrayMap("a", 4)
	if !a.Update(0, 7) || a.Update(9, 1) {
		t.Fatal("array bounds")
	}
	a.Add(0, 3)
	if a.Lookup(0) != 10 || a.Lookup(9) != 0 {
		t.Fatal("array lookup")
	}
	if a.Len() != 4 {
		t.Fatal("array len")
	}

	pa := NewProgArray("p", 2)
	if pa.Update(5, nil) {
		t.Fatal("prog array oob update")
	}
	if pa.Lookup(5) != nil || pa.Len() != 2 || pa.Name() != "p" {
		t.Fatal("prog array basics")
	}
}

func TestVerdictAndHookStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictNext: "next", VerdictPass: "pass", VerdictDrop: "drop",
		VerdictTX: "tx", VerdictRedirect: "redirect", VerdictAborted: "aborted",
	} {
		if v.String() != want {
			t.Errorf("%d -> %q", v, v.String())
		}
	}
	for h, want := range map[Hook]string{
		HookXDP: "xdp", HookTCIngress: "tc-ingress", HookTCEgress: "tc-egress",
	} {
		if h.String() != want {
			t.Errorf("%d -> %q", h, h.String())
		}
	}
}
