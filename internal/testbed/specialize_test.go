package testbed

import "testing"

// TestSpecializeSweep pins the PR's acceptance bar: the Load-time
// specialized data path beats the generic fused one by >=15% modelcycles/pkt
// on the ACL-heavy configs, and re-specialization under a config-churn storm
// swaps without dropping a single in-flight packet or leaking programs.
func TestSpecializeSweep(t *testing.T) {
	r, err := SpecializeSweep(200, 64)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpecializePoint{}
	for _, p := range r.Points {
		byName[p.Config] = p
	}

	for _, cfg := range []string{"gateway-100", "acl-tcp100-udp-traffic"} {
		p, ok := byName[cfg]
		if !ok {
			t.Fatalf("sweep missing config %q", cfg)
		}
		if p.WinPct < 15 {
			t.Errorf("%s: specialization win %.1f%% < 15%% (generic=%.1f spec=%.1f)",
				cfg, p.WinPct, p.GenericCy, p.SpecCy)
		}
		if p.SpecInsn >= p.GenericInsn {
			t.Errorf("%s: specialized insns %d not below generic %d", cfg, p.SpecInsn, p.GenericInsn)
		}
	}
	// Specialization must never cost cycles, on any config.
	for _, p := range r.Points {
		if p.SpecCy > p.GenericCy {
			t.Errorf("%s: specialized %.1f cy/pkt worse than generic %.1f", p.Config, p.SpecCy, p.GenericCy)
		}
	}

	c := r.Churn
	if c.Dropped != 0 {
		t.Errorf("churn storm dropped %d packets during swaps", c.Dropped)
	}
	if c.Redirected != c.Injected {
		t.Errorf("churn storm: %d injected but %d redirected (fast path fell through)",
			c.Injected, c.Redirected)
	}
	// 2 interfaces -> 2 dispatchers + 2 data paths, regardless of churn.
	if c.LoadedCount != 4 {
		t.Errorf("loaded program count %d after churn, want 4 (stale programs leaked)", c.LoadedCount)
	}
	if c.LoadP99us <= 0 || c.LoadP99us > 50_000 {
		t.Errorf("re-specialization load p99 %.1fus out of bounds", c.LoadP99us)
	}
	if c.SwapP99us <= 0 || c.SwapP99us > 50_000 {
		t.Errorf("swap p99 %.1fus out of bounds", c.SwapP99us)
	}
}
