package kernel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"linuxfp/internal/drop"
	"linuxfp/internal/netdev"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// VXLANPort is the Linux default VXLAN UDP port (flannel's choice).
const VXLANPort = 8472

// vxlanHdrLen is flags(1)+reserved(3)+VNI(3)+reserved(1).
const vxlanHdrLen = 8

// vxlanState is the runtime state of one VXLAN device: the VTEP.
type vxlanState struct {
	dev   *netdev.Device
	vni   uint32
	local packet.Addr

	mu  sync.RWMutex
	fdb map[packet.HWAddr]packet.Addr // inner MAC -> remote VTEP IP
	// flood targets for unknown/broadcast inner MACs
	flood []packet.Addr
}

// CreateVXLAN creates a VXLAN device (ip link add ... type vxlan id <vni>).
// Frames transmitted on it are encapsulated in UDP toward the remote VTEP
// selected by the inner destination MAC (bridge fdb entries), exactly how
// flannel's vxlan backend programs the kernel.
func (k *Kernel) CreateVXLAN(name string, vni uint32, local packet.Addr) *netdev.Device {
	d := k.CreateDevice(name, netdev.VXLAN)
	v := &vxlanState{dev: d, vni: vni, local: local, fdb: make(map[packet.HWAddr]packet.Addr)}
	k.mu.Lock()
	k.vxlans[d.Index] = v
	k.mu.Unlock()

	d.SetTxHook(func(frame []byte, m *sim.Meter) bool {
		k.vxlanEncap(v, frame, m)
		return true
	})

	// One decap socket serves all VTEPs on the host.
	if _, bound := k.socketFor(packet.ProtoUDP, VXLANPort); !bound {
		k.RegisterSocket(packet.ProtoUDP, VXLANPort, vxlanDecapHandler)
	}
	return d
}

// VXLANAddFDB installs a forwarding entry: inner MAC reachable via the
// remote VTEP (bridge fdb add <mac> dev <vxlan> dst <remote>). The
// all-zeros MAC adds a flood/default entry.
func (k *Kernel) VXLANAddFDB(devName string, mac packet.HWAddr, remote packet.Addr) error {
	d, ok := k.DeviceByName(devName)
	if !ok {
		return fmt.Errorf("kernel: no device %q", devName)
	}
	k.mu.RLock()
	v, ok := k.vxlans[d.Index]
	k.mu.RUnlock()
	if !ok {
		return fmt.Errorf("kernel: %q is not a vxlan device", devName)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if mac.IsZero() {
		v.flood = append(v.flood, remote)
		return nil
	}
	v.fdb[mac] = remote
	return nil
}

// vxlanEncap wraps an inner frame and sends it to the chosen VTEP(s).
func (k *Kernel) vxlanEncap(v *vxlanState, frame []byte, m *sim.Meter) {
	defer k.trace("vxlan_xmit", m)()
	m.Charge(sim.CostVXLANEncap)

	dst := packet.EthDst(frame)
	v.mu.RLock()
	remote, ok := v.fdb[dst]
	flood := append([]packet.Addr(nil), v.flood...)
	v.mu.RUnlock()

	hdr := make([]byte, vxlanHdrLen, vxlanHdrLen+len(frame))
	hdr[0] = 0x08 // VNI present
	binary.BigEndian.PutUint32(hdr[4:], v.vni<<8)
	payload := append(hdr, frame...)

	targets := flood
	if ok && !dst.IsMulticast() {
		targets = []packet.Addr{remote}
	}
	// Source port is derived from an inner-flow hash in Linux; a fixed
	// ephemeral port keeps the model simple.
	for _, t := range targets {
		k.SendUDP(v.local, t, 45000, VXLANPort, payload, m)
	}
}

// vxlanDecapHandler is the UDP 8472 socket: strip the outer headers and
// re-inject the inner frame as if it arrived on the matching VXLAN device.
func vxlanDecapHandler(k *Kernel, msg SocketMsg) {
	defer k.trace("vxlan_rcv", msg.Meter)()
	if len(msg.Payload) < vxlanHdrLen+packet.EthHdrLen {
		k.countDropReason(msg.Meter, drop.ReasonL2HdrError)
		return
	}
	vni := binary.BigEndian.Uint32(msg.Payload[4:]) >> 8
	inner := msg.Payload[vxlanHdrLen:]

	k.mu.RLock()
	var v *vxlanState
	for _, cand := range k.vxlans {
		if cand.vni == vni {
			v = cand
			break
		}
	}
	k.mu.RUnlock()
	if v == nil {
		k.countDropReason(msg.Meter, drop.ReasonUnknownL4Proto)
		return
	}
	msg.Meter.Charge(sim.CostVXLANDecap)

	// Learn the inner source MAC -> outer source VTEP binding, like the
	// kernel's vxlan_snoop.
	src := packet.EthSrc(inner)
	if !src.IsMulticast() {
		v.mu.Lock()
		v.fdb[src] = msg.Src
		v.mu.Unlock()
	}

	// Re-inject through the device's full receive path so TC programs on
	// the VTEP see decapsulated traffic, as in the kernel.
	k.DeliverFrame(v.dev, append([]byte(nil), inner...), msg.Meter)
}
