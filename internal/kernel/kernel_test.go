package kernel

import (
	"strings"
	"testing"

	"linuxfp/internal/fib"
	"linuxfp/internal/netdev"
	"linuxfp/internal/netfilter"
	"linuxfp/internal/netlink"
	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// twoHosts builds: hostA(eth0 10.0.0.1/24) --- hostB(eth0 10.0.0.2/24).
func twoHosts(t *testing.T) (*Kernel, *Kernel) {
	t.Helper()
	a, b := New("hostA"), New("hostB")
	da := a.CreateDevice("eth0", netdev.Physical)
	db := b.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(da, db)
	da.SetUp(true)
	db.SetUp(true)
	if err := a.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddAddr("eth0", packet.MustPrefix("10.0.0.2/24")); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// routerTopo builds: src(10.1.0.1) --- r(10.1.0.254 / 10.2.0.254) --- dst(10.2.0.1),
// with forwarding enabled on r and default routes on the hosts.
func routerTopo(t *testing.T) (src, r, dst *Kernel) {
	t.Helper()
	src, r, dst = New("src"), New("router"), New("dst")

	s0 := src.CreateDevice("eth0", netdev.Physical)
	r0 := r.CreateDevice("eth0", netdev.Physical)
	r1 := r.CreateDevice("eth1", netdev.Physical)
	d0 := dst.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(s0, r0)
	netdev.Connect(r1, d0)
	for _, d := range []*netdev.Device{s0, r0, r1, d0} {
		d.SetUp(true)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(src.AddAddr("eth0", packet.MustPrefix("10.1.0.1/24")))
	must(r.AddAddr("eth0", packet.MustPrefix("10.1.0.254/24")))
	must(r.AddAddr("eth1", packet.MustPrefix("10.2.0.254/24")))
	must(dst.AddAddr("eth0", packet.MustPrefix("10.2.0.1/24")))
	r.SetSysctl("net.ipv4.ip_forward", "1")
	src.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.1.0.254"), OutIf: s0.Index})
	dst.AddRoute(fib.Route{Prefix: packet.MustPrefix("0.0.0.0/0"), Gateway: packet.MustAddr("10.2.0.254"), OutIf: d0.Index})
	return src, r, dst
}

func TestARPResolutionAndPing(t *testing.T) {
	a, b := twoHosts(t)
	var m sim.Meter
	if !a.Ping(packet.MustAddr("10.0.0.2"), 1, 1, []byte("hello"), &m) {
		t.Fatal("ping send failed")
	}
	// The first packet triggers ARP; resolution and echo happen inline.
	if b.Stats().ICMPTx != 1 {
		t.Fatalf("B should have replied to echo: %+v", b.Stats())
	}
	if a.Stats().ARPTx != 1 {
		t.Fatalf("A should have ARPed once: %+v", a.Stats())
	}
	// Both sides learned each other.
	if _, ok := a.Neigh.Resolved(packet.MustAddr("10.0.0.2"), 0); !ok {
		t.Fatal("A did not learn B")
	}
	if _, ok := b.Neigh.Resolved(packet.MustAddr("10.0.0.1"), 0); !ok {
		t.Fatal("B did not learn A")
	}
	// Second ping requires no new ARP.
	a.Ping(packet.MustAddr("10.0.0.2"), 1, 2, nil, &m)
	if a.Stats().ARPTx != 1 {
		t.Fatal("second ping re-ARPed")
	}
	if b.Stats().ICMPTx != 2 {
		t.Fatal("second echo unanswered")
	}
}

func TestAddAddrInstallsRoutes(t *testing.T) {
	k := New("host")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	if err := k.AddAddr("eth0", packet.MustPrefix("192.168.7.3/24")); err != nil {
		t.Fatal(err)
	}
	r, ok := k.FIB.Local().Lookup(packet.MustAddr("192.168.7.3"))
	if !ok || !r.Local {
		t.Fatalf("local route missing: %+v ok=%v", r, ok)
	}
	r, ok = k.FIB.Main().Lookup(packet.MustAddr("192.168.7.99"))
	if !ok || r.OutIf != d.Index || r.Scope != fib.ScopeLink {
		t.Fatalf("connected route missing: %+v ok=%v", r, ok)
	}
	// DelAddr removes both.
	if err := k.DelAddr("eth0", packet.MustPrefix("192.168.7.3/24")); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.FIB.Main().Lookup(packet.MustAddr("192.168.7.99")); ok {
		t.Fatal("connected route survived DelAddr")
	}
	if err := k.DelAddr("eth0", packet.MustPrefix("192.168.7.3/24")); err == nil {
		t.Fatal("double DelAddr succeeded")
	}
}

func TestForwardingAcrossRouter(t *testing.T) {
	src, r, dst := routerTopo(t)
	var m sim.Meter
	if !src.Ping(packet.MustAddr("10.2.0.1"), 7, 1, []byte("x"), &m) {
		t.Fatal("send failed")
	}
	if dst.Stats().ICMPTx != 1 {
		t.Fatalf("echo did not reach dst: %+v", dst.Stats())
	}
	// Request and reply both traverse the router.
	if got := r.Stats().Forwarded; got != 2 {
		t.Fatalf("router forwarded %d, want 2", got)
	}
	_ = src
}

func TestForwardingDisabledDrops(t *testing.T) {
	src, r, dst := routerTopo(t)
	r.SetSysctl("net.ipv4.ip_forward", "0")
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 7, 1, nil, &m)
	if dst.Stats().ICMPTx != 0 {
		t.Fatal("packet forwarded with ip_forward=0")
	}
	if r.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestTTLDecrementedInForward(t *testing.T) {
	src, _, dst := routerTopo(t)
	d0, _ := dst.DeviceByName("eth0")
	var gotTTL uint8
	d0.Tap = func(f []byte) {
		if et, l3 := packet.EtherTypeOf(f); et == packet.EtherTypeIPv4 {
			gotTTL = packet.IPv4TTL(f, l3)
		}
	}
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m)
	if gotTTL != 63 {
		t.Fatalf("TTL at dst = %d, want 63", gotTTL)
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	src, r, dst := routerTopo(t)
	// Craft an echo with TTL 1 by injecting directly on the router's wire.
	s0, _ := src.DeviceByName("eth0")
	var icmpSeen []byte
	s0.Tap = func(f []byte) {
		if et, l3 := packet.EtherTypeOf(f); et == packet.EtherTypeIPv4 &&
			packet.IPv4Proto(f, l3) == packet.ProtoICMP {
			icmpSeen = append([]byte(nil), f...)
		}
	}
	// Resolve ARP first with a normal ping.
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m)
	icmpSeen = nil

	rMAC, _ := src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	ic := packet.ICMP{Type: packet.ICMPEchoRequest}
	frame := packet.BuildIPv4(
		packet.Ethernet{Dst: rMAC, Src: s0.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 1, Proto: packet.ProtoICMP, Src: packet.MustAddr("10.1.0.1"), Dst: packet.MustAddr("10.2.0.1")},
		ic.Marshal(nil, nil),
	)
	s0.Transmit(frame, &m)
	if r.Stats().TTLExpired != 1 {
		t.Fatalf("router stats: %+v", r.Stats())
	}
	if dst.Stats().Delivered != 0 && dst.Stats().ICMPTx > 1 {
		t.Fatal("expired packet reached dst")
	}
	if icmpSeen == nil {
		t.Fatal("no ICMP time-exceeded returned to source")
	}
	p, err := packet.Decode(icmpSeen)
	if err != nil {
		t.Fatal(err)
	}
	icm, _, err := packet.UnmarshalICMP(p.Payload)
	if err != nil || icm.Type != packet.ICMPTimeExceeded {
		t.Fatalf("got ICMP type %d, want time exceeded", icm.Type)
	}
}

func TestNoRouteGeneratesUnreachable(t *testing.T) {
	src, r, _ := routerTopo(t)
	var m sim.Meter
	// 203.0.113.9 matches no route on the router.
	src.Ping(packet.MustAddr("203.0.113.9"), 1, 1, nil, &m)
	if r.Stats().NoRoute == 0 {
		t.Fatalf("router stats: %+v", r.Stats())
	}
}

func TestIptablesForwardDrop(t *testing.T) {
	src, r, dst := routerTopo(t)
	blocked := packet.MustPrefix("10.2.0.0/24")
	if err := r.IptAppend("FORWARD", netfilter.Rule{
		Match: netfilter.Match{Dst: &blocked}, Target: netfilter.VerdictDrop,
	}); err != nil {
		t.Fatal(err)
	}
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m)
	if dst.Stats().ICMPTx != 0 {
		t.Fatal("blocked packet delivered")
	}
	if r.Stats().FilterDropped == 0 {
		t.Fatalf("filter drop not counted: %+v", r.Stats())
	}
	// Flush restores connectivity.
	if err := r.IptFlush("FORWARD"); err != nil {
		t.Fatal(err)
	}
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 2, nil, &m)
	if dst.Stats().ICMPTx != 1 {
		t.Fatal("flush did not restore traffic")
	}
}

func TestIpsetBackedRule(t *testing.T) {
	src, r, dst := routerTopo(t)
	if _, err := r.IpsetCreate("blacklist", "hash:net"); err != nil {
		t.Fatal(err)
	}
	if err := r.IpsetAdd("blacklist", packet.MustPrefix("10.1.0.0/24")); err != nil {
		t.Fatal(err)
	}
	if err := r.IptAppend("FORWARD", netfilter.Rule{
		Match: netfilter.Match{SrcSet: "blacklist"}, Target: netfilter.VerdictDrop,
	}); err != nil {
		t.Fatal(err)
	}
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m)
	if dst.Stats().ICMPTx != 0 {
		t.Fatal("set-blacklisted source passed")
	}
}

func TestUDPSocketDeliveryAndReply(t *testing.T) {
	a, b := twoHosts(t)
	var got []byte
	b.RegisterSocket(packet.ProtoUDP, 7777, func(k *Kernel, msg SocketMsg) {
		got = append([]byte(nil), msg.Payload...)
		k.SendUDP(msg.Dst, msg.Src, msg.DstPort, msg.SrcPort, []byte("pong"), msg.Meter)
	})
	var reply []byte
	a.RegisterSocket(packet.ProtoUDP, 5555, func(k *Kernel, msg SocketMsg) {
		reply = append([]byte(nil), msg.Payload...)
	})
	var m sim.Meter
	if !a.SendUDP(0, packet.MustAddr("10.0.0.2"), 5555, 7777, []byte("ping"), &m) {
		t.Fatal("send failed")
	}
	if string(got) != "ping" {
		t.Fatalf("server got %q", got)
	}
	if string(reply) != "pong" {
		t.Fatalf("client got %q", reply)
	}
	// Unbound port counts a drop.
	before := b.Stats().Dropped
	a.SendUDP(0, packet.MustAddr("10.0.0.2"), 5555, 9999, []byte("x"), &m)
	if b.Stats().Dropped != before+1 {
		t.Fatal("datagram to unbound port not dropped")
	}
}

func TestTCPSegmentDelivery(t *testing.T) {
	a, b := twoHosts(t)
	var got []byte
	b.RegisterSocket(packet.ProtoTCP, 80, func(k *Kernel, msg SocketMsg) {
		got = msg.Payload
	})
	var m sim.Meter
	if !a.SendTCPSegment(0, packet.MustAddr("10.0.0.2"), 40000, 80, packet.TCPPsh|packet.TCPAck, []byte("GET /"), &m) {
		t.Fatal("send failed")
	}
	if string(got) != "GET /" {
		t.Fatalf("got %q", got)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	k := New("host")
	d := k.CreateDevice("eth0", netdev.Physical)
	d.SetUp(true)
	k.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	var got []byte
	k.RegisterSocket(packet.ProtoUDP, 53, func(_ *Kernel, msg SocketMsg) {
		got = msg.Payload
	})
	var m sim.Meter
	if !k.SendUDP(0, packet.MustAddr("10.0.0.1"), 1000, 53, []byte("self"), &m) {
		t.Fatal("send to self failed")
	}
	if string(got) != "self" {
		t.Fatalf("got %q", got)
	}
}

func TestFragmentationAndReassembly(t *testing.T) {
	src, r, dst := routerTopo(t)
	// Shrink the MTU of the router->dst leg.
	r1, _ := r.DeviceByName("eth1")
	r1.MTU = 600
	var got []byte
	dst.RegisterSocket(packet.ProtoUDP, 9000, func(_ *Kernel, msg SocketMsg) {
		got = msg.Payload
	})
	payload := make([]byte, 1400)
	for i := range payload {
		payload[i] = byte(i)
	}
	var m sim.Meter
	if !src.SendUDP(0, packet.MustAddr("10.2.0.1"), 1234, 9000, payload, &m) {
		t.Fatal("send failed")
	}
	if r.Stats().FragsSent < 2 {
		t.Fatalf("router fragmented %d, want >=2", r.Stats().FragsSent)
	}
	if dst.Stats().Reassembled != 1 {
		t.Fatalf("dst reassembled %d, want 1", dst.Stats().Reassembled)
	}
	if len(got) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestDFBounceWithFragNeeded(t *testing.T) {
	src, r, dst := routerTopo(t)
	r1, _ := r.DeviceByName("eth1")
	r1.MTU = 600
	// Build a DF datagram by hand.
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m) // resolve ARP
	s0, _ := src.DeviceByName("eth0")
	rMAC, _ := src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	u := packet.UDP{SrcPort: 1, DstPort: 9000}
	big := u.Marshal(nil, packet.MustAddr("10.1.0.1"), packet.MustAddr("10.2.0.1"), make([]byte, 1200))
	frame := packet.BuildIPv4(
		packet.Ethernet{Dst: rMAC, Src: s0.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Flags: packet.IPv4DontFragment,
			Src: packet.MustAddr("10.1.0.1"), Dst: packet.MustAddr("10.2.0.1")},
		big,
	)
	before := dst.Stats().Delivered
	s0.Transmit(frame, &m)
	if dst.Stats().Delivered != before {
		t.Fatal("DF packet should not be delivered")
	}
	if r.Stats().ICMPTx == 0 {
		t.Fatal("no fragmentation-needed ICMP generated")
	}
}

func TestBridgeLearningEndToEnd(t *testing.T) {
	// Three hosts on one bridge inside a "switch" kernel.
	swk := New("switch")
	_, br := swk.CreateBridge("br0")
	brDev, _ := swk.DeviceByName("br0")
	brDev.SetUp(true)

	hosts := make([]*Kernel, 3)
	hostDevs := make([]*netdev.Device, 3)
	for i := range hosts {
		hosts[i] = New("h")
		hd := hosts[i].CreateDevice("eth0", netdev.Physical)
		hd.SetUp(true)
		hosts[i].AddAddr("eth0", packet.Prefix{Addr: packet.AddrFrom4(10, 9, 0, byte(i+1)), Bits: 24})
		swPort := swk.CreateDevice("swp"+string(rune('0'+i)), netdev.Physical)
		swPort.SetUp(true)
		netdev.Connect(hd, swPort)
		if err := swk.AddBridgePort("br0", swPort.Name); err != nil {
			t.Fatal(err)
		}
		hostDevs[i] = hd
	}
	var m sim.Meter
	if !hosts[0].Ping(packet.MustAddr("10.9.0.2"), 1, 1, nil, &m) {
		t.Fatal("send failed")
	}
	if hosts[1].Stats().ICMPTx != 1 {
		t.Fatalf("h1 did not reply: %+v", hosts[1].Stats())
	}
	// The bridge learned both MACs during the exchange.
	if br.FDBLen() < 2 {
		t.Fatalf("fdb has %d entries, want >=2", br.FDBLen())
	}
	// A directed ping now must not reach host 2 (no flooding after learn).
	h2rx := hostDevs[2].Stats().RxPackets
	hosts[0].Ping(packet.MustAddr("10.9.0.2"), 1, 2, nil, &m)
	after := hostDevs[2].Stats().RxPackets
	if after != h2rx {
		t.Fatalf("learned unicast still flooded to h2 (%d -> %d)", h2rx, after)
	}
}

func TestBridgeWithIPRoutesUp(t *testing.T) {
	// Host A -- bridge(10.9.0.254/24, on the bridge device) with router
	// beyond: traffic to the bridge's own IP is delivered locally.
	swk := New("gw")
	swk.CreateBridge("br0")
	brDev, _ := swk.DeviceByName("br0")
	brDev.SetUp(true)
	swk.AddAddr("br0", packet.MustPrefix("10.9.0.254/24"))

	a := New("a")
	ad := a.CreateDevice("eth0", netdev.Physical)
	ad.SetUp(true)
	a.AddAddr("eth0", packet.MustPrefix("10.9.0.1/24"))
	swPort := swk.CreateDevice("swp0", netdev.Physical)
	swPort.SetUp(true)
	netdev.Connect(ad, swPort)
	swk.AddBridgePort("br0", "swp0")

	var m sim.Meter
	if !a.Ping(packet.MustAddr("10.9.0.254"), 3, 1, nil, &m) {
		t.Fatal("send failed")
	}
	if swk.Stats().ICMPTx != 1 {
		t.Fatalf("bridge-local IP did not answer: %+v", swk.Stats())
	}
}

func TestTCIngressHooks(t *testing.T) {
	a, b := twoHosts(t)
	bd, _ := b.DeviceByName("eth0")

	// Resolve ARP first so the hook sees IP traffic, not ARP.
	var m sim.Meter
	a.Ping(packet.MustAddr("10.0.0.2"), 1, 0, nil, &m)
	icmpBase := b.Stats().ICMPTx

	// TCShot drops everything.
	b.AttachTC(bd.Index, true, tcFunc(func(s *SKB) TCAction { return TCShot }))
	a.Ping(packet.MustAddr("10.0.0.2"), 1, 1, nil, &m)
	if b.Stats().ICMPTx != icmpBase {
		t.Fatal("TC shot did not drop")
	}
	if !b.TCAttached(bd.Index, true) {
		t.Fatal("attach not visible")
	}
	// TCOk lets traffic continue (and charges the skb prologue).
	b.AttachTC(bd.Index, true, tcFunc(func(s *SKB) TCAction { return TCOk }))
	m.Reset()
	a.Ping(packet.MustAddr("10.0.0.2"), 1, 2, nil, &m)
	if b.Stats().ICMPTx != icmpBase+1 {
		t.Fatal("TC ok blocked traffic")
	}
	// Detach restores the plain path.
	b.AttachTC(bd.Index, true, nil)
	if b.TCAttached(bd.Index, true) {
		t.Fatal("detach failed")
	}
}

type tcFunc func(*SKB) TCAction

func (f tcFunc) HandleTC(s *SKB) TCAction { return f(s) }

func TestNetlinkEventsOnConfig(t *testing.T) {
	k := New("host")
	sub := k.Bus.Subscribe(netlink.GroupAll)
	defer sub.Close()

	k.CreateDevice("eth0", netdev.Physical)
	k.SetLinkUp("eth0", true)
	k.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.5.0.0/16"), Gateway: packet.MustAddr("10.0.0.254"), OutIf: 1})
	k.SetSysctl("net.ipv4.ip_forward", "1")
	k.IptAppend("FORWARD", netfilter.Rule{Target: netfilter.VerdictDrop})

	types := map[netlink.MsgType]int{}
	for len(sub.C) > 0 {
		msg := <-sub.C
		types[msg.Type]++
	}
	for _, want := range []netlink.MsgType{netlink.NewLink, netlink.NewAddr, netlink.NewRoute, netlink.SysctlChange, netlink.NewRule} {
		if types[want] == 0 {
			t.Errorf("no %v event published (got %v)", want, types)
		}
	}
}

func TestNetlinkDumpReflectsState(t *testing.T) {
	k := New("host")
	k.CreateDevice("eth0", netdev.Physical)
	k.AddAddr("eth0", packet.MustPrefix("10.0.0.1/24"))
	k.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.5.0.0/16"), Gateway: packet.MustAddr("10.0.0.254"), OutIf: 2})
	k.CreateBridge("br0")
	k.SetBridgeSTP("br0", true)

	msgs := k.Bus.Dump(netlink.GroupAll)
	var links, addrs, routes int
	var sawBridgeSTP bool
	for _, msg := range msgs {
		switch p := msg.Payload.(type) {
		case netlink.LinkMsg:
			links++
			if p.BridgeA != nil && p.BridgeA.STPEnabled {
				sawBridgeSTP = true
			}
		case netlink.AddrMsg:
			addrs++
		case netlink.RouteMsg:
			routes++
		}
	}
	if links < 3 { // lo, eth0, br0
		t.Errorf("links %d", links)
	}
	if addrs != 1 {
		t.Errorf("addrs %d", addrs)
	}
	// 1 explicit + 1 connected subnet route.
	if routes != 2 {
		t.Errorf("routes %d", routes)
	}
	if !sawBridgeSTP {
		t.Error("bridge STP attribute not dumped")
	}
}

func TestTracerCapturesForwardingPath(t *testing.T) {
	src, r, _ := routerTopo(t)
	tr := r.EnableTracing()
	var m sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &m)
	r.DisableTracing()
	folded := tr.Folded()
	for _, fn := range []string{"netif_receive_skb", "ip_rcv", "ip_forward", "neigh_resolve_output"} {
		if !strings.Contains(folded, fn) {
			t.Errorf("flame graph missing %s:\n%s", fn, folded)
		}
	}
	if !strings.Contains(tr.ASCII(40), "ip_forward") {
		t.Error("ascii rendering missing frames")
	}
}

func TestVXLANOverlay(t *testing.T) {
	// Two nodes on an underlay; an L2 overlay (VNI 1) carries a frame from
	// node1's VTEP to node2's.
	n1, n2 := New("n1"), New("n2")
	u1 := n1.CreateDevice("eth0", netdev.Physical)
	u2 := n2.CreateDevice("eth0", netdev.Physical)
	netdev.Connect(u1, u2)
	u1.SetUp(true)
	u2.SetUp(true)
	n1.AddAddr("eth0", packet.MustPrefix("192.168.0.1/24"))
	n2.AddAddr("eth0", packet.MustPrefix("192.168.0.2/24"))

	v1 := n1.CreateVXLAN("flannel.1", 1, packet.MustAddr("192.168.0.1"))
	v2 := n2.CreateVXLAN("flannel.1", 1, packet.MustAddr("192.168.0.2"))
	v1.SetUp(true)
	v2.SetUp(true)
	n1.AddAddr("flannel.1", packet.MustPrefix("10.244.1.0/32"))
	n2.AddAddr("flannel.1", packet.MustPrefix("10.244.2.0/32"))

	// Program the VTEP FDB like flannel does.
	if err := n1.VXLANAddFDB("flannel.1", v2.MAC, packet.MustAddr("192.168.0.2")); err != nil {
		t.Fatal(err)
	}
	n2.VXLANAddFDB("flannel.1", v1.MAC, packet.MustAddr("192.168.0.1"))
	// Route the remote overlay subnet via the vxlan device, with a
	// permanent neighbour entry for the remote VTEP IP (onlink route).
	n1.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.244.2.0/24"), Gateway: packet.MustAddr("10.244.2.0"), OutIf: v1.Index})
	n1.Neigh.AddPermanent(packet.MustAddr("10.244.2.0"), v2.MAC, v1.Index)
	n2.AddRoute(fib.Route{Prefix: packet.MustPrefix("10.244.1.0/24"), Gateway: packet.MustAddr("10.244.1.0"), OutIf: v2.Index})
	n2.Neigh.AddPermanent(packet.MustAddr("10.244.1.0"), v1.MAC, v2.Index)

	var got []byte
	n2.RegisterSocket(packet.ProtoUDP, 8080, func(_ *Kernel, msg SocketMsg) {
		got = msg.Payload
	})
	var m sim.Meter
	if !n1.SendUDP(packet.MustAddr("10.244.1.0"), packet.MustAddr("10.244.2.0"), 999, 8080, []byte("overlay"), &m) {
		t.Fatal("send failed")
	}
	if string(got) != "overlay" {
		t.Fatalf("got %q", got)
	}
	if m.Total < sim.CostVXLANEncap {
		t.Fatal("vxlan encap cost not charged")
	}
}

func TestSlowPathCostMatchesModel(t *testing.T) {
	// The end-to-end forwarding cost on the router should be close to the
	// cost model's 2400-cycle anchor (±15%: ARP-resolved steady state).
	src, _, _ := routerTopo(t)
	var warm sim.Meter
	src.Ping(packet.MustAddr("10.2.0.1"), 1, 1, nil, &warm) // resolve ARPs

	s0, _ := src.DeviceByName("eth0")
	rMAC, _ := src.Neigh.Resolved(packet.MustAddr("10.1.0.254"), 0)
	u := packet.UDP{SrcPort: 1, DstPort: 2}
	frame := packet.BuildIPv4(
		packet.Ethernet{Dst: rMAC, Src: s0.MAC, EtherType: packet.EtherTypeIPv4},
		packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: packet.MustAddr("10.1.0.1"), Dst: packet.MustAddr("10.2.0.1")},
		u.Marshal(nil, packet.MustAddr("10.1.0.1"), packet.MustAddr("10.2.0.1"), make([]byte, 18)),
	)
	var m sim.Meter
	s0.Transmit(frame, &m)
	// The meter includes the dst host's local delivery; isolate the router
	// leg by subtracting nothing and just sanity-checking the total zone.
	if m.Total < 2000 || m.Total > 8000 {
		t.Fatalf("end-to-end cycles %v outside sane window", m.Total)
	}
}

func TestDeleteBridge(t *testing.T) {
	k := New("host")
	k.CreateBridge("br0")
	p := k.CreateDevice("p0", netdev.Physical)
	k.AddBridgePort("br0", "p0")
	if err := k.DeleteBridge("br0"); err != nil {
		t.Fatal(err)
	}
	if p.Master() != 0 {
		t.Fatal("port still enslaved after delbr")
	}
	if _, ok := k.BridgeByName("br0"); ok {
		t.Fatal("bridge still present")
	}
	if err := k.DeleteBridge("br0"); err == nil {
		t.Fatal("double delbr succeeded")
	}
	if err := k.DeleteBridge("p0"); err == nil {
		t.Fatal("delbr of non-bridge succeeded")
	}
}

func TestConfigErrors(t *testing.T) {
	k := New("host")
	if err := k.AddAddr("ghost", packet.MustPrefix("1.1.1.1/24")); err == nil {
		t.Error("AddAddr on missing device")
	}
	if err := k.SetLinkUp("ghost", true); err == nil {
		t.Error("SetLinkUp on missing device")
	}
	if err := k.AddBridgePort("ghost", "ghost2"); err == nil {
		t.Error("AddBridgePort on missing bridge")
	}
	if err := k.SetBridgeSTP("ghost", true); err == nil {
		t.Error("SetBridgeSTP on missing bridge")
	}
	if err := k.AddNeigh("ghost", 1, packet.HWAddr{}); err == nil {
		t.Error("AddNeigh on missing device")
	}
	if err := k.IpsetAdd("ghost", packet.MustPrefix("1.1.1.0/24")); err == nil {
		t.Error("IpsetAdd on missing set")
	}
	k.CreateBridge("br0")
	if err := k.DelBridgePort("br0", "lo"); err == nil {
		t.Error("DelBridgePort of non-port")
	}
}

func ctTuple(i int) netfilter.Tuple {
	return netfilter.Tuple{Src: packet.Addr(i + 1), Dst: 99, Proto: packet.ProtoUDP,
		SrcPort: uint16(1000 + i), DstPort: 80}
}

func TestVLANRetaggingOnTrunkEgress(t *testing.T) {
	// Access port (untagged, PVID 10) -> trunk port (tagged 10): the bridge
	// must add the 802.1Q tag on egress; and strip it the other way.
	sw := New("sw")
	sw.CreateBridge("br0")
	sw.SetLinkUp("br0", true)
	sw.SetBridgeVLANFiltering("br0", true)
	br, _ := sw.BridgeByName("br0")

	access := sw.CreateDevice("acc0", netdev.Physical)
	trunk := sw.CreateDevice("trk0", netdev.Physical)
	access.SetUp(true)
	trunk.SetUp(true)
	sw.AddBridgePort("br0", "acc0")
	sw.AddBridgePort("br0", "trk0")
	ap, _ := br.Port(access.Index)
	ap.PVID = 10
	ap.Untagged = map[uint16]bool{10: true}
	tp, _ := br.Port(trunk.Index)
	tp.PVID = 0
	tp.Untagged = map[uint16]bool{}
	tp.Tagged[10] = true

	hostA := New("hA")
	ha := hostA.CreateDevice("eth0", netdev.Physical)
	ha.SetUp(true)
	netdev.Connect(ha, access)
	hostT := New("hT")
	ht := hostT.CreateDevice("eth0", netdev.Physical)
	ht.SetUp(true)
	netdev.Connect(ht, trunk)

	macT := packet.MustHWAddr("02:00:00:00:aa:02")
	br.AddStatic(macT, 10, trunk.Index)
	br.AddStatic(ha.MAC, 10, access.Index)

	// Untagged in -> tagged out.
	var onTrunk []byte
	ht.Tap = func(f []byte) { onTrunk = append([]byte(nil), f...) }
	var m sim.Meter
	ha.Transmit(packet.BuildEthernet(packet.Ethernet{
		Dst: macT, Src: ha.MAC, EtherType: packet.EtherTypeIPv4}, make([]byte, 30)), &m)
	if onTrunk == nil {
		t.Fatal("frame lost toward trunk")
	}
	eth, _, err := packet.UnmarshalEthernet(onTrunk)
	if err != nil || eth.VLAN != 10 {
		t.Fatalf("trunk egress not tagged: %+v err=%v", eth, err)
	}
	// Tagged in -> untagged out.
	var onAccess []byte
	ha.Tap = func(f []byte) { onAccess = append([]byte(nil), f...) }
	ht.Transmit(packet.BuildEthernet(packet.Ethernet{
		Dst: ha.MAC, Src: macT, VLAN: 10, EtherType: packet.EtherTypeIPv4}, make([]byte, 30)), &m)
	if onAccess == nil {
		t.Fatal("frame lost toward access port")
	}
	eth, _, err = packet.UnmarshalEthernet(onAccess)
	if err != nil || eth.VLAN != 0 {
		t.Fatalf("access egress still tagged: %+v err=%v", eth, err)
	}
}

func TestVethPairCreation(t *testing.T) {
	k := New("host")
	a, b := k.CreateVethPair("veth0", "veth1")
	if a.Peer() != b || b.Peer() != a || a.Type != netdev.Veth {
		t.Fatal("veth pair not wired")
	}
}
