// Flow telemetry: per-CPU sharded 5-tuple accounting behind a space-saving
// top-k sketch (Metwally et al.), so memory stays bounded no matter how many
// distinct flows cross the datapath — at 1M flows each shard still holds at
// most its configured capacity, and the heavy hitters survive with a pinned
// error bound (Err ≤ the evicted minimum the slot inherited).
package flight

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"linuxfp/internal/packet"
	"linuxfp/internal/sim"
)

// DefaultFlowCap is the default per-shard entry bound: 64 shards × 4096
// entries = 256k tracked slots, a few tens of MB worst case.
const DefaultFlowCap = 4096

type flowEnt struct {
	key   packet.FlowTuple
	pkts  uint64
	bytes uint64
	drops uint64
	fast  uint64
	slow  uint64
	err   uint64 // space-saving overestimate bound inherited at eviction
	idx   int    // heap index
}

type flowHeap []*flowEnt

func (h flowHeap) Len() int            { return len(h) }
func (h flowHeap) Less(i, j int) bool  { return h[i].pkts < h[j].pkts }
func (h flowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *flowHeap) Push(x any)         { e := x.(*flowEnt); e.idx = len(*h); *h = append(*h, e) }
func (h *flowHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h flowHeap) update(e *flowEnt)   { heap.Fix(&h, e.idx) }

type flowShard struct {
	mu      sync.Mutex
	entries map[packet.FlowTuple]*flowEnt
	heap    flowHeap
	last    *flowEnt // most recent observe, for drop attribution
	_       [24]byte
}

// FlowEntry is one flow's merged view for reporting.
type FlowEntry struct {
	Key   packet.FlowTuple
	Pkts  uint64
	Bytes uint64
	Drops uint64
	Fast  uint64 // fast-path hits (flow cache, sockmap, L2 cache)
	Slow  uint64 // full stack walks
	Err   uint64 // space-saving overestimate bound
}

// FastPct is the flow's fast-path coverage in percent.
func (e FlowEntry) FastPct() float64 {
	if e.Fast+e.Slow == 0 {
		return 0
	}
	return 100 * float64(e.Fast) / float64(e.Fast+e.Slow)
}

// FlowTable is the per-CPU sharded flow accounting table. Observes land on
// the observing CPU's shard under that shard's own mutex — practically
// uncontended, same sharding discipline as the kernel's counters.
type FlowTable struct {
	capPerShard int
	shards      [NumCPUSlots]flowShard
	evictions   atomic.Uint64
}

// NewFlowTable builds a table bounded at capPerShard entries per CPU shard
// (<=0 selects DefaultFlowCap).
func NewFlowTable(capPerShard int) *FlowTable {
	if capPerShard <= 0 {
		capPerShard = DefaultFlowCap
	}
	t := &FlowTable{capPerShard: capPerShard}
	for i := range t.shards {
		t.shards[i].entries = make(map[packet.FlowTuple]*flowEnt)
	}
	return t
}

// Observe accounts one packet of flow key: size bytes, on the fast or slow
// path. When the shard is full the space-saving sketch evicts the current
// minimum and the newcomer inherits its count as the error bound — heavy
// hitters can be displaced only by flows that out-send them.
func (t *FlowTable) Observe(key packet.FlowTuple, size int, fast bool, m *sim.Meter) {
	m.Charge(sim.CostFlowObserve)
	sh := &t.shards[cpuIdx(m)]
	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil {
		if len(sh.entries) < t.capPerShard {
			e = &flowEnt{key: key}
			sh.entries[key] = e
			heap.Push(&sh.heap, e)
		} else {
			// Space-saving replace-min: reuse the minimum slot in place.
			e = sh.heap[0]
			delete(sh.entries, e.key)
			t.evictions.Add(1)
			*e = flowEnt{key: key, pkts: e.pkts, err: e.pkts, idx: e.idx}
			sh.entries[key] = e
		}
	}
	e.pkts++
	e.bytes += uint64(size)
	if fast {
		e.fast++
	} else {
		e.slow++
	}
	sh.heap.update(e)
	sh.last = e
	sh.mu.Unlock()
}

// NoteDrop attributes a drop to the CPU's most recently observed flow — the
// kfree_skb choke points have the meter but not the tuple, and the drop of a
// packet follows its own observe on the same CPU.
func (t *FlowTable) NoteDrop(m *sim.Meter) {
	sh := &t.shards[cpuIdx(m)]
	sh.mu.Lock()
	if sh.last != nil {
		sh.last.drops++
	}
	sh.mu.Unlock()
}

// Top merges all shards by tuple and returns the n heaviest flows by packet
// count (all of them for n <= 0).
func (t *FlowTable) Top(n int) []FlowEntry {
	merged := make(map[packet.FlowTuple]*FlowEntry)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			out := merged[k]
			if out == nil {
				out = &FlowEntry{Key: k}
				merged[k] = out
			}
			out.Pkts += e.pkts
			out.Bytes += e.bytes
			out.Drops += e.drops
			out.Fast += e.fast
			out.Slow += e.slow
			out.Err += e.err
		}
		sh.mu.Unlock()
	}
	out := make([]FlowEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkts != out[j].Pkts {
			return out[i].Pkts > out[j].Pkts
		}
		return out[i].Key.SrcPort < out[j].Key.SrcPort
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Tracked counts currently tracked entries across all shards.
func (t *FlowTable) Tracked() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Evictions counts space-saving replace-min evictions.
func (t *FlowTable) Evictions() uint64 { return t.evictions.Load() }

// Capacity is the table-wide entry bound.
func (t *FlowTable) Capacity() int { return t.capPerShard * NumCPUSlots }
