// Virtual gateway (paper §VI-A1, Figs. 7-8): IP forwarding plus a
// 100-entry blacklist, configured through iptables — and then the same
// blacklist aggregated into one ipset rule, which is how LinuxFP ends up
// beating Polycube's classifier in the paper.
package main

import (
	"fmt"

	"linuxfp"
	"linuxfp/internal/packet"
	"linuxfp/internal/testbed"
	"linuxfp/internal/traffic"
)

func main() {
	fmt.Println("Part 1: gateway throughput at 100 rules (single core)")
	for _, platform := range []string{
		testbed.PlatformLinux, testbed.PlatformLinuxFP,
		testbed.PlatformLinuxFPIpset, testbed.PlatformPolycube,
	} {
		d, err := testbed.Build(platform, testbed.Scenario{Gateway: true, Rules: 100})
		if err != nil {
			panic(err)
		}
		pps, _ := d.Throughput(1, traffic.MinFrameSize)
		fmt.Printf("  %-16s %8.3f Mpps\n", platform, pps/1e6)
		d.Close()
	}

	fmt.Println("\nPart 2: the ipset trick, live on one host")
	sys := linuxfp.New("gateway")
	defer sys.Close()
	for _, cmd := range []string{
		"ip link add wan type phys",
		"ip link add lan type phys",
		"ip link set wan up",
		"ip link set lan up",
		"ip addr add 198.51.100.1/24 dev wan",
		"ip addr add 10.0.0.1/24 dev lan",
		"ip route add 10.100.0.0/16 via 10.0.0.2 dev lan",
		"sysctl -w net.ipv4.ip_forward=1",
		"ip neigh add 10.0.0.2 lladdr 02:00:00:00:77:01 dev lan",
		"ipset create blacklist hash:net",
	} {
		sys.MustExec(cmd)
	}
	for i := 0; i < 100; i++ {
		sys.MustExec(fmt.Sprintf("ipset add blacklist 203.0.%d.0/24", i))
	}
	sys.MustExec("iptables -A FORWARD -m set --match-set blacklist src -j DROP")
	sys.Accelerate(linuxfp.Options{})

	wan, _ := sys.Kernel.DeviceByName("wan")
	send := func(srcIP string) {
		src, dst := packet.MustAddr(srcIP), packet.MustAddr("10.100.1.1")
		u := packet.UDP{SrcPort: 7, DstPort: 7}
		frame := packet.BuildIPv4(
			packet.Ethernet{Dst: wan.MAC, Src: packet.MustHWAddr("02:00:00:00:77:02"), EtherType: packet.EtherTypeIPv4},
			packet.IPv4{TTL: 64, Proto: packet.ProtoUDP, Src: src, Dst: dst},
			u.Marshal(nil, src, dst, nil),
		)
		wan.Receive(frame, linuxfp.Meter())
	}
	send("8.8.8.8")     // allowed
	send("203.0.42.99") // blacklisted via the set
	st := wan.Stats()
	fmt.Printf("  allowed packet:     XDP redirects = %d\n", st.XDPRedirects)
	fmt.Printf("  blacklisted packet: XDP drops     = %d\n", st.XDPDrops)
	fmt.Println("  100 prefixes, 1 rule, 1 hash probe per packet — Fig. 8's flat line.")
	fmt.Println("\nSynthesized graph:")
	fmt.Println(sys.GraphJSON())
}
